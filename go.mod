module usersignals

go 1.22
