package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// deliverAll pushes n synthetic deliveries through a link and records each
// outcome as a compact fate string for determinism comparison.
func deliverAll(l *FrameLink, n int) []string {
	var fates []string
	payload := bytes.Repeat([]byte("frame-bytes-"), 8)
	for i := 0; i < n; i++ {
		from := uint64(i * 10)
		gotFrom, got, err := l.Deliver(from, payload)
		switch {
		case err != nil:
			fates = append(fates, "drop")
		case gotFrom != from:
			fates = append(fates, fmt.Sprintf("dup@%d", gotFrom))
		case len(got) < len(payload):
			fates = append(fates, fmt.Sprintf("trunc:%d", len(got)))
		default:
			fates = append(fates, "ok")
		}
	}
	return fates
}

func TestFrameLinkDeterministic(t *testing.T) {
	plan := LinkPlan{Seed: 7, DropP: 0.2, DupP: 0.2, TruncateP: 0.2}
	a := deliverAll(NewFrameLink(plan), 200)
	b := deliverAll(NewFrameLink(plan), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs across identical seeds: %q vs %q", i, a[i], b[i])
		}
	}
	var faults int
	for _, f := range a {
		if f != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("plan with 20% probabilities injected nothing in 200 deliveries")
	}
	c := NewFrameLink(plan)
	deliverAll(c, 200)
	if got := c.Counts(); got.Faults() != faults || got.Deliveries != 200 {
		t.Fatalf("counts %+v disagree with observed %d faults", got, faults)
	}
	other := deliverAll(NewFrameLink(LinkPlan{Seed: 8, DropP: 0.2, DupP: 0.2, TruncateP: 0.2}), 200)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical fault sequence")
	}
}

// TestFrameLinkDuplicate: a duplicate re-delivers the previous whole
// response with its original from-sequence — never frames re-shuffled
// inside one delivery.
func TestFrameLinkDuplicate(t *testing.T) {
	l := NewFrameLink(LinkPlan{Seed: 3, DupP: 1})
	first := []byte("first-delivery")
	gotFrom, got, err := l.Deliver(5, first)
	if err != nil || gotFrom != 5 || !bytes.Equal(got, first) {
		t.Fatalf("first delivery (nothing to duplicate yet): from=%d %q err=%v", gotFrom, got, err)
	}
	// Mutating the caller's buffer must not corrupt the retained copy.
	first[0] = 'X'
	gotFrom, got, err = l.Deliver(9, []byte("second-delivery"))
	if err != nil || gotFrom != 5 || string(got) != "first-delivery" {
		t.Fatalf("duplicate: from=%d %q err=%v, want retransmission of first", gotFrom, got, err)
	}
	if l.Counts().Dups != 1 {
		t.Fatalf("counts %+v", l.Counts())
	}
}

func TestFrameLinkTruncate(t *testing.T) {
	l := NewFrameLink(LinkPlan{Seed: 11, TruncateP: 1})
	payload := bytes.Repeat([]byte("abcd"), 20)
	gotFrom, got, err := l.Deliver(0, payload)
	if err != nil || gotFrom != 0 {
		t.Fatalf("truncated delivery: from=%d err=%v", gotFrom, err)
	}
	if len(got) >= len(payload) || !bytes.Equal(got, payload[:len(got)]) {
		t.Fatalf("truncation must yield a strict prefix: got %d of %d bytes", len(got), len(payload))
	}
}

func TestFrameLinkSeverHeal(t *testing.T) {
	l := NewFrameLink(LinkPlan{Seed: 1})
	if _, _, err := l.Deliver(0, []byte("x")); err != nil {
		t.Fatalf("healthy link dropped: %v", err)
	}
	l.Sever()
	if _, _, err := l.Deliver(1, []byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("severed link delivered (err=%v)", err)
	}
	l.Heal()
	if _, _, err := l.Deliver(2, []byte("x")); err != nil {
		t.Fatalf("healed link dropped: %v", err)
	}
	if got := l.Counts(); got.Severed != 1 || got.Deliveries != 3 {
		t.Fatalf("counts %+v", got)
	}
}

func TestFrameLinkZeroPlanIsTransparent(t *testing.T) {
	l := NewFrameLink(LinkPlan{})
	for i := 0; i < 50; i++ {
		payload := []byte(fmt.Sprintf("delivery-%d", i))
		gotFrom, got, err := l.Deliver(uint64(i), payload)
		if err != nil || gotFrom != uint64(i) || !bytes.Equal(got, payload) {
			t.Fatalf("zero plan disturbed delivery %d: from=%d %q err=%v", i, gotFrom, got, err)
		}
	}
	if got := l.Counts(); got.Faults() != 0 {
		t.Fatalf("zero plan counted faults: %+v", got)
	}
}
