// Package faults injects deterministic, seeded faults into HTTP paths so
// that chaos tests are reproducible bit-for-bit.
//
// The paper's §5 service ingests telemetry over the same unreliable networks
// it measures, so the client↔server path must be exercised under drops,
// duplicates, latency, and truncation. An Injector draws every fault
// decision from a simrand substream keyed by a per-injector request sequence
// number: the Nth request through an injector always suffers the same fate
// for a given seed, regardless of wall-clock time or scheduling — provided
// requests flow through it serially (concurrent requests still get valid,
// but order-dependent, decisions).
//
// The same Plan drives two attachment points:
//
//   - Transport wraps an http.RoundTripper on the client side: connection
//     errors before the request is sent, injected latency, synthesized
//     429/500/503 responses, and truncated response bodies.
//   - Middleware wraps an http.Handler on the server side: injected
//     latency, synthesized error statuses, and — the nastiest case —
//     "lost replies" where the inner handler runs to completion (state
//     changes are applied) but the client receives a 502. Lost replies are
//     what make idempotent ingest necessary rather than merely nice.
package faults

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"usersignals/internal/simrand"
)

// Plan configures an Injector. Probabilities are evaluated independently,
// in a fixed order, per request: connection error (transport only), lost
// reply (middleware only), status injection, latency, body truncation
// (transport only). The zero value injects nothing.
type Plan struct {
	// Seed keys the decision stream; the same seed replays the same fault
	// sequence.
	Seed uint64

	// ConnErrP is the probability a transport attempt fails with a
	// connection error before the request reaches the server.
	ConnErrP float64

	// DropReplyP is the probability the middleware runs the inner handler
	// (applying its side effects) and then discards its response, answering
	// 502 instead — a lost acknowledgement.
	DropReplyP float64

	// StatusP is the probability of answering with an injected error
	// status from Statuses instead of performing the request.
	StatusP float64

	// Statuses are the injected statuses (default 429, 500, 503), chosen
	// uniformly.
	Statuses []int

	// RetryAfter, when positive, is advertised in a Retry-After header on
	// injected 429/503 responses.
	RetryAfter time.Duration

	// LatencyP is the probability of sleeping a uniform duration in
	// (0, MaxLatency] before proceeding.
	LatencyP   float64
	MaxLatency time.Duration

	// TruncateP is the probability a successful transport response body is
	// cut in half mid-stream (the read fails with io.ErrUnexpectedEOF).
	TruncateP float64
}

// Counts tallies what an Injector actually did, for assertions that a chaos
// test exercised real faults.
type Counts struct {
	Requests   int // decisions drawn
	ConnErrs   int
	DroppedOKs int // replies discarded after the handler ran
	Statuses   int
	Latencies  int
	Truncated  int
}

// Faults returns the number of requests that suffered a visible failure
// (connection error, dropped reply, injected status, or truncation).
func (c Counts) Faults() int {
	return c.ConnErrs + c.DroppedOKs + c.Statuses + c.Truncated
}

// Injector draws per-request fault decisions from a seeded stream. Safe for
// concurrent use; determinism additionally requires serialized requests.
type Injector struct {
	plan   Plan
	stream *simrand.Stream

	mu     sync.Mutex
	seq    uint64
	counts Counts
}

// New returns an injector for the plan.
func New(plan Plan) *Injector {
	if len(plan.Statuses) == 0 {
		plan.Statuses = []int{http.StatusTooManyRequests, http.StatusInternalServerError, http.StatusServiceUnavailable}
	}
	return &Injector{plan: plan, stream: simrand.Root(plan.Seed).Derive("faults")}
}

// Counts returns a snapshot of the tally so far.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// decision is one request's drawn fate.
type decision struct {
	seq      uint64
	connErr  bool
	dropOK   bool
	status   int
	latency  time.Duration
	truncate bool
}

func (in *Injector) decide() decision {
	in.mu.Lock()
	d := decision{seq: in.seq}
	in.seq++
	in.counts.Requests++
	rng := in.stream.Derive("req/%d", d.seq).RNG()
	p := in.plan
	d.connErr = rng.Bool(p.ConnErrP)
	d.dropOK = rng.Bool(p.DropReplyP)
	if rng.Bool(p.StatusP) {
		d.status = p.Statuses[rng.Intn(len(p.Statuses))]
	}
	if rng.Bool(p.LatencyP) && p.MaxLatency > 0 {
		d.latency = time.Duration(rng.Range(0, float64(p.MaxLatency))) + 1
	}
	d.truncate = rng.Bool(p.TruncateP)
	in.mu.Unlock()
	return d
}

func (in *Injector) count(f func(*Counts)) {
	in.mu.Lock()
	f(&in.counts)
	in.mu.Unlock()
}

// --- client side ---

type roundTripper struct {
	in   *Injector
	base http.RoundTripper
}

// Transport wraps base (nil means http.DefaultTransport) so every outgoing
// request passes through the injector.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return roundTripper{in: in, base: base}
}

func (rt roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	d := rt.in.decide()
	if d.latency > 0 {
		rt.in.count(func(c *Counts) { c.Latencies++ })
		time.Sleep(d.latency)
	}
	if d.connErr {
		rt.in.count(func(c *Counts) { c.ConnErrs++ })
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faults: injected connection error (request %d)", d.seq)
	}
	if d.status != 0 {
		rt.in.count(func(c *Counts) { c.Statuses++ })
		if req.Body != nil {
			req.Body.Close()
		}
		return syntheticResponse(req, d.status, rt.in.plan.RetryAfter), nil
	}
	resp, err := rt.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.truncate {
		rt.in.count(func(c *Counts) { c.Truncated++ })
		resp.Body = truncateBody(resp.Body)
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// syntheticResponse fabricates an error response without touching the
// network.
func syntheticResponse(req *http.Request, status int, retryAfter time.Duration) *http.Response {
	h := http.Header{"Content-Type": []string{"application/json"}}
	if retryAfter > 0 && (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable) {
		h.Set("Retry-After", fmt.Sprint(int(retryAfter.Seconds())))
	}
	body := fmt.Sprintf(`{"error":"faults: injected status %d"}`, status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody reads the whole body and returns a reader that yields the
// first half and then fails with io.ErrUnexpectedEOF, as if the connection
// died mid-transfer.
func truncateBody(body io.ReadCloser) io.ReadCloser {
	data, _ := io.ReadAll(body)
	body.Close()
	return &truncatedReader{data: data[:len(data)/2]}
}

type truncatedReader struct {
	data []byte
	off  int
}

func (t *truncatedReader) Read(p []byte) (int, error) {
	if t.off >= len(t.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, t.data[t.off:])
	t.off += n
	return n, nil
}

func (t *truncatedReader) Close() error { return nil }

// --- server side ---

// Middleware wraps next so every inbound request passes through the
// injector. Connection-error and truncation probabilities are ignored here;
// DropReplyP applies only on this side.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := in.decide()
		if d.latency > 0 {
			in.count(func(c *Counts) { c.Latencies++ })
			time.Sleep(d.latency)
		}
		if d.status != 0 {
			in.count(func(c *Counts) { c.Statuses++ })
			if in.plan.RetryAfter > 0 && (d.status == http.StatusTooManyRequests || d.status == http.StatusServiceUnavailable) {
				w.Header().Set("Retry-After", fmt.Sprint(int(in.plan.RetryAfter.Seconds())))
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(d.status)
			fmt.Fprintf(w, `{"error":"faults: injected status %d"}`, d.status)
			return
		}
		if d.dropOK {
			in.count(func(c *Counts) { c.DroppedOKs++ })
			// Run the real handler so its side effects land, then lose the
			// reply: the client sees a 502 for work that actually happened.
			next.ServeHTTP(discardResponse{header: http.Header{}}, r)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprint(w, `{"error":"faults: reply lost after processing"}`)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// discardResponse swallows everything the inner handler writes.
type discardResponse struct{ header http.Header }

func (d discardResponse) Header() http.Header       { return d.header }
func (d discardResponse) Write(p []byte) (int, error) { return len(p), nil }
func (d discardResponse) WriteHeader(int)           {}
