package faults

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// chaosPlan is a representative plan used across the tests.
func chaosPlan(seed uint64) Plan {
	return Plan{
		Seed:       seed,
		ConnErrP:   0.15,
		StatusP:    0.15,
		TruncateP:  0.1,
		DropReplyP: 0.1,
		RetryAfter: time.Second,
	}
}

// fateOf summarizes one decision for comparison.
func fateOf(d decision) [4]any {
	return [4]any{d.connErr, d.dropOK, d.status, d.truncate}
}

func TestDecisionsAreDeterministic(t *testing.T) {
	a, b := New(chaosPlan(7)), New(chaosPlan(7))
	other := New(chaosPlan(8))
	same, diff := 0, 0
	for i := 0; i < 200; i++ {
		da, db, dc := a.decide(), b.decide(), other.decide()
		if fateOf(da) != fateOf(db) {
			t.Fatalf("request %d: same seed diverged: %v vs %v", i, da, db)
		}
		if fateOf(da) == fateOf(dc) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestInjectionRateRoughlyMatchesPlan(t *testing.T) {
	in := New(Plan{Seed: 3, ConnErrP: 0.25})
	n, errs := 2000, 0
	for i := 0; i < n; i++ {
		if in.decide().connErr {
			errs++
		}
	}
	rate := float64(errs) / float64(n)
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("conn-error rate %.3f, want ~0.25", rate)
	}
}

func TestTransportInjectsFaults(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true,"padding":"`+strings.Repeat("x", 256)+`"}`)
	}))
	defer ts.Close()

	in := New(Plan{Seed: 11, ConnErrP: 0.3, StatusP: 0.3, TruncateP: 0.2, RetryAfter: 2 * time.Second})
	client := &http.Client{Transport: in.Transport(ts.Client().Transport)}

	var connErrs, statuses, truncated, ok int
	for i := 0; i < 300; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			if !strings.Contains(err.Error(), "injected connection error") {
				t.Fatalf("unexpected transport error: %v", err)
			}
			connErrs++
			continue
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode != http.StatusOK:
			statuses++
			var apiErr struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Error == "" {
				t.Fatalf("injected status %d carried unparseable body %q", resp.StatusCode, body)
			}
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				if resp.Header.Get("Retry-After") != "2" {
					t.Fatalf("Retry-After = %q on status %d", resp.Header.Get("Retry-After"), resp.StatusCode)
				}
			}
		case readErr != nil:
			if readErr != io.ErrUnexpectedEOF {
				t.Fatalf("truncated read error = %v", readErr)
			}
			truncated++
		default:
			ok++
		}
	}
	c := in.Counts()
	if c.ConnErrs != connErrs || c.Statuses != statuses || c.Truncated != truncated {
		t.Fatalf("counts %+v vs observed conn=%d status=%d trunc=%d", c, connErrs, statuses, truncated)
	}
	if connErrs == 0 || statuses == 0 || truncated == 0 || ok == 0 {
		t.Fatalf("fault mix not exercised: conn=%d status=%d trunc=%d ok=%d", connErrs, statuses, truncated, ok)
	}
	// Injected statuses and conn errors never reach the server.
	if got := int(served.Load()); got != ok+truncated {
		t.Fatalf("server served %d, want %d", got, ok+truncated)
	}
}

func TestMiddlewareDropsRepliesAfterProcessing(t *testing.T) {
	var applied atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		applied.Add(1)
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"ok":true}`)
	})
	in := New(Plan{Seed: 5, DropReplyP: 0.4, StatusP: 0.2})
	ts := httptest.NewServer(in.Middleware(inner))
	defer ts.Close()

	var dropped, injected, ok int
	for i := 0; i < 200; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusBadGateway:
			dropped++
		default:
			injected++
		}
	}
	if dropped == 0 || injected == 0 || ok == 0 {
		t.Fatalf("mix not exercised: ok=%d dropped=%d injected=%d", ok, dropped, injected)
	}
	// Lost replies still ran the handler: side effects == OK + dropped.
	if got := int(applied.Load()); got != ok+dropped {
		t.Fatalf("handler ran %d times, want %d", got, ok+dropped)
	}
	c := in.Counts()
	if c.DroppedOKs != dropped || c.Statuses != injected {
		t.Fatalf("counts %+v vs dropped=%d injected=%d", c, dropped, injected)
	}
}

func TestZeroPlanIsTransparent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	in := New(Plan{Seed: 1})
	client := &http.Client{Transport: in.Transport(ts.Client().Transport)}
	for i := 0; i < 50; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(body) != "ok" || resp.StatusCode != http.StatusOK {
			t.Fatalf("zero plan interfered: %d %q %v", resp.StatusCode, body, err)
		}
	}
	if c := in.Counts(); c.Faults() != 0 || c.Requests != 50 {
		t.Fatalf("counts = %+v", c)
	}
}
