package faults

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"usersignals/internal/simrand"
)

// FrameLink injects faults into a WAL-frame replication stream. It sits
// between a follower's fetch and the frames the leader returned, mangling
// deliveries the way a flaky network path would — but deterministically,
// from a seeded stream, so chaos runs replay bit-for-bit.
//
// Fault semantics are chosen to match what a real link can do to a
// fetch-response protocol:
//
//   - drop: the delivery is lost; the caller sees an error and retries.
//   - duplicate: the previous delivery arrives again, with its original
//     starting sequence — a retransmission of a whole response. (Frames are
//     never duplicated inside one delivery: a response is one TCP stream,
//     and re-sequencing within it is not a failure a link produces.)
//   - truncate: the response is cut mid-frame; the tail frame fails its CRC
//     on the receiver and is re-requested.
//   - delay: the delivery is late.
//
// Sever/Heal model a partition: while severed, every delivery fails with
// ErrLinkDown regardless of the drawn fate.
type FrameLink struct {
	plan   LinkPlan
	stream *simrand.Stream

	mu      sync.Mutex
	seq     uint64
	counts  LinkCounts
	severed bool

	// Previous successful delivery, replayed verbatim on a duplicate.
	lastFrom uint64
	last     []byte
	hasLast  bool
}

// ErrLinkDown is returned for every delivery attempted across a severed
// link.
var ErrLinkDown = errors.New("faults: frame link severed")

// LinkPlan configures a FrameLink. Probabilities are evaluated
// independently per delivery in a fixed order: delay, drop, duplicate,
// truncate. The zero value injects nothing.
type LinkPlan struct {
	// Seed keys the decision stream; the same seed replays the same fault
	// sequence.
	Seed uint64

	// DropP is the probability a delivery is lost entirely (the caller gets
	// an error, as if the fetch timed out).
	DropP float64

	// DupP is the probability the previous delivery is retransmitted in
	// place of this one, with its original from-sequence. No-op until a
	// first delivery has gone through.
	DupP float64

	// TruncateP is the probability the delivered bytes are cut mid-frame.
	// No-op on deliveries shorter than two frames' worth of bytes only in
	// the sense that cutting may leave zero whole frames — which is fine;
	// the receiver just re-requests.
	TruncateP float64

	// DelayP is the probability of sleeping a uniform duration in
	// (0, MaxDelay] before delivering.
	DelayP   float64
	MaxDelay time.Duration
}

// LinkCounts tallies what a FrameLink actually did, so chaos tests can
// assert a minimum fault rate was exercised.
type LinkCounts struct {
	Deliveries int // attempts, including while severed
	Severed    int // attempts refused by a partition
	Drops      int
	Dups       int
	Truncates  int
	Delays     int
}

// Faults returns the number of deliveries that were visibly disturbed
// (severed, dropped, duplicated, or truncated).
func (c LinkCounts) Faults() int {
	return c.Severed + c.Drops + c.Dups + c.Truncates
}

// NewFrameLink returns a link for the plan.
func NewFrameLink(plan LinkPlan) *FrameLink {
	return &FrameLink{plan: plan, stream: simrand.Root(plan.Seed).Derive("framelink")}
}

// Counts returns a snapshot of the tally so far.
func (l *FrameLink) Counts() LinkCounts {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts
}

// Sever partitions the link: subsequent deliveries fail with ErrLinkDown
// until Heal.
func (l *FrameLink) Sever() {
	l.mu.Lock()
	l.severed = true
	l.mu.Unlock()
}

// Heal reconnects a severed link.
func (l *FrameLink) Heal() {
	l.mu.Lock()
	l.severed = false
	l.mu.Unlock()
}

// Deliver passes one fetched response (raw frames starting at sequence
// from) through the link and returns what actually arrives. The returned
// slice may alias frames (clean delivery) or be a retained copy of an
// earlier delivery (duplicate). An error means the delivery was lost; the
// caller retries its fetch.
func (l *FrameLink) Deliver(from uint64, frames []byte) (uint64, []byte, error) {
	l.mu.Lock()
	l.counts.Deliveries++
	if l.severed {
		l.counts.Severed++
		l.mu.Unlock()
		return 0, nil, ErrLinkDown
	}
	seq := l.seq
	l.seq++
	rng := l.stream.Derive("deliver/%d", seq).RNG()
	p := l.plan
	var delay time.Duration
	if rng.Bool(p.DelayP) && p.MaxDelay > 0 {
		delay = time.Duration(rng.Range(0, float64(p.MaxDelay))) + 1
	}
	drop := rng.Bool(p.DropP)
	dup := rng.Bool(p.DupP) && l.hasLast
	trunc := rng.Bool(p.TruncateP) && len(frames) > 0

	if delay > 0 {
		l.counts.Delays++
	}
	outFrom, out := from, frames
	switch {
	case drop:
		l.counts.Drops++
	case dup:
		l.counts.Dups++
		outFrom, out = l.lastFrom, l.last
	case trunc:
		l.counts.Truncates++
		out = frames[:len(frames)-(len(frames)/2+1)]
	}
	if !drop && !dup && len(out) > 0 {
		// Remember the clean (possibly truncated) delivery for a future
		// retransmission. Copy: the caller's buffer may be reused.
		l.lastFrom = outFrom
		l.last = append([]byte(nil), out...)
		l.hasLast = true
	}
	l.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return 0, nil, fmt.Errorf("faults: injected frame-link drop (delivery %d)", seq)
	}
	return outFrom, out, nil
}
