package nlp

import (
	"reflect"
	"testing"
)

// collectTokens drains a Tokenizer into strings.
func collectTokens(s string) []string {
	var tz Tokenizer
	tz.Reset(s)
	var out []string
	for tok, ok := tz.Next(); ok; tok, ok = tz.Next() {
		out = append(out, string(tok))
	}
	return out
}

func TestTokenizerMatchesTokenize(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"Starlink is DOWN again!!",
		"don't-stop believing",
		"café über naïve 速度",
		"rock'n'roll o'clock '",
		"trailing apostrophe' and 'leading",
		"a",
		"100Mbps down, 20 up",
		"\xff\xfe invalid \x80 bytes",
		"word'",
		"'",
		"x'y'z",
	}
	for _, s := range cases {
		want := Tokenize(s)
		got := collectTokens(s)
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Errorf("Tokenizer(%q) = %v, Tokenize = %v", s, got, want)
		}
	}
}

func TestInternerProperties(t *testing.T) {
	in := NewInterner()
	a := in.Intern("outages")
	b := in.Intern("outages")
	if a != b {
		t.Fatalf("re-interning gave a different ID: %d vs %d", a, b)
	}
	if got := in.Token(a); got != "outages" {
		t.Fatalf("Token(%d) = %q", a, got)
	}
	// The stem was interned alongside and memoized.
	st := in.StemID(a)
	if got := in.Token(st); got != Stem("outages") {
		t.Fatalf("stem of outages interned as %q, want %q", got, Stem("outages"))
	}
	if id, ok := in.Lookup(Stem("outages")); !ok || id != st {
		t.Fatalf("stem not directly look-up-able")
	}
	// Self-stemming tokens point at themselves.
	c := in.Intern("down")
	if in.StemID(c) != c {
		t.Fatalf("self-stem token should be its own stem")
	}
	// Stopword and content tables mirror the string predicates.
	for _, tok := range []string{"the", "is", "outage", "a", "slow"} {
		id := in.Intern(tok)
		if in.IsStop(id) != IsStopword(tok) {
			t.Errorf("IsStop(%q) mismatch", tok)
		}
		wantContent := len(tok) > 1 && !IsStopword(tok)
		if in.IsContent(id) != wantContent {
			t.Errorf("IsContent(%q) = %v, want %v", tok, in.IsContent(id), wantContent)
		}
	}
	if in.Len() == 0 {
		t.Fatal("Len should count interned tokens")
	}
}

func TestAppendTokensRoundTrip(t *testing.T) {
	in := NewInterner()
	s := "Starlink went DOWN; no connection since don't know when"
	ids := in.AppendTokens(nil, s)
	want := Tokenize(s)
	if len(ids) != len(want) {
		t.Fatalf("AppendTokens yielded %d tokens, want %d", len(ids), len(want))
	}
	for i, id := range ids {
		if in.Token(id) != want[i] {
			t.Errorf("token %d = %q, want %q", i, in.Token(id), want[i])
		}
	}
}

func TestTopIDsMatchesTop(t *testing.T) {
	in := NewInterner()
	texts := []string{
		"outage outage outage down down slow",
		"slow slow service outage",
		"aaa bbb aaa bbb", // exercises the alphabetical tie-break
	}
	counts := map[string]int{}
	idCounts := map[TokenID]int{}
	for _, s := range texts {
		for _, tok := range ContentTokens(s) {
			st := Stem(tok)
			counts[st]++
			idCounts[in.Intern(st)]++
		}
	}
	for _, k := range []int{1, 2, 3, 100} {
		want := Top(counts, k)
		got := TopIDs(in, idCounts, k)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("TopIDs(k=%d) = %v, want %v", k, got, want)
		}
	}
}

func TestTokenScorerMatchesAnalyzer(t *testing.T) {
	an := NewAnalyzer()
	texts := []string{
		"",
		"the service is great",
		"not great at all",
		"very slow and always down",
		"not very reliable but never terrible",
		"internet went down again no connection lost signal",
		"extremely happy with the fast speeds",
		"don't love it",
	}
	in := NewInterner()
	idStreams := make([][]TokenID, len(texts))
	for i, s := range texts {
		idStreams[i] = in.AppendTokens(nil, s)
	}
	scorer := an.CompileScorer(in)
	for i, s := range texts {
		want := an.Score(s)
		got := scorer.Score(idStreams[i])
		if got != want {
			t.Errorf("Score(%q): scorer %+v, analyzer %+v", s, got, want)
		}
	}
}

func TestMatcherMatchesDictionaryCount(t *testing.T) {
	cases := []struct {
		entries []string
		texts   []string
	}{
		{
			entries: []string{"outage", "no connection", "connection"},
			texts: []string{
				"outage outage and no connection", // word inside phrase counts too
				"no no connection connection",
				"nothing relevant here",
				"connection",
			},
		},
		{
			// Duplicate entries double-count, as in the naive scan.
			entries: []string{"went down", "went down", "down"},
			texts: []string{
				"it went down went down",
				"down down down",
			},
		},
		{
			// Overlapping phrase occurrences each count.
			entries: []string{"down down"},
			texts:   []string{"down down down down"},
		},
		{
			// Phrase sharing a prefix with another (failure links).
			entries: []string{"lost connection", "lost signal", "signal"},
			texts: []string{
				"lost connection then lost signal",
				"lost lost signal",
			},
		},
	}
	for _, tc := range cases {
		d := NewDictionary(tc.entries...)
		in := NewInterner()
		streams := make([][]TokenID, len(tc.texts))
		for i, s := range tc.texts {
			streams[i] = in.AppendTokens(nil, s)
		}
		m := d.CompileMatcher(in)
		for i, s := range tc.texts {
			if got, want := m.Count(streams[i]), d.Count(s); got != want {
				t.Errorf("entries %v: Count(%q) = %d, want %d", tc.entries, s, got, want)
			}
			if got, want := m.Matches(streams[i]), d.Matches(s); got != want {
				t.Errorf("entries %v: Matches(%q) = %v, want %v", tc.entries, s, got, want)
			}
		}
	}
}

// TestMatcherUnresolvablePatterns: patterns with vocabulary the interner has
// never seen can never match and must not grow the interner.
func TestMatcherUnresolvablePatterns(t *testing.T) {
	d := NewDictionary("outage", "flux capacitor")
	in := NewInterner()
	ids := in.AppendTokens(nil, "an outage but no capacitor in sight")
	before := in.Len()
	m := d.CompileMatcher(in)
	if in.Len() != before {
		t.Fatalf("CompileMatcher grew the interner: %d -> %d", before, in.Len())
	}
	if got, want := m.Count(ids), d.Count("an outage but no capacitor in sight"); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}
