package nlp

import (
	"sort"
	"unicode"
	"unicode/utf8"
)

// This file is the tokenize-once substrate: a zero-allocation tokenizer
// iterator, a token interner mapping stemmed tokens to dense TokenIDs, and
// ID-space replacements for the word-cloud counting helpers. Together with
// the compiled scorer (tokenscore.go) and the dictionary automaton
// (automaton.go) it lets every §4 analysis run over cached integer token
// streams instead of re-lexing raw text; equivalence with the string-based
// reference pipeline (Tokenize/StemAll/Dictionary.Count/Analyzer.Score) is
// fuzz-checked in fuzz_test.go.

// TokenID is a dense identifier an Interner assigns to a distinct token
// string. IDs are assigned in interning order, so a corpus built with
// canonical chunking numbers its vocabulary identically at any worker count.
type TokenID uint32

// Tokenizer iterates the tokens of a string without materializing a
// []string: it yields exactly the token sequence Tokenize returns, one
// token at a time, reusing a single internal buffer.
type Tokenizer struct {
	s   string
	i   int
	buf []byte
}

// Reset points the tokenizer at s and rewinds it.
func (t *Tokenizer) Reset(s string) { t.s, t.i = s, 0 }

// Next returns the next token and true, or nil and false at end of input.
// The returned slice aliases an internal buffer valid only until the next
// call to Next or Reset; callers must copy (or intern) it to retain it.
func (t *Tokenizer) Next() ([]byte, bool) {
	buf := t.buf[:0]
	s := t.s
	for t.i < len(s) {
		r, size := utf8.DecodeRuneInString(s[t.i:])
		t.i += size
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			buf = utf8.AppendRune(buf, unicode.ToLower(r))
			continue
		}
		if r == '\'' && len(buf) > 0 {
			if nr, _ := utf8.DecodeRuneInString(s[t.i:]); unicode.IsLetter(nr) {
				// intra-word apostrophe: drop it, keep the word together
				continue
			}
		}
		if len(buf) > 0 {
			t.buf = buf
			return buf, true
		}
	}
	t.buf = buf
	if len(buf) > 0 {
		return buf, true
	}
	return nil, false
}

// Interner assigns dense TokenIDs to token strings and memoizes, per ID,
// the derived per-token facts every analysis needs: the stem (itself
// interned), stopword membership, and word-cloud content eligibility.
// Stemming therefore runs once per distinct token instead of once per
// occurrence. An Interner is not safe for concurrent mutation; once fully
// built it is immutable and safe for concurrent readers.
type Interner struct {
	ids     map[string]TokenID
	toks    []string  // id → token text
	stems   []TokenID // id → id of Stem(token)
	stop    []bool    // id → IsStopword(token)
	content []bool    // id → len(token) > 1 && !stopword (ContentTokens filter)
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]TokenID)}
}

// Len returns the number of interned tokens. Valid IDs are [0, Len).
func (in *Interner) Len() int { return len(in.toks) }

// Intern returns the ID for tok, assigning the next dense ID (and interning
// tok's stem) on first sight.
func (in *Interner) Intern(tok string) TokenID {
	if id, ok := in.ids[tok]; ok {
		return id
	}
	return in.add(tok)
}

// InternBytes is Intern for a byte-slice token (e.g. straight from a
// Tokenizer); it allocates only when the token has not been seen before.
func (in *Interner) InternBytes(tok []byte) TokenID {
	if id, ok := in.ids[string(tok)]; ok {
		return id
	}
	return in.add(string(tok))
}

func (in *Interner) add(tok string) TokenID {
	id := TokenID(len(in.toks))
	in.ids[tok] = id
	in.toks = append(in.toks, tok)
	in.stems = append(in.stems, id) // fixed up below
	in.stop = append(in.stop, stopwords[tok])
	in.content = append(in.content, len(tok) > 1 && !stopwords[tok])
	if st := Stem(tok); st != tok {
		in.stems[id] = in.Intern(st)
	}
	return id
}

// Lookup returns the ID for tok without interning it.
func (in *Interner) Lookup(tok string) (TokenID, bool) {
	id, ok := in.ids[tok]
	return id, ok
}

// Token returns the token text for id.
func (in *Interner) Token(id TokenID) string { return in.toks[id] }

// StemID returns the ID of id's stem (id itself when the token is its own
// stem).
func (in *Interner) StemID(id TokenID) TokenID { return in.stems[id] }

// IsStop reports whether id's token is a stopword.
func (in *Interner) IsStop(id TokenID) bool { return in.stop[id] }

// IsContent reports whether id's token passes the ContentTokens filter
// (longer than one byte and not a stopword).
func (in *Interner) IsContent(id TokenID) bool { return in.content[id] }

// AppendTokens tokenizes s and appends the interned ID of each token to
// dst, returning the extended slice. It is the ID-space equivalent of
// Tokenize: in.Token of each appended ID reproduces Tokenize(s).
func (in *Interner) AppendTokens(dst []TokenID, s string) []TokenID {
	var tz Tokenizer
	tz.Reset(s)
	for tok, ok := tz.Next(); ok; tok, ok = tz.Next() {
		dst = append(dst, in.InternBytes(tok))
	}
	return dst
}

// TopIDs converts an ID-keyed count table to the ranked WordCount list Top
// produces for the equivalent string-keyed table: count descending, ties
// broken alphabetically.
func TopIDs(in *Interner, counts map[TokenID]int, k int) []WordCount {
	out := make([]WordCount, 0, len(counts))
	for id, c := range counts {
		out = append(out, WordCount{Word: in.Token(id), Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Word < out[j].Word
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
