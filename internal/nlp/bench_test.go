package nlp

import (
	"sync"
	"testing"
)

// Benchmarks for the text hot path: each string-based reference primitive
// paired with its tokenize-once replacement, allocations reported, so the
// before/after gap recorded in BENCH_nlp.json stays reproducible.

var benchSink int

var (
	benchOnce    sync.Once
	benchTexts   []string
	benchIn      *Interner
	benchStreams [][]TokenID
)

func benchSetup() {
	benchOnce.Do(func() {
		frags := []string{
			"Starlink went down again this morning, no connection for two hours",
			"extremely happy with the service, speeds are great and latency is low",
			"not great, not terrible — the obstruction map says I'm clear but it keeps dropping out",
			"anyone else seeing an outage in the northeast? router says offline",
			"very slow tonight and the app won't connect, support is useless",
			"the roaming feature is amazing, used it camping all weekend don't regret it",
		}
		for i := 0; i < 40; i++ {
			benchTexts = append(benchTexts, frags[i%len(frags)]+" "+frags[(i+1)%len(frags)])
		}
		benchIn = NewInterner()
		for _, s := range benchTexts {
			benchStreams = append(benchStreams, benchIn.AppendTokens(nil, s))
		}
	})
}

func BenchmarkTokenize(b *testing.B) {
	benchSetup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range benchTexts {
			benchSink += len(Tokenize(s))
		}
	}
}

func BenchmarkTokenizerIter(b *testing.B) {
	benchSetup()
	b.ReportAllocs()
	var tz Tokenizer
	for i := 0; i < b.N; i++ {
		for _, s := range benchTexts {
			tz.Reset(s)
			for tok, ok := tz.Next(); ok; tok, ok = tz.Next() {
				benchSink += len(tok)
			}
		}
	}
}

func BenchmarkAnalyzerScore(b *testing.B) {
	benchSetup()
	an := NewAnalyzer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range benchTexts {
			benchSink += int(100 * an.Score(s).Negative)
		}
	}
}

func BenchmarkTokenScorerScore(b *testing.B) {
	benchSetup()
	scorer := NewAnalyzer().CompileScorer(benchIn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ids := range benchStreams {
			benchSink += int(100 * scorer.Score(ids).Negative)
		}
	}
}

func BenchmarkDictionaryCount(b *testing.B) {
	benchSetup()
	d := OutageDictionary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range benchTexts {
			benchSink += d.Count(s)
		}
	}
}

func BenchmarkMatcherCount(b *testing.B) {
	benchSetup()
	m := OutageDictionary().CompileMatcher(benchIn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ids := range benchStreams {
			benchSink += m.Count(ids)
		}
	}
}

func BenchmarkWordCloud(b *testing.B) {
	benchSetup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink += len(WordCloud(benchTexts, 12))
	}
}

func BenchmarkWordCloudTokenIDs(b *testing.B) {
	benchSetup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		counts := map[TokenID]int{}
		for _, ids := range benchStreams {
			for _, id := range ids {
				if benchIn.IsContent(id) {
					counts[benchIn.StemID(id)]++
				}
			}
		}
		benchSink += len(TopIDs(benchIn, counts, 12))
	}
}
