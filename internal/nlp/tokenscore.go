package nlp

// TokenScorer is an Analyzer compiled against an Interner: every per-token
// map lookup Score performs (negation, intensifier, lexicon-by-stem with
// raw-token fallback, stopword) is resolved once per vocabulary entry into
// dense tables indexed by TokenID. Scoring a post then touches no strings
// and no maps, and produces bit-identical Sentiment values to
// Analyzer.Score on the corresponding text.
//
// A scorer is valid for the interner state it was compiled against; compile
// after the interner is fully built. Immutable and safe for concurrent use.
type TokenScorer struct {
	neg      []bool
	hasBoost []bool
	boost    []float64
	hasVal   []bool
	val      []float64
	plain    []bool // unvalenced non-stopword: counts toward neutral mass
}

// CompileScorer builds the dense scoring tables for every token currently
// interned in in.
func (a *Analyzer) CompileScorer(in *Interner) *TokenScorer {
	n := in.Len()
	ts := &TokenScorer{
		neg:      make([]bool, n),
		hasBoost: make([]bool, n),
		boost:    make([]float64, n),
		hasVal:   make([]bool, n),
		val:      make([]float64, n),
		plain:    make([]bool, n),
	}
	for id := 0; id < n; id++ {
		tok := in.Token(TokenID(id))
		stem := in.Token(in.StemID(TokenID(id)))
		ts.neg[id] = a.negations[tok]
		ts.boost[id], ts.hasBoost[id] = a.intensifiers[tok]
		v, ok := a.lexicon[stem]
		if !ok {
			v, ok = a.lexicon[tok]
		}
		ts.val[id], ts.hasVal[id] = v, ok
		ts.plain[id] = !stopwords[tok]
	}
	return ts
}

// Score replays Analyzer.Score over an interned token stream. The control
// flow and arithmetic mirror Score operation for operation, so the result
// is bit-identical to scoring the original text.
func (ts *TokenScorer) Score(ids []TokenID) Sentiment {
	var pos, neg float64
	plain := 0
	negateLeft := 0
	boost := 1.0
	for _, id := range ids {
		if ts.neg[id] {
			negateLeft = negationWindow
			boost = 1.0
			continue
		}
		if ts.hasBoost[id] {
			boost = ts.boost[id]
			continue
		}
		if !ts.hasVal[id] {
			if ts.plain[id] {
				plain++
			}
			if negateLeft > 0 {
				negateLeft--
			}
			continue
		}
		v := ts.val[id] * boost
		boost = 1.0
		if negateLeft > 0 {
			v = -v * 0.8 // negated sentiment is weaker than its opposite
			negateLeft--
		}
		if v > 0 {
			pos += v
		} else {
			neg += -v
		}
	}
	neutral := 0.55 + 0.05*float64(plain)
	total := pos + neg + neutral
	return Sentiment{Positive: pos / total, Negative: neg / total, Neutral: neutral / total}
}
