package nlp

// Matcher is a Dictionary compiled against an Interner into an
// Aho-Corasick automaton over stem TokenIDs: one pass over a post's token
// stream counts every word and phrase hit at once, replacing
// Dictionary.Count's O(tokens × phrases × phrase-len) rescans. Counting
// semantics are identical to the naive scan — each matching token and each
// phrase occurrence (including overlapping occurrences) counts once — which
// fuzz_test.go checks against Dictionary.Count on arbitrary input.
//
// Patterns containing a token absent from the interner can never occur in
// any interned stream, so they are dropped at compile time rather than
// forcing the interner to grow; a Matcher never mutates its interner.
// Immutable and safe for concurrent use.
type Matcher struct {
	in   *Interner
	next []map[TokenID]int32 // trie edges per state, keyed by stem ID
	fail []int32             // failure links
	out  []int32             // patterns ending at state (suffix-aggregated)
}

// CompileMatcher builds the automaton for d's entries over in's current
// vocabulary.
func (d *Dictionary) CompileMatcher(in *Interner) *Matcher {
	m := &Matcher{
		in:   in,
		next: []map[TokenID]int32{{}},
		fail: []int32{0},
		out:  []int32{0},
	}
	insert := func(pat []TokenID) {
		s := int32(0)
		for _, id := range pat {
			nx, ok := m.next[s][id]
			if !ok {
				nx = int32(len(m.next))
				m.next[s][id] = nx
				m.next = append(m.next, map[TokenID]int32{})
				m.fail = append(m.fail, 0)
				m.out = append(m.out, 0)
			}
			s = nx
		}
		m.out[s]++
	}
	// Dictionary entries are already stemmed; resolve them to stem IDs.
	buf := make([]TokenID, 0, 8)
	resolve := func(toks ...string) ([]TokenID, bool) {
		buf = buf[:0]
		for _, t := range toks {
			id, ok := in.Lookup(t)
			if !ok {
				return nil, false
			}
			buf = append(buf, id)
		}
		return buf, true
	}
	for w := range d.words {
		if ids, ok := resolve(w); ok {
			insert(ids)
		}
	}
	for _, ph := range d.phrases {
		if ids, ok := resolve(ph...); ok {
			insert(ids)
		}
	}
	// Breadth-first failure links; out is aggregated along them so a state
	// carries every pattern ending at any suffix of its path (a phrase hit
	// and a word hit at the same position both count, as in the naive scan).
	queue := make([]int32, 0, len(m.next))
	for _, nx := range m.next[0] {
		queue = append(queue, nx)
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		for id, nx := range m.next[s] {
			queue = append(queue, nx)
			f := m.fail[s]
			for f != 0 {
				if _, ok := m.next[f][id]; ok {
					break
				}
				f = m.fail[f]
			}
			if t, ok := m.next[f][id]; ok {
				m.fail[nx] = t
			}
			m.out[nx] += m.out[m.fail[nx]]
		}
	}
	return m
}

// step advances the automaton from state s on the stem of token id.
func (m *Matcher) step(s int32, id TokenID) int32 {
	sid := m.in.stems[id]
	for {
		if t, ok := m.next[s][sid]; ok {
			return t
		}
		if s == 0 {
			return 0
		}
		s = m.fail[s]
	}
}

// Count returns the total dictionary hits in an interned token stream:
// exactly Dictionary.Count of the corresponding text. ids are raw token
// IDs; stem resolution happens inside via the interner's stem table.
func (m *Matcher) Count(ids []TokenID) int {
	n := 0
	s := int32(0)
	for _, id := range ids {
		s = m.step(s, id)
		n += int(m.out[s])
	}
	return n
}

// Matches reports whether the stream contains any dictionary hit, stopping
// at the first.
func (m *Matcher) Matches(ids []TokenID) bool {
	s := int32(0)
	for _, id := range ids {
		s = m.step(s, id)
		if m.out[s] > 0 {
			return true
		}
	}
	return false
}
