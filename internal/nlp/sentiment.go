package nlp

import "strings"

// Sentiment is the score triple the cloud API in the paper returns: three
// non-negative components summing to 1.
type Sentiment struct {
	Positive float64
	Negative float64
	Neutral  float64
}

// StrongThreshold is the paper's cutoff for counting a post as strongly
// positive or negative (≥ 0.7).
const StrongThreshold = 0.7

// StrongPositive reports Positive ≥ 0.7.
func (s Sentiment) StrongPositive() bool { return s.Positive >= StrongThreshold }

// StrongNegative reports Negative ≥ 0.7.
func (s Sentiment) StrongNegative() bool { return s.Negative >= StrongThreshold }

// Analyzer scores text against a valence lexicon with negation and
// intensifier handling. The zero value is unusable; construct with
// NewAnalyzer (default lexicon) or NewAnalyzerWithLexicon.
type Analyzer struct {
	lexicon      map[string]float64
	negations    map[string]bool
	intensifiers map[string]float64
}

// NewAnalyzer returns an analyzer with the built-in lexicon.
func NewAnalyzer() *Analyzer {
	return NewAnalyzerWithLexicon(DefaultLexicon())
}

// NewAnalyzerWithLexicon returns an analyzer over a custom valence lexicon
// (token → valence in [-1, 1]). Lexicon keys must be lowercase stems.
func NewAnalyzerWithLexicon(lexicon map[string]float64) *Analyzer {
	return &Analyzer{
		lexicon: lexicon,
		negations: map[string]bool{
			"not": true, "no": true, "never": true, "nothing": true,
			"dont": true, "cant": true, "wont": true, "didnt": true,
			"doesnt": true, "isnt": true, "arent": true, "wasnt": true,
			"without": true, "barely": true, "hardly": true,
		},
		intensifiers: map[string]float64{
			"very": 1.5, "really": 1.5, "extremely": 1.9, "so": 1.4,
			"super": 1.6, "absolutely": 1.8, "totally": 1.6, "incredibly": 1.8,
			"slightly": 0.5, "somewhat": 0.6, "bit": 0.6, "little": 0.6,
		},
	}
}

// negationWindow is how many following valenced tokens a negation flips.
const negationWindow = 3

// Score produces the sentiment triple for a text. Deterministic and
// pure.
func (a *Analyzer) Score(text string) Sentiment {
	toks := Tokenize(text)
	var pos, neg float64
	plain := 0
	negateLeft := 0
	boost := 1.0
	for _, tok := range toks {
		stem := Stem(tok)
		if a.negations[tok] {
			negateLeft = negationWindow
			boost = 1.0
			continue
		}
		if m, ok := a.intensifiers[tok]; ok {
			boost = m
			continue
		}
		v, ok := a.lexicon[stem]
		if !ok {
			v, ok = a.lexicon[tok]
		}
		if !ok {
			if !stopwords[tok] {
				plain++
			}
			if negateLeft > 0 {
				negateLeft--
			}
			continue
		}
		v *= boost
		boost = 1.0
		if negateLeft > 0 {
			v = -v * 0.8 // negated sentiment is weaker than its opposite
			negateLeft--
		}
		if v > 0 {
			pos += v
		} else {
			neg += -v
		}
	}
	// Neutral mass: a floor plus the unvalenced content tokens, so short
	// emphatic posts can cross the strong threshold while long rambling
	// ones dilute toward neutral.
	neutral := 0.55 + 0.05*float64(plain)
	total := pos + neg + neutral
	return Sentiment{Positive: pos / total, Negative: neg / total, Neutral: neutral / total}
}

// DefaultLexicon returns the built-in valence lexicon. Keys are lowercase
// stems (see Stem). The vocabulary covers general English sentiment plus
// the networking/ISP domain the studies need.
func DefaultLexicon() map[string]float64 {
	lex := map[string]float64{}
	add := func(v float64, words string) {
		for _, w := range strings.Fields(words) {
			lex[w] = v
		}
	}
	// Strong positive.
	add(0.9, `amazing awesome fantastic excellent incredible outstanding
		phenomenal perfect love loving blazing stellar flawless thrilled`)
	add(0.7, `great happy excited impressive impressed wonderful excite
		delighted beautiful superb smooth rock rocks solid blown stoked
		grateful game-changer gamechanger`)
	add(0.5, `good nice fast quick reliable stable improved improvement
		improve better best upgrade upgraded win winner winning works
		worked working glad pleased enjoy enjoyed recommend consistent
		usable playable respectable`)
	add(0.3, `fine okay ok decent fair acceptable enough finally promising
		useful handy helpful hope hopeful cool neat`)
	// Mild negative.
	add(-0.3, `slow sluggish laggy spotty patchy meh mediocre concern
		concerned worried iffy shaky choppy inconsistent underwhelming
		expensive pricey`)
	add(-0.5, `bad poor disappointing disappointed disappoint drop dropped
		dropping drops problem problems issue issues trouble glitch
		glitchy stutter stuttered freeze frozen freezing lag lagging
		buffering delay delayed delays degraded degrade worse annoying
		annoyed frustrating frustrated frustrate fail failed failing
		fails struggle struggling unstable unusable`)
	// Strong negative.
	add(-0.8, `terrible horrible awful unacceptable garbage useless broken
		furious angry outage outages offline dead disconnected
		disconnect disconnects nightmare worst hate hated scam refund
		cancel cancelled cancelling unusably abysmal atrocious`)
	// Stem-collisions: make sure stems of the above also resolve (add()
	// already lists many stems; a few irregulars need explicit entries).
	lex["outage"] = -0.8
	lex["drop"] = -0.5
	lex["freez"] = -0.5 // stem of freezing after undouble
	lex["disconnect"] = -0.8
	return lex
}
