package nlp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"don't-stop", []string{"dont", "stop"}},
		{"speeds: 95.4 Mbps (down)", []string{"speeds", "95", "4", "mbps", "down"}},
		{"", nil},
		{"   ", nil},
		{"Ünïcode ÇAFÉ", []string{"ünïcode", "çafé"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestTokenizeLowercaseProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" || tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"outages":      "outage",
		"outage":       "outage",
		"drops":        "drop",
		"dropped":      "drop",
		"dropping":     "drop",
		"disconnects":  "disconnect",
		"disconnected": "disconnect",
		"speeds":       "speed",
		"flies":        "fly",
		"glass":        "glass",
		"working":      "work",
		"is":           "is",
		"us":           "us",
		"falling":      "fall", // ll not undoubled
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Fatalf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	for _, w := range []string{"outage", "drop", "disconnect", "speed", "service", "roaming"} {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Fatalf("Stem not idempotent on %q: %q → %q", w, once, twice)
		}
	}
}

func TestContentTokens(t *testing.T) {
	got := ContentTokens("The outage is very bad and I am not happy")
	for _, tok := range got {
		if IsStopword(tok) {
			t.Fatalf("stopword %q leaked: %v", tok, got)
		}
		if len(tok) <= 1 {
			t.Fatalf("single-letter token leaked: %v", got)
		}
	}
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "outage") || !strings.Contains(joined, "happy") {
		t.Fatalf("content words missing: %v", got)
	}
}

func TestSentimentPolarity(t *testing.T) {
	a := NewAnalyzer()
	cases := []struct {
		text string
		want string // "pos", "neg", "neu"
	}{
		{"This is absolutely amazing, I love the fast speeds!", "pos"},
		{"Terrible outage again, completely dead for hours. Furious.", "neg"},
		{"I placed the dish on the roof near the chimney yesterday.", "neu"},
		{"Preorder finally open! So excited, amazing news for rural users.", "pos"},
		{"Constant disconnects, unusable for video calls, very disappointed.", "neg"},
	}
	for _, c := range cases {
		s := a.Score(c.text)
		if math.Abs(s.Positive+s.Negative+s.Neutral-1) > 1e-9 {
			t.Fatalf("scores do not sum to 1: %+v", s)
		}
		var got string
		switch {
		case s.Positive > s.Negative && s.Positive > s.Neutral:
			got = "pos"
		case s.Negative > s.Positive && s.Negative > s.Neutral:
			got = "neg"
		default:
			got = "neu"
		}
		if got != c.want {
			t.Fatalf("Score(%q) = %+v, classified %s, want %s", c.text, s, got, c.want)
		}
	}
}

func TestStrongThresholdReachable(t *testing.T) {
	a := NewAnalyzer()
	pos := a.Score("Absolutely amazing! Fantastic speeds, love it, so excited!")
	if !pos.StrongPositive() {
		t.Fatalf("emphatic praise should be strongly positive: %+v", pos)
	}
	neg := a.Score("Terrible outage, completely broken, absolutely unacceptable garbage.")
	if !neg.StrongNegative() {
		t.Fatalf("emphatic complaint should be strongly negative: %+v", neg)
	}
}

func TestNegationFlips(t *testing.T) {
	a := NewAnalyzer()
	plain := a.Score("The service is good and reliable.")
	negated := a.Score("The service is not good and not reliable.")
	if plain.Positive <= plain.Negative {
		t.Fatalf("plain positive misread: %+v", plain)
	}
	if negated.Negative <= negated.Positive {
		t.Fatalf("negation not applied: %+v", negated)
	}
}

func TestIntensifiersAmplify(t *testing.T) {
	a := NewAnalyzer()
	mild := a.Score("The speed is good.")
	strong := a.Score("The speed is extremely good.")
	if strong.Positive <= mild.Positive {
		t.Fatalf("intensifier did not amplify: %v vs %v", strong.Positive, mild.Positive)
	}
	dim := a.Score("The speed is slightly good.")
	if dim.Positive >= mild.Positive {
		t.Fatalf("diminisher did not dampen: %v vs %v", dim.Positive, mild.Positive)
	}
}

func TestLongNeutralTextDilutes(t *testing.T) {
	a := NewAnalyzer()
	short := a.Score("Great speeds!")
	long := a.Score("Great speeds! " + strings.Repeat("The dish sits on the roof beside the antenna mast near the barn. ", 5))
	if long.Positive >= short.Positive {
		t.Fatalf("rambling text should dilute: %v vs %v", long.Positive, short.Positive)
	}
	if long.Neutral <= short.Neutral {
		t.Fatal("neutral mass should grow with plain tokens")
	}
}

func TestScoreProperties(t *testing.T) {
	a := NewAnalyzer()
	f := func(s string) bool {
		sc := a.Score(s)
		sum := sc.Positive + sc.Negative + sc.Neutral
		return sc.Positive >= 0 && sc.Negative >= 0 && sc.Neutral > 0 &&
			math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTextIsNeutral(t *testing.T) {
	s := NewAnalyzer().Score("")
	if s.Neutral != 1 || s.Positive != 0 || s.Negative != 0 {
		t.Fatalf("empty text = %+v", s)
	}
}

func TestCountUnigramsAndTop(t *testing.T) {
	texts := []string{
		"Outage again. The outage lasted hours.",
		"Another outage and more disconnects.",
		"Speeds are great today, speeds way up.",
	}
	counts := CountUnigrams(texts)
	if counts["outage"] != 3 {
		t.Fatalf("outage count = %d, want 3 (stemming)", counts["outage"])
	}
	if counts["speed"] != 2 {
		t.Fatalf("speed count = %d", counts["speed"])
	}
	top := Top(counts, 2)
	if len(top) != 2 || top[0].Word != "outage" {
		t.Fatalf("Top = %+v", top)
	}
	// Ties broken alphabetically.
	tie := Top(map[string]int{"b": 2, "a": 2, "c": 1}, 3)
	if tie[0].Word != "a" || tie[1].Word != "b" {
		t.Fatalf("tie order: %+v", tie)
	}
	if got := Top(nil, 5); len(got) != 0 {
		t.Fatalf("Top(nil) = %+v", got)
	}
}

func TestWordCloud(t *testing.T) {
	wc := WordCloud([]string{"massive outage tonight", "outage outage everywhere"}, 1)
	if len(wc) != 1 || wc[0].Word != "outage" || wc[0].Count != 3 {
		t.Fatalf("WordCloud = %+v", wc)
	}
}

func TestCountBigrams(t *testing.T) {
	counts := CountBigrams([]string{"roaming enabled on my dish", "roaming enabled for me too"})
	// Keys are stemmed: "roaming enabled" → "roam enabl".
	if counts["roam enabl"] != 2 {
		t.Fatalf("bigram count = %v", counts)
	}
}

func TestDictionary(t *testing.T) {
	d := OutageDictionary()
	cases := []struct {
		text  string
		match bool
	}{
		{"Total outage here in Ohio", true},
		{"My OUTAGES started an hour ago", true}, // case + plural via stem
		{"I have no connection since noon", true},
		{"The service went down around 9", true},
		{"Lovely sunny day, speeds are great", false},
		{"download speeds doubled overnight", false},
	}
	for _, c := range cases {
		if got := d.Matches(c.text); got != c.match {
			t.Fatalf("Matches(%q) = %v, want %v", c.text, got, c.match)
		}
	}
	if n := d.Count("outage outage and no connection"); n != 3 {
		t.Fatalf("Count = %d, want 3", n)
	}
}

func TestDictionaryPhraseBoundaries(t *testing.T) {
	d := NewDictionary("no service")
	if d.Matches("there is no better service") {
		t.Fatal("phrase matched non-adjacent tokens")
	}
	if !d.Matches("I've had No Service all day") {
		t.Fatal("phrase failed to match")
	}
	empty := NewDictionary()
	if empty.Matches("anything") {
		t.Fatal("empty dictionary matched")
	}
}
