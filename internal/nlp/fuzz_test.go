package nlp

import "testing"

// FuzzTokenPipeline cross-checks the tokenize-once substrate against the
// string-based reference pipeline on arbitrary (including invalid) UTF-8:
// the tokenizer/interner must reproduce Tokenize and StemAll, the compiled
// scorer must reproduce Analyzer.Score bit for bit, and the compiled
// automaton must reproduce Dictionary.Count for both word and phrase
// dictionaries.
func FuzzTokenPipeline(f *testing.F) {
	f.Add("Starlink went down again. No connection since 9am, don't know why!")
	f.Add("very fast service, extremely happy — not terrible at all")
	f.Add("outage outage and no connection")
	f.Add("café über naïve 速度 テスト")
	f.Add("rock'n'roll o'clock ' trailing'")
	f.Add("\xff\xfeinvalid\x80bytes' mixed with words")
	f.Add("")
	f.Add("down down down down")

	an := NewAnalyzer()
	dicts := []*Dictionary{
		OutageDictionary(),
		NewDictionary("down", "went down", "down down", "no connection", "connection"),
	}

	f.Fuzz(func(t *testing.T, s string) {
		want := Tokenize(s)
		in := NewInterner()
		ids := in.AppendTokens(nil, s)
		if len(ids) != len(want) {
			t.Fatalf("token count: iterator %d, Tokenize %d", len(ids), len(want))
		}
		stems := StemAll(want)
		for i, id := range ids {
			if got := in.Token(id); got != want[i] {
				t.Fatalf("token %d: %q, want %q", i, got, want[i])
			}
			if got := in.Token(in.StemID(id)); got != stems[i] {
				t.Fatalf("stem %d: %q, want %q", i, got, stems[i])
			}
			if in.IsStop(id) != IsStopword(want[i]) {
				t.Fatalf("stopword flag mismatch for %q", want[i])
			}
		}
		if got, want := scoreVia(an, in, ids), an.Score(s); got != want {
			t.Fatalf("scorer: %+v, analyzer: %+v", got, want)
		}
		for di, d := range dicts {
			m := d.CompileMatcher(in)
			if got, want := m.Count(ids), d.Count(s); got != want {
				t.Fatalf("dict %d: matcher count %d, naive %d", di, got, want)
			}
			if got, want := m.Matches(ids), d.Matches(s); got != want {
				t.Fatalf("dict %d: matcher matches %v, naive %v", di, got, want)
			}
		}
	})
}

func scoreVia(an *Analyzer, in *Interner, ids []TokenID) Sentiment {
	return an.CompileScorer(in).Score(ids)
}
