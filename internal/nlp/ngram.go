package nlp

import "sort"

// WordCount pairs a term with its frequency.
type WordCount struct {
	Word  string
	Count int
}

// CountUnigrams builds a stemmed, stopword-filtered unigram frequency table
// over texts — the "word cloud" of the paper, as data instead of pixels.
func CountUnigrams(texts []string) map[string]int {
	counts := map[string]int{}
	for _, t := range texts {
		for _, tok := range ContentTokens(t) {
			counts[Stem(tok)]++
		}
	}
	return counts
}

// CountBigrams builds a frequency table of adjacent stemmed content-token
// pairs, joined by a space ("roaming enabled").
func CountBigrams(texts []string) map[string]int {
	counts := map[string]int{}
	for _, t := range texts {
		toks := ContentTokens(t)
		for i := 0; i+1 < len(toks); i++ {
			counts[Stem(toks[i])+" "+Stem(toks[i+1])]++
		}
	}
	return counts
}

// Top returns the k highest-count terms, ties broken alphabetically for
// determinism.
func Top(counts map[string]int, k int) []WordCount {
	out := make([]WordCount, 0, len(counts))
	for w, c := range counts {
		out = append(out, WordCount{Word: w, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Word < out[j].Word
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// WordCloud is the ranked unigram table for a set of texts: what the paper
// renders as a cloud and then reads the top unigrams from.
func WordCloud(texts []string, k int) []WordCount {
	return Top(CountUnigrams(texts), k)
}

// Dictionary is a set of keywords and phrases matched against stemmed
// tokens. Phrases match as consecutive stemmed tokens.
type Dictionary struct {
	words   map[string]bool
	phrases [][]string
}

// NewDictionary builds a dictionary from entries; multi-word entries become
// phrase patterns. Entries are tokenized and stemmed, so surface variants
// ("outages", "Outage") normalize to the same pattern.
func NewDictionary(entries ...string) *Dictionary {
	d := &Dictionary{words: map[string]bool{}}
	for _, e := range entries {
		toks := StemAll(Tokenize(e))
		switch len(toks) {
		case 0:
		case 1:
			d.words[toks[0]] = true
		default:
			d.phrases = append(d.phrases, toks)
		}
	}
	return d
}

// OutageDictionary is the §4.1 hand-built keyword list for outage-related
// discussion. (The paper notes building it was "a manual tedious process";
// here it is code.)
func OutageDictionary() *Dictionary {
	return NewDictionary(
		"outage", "outages", "down", "offline", "downtime",
		"disconnected", "disconnects", "disconnecting",
		"no service", "no connection", "no internet", "lost connection",
		"lost signal", "went down", "is down", "service interruption",
		"interruption", "obstructed", "dead", "dropping out",
		"cant connect", "won't connect", "not working", "stopped working",
	)
}

// Count returns how many dictionary hits appear in text (each phrase
// occurrence and each matching token counts once).
func (d *Dictionary) Count(text string) int {
	toks := StemAll(Tokenize(text))
	n := 0
	for _, t := range toks {
		if d.words[t] {
			n++
		}
	}
	for _, ph := range d.phrases {
		for i := 0; i+len(ph) <= len(toks); i++ {
			match := true
			for j, p := range ph {
				if toks[i+j] != p {
					match = false
					break
				}
			}
			if match {
				n++
			}
		}
	}
	return n
}

// Matches reports whether the text contains any dictionary entry.
func (d *Dictionary) Matches(text string) bool { return d.Count(text) > 0 }
