package nlp_test

import (
	"fmt"

	"usersignals/internal/nlp"
)

func ExampleAnalyzer_Score() {
	an := nlp.NewAnalyzer()
	s := an.Score("Terrible outage again, absolutely unacceptable service.")
	fmt.Printf("negative=%v strong=%v\n", s.Negative > s.Positive, s.StrongNegative())
	// Output: negative=true strong=true
}

func ExampleWordCloud() {
	texts := []string{
		"Outage in Ohio, massive outage everywhere",
		"Another outage and more disconnects tonight",
	}
	for _, wc := range nlp.WordCloud(texts, 2) {
		fmt.Printf("%s:%d\n", wc.Word, wc.Count)
	}
	// Output:
	// outage:3
	// another:1
}

func ExampleDictionary_Matches() {
	dict := nlp.OutageDictionary()
	fmt.Println(dict.Matches("no connection since the storm"))
	fmt.Println(dict.Matches("lovely sunset over the dish"))
	// Output:
	// true
	// false
}

func ExampleStem() {
	fmt.Println(nlp.Stem("outages"), nlp.Stem("disconnected"), nlp.Stem("dropping"))
	// Output: outage disconnect drop
}
