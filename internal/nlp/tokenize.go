// Package nlp is the from-scratch text-analysis stack standing in for the
// cloud NLP services the paper uses (Azure Cognitive Services for sentiment,
// NLTK for word clouds): a tokenizer, a stopword list, a light stemmer, a
// negation- and intensifier-aware lexicon sentiment model whose
// (positive, negative, neutral) scores sum to 1, n-gram frequency tables,
// and keyword dictionaries for the §4.1 outage monitor.
package nlp

import (
	"strings"
	"unicode"
)

// Tokenize lowercases s and splits it into word tokens. Apostrophes inside
// words are kept ("don't" stays one token, normalized to "dont"), every
// other non-alphanumeric rune separates tokens.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'' && b.Len() > 0 && i+1 < len(runes) && unicode.IsLetter(runes[i+1]):
			// intra-word apostrophe: drop it, keep the word together
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// stopwords is a compact English stopword list (NLTK-flavoured) used when
// building word clouds; sentiment keeps stopwords because negations matter.
var stopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`
		a about above after again all am an and any are as at be because
		been before being below between both but by could did do does doing
		down during each few for from further had has have having he her
		here hers him his how i if in into is it its itself just me more
		most my no nor not of off on once only or other our ours out over
		own same she should so some such than that the their theirs them
		then there these they this those through to too under until up very
		was we were what when where which while who whom why will with you
		your yours ive im dont cant wont didnt doesnt isnt arent wasnt its
		thats theres youre theyre weve hes shes id youd wed get got gets
		getting also can may would us
	`) {
		stopwords[w] = true
	}
}

// IsStopword reports whether the (lowercased) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// ContentTokens tokenizes s and removes stopwords and single-letter tokens:
// the preprocessing used for word clouds.
func ContentTokens(s string) []string {
	toks := Tokenize(s)
	out := toks[:0:0]
	for _, t := range toks {
		if len(t) > 1 && !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Stem applies a light suffix-stripping stemmer (a conservative Porter
// subset) so that "outages"/"outage" and "disconnects"/"disconnected"
// collapse together for dictionary matching and word clouds.
func Stem(tok string) string {
	n := len(tok)
	switch {
	case n > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y"
	case n > 4 && strings.HasSuffix(tok, "sses"):
		return tok[:n-2]
	case n > 3 && strings.HasSuffix(tok, "es") && !strings.HasSuffix(tok, "ses"):
		return tok[:n-1] // outages → outage
	case n > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") && !strings.HasSuffix(tok, "us"):
		return tok[:n-1]
	case n > 5 && strings.HasSuffix(tok, "ing"):
		stem := tok[:n-3]
		return undouble(stem)
	case n > 4 && strings.HasSuffix(tok, "ed"):
		stem := tok[:n-2]
		return undouble(stem)
	default:
		return tok
	}
}

// undouble collapses a doubled final consonant left by suffix stripping
// ("dropp" → "drop"), except for the legitimate doubles ll/ss/zz.
func undouble(s string) string {
	n := len(s)
	if n < 3 {
		return s
	}
	last := s[n-1]
	if last == s[n-2] && last != 'l' && last != 's' && last != 'z' && !isVowelByte(last) {
		return s[:n-1]
	}
	return s
}

func isVowelByte(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// StemAll stems every token.
func StemAll(toks []string) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = Stem(t)
	}
	return out
}
