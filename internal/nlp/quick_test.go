package nlp

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property tests on the NLP primitives: these guard the invariants the
// pipelines rely on regardless of input text.

func TestStemProperties(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			stem := Stem(tok)
			if stem == "" {
				return false
			}
			if len(stem) > len(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeNoSeparatorsSurvive(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if strings.ContainsAny(tok, " \t\n.,!?;:()[]{}\"'") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryCountMatchesConsistency(t *testing.T) {
	d := OutageDictionary()
	f := func(s string) bool {
		c := d.Count(s)
		if c < 0 {
			return false
		}
		return d.Matches(s) == (c > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryCountAdditive(t *testing.T) {
	// Concatenating two texts with a separator yields at least the sum of
	// word hits (phrases could span the boundary, hence ≥, except our
	// separator breaks token adjacency so equality holds for words).
	d := NewDictionary("outage", "down")
	f := func(a, b string) bool {
		joined := a + " xx " + b
		return d.Count(joined) >= d.Count(a)+d.Count(b)-1 // tolerate boundary effects
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopIsSortedAndBounded(t *testing.T) {
	f := func(words []string, k uint8) bool {
		counts := map[string]int{}
		for _, w := range words {
			counts[w]++
		}
		top := Top(counts, int(k))
		if len(top) > int(k) && int(k) < len(counts) {
			return false
		}
		for i := 1; i < len(top); i++ {
			if top[i].Count > top[i-1].Count {
				return false
			}
			if top[i].Count == top[i-1].Count && top[i].Word < top[i-1].Word {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzerScoreDeterministic(t *testing.T) {
	a := NewAnalyzer()
	f := func(s string) bool {
		return a.Score(s) == a.Score(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCustomLexiconAnalyzer(t *testing.T) {
	a := NewAnalyzerWithLexicon(map[string]float64{"zorp": 0.9, "blarg": -0.9})
	pos := a.Score("zorp zorp zorp")
	neg := a.Score("blarg blarg blarg")
	if pos.Positive <= pos.Negative {
		t.Fatalf("custom positive word misread: %+v", pos)
	}
	if neg.Negative <= neg.Positive {
		t.Fatalf("custom negative word misread: %+v", neg)
	}
	// Unknown vocabulary is neutral.
	neu := a.Score("the quick brown fox")
	if neu.Neutral <= neu.Positive || neu.Neutral <= neu.Negative {
		t.Fatalf("unknown text should be neutral: %+v", neu)
	}
}
