package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"usersignals/internal/leo"
	"usersignals/internal/newswire"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
	"usersignals/internal/usaas"
)

// Options configures a Coordinator.
type Options struct {
	// Token is required from callers and forwarded to shards.
	Token string
	// HTTPClient overrides the transport used for shard fan-out.
	HTTPClient *http.Client
	// Model and News feed the coordinator-side annotation stages (speed
	// launch annotations, peak news search, deployment advice).
	Model *leo.Model
	News  *newswire.Index
	// Retry and Breaker tune the per-shard clients; zero values use the
	// usaas client defaults.
	Retry   usaas.RetryPolicy
	Breaker usaas.BreakerPolicy
	// MaxBodyBytes caps ingest request bodies (default 64 MiB).
	MaxBodyBytes int64
}

// shardConn is one shard's client plus its fan-out gauges.
type shardConn struct {
	name    string
	client  *usaas.Client
	up      atomic.Bool
	fanouts atomic.Uint64
	errs    atomic.Uint64

	mu  sync.Mutex
	lat *stats.Hist // fan-out latency, ms
}

// latencyBins is the fan-out latency histogram shape: 0-1000 ms in 20 ms
// buckets (observations past the top bucket are dropped by Hist.Add).
var latencyBins = stats.Binner{Lo: 0, Hi: 1000, NBins: 50}

// observe records one fan-out RPC against the shard's gauges.
func (sc *shardConn) observe(start time.Time, err error) {
	sc.fanouts.Add(1)
	sc.up.Store(err == nil)
	if err != nil {
		sc.errs.Add(1)
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	sc.mu.Lock()
	sc.lat.Add(ms)
	sc.mu.Unlock()
}

// Coordinator is the scatter-gather query front end: it owns no store,
// routes ingest by the partition map, fans queries to every shard's
// /v1/partials, and folds the returned accumulator state in canonical
// ascending-day order (usaas's exported Merge* functions), so its answers
// are byte-identical to a single node holding all the data.
type Coordinator struct {
	pmap   Map
	opts   Options
	shards []*shardConn
	mux    *http.ServeMux

	merges   atomic.Uint64 // queries answered from merged partials
	degraded atomic.Uint64 // degradation annotations + shard-failure refusals
}

// New builds a coordinator over the partition map.
func New(m Map, opts Options) *Coordinator {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	c := &Coordinator{pmap: m, opts: opts, mux: http.NewServeMux()}
	for _, sh := range m.Shards {
		c.shards = append(c.shards, &shardConn{
			name: sh.Name,
			client: usaas.NewClientWithOptions("", usaas.ClientOptions{
				HTTPClient: opts.HTTPClient,
				Endpoints:  sh.Endpoints,
				Token:      opts.Token,
				Retry:      opts.Retry,
				Breaker:    opts.Breaker,
			}),
			lat: stats.NewHist(latencyBins),
		})
	}
	c.mux.HandleFunc("/v1/sessions", c.handleSessions)
	c.mux.HandleFunc("/v1/posts", c.handlePosts)
	c.mux.HandleFunc("/v1/stats", c.handleStats)
	c.mux.HandleFunc("/v1/insights/engagement", c.handleEngagement)
	c.mux.HandleFunc("/v1/insights/mos", c.handleMOS)
	c.mux.HandleFunc("/v1/insights/sentiment", c.handleSentiment)
	c.mux.HandleFunc("/v1/insights/peaks", c.handlePeaks)
	c.mux.HandleFunc("/v1/insights/outages", c.handleOutages)
	c.mux.HandleFunc("/v1/insights/speeds", c.handleSpeeds)
	c.mux.HandleFunc("/v1/insights/trends", c.handleTrends)
	c.mux.HandleFunc("/v1/query/experience", c.handleExperience)
	c.mux.HandleFunc("/v1/insights/confounders", c.handleConfounders)
	c.mux.HandleFunc("/v1/advice/traffic-engineering", c.handleTEAdvice)
	c.mux.HandleFunc("/v1/advice/deployment", c.handleDeploymentAdvice)
	c.mux.HandleFunc("/v1/report", c.handleReport)
	c.mux.HandleFunc("/v1/insights/incidents", c.handleIncidents)
	c.mux.HandleFunc("/v1/healthz", c.handleHealthz)
	c.mux.HandleFunc("/v1/readyz", c.handleReadyz)
	return c
}

// Handler returns the coordinator's HTTP handler, wrapped with bearer auth
// when a token is configured (health endpoints bypass, like usaasd).
func (c *Coordinator) Handler() http.Handler {
	if c.opts.Token == "" {
		return c.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" || r.URL.Path == "/v1/readyz" {
			c.mux.ServeHTTP(w, r)
			return
		}
		if r.Header.Get("Authorization") != "Bearer "+c.opts.Token {
			writeErr(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		c.mux.ServeHTTP(w, r)
	})
}

// --- fan-out plumbing ---

// shardErr is one shard's fan-out failure.
type shardErr struct {
	name string
	err  error
}

func (e shardErr) String() string { return fmt.Sprintf("shard %s unavailable: %v", e.name, e.err) }

// each runs f against every shard concurrently and returns the failures
// sorted by shard name (stable degradation annotations).
func (c *Coordinator) each(f func(i int, sc *shardConn) error) []shardErr {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sc := range c.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			start := time.Now()
			err := f(i, sc)
			sc.observe(start, err)
			errs[i] = err
		}(i, sc)
	}
	wg.Wait()
	var out []shardErr
	for i, err := range errs {
		if err != nil {
			out = append(out, shardErr{name: c.shards[i].name, err: err})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// gatherPartials fans GET /v1/partials to every shard. bundles[i] is nil
// for shards that failed.
func (c *Coordinator) gatherPartials(ctx context.Context, query url.Values) ([]*usaas.ShardPartials, []shardErr) {
	bundles := make([]*usaas.ShardPartials, len(c.shards))
	errs := c.each(func(i int, sc *shardConn) error {
		p, err := sc.client.Partials(ctx, query)
		if err != nil {
			return err
		}
		bundles[i] = &p
		return nil
	})
	c.merges.Add(1)
	return bundles, errs
}

// gatherModelPartials fans the model phase (POST /v1/partials/model) to
// every shard; any failure fails the phase (a partial model-phase answer
// would silently change the merged number).
func (c *Coordinator) gatherModelPartials(ctx context.Context, req usaas.ModelPartialsRequest) ([]usaas.ModelPartials, error) {
	out := make([]usaas.ModelPartials, len(c.shards))
	errs := c.each(func(i int, sc *shardConn) error {
		mp, err := sc.client.ModelPartials(ctx, req)
		if err != nil {
			return err
		}
		out[i] = mp
		return nil
	})
	if len(errs) > 0 {
		c.degraded.Add(uint64(len(errs)))
		return nil, fmt.Errorf("%s", errs[0])
	}
	return out, nil
}

// refuse writes the scatter failure as an explicit 503 naming the shard —
// the degradation contract for every endpoint except /v1/report (which
// degrades per section instead). Never a silently partial answer.
func (c *Coordinator) refuse(w http.ResponseWriter, errs []shardErr) bool {
	if len(errs) == 0 {
		return false
	}
	c.degraded.Add(uint64(len(errs)))
	writeErr(w, http.StatusServiceUnavailable, "%s", errs[0])
	return true
}

// --- response plumbing (mirrors the usaas service's wire helpers) ---

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	return false
}

// queryForm mirrors the usaas service's lenient numeric query parsing,
// including its error strings.
type queryForm struct {
	q   url.Values
	err error
}

func formOf(r *http.Request) *queryForm { return &queryForm{q: r.URL.Query()} }

func (f *queryForm) int(key string, def int) int {
	v := f.q.Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		if f.err == nil {
			f.err = fmt.Errorf("query parameter %q: invalid integer %q", key, v)
		}
		return def
	}
	return n
}

func (f *queryForm) float(key string, def float64) float64 {
	v := f.q.Get(key)
	if v == "" {
		return def
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		if f.err == nil {
			f.err = fmt.Errorf("query parameter %q: invalid number %q", key, v)
		}
		return def
	}
	return x
}

func (f *queryForm) reject(w http.ResponseWriter) bool {
	if f.err == nil {
		return false
	}
	writeErr(w, http.StatusBadRequest, "%v", f.err)
	return true
}

func parseMetric(name string) (telemetry.Metric, error) {
	for m := telemetry.LatencyMean; m <= telemetry.BandwidthP95; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown metric %q", name)
}

func parseEngagement(name string) (telemetry.Engagement, error) {
	for _, e := range telemetry.Engagements() {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("unknown engagement %q", name)
}

// --- ingest ---

// handleSessions routes a session batch: records split by owning shard
// (ShardOf the record's start day), each slice ships under a derived
// sub-batch ID so retries stay idempotent per shard.
func (c *Coordinator) handleSessions(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, c.opts.MaxBodyBytes)
	var recs []telemetry.SessionRecord
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "ndjson") {
		if err := telemetry.ReadJSONL(body, func(rec *telemetry.SessionRecord) error {
			recs = append(recs, *rec)
			return nil
		}); err != nil {
			writeErr(w, http.StatusBadRequest, "decoding sessions: %v", err)
			return
		}
	} else if err := json.NewDecoder(body).Decode(&recs); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding sessions: %v", err)
		return
	}
	groups := c.pmap.SplitSessions(recs)
	batchID := r.Header.Get(usaas.BatchIDHeader)
	c.ingest(w, r.Context(), batchID, func(ctx context.Context, i int, sc *shardConn) (usaas.IngestResponse, error) {
		return sc.client.IngestSessionsBatch(ctx, c.pmap.SubBatchID(batchID, i), groups[i])
	})
}

// handlePosts routes a post batch by each post's day.
func (c *Coordinator) handlePosts(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, c.opts.MaxBodyBytes)
	var posts []social.Post
	if err := json.NewDecoder(body).Decode(&posts); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding posts: %v", err)
		return
	}
	groups := c.pmap.SplitPosts(posts)
	batchID := r.Header.Get(usaas.BatchIDHeader)
	c.ingest(w, r.Context(), batchID, func(ctx context.Context, i int, sc *shardConn) (usaas.IngestResponse, error) {
		return sc.client.IngestPostsBatch(ctx, c.pmap.SubBatchID(batchID, i), groups[i])
	})
}

// ingest fans the per-shard slices out — every shard gets its sub-batch,
// even an empty one, so each records the idempotency key — and aggregates
// the acknowledgement: Accepted and the totals sum the shards' responses,
// Duplicate is set only when every shard deduplicated. Because a shard
// replays its original acknowledgement, the sums reproduce the single-node
// ack exactly, replays included. A shard failure is an explicit 503; the
// derived sub-batch IDs make a client retry exact (already-applied slices
// deduplicate shard-side).
func (c *Coordinator) ingest(w http.ResponseWriter, ctx context.Context, batchID string, send func(ctx context.Context, i int, sc *shardConn) (usaas.IngestResponse, error)) {
	acks := make([]usaas.IngestResponse, len(c.shards))
	errs := c.each(func(i int, sc *shardConn) error {
		resp, err := send(ctx, i, sc)
		acks[i] = resp
		return err
	})
	if c.refuse(w, errs) {
		return
	}
	out := usaas.IngestResponse{BatchID: batchID, Duplicate: true}
	for _, a := range acks {
		out.Accepted += a.Accepted
		out.TotalSessions += a.TotalSessions
		out.TotalPosts += a.TotalPosts
		if !a.Duplicate {
			out.Duplicate = false
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// --- stats & health ---

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	totals := make([]usaas.StatsResponse, len(c.shards))
	errs := c.each(func(i int, sc *shardConn) error {
		st, err := sc.client.Stats(r.Context())
		totals[i] = st
		return err
	})
	if c.refuse(w, errs) {
		return
	}
	resp := usaas.StatsResponse{Cluster: c.clusterStats()}
	for _, st := range totals {
		resp.Sessions += st.Sessions
		resp.Posts += st.Posts
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterStats snapshots the coordinator gauges.
func (c *Coordinator) clusterStats() *usaas.ClusterStats {
	cs := &usaas.ClusterStats{
		MapVersion:       c.pmap.Version,
		PartialMerges:    c.merges.Load(),
		DegradedSections: c.degraded.Load(),
	}
	for _, sc := range c.shards {
		sc.mu.Lock()
		hist := stats.Hist{B: sc.lat.B, Counts: append([]int(nil), sc.lat.Counts...)}
		sc.mu.Unlock()
		cs.Shards = append(cs.Shards, usaas.ShardStatus{
			Name:      sc.name,
			Up:        sc.up.Load(),
			Fanouts:   sc.fanouts.Load(),
			Errors:    sc.errs.Load(),
			LatencyMs: hist,
		})
	}
	return cs
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, usaas.HealthResponse{Status: "ok"})
}

// handleReadyz reports ready only when every shard is ready: a coordinator
// that cannot reach its full fleet would serve refusals, and a load
// balancer should know before routing to it.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	errs := c.each(func(i int, sc *shardConn) error {
		return sc.client.Ready(r.Context())
	})
	if len(errs) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, usaas.HealthResponse{Status: "not ready", Error: errs[0].String()})
		return
	}
	writeJSON(w, http.StatusOK, usaas.HealthResponse{Status: "ready"})
}

// --- scatter-gather queries ---

func sectionsQuery(sections string) url.Values {
	return url.Values{"sections": {sections}}
}

// zeroNaNs mirrors the usaas service's NaN scrubbing for JSON.
func zeroNaNs(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x == x { // !NaN
			out[i] = x
		}
	}
	return out
}

func (c *Coordinator) handleEngagement(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	metric, err := parseMetric(r.URL.Query().Get("metric"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng, err := parseEngagement(r.URL.Query().Get("engagement"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	f := formOf(r)
	lo := f.float("lo", 0)
	hi := f.float("hi", 300)
	bins := f.int("bins", 10)
	if f.reject(w) {
		return
	}
	if hi <= lo || bins < 1 || bins > 1000 {
		writeErr(w, http.StatusBadRequest, "invalid binning lo=%v hi=%v bins=%d", lo, hi, bins)
		return
	}
	q := sectionsQuery(usaas.SectionDose)
	q.Set("metric", metric.String())
	q.Set("engagement", eng.String())
	q.Set("lo", fmt.Sprint(lo))
	q.Set("hi", fmt.Sprint(hi))
	q.Set("bins", fmt.Sprint(bins))
	if isp := r.URL.Query().Get("isp"); isp != "" {
		q.Set("isp", isp)
	}
	bundles, errs := c.gatherPartials(r.Context(), q)
	if c.refuse(w, errs) {
		return
	}
	parts := make([][]usaas.DoseDayPartial, 0, len(bundles))
	for _, b := range bundles {
		parts = append(parts, b.Dose)
	}
	series, err := usaas.MergeDosePartials(stats.Binner{Lo: lo, Hi: hi, NBins: bins}, parts)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "%v", err)
		return
	}
	norm := usaas.Normalize100(series)
	writeJSON(w, http.StatusOK, usaas.EngagementResponse{
		Metric:     metric.String(),
		Engagement: eng.String(),
		X:          series.X,
		Y:          zeroNaNs(series.Y),
		Normalized: zeroNaNs(norm.Y),
		Count:      series.Count,
	})
}

// gatherSessions fetches the day-major rated subsequence and cluster
// session count.
func (c *Coordinator) gatherSessions(ctx context.Context) (rated []telemetry.SessionRecord, total int, errs []shardErr) {
	bundles, errs := c.gatherPartials(ctx, sectionsQuery(usaas.SectionSessions))
	if len(errs) > 0 {
		return nil, 0, errs
	}
	parts := make([][]telemetry.SessionRecord, 0, len(bundles))
	for _, b := range bundles {
		total += b.Sessions
		parts = append(parts, b.Rated)
	}
	return usaas.MergeRated(parts), total, nil
}

func (c *Coordinator) handleMOS(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	f := formOf(r)
	bins := f.int("bins", 10)
	if f.reject(w) {
		return
	}
	rated, total, errs := c.gatherSessions(r.Context())
	if c.refuse(w, errs) {
		return
	}
	resp, err := usaas.MOSFromRated(rated, total, bins)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// gatherSocial fetches the social partial bundles; ok is false (and a 404
// matching the single-node "no posts ingested" has been written) when no
// shard holds posts.
func (c *Coordinator) gatherSocial(w http.ResponseWriter, r *http.Request, sections string) ([]*usaas.ShardPartials, timeline.Range, bool) {
	bundles, errs := c.gatherPartials(r.Context(), sectionsQuery(sections))
	if c.refuse(w, errs) {
		return nil, timeline.Range{}, false
	}
	window, have := usaas.SocialWindow(bundles)
	if !have {
		writeErr(w, http.StatusNotFound, "no posts ingested")
		return nil, timeline.Range{}, false
	}
	return bundles, window, true
}

func socialParts(bundles []*usaas.ShardPartials) (sent [][]usaas.DaySentiment, kw [][]usaas.DayKeywords, clouds [][]usaas.DayCloud, terms [][]usaas.TermPartial) {
	for _, b := range bundles {
		if b == nil || !b.HavePosts {
			continue
		}
		sent = append(sent, b.Sentiment)
		kw = append(kw, b.Keywords)
		clouds = append(clouds, b.Clouds)
		terms = append(terms, b.Terms)
	}
	return
}

func (c *Coordinator) handleSentiment(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	bundles, window, ok := c.gatherSocial(w, r, usaas.SectionSocial)
	if !ok {
		return
	}
	sent, _, _, _ := socialParts(bundles)
	writeJSON(w, http.StatusOK, usaas.MergeSentiment(window, sent))
}

func (c *Coordinator) handlePeaks(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	f := formOf(r)
	k := f.int("k", 3)
	if f.reject(w) {
		return
	}
	if k < 1 || k > 50 {
		writeErr(w, http.StatusBadRequest, "k out of range")
		return
	}
	bundles, window, ok := c.gatherSocial(w, r, usaas.SectionSocial)
	if !ok {
		return
	}
	sent, _, clouds, _ := socialParts(bundles)
	daily := usaas.MergeSentiment(window, sent)
	writeJSON(w, http.StatusOK, usaas.MergePeaks(daily, usaas.MergeClouds(clouds), c.opts.News, k))
}

func (c *Coordinator) handleOutages(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	f := formOf(r)
	threshold := f.int("threshold", 0)
	if f.reject(w) {
		return
	}
	bundles, window, ok := c.gatherSocial(w, r, usaas.SectionSocial)
	if !ok {
		return
	}
	_, kw, _, _ := socialParts(bundles)
	series := usaas.MergeKeywords(window, kw)
	if threshold > 0 {
		writeJSON(w, http.StatusOK, usaas.AlertsFromSeries(series, threshold))
		return
	}
	writeJSON(w, http.StatusOK, series)
}

func (c *Coordinator) handleSpeeds(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	bundles, window, ok := c.gatherSocial(w, r, usaas.SectionSpeeds)
	if !ok {
		return
	}
	var parts [][]usaas.SpeedMonthPartial
	for _, b := range bundles {
		if b != nil && b.HavePosts {
			parts = append(parts, b.Speeds)
		}
	}
	writeJSON(w, http.StatusOK, usaas.MergeSpeeds(window, parts, c.opts.Model, 1))
}

func (c *Coordinator) handleTrends(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	bundles, window, ok := c.gatherSocial(w, r, usaas.SectionSocial)
	if !ok {
		return
	}
	_, _, _, terms := socialParts(bundles)
	writeJSON(w, http.StatusOK, usaas.MergeTrends(window, terms, usaas.TrendOptions{}))
}

func (c *Coordinator) handleExperience(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	isp := r.URL.Query().Get("isp")
	if isp == "" {
		writeErr(w, http.StatusBadRequest, "isp parameter required")
		return
	}
	q := sectionsQuery(usaas.SectionSessions + "," + usaas.SectionExperience)
	q.Set("isp", isp)
	bundles, errs := c.gatherPartials(r.Context(), q)
	if c.refuse(w, errs) {
		return
	}
	var ratedParts [][]telemetry.SessionRecord
	var expParts []*usaas.ExperiencePartial
	expSessions := 0
	for _, b := range bundles {
		ratedParts = append(ratedParts, b.Rated)
		expParts = append(expParts, b.Experience)
		if b.Experience != nil {
			expSessions += b.Experience.Sessions
		}
	}
	if expSessions == 0 {
		writeErr(w, http.StatusNotFound, "no sessions for isp %q", isp)
		return
	}
	var predicted [][]usaas.DayOnlinePartial
	if p, err := usaas.TrainMOSPredictor(usaas.MergeRated(ratedParts), 1.0); err == nil {
		mps, err := c.gatherModelPartials(r.Context(), usaas.ModelPartialsRequest{
			Model:    *p.Model(),
			ISP:      isp,
			Sections: []string{usaas.ModelSectionExperience},
		})
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		for _, mp := range mps {
			predicted = append(predicted, mp.Predicted)
		}
	}
	writeJSON(w, http.StatusOK, usaas.MergeExperience(isp, expParts, predicted))
}

func (c *Coordinator) handleConfounders(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	eng, err := parseEngagement(r.URL.Query().Get("engagement"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := sectionsQuery(usaas.SectionConfounders)
	q.Set("engagement", eng.String())
	bundles, errs := c.gatherPartials(r.Context(), q)
	if c.refuse(w, errs) {
		return
	}
	parts := make([][]usaas.ConfounderDayPartial, 0, len(bundles))
	for _, b := range bundles {
		parts = append(parts, b.Confounders)
	}
	effects, err := usaas.MergeConfounders(parts)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, effects)
}

func (c *Coordinator) handleTEAdvice(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	rated, total, errs := c.gatherSessions(r.Context())
	if c.refuse(w, errs) {
		return
	}
	if total == 0 {
		writeErr(w, http.StatusUnprocessableEntity, "usaas: no sessions to advise on")
		return
	}
	p, err := usaas.TrainMOSPredictor(rated, 1.0)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "usaas: traffic-engineering advisor: %v", err)
		return
	}
	mps, err := c.gatherModelPartials(r.Context(), usaas.ModelPartialsRequest{
		Model:    *p.Model(),
		Sections: []string{usaas.ModelSectionTE},
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	parts := make([][]usaas.TEDayPartial, 0, len(mps))
	for _, mp := range mps {
		parts = append(parts, mp.TE)
	}
	writeJSON(w, http.StatusOK, usaas.MergeTE(total, parts))
}

// handleDeploymentAdvice serves locally: the launch planner consults only
// the constellation model, no store state.
func (c *Coordinator) handleDeploymentAdvice(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	f := formOf(r)
	from := timeline.Day(f.int("from", int(timeline.Date(2022, 6, 1))))
	horizon := timeline.Day(f.int("horizon", int(timeline.Date(2022, 12, 1))))
	maxExtra := f.int("max", 8)
	sats := f.int("sats", 50)
	target := f.float("target", 0)
	if f.reject(w) {
		return
	}
	if c.opts.Model == nil {
		writeErr(w, http.StatusNotFound, "no constellation model configured")
		return
	}
	advice, err := usaas.AdviseDeployment(c.opts.Model, from, horizon, maxExtra, sats, target)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, advice)
}

func (c *Coordinator) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	eng, err := parseEngagement(r.URL.Query().Get("engagement"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	f := formOf(r)
	minDrop := f.float("min_drop", 0)
	if f.reject(w) {
		return
	}
	bundles, errs := c.gatherPartials(r.Context(), sectionsQuery(usaas.SectionDaily))
	if c.refuse(w, errs) {
		return
	}
	parts := make([][]usaas.DayEngagement, 0, len(bundles))
	for _, b := range bundles {
		parts = append(parts, b.Daily)
	}
	days := usaas.MergeDaily(parts)
	if len(days) == 0 {
		writeErr(w, http.StatusNotFound, "no sessions ingested")
		return
	}
	incidents := usaas.EngagementIncidents(days, eng, usaas.IncidentOptions{MinDrop: minDrop})
	writeJSON(w, http.StatusOK, usaas.IncidentResponse{
		Engagement: eng.String(), Days: days, Incidents: incidents,
	})
}

// reportSections are every section name buildReportFrom can attach notes
// to, in guard-chain order. A dead shard during the report scatter taints
// all of them — the data it held could have fed any section.
var reportSections = []string{
	"sessions", "engagement-drops", "mos-correlations", "mos-predictor",
	"traffic-engineering", "posts", "social-sweep", "sentiment-peaks",
	"outage-monitor", "trends", "speeds",
}

// handleReport is the scatter-gather report: one partials fan-out covering
// the report's sections, merged through the exact guard chain BuildReport
// uses. Shards that fail mid-scatter degrade per section — the report
// still lands with explicit notes naming the shard, never silently
// missing its days.
func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	sections := strings.Join([]string{
		usaas.SectionSessions, usaas.SectionDrops, usaas.SectionSocial, usaas.SectionSpeeds,
	}, ",")
	bundles, errs := c.gatherPartials(r.Context(), sectionsQuery(sections))
	notes := map[string][]string{}
	for _, e := range errs {
		for _, sec := range reportSections {
			notes[sec] = append(notes[sec], fmt.Sprintf("%s: %s", sec, e))
		}
	}
	if len(errs) > 0 {
		c.degraded.Add(uint64(len(errs)))
	}
	rep := usaas.AssembleClusterReport(usaas.ClusterReportInput{
		Bundles: bundles,
		Notes:   notes,
		News:    c.opts.News,
		Model:   c.opts.Model,
		TEPartials: func(model stats.LinearModel) ([][]usaas.TEDayPartial, error) {
			mps, err := c.gatherModelPartials(r.Context(), usaas.ModelPartialsRequest{
				Model:    model,
				Sections: []string{usaas.ModelSectionTE},
			})
			if err != nil {
				return nil, err
			}
			parts := make([][]usaas.TEDayPartial, 0, len(mps))
			for _, mp := range mps {
				parts = append(parts, mp.TE)
			}
			return parts, nil
		},
	})
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rep.Render())
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
