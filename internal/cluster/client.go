package cluster

import (
	"context"
	"sync"

	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/usaas"
)

// Client applies the partition map client-side: ingest batches are split
// by calendar day and sent straight to the owning shards, taking the
// coordinator off the write path. Both routes use the same Map, the same
// sub-batch IDs, and the same acknowledgement fold, so the ack a producer
// sees is byte-identical whichever path the batch took — including
// replays, where every shard returns its originally recorded ack.
//
// Queries still go through a Coordinator; only writes shortcut it.
type Client struct {
	pmap   Map
	shards []*usaas.Client
}

// ClientConfig tunes the per-shard clients. Zero values use the usaas
// client defaults, matching what a Coordinator builds for its own fan-out.
type ClientConfig struct {
	Token   string
	Retry   usaas.RetryPolicy
	Breaker usaas.BreakerPolicy
}

// NewClient builds a client-side splitter over the partition map. Each
// shard's endpoint list feeds the usaas client's failover machinery, so a
// replicated shard pair behaves exactly as it does behind a coordinator.
func NewClient(m Map, cfg ClientConfig) *Client {
	c := &Client{pmap: m}
	for _, sh := range m.Shards {
		c.shards = append(c.shards, usaas.NewClientWithOptions("", usaas.ClientOptions{
			Endpoints: sh.Endpoints,
			Token:     cfg.Token,
			Retry:     cfg.Retry,
			Breaker:   cfg.Breaker,
		}))
	}
	return c
}

// IngestSessionsBatch splits recs by day and delivers each shard its
// sub-batch — including empty ones, which shards record under the dedup
// key so replays reproduce the original ack.
func (c *Client) IngestSessionsBatch(ctx context.Context, batchID string, recs []telemetry.SessionRecord) (usaas.IngestResponse, error) {
	groups := c.pmap.SplitSessions(recs)
	return c.ingest(ctx, batchID, func(i int) (usaas.IngestResponse, error) {
		return c.shards[i].IngestSessionsBatch(ctx, c.pmap.SubBatchID(batchID, i), groups[i])
	})
}

// IngestPostsBatch is the post-side split, same contract.
func (c *Client) IngestPostsBatch(ctx context.Context, batchID string, posts []social.Post) (usaas.IngestResponse, error) {
	groups := c.pmap.SplitPosts(posts)
	return c.ingest(ctx, batchID, func(i int) (usaas.IngestResponse, error) {
		return c.shards[i].IngestPostsBatch(ctx, c.pmap.SubBatchID(batchID, i), groups[i])
	})
}

// ingest fans the batch to every shard concurrently and folds the acks
// the way a single node would have answered: accepted counts and store
// totals sum across shards, and the batch is a duplicate only if every
// shard saw its sub-batch before. Any shard failure fails the whole
// batch — the producer retries it, and per-shard dedup makes the retry
// exact, never partial.
func (c *Client) ingest(ctx context.Context, batchID string, send func(i int) (usaas.IngestResponse, error)) (usaas.IngestResponse, error) {
	acks := make([]usaas.IngestResponse, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acks[i], errs[i] = send(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return usaas.IngestResponse{}, err
		}
	}
	out := usaas.IngestResponse{BatchID: batchID, Duplicate: true}
	for _, a := range acks {
		out.Accepted += a.Accepted
		out.TotalSessions += a.TotalSessions
		out.TotalPosts += a.TotalPosts
		if !a.Duplicate {
			out.Duplicate = false
		}
	}
	return out, nil
}
