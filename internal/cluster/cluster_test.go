package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"usersignals/internal/conference"
	"usersignals/internal/newswire"
	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
	"usersignals/internal/usaas"
)

// The shared study corpus: one post corpus (with its constellation model
// and news index) reused across every cluster test; sessions vary by seed.
var (
	corpusOnce sync.Once
	corpus     *social.Corpus
	corpusCfg  social.Config
	newsIndex  *newswire.Index
)

func studyCorpus(t *testing.T) (*social.Corpus, social.Config, *newswire.Index) {
	t.Helper()
	corpusOnce.Do(func() {
		corpusCfg = social.DefaultConfig(17)
		var err error
		corpus, err = social.Generate(corpusCfg)
		if err != nil {
			panic(err)
		}
		newsIndex = newswire.Build(corpusCfg.Model.Launches(), corpusCfg.Outages, corpusCfg.Milestones)
	})
	return corpus, corpusCfg, newsIndex
}

// sessionData generates enough sessions to cross the single node's 4096-row
// chunk boundary, so byte-identity against the coordinator also pins the
// chunked row store's merged/tail split.
func sessionData(t *testing.T, seed uint64) []telemetry.SessionRecord {
	t.Helper()
	opts := conference.Defaults(seed, 5000)
	opts.SurveyRate = 0.08
	g, err := conference.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// testCluster is one coordinator over n single-node shard servers, plus a
// reference single node fed the identical batches.
type testCluster struct {
	coord   *Coordinator
	coordTS *httptest.Server
	shards  []*httptest.Server
	single  *httptest.Server
}

func newShardServer(t *testing.T, workers int) *httptest.Server {
	t.Helper()
	_, cfg, news := studyCorpus(t)
	store := &usaas.Store{}
	store.StartApplyPipeline(workers)
	ts := httptest.NewServer(usaas.NewServer(store, usaas.ServerOptions{Model: cfg.Model, News: news}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// buildCluster stands up n shards, a coordinator, and the reference single
// node. workers sets the shards' apply-pipeline width (the reference node
// applies inline; bytes must match regardless). retry tunes the
// coordinator's fan-out clients (zero = defaults).
func buildCluster(t *testing.T, n, workers int, retry usaas.RetryPolicy) *testCluster {
	t.Helper()
	_, cfg, news := studyCorpus(t)
	tc := &testCluster{single: newShardServer(t, 0)}
	m := Map{Version: 1}
	for i := 0; i < n; i++ {
		ts := newShardServer(t, workers)
		tc.shards = append(tc.shards, ts)
		m.Shards = append(m.Shards, Shard{Name: fmt.Sprintf("s%d", i), Endpoints: []string{ts.URL}})
	}
	tc.coord = New(m, Options{Model: cfg.Model, News: news, Retry: retry})
	tc.coordTS = httptest.NewServer(tc.coord.Handler())
	t.Cleanup(tc.coordTS.Close)
	return tc
}

// ingestBoth feeds the coordinator and the reference node the same ragged
// batches (including a duplicate replay) and cross-checks the aggregated
// acknowledgements.
func ingestBoth(t *testing.T, tc *testCluster, recs []telemetry.SessionRecord, posts []social.Post) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cc := usaas.NewClientWithOptions(tc.coordTS.URL, usaas.ClientOptions{})
	sc := usaas.NewClientWithOptions(tc.single.URL, usaas.ClientOptions{})

	cuts := []int{1, 600, 2047, 2048, 2049, 4500, len(recs)}
	prev := 0
	for i, cut := range cuts {
		if cut > len(recs) {
			cut = len(recs)
		}
		if cut < prev {
			continue
		}
		id := fmt.Sprintf("batch-%d", i)
		cr, err := cc.IngestSessionsBatch(ctx, id, recs[prev:cut])
		if err != nil {
			t.Fatalf("coordinator ingest %s: %v", id, err)
		}
		sr, err := sc.IngestSessionsBatch(ctx, id, recs[prev:cut])
		if err != nil {
			t.Fatalf("single ingest %s: %v", id, err)
		}
		if cr != sr {
			t.Fatalf("ingest ack diverges for %s: coordinator %+v vs single %+v", id, cr, sr)
		}
		prev = cut
	}
	// Replay one batch: every routed sub-batch must deduplicate, and the
	// aggregated acknowledgement must replay the original ack exactly like
	// the single node does.
	cr, err := cc.IngestSessionsBatch(ctx, "batch-1", recs[1:600])
	if err != nil {
		t.Fatalf("coordinator replay: %v", err)
	}
	sr, err := sc.IngestSessionsBatch(ctx, "batch-1", recs[1:600])
	if err != nil {
		t.Fatalf("single replay: %v", err)
	}
	if !cr.Duplicate {
		t.Fatalf("coordinator replay not deduplicated: %+v", cr)
	}
	if cr != sr {
		t.Fatalf("replay ack diverges: coordinator %+v vs single %+v", cr, sr)
	}

	if len(posts) > 0 {
		half := len(posts) / 2
		for i, span := range [][]social.Post{posts[:half], posts[half:]} {
			id := fmt.Sprintf("posts-%d", i)
			if _, err := cc.IngestPostsBatch(ctx, id, span); err != nil {
				t.Fatalf("coordinator post ingest: %v", err)
			}
			if _, err := sc.IngestPostsBatch(ctx, id, span); err != nil {
				t.Fatalf("single post ingest: %v", err)
			}
		}
		// Replay the first half against the coordinator only; the shard-side
		// dedup must swallow it.
		if cr, err := cc.IngestPostsBatch(ctx, "posts-0", posts[:half]); err != nil || !cr.Duplicate {
			t.Fatalf("coordinator post replay: resp=%+v err=%v", cr, err)
		}
	}

	// The cluster-wide totals must agree with the single node's counts.
	cs, err := cc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Sessions != ss.Sessions || cs.Posts != ss.Posts {
		t.Fatalf("store totals diverge: coordinator %d/%d vs single %d/%d",
			cs.Sessions, cs.Posts, ss.Sessions, ss.Posts)
	}
}

// get fetches a path and returns (status, body bytes as string).
func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// queryPaths is every read endpoint the coordinator must answer
// byte-identically to a single node holding all the data.
func queryPaths(isp string) []string {
	return []string{
		"/v1/report",
		"/v1/report?format=text",
		"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence&lo=0&hi=300&bins=8",
		"/v1/insights/engagement?metric=loss-mean-pct&engagement=cam_on&lo=0&hi=4&bins=10",
		"/v1/insights/mos",
		"/v1/insights/mos?bins=6",
		"/v1/insights/sentiment",
		"/v1/insights/peaks",
		"/v1/insights/peaks?k=5",
		"/v1/insights/outages",
		"/v1/insights/outages?threshold=3",
		"/v1/insights/speeds",
		"/v1/insights/trends",
		"/v1/insights/confounders?engagement=presence",
		"/v1/advice/traffic-engineering",
		"/v1/advice/deployment",
		"/v1/insights/incidents?engagement=presence",
		"/v1/insights/incidents?engagement=cam_on&min_drop=0.05",
		"/v1/query/experience?isp=" + isp,
	}
}

// assertByteIdentical fetches every query path from the coordinator and the
// reference node and requires literal response-byte equality.
func assertByteIdentical(t *testing.T, tc *testCluster, isp string) {
	t.Helper()
	for _, p := range queryPaths(isp) {
		cStatus, cBody := get(t, tc.coordTS.URL, p)
		sStatus, sBody := get(t, tc.single.URL, p)
		if cStatus != sStatus {
			t.Errorf("%s: status %d (coordinator) vs %d (single)", p, cStatus, sStatus)
			continue
		}
		if cBody != sBody {
			t.Errorf("%s: coordinator bytes differ from single node\ncoordinator: %.400s\nsingle:      %.400s", p, cBody, sBody)
		}
	}
}

// TestClusterByteIdenticalToSingleNode is the tentpole property: for every
// read endpoint, a coordinator over 1, 2, or 4 shards answers
// byte-identically to one node fed the same batches — across seeds and
// shard apply-pipeline widths. Short mode keeps one seed (still covering
// all three shard counts).
func TestClusterByteIdenticalToSingleNode(t *testing.T) {
	c, _, _ := studyCorpus(t)
	configs := []struct {
		seed    uint64
		nShards int
		workers int
	}{
		{5, 1, 0},
		{5, 2, 4},
		{5, 4, 1},
		{6, 2, 0},
		{6, 4, 4},
		{7, 1, 4},
		{7, 2, 1},
		{7, 4, 0},
	}
	if testing.Short() {
		configs = configs[:3]
	}
	for _, tc := range configs {
		t.Run(fmt.Sprintf("seed%d_shards%d_workers%d", tc.seed, tc.nShards, tc.workers), func(t *testing.T) {
			recs := sessionData(t, tc.seed)
			cl := buildCluster(t, tc.nShards, tc.workers, usaas.RetryPolicy{})
			ingestBoth(t, cl, recs, c.Posts)
			assertByteIdentical(t, cl, recs[0].ISP)
		})
	}
}

// TestClientSideSplitMatchesCoordinator pins the client-side write path:
// a cluster.Client splitting batches at the producer and sending them
// straight to the shards must produce acknowledgements identical to the
// single node's (replays included), and the coordinator's answers over
// shard-ingested data must stay byte-identical to the single node's.
func TestClientSideSplitMatchesCoordinator(t *testing.T) {
	c, _, _ := studyCorpus(t)
	recs := sessionData(t, 6)
	cl := buildCluster(t, 2, 0, usaas.RetryPolicy{})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	split := NewClient(cl.coord.pmap, ClientConfig{})
	sc := usaas.NewClientWithOptions(cl.single.URL, usaas.ClientOptions{})

	cuts := []int{1, 600, 2047, 2048, 2049, 4500, len(recs)}
	prev := 0
	for i, cut := range cuts {
		if cut > len(recs) {
			cut = len(recs)
		}
		if cut < prev {
			continue
		}
		id := fmt.Sprintf("split-%d", i)
		ca, err := split.IngestSessionsBatch(ctx, id, recs[prev:cut])
		if err != nil {
			t.Fatalf("split ingest %s: %v", id, err)
		}
		sa, err := sc.IngestSessionsBatch(ctx, id, recs[prev:cut])
		if err != nil {
			t.Fatalf("single ingest %s: %v", id, err)
		}
		if ca != sa {
			t.Fatalf("split ack diverges for %s: client %+v vs single %+v", id, ca, sa)
		}
		prev = cut
	}
	// Replay through the splitter: every shard returns its original ack,
	// and the fold reproduces the single node's duplicate answer.
	ca, err := split.IngestSessionsBatch(ctx, "split-1", recs[1:600])
	if err != nil {
		t.Fatalf("split replay: %v", err)
	}
	sa, err := sc.IngestSessionsBatch(ctx, "split-1", recs[1:600])
	if err != nil {
		t.Fatalf("single replay: %v", err)
	}
	if !ca.Duplicate || ca != sa {
		t.Fatalf("split replay diverges: client %+v vs single %+v", ca, sa)
	}

	half := len(c.Posts) / 2
	for i, span := range [][]social.Post{c.Posts[:half], c.Posts[half:]} {
		id := fmt.Sprintf("split-posts-%d", i)
		ca, err := split.IngestPostsBatch(ctx, id, span)
		if err != nil {
			t.Fatalf("split post ingest: %v", err)
		}
		sa, err := sc.IngestPostsBatch(ctx, id, span)
		if err != nil {
			t.Fatalf("single post ingest: %v", err)
		}
		if ca != sa {
			t.Fatalf("post ack diverges for %s: client %+v vs single %+v", id, ca, sa)
		}
	}

	// Reads fan through the coordinator as usual — the write path taken
	// must be invisible in the bytes.
	assertByteIdentical(t, cl, recs[0].ISP)
}

// TestCoordinatorErrorPaths pins the coordinator's parameter validation to
// the single node's: same status, same bytes, no fan-out needed to agree.
func TestCoordinatorErrorPaths(t *testing.T) {
	studyCorpus(t)
	cl := buildCluster(t, 2, 0, usaas.RetryPolicy{})
	recs := sessionData(t, 5)
	ingestBoth(t, cl, recs[:600], nil)
	for _, p := range []string{
		"/v1/insights/engagement?metric=bogus&engagement=presence",
		"/v1/insights/engagement?metric=latency-mean-ms&engagement=bogus",
		"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence&bins=0",
		"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence&bins=nope",
		"/v1/insights/peaks?k=0",
		"/v1/insights/peaks?k=banana",
		"/v1/query/experience",
		"/v1/query/experience?isp=no-such-isp",
		"/v1/insights/confounders?engagement=nope",
		"/v1/insights/incidents?engagement=",
		"/v1/insights/sentiment", // no posts ingested
		"/v1/insights/speeds",
	} {
		cStatus, cBody := get(t, cl.coordTS.URL, p)
		sStatus, sBody := get(t, cl.single.URL, p)
		if cStatus != sStatus || cBody != sBody {
			t.Errorf("%s: coordinator (%d, %q) vs single (%d, %q)", p, cStatus, cBody, sStatus, sBody)
		}
	}
}

// TestShardOfDeterminism pins the routing hash: the same (version, day)
// must land on the same shard across processes and runs, and bumping the
// version must actually reshuffle.
func TestShardOfDeterminism(t *testing.T) {
	m, err := ParseShards("a=http://h1;b=http://h2;c=http://h3")
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for d := 0; d < 1000; d++ {
		day := timeline.Day(d)
		i := m.ShardOf(day)
		if j := m.ShardOf(day); i != j {
			t.Fatalf("ShardOf(%d) unstable: %d then %d", d, i, j)
		}
		if i < 0 || i >= len(m.Shards) {
			t.Fatalf("ShardOf(%d) = %d out of range", d, i)
		}
		m2 := m
		m2.Version = 2
		if m2.ShardOf(day) != i {
			moved = true
		}
	}
	if !moved {
		t.Error("version bump did not move any of 1000 days")
	}
}

func TestSubBatchID(t *testing.T) {
	m := Map{Version: 3, Shards: make([]Shard, 2)}
	if got := m.SubBatchID("", 1); got != "" {
		t.Errorf("empty parent should stay empty, got %q", got)
	}
	if got, want := m.SubBatchID("b-7", 1), "b-7@v3/s1"; got != want {
		t.Errorf("SubBatchID = %q, want %q", got, want)
	}
}

func TestParseShards(t *testing.T) {
	m, err := ParseShards(" a=http://h1 ; b = http://h2,http://h3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 2 || m.Shards[0].Name != "a" || len(m.Shards[1].Endpoints) != 2 {
		t.Fatalf("unexpected map: %+v", m)
	}
	for _, bad := range []string{"", "a", "a=;b=http://h2", "a=http://h1;a=http://h2"} {
		if _, err := ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
		}
	}
}

// TestSplitPreservesOrderAndCompleteness: splitting then concatenating in
// shard order is a permutation that keeps each shard's records in batch
// order (the property the per-shard ingest order depends on).
func TestSplitPreservesOrderAndCompleteness(t *testing.T) {
	recs := sessionData(t, 5)[:500]
	m := Map{Version: 1, Shards: make([]Shard, 4)}
	groups := m.SplitSessions(recs)
	total := 0
	for i, g := range groups {
		total += len(g)
		for j := range g {
			if m.ShardOf(timeline.DayOf(g[j].Start)) != i {
				t.Fatalf("record in group %d routed elsewhere", i)
			}
		}
	}
	if total != len(recs) {
		t.Fatalf("split lost records: %d != %d", total, len(recs))
	}
}
