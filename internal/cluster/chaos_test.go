package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"usersignals/internal/durable"
	"usersignals/internal/faults"
	"usersignals/internal/replica"
	"usersignals/internal/usaas"
)

// fastRetry keeps dead-shard probing cheap in tests: two quick attempts,
// then the failure surfaces as degradation.
var fastRetry = usaas.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}

// fetchReport GETs /v1/report and decodes it alongside the raw bytes.
func fetchReport(t *testing.T, base string) (usaas.OperatorReport, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/report: %d %s", resp.StatusCode, body)
	}
	var rep usaas.OperatorReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	return rep, body
}

// TestClusterShardDeathDegradesPerSection kills one shard of a two-shard
// cluster and asserts the degradation contract: /v1/report still lands,
// with every section explicitly annotated with the dead shard's name; any
// other endpoint refuses with a 503 naming the shard; and the coordinator
// gauges record the outage. Nothing is ever silently missing.
func TestClusterShardDeathDegradesPerSection(t *testing.T) {
	c, _, _ := studyCorpus(t)
	recs := sessionData(t, 5)
	cl := buildCluster(t, 2, 0, fastRetry)
	ingestBoth(t, cl, recs, c.Posts)

	// Healthy first: clean report, no degradation.
	rep, clean := fetchReport(t, cl.coordTS.URL)
	if rep.Degraded || len(rep.Errors) != 0 {
		t.Fatalf("healthy cluster reported degraded: %+v", rep.Errors)
	}
	_, singleClean := fetchReport(t, cl.single.URL)
	if !bytes.Equal(clean, singleClean) {
		t.Fatal("healthy coordinator report differs from single node")
	}

	// Kill shard s1.
	cl.shards[1].Close()

	rep, _ = fetchReport(t, cl.coordTS.URL)
	if !rep.Degraded {
		t.Fatal("report not marked degraded after shard death")
	}
	for _, section := range reportSections {
		found := false
		for _, e := range rep.Errors {
			if strings.HasPrefix(e, section+": ") && strings.Contains(e, "shard s1 unavailable") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("section %q has no degradation note naming shard s1 (errors: %q)", section, rep.Errors)
		}
	}
	// The surviving sections still carry data — the report is partial,
	// not empty.
	if rep.Sessions == 0 || rep.Posts == 0 {
		t.Errorf("degraded report lost surviving shard's data: sessions=%d posts=%d", rep.Sessions, rep.Posts)
	}

	// Every non-report endpoint refuses explicitly, naming the shard.
	for _, p := range []string{
		"/v1/insights/mos",
		"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence",
		"/v1/insights/sentiment",
		"/v1/query/experience?isp=" + recs[0].ISP,
		"/v1/stats",
	} {
		status, body := get(t, cl.coordTS.URL, p)
		if status != http.StatusServiceUnavailable {
			t.Errorf("%s: status %d after shard death, want 503 (body %.200s)", p, status, body)
			continue
		}
		if !strings.Contains(body, "shard s1 unavailable") {
			t.Errorf("%s: refusal does not name the dead shard: %.200s", p, body)
		}
	}

	// Gauges: the dead shard is marked down with errors counted, and the
	// degradation counter moved.
	cs := cl.coord.clusterStats()
	if cs.Shards[1].Up {
		t.Error("dead shard still marked up in cluster stats")
	}
	if cs.Shards[1].Errors == 0 {
		t.Error("dead shard has no errors counted")
	}
	if !cs.Shards[0].Up || cs.Shards[0].Fanouts == 0 {
		t.Errorf("surviving shard gauges wrong: %+v", cs.Shards[0])
	}
	if cs.DegradedSections == 0 {
		t.Error("degraded-section counter never moved")
	}
	if cs.PartialMerges == 0 {
		t.Error("partial-merge counter never moved")
	}
}

// TestClusterKillMidQuery fires reports continuously while a shard dies,
// and admits exactly two outcomes for every response: byte-identical to
// the healthy reference, or explicitly degraded with notes naming the
// shard. A third state — clean-looking but missing the dead shard's
// days — is the silent data loss the contract forbids.
func TestClusterKillMidQuery(t *testing.T) {
	c, _, _ := studyCorpus(t)
	recs := sessionData(t, 6)
	cl := buildCluster(t, 2, 0, fastRetry)
	ingestBoth(t, cl, recs, c.Posts)
	_, clean := fetchReport(t, cl.coordTS.URL)

	var stop atomic.Bool
	killed := make(chan struct{})
	go func() {
		// Let a few queries land healthy, then yank the shard mid-stream.
		time.Sleep(30 * time.Millisecond)
		cl.shards[0].Close()
		close(killed)
	}()
	// The reference fetch above is the guaranteed healthy observation;
	// whether the loop sees more before the kill lands is up to timing.
	sawClean, sawDegraded := 1, 0
	deadline := time.Now().Add(20 * time.Second)
	for !stop.Load() && time.Now().Before(deadline) {
		rep, body := fetchReport(t, cl.coordTS.URL)
		switch {
		case len(rep.Errors) == 0:
			if !bytes.Equal(body, clean) {
				t.Fatalf("undegraded response differs from healthy reference — silent data loss (%d vs %d bytes)", len(body), len(clean))
			}
			sawClean++
		default:
			if !rep.Degraded {
				t.Fatalf("errors present but Degraded unset: %q", rep.Errors)
			}
			found := false
			for _, e := range rep.Errors {
				if strings.Contains(e, "shard s0 unavailable") {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("degraded response does not name shard s0: %q", rep.Errors)
			}
			sawDegraded++
			select {
			case <-killed:
				if sawDegraded >= 3 {
					stop.Store(true)
				}
			default:
			}
		}
	}
	if sawDegraded == 0 {
		t.Error("kill never produced a degraded response")
	}
	if sawClean == 0 {
		t.Error("no healthy response observed")
	}
}

// replicaShard is one replicated shard: a leader and a follower tailing it
// across a faulty link.
type replicaShard struct {
	leader       *usaas.DurableStore
	leaderNode   *replica.Node
	leaderTS     *httptest.Server
	follower     *usaas.DurableStore
	followerNode *replica.Node
	followerTS   *httptest.Server
}

func startReplicaShard(t *testing.T, link *faults.FrameLink) *replicaShard {
	t.Helper()
	_, cfg, news := studyCorpus(t)
	sopts := usaas.ServerOptions{Model: cfg.Model, News: news}
	dopts := usaas.DurabilityOptions{Dir: t.TempDir(), Fsync: durable.FsyncOff}
	leader, err := usaas.OpenDurableStore(dopts)
	if err != nil {
		t.Fatal(err)
	}
	leaderNode, err := replica.Open(leader, replica.Options{Role: replica.RoleLeader})
	if err != nil {
		t.Fatal(err)
	}
	lopts := sopts
	lopts.Ready = leaderNode.Ready
	leaderTS := httptest.NewServer(leaderNode.Wrap(usaas.NewServer(leader.Store, lopts).Handler()))

	fdopts := usaas.DurabilityOptions{Dir: t.TempDir(), Fsync: durable.FsyncOff}
	follower, err := usaas.OpenDurableStore(fdopts)
	if err != nil {
		t.Fatal(err)
	}
	followerNode, err := replica.Open(follower, replica.Options{
		Role:          replica.RoleFollower,
		LeaderURL:     leaderTS.URL,
		Link:          link,
		MaxFetchBytes: 64 << 10,
		PollWait:      20 * time.Millisecond,
		RetryInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fopts := sopts
	fopts.Ready = followerNode.Ready
	followerTS := httptest.NewServer(followerNode.Wrap(usaas.NewServer(follower.Store, fopts).Handler()))

	rs := &replicaShard{
		leader: leader, leaderNode: leaderNode, leaderTS: leaderTS,
		follower: follower, followerNode: followerNode, followerTS: followerTS,
	}
	t.Cleanup(func() {
		rs.followerTS.Close()
		rs.followerNode.Close()
		rs.follower.Close()
	})
	return rs
}

// TestClusterFailoverByteIdentical runs a two-shard cluster where shard
// s0 is a replicated pair behind a faulty link. After the leader dies and
// the follower is promoted, the coordinator must fail over and answer
// byte-identically to before the kill — replication plus promotion lost
// nothing.
func TestClusterFailoverByteIdentical(t *testing.T) {
	c, cfg, news := studyCorpus(t)
	recs := sessionData(t, 7)[:2500]
	link := faults.NewFrameLink(faults.LinkPlan{Seed: 7, DropP: 0.1, DupP: 0.1, TruncateP: 0.1})
	rs := startReplicaShard(t, link)
	plain := newShardServer(t, 0)

	m := Map{Version: 1, Shards: []Shard{
		{Name: "s0", Endpoints: []string{rs.leaderTS.URL, rs.followerTS.URL}},
		{Name: "s1", Endpoints: []string{plain.URL}},
	}}
	coord := New(m, Options{Model: cfg.Model, News: news, Retry: fastRetry})
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cc := usaas.NewClientWithOptions(coordTS.URL, usaas.ClientOptions{})
	// Keep batches small: one batch is one WAL frame, and the follower's
	// fetch path truncates bodies past MaxFetchBytes plus slack — an
	// oversized frame would never replicate.
	for i := 0; i < len(recs); i += 100 {
		end := i + 100
		if end > len(recs) {
			end = len(recs)
		}
		if _, err := cc.IngestSessionsBatch(ctx, fmt.Sprintf("fo-s%d", i), recs[i:end]); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	for i := 0; i < len(c.Posts); i += 200 {
		end := i + 200
		if end > len(c.Posts) {
			end = len(c.Posts)
		}
		if _, err := cc.IngestPostsBatch(ctx, fmt.Sprintf("fo-p%d", i), c.Posts[i:end]); err != nil {
			t.Fatalf("post ingest: %v", err)
		}
	}

	// Wait until the follower holds the leader's whole log, despite the
	// link dropping, duplicating, and truncating deliveries.
	deadline := time.Now().Add(30 * time.Second)
	for rs.follower.WALSeq() < rs.leader.WALSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d", rs.follower.WALSeq(), rs.leader.WALSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, before := fetchReport(t, coordTS.URL)

	// Kill the leader's listener (kill -9: no close, no final snapshot)
	// and promote the survivor through the operator path.
	rs.leaderTS.Close()
	resp, err := http.Post(rs.followerTS.URL+"/v1/replica/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d", resp.StatusCode)
	}

	rep, after := fetchReport(t, coordTS.URL)
	if rep.Degraded {
		t.Fatalf("report degraded after failover: %q", rep.Errors)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("report changed across failover: %d vs %d bytes", len(before), len(after))
	}

	// The drill only counts if the link actually misbehaved.
	counts := link.Counts()
	if counts.Faults() == 0 {
		t.Errorf("replication link never faulted (deliveries %d)", counts.Deliveries)
	}

	// And the cluster still serves writes: ingest after failover lands.
	if ack, err := cc.IngestSessionsBatch(ctx, "fo-post-failover", sessionData(t, 5)[:100]); err != nil || ack.Accepted != 100 {
		t.Fatalf("post-failover ingest: ack=%+v err=%v", ack, err)
	}
}
