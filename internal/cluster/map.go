// Package cluster shards the USaaS store horizontally: a deterministic
// version-stamped partition map routes ingest batches to shards by
// calendar day, and a scatter-gather coordinator fans queries out,
// collecting mergeable per-day accumulator state (usaas partials) and
// folding it in canonical ascending-day order, so an N-shard cluster
// answers every query byte-identically to a single node fed the same
// batches.
//
// The partition unit is the calendar day — telemetry.SessionRecord routes
// by DayOf(Start), social.Post by Day — because every analysis in the
// store is (or was refactored to be) a per-day partial plus a strict
// ascending-day fold. A day living wholly on one shard means no float is
// ever summed across shards, which is what makes the merge exact rather
// than approximately correct.
package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"

	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// Shard is one partition: a name plus one or more endpoints. Multiple
// endpoints mean a replicated pair (leader + follower); the coordinator's
// usaas.Client fails over between them and follows write redirects.
type Shard struct {
	Name      string   `json:"name"`
	Endpoints []string `json:"endpoints"`
}

// Map is the versioned partition map. Routing depends only on (Version,
// day, len(Shards)), so every coordinator and every routing client holding
// the same map agrees on where each day lives; bumping Version reshuffles
// deterministically.
type Map struct {
	Version uint64  `json:"version"`
	Shards  []Shard `json:"shards"`
}

// ShardOf returns the index of the shard owning day d: a stable FNV-1a
// hash of the version-stamped day key. Stable across processes and runs —
// never Go map iteration or anything seeded per-process.
func (m Map) ShardOf(d timeline.Day) int {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d/d%d", m.Version, int(d))
	return int(h.Sum64() % uint64(len(m.Shards)))
}

// SubBatchID derives the idempotency key for the slice of a client batch
// routed to shard idx. Stamping the map version means a re-sent batch
// after a map change cannot alias a differently-routed earlier slice.
// Empty parent IDs stay empty (no dedup requested).
func (m Map) SubBatchID(batchID string, idx int) string {
	if batchID == "" {
		return ""
	}
	return fmt.Sprintf("%s@v%d/s%d", batchID, m.Version, idx)
}

// SplitSessions partitions a session batch by owning shard: groups[i]
// holds the records whose start day hashes to shard i, in their original
// relative order (per-shard ingest order therefore matches the single-node
// order restricted to that shard's days).
func (m Map) SplitSessions(recs []telemetry.SessionRecord) [][]telemetry.SessionRecord {
	groups := make([][]telemetry.SessionRecord, len(m.Shards))
	for _, r := range recs {
		i := m.ShardOf(timeline.DayOf(r.Start))
		groups[i] = append(groups[i], r)
	}
	return groups
}

// SplitPosts partitions a post batch by each post's day.
func (m Map) SplitPosts(posts []social.Post) [][]social.Post {
	groups := make([][]social.Post, len(m.Shards))
	for _, p := range posts {
		i := m.ShardOf(p.Day)
		groups[i] = append(groups[i], p)
	}
	return groups
}

// ParseShards parses a -shards flag: semicolon-separated shards, each
// "name=url" or "name=url,url" (replicated pair).
//
//	a=http://10.0.0.1:8080;b=http://10.0.0.2:8080,http://10.0.0.3:8080
func ParseShards(spec string) (Map, error) {
	m := Map{Version: 1}
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, urls, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return Map{}, fmt.Errorf("cluster: shard %q: want name=url[,url]", part)
		}
		if seen[name] {
			return Map{}, fmt.Errorf("cluster: duplicate shard name %q", name)
		}
		seen[name] = true
		sh := Shard{Name: name}
		for _, u := range strings.Split(urls, ",") {
			if u = strings.TrimSpace(u); u != "" {
				sh.Endpoints = append(sh.Endpoints, u)
			}
		}
		if len(sh.Endpoints) == 0 {
			return Map{}, fmt.Errorf("cluster: shard %q has no endpoints", name)
		}
		m.Shards = append(m.Shards, sh)
	}
	if len(m.Shards) == 0 {
		return Map{}, fmt.Errorf("cluster: no shards in %q", spec)
	}
	return m, nil
}
