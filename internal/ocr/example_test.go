package ocr_test

import (
	"fmt"

	"usersignals/internal/ocr"
)

func ExampleExtract() {
	report := ocr.Report{Provider: ocr.Ookla, DownMbps: 95.4, UpMbps: 12.3, LatencyMs: 42}
	shot := ocr.Render(report)
	ex, err := ocr.Extract(shot)
	if err != nil {
		fmt.Println("unreadable:", err)
		return
	}
	fmt.Printf("%s: down=%.1f up=%.1f latency=%.0f\n", ex.Provider, ex.DownMbps, ex.UpMbps, ex.LatencyMs)
	// Output: ookla: down=95.4 up=12.3 latency=42
}

func ExampleExtract_repair() {
	// OCR confusions inside numeric tokens are repaired: S→5, l→1, O→0.
	shot := ocr.Screenshot{Lines: []string{
		"SPEEDTEST by Ookla", "DOWNLOAD Mbps", "9S.4", "UPLOAD Mbps", "l2.3", "Ping 4O ms",
	}}
	ex, _ := ocr.Extract(shot)
	fmt.Printf("%.1f %.1f %.0f\n", ex.DownMbps, ex.UpMbps, ex.LatencyMs)
	// Output: 95.4 12.3 40
}
