// Package ocr simulates the screenshot-to-fields pipeline of §4.2: Redditors
// post screenshots of speed-test results from several providers, and the
// paper extracts downlink/uplink/latency numbers with a cloud OCR service.
//
// Here a renderer lays each report out in a provider-specific text template
// and injects OCR-style noise (character confusions, dropped characters),
// and an extractor detects the template, repairs numeric confusions, parses
// the fields, and validates ranges. Because ground truth is known, the
// extractor's accuracy is itself measurable — something the paper could not
// do — and is covered by tests.
package ocr

import (
	"fmt"
	"strings"

	"usersignals/internal/simrand"
)

// Provider identifies the speed-test tool in the screenshot.
type Provider int

// Providers seen on the subreddit.
const (
	Ookla Provider = iota
	Fast
	StarlinkApp
	numProviders
)

// String names the provider.
func (p Provider) String() string {
	switch p {
	case Ookla:
		return "ookla"
	case Fast:
		return "fast"
	case StarlinkApp:
		return "starlink-app"
	default:
		return fmt.Sprintf("provider(%d)", int(p))
	}
}

// Providers returns all providers.
func Providers() []Provider { return []Provider{Ookla, Fast, StarlinkApp} }

// Report is the ground-truth content of a speed-test screenshot.
type Report struct {
	Provider  Provider
	DownMbps  float64
	UpMbps    float64
	LatencyMs float64
}

// Screenshot is the rendered (and possibly noisy) text the OCR stage sees:
// one string per visual line.
type Screenshot struct {
	Lines []string
}

// Text joins the lines.
func (s Screenshot) Text() string { return strings.Join(s.Lines, "\n") }

// Render lays out the report in its provider's template with no noise.
func Render(r Report) Screenshot {
	f1 := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	f0 := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	switch r.Provider {
	case Fast:
		return Screenshot{Lines: []string{
			"FAST",
			"Your Internet speed is",
			f1(r.DownMbps) + " Mbps",
			"Latency: " + f0(r.LatencyMs) + " ms   Upload: " + f1(r.UpMbps) + " Mbps",
		}}
	case StarlinkApp:
		return Screenshot{Lines: []string{
			"STARLINK",
			"SPEED TEST",
			"Download " + f1(r.DownMbps) + " Mbps",
			"Upload " + f1(r.UpMbps) + " Mbps",
			"Latency " + f0(r.LatencyMs) + " ms",
		}}
	default: // Ookla
		return Screenshot{Lines: []string{
			"SPEEDTEST by Ookla",
			"DOWNLOAD Mbps",
			f1(r.DownMbps),
			"UPLOAD Mbps",
			f1(r.UpMbps),
			"Ping " + f0(r.LatencyMs) + " ms",
			"Starlink",
		}}
	}
}

// confusions maps characters to what a sloppy OCR pass misreads them as.
var confusions = map[rune]rune{
	'0': 'O', '1': 'l', '5': 'S', '8': 'B', '6': 'b',
	'O': '0', 'l': '1', 'S': '5', 'B': '8',
}

// RenderNoisy renders the report and corrupts it with character confusions
// (probability confuse per character) and deletions (probability confuse/4).
// confuse is clamped to [0, 0.5].
func RenderNoisy(r Report, rng *simrand.RNG, confuse float64) Screenshot {
	if confuse < 0 {
		confuse = 0
	}
	if confuse > 0.5 {
		confuse = 0.5
	}
	clean := Render(r)
	out := make([]string, len(clean.Lines))
	for i, line := range clean.Lines {
		var b strings.Builder
		for _, ch := range line {
			if rng.Bool(confuse / 4) {
				continue // dropped character
			}
			if rng.Bool(confuse) {
				if repl, ok := confusions[ch]; ok {
					b.WriteRune(repl)
					continue
				}
			}
			b.WriteRune(ch)
		}
		out[i] = b.String()
	}
	return Screenshot{Lines: out}
}
