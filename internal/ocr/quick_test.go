package ocr

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: every plausible report round-trips losslessly through a clean
// render, for every provider template.
func TestCleanRoundTripProperty(t *testing.T) {
	f := func(downRaw, upRaw, latRaw uint16, providerRaw uint8) bool {
		r := Report{
			Provider:  Providers()[int(providerRaw)%3],
			DownMbps:  1 + float64(downRaw%3500)/10, // 1.0 .. 351.0
			UpMbps:    0.5 + float64(upRaw%400)/10,  // 0.5 .. 40.5
			LatencyMs: 10 + float64(latRaw%190),     // 10 .. 199
		}
		ex, err := Extract(Render(r))
		if err != nil {
			return false
		}
		return math.Abs(ex.DownMbps-r.DownMbps) < 0.06 &&
			ex.HasUp && math.Abs(ex.UpMbps-r.UpMbps) < 0.06 &&
			ex.HasLatency && math.Abs(ex.LatencyMs-r.LatencyMs) < 0.6 &&
			ex.Provider == r.Provider
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: extraction never reports a value outside the validated ranges,
// no matter how corrupted the input.
func TestExtractOutputAlwaysValidated(t *testing.T) {
	f := func(lines []string) bool {
		ex, err := Extract(Screenshot{Lines: lines})
		if err != nil {
			return true
		}
		if !validDown(ex.DownMbps) {
			return false
		}
		if ex.HasUp && !validUp(ex.UpMbps) {
			return false
		}
		if ex.HasLatency && !validLatency(ex.LatencyMs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
