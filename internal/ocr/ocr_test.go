package ocr

import (
	"errors"
	"math"
	"testing"

	"usersignals/internal/simrand"
)

func report(p Provider) Report {
	return Report{Provider: p, DownMbps: 95.4, UpMbps: 12.3, LatencyMs: 42}
}

func TestCleanRoundTripAllProviders(t *testing.T) {
	for _, p := range Providers() {
		r := report(p)
		ex, err := Extract(Render(r))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if ex.Provider != p {
			t.Fatalf("%v: detected %v", p, ex.Provider)
		}
		if math.Abs(ex.DownMbps-r.DownMbps) > 0.05 {
			t.Fatalf("%v: down %v, want %v", p, ex.DownMbps, r.DownMbps)
		}
		if !ex.HasUp || math.Abs(ex.UpMbps-r.UpMbps) > 0.05 {
			t.Fatalf("%v: up %v (has %v), want %v", p, ex.UpMbps, ex.HasUp, r.UpMbps)
		}
		if !ex.HasLatency || math.Abs(ex.LatencyMs-r.LatencyMs) > 0.5 {
			t.Fatalf("%v: latency %v (has %v), want %v", p, ex.LatencyMs, ex.HasLatency, r.LatencyMs)
		}
	}
}

func TestNoisyExtractionAccuracy(t *testing.T) {
	// At a moderate noise level the extractor must read the downlink
	// correctly (within 10%) for the large majority of screenshots, and
	// wrong-but-confident extractions must be rare.
	root := simrand.Root(5)
	const n = 1500
	okCount, badValue := 0, 0
	for i := 0; i < n; i++ {
		rng := root.Derive("shot/%d", i).RNG()
		r := Report{
			Provider:  Providers()[i%3],
			DownMbps:  rng.Range(5, 250),
			UpMbps:    rng.Range(1, 30),
			LatencyMs: rng.Range(20, 90),
		}
		shot := RenderNoisy(r, rng, 0.04)
		ex, err := Extract(shot)
		if err != nil {
			continue // rejection is acceptable; silent corruption is not
		}
		okCount++
		if math.Abs(ex.DownMbps-r.DownMbps)/r.DownMbps > 0.1 {
			badValue++
		}
	}
	if frac := float64(okCount) / n; frac < 0.75 {
		t.Fatalf("extraction yield %v too low at 4%% noise", frac)
	}
	if frac := float64(badValue) / float64(okCount); frac > 0.05 {
		t.Fatalf("silently wrong downlink in %v of accepted shots", frac)
	}
}

func TestConfusionRepair(t *testing.T) {
	// 95.4 rendered with 9->9, 5->S, 4->4: "9S.4" must repair to 95.4.
	shot := Screenshot{Lines: []string{
		"SPEEDTEST by Ookla", "DOWNLOAD Mbps", "9S.4", "UPLOAD Mbps", "l2.3", "Ping 4O ms",
	}}
	ex, err := Extract(shot)
	if err != nil {
		t.Fatal(err)
	}
	if ex.DownMbps != 95.4 || ex.UpMbps != 12.3 || ex.LatencyMs != 40 {
		t.Fatalf("repair failed: %+v", ex)
	}
}

func TestWordsDoNotBecomeNumbers(t *testing.T) {
	// "Mbps", "SOS", "Ookla" must never parse as numeric.
	if _, ok := parseNumeric("Mbps"); ok {
		t.Fatal("Mbps parsed as a number")
	}
	if _, ok := parseNumeric("SOS"); ok {
		t.Fatal("SOS parsed as a number")
	}
	if v, ok := parseNumeric("42,"); !ok || v != 42 {
		t.Fatal("trailing punctuation not trimmed")
	}
}

func TestUnreadableScreenshots(t *testing.T) {
	cases := []Screenshot{
		{Lines: []string{"a photo of my cat"}},
		{Lines: nil},
		{Lines: []string{"SPEEDTEST by Ookla", "DOWNLOAD Mbps"}}, // no value line
	}
	for i, s := range cases {
		if _, err := Extract(s); !errors.Is(err, ErrUnreadable) {
			t.Fatalf("case %d: err = %v, want ErrUnreadable", i, err)
		}
	}
}

func TestImplausibleValuesRejectedOrDropped(t *testing.T) {
	// Downlink out of range: hard failure.
	shot := Render(Report{Provider: Ookla, DownMbps: 90000, UpMbps: 10, LatencyMs: 40})
	if _, err := Extract(shot); !errors.Is(err, ErrUnreadable) {
		t.Fatalf("implausible downlink accepted: %v", err)
	}
	// Optional field out of range: dropped, not fatal.
	shot2 := Render(Report{Provider: StarlinkApp, DownMbps: 100, UpMbps: 9999, LatencyMs: 40})
	ex, err := Extract(shot2)
	if err != nil {
		t.Fatal(err)
	}
	if ex.HasUp {
		t.Fatalf("implausible uplink kept: %+v", ex)
	}
	if !ex.HasLatency {
		t.Fatal("valid latency dropped")
	}
}

func TestRenderNoisyClampsNoise(t *testing.T) {
	rng := simrand.New(1, 2)
	r := report(Ookla)
	// Negative noise behaves as clean.
	clean := Render(r)
	noisy := RenderNoisy(r, rng, -1)
	if clean.Text() != noisy.Text() {
		t.Fatal("negative noise altered output")
	}
	// Extreme noise is clamped: output still has most characters.
	chaotic := RenderNoisy(r, rng, 10)
	if len(chaotic.Text()) < len(clean.Text())/2 {
		t.Fatalf("noise clamp failed: %q", chaotic.Text())
	}
}

func TestProviderString(t *testing.T) {
	for _, p := range Providers() {
		if p.String() == "" {
			t.Fatal("empty provider name")
		}
	}
	if Provider(42).String() == "" {
		t.Fatal("unknown provider name empty")
	}
}

func TestFastLayoutFieldOrder(t *testing.T) {
	// Latency and upload share one line; ordering must hold.
	shot := Render(Report{Provider: Fast, DownMbps: 88.1, UpMbps: 9.5, LatencyMs: 51})
	ex, err := Extract(shot)
	if err != nil {
		t.Fatal(err)
	}
	if ex.LatencyMs != 51 || math.Abs(ex.UpMbps-9.5) > 0.01 {
		t.Fatalf("fast detail line misparsed: %+v", ex)
	}
}
