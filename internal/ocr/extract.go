package ocr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Extraction is the structured result of reading a screenshot.
type Extraction struct {
	Provider  Provider
	DownMbps  float64
	UpMbps    float64
	LatencyMs float64
	// HasUp / HasLatency report which optional fields parsed; downlink is
	// mandatory (extraction fails without it).
	HasUp      bool
	HasLatency bool
}

// ErrUnreadable is returned when the screenshot cannot be attributed to a
// known template or its mandatory fields cannot be parsed.
var ErrUnreadable = errors.New("ocr: screenshot unreadable")

// Extract reads a screenshot: template detection, numeric repair, field
// parsing, range validation.
func Extract(s Screenshot) (Extraction, error) {
	text := strings.ToLower(s.Text())
	var ex Extraction
	switch {
	case fuzzyContains(text, "speedtest"):
		ex.Provider = Ookla
	case fuzzyContains(text, "starlink") && fuzzyContains(text, "speed test"):
		ex.Provider = StarlinkApp
	case fuzzyContains(text, "fast"):
		ex.Provider = Fast
	default:
		return Extraction{}, fmt.Errorf("%w: no known template marker", ErrUnreadable)
	}

	var err error
	switch ex.Provider {
	case Ookla:
		err = extractOokla(s, &ex)
	case Fast:
		err = extractFast(s, &ex)
	case StarlinkApp:
		err = extractLabelled(s, &ex)
	}
	if err != nil {
		return Extraction{}, err
	}
	if !validDown(ex.DownMbps) {
		return Extraction{}, fmt.Errorf("%w: implausible downlink %v", ErrUnreadable, ex.DownMbps)
	}
	if ex.HasUp && !validUp(ex.UpMbps) {
		ex.HasUp = false
		ex.UpMbps = 0
	}
	if ex.HasLatency && !validLatency(ex.LatencyMs) {
		ex.HasLatency = false
		ex.LatencyMs = 0
	}
	return ex, nil
}

func validDown(v float64) bool    { return v >= 0.5 && v <= 2000 }
func validUp(v float64) bool      { return v >= 0.1 && v <= 500 }
func validLatency(v float64) bool { return v >= 5 && v <= 2000 }

// extractOokla reads the vertical Ookla layout: the number on the line
// after "DOWNLOAD", then after "UPLOAD", and "Ping N ms".
func extractOokla(s Screenshot, ex *Extraction) error {
	for i, line := range s.Lines {
		low := strings.ToLower(line)
		switch {
		case fuzzyContains(low, "download") && i+1 < len(s.Lines):
			if v, ok := firstNumber(s.Lines[i+1]); ok {
				ex.DownMbps = v
			}
		case fuzzyContains(low, "upload") && i+1 < len(s.Lines):
			if v, ok := firstNumber(s.Lines[i+1]); ok {
				ex.UpMbps = v
				ex.HasUp = true
			}
		case fuzzyContains(low, "ping"):
			if v, ok := firstNumber(line); ok {
				ex.LatencyMs = v
				ex.HasLatency = true
			}
		}
	}
	if ex.DownMbps == 0 {
		return fmt.Errorf("%w: ookla downlink missing", ErrUnreadable)
	}
	return nil
}

// extractFast reads the Fast layout: the big headline number is the
// downlink; the detail line has "latency ... upload ...".
func extractFast(s Screenshot, ex *Extraction) error {
	for _, line := range s.Lines {
		low := strings.ToLower(line)
		hasLat := fuzzyContains(low, "latency")
		hasUp := fuzzyContains(low, "upload")
		if hasLat || hasUp {
			nums := allNumbers(line)
			idx := 0
			if hasLat && idx < len(nums) {
				ex.LatencyMs = nums[idx]
				ex.HasLatency = true
				idx++
			}
			if hasUp && idx < len(nums) {
				ex.UpMbps = nums[idx]
				ex.HasUp = true
			}
			continue
		}
		if ex.DownMbps == 0 && fuzzyContains(low, "mbps") {
			if v, ok := firstNumber(line); ok {
				ex.DownMbps = v
			}
		}
	}
	if ex.DownMbps == 0 {
		return fmt.Errorf("%w: fast downlink missing", ErrUnreadable)
	}
	return nil
}

// extractLabelled reads "Label value unit" lines (the Starlink app).
func extractLabelled(s Screenshot, ex *Extraction) error {
	for _, line := range s.Lines {
		low := strings.ToLower(line)
		v, ok := firstNumber(line)
		if !ok {
			continue
		}
		switch {
		case fuzzyContains(low, "download"):
			ex.DownMbps = v
		case fuzzyContains(low, "upload"):
			ex.UpMbps = v
			ex.HasUp = true
		case fuzzyContains(low, "latency") || fuzzyContains(low, "ping"):
			ex.LatencyMs = v
			ex.HasLatency = true
		}
	}
	if ex.DownMbps == 0 {
		return fmt.Errorf("%w: downlink missing", ErrUnreadable)
	}
	return nil
}

// repairNumeric maps common OCR confusions back to digits.
var repairNumeric = strings.NewReplacer(
	"O", "0", "o", "0", "l", "1", "I", "1", "S", "5", "s", "5", "B", "8", "b", "6",
)

// firstNumber finds the first parseable number in a line, repairing OCR
// confusions inside numeric-looking tokens.
func firstNumber(line string) (float64, bool) {
	for _, tok := range strings.Fields(line) {
		if v, ok := parseNumeric(tok); ok {
			return v, true
		}
	}
	return 0, false
}

// allNumbers collects every parseable number in order.
func allNumbers(line string) []float64 {
	var out []float64
	for _, tok := range strings.Fields(line) {
		if v, ok := parseNumeric(tok); ok {
			out = append(out, v)
		}
	}
	return out
}

// parseNumeric accepts tokens that are mostly digits (after confusion
// repair), tolerating trailing punctuation.
func parseNumeric(tok string) (float64, bool) {
	tok = strings.Trim(tok, ".,:;()")
	if tok == "" {
		return 0, false
	}
	// A numeric candidate must be digit-dominated before repair, so that
	// words like "Mbps" don't become numbers.
	digitish := 0
	for _, r := range tok {
		if r >= '0' && r <= '9' || r == '.' {
			digitish++
		}
	}
	if float64(digitish) < 0.5*float64(len(tok)) {
		return 0, false
	}
	repaired := repairNumeric.Replace(tok)
	v, err := strconv.ParseFloat(repaired, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// fuzzyContains matches a marker word allowing one dropped character, which
// keeps template detection robust to the renderer's deletion noise.
func fuzzyContains(haystack, marker string) bool {
	if strings.Contains(haystack, marker) {
		return true
	}
	// Try the marker with each single character removed.
	for i := range marker {
		variant := marker[:i] + marker[i+1:]
		if len(variant) >= 3 && strings.Contains(haystack, variant) {
			return true
		}
	}
	return false
}
