package telemetry

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// This file is the hand-rolled SessionRecord codec for the ingest/upload hot
// path. The wire format is exactly what encoding/json produces for the
// struct — same field order, same float formatting, same HTML-escaped
// strings — so mixed fleets of old and new readers/writers interoperate
// byte for byte. AppendJSON avoids the reflection and interface boxing of
// json.Marshal; ParseJSON replaces the scanner+reflect decode with a direct
// recursive-descent parse that borrows number tokens from the input instead
// of allocating them.

const hexDigits = "0123456789abcdef"

// AppendJSON appends the record encoded as one JSON object to dst and
// returns the extended buffer. The output is byte-identical to
// json.Marshal(r). Like the standard library it rejects NaN/Inf values and
// timestamps outside year [0, 9999].
func AppendJSON(dst []byte, r *SessionRecord) ([]byte, error) {
	var err error
	dst = append(dst, `{"call_id":`...)
	dst = strconv.AppendUint(dst, r.CallID, 10)
	dst = append(dst, `,"user_id":`...)
	dst = strconv.AppendUint(dst, r.UserID, 10)
	dst = append(dst, `,"platform":`...)
	dst = appendJSONString(dst, r.Platform)
	dst = append(dst, `,"meeting_size":`...)
	dst = strconv.AppendInt(dst, int64(r.MeetingSize), 10)
	dst = append(dst, `,"start":`...)
	if dst, err = appendJSONTime(dst, r.Start); err != nil {
		return dst, err
	}
	dst = append(dst, `,"duration_sec":`...)
	if dst, err = appendJSONFloat(dst, r.DurationSec); err != nil {
		return dst, err
	}
	netFields := [...]struct {
		key string
		val float64
	}{
		{`"LatencyMean":`, r.Net.LatencyMean},
		{`,"LatencyMedian":`, r.Net.LatencyMedian},
		{`,"LatencyP95":`, r.Net.LatencyP95},
		{`,"LossMean":`, r.Net.LossMean},
		{`,"LossMedian":`, r.Net.LossMedian},
		{`,"LossP95":`, r.Net.LossP95},
		{`,"JitterMean":`, r.Net.JitterMean},
		{`,"JitterMedian":`, r.Net.JitterMedian},
		{`,"JitterP95":`, r.Net.JitterP95},
		{`,"BWMean":`, r.Net.BWMean},
		{`,"BWMedian":`, r.Net.BWMedian},
		{`,"BWP95":`, r.Net.BWP95},
	}
	dst = append(dst, `,"net":{`...)
	for _, f := range netFields {
		dst = append(dst, f.key...)
		if dst, err = appendJSONFloat(dst, f.val); err != nil {
			return dst, err
		}
	}
	dst = append(dst, `},"presence_pct":`...)
	if dst, err = appendJSONFloat(dst, r.PresencePct); err != nil {
		return dst, err
	}
	dst = append(dst, `,"cam_on_pct":`...)
	if dst, err = appendJSONFloat(dst, r.CamOnPct); err != nil {
		return dst, err
	}
	dst = append(dst, `,"mic_on_pct":`...)
	if dst, err = appendJSONFloat(dst, r.MicOnPct); err != nil {
		return dst, err
	}
	dst = append(dst, `,"left_early":`...)
	dst = strconv.AppendBool(dst, r.LeftEarly)
	dst = append(dst, `,"rated":`...)
	dst = strconv.AppendBool(dst, r.Rated)
	if r.Rating != 0 { // mirrors the struct tag's omitempty
		dst = append(dst, `,"rating":`...)
		dst = strconv.AppendInt(dst, int64(r.Rating), 10)
	}
	dst = append(dst, `,"country":`...)
	dst = appendJSONString(dst, r.Country)
	dst = append(dst, `,"enterprise":`...)
	dst = strconv.AppendBool(dst, r.Enterprise)
	dst = append(dst, `,"isp":`...)
	dst = appendJSONString(dst, r.ISP)
	return append(dst, '}'), nil
}

// AppendNDJSON appends the records as JSON Lines (one record per
// newline-terminated line).
func AppendNDJSON(dst []byte, recs []SessionRecord) ([]byte, error) {
	var err error
	for i := range recs {
		if dst, err = AppendJSON(dst, &recs[i]); err != nil {
			return dst, err
		}
		dst = append(dst, '\n')
	}
	return dst, nil
}

// appendJSONFloat mirrors encoding/json's float formatter: shortest
// round-trip form, 'f' notation except for very large/small magnitudes,
// with the exponent's leading zero stripped.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return dst, fmt.Errorf("telemetry: unsupported float value %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Convert e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// appendJSONTime mirrors time.Time.MarshalJSON: quoted strict RFC 3339 with
// nanoseconds, rejecting the timestamps the standard library rejects.
func appendJSONTime(dst []byte, t time.Time) ([]byte, error) {
	if y := t.Year(); y < 0 || y >= 10000 {
		return dst, errors.New("telemetry: timestamp year outside of range [0,9999]")
	}
	if _, off := t.Zone(); off%60 != 0 {
		return dst, errors.New("telemetry: timestamp has sub-minute UTC offset")
	}
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"'), nil
}

// appendJSONString mirrors encoding/json's default (HTML-escaping) string
// encoder byte for byte.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters, plus <, >, & (HTML escaping).
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `�`...)
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonSafe reports whether b needs no escaping under HTML-escaped JSON.
func jsonSafe(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}

// ParseJSON decodes one JSON object into r, zeroing it first. It accepts
// everything json.Unmarshal produces for a SessionRecord (unknown fields
// are skipped, null leaves a field zero) and is slightly laxer on exotic
// number spellings. Unlike json.Unmarshal it matches field names
// case-sensitively, which is all the canonical encoder ever emits.
func ParseJSON(data []byte, r *SessionRecord) error {
	// One string conversion up front lets every number token below be a
	// free substring instead of a fresh allocation.
	return parseRecordJSON(string(data), r, nil)
}

// parseRecordJSON is the shared decode core; intern, when non-nil,
// deduplicates field strings (platform/country/isp) across records.
func parseRecordJSON(data string, r *SessionRecord, intern map[string]string) error {
	p := jsonParser{data: data, intern: intern}
	*r = SessionRecord{}
	p.skipSpace()
	if err := p.expect('{'); err != nil {
		return err
	}
	p.skipSpace()
	if p.peekIs('}') {
		p.pos++
	} else {
		for {
			key, err := p.stringToken()
			if err != nil {
				return err
			}
			p.skipSpace()
			if err := p.expect(':'); err != nil {
				return err
			}
			p.skipSpace()
			if err := p.recordField(r, key); err != nil {
				return err
			}
			p.skipSpace()
			c, err := p.next()
			if err != nil {
				return err
			}
			if c == '}' {
				break
			}
			if c != ',' {
				return p.syntaxErr("expected ',' or '}' in object")
			}
			p.skipSpace()
		}
	}
	p.skipSpace()
	if p.pos != len(p.data) {
		return p.syntaxErr("trailing data after JSON value")
	}
	return nil
}

// jsonParser is a minimal recursive-descent JSON reader over a string.
type jsonParser struct {
	data   string
	pos    int
	intern map[string]string
}

func (p *jsonParser) syntaxErr(msg string) error {
	return fmt.Errorf("telemetry: invalid JSON at offset %d: %s", p.pos, msg)
}

func (p *jsonParser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsonParser) peekIs(c byte) bool {
	return p.pos < len(p.data) && p.data[p.pos] == c
}

func (p *jsonParser) next() (byte, error) {
	if p.pos >= len(p.data) {
		return 0, p.syntaxErr("unexpected end of input")
	}
	c := p.data[p.pos]
	p.pos++
	return c, nil
}

func (p *jsonParser) expect(c byte) error {
	if !p.peekIs(c) {
		return p.syntaxErr("expected " + strconv.QuoteRune(rune(c)))
	}
	p.pos++
	return nil
}

func (p *jsonParser) expectLit(lit string) error {
	if !strings.HasPrefix(p.data[p.pos:], lit) {
		return p.syntaxErr("invalid literal")
	}
	p.pos += len(lit)
	return nil
}

// tryNull consumes a null literal if present; callers leave the target
// field zeroed, matching json.Unmarshal.
func (p *jsonParser) tryNull() bool {
	if strings.HasPrefix(p.data[p.pos:], "null") {
		p.pos += 4
		return true
	}
	return false
}

// recordField dispatches one top-level key to its field parser.
func (p *jsonParser) recordField(r *SessionRecord, key string) error {
	switch key {
	case "call_id":
		return p.parseUint(&r.CallID)
	case "user_id":
		return p.parseUint(&r.UserID)
	case "platform":
		return p.parseStringField(&r.Platform)
	case "meeting_size":
		return p.parseInt(&r.MeetingSize)
	case "start":
		return p.parseTime(&r.Start)
	case "duration_sec":
		return p.parseFloat(&r.DurationSec)
	case "net":
		return p.parseNet(&r.Net)
	case "presence_pct":
		return p.parseFloat(&r.PresencePct)
	case "cam_on_pct":
		return p.parseFloat(&r.CamOnPct)
	case "mic_on_pct":
		return p.parseFloat(&r.MicOnPct)
	case "left_early":
		return p.parseBool(&r.LeftEarly)
	case "rated":
		return p.parseBool(&r.Rated)
	case "rating":
		return p.parseInt(&r.Rating)
	case "country":
		return p.parseStringField(&r.Country)
	case "enterprise":
		return p.parseBool(&r.Enterprise)
	case "isp":
		return p.parseStringField(&r.ISP)
	default:
		return p.skipValue(0)
	}
}

// parseNet decodes the nested aggregates object. The struct has no JSON
// tags, so the canonical keys are the Go field names.
func (p *jsonParser) parseNet(n *NetAggregates) error {
	if p.tryNull() {
		return nil
	}
	if err := p.expect('{'); err != nil {
		return err
	}
	p.skipSpace()
	if p.peekIs('}') {
		p.pos++
		return nil
	}
	for {
		key, err := p.stringToken()
		if err != nil {
			return err
		}
		p.skipSpace()
		if err := p.expect(':'); err != nil {
			return err
		}
		p.skipSpace()
		var dst *float64
		switch key {
		case "LatencyMean":
			dst = &n.LatencyMean
		case "LatencyMedian":
			dst = &n.LatencyMedian
		case "LatencyP95":
			dst = &n.LatencyP95
		case "LossMean":
			dst = &n.LossMean
		case "LossMedian":
			dst = &n.LossMedian
		case "LossP95":
			dst = &n.LossP95
		case "JitterMean":
			dst = &n.JitterMean
		case "JitterMedian":
			dst = &n.JitterMedian
		case "JitterP95":
			dst = &n.JitterP95
		case "BWMean":
			dst = &n.BWMean
		case "BWMedian":
			dst = &n.BWMedian
		case "BWP95":
			dst = &n.BWP95
		}
		if dst != nil {
			err = p.parseFloat(dst)
		} else {
			err = p.skipValue(0)
		}
		if err != nil {
			return err
		}
		p.skipSpace()
		c, err := p.next()
		if err != nil {
			return err
		}
		if c == '}' {
			return nil
		}
		if c != ',' {
			return p.syntaxErr("expected ',' or '}' in object")
		}
		p.skipSpace()
	}
}

// numberToken consumes a number (or null, returning "") and returns the
// raw token as a substring of the input.
func (p *jsonParser) numberToken() (string, error) {
	if p.tryNull() {
		return "", nil
	}
	start := p.pos
	if p.peekIs('-') {
		p.pos++
	}
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.syntaxErr("expected number")
	}
	return p.data[start:p.pos], nil
}

func (p *jsonParser) parseUint(dst *uint64) error {
	tok, err := p.numberToken()
	if err != nil || tok == "" {
		return err
	}
	v, err := strconv.ParseUint(tok, 10, 64)
	if err != nil {
		return fmt.Errorf("telemetry: invalid unsigned number %q", tok)
	}
	*dst = v
	return nil
}

func (p *jsonParser) parseInt(dst *int) error {
	tok, err := p.numberToken()
	if err != nil || tok == "" {
		return err
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return fmt.Errorf("telemetry: invalid integer %q", tok)
	}
	*dst = int(v)
	return nil
}

func (p *jsonParser) parseFloat(dst *float64) error {
	tok, err := p.numberToken()
	if err != nil || tok == "" {
		return err
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil || math.IsInf(v, 0) {
		return fmt.Errorf("telemetry: invalid number %q", tok)
	}
	*dst = v
	return nil
}

func (p *jsonParser) parseBool(dst *bool) error {
	switch {
	case p.tryNull():
		return nil
	case p.peekIs('t'):
		if err := p.expectLit("true"); err != nil {
			return err
		}
		*dst = true
		return nil
	case p.peekIs('f'):
		if err := p.expectLit("false"); err != nil {
			return err
		}
		*dst = false
		return nil
	default:
		return p.syntaxErr("expected boolean")
	}
}

func (p *jsonParser) parseTime(dst *time.Time) error {
	if p.tryNull() {
		return nil
	}
	s, err := p.stringToken()
	if err != nil {
		return err
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return fmt.Errorf("telemetry: invalid timestamp %q: %w", s, err)
	}
	*dst = t
	return nil
}

// parseStringField decodes a string into dst, interning the result when the
// parser has an intern table (ingest sees the same few platform/country/ISP
// values millions of times).
func (p *jsonParser) parseStringField(dst *string) error {
	if p.tryNull() {
		return nil
	}
	s, err := p.stringToken()
	if err != nil {
		return err
	}
	if p.intern != nil {
		if v, ok := p.intern[s]; ok {
			*dst = v
			return nil
		}
	}
	// Clone so the record never pins the whole input line.
	v := strings.Clone(s)
	if p.intern != nil && len(p.intern) < 4096 {
		p.intern[v] = v
	}
	*dst = v
	return nil
}

// stringToken parses a JSON string. The result aliases the input when no
// unescaping was needed.
func (p *jsonParser) stringToken() (string, error) {
	if !p.peekIs('"') {
		return "", p.syntaxErr("expected string")
	}
	p.pos++
	start := p.pos
	simple := true
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; {
		case c == '"':
			seg := p.data[start:p.pos]
			p.pos++
			if simple {
				return seg, nil
			}
			return unescapeJSONString(seg)
		case c == '\\':
			simple = false
			p.pos++
			if p.pos < len(p.data) {
				p.pos++ // the escaped character is never a delimiter
			}
		case c < 0x20:
			return "", p.syntaxErr("control character in string literal")
		default:
			if c >= utf8.RuneSelf {
				simple = false // re-encode to well-formed UTF-8 below
			}
			p.pos++
		}
	}
	return "", p.syntaxErr("unterminated string literal")
}

// unescapeJSONString resolves escapes and coerces the text to well-formed
// UTF-8, exactly as encoding/json's unquote does (lone surrogates and
// invalid bytes become U+FFFD).
func unescapeJSONString(s string) (string, error) {
	b := make([]byte, 0, len(s)+2*utf8.UTFMax)
	for r := 0; r < len(s); {
		switch c := s[r]; {
		case c == '\\':
			r++
			if r >= len(s) {
				return "", errors.New("telemetry: truncated escape in string")
			}
			switch s[r] {
			case '"', '\\', '/', '\'':
				b = append(b, s[r])
				r++
			case 'b':
				b = append(b, '\b')
				r++
			case 'f':
				b = append(b, '\f')
				r++
			case 'n':
				b = append(b, '\n')
				r++
			case 'r':
				b = append(b, '\r')
				r++
			case 't':
				b = append(b, '\t')
				r++
			case 'u':
				r--
				rr := getu4(s[r:])
				if rr < 0 {
					return "", errors.New("telemetry: invalid \\u escape in string")
				}
				r += 6
				if utf16.IsSurrogate(rr) {
					rr1 := getu4(s[r:])
					if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
						r += 6
						b = utf8.AppendRune(b, dec)
						break
					}
					rr = unicode.ReplacementChar
				}
				b = utf8.AppendRune(b, rr)
			default:
				return "", errors.New("telemetry: invalid escape character in string")
			}
		case c < utf8.RuneSelf:
			b = append(b, c)
			r++
		default:
			rr, size := utf8.DecodeRuneInString(s[r:])
			r += size
			b = utf8.AppendRune(b, rr)
		}
	}
	return string(b), nil
}

// getu4 decodes the four hex digits of a \uXXXX escape, or -1.
func getu4(s string) rune {
	if len(s) < 6 || s[0] != '\\' || s[1] != 'u' {
		return -1
	}
	var r rune
	for i := 2; i < 6; i++ {
		c := s[i]
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// skipValue consumes any JSON value (for unknown fields).
func (p *jsonParser) skipValue(depth int) error {
	if depth > 1000 {
		return p.syntaxErr("value nested too deeply")
	}
	p.skipSpace()
	if p.pos >= len(p.data) {
		return p.syntaxErr("unexpected end of input")
	}
	switch c := p.data[p.pos]; c {
	case '"':
		_, err := p.stringToken()
		return err
	case '{':
		p.pos++
		p.skipSpace()
		if p.peekIs('}') {
			p.pos++
			return nil
		}
		for {
			if _, err := p.stringToken(); err != nil {
				return err
			}
			p.skipSpace()
			if err := p.expect(':'); err != nil {
				return err
			}
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.skipSpace()
			c, err := p.next()
			if err != nil {
				return err
			}
			if c == '}' {
				return nil
			}
			if c != ',' {
				return p.syntaxErr("expected ',' or '}' in object")
			}
			p.skipSpace()
		}
	case '[':
		p.pos++
		p.skipSpace()
		if p.peekIs(']') {
			p.pos++
			return nil
		}
		for {
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.skipSpace()
			c, err := p.next()
			if err != nil {
				return err
			}
			if c == ']' {
				return nil
			}
			if c != ',' {
				return p.syntaxErr("expected ',' or ']' in array")
			}
		}
	case 't':
		return p.expectLit("true")
	case 'f':
		return p.expectLit("false")
	case 'n':
		return p.expectLit("null")
	default:
		_, err := p.numberToken()
		return err
	}
}
