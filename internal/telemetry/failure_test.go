package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// Failure-injection tests: the dataset readers must fail loudly and
// precisely on corrupted input, never silently truncate.

func TestCSVTruncatedRow(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	r := sampleRecord()
	if err := w.Write(&r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	// Chop the last row in half.
	cut := full[:len(full)-20]
	err := ReadCSV(strings.NewReader(cut), func(*SessionRecord) error { return nil })
	if err == nil {
		t.Fatal("truncated CSV accepted")
	}
}

func TestCSVCallbackErrorPropagates(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	for i := 0; i < 5; i++ {
		r := sampleRecord()
		r.CallID = uint64(i)
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Flush()
	sentinel := errors.New("stop")
	count := 0
	err := ReadCSV(bytes.NewReader(buf.Bytes()), func(*SessionRecord) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if count != 2 {
		t.Fatalf("read continued after callback error: %d", count)
	}
}

func TestCSVRecordReuseSemantics(t *testing.T) {
	// The callback record is reused; retaining the pointer is a bug the
	// docs warn about. Verify the documented behaviour.
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	for i := 0; i < 3; i++ {
		r := sampleRecord()
		r.CallID = uint64(100 + i)
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Flush()
	var retained *SessionRecord
	if err := ReadCSV(bytes.NewReader(buf.Bytes()), func(r *SessionRecord) error {
		retained = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if retained.CallID != 102 {
		t.Fatalf("reused record should hold the last row, got %d", retained.CallID)
	}
}

func TestJSONLOversizedLine(t *testing.T) {
	// The scanner caps line size at 4 MiB; a larger line must error, not
	// hang or silently skip.
	huge := `{"call_id":1,"pad":"` + strings.Repeat("x", 5<<20) + `"}`
	err := ReadJSONL(strings.NewReader(huge), func(*SessionRecord) error { return nil })
	if err == nil {
		t.Fatal("oversized JSONL line accepted")
	}
}

func TestJSONLCallbackErrorPropagates(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for i := 0; i < 3; i++ {
		r := sampleRecord()
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Flush()
	sentinel := errors.New("stop")
	err := ReadJSONL(bytes.NewReader(buf.Bytes()), func(*SessionRecord) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestCSVErrorNamesColumnAndLine(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	r := sampleRecord()
	if err := w.Write(&r); err != nil {
		t.Fatal(err)
	}
	_ = w.Flush()
	corrupt := strings.Replace(buf.String(), "1800", "NaN?!", 1) // duration_sec
	err := ReadCSV(strings.NewReader(corrupt), func(*SessionRecord) error { return nil })
	if err == nil {
		t.Fatal("corrupt duration accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 2") || !strings.Contains(msg, "duration_sec") {
		t.Fatalf("error should name line and column: %q", msg)
	}
}
