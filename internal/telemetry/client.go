package telemetry

import (
	"usersignals/internal/netsim"
	"usersignals/internal/simrand"
	"usersignals/internal/timeline"
)

// businessHours is the §3.1 filter zone (9 AM–8 PM EST, weekdays).
var businessHours = timeline.ESTBusinessHours

// Client is the in-session measurement agent running on each participant's
// device: it records one network sample per telemetry window and produces
// the session aggregates at the end. The zero value is ready to use.
type Client struct {
	series netsim.Series
}

// Record appends one 5-second sample. Invalid samples (out-of-range values)
// are clamped into validity rather than dropped, mirroring defensive client
// code; telemetry gaps would otherwise bias per-session means.
func (c *Client) Record(s netsim.Conditions) {
	if s.LatencyMs < 0 {
		s.LatencyMs = 0
	}
	if s.LossPct < 0 {
		s.LossPct = 0
	}
	if s.LossPct > 100 {
		s.LossPct = 100
	}
	if s.JitterMs < 0 {
		s.JitterMs = 0
	}
	if s.BandwidthMbps < 0 {
		s.BandwidthMbps = 0
	}
	c.series = append(c.series, s)
}

// Samples returns the number of recorded windows.
func (c *Client) Samples() int { return len(c.series) }

// Aggregates finalizes the session statistics.
func (c *Client) Aggregates() NetAggregates { return Aggregate(c.series) }

// Reset clears the client for a new session.
func (c *Client) Reset() { c.series = c.series[:0] }

// SurveySampler decides which sessions receive an end-of-call rating
// prompt. The paper reports feedback on 0.1–1% of sessions; the default
// rate is 0.5%.
type SurveySampler struct {
	// Rate is the fraction of sessions surveyed, in [0, 1].
	Rate float64
}

// DefaultSurveyRate is the default sampling fraction (0.5%).
const DefaultSurveyRate = 0.005

// ShouldSurvey reports whether this session is prompted for feedback.
func (s SurveySampler) ShouldSurvey(r *simrand.RNG) bool {
	rate := s.Rate
	if rate <= 0 {
		rate = DefaultSurveyRate
	}
	if rate > 1 {
		rate = 1
	}
	return r.Bool(rate)
}

// MOS computes the mean opinion score of a set of 1–5 ratings; NaN-free:
// returns 0, false when no ratings are present.
func MOS(ratings []int) (float64, bool) {
	if len(ratings) == 0 {
		return 0, false
	}
	sum := 0
	for _, x := range ratings {
		sum += x
	}
	return float64(sum) / float64(len(ratings)), true
}
