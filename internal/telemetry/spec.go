package telemetry

import (
	"usersignals/internal/timeline"
)

// This file is the declarative side of the cohort filters. The original
// constructors (StudyCohort, ControlBands, OnISP) returned opaque
// func-per-row closures, which a columnar scan cannot introspect; they now
// delegate to FilterSpec, a small conjunctive description that compiles two
// ways: Filter() produces the row predicate (same accept set as before), and
// colstore compiles the same spec into a per-partition predicate over
// dictionary codes and bitsets.

// Accessor returns a direct field accessor for the metric, resolving the
// switch in Of once instead of per record. Sweeps hoist this out of their
// inner loops.
func (m Metric) Accessor() func(*NetAggregates) float64 {
	if m < 0 || int(m) >= len(metricAccessors) {
		return zeroNet
	}
	return metricAccessors[m]
}

func zeroNet(*NetAggregates) float64 { return 0 }

var metricAccessors = [...]func(*NetAggregates) float64{
	LatencyMean:   func(a *NetAggregates) float64 { return a.LatencyMean },
	LossMean:      func(a *NetAggregates) float64 { return a.LossMean },
	JitterMean:    func(a *NetAggregates) float64 { return a.JitterMean },
	BandwidthMean: func(a *NetAggregates) float64 { return a.BWMean },
	LatencyP95:    func(a *NetAggregates) float64 { return a.LatencyP95 },
	LossP95:       func(a *NetAggregates) float64 { return a.LossP95 },
	JitterP95:     func(a *NetAggregates) float64 { return a.JitterP95 },
	BandwidthP95:  func(a *NetAggregates) float64 { return a.BWP95 },
}

// Accessor returns a direct field accessor for the engagement metric,
// resolving the EngagementOf switch once per sweep.
func (e Engagement) Accessor() func(*SessionRecord) float64 {
	if e < 0 || int(e) >= len(engagementAccessors) {
		return zeroRec
	}
	return engagementAccessors[e]
}

func zeroRec(*SessionRecord) float64 { return 0 }

var engagementAccessors = [...]func(*SessionRecord) float64{
	Presence: func(r *SessionRecord) float64 { return r.PresencePct },
	CamOn:    func(r *SessionRecord) float64 { return r.CamOnPct },
	MicOn:    func(r *SessionRecord) float64 { return r.MicOnPct },
}

// MetricBand constrains one network metric to [Lo, Hi]. A record is rejected
// when the value compares outside the band (x < Lo || x > Hi); NaN compares
// false on both sides and therefore passes, preserving the historical
// ControlBands behavior.
type MetricBand struct {
	Metric Metric
	Lo, Hi float64
}

// FilterSpec describes a conjunctive session filter declaratively. The zero
// value accepts everything. Every constraint that is "on" must hold:
//   - Enterprise: record must be an enterprise session
//   - Country / ISP: exact match when non-empty
//   - MinMeetingSize: MeetingSize >= the bound, when > 0
//   - BusinessHours: Start must fall inside the window, when non-nil
//   - Bands: every MetricBand must hold
type FilterSpec struct {
	Enterprise     bool
	Country        string
	ISP            string
	MinMeetingSize int
	BusinessHours  *timeline.BusinessHours
	Bands          []MetricBand
}

// Filter compiles the spec into the row predicate. All per-filter work —
// accessor resolution, business-hours copy — happens here, once, not per
// record.
func (s FilterSpec) Filter() Filter {
	bands := append([]MetricBand(nil), s.Bands...)
	accs := make([]func(*NetAggregates) float64, len(bands))
	for i, b := range bands {
		accs[i] = b.Metric.Accessor()
	}
	var bh timeline.BusinessHours
	hasBH := s.BusinessHours != nil
	if hasBH {
		bh = *s.BusinessHours
	}
	ent, country, isp, minMS := s.Enterprise, s.Country, s.ISP, s.MinMeetingSize
	return func(r *SessionRecord) bool {
		if ent && !r.Enterprise {
			return false
		}
		if country != "" && r.Country != country {
			return false
		}
		if isp != "" && r.ISP != isp {
			return false
		}
		if minMS > 0 && r.MeetingSize < minMS {
			return false
		}
		if hasBH && !bh.Contains(r.Start) {
			return false
		}
		for i := range bands {
			x := accs[i](&r.Net)
			if x < bands[i].Lo || x > bands[i].Hi {
				return false
			}
		}
		return true
	}
}

// StudyCohortSpec is the declarative form of the §3.1 dataset filter:
// enterprise calls during business hours (9 AM–8 PM EST) on weekdays with
// 3+ participants, all in the US.
func StudyCohortSpec() FilterSpec {
	bh := businessHours
	return FilterSpec{
		Enterprise:     true,
		Country:        "US",
		MinMeetingSize: 3,
		BusinessHours:  &bh,
	}
}

// ControlBandsSpec is the declarative form of the §3.2 confounder bands
// (latency 0–40 ms, loss 0–0.2%, jitter 0–5 ms, bandwidth 3–4 Mbps), with
// `vary` left free. Pass Metric(-1) to exempt nothing.
func ControlBandsSpec(vary Metric) FilterSpec {
	var s FilterSpec
	all := []MetricBand{
		{Metric: LatencyMean, Lo: 0, Hi: 40},
		{Metric: LossMean, Lo: 0, Hi: 0.2},
		{Metric: JitterMean, Lo: 0, Hi: 5},
		{Metric: BandwidthMean, Lo: 3, Hi: 4},
	}
	for _, b := range all {
		if b.Metric != vary {
			s.Bands = append(s.Bands, b)
		}
	}
	return s
}

// OnISPSpec is the declarative form of the access-provider filter.
func OnISPSpec(isp string) FilterSpec {
	return FilterSpec{ISP: isp}
}
