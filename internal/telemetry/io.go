package telemetry

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// The dataset formats are streaming: writers emit one record at a time and
// readers deliver records through a callback, so multi-gigabyte datasets
// never need to fit in memory. CSV is the interchange format (header below);
// JSON Lines carries the full nested record.

var csvHeader = []string{
	"call_id", "user_id", "platform", "meeting_size", "start", "duration_sec",
	"lat_mean", "lat_median", "lat_p95",
	"loss_mean", "loss_median", "loss_p95",
	"jitter_mean", "jitter_median", "jitter_p95",
	"bw_mean", "bw_median", "bw_p95",
	"presence_pct", "cam_on_pct", "mic_on_pct", "left_early",
	"rated", "rating", "country", "enterprise", "isp",
}

// CSVWriter streams session records as CSV.
type CSVWriter struct {
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVWriter returns a writer targeting w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w)}
}

// Write emits one record (and the header before the first record).
func (cw *CSVWriter) Write(r *SessionRecord) error {
	if !cw.wroteHeader {
		if err := cw.w.Write(csvHeader); err != nil {
			return fmt.Errorf("telemetry: writing CSV header: %w", err)
		}
		cw.wroteHeader = true
	}
	row := []string{
		strconv.FormatUint(r.CallID, 10),
		strconv.FormatUint(r.UserID, 10),
		r.Platform,
		strconv.Itoa(r.MeetingSize),
		r.Start.UTC().Format(time.RFC3339),
		fmtF(r.DurationSec),
		fmtF(r.Net.LatencyMean), fmtF(r.Net.LatencyMedian), fmtF(r.Net.LatencyP95),
		fmtF(r.Net.LossMean), fmtF(r.Net.LossMedian), fmtF(r.Net.LossP95),
		fmtF(r.Net.JitterMean), fmtF(r.Net.JitterMedian), fmtF(r.Net.JitterP95),
		fmtF(r.Net.BWMean), fmtF(r.Net.BWMedian), fmtF(r.Net.BWP95),
		fmtF(r.PresencePct), fmtF(r.CamOnPct), fmtF(r.MicOnPct),
		strconv.FormatBool(r.LeftEarly),
		strconv.FormatBool(r.Rated),
		strconv.Itoa(r.Rating),
		r.Country,
		strconv.FormatBool(r.Enterprise),
		r.ISP,
	}
	if err := cw.w.Write(row); err != nil {
		return fmt.Errorf("telemetry: writing CSV row: %w", err)
	}
	return nil
}

// Flush flushes buffered rows and reports any write error.
func (cw *CSVWriter) Flush() error {
	cw.w.Flush()
	if err := cw.w.Error(); err != nil {
		return fmt.Errorf("telemetry: flushing CSV: %w", err)
	}
	return nil
}

func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', 8, 64) }

// ReadCSV streams records from r, invoking fn for each. The record passed
// to fn is reused between calls; copy it if it must outlive the callback.
// A non-nil error from fn aborts the read and is returned.
func ReadCSV(r io.Reader, fn func(*SessionRecord) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil // empty dataset
	}
	if err != nil {
		return fmt.Errorf("telemetry: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return fmt.Errorf("telemetry: CSV header has %d columns, want %d", len(header), len(csvHeader))
	}
	var rec SessionRecord
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("telemetry: reading CSV: %w", err)
		}
		line++
		if err := parseRow(row, &rec); err != nil {
			return fmt.Errorf("telemetry: CSV line %d: %w", line, err)
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
}

func parseRow(row []string, rec *SessionRecord) error {
	if len(row) != len(csvHeader) {
		return fmt.Errorf("row has %d columns, want %d", len(row), len(csvHeader))
	}
	var err error
	fail := func(col string, e error) error { return fmt.Errorf("column %s: %w", col, e) }

	if rec.CallID, err = strconv.ParseUint(row[0], 10, 64); err != nil {
		return fail("call_id", err)
	}
	if rec.UserID, err = strconv.ParseUint(row[1], 10, 64); err != nil {
		return fail("user_id", err)
	}
	rec.Platform = row[2]
	if rec.MeetingSize, err = strconv.Atoi(row[3]); err != nil {
		return fail("meeting_size", err)
	}
	if rec.Start, err = time.Parse(time.RFC3339, row[4]); err != nil {
		return fail("start", err)
	}
	floats := []struct {
		idx  int
		name string
		dst  *float64
	}{
		{5, "duration_sec", &rec.DurationSec},
		{6, "lat_mean", &rec.Net.LatencyMean}, {7, "lat_median", &rec.Net.LatencyMedian}, {8, "lat_p95", &rec.Net.LatencyP95},
		{9, "loss_mean", &rec.Net.LossMean}, {10, "loss_median", &rec.Net.LossMedian}, {11, "loss_p95", &rec.Net.LossP95},
		{12, "jitter_mean", &rec.Net.JitterMean}, {13, "jitter_median", &rec.Net.JitterMedian}, {14, "jitter_p95", &rec.Net.JitterP95},
		{15, "bw_mean", &rec.Net.BWMean}, {16, "bw_median", &rec.Net.BWMedian}, {17, "bw_p95", &rec.Net.BWP95},
		{18, "presence_pct", &rec.PresencePct}, {19, "cam_on_pct", &rec.CamOnPct}, {20, "mic_on_pct", &rec.MicOnPct},
	}
	for _, f := range floats {
		if *f.dst, err = strconv.ParseFloat(row[f.idx], 64); err != nil {
			return fail(f.name, err)
		}
	}
	if rec.LeftEarly, err = strconv.ParseBool(row[21]); err != nil {
		return fail("left_early", err)
	}
	if rec.Rated, err = strconv.ParseBool(row[22]); err != nil {
		return fail("rated", err)
	}
	if rec.Rating, err = strconv.Atoi(row[23]); err != nil {
		return fail("rating", err)
	}
	rec.Country = row[24]
	if rec.Enterprise, err = strconv.ParseBool(row[25]); err != nil {
		return fail("enterprise", err)
	}
	rec.ISP = row[26]
	return nil
}

// JSONLWriter streams records as JSON Lines using the hand-rolled codec in
// codec.go; the output is byte-identical to what json.Encoder produced.
type JSONLWriter struct {
	bw  *bufio.Writer
	buf []byte
}

// NewJSONLWriter returns a writer targeting w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriter(w)}
}

// Write emits one record as a JSON line.
func (jw *JSONLWriter) Write(r *SessionRecord) error {
	b, err := AppendJSON(jw.buf[:0], r)
	if err != nil {
		return fmt.Errorf("telemetry: encoding JSONL: %w", err)
	}
	b = append(b, '\n')
	jw.buf = b
	if _, err := jw.bw.Write(b); err != nil {
		return fmt.Errorf("telemetry: encoding JSONL: %w", err)
	}
	return nil
}

// Flush flushes buffered output.
func (jw *JSONLWriter) Flush() error {
	if err := jw.bw.Flush(); err != nil {
		return fmt.Errorf("telemetry: flushing JSONL: %w", err)
	}
	return nil
}

// scanBufPool recycles the scanner buffers behind ReadJSONL so concurrent
// ingest requests don't each allocate a fresh 64 KiB window.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64*1024)
		return &b
	},
}

// ReadJSONL streams records from r, invoking fn for each. As with ReadCSV
// the record is reused between calls. Lines up to 4 MiB are accepted.
func ReadJSONL(r io.Reader, fn func(*SessionRecord) error) error {
	sc := bufio.NewScanner(r)
	bufp := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(bufp)
	sc.Buffer(*bufp, 4*1024*1024)
	intern := make(map[string]string)
	var rec SessionRecord
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if err := parseRecordJSON(string(sc.Bytes()), &rec, intern); err != nil {
			return fmt.Errorf("telemetry: JSONL line %d: %w", line, err)
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: reading JSONL: %w", err)
	}
	return nil
}

// CollectCSV reads all records matching filter into memory. Convenience for
// tests and small analyses; large pipelines should stream with ReadCSV.
func CollectCSV(r io.Reader, filter Filter) ([]SessionRecord, error) {
	var out []SessionRecord
	err := ReadCSV(r, func(rec *SessionRecord) error {
		if filter == nil || filter(rec) {
			out = append(out, *rec)
		}
		return nil
	})
	return out, err
}
