package telemetry

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// specTestRecord draws a record whose fields stress every filter clause,
// including NaN metrics (which must pass bands) and out-of-hours starts.
func specTestRecord(rng *rand.Rand) SessionRecord {
	countries := []string{"US", "DE", "IN"}
	isps := []string{"starlink", "comcast", ""}
	maybeNaN := func(v float64) float64 {
		if rng.Intn(10) == 0 {
			return math.NaN()
		}
		return v
	}
	return SessionRecord{
		CallID:      rng.Uint64(),
		UserID:      rng.Uint64(),
		Platform:    []string{"desktop", "mobile", "web"}[rng.Intn(3)],
		MeetingSize: rng.Intn(12) - 1,
		Start:       time.Unix(1609459200+rng.Int63n(2*365*86400), rng.Int63n(1e9)).UTC(),
		Net: NetAggregates{
			LatencyMean: maybeNaN(rng.Float64() * 80),
			LossMean:    maybeNaN(rng.Float64() * 0.5),
			JitterMean:  maybeNaN(rng.Float64() * 10),
			BWMean:      maybeNaN(2.5 + rng.Float64()*2),
		},
		PresencePct: rng.Float64() * 100,
		Country:     countries[rng.Intn(len(countries))],
		Enterprise:  rng.Intn(2) == 0,
		ISP:         isps[rng.Intn(len(isps))],
	}
}

// legacyStudyCohort / legacyControlBands are the pre-spec closure bodies,
// kept as the reference the delegating constructors must match.
func legacyStudyCohort() Filter {
	bh := businessHours
	return func(r *SessionRecord) bool {
		return r.Enterprise &&
			r.Country == "US" &&
			r.MeetingSize >= 3 &&
			bh.Contains(r.Start)
	}
}

func legacyControlBands(vary Metric) Filter {
	return func(r *SessionRecord) bool {
		a := r.Net
		if vary != LatencyMean && (a.LatencyMean < 0 || a.LatencyMean > 40) {
			return false
		}
		if vary != LossMean && (a.LossMean < 0 || a.LossMean > 0.2) {
			return false
		}
		if vary != JitterMean && (a.JitterMean < 0 || a.JitterMean > 5) {
			return false
		}
		if vary != BandwidthMean && (a.BWMean < 3 || a.BWMean > 4) {
			return false
		}
		return true
	}
}

func TestSpecFiltersMatchLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	varies := []Metric{Metric(-1), LatencyMean, LossMean, JitterMean, BandwidthMean}
	type pair struct {
		name        string
		legacy, now Filter
	}
	pairs := []pair{
		{"study-cohort", legacyStudyCohort(), StudyCohort()},
		{"on-isp", func(r *SessionRecord) bool { return r.ISP == "starlink" }, OnISP("starlink")},
	}
	for _, v := range varies {
		pairs = append(pairs, pair{"control-bands", legacyControlBands(v), ControlBands(v)})
	}
	for i := 0; i < 20000; i++ {
		r := specTestRecord(rng)
		for _, p := range pairs {
			if p.legacy(&r) != p.now(&r) {
				t.Fatalf("%s diverges on %+v", p.name, r)
			}
		}
	}
}

func TestAccessorsMatchSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	metrics := []Metric{LatencyMean, LossMean, JitterMean, BandwidthMean,
		LatencyP95, LossP95, JitterP95, BandwidthP95, Metric(99)}
	engs := []Engagement{Presence, CamOn, MicOn, Engagement(99)}
	for i := 0; i < 1000; i++ {
		r := specTestRecord(rng)
		for _, m := range metrics {
			got, want := m.Accessor()(&r.Net), m.Of(r.Net)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("metric %v accessor = %v, Of = %v", m, got, want)
			}
		}
		for _, e := range engs {
			if got, want := e.Accessor()(&r), r.EngagementOf(e); got != want {
				t.Fatalf("engagement %v accessor = %v, EngagementOf = %v", e, got, want)
			}
		}
	}
}

func TestMinMeetingSizeZeroAcceptsNegative(t *testing.T) {
	// A zero MinMeetingSize must not constrain the field at all, even for
	// malformed negative sizes — the legacy OnISP filter never looked at it.
	r := SessionRecord{MeetingSize: -5, ISP: "x"}
	if !(FilterSpec{ISP: "x"}).Filter()(&r) {
		t.Fatal("zero MinMeetingSize rejected a negative meeting size")
	}
}
