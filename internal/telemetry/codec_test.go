package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"usersignals/internal/simrand"
)

// randomRecord produces a deterministic pseudo-random record exercising the
// codec's edge cases: huge/tiny floats (scientific notation), negative
// values, strings needing escapes, zero ratings (omitempty), and sub-second
// timestamps.
func randomRecord(rng *simrand.RNG) SessionRecord {
	platforms := []string{"windows-pc", "mac", "android", `quo"ted`, "tab\tsep", "emoji☎", "<html&>", "ctrl\x01", ""}
	countries := []string{"US", "DE", "BR", "JP", "line\nbreak"}
	isps := []string{"cablecorp", "starlink", "dsl-net", "провайдер", "back\\slash"}
	f := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return -rng.Range(0, 100)
		case 2:
			return rng.Range(0, 1) * 1e-9 // forces 'e' notation
		case 3:
			return rng.Range(1, 10) * 1e22 // forces 'e' notation
		case 4:
			return math.Floor(rng.Range(0, 500))
		default:
			return rng.Range(0, 500)
		}
	}
	r := SessionRecord{
		CallID:      rng.Uint64(),
		UserID:      rng.Uint64(),
		Platform:    platforms[rng.Intn(len(platforms))],
		MeetingSize: rng.Intn(50),
		Start:       time.Date(2000+rng.Intn(30), time.Month(1+rng.Intn(12)), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60), rng.Intn(1_000_000_000), time.UTC),
		DurationSec: f(),
		Net: NetAggregates{
			LatencyMean: f(), LatencyMedian: f(), LatencyP95: f(),
			LossMean: f(), LossMedian: f(), LossP95: f(),
			JitterMean: f(), JitterMedian: f(), JitterP95: f(),
			BWMean: f(), BWMedian: f(), BWP95: f(),
		},
		PresencePct: f(), CamOnPct: f(), MicOnPct: f(),
		LeftEarly: rng.Bool(0.3), Rated: rng.Bool(0.5),
		Country:    countries[rng.Intn(len(countries))],
		Enterprise: rng.Bool(0.5),
		ISP:        isps[rng.Intn(len(isps))],
	}
	if r.Rated && rng.Bool(0.8) {
		r.Rating = 1 + rng.Intn(5)
	}
	if rng.Bool(0.1) {
		r.Start = r.Start.In(time.FixedZone("", -5*3600))
	}
	return r
}

// recordsEqual compares records, treating Start via time.Time.Equal plus
// identical rendering (DeepEqual on time.Time is unreliable across location
// pointer internals).
func recordsEqual(a, b *SessionRecord) bool {
	if !a.Start.Equal(b.Start) || a.Start.Format(time.RFC3339Nano) != b.Start.Format(time.RFC3339Nano) {
		return false
	}
	ac, bc := *a, *b
	ac.Start, bc.Start = time.Time{}, time.Time{}
	return ac == bc
}

// TestAppendJSONMatchesStdlib is the core byte-compatibility contract: the
// hand-rolled encoder must produce exactly json.Marshal's bytes.
func TestAppendJSONMatchesStdlib(t *testing.T) {
	rng := simrand.Root(7).Derive("codec-test").RNG()
	recs := make([]SessionRecord, 0, 500)
	recs = append(recs, sampleRecord(), SessionRecord{})
	for i := 0; i < 498; i++ {
		recs = append(recs, randomRecord(rng))
	}
	for i := range recs {
		want, err := json.Marshal(&recs[i])
		if err != nil {
			t.Fatalf("record %d: stdlib: %v", i, err)
		}
		got, err := AppendJSON(nil, &recs[i])
		if err != nil {
			t.Fatalf("record %d: AppendJSON: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d encoding differs:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestParseJSONDecodesStdlibOutput checks the decoder consumes stdlib
// encodings exactly, including unknown-field skipping and null handling.
func TestParseJSONDecodesStdlibOutput(t *testing.T) {
	rng := simrand.Root(11).Derive("codec-decode").RNG()
	for i := 0; i < 300; i++ {
		want := randomRecord(rng)
		enc, err := json.Marshal(&want)
		if err != nil {
			t.Fatal(err)
		}
		var got SessionRecord
		if err := ParseJSON(enc, &got); err != nil {
			t.Fatalf("record %d: ParseJSON(%s): %v", i, enc, err)
		}
		if !recordsEqual(&got, &want) {
			t.Fatalf("record %d: decode mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	// Hand-picked shapes the generator can't hit.
	cases := []string{
		`{}`,
		` { } `,
		`{"call_id":1,"unknown":{"deep":[1,2,{"x":null}]},"user_id":2}`,
		`{"platform":null,"net":null,"rating":null,"start":null,"rated":null}`,
		`{"net":{},"isp":"a"}`,
		`{"net":{"LatencyMean":1.5,"Junk":[true,false]},"rating":3}`,
		"{\n\t\"call_id\": 7 ,\n \"isp\" : \"x\"\n}",
		`{"platform":"\u0041\u00e9\ud83d\ude00"}`,
		`{"duration_sec":1e2,"presence_pct":-0.5}`,
	}
	for _, c := range cases {
		var mine, std SessionRecord
		if err := ParseJSON([]byte(c), &mine); err != nil {
			t.Fatalf("ParseJSON(%q): %v", c, err)
		}
		if err := json.Unmarshal([]byte(c), &std); err != nil {
			t.Fatalf("stdlib rejects case %q: %v", c, err)
		}
		if !recordsEqual(&mine, &std) {
			t.Fatalf("case %q: mine %+v, stdlib %+v", c, mine, std)
		}
	}
}

// TestParseJSONRejectsGarbage pins the decoder's error behavior on inputs
// the ingest path must refuse.
func TestParseJSONRejectsGarbage(t *testing.T) {
	bad := []string{
		``, `null`, `[]`, `42`, `{`, `{"call_id"}`, `{"call_id":}`,
		`{"call_id":1,}`, `{"call_id":1}{"call_id":2}`, `{"call_id":1} x`,
		`{"call_id":-1}`, `{"call_id":1.5}`, `{"rating":"5"}`, `{"rated":1}`,
		`{"duration_sec":1e999}`, `{"start":"not-a-time"}`, `{"platform":"unterminated`,
		`{"platform":"bad\qescape"}`, `{"platform":"ctrl` + "\x01" + `"}`,
		`{"platform":"\u12"}`, `{"net":[1]}` /* wrong shape */, `{"duration_sec":true}`,
	}
	var rec SessionRecord
	for _, c := range bad {
		if err := ParseJSON([]byte(c), &rec); err == nil {
			t.Errorf("ParseJSON(%q) accepted garbage", c)
		}
	}
}

// TestAppendJSONRejectsNonFinite mirrors json.Marshal's refusal of NaN/Inf
// and out-of-range timestamps.
func TestAppendJSONRejectsNonFinite(t *testing.T) {
	r := sampleRecord()
	r.DurationSec = math.NaN()
	if _, err := AppendJSON(nil, &r); err == nil {
		t.Error("NaN accepted")
	}
	r = sampleRecord()
	r.Net.BWP95 = math.Inf(1)
	if _, err := AppendJSON(nil, &r); err == nil {
		t.Error("+Inf accepted")
	}
	r = sampleRecord()
	r.Start = time.Date(10000, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := AppendJSON(nil, &r); err == nil {
		t.Error("year 10000 accepted")
	}
}

// TestAppendNDJSONMatchesEncoder checks the batch helper against the
// json.Encoder framing the JSONL writer used to produce.
func TestAppendNDJSONMatchesEncoder(t *testing.T) {
	rng := simrand.Root(23).Derive("ndjson").RNG()
	recs := make([]SessionRecord, 40)
	for i := range recs {
		recs[i] = randomRecord(rng)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := AppendNDJSON(nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("NDJSON framing differs:\n got %q\nwant %q", got, want.Bytes())
	}
}

// TestReadJSONLInterning checks that repeated cohort strings decode to
// shared backing storage (the ingest memory win) without affecting values.
func TestReadJSONLInterning(t *testing.T) {
	rng := simrand.Root(29).Derive("intern").RNG()
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	var want []SessionRecord
	for i := 0; i < 100; i++ {
		r := randomRecord(rng)
		want = append(want, r)
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []SessionRecord
	if err := ReadJSONL(&buf, func(r *SessionRecord) error {
		got = append(got, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, wrote %d", len(got), len(want))
	}
	for i := range got {
		if !recordsEqual(&got[i], &want[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// FuzzSessionRecordCodec cross-checks the codec against encoding/json: any
// object our parser accepts must re-encode to exactly the stdlib encoding
// of the same record, and stdlib encodings must round-trip.
func FuzzSessionRecordCodec(f *testing.F) {
	rng := simrand.Root(31).Derive("fuzz-seed").RNG()
	for i := 0; i < 20; i++ {
		r := randomRecord(rng)
		enc, err := json.Marshal(&r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(enc))
	}
	f.Add(`{}`)
	f.Add(`{"platform":"\ud800"}`)            // lone high surrogate
	f.Add(`{"platform":"\ud800\ud800"}`)      // invalid surrogate pair
	f.Add(`{"platform":"\ud83d\ude00<&>"}`)   // valid pair + HTML chars
	f.Add(`{"isp":"\u2028\u2029"}`)           // JS line separators
	f.Add(`{"net":{"BWMean":1e-7}}`)          // exponent compression
	f.Add(`{"rating":0}`)                     // omitempty boundary
	f.Add(`{"start":"2022-01-02T03:04:05.000000001+01:30"}`)
	f.Fuzz(func(t *testing.T, line string) {
		var rec SessionRecord
		if err := ParseJSON([]byte(line), &rec); err != nil {
			return // rejected input: out of scope
		}
		// Property 1: re-encoding an accepted record must match stdlib
		// byte for byte (parsed JSON can never contain NaN/Inf and parsed
		// RFC 3339 years are 4-digit, so encoding cannot fail).
		want, err := json.Marshal(&rec)
		if err != nil {
			t.Fatalf("stdlib re-encode failed for %q → %+v: %v", line, rec, err)
		}
		got, err := AppendJSON(nil, &rec)
		if err != nil {
			t.Fatalf("AppendJSON failed for %q → %+v: %v", line, rec, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encode mismatch for %q:\n got %s\nwant %s", line, got, want)
		}
		// Property 2: the canonical encoding round-trips through both
		// decoders to the same record.
		var again, std SessionRecord
		if err := ParseJSON(got, &again); err != nil {
			t.Fatalf("re-decode of %s: %v", got, err)
		}
		if !recordsEqual(&again, &rec) {
			t.Fatalf("round-trip drift:\n got %+v\nwant %+v", again, rec)
		}
		if err := json.Unmarshal(got, &std); err != nil {
			t.Fatalf("stdlib rejects our encoding %s: %v", got, err)
		}
		if !recordsEqual(&std, &rec) {
			t.Fatalf("stdlib disagrees on %s:\n got %+v\nwant %+v", got, std, rec)
		}
	})
}

// TestJSONLWriterMatchesOldEncoder pins the writer's framing against the
// json.Encoder implementation it replaced.
func TestJSONLWriterMatchesOldEncoder(t *testing.T) {
	recs := []SessionRecord{sampleRecord(), {}, {Platform: "a<b>&c", Rating: 2, Rated: true}}
	var got, want bytes.Buffer
	w := NewJSONLWriter(&got)
	enc := json.NewEncoder(&want)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("JSONL output changed:\n got %q\nwant %q", got.String(), want.String())
	}
}

// TestReadJSONLStillRejectsOversizedLines keeps the 4 MiB line cap the
// failure tests rely on.
func TestReadJSONLStillRejectsOversizedLines(t *testing.T) {
	line := `{"platform":"` + strings.Repeat("x", 5*1024*1024) + `"}`
	err := ReadJSONL(strings.NewReader(line), func(*SessionRecord) error { return nil })
	if err == nil {
		t.Fatal("oversized line accepted")
	}
}
