// Package telemetry implements the client-side measurement pipeline of
// §3.1: per-session aggregation of 5-second network samples into
// mean/median/P95 statistics, engagement metrics, sparse end-of-call
// feedback sampling, and streaming dataset encoding/decoding (CSV and JSON
// Lines) with the cohort filters the paper applies (enterprise, business
// hours, ≥3 participants, US).
package telemetry

import (
	"fmt"
	"time"

	"usersignals/internal/netsim"
	"usersignals/internal/stats"
)

// NetAggregates are the per-session network statistics the client computes
// when the session ends: mean, median, and 95th percentile of each metric,
// exactly as §3.1 describes.
type NetAggregates struct {
	LatencyMean, LatencyMedian, LatencyP95 float64
	LossMean, LossMedian, LossP95          float64
	JitterMean, JitterMedian, JitterP95    float64
	BWMean, BWMedian, BWP95                float64
}

// Aggregate computes NetAggregates from a sample series.
func Aggregate(s netsim.Series) NetAggregates {
	lat := stats.Summarize(s.Latencies())
	loss := stats.Summarize(s.Losses())
	jit := stats.Summarize(s.Jitters())
	bw := stats.Summarize(s.Bandwidths())
	return NetAggregates{
		LatencyMean: lat.Mean, LatencyMedian: lat.Median, LatencyP95: lat.P95,
		LossMean: loss.Mean, LossMedian: loss.Median, LossP95: loss.P95,
		JitterMean: jit.Mean, JitterMedian: jit.Median, JitterP95: jit.P95,
		BWMean: bw.Mean, BWMedian: bw.Median, BWP95: bw.P95,
	}
}

// Metric selects which session aggregate an analysis reads. The paper
// reports results on session means and notes the same trends hold for P95.
type Metric int

// Session network metrics.
const (
	LatencyMean Metric = iota
	LossMean
	JitterMean
	BandwidthMean
	LatencyP95
	LossP95
	JitterP95
	BandwidthP95
)

// String names the metric for reports.
func (m Metric) String() string {
	switch m {
	case LatencyMean:
		return "latency-mean-ms"
	case LossMean:
		return "loss-mean-pct"
	case JitterMean:
		return "jitter-mean-ms"
	case BandwidthMean:
		return "bandwidth-mean-mbps"
	case LatencyP95:
		return "latency-p95-ms"
	case LossP95:
		return "loss-p95-pct"
	case JitterP95:
		return "jitter-p95-ms"
	case BandwidthP95:
		return "bandwidth-p95-mbps"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Of extracts the metric value from aggregates.
func (m Metric) Of(a NetAggregates) float64 {
	switch m {
	case LatencyMean:
		return a.LatencyMean
	case LossMean:
		return a.LossMean
	case JitterMean:
		return a.JitterMean
	case BandwidthMean:
		return a.BWMean
	case LatencyP95:
		return a.LatencyP95
	case LossP95:
		return a.LossP95
	case JitterP95:
		return a.JitterP95
	case BandwidthP95:
		return a.BWP95
	default:
		return 0
	}
}

// Engagement selects a user-engagement metric (§3.1).
type Engagement int

// Engagement metrics.
const (
	Presence Engagement = iota
	CamOn
	MicOn
)

// String names the engagement metric.
func (e Engagement) String() string {
	switch e {
	case Presence:
		return "presence"
	case CamOn:
		return "cam-on"
	case MicOn:
		return "mic-on"
	default:
		return fmt.Sprintf("engagement(%d)", int(e))
	}
}

// Engagements lists all engagement metrics in display order.
func Engagements() []Engagement { return []Engagement{Presence, CamOn, MicOn} }

// SessionRecord is one participant's session in one call: the unit of the
// §3 analysis.
type SessionRecord struct {
	CallID      uint64    `json:"call_id"`
	UserID      uint64    `json:"user_id"`
	Platform    string    `json:"platform"`
	MeetingSize int       `json:"meeting_size"`
	Start       time.Time `json:"start"`
	DurationSec float64   `json:"duration_sec"`

	Net NetAggregates `json:"net"`

	// Engagement metrics, all in percent. Presence is the session
	// duration as a percentage of the call's median session duration,
	// capped at 100 (§3.1's outlier-robust definition).
	PresencePct float64 `json:"presence_pct"`
	CamOnPct    float64 `json:"cam_on_pct"`
	MicOnPct    float64 `json:"mic_on_pct"`
	LeftEarly   bool    `json:"left_early"`

	// Explicit feedback: present only for the sampled fraction.
	Rated  bool `json:"rated"`
	Rating int  `json:"rating,omitempty"`

	// Cohort attributes used by the paper's filters.
	Country    string `json:"country"`
	Enterprise bool   `json:"enterprise"`

	// ISP is the participant's access provider, enabling §5's
	// cross-source queries ("Teams experience of Starlink users").
	ISP string `json:"isp"`
}

// OnISP filters sessions by access provider.
func OnISP(isp string) Filter {
	return OnISPSpec(isp).Filter()
}

// EngagementOf extracts an engagement value from the record.
func (r *SessionRecord) EngagementOf(e Engagement) float64 {
	switch e {
	case Presence:
		return r.PresencePct
	case CamOn:
		return r.CamOnPct
	case MicOn:
		return r.MicOnPct
	default:
		return 0
	}
}

// Filter is a session predicate.
type Filter func(*SessionRecord) bool

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(r *SessionRecord) bool {
		for _, f := range fs {
			if !f(r) {
				return false
			}
		}
		return true
	}
}

// StudyCohort is the §3.1 dataset filter: enterprise calls during business
// hours (9 AM–8 PM EST) on weekdays with 3+ participants, all in the US.
func StudyCohort() Filter {
	return StudyCohortSpec().Filter()
}

// AllControlBands holds every network metric inside the §3.2 bands: the
// filter for analyses where the network must not be the explanation.
func AllControlBands() Filter {
	return ControlBands(Metric(-1)) // no metric exempted
}

// ControlBands holds every metric except `vary` inside the §3.2 confounder
// bands (latency 0–40 ms, loss 0–0.2%, jitter 0–5 ms, bandwidth 3–4 Mbps),
// leaving the varied metric free. Use it to isolate one dose-response axis.
func ControlBands(vary Metric) Filter {
	return ControlBandsSpec(vary).Filter()
}
