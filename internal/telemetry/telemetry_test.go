package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"usersignals/internal/netsim"
	"usersignals/internal/simrand"
)

func sampleRecord() SessionRecord {
	return SessionRecord{
		CallID: 12345, UserID: 999, Platform: "windows-pc", MeetingSize: 5,
		Start:       time.Date(2022, 3, 2, 15, 30, 0, 0, time.UTC),
		DurationSec: 1800,
		Net: NetAggregates{
			LatencyMean: 42.5, LatencyMedian: 40, LatencyP95: 90,
			LossMean: 0.15, LossMedian: 0.1, LossP95: 0.8,
			JitterMean: 3.2, JitterMedian: 3, JitterP95: 8,
			BWMean: 3.6, BWMedian: 3.5, BWP95: 4.1,
		},
		PresencePct: 95.5, CamOnPct: 60.25, MicOnPct: 80,
		LeftEarly: false, Rated: true, Rating: 4,
		Country: "US", Enterprise: true, ISP: "cablecorp",
	}
}

func TestAggregate(t *testing.T) {
	s := netsim.Series{
		{LatencyMs: 10, LossPct: 0, JitterMs: 1, BandwidthMbps: 3},
		{LatencyMs: 20, LossPct: 1, JitterMs: 2, BandwidthMbps: 4},
		{LatencyMs: 30, LossPct: 2, JitterMs: 3, BandwidthMbps: 5},
	}
	a := Aggregate(s)
	if a.LatencyMean != 20 || a.LatencyMedian != 20 {
		t.Fatalf("latency agg wrong: %+v", a)
	}
	if a.LossMean != 1 || a.BWMean != 4 || a.JitterMean != 2 {
		t.Fatalf("agg wrong: %+v", a)
	}
	if a.LatencyP95 < 29 || a.LatencyP95 > 30 {
		t.Fatalf("p95 = %v", a.LatencyP95)
	}
}

func TestClientClampsInvalidSamples(t *testing.T) {
	var c Client
	c.Record(netsim.Conditions{LatencyMs: -5, LossPct: 150, JitterMs: -1, BandwidthMbps: -2})
	a := c.Aggregates()
	if a.LatencyMean != 0 || a.LossMean != 100 || a.JitterMean != 0 || a.BWMean != 0 {
		t.Fatalf("clamping failed: %+v", a)
	}
	if c.Samples() != 1 {
		t.Fatalf("Samples = %d", c.Samples())
	}
	c.Reset()
	if c.Samples() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMetricAccessors(t *testing.T) {
	a := sampleRecord().Net
	cases := []struct {
		m    Metric
		want float64
	}{
		{LatencyMean, 42.5}, {LossMean, 0.15}, {JitterMean, 3.2}, {BandwidthMean, 3.6},
		{LatencyP95, 90}, {LossP95, 0.8}, {JitterP95, 8}, {BandwidthP95, 4.1},
	}
	for _, c := range cases {
		if got := c.m.Of(a); got != c.want {
			t.Fatalf("%v.Of = %v, want %v", c.m, got, c.want)
		}
		if c.m.String() == "" || strings.HasPrefix(c.m.String(), "metric(") {
			t.Fatalf("missing name for %d", int(c.m))
		}
	}
	if Metric(99).Of(a) != 0 {
		t.Fatal("unknown metric should read 0")
	}
}

func TestEngagementAccessors(t *testing.T) {
	r := sampleRecord()
	if r.EngagementOf(Presence) != 95.5 || r.EngagementOf(CamOn) != 60.25 || r.EngagementOf(MicOn) != 80 {
		t.Fatal("engagement accessors wrong")
	}
	if len(Engagements()) != 3 {
		t.Fatal("Engagements() wrong")
	}
	for _, e := range Engagements() {
		if e.String() == "" {
			t.Fatal("missing engagement name")
		}
	}
	if r.EngagementOf(Engagement(9)) != 0 {
		t.Fatal("unknown engagement should read 0")
	}
}

func TestStudyCohortFilter(t *testing.T) {
	f := StudyCohort()
	ok := sampleRecord()
	if !f(&ok) {
		t.Fatalf("cohort record rejected: %+v", ok)
	}
	for _, mutate := range []func(*SessionRecord){
		func(r *SessionRecord) { r.Enterprise = false },
		func(r *SessionRecord) { r.Country = "CA" },
		func(r *SessionRecord) { r.MeetingSize = 2 },
		func(r *SessionRecord) { r.Start = time.Date(2022, 3, 5, 15, 0, 0, 0, time.UTC) }, // Saturday
		func(r *SessionRecord) { r.Start = time.Date(2022, 3, 2, 5, 0, 0, 0, time.UTC) },  // midnight EST
	} {
		r := sampleRecord()
		mutate(&r)
		if f(&r) {
			t.Fatalf("filter passed a non-cohort record: %+v", r)
		}
	}
}

func TestControlBands(t *testing.T) {
	r := sampleRecord()
	r.Net.LatencyMean = 200 // out of band
	if ControlBands(LossMean)(&r) {
		t.Fatal("latency out of band should reject when varying loss")
	}
	if !ControlBands(LatencyMean)(&r) {
		t.Fatal("varying latency should ignore the latency band")
	}
	r2 := sampleRecord()
	r2.Net.LatencyMean = 30 // bring the held metrics in band
	r2.Net.BWMean = 1
	if ControlBands(LatencyMean)(&r2) {
		t.Fatal("bandwidth out of band should reject")
	}
	if !ControlBands(BandwidthMean)(&r2) {
		t.Fatal("varying bandwidth should ignore the bandwidth band")
	}
}

func TestAndFilter(t *testing.T) {
	yes := Filter(func(*SessionRecord) bool { return true })
	no := Filter(func(*SessionRecord) bool { return false })
	r := sampleRecord()
	if !And(yes, yes)(&r) || And(yes, no)(&r) || !And()(&r) {
		t.Fatal("And combinator wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	want := []SessionRecord{sampleRecord(), sampleRecord()}
	want[1].CallID = 2
	want[1].Rated = false
	want[1].Rating = 0
	want[1].LeftEarly = true
	for i := range want {
		if err := w.Write(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := CollectCSV(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	for i := range want {
		if !got[i].Start.Equal(want[i].Start) {
			t.Fatalf("start mismatch: %v vs %v", got[i].Start, want[i].Start)
		}
		got[i].Start = want[i].Start // normalize monotonic clock for equality
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(lat, loss, pres float64, size uint8, rated bool) bool {
		if math.IsNaN(lat) || math.IsInf(lat, 0) || math.IsNaN(loss) || math.IsInf(loss, 0) ||
			math.IsNaN(pres) || math.IsInf(pres, 0) {
			return true
		}
		r := sampleRecord()
		r.Net.LatencyMean = lat
		r.Net.LossMean = loss
		r.PresencePct = pres
		r.MeetingSize = int(size)
		r.Rated = rated
		var buf bytes.Buffer
		w := NewCSVWriter(&buf)
		if w.Write(&r) != nil || w.Flush() != nil {
			return false
		}
		got, err := CollectCSV(&buf, nil)
		if err != nil || len(got) != 1 {
			return false
		}
		// 'g' format with 8 significant digits: compare with relative tolerance.
		relEq := func(a, b float64) bool {
			if a == b {
				return true
			}
			return math.Abs(a-b) <= 1e-6*(math.Abs(a)+math.Abs(b))
		}
		return relEq(got[0].Net.LatencyMean, lat) && relEq(got[0].Net.LossMean, loss) &&
			relEq(got[0].PresencePct, pres) && got[0].MeetingSize == int(size) && got[0].Rated == rated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVErrors(t *testing.T) {
	// Wrong header width.
	if err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n"), func(*SessionRecord) error { return nil }); err == nil {
		t.Fatal("bad header accepted")
	}
	// Empty input is fine.
	if err := ReadCSV(strings.NewReader(""), func(*SessionRecord) error { return nil }); err != nil {
		t.Fatalf("empty input: %v", err)
	}
	// Corrupt numeric field.
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	r := sampleRecord()
	if err := w.Write(&r); err != nil {
		t.Fatal(err)
	}
	_ = w.Flush()
	corrupted := strings.Replace(buf.String(), "42.5", "forty-two", 1)
	if err := ReadCSV(strings.NewReader(corrupted), func(*SessionRecord) error { return nil }); err == nil {
		t.Fatal("corrupt field accepted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	want := sampleRecord()
	if err := w.Write(&want); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []SessionRecord
	if err := ReadJSONL(&buf, func(r *SessionRecord) error {
		got = append(got, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d", len(got))
	}
	if !got[0].Start.Equal(want.Start) {
		t.Fatal("start mismatch")
	}
	got[0].Start = want.Start
	if got[0] != want {
		t.Fatalf("mismatch:\n got %+v\nwant %+v", got[0], want)
	}
}

func TestJSONLSkipsBlankLinesAndReportsErrors(t *testing.T) {
	input := "\n{\"call_id\":1,\"user_id\":2,\"platform\":\"x\",\"meeting_size\":3,\"start\":\"2022-01-01T00:00:00Z\",\"duration_sec\":1,\"net\":{},\"presence_pct\":1,\"cam_on_pct\":1,\"mic_on_pct\":1,\"left_early\":false,\"rated\":false,\"country\":\"US\",\"enterprise\":true}\n"
	count := 0
	if err := ReadJSONL(strings.NewReader(input), func(*SessionRecord) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	if err := ReadJSONL(strings.NewReader("{broken\n"), func(*SessionRecord) error { return nil }); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestSurveySampler(t *testing.T) {
	r := simrand.New(7, 11)
	s := SurveySampler{Rate: 0.01}
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if s.ShouldSurvey(r) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.007 || frac > 0.013 {
		t.Fatalf("survey rate %v, want ~0.01", frac)
	}
	// Default rate and clamping.
	d := SurveySampler{}
	hits = 0
	for i := 0; i < n; i++ {
		if d.ShouldSurvey(r) {
			hits++
		}
	}
	frac = float64(hits) / n
	if frac < 0.003 || frac > 0.008 {
		t.Fatalf("default survey rate %v, want ~0.005", frac)
	}
	always := SurveySampler{Rate: 5}
	if !always.ShouldSurvey(r) {
		t.Fatal("rate > 1 should clamp to always")
	}
}

func TestMOS(t *testing.T) {
	if _, ok := MOS(nil); ok {
		t.Fatal("empty MOS should report !ok")
	}
	m, ok := MOS([]int{5, 4, 3})
	if !ok || m != 4 {
		t.Fatalf("MOS = %v %v", m, ok)
	}
}
