// Package newswire is a synthetic, dated, keyword-searchable news corpus:
// the stand-in for the paper's "discover relevant news articles by
// searching online for the top word-cloud unigrams with the date". It is
// generated from the same ISP timeline as the forum corpus, with the
// crucial deliberate gap the paper found: unreported outages have no
// coverage, so annotation honestly fails for them.
package newswire

import (
	"fmt"
	"sort"

	"usersignals/internal/leo"
	"usersignals/internal/nlp"
	"usersignals/internal/timeline"
)

// Article is one news item.
type Article struct {
	Day      timeline.Day
	Source   string
	Headline string
	Body     string
}

// Text returns the searchable text.
func (a Article) Text() string { return a.Headline + ". " + a.Body }

// Index is a date-ordered, token-indexed article collection.
type Index struct {
	articles []Article
	tokens   []map[string]bool // stemmed token set per article
}

// Build generates coverage from the timeline: launches, reported outages,
// and milestones. Unreported outages produce nothing.
func Build(launches []leo.Launch, outages []leo.Outage, milestones []leo.Milestone) *Index {
	var arts []Article
	for _, l := range launches {
		arts = append(arts, Article{
			Day:      l.Day,
			Source:   "space-desk",
			Headline: fmt.Sprintf("Operator launches %d more satellites", l.Sats),
			Body:     "The latest batch lifted off this morning, expanding the broadband constellation's coverage footprint.",
		})
	}
	for _, o := range outages {
		if !o.Reported {
			continue
		}
		arts = append(arts, Article{
			Day:      o.Day,
			Source:   "tech-wire",
			Headline: "Satellite internet service suffers global outage",
			Body: fmt.Sprintf("Users across %d countries reported their service down for about %.0f hours before connectivity was restored. The company acknowledged the outage.",
				o.Countries, o.Hours),
		})
	}
	for _, m := range milestones {
		var headline, body string
		switch m.Kind {
		case leo.MilestonePreorder:
			headline = "Satellite broadband opens pre-orders in US, Canada and UK"
			body = "Customers can now reserve the service with a deposit as the operator begins accepting pre-orders."
		case leo.MilestoneDelay:
			headline = "Satellite internet disappoints pre-order customers with delivery delays"
			body = "An email to waiting customers pushed delivery estimates back, citing chip shortages and production constraints on the delay."
		case leo.MilestoneFeatureTweet:
			headline = "CEO announces mobile roaming for satellite internet"
			body = "The roaming capability lets subscribers use their terminals away from their registered address, the executive said."
		case leo.MilestoneFeatureOfficial:
			headline = "Satellite internet adds official portability option"
			body = "The operator formally notified subscribers that roaming, or portability, is now a supported service option."
		default:
			continue // leaks get no coverage — that's the point
		}
		arts = append(arts, Article{Day: m.Day, Source: "tech-wire", Headline: headline, Body: body})
	}
	sort.Slice(arts, func(i, j int) bool { return arts[i].Day < arts[j].Day })
	ix := &Index{articles: arts, tokens: make([]map[string]bool, len(arts))}
	for i, a := range arts {
		set := map[string]bool{}
		for _, tok := range nlp.ContentTokens(a.Text()) {
			set[nlp.Stem(tok)] = true
		}
		ix.tokens[i] = set
	}
	return ix
}

// Len returns the article count.
func (ix *Index) Len() int { return len(ix.articles) }

// Articles returns all articles (shared slice; do not modify).
func (ix *Index) Articles() []Article { return ix.articles }

// Search returns articles within ±windowDays of day matching at least one
// of the keywords (stem-matched), best-match first (more keyword hits, then
// closer in time).
func (ix *Index) Search(keywords []string, day timeline.Day, windowDays int) []Article {
	stems := make([]string, 0, len(keywords))
	for _, k := range keywords {
		for _, tok := range nlp.Tokenize(k) {
			stems = append(stems, nlp.Stem(tok))
		}
	}
	type hit struct {
		article Article
		score   int
		dist    int
	}
	var hits []hit
	for i, a := range ix.articles {
		dist := int(a.Day - day)
		if dist < 0 {
			dist = -dist
		}
		if dist > windowDays {
			continue
		}
		score := 0
		for _, s := range stems {
			if ix.tokens[i][s] {
				score++
			}
		}
		if score > 0 {
			hits = append(hits, hit{article: a, score: score, dist: dist})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].score != hits[j].score {
			return hits[i].score > hits[j].score
		}
		if hits[i].dist != hits[j].dist {
			return hits[i].dist < hits[j].dist
		}
		return hits[i].article.Day < hits[j].article.Day
	})
	out := make([]Article, len(hits))
	for i, h := range hits {
		out[i] = h.article
	}
	return out
}
