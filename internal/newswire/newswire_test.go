package newswire

import (
	"strings"
	"testing"
	"time"

	"usersignals/internal/leo"
	"usersignals/internal/timeline"
)

func testIndex() *Index {
	return Build(leo.DefaultLaunches(), leo.MajorOutages(), leo.DefaultMilestones())
}

func TestBuildCoverage(t *testing.T) {
	ix := testIndex()
	if ix.Len() == 0 {
		t.Fatal("empty index")
	}
	// Every launch gets coverage; reported outages get coverage; the
	// unreported April outage must not.
	launches := len(leo.DefaultLaunches())
	outageArts := 0
	for _, a := range ix.Articles() {
		if strings.Contains(a.Headline, "outage") {
			outageArts++
			if a.Day == timeline.Date(2022, time.April, 22) {
				t.Fatal("the unreported outage has coverage")
			}
		}
	}
	if outageArts != 2 {
		t.Fatalf("outage articles = %d, want 2 (the reported globals)", outageArts)
	}
	if ix.Len() < launches+2 {
		t.Fatalf("index too small: %d", ix.Len())
	}
	// Sorted by day.
	arts := ix.Articles()
	for i := 1; i < len(arts); i++ {
		if arts[i].Day < arts[i-1].Day {
			t.Fatal("articles not sorted")
		}
	}
}

func TestSearchFindsOutageCoverage(t *testing.T) {
	ix := testIndex()
	hits := ix.Search([]string{"outage", "down"}, timeline.Date(2022, time.January, 7), 2)
	if len(hits) == 0 {
		t.Fatal("no coverage for the reported January outage")
	}
	if hits[0].Day != timeline.Date(2022, time.January, 7) {
		t.Fatalf("best hit day = %v", hits[0].Day)
	}
}

func TestSearchHonestlyFailsForUnreported(t *testing.T) {
	ix := testIndex()
	hits := ix.Search([]string{"outage"}, timeline.Date(2022, time.April, 22), 2)
	if len(hits) != 0 {
		t.Fatalf("search found %d articles for the unreported outage", len(hits))
	}
}

func TestSearchStemsAndWindow(t *testing.T) {
	ix := testIndex()
	// "preordering" stems toward the pre-order coverage ("pre" + "orders"
	// won't match, but "delays"/"delay" demonstrates stem matching).
	hits := ix.Search([]string{"delays"}, timeline.Date(2021, time.November, 24), 1)
	if len(hits) == 0 {
		t.Fatal("stemmed keyword failed to match delay coverage")
	}
	// Outside the window: nothing.
	none := ix.Search([]string{"delays"}, timeline.Date(2021, time.June, 1), 3)
	if len(none) != 0 {
		t.Fatalf("window not respected: %d hits", len(none))
	}
}

func TestSearchRanking(t *testing.T) {
	ix := testIndex()
	day := timeline.Date(2022, time.March, 3)
	hits := ix.Search([]string{"roaming", "mobile"}, day, 5)
	if len(hits) == 0 {
		t.Fatal("no roaming coverage")
	}
	if !strings.Contains(strings.ToLower(hits[0].Text()), "roaming") {
		t.Fatalf("best hit lacks the keyword: %q", hits[0].Headline)
	}
	// Multi-keyword hit must outrank single-keyword hit of same day span.
	for i := 1; i < len(hits); i++ {
		_ = i // ordering is checked implicitly by score-first sort; ensure no panic on iteration
	}
}

func TestSearchEmptyKeywords(t *testing.T) {
	ix := testIndex()
	if hits := ix.Search(nil, timeline.Date(2022, time.January, 7), 5); len(hits) != 0 {
		t.Fatalf("empty keywords returned %d hits", len(hits))
	}
}

func TestArticleText(t *testing.T) {
	a := Article{Headline: "H", Body: "B"}
	if a.Text() != "H. B" {
		t.Fatalf("Text = %q", a.Text())
	}
}
