package conference

import (
	"testing"

	"usersignals/internal/netsim"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

func generate(t *testing.T, opts Options) []telemetry.SessionRecord {
	t.Helper()
	g, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestGenerateBasics(t *testing.T) {
	recs := generate(t, Defaults(1, 200))
	if len(recs) < 600 { // >= 3 participants per call on average
		t.Fatalf("got %d records from 200 calls", len(recs))
	}
	calls := map[uint64]int{}
	for i := range recs {
		r := &recs[i]
		calls[r.CallID]++
		if r.PresencePct < 0 || r.PresencePct > 100 {
			t.Fatalf("presence out of range: %+v", r)
		}
		if r.MicOnPct < 0 || r.MicOnPct > 100 || r.CamOnPct < 0 || r.CamOnPct > 100 {
			t.Fatalf("engagement out of range: %+v", r)
		}
		if r.MeetingSize < 2 {
			t.Fatalf("meeting size %d", r.MeetingSize)
		}
		if r.DurationSec < 0 || r.DurationSec > 3*3600 {
			t.Fatalf("odd duration %v", r.DurationSec)
		}
		if r.Rated && (r.Rating < 1 || r.Rating > 5) {
			t.Fatalf("bad rating %+v", r)
		}
		if !r.Rated && r.Rating != 0 {
			t.Fatalf("unrated record has rating %+v", r)
		}
		if !timeline.TeamsWindow.Contains(timeline.DayOf(r.Start)) {
			t.Fatalf("start %v outside window", r.Start)
		}
	}
	if len(calls) != 200 {
		t.Fatalf("expected 200 distinct calls, got %d", len(calls))
	}
	for id, n := range calls {
		if n < 2 {
			t.Fatalf("call %d has %d participants", id, n)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := generate(t, Defaults(42, 30))
	b := generate(t, Defaults(42, 30))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c := generate(t, Defaults(43, 30))
	same := 0
	for i := range c {
		if i < len(a) && c[i] == a[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSurveySparsity(t *testing.T) {
	opts := Defaults(7, 400)
	recs := generate(t, opts)
	rated := 0
	for i := range recs {
		if recs[i].Rated {
			rated++
		}
	}
	frac := float64(rated) / float64(len(recs))
	if frac > 0.03 {
		t.Fatalf("survey fraction %v too high (paper: 0.1-1%%)", frac)
	}
}

func TestCohortImpurities(t *testing.T) {
	recs := generate(t, Defaults(11, 300))
	var foreign, consumer int
	for i := range recs {
		if recs[i].Country != "US" {
			foreign++
		}
		if !recs[i].Enterprise {
			consumer++
		}
	}
	if foreign == 0 || consumer == 0 {
		t.Fatal("expected some non-US and non-enterprise records to exercise filters")
	}
	// And the cohort filter keeps a solid majority.
	kept := 0
	cohort := telemetry.StudyCohort()
	for i := range recs {
		if cohort(&recs[i]) {
			kept++
		}
	}
	if frac := float64(kept) / float64(len(recs)); frac < 0.4 || frac > 0.95 {
		t.Fatalf("cohort keeps %v of records; population mix implausible", frac)
	}
}

func TestPresenceMedianDefinition(t *testing.T) {
	recs := generate(t, Defaults(3, 150))
	// Group by call; at least one participant per call must be at 100
	// (whoever matches or exceeds the median duration).
	byCall := map[uint64][]float64{}
	for i := range recs {
		byCall[recs[i].CallID] = append(byCall[recs[i].CallID], recs[i].PresencePct)
	}
	for id, ps := range byCall {
		if stats.Max(ps) < 99.999 {
			t.Fatalf("call %d has max presence %v; median-based cap broken", id, stats.Max(ps))
		}
	}
}

func TestSweepSourceProducesControlledSessions(t *testing.T) {
	sw := netsim.ControlBands()
	sw.LatencyMs = [2]float64{0, 300}
	opts := Defaults(5, 120)
	opts.Paths = &sw
	recs := generate(t, opts)
	inBand := 0
	for i := range recs {
		a := recs[i].Net
		if a.LossMean <= 0.5 && a.JitterMean <= 6 && a.BWMean >= 2.5 && a.BWMean <= 4.5 {
			inBand++
		}
	}
	if frac := float64(inBand) / float64(len(recs)); frac < 0.9 {
		t.Fatalf("only %v of sweep sessions respect control bands", frac)
	}
}

func TestLatencySweepLowersEngagementInDataset(t *testing.T) {
	// End-to-end sanity: in a latency sweep the high-latency sessions show
	// lower mic-on than the low-latency ones.
	sw := netsim.ControlBands()
	sw.LatencyMs = [2]float64{0, 300}
	opts := Defaults(9, 400)
	opts.Paths = &sw
	recs := generate(t, opts)
	var lowAcc, highAcc stats.Online
	for i := range recs {
		r := &recs[i]
		switch {
		case r.Net.LatencyMean < 60:
			lowAcc.Add(r.MicOnPct)
		case r.Net.LatencyMean > 220:
			highAcc.Add(r.MicOnPct)
		}
	}
	if lowAcc.N() < 30 || highAcc.N() < 30 {
		t.Fatalf("sweep coverage too thin: %d low, %d high", lowAcc.N(), highAcc.N())
	}
	if highAcc.Mean() >= lowAcc.Mean()*0.95 {
		t.Fatalf("mic-on at high latency %v not below low latency %v", highAcc.Mean(), lowAcc.Mean())
	}
}

func TestAggregateInvariants(t *testing.T) {
	// Per-session aggregates must satisfy P95 >= median >= 0 and similar
	// order relations for every metric, on every record the generator
	// emits.
	recs := generate(t, Defaults(21, 150))
	for i := range recs {
		a := recs[i].Net
		type triple struct {
			name              string
			mean, median, p95 float64
		}
		for _, tr := range []triple{
			{"latency", a.LatencyMean, a.LatencyMedian, a.LatencyP95},
			{"loss", a.LossMean, a.LossMedian, a.LossP95},
			{"jitter", a.JitterMean, a.JitterMedian, a.JitterP95},
			{"bandwidth", a.BWMean, a.BWMedian, a.BWP95},
		} {
			if tr.median < 0 || tr.mean < 0 {
				t.Fatalf("negative %s aggregate: %+v", tr.name, a)
			}
			if tr.p95+1e-9 < tr.median {
				t.Fatalf("%s P95 %v below median %v", tr.name, tr.p95, tr.median)
			}
		}
		if recs[i].Net.LossMean > 100 {
			t.Fatalf("loss above 100%%: %+v", a)
		}
	}
}

func TestISPAssignment(t *testing.T) {
	recs := generate(t, Defaults(22, 400))
	isps := map[string]int{}
	for i := range recs {
		if recs[i].ISP == "" || recs[i].ISP == "unknown" {
			t.Fatalf("record without ISP: %+v", recs[i])
		}
		isps[recs[i].ISP]++
	}
	if len(isps) < 4 {
		t.Fatalf("only %d ISPs in the mixture: %v", len(isps), isps)
	}
	if isps["starlink"] == 0 {
		t.Fatal("no satellite-ISP sessions (the §5 query target)")
	}
	// Satellite sessions should show the jittery profile.
	var satJit, fiberJit stats.Online
	for i := range recs {
		switch recs[i].ISP {
		case "starlink":
			satJit.Add(recs[i].Net.JitterMean)
		case "metrofiber":
			fiberJit.Add(recs[i].Net.JitterMean)
		}
	}
	if satJit.Mean() <= fiberJit.Mean() {
		t.Fatalf("satellite jitter %v not above fiber %v", satJit.Mean(), fiberJit.Mean())
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{Calls: -1}); err == nil {
		t.Fatal("negative calls accepted")
	}
	// Zero-value options (besides Calls) get defaults.
	g, err := New(Options{Calls: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := g.GenerateAll()
	if err != nil || len(recs) == 0 {
		t.Fatalf("defaulted options broken: %v, %d recs", err, len(recs))
	}
}

func TestSortByCall(t *testing.T) {
	recs := []telemetry.SessionRecord{
		{CallID: 2, UserID: 1}, {CallID: 1, UserID: 9}, {CallID: 1, UserID: 3},
	}
	SortByCall(recs)
	if recs[0].CallID != 1 || recs[0].UserID != 3 || recs[2].CallID != 2 {
		t.Fatalf("sorted = %+v", recs)
	}
}

func TestEmitErrorAborts(t *testing.T) {
	g, err := New(Defaults(2, 50))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	sentinel := errSentinel{}
	err = g.Generate(func(*telemetry.SessionRecord) error {
		count++
		if count == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	if count != 3 {
		t.Fatalf("generation continued after error: %d", count)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }
