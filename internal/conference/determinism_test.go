package conference

import (
	"bytes"
	"runtime"
	"testing"

	"usersignals/internal/netsim"
	"usersignals/internal/telemetry"
)

// generateBytes runs a full generation at the given worker count and
// returns the emitted stream as JSONL bytes, preserving emission order.
func generateBytes(t *testing.T, workers int) []byte {
	t.Helper()
	sw := netsim.ControlBands()
	sw.LatencyMs = [2]float64{0, 300}
	opts := Defaults(12345, 150)
	opts.Paths = &sw
	opts.Workers = workers
	g, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := telemetry.NewJSONLWriter(&buf)
	if err := g.Generate(w.Write); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGenerateParallelByteIdentical is the determinism golden test: the
// emitted record stream must be byte-for-byte identical at any worker
// count, so parallelism can never silently change figure shapes.
func TestGenerateParallelByteIdentical(t *testing.T) {
	serial := generateBytes(t, 1)
	if len(serial) == 0 {
		t.Fatal("serial run emitted nothing")
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		if got := generateBytes(t, workers); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d output differs from serial (%d vs %d bytes)", workers, len(got), len(serial))
		}
	}
}

// TestGenerateParallelUserPoolFallsBackSerial checks the longitudinal pool
// still works (serially) when workers are requested: pool state must evolve
// chronologically, so Workers is ignored rather than corrupting output.
func TestGenerateParallelUserPoolFallsBackSerial(t *testing.T) {
	gen := func(workers int) []telemetry.SessionRecord {
		opts := Defaults(777, 60)
		opts.UserPool = 30
		opts.Workers = workers
		g, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := g.GenerateAll()
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := gen(1), gen(8)
	if len(a) != len(b) {
		t.Fatalf("pool runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pool record %d differs between worker counts", i)
		}
	}
}
