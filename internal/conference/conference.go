// Package conference generates synthetic conferencing calls: the stand-in
// for the paper's MS Teams workload. Each call has participants with their
// own network paths, platforms, and behaviour agents; the generator runs
// the causal chain network → delivered media quality → user actions window
// by window and emits one telemetry.SessionRecord per participant, with
// MOS surveys sampled at the paper's sparse rate.
//
// The generator is deterministic for a given Options.Seed and streams
// records through a callback so dataset size is bounded only by disk.
package conference

import (
	"fmt"
	"math"
	"sort"
	"time"

	"usersignals/internal/behavior"
	"usersignals/internal/media"
	"usersignals/internal/netsim"
	"usersignals/internal/parallel"
	"usersignals/internal/simrand"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// Options configures a call-generation run. The zero value is not useful;
// start from Defaults().
type Options struct {
	Seed  uint64
	Calls int

	// Workers is the number of goroutines calls are sharded across.
	// Zero or negative means one per CPU. Every call derives its RNG
	// substream from the seed and its own ID, and parallel results are
	// merged back in call-ID order, so output is byte-identical to a
	// serial run at any worker count. Ignored (forced serial) when
	// UserPool > 0, because longitudinal state must evolve forward in
	// time.
	Workers int

	// Window is the span of days calls are scheduled in.
	Window timeline.Range

	// Paths supplies per-participant network paths. Defaults to the
	// realistic enterprise mixture; experiments substitute a netsim.Sweep.
	Paths netsim.PathSource

	// Mitigation is the media-stack safeguard configuration (the loss
	// ablation flips these off).
	Mitigation media.Mitigation

	// SurveyRate is the fraction of sessions prompted for a rating
	// (default telemetry.DefaultSurveyRate).
	SurveyRate float64

	// MeanDurationMin is the median scheduled call length in minutes
	// (default 25).
	MeanDurationMin float64

	// MeetingSizeMax bounds the Zipf-distributed meeting size (default
	// 24; sizes start at 2).
	MeetingSizeMax int

	// ConditioningWeight is passed to agents (§6 ablation). Negative
	// values select the agent default.
	ConditioningWeight float64

	// Population impurities, so cohort filters have something to filter:
	// fraction of non-US participants, consumer (non-enterprise) calls,
	// and calls scheduled outside business hours.
	ForeignFrac  float64
	ConsumerFrac float64
	OffHoursFrac float64

	// DegradedWindow, when non-empty with DegradedPaths set, makes calls
	// starting inside the window draw their paths from DegradedPaths
	// instead of Paths: an injected network incident, used to evaluate
	// engagement-based incident detection.
	DegradedWindow timeline.Range
	DegradedPaths  netsim.PathSource

	// UserPool, when positive, draws participants from a persistent pool
	// of that many users instead of minting a fresh identity per session.
	// Pool users keep a longitudinal quality expectation (an EWMA of the
	// utility they experienced), so §6's long-term conditioning becomes a
	// mechanism: a user recently exposed to bad calls tolerates the next
	// bad call better. Zero (the default) keeps sessions independent.
	UserPool int
	// UserConditioningAlpha is the per-session EWMA rate of a pool user's
	// expectation (default 0.3).
	UserConditioningAlpha float64
}

// Defaults returns the standard configuration for n calls.
func Defaults(seed uint64, n int) Options {
	return Options{
		Seed:               seed,
		Calls:              n,
		Window:             timeline.TeamsWindow,
		Paths:              netsim.DefaultMixture(),
		Mitigation:         media.DefaultMitigation(),
		SurveyRate:         telemetry.DefaultSurveyRate,
		MeanDurationMin:    25,
		MeetingSizeMax:     24,
		ConditioningWeight: -1,
		ForeignFrac:        0.08,
		ConsumerFrac:       0.10,
		OffHoursFrac:       0.12,
	}
}

func (o Options) withDefaults() (Options, error) {
	if o.Calls < 0 {
		return o, fmt.Errorf("conference: negative call count %d", o.Calls)
	}
	if o.Paths == nil {
		o.Paths = netsim.DefaultMixture()
	}
	if o.Window.Len() <= 0 {
		o.Window = timeline.TeamsWindow
	}
	if o.SurveyRate <= 0 {
		o.SurveyRate = telemetry.DefaultSurveyRate
	}
	if o.MeanDurationMin <= 0 {
		o.MeanDurationMin = 25
	}
	if o.MeetingSizeMax < 2 {
		o.MeetingSizeMax = 24
	}
	return o, nil
}

// Generator produces calls. Create with New.
type Generator struct {
	opts Options
	root *simrand.Stream
	zipf *simrand.Zipfian

	// Longitudinal user pool (nil unless Options.UserPool > 0).
	userExpectation []float64 // NaN until the user's first session
}

// New validates options and returns a generator.
func New(opts Options) (*Generator, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	g := &Generator{
		opts: opts,
		root: simrand.Root(opts.Seed).Derive("conference"),
		// Meeting sizes: Zipf over 2..MeetingSizeMax+1 biased to small
		// meetings, matching enterprise calendars.
		zipf: simrand.NewZipf(opts.MeetingSizeMax-1, 1.3),
	}
	if opts.UserPool > 0 {
		g.userExpectation = make([]float64, opts.UserPool)
		for i := range g.userExpectation {
			g.userExpectation[i] = math.NaN()
		}
	}
	return g, nil
}

// Generate runs all calls, invoking emit once per participant session.
// The record passed to emit is reused; copy it if it must be retained.
// A non-nil error from emit aborts generation. emit is always invoked from
// a single goroutine.
//
// With a user pool, calls run serially in chronological order
// (longitudinal state must evolve forward in time); otherwise they are
// sharded across Options.Workers goroutines and merged back in call-ID
// order, which makes the emitted stream byte-identical to a serial run.
func (g *Generator) Generate(emit func(*telemetry.SessionRecord) error) error {
	if g.opts.UserPool > 0 {
		// Each call's start time is a pure function of its stream, so
		// peeking it here and re-drawing it in generateCall agree.
		order := make([]uint64, g.opts.Calls)
		for i := range order {
			order[i] = uint64(i)
		}
		starts := make([]time.Time, g.opts.Calls)
		for i := range order {
			starts[i] = g.callStart(g.root.Derive("call/%d", uint64(i)).RNG())
		}
		sort.SliceStable(order, func(a, b int) bool {
			return starts[order[a]].Before(starts[order[b]])
		})
		for _, call := range order {
			if err := g.generateCall(call, emit); err != nil {
				return err
			}
		}
		return nil
	}

	workers := parallel.Workers(g.opts.Workers)
	if workers == 1 {
		for call := 0; call < g.opts.Calls; call++ {
			if err := g.generateCall(uint64(call), emit); err != nil {
				return err
			}
		}
		return nil
	}
	// Shard call IDs across the pool: each call's RNG derives from
	// (seed, "call/<id>") exactly as in the serial path, so per-call
	// output does not depend on which worker ran it; the ordered merge
	// restores the canonical call-ID emission order.
	return parallel.OrderedStream(workers, g.opts.Calls,
		func(call int) ([]telemetry.SessionRecord, error) {
			var recs []telemetry.SessionRecord
			err := g.generateCall(uint64(call), func(r *telemetry.SessionRecord) error {
				recs = append(recs, *r)
				return nil
			})
			return recs, err
		},
		func(_ int, recs []telemetry.SessionRecord) error {
			for i := range recs {
				if err := emit(&recs[i]); err != nil {
					return err
				}
			}
			return nil
		})
}

// participantState holds one participant through a call.
type participantState struct {
	userID   uint64
	userIdx  int // pool index, -1 outside pool mode
	platform behavior.Platform
	path     *netsim.Path
	client   telemetry.Client
	agent    *behavior.Agent
	rng      *simrand.RNG
	inCall   bool
	windows  int
}

// poolUserIDBase offsets pool user IDs so they are recognizably stable.
const poolUserIDBase = 1 << 32

func (g *Generator) generateCall(callID uint64, emit func(*telemetry.SessionRecord) error) error {
	callStream := g.root.Derive("call/%d", callID)
	rng := callStream.RNG()

	start := g.callStart(rng)
	paths := g.opts.Paths
	if g.opts.DegradedPaths != nil && g.opts.DegradedWindow.Len() > 0 &&
		g.opts.DegradedWindow.Contains(timeline.DayOf(start)) {
		paths = g.opts.DegradedPaths
	}
	enterprise := !rng.Bool(g.opts.ConsumerFrac)
	size := 2 + g.zipf.Draw(rng) // 3..MeetingSizeMax+1; Zipf rank 1 → size 3
	if rng.Bool(0.07) {
		size = 2 // a minority of 1:1 calls, filtered out by the cohort
	}
	scheduledWindows := g.scheduledWindows(rng)

	mix := behavior.EnterpriseMix()
	platforms := behavior.Platforms()

	parts := make([]*participantState, size)
	for i := range parts {
		ps := callStream.Derive("participant/%d", i)
		prng := ps.RNG()
		platform := simrand.PickWeighted(prng, platforms, mix)
		opts := behavior.AgentOptions{
			MeetingSize: size,
			// Conditioned expectation varies across users.
			ExpectationUtility: prng.TruncNormal(0.8, 0.1, 0.4, 0.98),
			// Negative means "agent default"; zero is the §6 ablation
			// (conditioning off) and is passed through unchanged.
			ConditioningWeight: g.opts.ConditioningWeight,
		}
		userID := prng.Uint64()
		userIdx := -1
		if g.opts.UserPool > 0 {
			userIdx = prng.Intn(g.opts.UserPool)
			userID = poolUserIDBase + uint64(userIdx)
			// A pool user carries their longitudinal expectation into
			// the session (first session keeps the drawn prior).
			if exp := g.userExpectation[userIdx]; !math.IsNaN(exp) {
				opts.ExpectationUtility = exp
			}
		}
		parts[i] = &participantState{
			userID:   userID,
			userIdx:  userIdx,
			platform: platform,
			path:     paths.NewPath(ps.Derive("path").RNG()),
			agent:    behavior.NewAgent(behavior.ProfileFor(platform), opts, ps.Derive("agent").RNG()),
			rng:      prng,
			inCall:   true,
		}
	}

	// Run the call window by window.
	for w := 0; w < scheduledWindows; w++ {
		for _, p := range parts {
			if !p.inCall {
				continue
			}
			cond := p.path.Next()
			p.client.Record(cond)
			q := media.Evaluate(cond.LatencyMs, cond.LossPct, cond.JitterMs, cond.BandwidthMbps, g.opts.Mitigation)
			p.agent.Step(q)
			if !p.agent.InCall() {
				p.inCall = false
				continue
			}
			p.windows++
		}
	}

	// Presence baseline: median session duration across participants
	// (robust to the colleague who lingers — §3.1).
	durations := make([]float64, len(parts))
	for i, p := range parts {
		durations[i] = float64(p.windows)
	}
	medianDur := stats.Median(durations)

	surveyor := telemetry.SurveySampler{Rate: g.opts.SurveyRate}
	var rec telemetry.SessionRecord
	for _, p := range parts {
		summary := p.agent.Summary()
		if p.userIdx >= 0 && summary.WindowsAttended > 0 {
			// Longitudinal conditioning: fold the experienced utility
			// into the pool user's expectation.
			alpha := g.opts.UserConditioningAlpha
			if alpha <= 0 || alpha > 1 {
				alpha = 0.3
			}
			prev := g.userExpectation[p.userIdx]
			if math.IsNaN(prev) {
				g.userExpectation[p.userIdx] = summary.MeanUtility
			} else {
				g.userExpectation[p.userIdx] = alpha*summary.MeanUtility + (1-alpha)*prev
			}
		}
		presence := 100.0
		if medianDur > 0 {
			presence = math.Min(100, 100*float64(p.windows)/medianDur)
		} else if p.windows == 0 {
			presence = 0
		}
		country := "US"
		if p.rng.Bool(g.opts.ForeignFrac) {
			country = simrand.Pick(p.rng, []string{"CA", "GB", "IN", "DE", "AU"})
		}
		rec = telemetry.SessionRecord{
			CallID:      callID,
			UserID:      p.userID,
			Platform:    p.platform.String(),
			MeetingSize: size,
			Start:       start,
			DurationSec: float64(p.windows) * netsim.SampleInterval.Seconds(),
			Net:         p.client.Aggregates(),
			PresencePct: presence,
			CamOnPct:    100 * summary.CamOnFrac,
			MicOnPct:    100 * summary.MicOnFrac,
			LeftEarly:   summary.LeftEarly,
			Country:     country,
			Enterprise:  enterprise,
			ISP:         ispForLabel(p.path.Config().Label),
		}
		if surveyor.ShouldSurvey(p.rng) {
			rec.Rated = true
			rec.Rating = p.agent.Rate()
		}
		if err := emit(&rec); err != nil {
			return err
		}
	}
	return nil
}

// callStart places a call in the window, mostly on weekday business hours.
func (g *Generator) callStart(r *simrand.RNG) time.Time {
	for attempt := 0; attempt < 64; attempt++ {
		day := g.opts.Window.From + timeline.Day(r.Intn(g.opts.Window.Len()))
		offHours := r.Bool(g.opts.OffHoursFrac)
		var hourUTC int
		if offHours {
			hourUTC = r.Intn(24)
		} else {
			// 9 AM–7 PM EST = 14–24 UTC; pick start hour so the call fits.
			hourUTC = 14 + r.Intn(10)
		}
		t := day.Time().Add(time.Duration(hourUTC)*time.Hour + time.Duration(r.Intn(60))*time.Minute)
		if offHours || timeline.ESTBusinessHours.Contains(t) {
			return t
		}
	}
	// Unreachable in practice; fall back to window start.
	return g.opts.Window.From.Time()
}

// scheduledWindows draws the scheduled call length in 5-second windows.
func (g *Generator) scheduledWindows(r *simrand.RNG) int {
	minutes := r.LogNormalMeanMedian(g.opts.MeanDurationMin, 1.6)
	if minutes < 5 {
		minutes = 5
	}
	if minutes > 120 {
		minutes = 120
	}
	return int(minutes * 60 / netsim.SampleInterval.Seconds())
}

// GenerateAll collects every record in memory: convenience for tests and
// moderate experiment sizes.
func (g *Generator) GenerateAll() ([]telemetry.SessionRecord, error) {
	var out []telemetry.SessionRecord
	err := g.Generate(func(r *telemetry.SessionRecord) error {
		out = append(out, *r)
		return nil
	})
	return out, err
}

// ispForLabel maps an access-population label to the (synthetic) provider
// name recorded in telemetry, the key §5's cross-source query filters on.
func ispForLabel(label string) string {
	switch label {
	case "fiber":
		return "metrofiber"
	case "cable", "wifi-congested":
		return "cablecorp"
	case "dsl":
		return "dslnet"
	case "lte":
		return "cellone"
	case "long-haul":
		return "globalwan"
	case "leo-satellite":
		return "starlink"
	case "":
		return "unknown"
	default:
		return label
	}
}

// SortByCall orders records by (CallID, UserID) for stable output.
func SortByCall(recs []telemetry.SessionRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].CallID != recs[j].CallID {
			return recs[i].CallID < recs[j].CallID
		}
		return recs[i].UserID < recs[j].UserID
	})
}
