package timeline

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDayRoundTrip(t *testing.T) {
	d := Date(2022, time.April, 22)
	if got := d.String(); got != "2022-04-22" {
		t.Fatalf("String = %q", got)
	}
	if got := DayOf(d.Time()); got != d {
		t.Fatalf("round trip: %v != %v", got, d)
	}
	if Date(2021, time.January, 1) != 0 {
		t.Fatalf("epoch day should be 0, got %d", Date(2021, time.January, 1))
	}
	if Date(2021, time.January, 2) != 1 {
		t.Fatal("day arithmetic off")
	}
}

func TestDayOfIgnoresTimeOfDay(t *testing.T) {
	morning := time.Date(2022, time.March, 5, 1, 0, 0, 0, time.UTC)
	night := time.Date(2022, time.March, 5, 23, 59, 0, 0, time.UTC)
	if DayOf(morning) != DayOf(night) {
		t.Fatal("same date mapped to different Days")
	}
}

func TestDayRoundTripProperty(t *testing.T) {
	f := func(offset uint16) bool {
		d := Day(offset)
		return DayOf(d.Time()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeekday(t *testing.T) {
	// 2021-01-01 was a Friday.
	d := Date(2021, time.January, 1)
	if d.Weekday() != time.Friday || !d.IsWeekday() {
		t.Fatalf("epoch weekday = %v", d.Weekday())
	}
	sat := Date(2021, time.January, 2)
	if sat.IsWeekday() {
		t.Fatal("Saturday reported as weekday")
	}
}

func TestMonth(t *testing.T) {
	d := Date(2022, time.April, 22)
	m := MonthOf(d)
	if m.Year() != 2022 || m.Month() != time.April {
		t.Fatalf("MonthOf = %v-%v", m.Year(), m.Month())
	}
	if m.String() != "2022-04" {
		t.Fatalf("Month.String = %q", m.String())
	}
	if m.First() != Date(2022, time.April, 1) {
		t.Fatalf("First = %v", m.First())
	}
	if m.Days() != 30 {
		t.Fatalf("April has %d days?", m.Days())
	}
	if YearMonth(2022, time.April) != m {
		t.Fatal("YearMonth mismatch")
	}
	// Leap year February.
	if YearMonth(2024, time.February).Days() != 29 {
		t.Fatal("2024 February should have 29 days")
	}
}

func TestMonthSuccession(t *testing.T) {
	dec := YearMonth(2021, time.December)
	jan := YearMonth(2022, time.January)
	if jan != dec+1 {
		t.Fatalf("month succession across year broken: %v %v", dec, jan)
	}
}

func TestRange(t *testing.T) {
	r := NewRange(Date(2022, time.January, 30), Date(2022, time.February, 2))
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(Date(2022, time.February, 1)) || r.Contains(Date(2022, time.February, 3)) {
		t.Fatal("Contains wrong")
	}
	var days []Day
	r.Days(func(d Day) { days = append(days, d) })
	if len(days) != 4 || days[0] != r.From || days[3] != r.To {
		t.Fatalf("Days iteration = %v", days)
	}
	months := r.Months()
	if len(months) != 2 || months[0].Month() != time.January || months[1].Month() != time.February {
		t.Fatalf("Months = %v", months)
	}
}

func TestRangePanicsOnInversion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRange(5, 4)
}

func TestStudyWindows(t *testing.T) {
	if TeamsWindow.Len() != 120 {
		t.Fatalf("Teams window %d days, want 120 (Jan-Apr 2022)", TeamsWindow.Len())
	}
	if StarlinkWindow.Len() != 730 {
		t.Fatalf("Starlink window %d days, want 730", StarlinkWindow.Len())
	}
	if len(StarlinkWindow.Months()) != 24 {
		t.Fatalf("Starlink window spans %d months, want 24", len(StarlinkWindow.Months()))
	}
}

func TestBusinessHours(t *testing.T) {
	bh := ESTBusinessHours
	// 2022-03-02 was a Wednesday. 15:00 UTC = 10:00 EST: inside.
	in := time.Date(2022, time.March, 2, 15, 0, 0, 0, time.UTC)
	if !bh.Contains(in) {
		t.Fatal("10 AM EST Wednesday should be business hours")
	}
	// 05:00 UTC = midnight EST: outside.
	out := time.Date(2022, time.March, 2, 5, 0, 0, 0, time.UTC)
	if bh.Contains(out) {
		t.Fatal("midnight EST should not be business hours")
	}
	// Saturday noon EST: outside.
	sat := time.Date(2022, time.March, 5, 17, 0, 0, 0, time.UTC)
	if bh.Contains(sat) {
		t.Fatal("Saturday should not be business hours")
	}
	// Boundary: 9 AM inclusive, 8 PM exclusive.
	nine := time.Date(2022, time.March, 2, 14, 0, 0, 0, time.UTC) // 9 AM EST
	eight := time.Date(2022, time.March, 3, 1, 0, 0, 0, time.UTC) // 8 PM EST Wed
	if !bh.Contains(nine) {
		t.Fatal("9 AM EST should be included")
	}
	if bh.Contains(eight) {
		t.Fatal("8 PM EST should be excluded")
	}
}

func TestWeekOf(t *testing.T) {
	if WeekOf(0) != 0 || WeekOf(6) != 0 || WeekOf(7) != 1 {
		t.Fatalf("WeekOf basics wrong: %d %d %d", WeekOf(0), WeekOf(6), WeekOf(7))
	}
	if WeekOf(-1) != -1 {
		t.Fatalf("WeekOf(-1) = %d", WeekOf(-1))
	}
	if Week(2).First() != 14 {
		t.Fatalf("Week.First = %d", Week(2).First())
	}
}

func TestWeekPartitionProperty(t *testing.T) {
	f := func(offset int16) bool {
		d := Day(offset)
		w := WeekOf(d)
		first := w.First()
		return d >= first && d < first+7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// containsCivil is the pre-optimization BusinessHours.Contains body, kept as
// the reference implementation for the integer fast path.
func containsCivil(b BusinessHours, t time.Time) bool {
	local := t.UTC().Add(b.Offset)
	wd := local.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		return false
	}
	h := local.Hour()
	return h >= b.Start && h < b.End
}

func TestContainsUnixMatchesCivil(t *testing.T) {
	hours := []BusinessHours{
		ESTBusinessHours,
		{Start: 0, End: 24, Offset: 0},
		{Start: 9, End: 17, Offset: 5*time.Hour + 30*time.Minute}, // IST
		{Start: 8, End: 18, Offset: -11 * time.Hour},
		{Start: 23, End: 24, Offset: 14 * time.Hour},
	}
	f := func(sec int64, nano int32, pick uint8) bool {
		sec %= 4e10 // keep instants within a few centuries of the epoch
		b := hours[int(pick)%len(hours)]
		ns := int64(nano) % 1e9
		if ns < 0 {
			ns += 1e9
		}
		instant := time.Unix(sec, ns).UTC()
		return b.Contains(instant) == containsCivil(b, instant)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestContainsUnixKnownInstants(t *testing.T) {
	b := ESTBusinessHours
	cases := []struct {
		when string
		want bool
	}{
		{"2022-01-03T14:00:00Z", true},  // Monday 9 AM EST
		{"2022-01-03T13:59:59Z", false}, // one second before opening
		{"2022-01-04T00:59:59Z", true},  // Monday 7:59 PM EST
		{"2022-01-04T01:00:00Z", false}, // Monday 8 PM EST: closed
		{"2022-01-08T16:00:00Z", false}, // Saturday
		{"2022-01-09T16:00:00Z", false}, // Sunday
		{"1969-12-31T20:00:00Z", true},  // Wednesday 3 PM EST, pre-epoch
		{"1970-01-04T16:00:00Z", false}, // first post-epoch Sunday
	}
	for _, c := range cases {
		ts, err := time.Parse(time.RFC3339, c.when)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Contains(ts); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.when, got, c.want)
		}
	}
}
