// Package timeline provides the simulation calendar: date arithmetic over
// the study windows, business-hours filters, and day/week/month bucketing.
//
// Both studies in the paper are calendar-bound — the Teams analysis covers
// weekday business-hours calls in Jan–Apr 2022, and the Starlink analysis
// buckets two years of posts by day and month — so dates are first-class
// here. Days are represented as integer offsets from an epoch to keep
// map keys and series indices cheap; conversion to time.Time is explicit.
package timeline

import (
	"fmt"
	"time"
)

// Day is a calendar day, counted as days since the package epoch
// (2021-01-01 UTC, the start of the Starlink study window).
type Day int

// Epoch is day 0.
var Epoch = time.Date(2021, time.January, 1, 0, 0, 0, 0, time.UTC)

// DayOf converts a time to its Day (UTC calendar date).
func DayOf(t time.Time) Day {
	t = t.UTC()
	days := t.Sub(Epoch).Hours() / 24
	if t.Before(Epoch) {
		return Day(int(days) - boolToInt(days != float64(int(days))))
	}
	return Day(int(days))
}

// Date builds the Day for a calendar date.
func Date(year int, month time.Month, day int) Day {
	return DayOf(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Time returns midnight UTC of the day.
func (d Day) Time() time.Time { return Epoch.AddDate(0, 0, int(d)) }

// String formats the day as YYYY-MM-DD.
func (d Day) String() string { return d.Time().Format("2006-01-02") }

// Weekday returns the day of week.
func (d Day) Weekday() time.Weekday { return d.Time().Weekday() }

// IsWeekday reports whether the day is Monday–Friday.
func (d Day) IsWeekday() bool {
	wd := d.Weekday()
	return wd != time.Saturday && wd != time.Sunday
}

// Month is a calendar month, identified by year*12 + (month-1).
type Month int

// MonthOf returns the Month containing d.
func MonthOf(d Day) Month {
	t := d.Time()
	return Month(t.Year()*12 + int(t.Month()) - 1)
}

// YearMonth builds a Month from its parts.
func YearMonth(year int, month time.Month) Month {
	return Month(year*12 + int(month) - 1)
}

// Year returns the calendar year of the month.
func (m Month) Year() int { return int(m) / 12 }

// Month returns the calendar month.
func (m Month) Month() time.Month { return time.Month(int(m)%12 + 1) }

// First returns the first Day of the month.
func (m Month) First() Day {
	return DayOf(time.Date(m.Year(), m.Month(), 1, 0, 0, 0, 0, time.UTC))
}

// Days returns the number of days in the month.
func (m Month) Days() int {
	next := time.Date(m.Year(), m.Month(), 1, 0, 0, 0, 0, time.UTC).AddDate(0, 1, 0)
	return int(DayOf(next) - m.First())
}

// String formats as YYYY-MM.
func (m Month) String() string {
	return fmt.Sprintf("%04d-%02d", m.Year(), int(m.Month()))
}

// Range is an inclusive span of days.
type Range struct {
	From, To Day
}

// NewRange returns the inclusive day range [from, to]. It panics if
// to < from, which is a programming error in experiment setup.
func NewRange(from, to Day) Range {
	if to < from {
		panic("timeline: inverted Range")
	}
	return Range{From: from, To: to}
}

// Len returns the number of days in the range.
func (r Range) Len() int { return int(r.To-r.From) + 1 }

// Contains reports whether d lies in the range.
func (r Range) Contains(d Day) bool { return d >= r.From && d <= r.To }

// Days iterates the range in order.
func (r Range) Days(fn func(Day)) {
	for d := r.From; d <= r.To; d++ {
		fn(d)
	}
}

// Months returns the distinct months intersecting the range, in order.
func (r Range) Months() []Month {
	var out []Month
	cur := MonthOf(r.From)
	last := MonthOf(r.To)
	for m := cur; m <= last; m++ {
		out = append(out, m)
	}
	return out
}

// Study windows from the paper.
var (
	// TeamsWindow is the implicit-signals study window (Jan–Apr 2022).
	TeamsWindow = Range{From: Date(2022, time.January, 1), To: Date(2022, time.April, 30)}
	// StarlinkWindow is the explicit-signals study window (Jan'21–Dec'22).
	StarlinkWindow = Range{From: Date(2021, time.January, 1), To: Date(2022, time.December, 31)}
)

// BusinessHours describes the §3.1 call filter: business hours in a fixed
// offset zone. Hours are [Start, End) in local hours; the paper uses
// 9 AM – 8 PM EST on weekdays.
type BusinessHours struct {
	Start, End int           // local hours, [Start, End)
	Offset     time.Duration // zone offset from UTC (EST = -5h)
}

// ESTBusinessHours is the paper's filter: 9 AM–8 PM EST.
var ESTBusinessHours = BusinessHours{Start: 9, End: 20, Offset: -5 * time.Hour}

// Contains reports whether the instant falls inside business hours on a
// weekday in the configured zone.
func (b BusinessHours) Contains(t time.Time) bool {
	if b.Offset%time.Second == 0 {
		return b.ContainsUnix(t.Unix())
	}
	// Sub-second offsets can move an instant across an hour boundary in a
	// way second-resolution arithmetic cannot see; take the civil-time path.
	local := t.UTC().Add(b.Offset)
	wd := local.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		return false
	}
	h := local.Hour()
	return h >= b.Start && h < b.End
}

// ContainsUnix is Contains over a Unix-seconds timestamp, using pure integer
// arithmetic: no time.Time construction, no civil-calendar breakdown. Filters
// that test business hours per record (telemetry.StudyCohort, the columnar
// predicates) call this in their inner loop. Requires a whole-second Offset
// (Contains falls back to civil time otherwise). The hour-of-day test ignores
// sub-second parts by definition, so truncating to seconds is exact.
func (b BusinessHours) ContainsUnix(sec int64) bool {
	local := sec + int64(b.Offset/time.Second)
	days := floorDiv(local, 86400)
	// The Unix epoch (1970-01-01) was a Thursday; with Sunday=0 that is
	// weekday 4, matching time.Weekday's numbering.
	wd := floorMod(days+4, 7)
	if wd == 0 || wd == 6 {
		return false
	}
	h := int(floorMod(local, 86400) / 3600)
	return h >= b.Start && h < b.End
}

// floorDiv is floored (not truncated) integer division, correct for negative
// numerators: floorDiv(-1, 86400) = -1.
func floorDiv(a, n int64) int64 {
	q := a / n
	if a%n < 0 {
		q--
	}
	return q
}

// floorMod is the non-negative remainder paired with floorDiv.
func floorMod(a, n int64) int64 {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// RandomInstant is the signature used by generators to place events inside a
// day; implemented by simulation RNG adapters in callers. Kept here so the
// contract is documented near the calendar.
type RandomInstant func(d Day) time.Time

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Week is an ISO-like week bucket: days since epoch divided by 7 (epoch
// aligned, not ISO-8601 aligned, which is sufficient for weekly averages).
type Week int

// WeekOf returns the Week containing d.
func WeekOf(d Day) Week {
	if d < 0 {
		return Week((int(d) - 6) / 7)
	}
	return Week(int(d) / 7)
}

// First returns the first day of the week bucket.
func (w Week) First() Day { return Day(int(w) * 7) }
