package behavior

import (
	"math"

	"usersignals/internal/media"
	"usersignals/internal/simrand"
)

// AgentOptions configures one agent-session.
type AgentOptions struct {
	// MeetingSize is the number of participants; larger meetings lower
	// the baseline mic-on fraction (listeners mute) and slightly dilute
	// per-user sensitivity (§6 confounder).
	MeetingSize int
	// ExpectationUtility is the user's conditioned expectation of call
	// quality in [0, 1] (their EWMA over past sessions). Annoyance blends
	// absolute badness with shortfall versus this expectation. Default
	// 0.8 (a user accustomed to good calls).
	ExpectationUtility float64
	// ConditioningWeight in [0, 1] is the share of annoyance attributed
	// to expectation shortfall rather than absolute badness. 0 disables
	// conditioning (the ablation). Default 0.3.
	ConditioningWeight float64
}

func (o AgentOptions) withDefaults() AgentOptions {
	if o.MeetingSize < 2 {
		o.MeetingSize = 3
	}
	if o.ExpectationUtility <= 0 || o.ExpectationUtility > 1 {
		o.ExpectationUtility = 0.8
	}
	if o.ConditioningWeight < 0 || o.ConditioningWeight > 1 {
		o.ConditioningWeight = 0.3
	}
	return o
}

// Agent simulates one participant for one session. Not safe for concurrent
// use; create one per (participant, session).
type Agent struct {
	prof Profile
	opts AgentOptions
	rng  *simrand.RNG

	inCall bool
	micOn  bool
	camOn  bool

	windows    int
	micWindows int
	camWindows int
	utilitySum float64
	leftEarly  bool

	// stickiness of the mic/cam Markov chains (per-window switching
	// scale); lower = longer dwell times.
	stickiness float64
}

// StepResult reports the agent's state during one window.
type StepResult struct {
	InCall bool
	MicOn  bool
	CamOn  bool
}

// NewAgent creates an agent. The RNG is owned by the agent afterwards.
func NewAgent(prof Profile, opts AgentOptions, rng *simrand.RNG) *Agent {
	opts = opts.withDefaults()
	a := &Agent{
		prof:       prof,
		opts:       opts,
		rng:        rng,
		inCall:     true,
		stickiness: 0.08,
	}
	// Initial states drawn from the perfect-conditions targets so that
	// session starts are unbiased.
	a.micOn = rng.Bool(a.micTarget(0))
	a.camOn = rng.Bool(a.camTarget(0, 0))
	return a
}

// micTarget is the stationary mic-on probability given conversational
// difficulty in [0, 1].
func (a *Agent) micTarget(difficulty float64) float64 {
	base := a.prof.MicBase * meetingMicScale(a.opts.MeetingSize)
	// Calibrated so 0→300 ms latency costs ~25-30% relative mic-on, with
	// the saturation shape coming from difficulty itself.
	t := base * (1 - 0.32*difficulty*a.sensitivity())
	return clamp(t, 0.02, 1)
}

// camTarget is the stationary cam-on probability given video badness and
// conversational difficulty, both in [0, 1].
func (a *Agent) camTarget(videoBad, difficulty float64) float64 {
	s := a.sensitivity()
	// Video badness is the dominant driver (jitter, bandwidth); delay adds
	// a deliberate "turn video off to save the call" component. Camera-off
	// is more drastic than muting, hence the smaller delay coefficient
	// relative to micTarget's.
	t := a.prof.CamBase * (1 - 0.55*videoBad*s - 0.24*difficulty*s)
	return clamp(t, 0.01, 1)
}

// sensitivity dilutes platform sensitivity slightly in large meetings:
// a listener in a 20-person all-hands is less bothered than a participant
// in a 3-person working session.
func (a *Agent) sensitivity() float64 {
	return a.prof.Sensitivity / (1 + 0.02*float64(a.opts.MeetingSize-3))
}

func meetingMicScale(size int) float64 {
	// 3-person: ~1.0; 10-person: ~0.55; 30-person: ~0.3.
	return clamp(0.22+2.3/float64(size), 0.15, 1)
}

// Step advances the agent by one telemetry window experienced at the given
// delivered quality. It reports the agent's state during that window. Once
// the agent has left, further steps keep reporting InCall=false.
func (a *Agent) Step(q media.Quality) StepResult {
	if !a.inCall {
		return StepResult{}
	}

	difficulty := convDifficulty(q.MouthToEarMs)
	videoBad := clamp(1-q.VideoScore, 0, 1)
	utility := experienceUtility(q, difficulty)
	a.utilitySum += utility
	a.windows++

	// Conditioning: annoyance is a blend of absolute badness and the
	// shortfall against the user's conditioned expectation.
	absBad := clamp(1-utility, 0, 1)
	shortfall := clamp(a.opts.ExpectationUtility-utility, 0, 1)
	annoy := (1-a.opts.ConditioningWeight)*absBad + a.opts.ConditioningWeight*shortfall

	// --- leave decision ---
	// Two channels drive abandonment, with quadratic (threshold-like)
	// shapes: media breakup from residual loss (audio dropouts, frozen
	// video — "unacceptably poor" in the paper's words, kicking in around
	// 3%+ network loss once FEC is overwhelmed), and a broken conversation
	// from delay. Conditioned annoyance adds a small direct push. The
	// calibration targets §3.2: ~20% presence loss at 300 ms latency,
	// negligible at 2% loss, >10% at 5% loss, ~40-50% when latency and
	// loss compound (Fig. 2).
	artifacts := 1 - math.Exp(-q.ResidualLossPct/2)
	s := a.sensitivity()
	leaveHazard := a.prof.LeaveHazard +
		0.008*artifacts*artifacts*s +
		0.0026*difficulty*difficulty*s +
		0.006*artifacts*difficulty*s + // compounding: broken audio AND broken turn-taking (Fig. 2)
		0.002*annoy*s
	if a.rng.Bool(leaveHazard) {
		a.inCall = false
		a.leftEarly = true
		return StepResult{}
	}

	// --- mic chain ---
	micT := a.micTarget(difficulty)
	if a.micOn {
		if a.rng.Bool(a.stickiness * (1 - micT)) {
			a.micOn = false
		}
	} else {
		if a.rng.Bool(a.stickiness * micT) {
			a.micOn = true
		}
	}

	// --- cam chain (slower: turning video on/off is a deliberate act) ---
	camT := a.camTarget(videoBad, difficulty)
	camStick := a.stickiness * 0.6
	if a.camOn {
		if a.rng.Bool(camStick * (1 - camT)) {
			a.camOn = false
		}
	} else {
		if a.rng.Bool(camStick * camT) {
			a.camOn = true
		}
	}

	if a.micOn {
		a.micWindows++
	}
	if a.camOn {
		a.camWindows++
	}
	return StepResult{InCall: true, MicOn: a.micOn, CamOn: a.camOn}
}

// convDifficulty maps mouth-to-ear delay to conversational difficulty in
// [0, 1]. The shape — negligible below ~100 ms, steep to ~250 ms, then
// saturating — is what gives the Mic On curve of Fig. 1 its knee at 150 ms
// network latency: beyond that, conversation is already broken and further
// delay cannot break it much more.
func convDifficulty(mouthToEarMs float64) float64 {
	x := math.Max(0, mouthToEarMs-100)
	return 1 - math.Exp(-x/130)
}

// experienceUtility is the latent per-window experience in [0, 1] shared by
// actions and ratings.
func experienceUtility(q media.Quality, difficulty float64) float64 {
	audio := clamp((q.AudioMOS-1)/3.4, 0, 1)
	return clamp(0.55*audio+0.25*q.VideoScore+0.20*(1-difficulty), 0, 1)
}

// SessionBehavior is the per-session outcome consumed by telemetry.
type SessionBehavior struct {
	WindowsAttended int     // windows before leaving (or all scheduled)
	LeftEarly       bool    // user abandoned before the scheduled end
	MicOnFrac       float64 // fraction of attended windows with mic on
	CamOnFrac       float64 // fraction of attended windows with camera on
	MeanUtility     float64 // latent experienced utility in [0, 1]
}

// Summary finalizes the session.
func (a *Agent) Summary() SessionBehavior {
	s := SessionBehavior{WindowsAttended: a.windows, LeftEarly: a.leftEarly}
	if a.windows > 0 {
		s.MicOnFrac = float64(a.micWindows) / float64(a.windows)
		s.CamOnFrac = float64(a.camWindows) / float64(a.windows)
		s.MeanUtility = a.utilitySum / float64(a.windows)
	}
	return s
}

// Rate produces the agent's explicit 1–5 rating for the session, the raw
// material of MOS. Ratings are noisy, integer, and anchored to the same
// latent utility that drove the agent's actions — which is why §3.3 finds
// engagement and MOS correlate.
func (a *Agent) Rate() int {
	u := 0.0
	if a.windows > 0 {
		u = a.utilitySum / float64(a.windows)
	}
	score := 1 + 4*u + a.rng.Normal(0, 0.55)
	r := int(math.Round(score))
	if r < 1 {
		r = 1
	}
	if r > 5 {
		r = 5
	}
	return r
}

// InCall reports whether the agent is still in the call.
func (a *Agent) InCall() bool { return a.inCall }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
