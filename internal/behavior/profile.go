// Package behavior models conferencing users as agents whose in-call actions
// — muting, turning the camera off, leaving — respond to the media quality
// they experience. This is the causal link the paper investigates from the
// observational side: §3.2's finding is that network conditions shape these
// actions, and §3.3's that the same latent experience also drives explicit
// ratings (MOS). The agent therefore derives both its actions and its
// end-of-call rating from one latent "experienced utility" signal, which is
// exactly why engagement can proxy for MOS in the analysis.
//
// Design notes:
//
//   - Actions are modelled as a two-state Markov chain per control (mic,
//     camera) whose stationary distribution is a calibrated target; this
//     yields realistic dwell times (people don't flap their mic every five
//     seconds) while keeping session-level fractions analyzable.
//   - Muting responds primarily to conversational difficulty (delay), the
//     camera primarily to picture quality (jitter, bandwidth) with a
//     deliberate-action latency component — the paper's observation that
//     muting is the "means of first resort" while camera-off is more
//     drastic falls out of the coefficient ordering.
//   - Leaving is a hazard driven by severe degradation (audible residual
//     loss, failed conversation), with platform-dependent baselines: mobile
//     users abandon sooner (Fig. 3).
//   - Long-term conditioning enters as an expectation level: annoyance is a
//     blend of absolute badness and shortfall versus expectation (§6).
package behavior

import "fmt"

// Platform identifies the client platform, the §3.2 confounder shown in
// Fig. 3.
type Platform int

// Platforms, ordered roughly by engagement baseline.
const (
	WindowsPC Platform = iota
	MacPC
	MobileIOS
	MobileAndroid
	numPlatforms
)

// String returns the platform label used in datasets and figures.
func (p Platform) String() string {
	switch p {
	case WindowsPC:
		return "windows-pc"
	case MacPC:
		return "mac-pc"
	case MobileIOS:
		return "ios-mobile"
	case MobileAndroid:
		return "android-mobile"
	default:
		return fmt.Sprintf("platform(%d)", int(p))
	}
}

// ParsePlatform is the inverse of String.
func ParsePlatform(s string) (Platform, error) {
	for p := Platform(0); p < numPlatforms; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("behavior: unknown platform %q", s)
}

// Platforms returns all platforms.
func Platforms() []Platform {
	return []Platform{WindowsPC, MacPC, MobileIOS, MobileAndroid}
}

// Profile parameterizes platform-dependent behaviour.
type Profile struct {
	Platform Platform

	// LeaveHazard is the per-window baseline probability of leaving for
	// reasons unrelated to quality (other meeting, battery, commute).
	LeaveHazard float64
	// CamBase is the baseline probability of keeping the camera on under
	// perfect conditions.
	CamBase float64
	// MicBase is the baseline mic-on fraction in a 3-person call under
	// perfect conditions; meeting size scales it down.
	MicBase float64
	// Sensitivity multiplies the quality-driven components of every
	// hazard: mobile users react more sharply to the same degradation.
	Sensitivity float64
}

// ProfileFor returns the default profile for a platform.
//
// The ordering encodes Fig. 3: at the same network conditions, mobile users
// drop off sooner (higher baseline hazard and higher sensitivity) and show
// less camera use; the two desktop OSes differ mildly.
func ProfileFor(p Platform) Profile {
	switch p {
	case WindowsPC:
		return Profile{Platform: p, LeaveHazard: 0.0005, CamBase: 0.60, MicBase: 0.85, Sensitivity: 1.0}
	case MacPC:
		return Profile{Platform: p, LeaveHazard: 0.0006, CamBase: 0.65, MicBase: 0.85, Sensitivity: 0.85}
	case MobileIOS:
		return Profile{Platform: p, LeaveHazard: 0.0011, CamBase: 0.38, MicBase: 0.75, Sensitivity: 1.35}
	case MobileAndroid:
		return Profile{Platform: p, LeaveHazard: 0.0013, CamBase: 0.33, MicBase: 0.75, Sensitivity: 1.5}
	default:
		return Profile{Platform: p, LeaveHazard: 0.0008, CamBase: 0.5, MicBase: 0.8, Sensitivity: 1.0}
	}
}

// EnterpriseMix returns the platform distribution of the simulated
// enterprise call population (weights aligned with Platforms()).
func EnterpriseMix() []float64 {
	return []float64{0.55, 0.2, 0.15, 0.10}
}
