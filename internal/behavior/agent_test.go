package behavior

import (
	"math"
	"testing"

	"usersignals/internal/media"
	"usersignals/internal/simrand"
)

// runPopulation simulates n agents through `windows` identical-quality
// windows and returns mean mic-on, cam-on, presence fraction and mean
// utility.
func runPopulation(t *testing.T, n, windows int, q media.Quality, prof Profile, opts AgentOptions, seed uint64) (mic, cam, presence, utility float64) {
	t.Helper()
	root := simrand.Root(seed)
	var micSum, camSum, presSum, utilSum float64
	for i := 0; i < n; i++ {
		a := NewAgent(prof, opts, root.Derive("agent/%d", i).RNG())
		for w := 0; w < windows; w++ {
			a.Step(q)
			if !a.InCall() {
				break
			}
		}
		s := a.Summary()
		micSum += s.MicOnFrac
		camSum += s.CamOnFrac
		presSum += float64(s.WindowsAttended) / float64(windows)
		utilSum += s.MeanUtility
	}
	f := float64(n)
	return micSum / f, camSum / f, presSum / f, utilSum / f
}

func qualityAt(lat, loss, jit, bw float64) media.Quality {
	return media.Evaluate(lat, loss, jit, bw, media.DefaultMitigation())
}

const (
	popN    = 400
	popWins = 360 // 30-minute session
)

func TestLatencyReducesEngagement(t *testing.T) {
	prof := ProfileFor(WindowsPC)
	good := qualityAt(20, 0.1, 1, 3.5)
	bad := qualityAt(300, 0.1, 1, 3.5)
	m0, c0, p0, _ := runPopulation(t, popN, popWins, good, prof, AgentOptions{}, 1)
	m1, c1, p1, _ := runPopulation(t, popN, popWins, bad, prof, AgentOptions{}, 1)

	micDrop := (m0 - m1) / m0
	camDrop := (c0 - c1) / c0
	presDrop := (p0 - p1) / p0
	if micDrop < 0.15 || micDrop > 0.45 {
		t.Fatalf("mic-on drop at 300ms = %v, want ~0.25", micDrop)
	}
	if camDrop < 0.10 || camDrop > 0.40 {
		t.Fatalf("cam-on drop at 300ms = %v, want ~0.20", camDrop)
	}
	if presDrop < 0.08 || presDrop > 0.45 {
		t.Fatalf("presence drop at 300ms = %v, want ~0.20", presDrop)
	}
	// Paper: mic reacts more strongly to latency than camera or presence
	// (muting is the means of first resort).
	if micDrop <= camDrop {
		t.Fatalf("mic drop %v should exceed cam drop %v under latency", micDrop, camDrop)
	}
}

func TestMicCurveSaturates(t *testing.T) {
	// Mic-on loss from 0→150ms should exceed the loss from 150→300ms.
	prof := ProfileFor(WindowsPC)
	m0, _, _, _ := runPopulation(t, popN, popWins, qualityAt(10, 0.1, 1, 3.5), prof, AgentOptions{}, 2)
	m150, _, _, _ := runPopulation(t, popN, popWins, qualityAt(150, 0.1, 1, 3.5), prof, AgentOptions{}, 2)
	m300, _, _, _ := runPopulation(t, popN, popWins, qualityAt(300, 0.1, 1, 3.5), prof, AgentOptions{}, 2)
	first := m0 - m150
	second := m150 - m300
	if first <= second {
		t.Fatalf("mic curve should be steeper before 150ms: first=%v second=%v", first, second)
	}
}

func TestModerateLossBarelyHurts(t *testing.T) {
	// With safeguards on, 2% loss costs <10% of every engagement metric.
	prof := ProfileFor(WindowsPC)
	m0, c0, p0, _ := runPopulation(t, popN, popWins, qualityAt(20, 0, 1, 3.5), prof, AgentOptions{}, 3)
	m2, c2, p2, _ := runPopulation(t, popN, popWins, qualityAt(20, 2, 1, 3.5), prof, AgentOptions{}, 3)
	for _, tc := range []struct {
		name       string
		base, drop float64
	}{
		{"mic", m0, (m0 - m2) / m0},
		{"cam", c0, (c0 - c2) / c0},
		{"presence", p0, (p0 - p2) / p0},
	} {
		if tc.drop > 0.10 {
			t.Fatalf("%s drop at 2%% loss = %v, want < 0.10 (mitigation)", tc.name, tc.drop)
		}
	}
}

func TestHeavyLossDrivesDropOff(t *testing.T) {
	prof := ProfileFor(WindowsPC)
	_, _, p0, _ := runPopulation(t, popN, popWins, qualityAt(20, 0, 1, 3.5), prof, AgentOptions{}, 4)
	_, _, p5, _ := runPopulation(t, popN, popWins, qualityAt(20, 5, 1, 3.5), prof, AgentOptions{}, 4)
	if drop := (p0 - p5) / p0; drop < 0.10 {
		t.Fatalf("presence drop at 5%% loss = %v, want > 0.10", drop)
	}
}

func TestJitterHitsCamera(t *testing.T) {
	prof := ProfileFor(WindowsPC)
	_, c0, _, _ := runPopulation(t, popN, popWins, qualityAt(20, 0.1, 1, 3.5), prof, AgentOptions{}, 5)
	_, c10, _, _ := runPopulation(t, popN, popWins, qualityAt(20, 0.1, 10, 3.5), prof, AgentOptions{}, 5)
	if drop := (c0 - c10) / c0; drop < 0.12 {
		t.Fatalf("cam-on drop at 10ms jitter = %v, want > 0.12", drop)
	}
}

func TestBandwidthBarelyMatters(t *testing.T) {
	prof := ProfileFor(WindowsPC)
	m4, c4, p4, _ := runPopulation(t, popN, popWins, qualityAt(20, 0.1, 1, 4), prof, AgentOptions{}, 6)
	m1, c1, p1, _ := runPopulation(t, popN, popWins, qualityAt(20, 0.1, 1, 1), prof, AgentOptions{}, 6)
	if drop := (c4 - c1) / c4; drop > 0.08 {
		t.Fatalf("cam-on drop at 1 Mbps = %v, want < 0.08", drop)
	}
	if drop := (p4 - p1) / p4; drop > 0.05 {
		t.Fatalf("presence drop at 1 Mbps = %v", drop)
	}
	// Mic-on must not correlate with bandwidth at all (audio is tiny).
	if drop := math.Abs(m4-m1) / m4; drop > 0.05 {
		t.Fatalf("mic-on moved %v with bandwidth; should be flat", drop)
	}
}

func TestCompoundingLatencyLoss(t *testing.T) {
	prof := ProfileFor(WindowsPC)
	_, _, pBest, _ := runPopulation(t, popN, popWins, qualityAt(20, 0, 1, 3.5), prof, AgentOptions{}, 7)
	_, _, pWorst, _ := runPopulation(t, popN, popWins, qualityAt(300, 3.5, 1, 3.5), prof, AgentOptions{}, 7)
	drop := (pBest - pWorst) / pBest
	if drop < 0.30 {
		t.Fatalf("compounded presence drop = %v, want >= 0.30 (Fig 2: ~0.5)", drop)
	}
}

func TestMobileDropsSooner(t *testing.T) {
	q := qualityAt(120, 1.5, 4, 3)
	_, _, pPC, _ := runPopulation(t, popN, popWins, q, ProfileFor(WindowsPC), AgentOptions{}, 8)
	_, _, pMob, _ := runPopulation(t, popN, popWins, q, ProfileFor(MobileAndroid), AgentOptions{}, 8)
	if pMob >= pPC {
		t.Fatalf("mobile presence %v should be below PC %v at same conditions", pMob, pPC)
	}
}

func TestMeetingSizeLowersMicOn(t *testing.T) {
	q := qualityAt(20, 0.1, 1, 3.5)
	prof := ProfileFor(WindowsPC)
	mSmall, _, _, _ := runPopulation(t, popN, popWins, q, prof, AgentOptions{MeetingSize: 3}, 9)
	mBig, _, _, _ := runPopulation(t, popN, popWins, q, prof, AgentOptions{MeetingSize: 20}, 9)
	if mBig >= mSmall*0.8 {
		t.Fatalf("20-person mic-on %v should be well below 3-person %v", mBig, mSmall)
	}
}

func TestConditioningShiftsAnnoyance(t *testing.T) {
	// A user conditioned to bad networks (low expectation) tolerates a
	// mediocre call better than one conditioned to great networks.
	q := qualityAt(250, 2, 10, 1.5)
	prof := ProfileFor(WindowsPC)
	optLow := AgentOptions{ExpectationUtility: 0.35, ConditioningWeight: 0.7}
	optHigh := AgentOptions{ExpectationUtility: 0.99, ConditioningWeight: 0.7}
	_, _, pLow, _ := runPopulation(t, 1500, popWins, q, prof, optLow, 10)
	_, _, pHigh, _ := runPopulation(t, 1500, popWins, q, prof, optHigh, 10)
	if pLow <= pHigh {
		t.Fatalf("low-expectation presence %v should exceed high-expectation %v", pLow, pHigh)
	}
}

func TestRatingsTrackUtility(t *testing.T) {
	root := simrand.Root(11)
	prof := ProfileFor(WindowsPC)
	rate := func(q media.Quality, label string) float64 {
		sum := 0.0
		const n = 300
		for i := 0; i < n; i++ {
			a := NewAgent(prof, AgentOptions{}, root.Derive("%s/%d", label, i).RNG())
			for w := 0; w < 120; w++ {
				a.Step(q)
			}
			sum += float64(a.Rate())
		}
		return sum / n
	}
	good := rate(qualityAt(20, 0.1, 1, 3.5), "good")
	bad := rate(qualityAt(300, 4, 15, 1), "bad")
	if good < 4.0 {
		t.Fatalf("good-call mean rating %v, want >= 4.0", good)
	}
	if bad > 3.0 {
		t.Fatalf("bad-call mean rating %v, want <= 3.0", bad)
	}
	if good-bad < 1.0 {
		t.Fatalf("rating separation %v too small", good-bad)
	}
}

func TestRateBounds(t *testing.T) {
	root := simrand.Root(12)
	for i := 0; i < 200; i++ {
		a := NewAgent(ProfileFor(MobileIOS), AgentOptions{}, root.Derive("r/%d", i).RNG())
		a.Step(qualityAt(500, 20, 50, 0.2))
		r := a.Rate()
		if r < 1 || r > 5 {
			t.Fatalf("rating %d out of scale", r)
		}
	}
}

func TestStepAfterLeaveIsInert(t *testing.T) {
	a := NewAgent(ProfileFor(WindowsPC), AgentOptions{}, simrand.New(1, 2))
	terrible := qualityAt(800, 40, 80, 0.1)
	for i := 0; i < 10000 && a.InCall(); i++ {
		a.Step(terrible)
	}
	if a.InCall() {
		t.Fatal("agent never left under catastrophic conditions")
	}
	before := a.Summary()
	res := a.Step(terrible)
	if res.InCall || res.MicOn || res.CamOn {
		t.Fatalf("step after leave = %+v", res)
	}
	if after := a.Summary(); after != before {
		t.Fatalf("summary changed after leave: %+v vs %+v", after, before)
	}
	if !before.LeftEarly {
		t.Fatal("LeftEarly not set")
	}
}

func TestSummaryFractionsBounded(t *testing.T) {
	root := simrand.Root(13)
	for i := 0; i < 100; i++ {
		a := NewAgent(ProfileFor(MobileAndroid), AgentOptions{MeetingSize: 5}, root.Derive("b/%d", i).RNG())
		q := qualityAt(root.Derive("q/%d", i).RNG().Range(0, 400), 1, 5, 2)
		for w := 0; w < 100; w++ {
			a.Step(q)
		}
		s := a.Summary()
		if s.MicOnFrac < 0 || s.MicOnFrac > 1 || s.CamOnFrac < 0 || s.CamOnFrac > 1 {
			t.Fatalf("fractions out of range: %+v", s)
		}
		if s.MeanUtility < 0 || s.MeanUtility > 1 {
			t.Fatalf("utility out of range: %+v", s)
		}
		if s.WindowsAttended > 100 {
			t.Fatalf("attended more windows than stepped: %+v", s)
		}
	}
}

func TestEmptySessionSummary(t *testing.T) {
	a := NewAgent(ProfileFor(WindowsPC), AgentOptions{}, simrand.New(3, 4))
	s := a.Summary()
	if s.WindowsAttended != 0 || s.MicOnFrac != 0 || s.CamOnFrac != 0 || s.MeanUtility != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPlatformStringRoundTrip(t *testing.T) {
	for _, p := range Platforms() {
		got, err := ParsePlatform(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParsePlatform("toaster"); err == nil {
		t.Fatal("unknown platform should error")
	}
	if s := Platform(99).String(); s == "" {
		t.Fatal("out-of-range platform String empty")
	}
}

func TestEnterpriseMixSums(t *testing.T) {
	sum := 0.0
	for _, w := range EnterpriseMix() {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mix weights sum to %v", sum)
	}
	if len(EnterpriseMix()) != len(Platforms()) {
		t.Fatal("mix length mismatch")
	}
}

func TestConvDifficultyShape(t *testing.T) {
	if d := convDifficulty(80); d != 0 {
		t.Fatalf("difficulty below 100ms = %v, want 0", d)
	}
	d200 := convDifficulty(200)
	d350 := convDifficulty(350)
	d500 := convDifficulty(500)
	if !(d200 > 0 && d350 > d200 && d500 > d350) {
		t.Fatal("difficulty not increasing")
	}
	if d500-d350 >= d350-d200 {
		t.Fatal("difficulty should saturate")
	}
	if d500 > 1 {
		t.Fatalf("difficulty %v > 1", d500)
	}
}
