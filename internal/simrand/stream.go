package simrand

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Stream is a named, splittable source of RNGs. A Stream does not itself
// generate numbers; it derives independent child streams and generators from
// a 128-bit key and a path of labels. Two streams derived along different
// label paths are statistically independent, and the derivation is stable:
// the same root seed and path always yield the same generator, regardless of
// how many sibling streams were created or in what order.
//
// This property is what makes large simulations reproducible under
// refactoring: "the RNG for user 42 on day 17" is a pure function of
// (rootSeed, "user", 42, "day", 17), not of execution order.
type Stream struct {
	hi, lo uint64
	path   string
}

// Root returns the root stream for a simulation seed.
func Root(seed uint64) *Stream {
	return &Stream{hi: 0x9e3779b97f4a7c15, lo: seed, path: "root"}
}

// RootFromString returns a root stream named by s (hashed to a seed).
func RootFromString(s string) *Stream {
	h := fnv.New128a()
	h.Write([]byte(s))
	var buf [16]byte
	sum := h.Sum(buf[:0])
	return &Stream{
		hi:   binary.BigEndian.Uint64(sum[:8]),
		lo:   binary.BigEndian.Uint64(sum[8:]),
		path: s,
	}
}

// Derive returns the child stream labelled by the formatted arguments, e.g.
// s.Derive("call/%d", id).
func (s *Stream) Derive(format string, args ...any) *Stream {
	label := format
	if len(args) > 0 {
		label = fmt.Sprintf(format, args...)
	}
	h := fnv.New128a()
	var key [16]byte
	binary.BigEndian.PutUint64(key[:8], s.hi)
	binary.BigEndian.PutUint64(key[8:], s.lo)
	h.Write(key[:])
	h.Write([]byte{0}) // separator so ("ab","c") != ("a","bc")
	h.Write([]byte(label))
	var buf [16]byte
	sum := h.Sum(buf[:0])
	return &Stream{
		hi:   binary.BigEndian.Uint64(sum[:8]),
		lo:   binary.BigEndian.Uint64(sum[8:]),
		path: s.path + "/" + label,
	}
}

// RNG returns a fresh generator for this stream. Repeated calls return
// generators with identical sequences; derive a child stream when
// independent draws are needed.
func (s *Stream) RNG() *RNG {
	return New(s.hi, s.lo)
}

// Path returns the label path of the stream, for debugging.
func (s *Stream) Path() string { return s.path }
