package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(1, 2)
	b := New(1, 2)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a := New(1, 2)
	b := New(1, 3)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7, 7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11, 13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3, 9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) value %d drawn %d times of 100000; distribution skewed", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestUint64nUniformSmall(t *testing.T) {
	// Lemire rejection must not bias small moduli.
	r := New(5, 5)
	counts := make([]int, 3)
	for i := 0; i < 90000; i++ {
		counts[r.Uint64n(3)]++
	}
	for v, c := range counts {
		if c < 28000 || c > 32000 {
			t.Fatalf("Uint64n(3) value %d count %d, want ~30000", v, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(21, 42)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(77, 1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestNewFromStringStable(t *testing.T) {
	a := NewFromString("fig1/latency").Uint64()
	b := NewFromString("fig1/latency").Uint64()
	c := NewFromString("fig1/loss").Uint64()
	if a != b {
		t.Fatal("same string seed produced different sequences")
	}
	if a == c {
		t.Fatal("different string seeds produced the same first draw")
	}
}

func TestBool(t *testing.T) {
	r := New(2, 4)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}

func TestRange(t *testing.T) {
	r := New(8, 8)
	for i := 0; i < 10000; i++ {
		v := r.Range(-5, 10)
		if v < -5 || v >= 10 {
			t.Fatalf("Range(-5,10) = %v", v)
		}
	}
	if got := r.Range(3, 3); got != 3 {
		t.Fatalf("degenerate Range = %v, want 3", got)
	}
	if got := r.Range(4, 2); got != 4 {
		t.Fatalf("inverted Range = %v, want lo", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14, 15)
	check := func(n uint8) bool {
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	r := New(99, 100)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		s := []int{0, 1, 2, 3}
		r.Shuffle(4, func(i, j int) { s[i], s[j] = s[j], s[i] })
		counts[s[0]]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("element %d first %d times of 40000", v, c)
		}
	}
}
