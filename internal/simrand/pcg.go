// Package simrand provides a deterministic, splittable pseudo-random number
// generator and the distribution samplers used throughout the simulators.
//
// Every generator in this repository is seeded explicitly so that datasets,
// experiments, and benchmarks are reproducible bit-for-bit. The core engine is
// PCG-XSL-RR 128/64 (O'Neill, 2014), chosen for its small state, good
// statistical quality, and cheap jump-free substream derivation: independent
// substreams are obtained by hashing a parent stream's seed with a label
// (see Stream and Derive), which lets a simulation hand out stable per-entity
// generators ("call 1234", "user 42/day 17") without global coordination.
package simrand

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/bits"
)

// RNG is a PCG-XSL-RR 128/64 pseudo-random generator. The zero value is a
// valid generator seeded with (0, 0); most callers should use New or a
// Stream instead so that the seed is explicit.
type RNG struct {
	hi, lo uint64 // 128-bit LCG state
}

// PCG multiplier (128-bit), from the PCG reference implementation.
const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
	incHi = 6364136223846793005
	incLo = 1442695040888963407
)

// New returns an RNG seeded from the two words of seed material. Distinct
// seeds yield independent-looking sequences.
func New(seedHi, seedLo uint64) *RNG {
	r := &RNG{hi: seedHi, lo: seedLo}
	// As in the reference implementation: advance once, add the seed, advance
	// again, so that nearby seeds diverge immediately.
	r.step()
	r.lo, r.hi = add128(r.hi, r.lo, seedHi, seedLo)
	r.step()
	return r
}

// NewFromString returns an RNG seeded by hashing s. Useful for naming
// experiment streams ("fig1/latency").
func NewFromString(s string) *RNG {
	h := fnv.New128a()
	h.Write([]byte(s))
	var buf [16]byte
	sum := h.Sum(buf[:0])
	return New(binary.BigEndian.Uint64(sum[:8]), binary.BigEndian.Uint64(sum[8:]))
}

func add128(aHi, aLo, bHi, bLo uint64) (lo, hi uint64) {
	lo, carry := bits.Add64(aLo, bLo, 0)
	hi, _ = bits.Add64(aHi, bHi, carry)
	return lo, hi
}

func mul128(aHi, aLo, bHi, bLo uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(aLo, bLo)
	hi += aHi*bLo + aLo*bHi
	return hi, lo
}

func (r *RNG) step() {
	hi, lo := mul128(r.hi, r.lo, mulHi, mulLo)
	lo, carry := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, carry)
	r.hi, r.lo = hi, lo
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.step()
	// XSL-RR output function: xor-shift-low then random rotate.
	x := r.hi ^ r.lo
	return bits.RotateLeft64(x, -int(r.hi>>58))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits scaled by 2^-53.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simrand: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform float64 in [lo, hi). If hi <= lo it returns lo.
func (r *RNG) Range(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*r.Float64()
}

// Shuffle pseudo-randomly permutes the n elements addressed by swap, using
// the Fisher-Yates algorithm.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// NormFloat64 returns a standard-normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
