package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalMoments(t *testing.T) {
	r := New(1, 10)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(50, 5)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-50) > 0.1 {
		t.Fatalf("mean %v, want ~50", mean)
	}
	if math.Abs(sd-5) > 0.1 {
		t.Fatalf("sd %v, want ~5", sd)
	}
}

func TestNormalZeroSigma(t *testing.T) {
	r := New(1, 11)
	if got := r.Normal(42, 0); got != 42 {
		t.Fatalf("Normal(42, 0) = %v", got)
	}
	if got := r.Normal(42, -3); got != 42 {
		t.Fatalf("Normal(42, -3) = %v", got)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(1, 12)
	f := func(seedByte uint8) bool {
		x := r.TruncNormal(0, 100, -1, 1)
		return x >= -1 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(1, 13)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormalMeanMedian(40, 1.5)
	}
	med := quickSelectMedian(xs)
	if med < 38 || med > 42 {
		t.Fatalf("log-normal median %v, want ~40", med)
	}
	for _, x := range xs[:100] {
		if x <= 0 {
			t.Fatalf("log-normal produced non-positive %v", x)
		}
	}
}

func TestLogNormalDegenerate(t *testing.T) {
	r := New(1, 14)
	if got := r.LogNormalMeanMedian(0, 2); got != 0 {
		t.Fatalf("median 0 should yield 0, got %v", got)
	}
	// Spread below 1 clamps to deterministic median.
	if got := r.LogNormalMeanMedian(10, 0.5); got != 10 {
		t.Fatalf("spread<1 should be deterministic, got %v", got)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(1, 15)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(30)
	}
	if mean := sum / n; math.Abs(mean-30) > 0.5 {
		t.Fatalf("exponential mean %v, want ~30", mean)
	}
	if got := r.Exponential(0); got != 0 {
		t.Fatalf("Exponential(0) = %v", got)
	}
}

func TestParetoMinimumAndTail(t *testing.T) {
	r := New(1, 16)
	const n = 50000
	over := 0
	for i := 0; i < n; i++ {
		x := r.Pareto(1, 2)
		if x < 1 {
			t.Fatalf("Pareto below xm: %v", x)
		}
		if x > 10 {
			over++
		}
	}
	// P(X > 10) = (1/10)^2 = 1%.
	frac := float64(over) / n
	if frac < 0.005 || frac > 0.02 {
		t.Fatalf("Pareto tail mass %v, want ~0.01", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(1, 17)
	for _, mean := range []float64{0.5, 3, 20, 200} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		tol := 3 * math.Sqrt(mean/float64(n)) * 3
		if tol < 0.05 {
			tol = 0.05
		}
		if math.Abs(got-mean) > tol+mean*0.02 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
	if got := r.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d", got)
	}
}

func TestBinomialMeanAndBounds(t *testing.T) {
	r := New(1, 18)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {1000, 0.01}, {500, 0.9}} {
		const trials = 20000
		sum := 0
		for i := 0; i < trials; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, k)
			}
			sum += k
		}
		want := float64(tc.n) * tc.p
		got := float64(sum) / trials
		if math.Abs(got-want) > want*0.05+0.3 {
			t.Fatalf("Binomial(%d,%v) mean %v, want %v", tc.n, tc.p, got, want)
		}
	}
	if r.Binomial(10, 0) != 0 || r.Binomial(10, 1) != 10 || r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial edge cases wrong")
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(1, 19)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Beta(2, 5)
		if x < 0 || x > 1 {
			t.Fatalf("Beta out of [0,1]: %v", x)
		}
		sum += x
	}
	want := 2.0 / 7.0
	if got := sum / n; math.Abs(got-want) > 0.01 {
		t.Fatalf("Beta(2,5) mean %v, want %v", got, want)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(1, 20)
	for _, shape := range []float64{0.5, 1, 4.5} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		if got := sum / n; math.Abs(got-shape) > shape*0.03+0.02 {
			t.Fatalf("Gamma(%v) mean %v", shape, got)
		}
	}
}

func TestZipfRankOrdering(t *testing.T) {
	r := New(1, 21)
	z := NewZipf(100, 1.1)
	counts := make([]int, 101)
	for i := 0; i < 100000; i++ {
		k := z.Draw(r)
		if k < 1 || k > 100 {
			t.Fatalf("Zipf draw %d out of range", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("Zipf counts not decreasing: c1=%d c10=%d c100=%d", counts[1], counts[10], counts[100])
	}
}

func TestCategorical(t *testing.T) {
	r := New(1, 22)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
	if r.Categorical([]float64{0, 0}) != 0 {
		t.Fatal("all-zero weights should return 0")
	}
	if r.Categorical(nil) != 0 {
		t.Fatal("nil weights should return 0")
	}
}

func TestPickWeightedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PickWeighted(New(1, 1), []string{"a"}, []float64{1, 2})
}

func TestStreamDeterminismAndIndependence(t *testing.T) {
	root := Root(42)
	a1 := root.Derive("call/%d", 7).RNG().Uint64()
	a2 := root.Derive("call/%d", 7).RNG().Uint64()
	b := root.Derive("call/%d", 8).RNG().Uint64()
	if a1 != a2 {
		t.Fatal("same derivation path yielded different RNGs")
	}
	if a1 == b {
		t.Fatal("sibling derivations collided")
	}
	// Order independence: deriving b first must not change a.
	root2 := Root(42)
	_ = root2.Derive("call/%d", 8)
	if got := root2.Derive("call/%d", 7).RNG().Uint64(); got != a1 {
		t.Fatal("derivation depends on sibling creation order")
	}
}

func TestStreamPath(t *testing.T) {
	s := Root(1).Derive("a").Derive("b/%d", 3)
	if got := s.Path(); got != "root/a/b/3" {
		t.Fatalf("Path = %q", got)
	}
}

func TestRootFromString(t *testing.T) {
	a := RootFromString("exp1").RNG().Uint64()
	b := RootFromString("exp1").RNG().Uint64()
	c := RootFromString("exp2").RNG().Uint64()
	if a != b || a == c {
		t.Fatalf("RootFromString not stable/distinct: %d %d %d", a, b, c)
	}
}

// quickSelectMedian computes the median without pulling in the stats package
// (which depends on nothing, but keeping test deps minimal).
func quickSelectMedian(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	k := len(cp) / 2
	lo, hi := 0, len(cp)-1
	for {
		if lo == hi {
			return cp[lo]
		}
		pivot := cp[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for cp[i] < pivot {
				i++
			}
			for cp[j] > pivot {
				j--
			}
			if i <= j {
				cp[i], cp[j] = cp[j], cp[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return cp[k]
		}
	}
}
