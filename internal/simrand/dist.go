package simrand

import (
	"math"
	"sort"
)

// Normal returns a normal variate with the given mean and standard
// deviation. sigma < 0 is treated as 0.
func (r *RNG) Normal(mean, sigma float64) float64 {
	if sigma <= 0 {
		return mean
	}
	return mean + sigma*r.NormFloat64()
}

// TruncNormal returns a normal variate clamped to [lo, hi]. Clamping (rather
// than rejection) is deliberate: simulators use it for physically bounded
// quantities (loss in [0,1], non-negative latency) where the tail mass is
// tiny and a hard bound is the actual constraint.
func (r *RNG) TruncNormal(mean, sigma, lo, hi float64) float64 {
	return clamp(r.Normal(mean, sigma), lo, hi)
}

// LogNormal returns exp(N(mu, sigma)). Note mu and sigma parameterize the
// underlying normal, not the resulting distribution's mean.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// LogNormalMeanMedian returns a log-normal variate parameterized by its
// median m and a multiplicative spread s (s >= 1); roughly 68% of samples
// fall within [m/s, m*s]. This is the natural way to specify skewed network
// metrics ("median latency 40 ms, spread 1.6x").
func (r *RNG) LogNormalMeanMedian(median, spread float64) float64 {
	if median <= 0 {
		return 0
	}
	if spread <= 1 {
		return median
	}
	return r.LogNormal(math.Log(median), math.Log(spread))
}

// Exponential returns an exponential variate with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return mean * r.ExpFloat64()
}

// Pareto returns a Pareto(xm, alpha) variate: heavy-tailed, minimum xm.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return xm
	}
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// method for small means and a normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation with continuity correction.
		n := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial returns the number of successes in n Bernoulli(p) trials. For
// large n it uses a normal approximation.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n > 100 {
		mean := float64(n) * p
		sd := math.Sqrt(mean * (1 - p))
		k := int(math.Round(r.Normal(mean, sd)))
		return clampInt(k, 0, n)
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// Beta returns a Beta(a, b) variate via the ratio of gammas.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia-Tsang method.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Zipf returns a variate in [1, n] following a Zipf distribution with
// exponent s > 0 (1 is most likely). It uses inverse-CDF over the
// precomputable harmonic sum; for repeated draws prefer NewZipf.
func (r *RNG) Zipf(n int, s float64) int {
	z := NewZipf(n, s)
	return z.Draw(r)
}

// Zipfian precomputes the CDF of a Zipf(n, s) distribution for fast draws.
type Zipfian struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s.
func NewZipf(n int, s float64) *Zipfian {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipfian{cdf: cdf}
}

// Draw returns a rank in [1, n].
func (z *Zipfian) Draw(r *RNG) int {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i + 1
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as 0; if all
// weights are non-positive it returns 0.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// PickWeighted returns items[i] with probability proportional to weights[i].
// len(items) must equal len(weights).
func PickWeighted[T any](r *RNG, items []T, weights []float64) T {
	if len(items) != len(weights) {
		panic("simrand: PickWeighted length mismatch")
	}
	return items[r.Categorical(weights)]
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
