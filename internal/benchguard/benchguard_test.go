package benchguard

import "testing"

func TestIsFixed(t *testing.T) {
	for val, want := range map[string]bool{
		"2000x": true,
		"1x":    true,
		" 50x ": true,
		"1s":    false,
		"10ms":  false,
		"":      false,
		"x2000": false,
	} {
		if got := isFixed(val); got != want {
			t.Errorf("isFixed(%q) = %v, want %v", val, got, want)
		}
	}
}

// TestFixedIterationsPassesUnderFixedCount exercises the happy path: the
// test binary's own benchmark run below is always launched by `go test
// -benchtime=<N>x` in CI, so FixedIterations must not fire there. The
// rejection path is covered operationally — any time-based invocation of
// BenchmarkIngestWAL fails with the benchguard message.
func BenchmarkGuardSelf(b *testing.B) {
	FixedIterations(b)
	for i := 0; i < b.N; i++ {
	}
}
