// Package benchguard guards benchmarks whose numbers are only meaningful
// under a fixed iteration count.
//
// Go's default time-based auto-scaling (-benchtime=1s) keeps growing b.N
// until the run fills the time budget. For benchmarks that accumulate
// kernel-visible state — dirty pages from WAL writes are the canonical
// case — a large enough b.N pushes the system across a threshold (dirty
// writeback, page-cache eviction) and the benchmark silently measures the
// disk's sustained bandwidth instead of the per-operation overhead it
// claims to. BENCH_durable.json was recorded at -benchtime=2000x for
// exactly this reason; this package turns that comment-only convention
// into a loud failure.
package benchguard

import (
	"flag"
	"strings"
	"testing"
)

// FixedIterations fails the benchmark unless it was invoked with a fixed
// iteration count (-benchtime=<N>x). Call it at the top of any benchmark
// whose numbers drift under time-based scaling; a plain `go test -bench`
// sweep then fails fast with the correct invocation instead of recording
// garbage.
func FixedIterations(b *testing.B) {
	b.Helper()
	f := flag.Lookup("test.benchtime")
	if f == nil || !isFixed(f.Value.String()) {
		got := "unset"
		if f != nil {
			got = f.Value.String()
		}
		b.Fatalf("benchguard: %s needs a fixed iteration count: run with -benchtime=<N>x (e.g. -benchtime=2000x), not time-based scaling (-benchtime=%s); "+
			"auto-scaled runs push write volume past kernel dirty-page thresholds and measure disk writeback, not the code under test", b.Name(), got)
	}
}

// isFixed reports whether a -benchtime value names a fixed iteration
// count ("2000x") rather than a duration ("1s", "10ms").
func isFixed(val string) bool {
	return strings.HasSuffix(strings.TrimSpace(val), "x")
}
