package media

import (
	"math"
	"testing"
	"testing/quick"

	"usersignals/internal/simrand"
)

func good() Quality {
	return Evaluate(20, 0, 1, 4, DefaultMitigation())
}

func TestGoodConditionsGoodQuality(t *testing.T) {
	q := good()
	if q.AudioMOS < 4.0 {
		t.Fatalf("clean-path audio MOS %v, want >= 4.0", q.AudioMOS)
	}
	if q.VideoScore < 0.8 {
		t.Fatalf("clean-path video %v, want >= 0.8", q.VideoScore)
	}
	if q.MouthToEarMs > 120 {
		t.Fatalf("clean-path mouth-to-ear %v ms too high", q.MouthToEarMs)
	}
}

func TestQualityBounds(t *testing.T) {
	f := func(lat, loss, jit, bw float64) bool {
		if math.IsNaN(lat) || math.IsNaN(loss) || math.IsNaN(jit) || math.IsNaN(bw) {
			return true
		}
		if math.IsInf(lat, 0) || math.IsInf(loss, 0) || math.IsInf(jit, 0) || math.IsInf(bw, 0) {
			return true
		}
		q := Evaluate(lat, loss, jit, bw, DefaultMitigation())
		return q.AudioMOS >= 1 && q.AudioMOS <= 5 &&
			q.VideoScore >= 0 && q.VideoScore <= 1 &&
			q.MouthToEarMs >= 0 && q.ResidualLossPct >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyDegradesAudioNotVideo(t *testing.T) {
	m := DefaultMitigation()
	prev := 5.1
	for _, lat := range []float64{0, 50, 100, 150, 200, 300} {
		q := Evaluate(lat, 0.1, 1, 4, m)
		if q.AudioMOS >= prev {
			t.Fatalf("audio MOS not strictly decreasing in latency at %v ms: %v >= %v", lat, q.AudioMOS, prev)
		}
		prev = q.AudioMOS
	}
	// Video quality itself should be latency-insensitive (it is the
	// interactivity, not the picture, that suffers).
	v0 := Evaluate(0, 0.1, 1, 4, m).VideoScore
	v300 := Evaluate(300, 0.1, 1, 4, m).VideoScore
	if math.Abs(v0-v300) > 0.05 {
		t.Fatalf("video should not depend on latency: %v vs %v", v0, v300)
	}
}

func TestDelayImpairmentAccelerates(t *testing.T) {
	// The E-model Id term grows faster past ~177 ms mouth-to-ear, which is
	// what makes the Mic On curve steep then saturating.
	m := DefaultMitigation()
	drop1 := Evaluate(50, 0, 1, 4, m).AudioMOS - Evaluate(150, 0, 1, 4, m).AudioMOS
	drop2 := Evaluate(150, 0, 1, 4, m).AudioMOS - Evaluate(250, 0, 1, 4, m).AudioMOS
	if drop2 <= drop1 {
		t.Fatalf("delay impairment should accelerate: first 100ms cost %v, second %v", drop1, drop2)
	}
}

func TestLossMitigationFlattensCurve(t *testing.T) {
	on := DefaultMitigation()
	off := Mitigation{AdaptiveJitterBuf: true, VideoRateAdaptation: true}
	base := Evaluate(20, 0, 1, 4, on).AudioMOS
	at2on := Evaluate(20, 2, 1, 4, on).AudioMOS
	at2off := Evaluate(20, 2, 1, 4, off).AudioMOS
	dropOn := base - at2on
	dropOff := base - at2off
	if dropOn > 0.4 {
		t.Fatalf("with safeguards, 2%% loss cost %v MOS; should be small", dropOn)
	}
	if dropOff < 2*dropOn {
		t.Fatalf("ablation: without safeguards 2%% loss cost %v, with %v; expected much worse", dropOff, dropOn)
	}
}

func TestHighLossEventuallyHurts(t *testing.T) {
	m := DefaultMitigation()
	at2 := Evaluate(20, 2, 1, 4, m).AudioMOS
	at6 := Evaluate(20, 6, 1, 4, m).AudioMOS
	if at2-at6 < 0.3 {
		t.Fatalf("heavy loss should overwhelm FEC: MOS at 2%%=%v, 6%%=%v", at2, at6)
	}
}

func TestJitterHurtsVideoMoreThanAudio(t *testing.T) {
	m := DefaultMitigation()
	q0 := Evaluate(20, 0.1, 1, 4, m)
	q10 := Evaluate(20, 0.1, 10, 4, m)
	videoDrop := (q0.VideoScore - q10.VideoScore) / q0.VideoScore
	audioDrop := (q0.AudioMOS - q10.AudioMOS) / q0.AudioMOS
	if videoDrop < 0.15 {
		t.Fatalf("10 ms jitter should visibly hurt video (Fig 1): drop %v", videoDrop)
	}
	if videoDrop <= audioDrop {
		t.Fatalf("jitter should hurt video (%v) more than audio (%v)", videoDrop, audioDrop)
	}
}

func TestAdaptiveJitterBufferTradesDelayForLoss(t *testing.T) {
	adaptive := Mitigation{FEC: true, Concealment: true, AdaptiveJitterBuf: true, VideoRateAdaptation: true}
	fixed := adaptive
	fixed.AdaptiveJitterBuf = false
	// Under heavy jitter the adaptive buffer grows (more delay) but keeps
	// late loss low; the fixed buffer keeps delay but leaks late packets.
	qa := Evaluate(20, 0, 40, 4, adaptive)
	qf := Evaluate(20, 0, 40, 4, fixed)
	if qa.MouthToEarMs <= qf.MouthToEarMs {
		t.Fatalf("adaptive buffer should add delay under jitter: %v <= %v", qa.MouthToEarMs, qf.MouthToEarMs)
	}
	if qa.ResidualLossPct >= qf.ResidualLossPct {
		t.Fatalf("adaptive buffer should reduce late loss: %v >= %v", qa.ResidualLossPct, qf.ResidualLossPct)
	}
}

func TestBandwidthLadder(t *testing.T) {
	m := DefaultMitigation()
	var prevScore, prevRate float64
	for _, bw := range []float64{0.3, 0.8, 1.5, 2.5, 4} {
		q := Evaluate(20, 0.1, 1, bw, m)
		if q.VideoBitrateMbps < prevRate {
			t.Fatalf("bitrate ladder not monotone at bw=%v", bw)
		}
		if q.VideoScore+1e-9 < prevScore {
			t.Fatalf("video score not monotone in bandwidth at bw=%v: %v < %v", bw, q.VideoScore, prevScore)
		}
		prevScore, prevRate = q.VideoScore, q.VideoBitrateMbps
	}
	// Paper: at 1 Mbps quality is within a few percent of the 4 Mbps best.
	at1 := Evaluate(20, 0.1, 1, 1, m)
	at4 := Evaluate(20, 0.1, 1, 4, m)
	if rel := (at4.VideoScore - at1.VideoScore) / at4.VideoScore; rel > 0.25 {
		t.Fatalf("1 Mbps video %v vs 4 Mbps %v: gap %v too large", at1.VideoScore, at4.VideoScore, rel)
	}
	// Audio should be bandwidth-insensitive across the broadband range.
	if math.Abs(at1.AudioMOS-at4.AudioMOS) > 0.05 {
		t.Fatalf("audio should not care about bandwidth: %v vs %v", at1.AudioMOS, at4.AudioMOS)
	}
}

func TestNoRateAdaptationSelfCongests(t *testing.T) {
	on := DefaultMitigation()
	off := on
	off.VideoRateAdaptation = false
	qOn := Evaluate(20, 0.1, 1, 1, on)
	qOff := Evaluate(20, 0.1, 1, 1, off)
	if qOff.VideoScore >= qOn.VideoScore {
		t.Fatalf("fixed-rate sender on a 1 Mbps link should crater: %v >= %v", qOff.VideoScore, qOn.VideoScore)
	}
}

func TestRToMOSBounds(t *testing.T) {
	if got := rToMOS(-10); got != 1 {
		t.Fatalf("rToMOS(-10) = %v", got)
	}
	if got := rToMOS(150); got != 4.5 {
		t.Fatalf("rToMOS(150) = %v", got)
	}
	if got := rToMOS(93.2); got < 4.3 || got > 4.6 {
		t.Fatalf("rToMOS(93.2) = %v, want ~4.4", got)
	}
}

func TestPacketSimMatchesAnalyticResidual(t *testing.T) {
	// The analytic residual-loss model must agree with first-principles
	// packet accounting (independent loss, group FEC) within sampling
	// tolerance across the loss range of interest.
	ps := DefaultPacketSim()
	r := simrand.New(31, 37)
	for _, lossPct := range []float64{0.5, 1, 2, 4, 8} {
		totalSent, totalResidual := 0, 0
		for i := 0; i < 400; i++ { // 400 windows = 100k packets
			res := ps.Run(r, lossPct, 0, 100, true)
			totalSent += res.Sent
			totalResidual += res.ResidualLost
		}
		simResidual := 100 * float64(totalResidual) / float64(totalSent)
		analytic := lossPct * (1 - fecRecovery(lossPct))
		if diff := math.Abs(simResidual - analytic); diff > 0.25+analytic*0.25 {
			t.Fatalf("loss %v%%: packet-sim residual %v vs analytic %v", lossPct, simResidual, analytic)
		}
	}
}

func TestPacketSimNoFEC(t *testing.T) {
	ps := DefaultPacketSim()
	r := simrand.New(41, 43)
	totalSent, totalResidual := 0, 0
	for i := 0; i < 200; i++ {
		res := ps.Run(r, 5, 0, 100, false)
		totalSent += res.Sent
		totalResidual += res.ResidualLost
		if res.RecoveredFEC != 0 {
			t.Fatal("FEC recoveries reported with FEC off")
		}
	}
	got := 100 * float64(totalResidual) / float64(totalSent)
	if math.Abs(got-5) > 0.5 {
		t.Fatalf("without FEC residual %v, want ~5", got)
	}
}

func TestPacketSimJitterLateLoss(t *testing.T) {
	ps := DefaultPacketSim()
	r := simrand.New(51, 53)
	res := ps.Run(r, 0, 30, 30, false)
	// Buffer of one sigma: ~16% of packets late.
	frac := float64(res.LostLate) / float64(res.Sent)
	if frac < 0.08 || frac > 0.25 {
		t.Fatalf("late-loss fraction %v, want ~0.16", frac)
	}
	// And the analytic lateLoss should agree.
	if analytic := lateLoss(30, 30); math.Abs(analytic-100*frac) > 6 {
		t.Fatalf("analytic late loss %v vs simulated %v", analytic, 100*frac)
	}
}

func TestPacketSimDefaultsApplied(t *testing.T) {
	var ps PacketSim // all zero: defaults kick in inside Run
	r := simrand.New(61, 67)
	res := ps.Run(r, 0, 0, 50, true)
	if res.Sent != 250 {
		t.Fatalf("default window should send 250 packets, got %d", res.Sent)
	}
	if res.ResidualLost != 0 || res.ResidualPct != 0 {
		t.Fatalf("lossless run has residual %+v", res)
	}
}

func TestResidualAccounting(t *testing.T) {
	ps := DefaultPacketSim()
	r := simrand.New(71, 73)
	res := ps.Run(r, 10, 20, 40, true)
	if res.ResidualLost != res.LostNetwork+res.LostLate-res.RecoveredFEC {
		t.Fatalf("accounting identity violated: %+v", res)
	}
	if res.ResidualPct < 0 || res.ResidualPct > 100 {
		t.Fatalf("residual pct out of range: %v", res.ResidualPct)
	}
}
