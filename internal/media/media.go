// Package media models the conferencing application's media transport: how
// raw network conditions become *delivered* audio/video quality after the
// application's safeguards — loss concealment, forward error correction,
// adaptive jitter buffering, and layered video rate selection — have done
// their work.
//
// This layer is the mechanistic heart of the §3.2 findings. The paper
// observes that packet loss up to 2% barely moves engagement because
// "MS Teams is able to effectively mitigate the packet loss using
// application layer safeguards", while latency (which no safeguard can
// remove) and jitter (which inflates the playout buffer and stutters video)
// bite hard. We therefore implement the safeguards rather than the curves:
// disable them (see Mitigation) and the loss panel of Fig. 1 steepens, which
// is one of the repository's ablation benchmarks.
//
// Two implementations are provided: an analytic per-window model (Evaluate)
// derived from E-model-style impairment math, used by the large-scale call
// generator, and a packet-level simulator (PacketSim) used by tests to
// validate that the analytic shortcut agrees with first-principles packet
// accounting.
package media

import (
	"math"
)

// Quality is the delivered media quality over one telemetry window, the
// quantity users actually perceive.
type Quality struct {
	// AudioMOS estimates delivered audio quality on the 1–5 MOS scale
	// (E-model style), after concealment/FEC.
	AudioMOS float64
	// VideoScore is delivered video quality in [0, 1]: resolution layer
	// × smoothness, after rate adaptation and recovery.
	VideoScore float64
	// MouthToEarMs is the end-to-end conversational delay including the
	// jitter buffer: the quantity that makes turn-taking awkward.
	MouthToEarMs float64
	// ResidualLossPct is the loss remaining after FEC/concealment; kept
	// for diagnostics and ablation assertions.
	ResidualLossPct float64
	// VideoBitrateMbps is the selected video send rate.
	VideoBitrateMbps float64
}

// Mitigation configures the application-layer safeguards. The zero value is
// "everything off" (the ablation baseline); use DefaultMitigation for the
// production configuration.
type Mitigation struct {
	FEC                 bool // forward error correction on media streams
	Concealment         bool // packet loss concealment in the audio decoder
	AdaptiveJitterBuf   bool // jitter buffer sized to measured jitter
	VideoRateAdaptation bool // layered video rate selection vs bandwidth
}

// DefaultMitigation is the full production safeguard set.
func DefaultMitigation() Mitigation {
	return Mitigation{FEC: true, Concealment: true, AdaptiveJitterBuf: true, VideoRateAdaptation: true}
}

// Video layer ladder (Mbps): the encoder picks the highest layer fitting in
// the available budget. Index doubles as a quality score numerator.
var videoLayersMbps = []float64{0.15, 0.4, 0.8, 1.5, 2.5}

const (
	audioBitrateMbps  = 0.04 // ~40 kbps Opus-class audio
	processingDelayMs = 40   // capture + encode + decode pipeline
	fixedJitterBufMs  = 60   // non-adaptive buffer size
)

// Evaluate computes delivered quality for one window of network conditions
// under the given safeguard configuration. The inputs are netsim-style
// fields; the package does not import netsim to keep the dependency
// direction substrate-neutral.
func Evaluate(latencyMs, lossPct, jitterMs, bandwidthMbps float64, m Mitigation) Quality {
	latencyMs = math.Max(0, latencyMs)
	lossPct = clamp(lossPct, 0, 100)
	jitterMs = math.Max(0, jitterMs)
	bandwidthMbps = math.Max(0.01, bandwidthMbps)

	// --- jitter buffer ---
	// An adaptive buffer tracks ~2.5x the measured jitter (plus a floor);
	// a fixed buffer stays at its configured size and turns excess jitter
	// into late losses instead.
	var bufMs, lateLossPct float64
	if m.AdaptiveJitterBuf {
		bufMs = clamp(2.5*jitterMs+10, 20, 200)
		lateLossPct = lateLoss(jitterMs, bufMs)
	} else {
		bufMs = fixedJitterBufMs
		lateLossPct = lateLoss(jitterMs, bufMs)
	}

	// --- residual loss after recovery ---
	effLossPct := clamp(lossPct+lateLossPct, 0, 100)
	residual := effLossPct
	if m.FEC {
		residual = effLossPct * (1 - fecRecovery(effLossPct))
	}

	// --- audio (E-model style) ---
	mouthToEar := latencyMs + bufMs + processingDelayMs
	audio := audioMOS(mouthToEar, residual, m.Concealment)

	// --- video ---
	videoBudget := 0.75*bandwidthMbps - audioBitrateMbps
	var bitrate float64
	var layer int
	if m.VideoRateAdaptation {
		layer = -1
		for i := len(videoLayersMbps) - 1; i >= 0; i-- {
			if videoLayersMbps[i] <= videoBudget {
				layer = i
				break
			}
		}
		if layer < 0 {
			layer = 0
			bitrate = videoLayersMbps[0]
		} else {
			bitrate = videoLayersMbps[layer]
		}
	} else {
		// Fixed high-rate sender: great when bandwidth allows, terrible
		// otherwise (self-congestion).
		layer = len(videoLayersMbps) - 1
		bitrate = videoLayersMbps[layer]
	}
	video := videoScore(layer, bitrate, videoBudget, residual, jitterMs)

	return Quality{
		AudioMOS:         audio,
		VideoScore:       video,
		MouthToEarMs:     mouthToEar,
		ResidualLossPct:  residual,
		VideoBitrateMbps: bitrate,
	}
}

// fecGroupSize is the FEC parity group: one parity packet per group repairs
// a single in-group loss. Mirrored by PacketSim so the analytic model and
// the packet-level simulator agree exactly in expectation.
const fecGroupSize = 10

// fecRecovery is the expected fraction of lost packets recovered by FEC:
// a lost packet is repaired iff it is the only loss in its parity group,
// which under independent loss happens with probability (1-p)^(G-1).
// Consequence (and the paper's observation): ≤2% loss is almost fully
// repaired, while heavier loss increasingly clusters inside groups and
// overwhelms the parity budget.
func fecRecovery(lossPct float64) float64 {
	p := lossPct / 100
	return math.Pow(1-p, fecGroupSize-1)
}

// lateLoss converts jitter into the percentage of packets arriving after
// their playout deadline given a buffer of bufMs: tail mass of a
// normal(0, jitter) delay beyond the buffer.
func lateLoss(jitterMs, bufMs float64) float64 {
	if jitterMs <= 0 {
		return 0
	}
	z := bufMs / jitterMs
	return 100 * 0.5 * math.Erfc(z/math.Sqrt2)
}

// audioMOS maps conversational delay and residual loss to a 1–5 MOS using a
// simplified ITU-T G.107 E-model: R = 93.2 - Id(delay) - Ie(loss).
func audioMOS(mouthToEarMs, residualLossPct float64, concealment bool) float64 {
	// Delay impairment Id: negligible below ~160 ms, then growing.
	id := 0.024 * mouthToEarMs
	if mouthToEarMs > 177.3 {
		id += 0.11 * (mouthToEarMs - 177.3)
	}
	// Equipment/loss impairment Ie: concealment raises the loss robustness
	// factor Bpl substantially (Opus-with-PLC vs bare G.711).
	bpl := 4.3
	if concealment {
		bpl = 18
	}
	ie := 95 * residualLossPct / (residualLossPct + bpl)
	r := 93.2 - id - ie
	return rToMOS(r)
}

// rToMOS is the standard E-model R-to-MOS mapping.
func rToMOS(r float64) float64 {
	if r < 0 {
		return 1
	}
	if r > 100 {
		return 4.5
	}
	// The cubic dips marginally below 1 for small positive R; clamp to the
	// MOS scale.
	return clamp(1+0.035*r+r*(r-60)*(100-r)*7e-6, 1, 5)
}

// videoScore combines the selected layer, congestion overshoot, residual
// loss (freezes) and jitter (render stutter) into a [0, 1] score.
func videoScore(layer int, bitrate, budget, residualLossPct, jitterMs float64) float64 {
	// Base quality saturates with bitrate (rate-distortion): meeting-grid
	// video at 0.4 Mbps is already most of the way to 2.5 Mbps, which is
	// why the paper finds conferencing "not too bandwidth hungry".
	base := bitrate / (bitrate + 0.04)
	_ = layer // layer is kept for bookkeeping/diagnostics

	// Congestion overshoot: sending above budget destroys quality fast.
	if bitrate > budget {
		over := (bitrate - budget) / bitrate
		base *= math.Max(0, 1-1.5*over)
	}

	// Freezes: a residually lost packet corrupts a frame; intra refresh
	// recovers, but each event costs smoothness. Video is more fragile
	// than audio (no concealment for missing reference frames).
	freeze := 1 - math.Exp(-residualLossPct/2.5)

	// Jitter stutter: frames missing their render deadline. Tuned so
	// ~10 ms jitter visibly hurts (Fig. 1 middle-right).
	stutter := 1 - math.Exp(-math.Max(0, jitterMs-3)/12)

	score := base * (1 - 0.8*freeze) * (1 - 0.7*stutter)
	return clamp(score, 0, 1)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
