package media

import (
	"testing"
	"testing/quick"
)

// Monotonicity properties of the analytic quality model: these are the
// physical invariants the behaviour layer depends on.

func TestAudioMonotoneInLoss(t *testing.T) {
	m := DefaultMitigation()
	f := func(latRaw, lossRaw uint8) bool {
		lat := float64(latRaw) * 2       // 0..510 ms
		loss := float64(lossRaw%80) / 10 // 0..7.9 %
		q1 := Evaluate(lat, loss, 2, 3.5, m)
		q2 := Evaluate(lat, loss+1, 2, 3.5, m)
		return q2.AudioMOS <= q1.AudioMOS+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestAudioMonotoneInLatency(t *testing.T) {
	m := DefaultMitigation()
	f := func(latRaw, lossRaw uint8) bool {
		lat := float64(latRaw) * 2
		loss := float64(lossRaw%30) / 10
		q1 := Evaluate(lat, loss, 2, 3.5, m)
		q2 := Evaluate(lat+20, loss, 2, 3.5, m)
		return q2.AudioMOS <= q1.AudioMOS+1e-9 &&
			q2.MouthToEarMs >= q1.MouthToEarMs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestVideoMonotoneInBandwidth(t *testing.T) {
	m := DefaultMitigation()
	f := func(bwRaw uint8) bool {
		bw := 0.2 + float64(bwRaw)/32 // 0.2 .. 8.2 Mbps
		q1 := Evaluate(30, 0.2, 2, bw, m)
		q2 := Evaluate(30, 0.2, 2, bw+0.5, m)
		return q2.VideoScore >= q1.VideoScore-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestMitigationNeverHurtsAudio(t *testing.T) {
	// At equal conditions, turning loss safeguards on must never lower
	// audio quality.
	on := DefaultMitigation()
	off := Mitigation{AdaptiveJitterBuf: true, VideoRateAdaptation: true}
	f := func(latRaw, lossRaw, jitRaw uint8) bool {
		lat := float64(latRaw)
		loss := float64(lossRaw%60) / 10
		jit := float64(jitRaw % 30)
		qOn := Evaluate(lat, loss, jit, 3.5, on)
		qOff := Evaluate(lat, loss, jit, 3.5, off)
		return qOn.AudioMOS >= qOff.AudioMOS-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualNeverExceedsInputLoss(t *testing.T) {
	m := DefaultMitigation()
	f := func(lossRaw uint8) bool {
		loss := float64(lossRaw%100) / 5 // 0..19.8
		q := Evaluate(30, loss, 0, 3.5, m)
		// With zero jitter there is no late loss, so FEC can only reduce.
		return q.ResidualLossPct <= loss+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
