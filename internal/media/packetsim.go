package media

import (
	"usersignals/internal/simrand"
)

// PacketSim is a first-principles packet-level simulator for one audio
// stream over one telemetry window. It exists to validate the analytic
// shortcut in Evaluate: tests assert that the residual loss the analytic
// model predicts matches what actual packet accounting produces.
//
// The model: packets are sent every PacketIntervalMs; each is independently
// lost with the network loss probability; surviving packets experience a
// normally distributed jitter delay and are dropped if they miss the playout
// buffer deadline; FEC groups of GroupSize packets carry one parity packet
// that repairs a single in-group loss.
type PacketSim struct {
	PacketIntervalMs float64 // default 20 (Opus frame)
	GroupSize        int     // FEC group size, default 5
	WindowMs         float64 // default 5000 (one telemetry window)
}

// DefaultPacketSim returns the production parameterization. GroupSize
// matches the analytic model's fecGroupSize so the two agree in
// expectation.
func DefaultPacketSim() PacketSim {
	return PacketSim{PacketIntervalMs: 20, GroupSize: fecGroupSize, WindowMs: 5000}
}

// PacketResult summarizes one simulated window.
type PacketResult struct {
	Sent         int
	LostNetwork  int // lost in the network
	LostLate     int // arrived after the playout deadline
	RecoveredFEC int // repaired by parity
	ResidualLost int // unplayable after all recovery
	ResidualPct  float64
}

// Run simulates one window under the given conditions and mitigation.
func (ps PacketSim) Run(r *simrand.RNG, lossPct, jitterMs, bufMs float64, fec bool) PacketResult {
	if ps.PacketIntervalMs <= 0 {
		ps.PacketIntervalMs = 20
	}
	if ps.GroupSize <= 0 {
		ps.GroupSize = fecGroupSize
	}
	if ps.WindowMs <= 0 {
		ps.WindowMs = 5000
	}
	n := int(ps.WindowMs / ps.PacketIntervalMs)
	res := PacketResult{Sent: n}
	p := lossPct / 100

	lostInGroup := 0
	groupCount := 0
	flushGroup := func() {
		if fec && lostInGroup == 1 {
			// Single loss in the group: parity repairs it.
			res.RecoveredFEC++
			res.ResidualLost--
		}
		lostInGroup = 0
		groupCount = 0
	}

	for i := 0; i < n; i++ {
		lost := r.Bool(p)
		if lost {
			res.LostNetwork++
			res.ResidualLost++
			lostInGroup++
		} else if jitterMs > 0 {
			delay := r.Normal(0, jitterMs)
			if delay > bufMs {
				res.LostLate++
				res.ResidualLost++
				lostInGroup++ // late packets are losses to the decoder; FEC can still help
			}
		}
		groupCount++
		if groupCount == ps.GroupSize {
			flushGroup()
		}
	}
	flushGroup()
	if n > 0 {
		res.ResidualPct = 100 * float64(res.ResidualLost) / float64(n)
	}
	return res
}
