package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("non-positive requests must resolve to at least one worker")
	}
}

func TestForEachVisitsEveryUnit(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		var visited [100]atomic.Int32
		err := ForEach(workers, len(visited), func(i int) error {
			visited[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visited {
			if n := visited[i].Load(); n != 1 {
				t.Fatalf("workers=%d: unit %d visited %d times", workers, i, n)
			}
		}
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	// Serially the first failing unit's error is returned; in parallel the
	// lowest-indexed unit that actually failed before cancellation wins.
	err := ForEach(1, 50, func(i int) error {
		if i == 7 || i == 31 {
			return fmt.Errorf("unit %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "unit 7 failed" {
		t.Fatalf("serial err = %v, want unit 7's error", err)
	}
	err = ForEach(4, 50, func(i int) error {
		if i == 7 || i == 31 {
			return fmt.Errorf("unit %d failed", i)
		}
		return nil
	})
	if err == nil || (err.Error() != "unit 7 failed" && err.Error() != "unit 31 failed") {
		t.Fatalf("parallel err = %v, want a failing unit's error", err)
	}
}

func TestForEachCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEachCtx(ctx, 4, 100, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOrderedStreamPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var got []int
		err := OrderedStream(workers, 200,
			func(i int) (int, error) { return i * i, nil },
			func(i, v int) error {
				if v != i*i {
					return fmt.Errorf("unit %d carried %d", i, v)
				}
				got = append(got, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 200 {
			t.Fatalf("workers=%d: consumed %d units", workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: out of order at %d: %d", workers, i, v)
			}
		}
	}
}

func TestOrderedStreamProducerError(t *testing.T) {
	err := OrderedStream(4, 100,
		func(i int) (int, error) {
			if i == 13 {
				return 0, errors.New("boom")
			}
			return i, nil
		},
		func(i, v int) error { return nil })
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestOrderedStreamConsumerError(t *testing.T) {
	var consumed int
	err := OrderedStream(4, 100,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			consumed++
			if i == 5 {
				return errors.New("sink full")
			}
			return nil
		})
	if err == nil || err.Error() != "sink full" {
		t.Fatalf("err = %v, want sink full", err)
	}
	if consumed < 6 {
		t.Fatalf("consumed %d units before the error, want >= 6", consumed)
	}
}

func TestMap(t *testing.T) {
	out, err := Map(4, 50, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprint(i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
}

func TestChunkBounds(t *testing.T) {
	n := 2*ChunkSize + 17
	if c := Chunks(n); c != 3 {
		t.Fatalf("Chunks(%d) = %d", n, c)
	}
	covered := 0
	for i := 0; i < Chunks(n); i++ {
		lo, hi := ChunkBounds(i, n)
		if lo != covered {
			t.Fatalf("chunk %d starts at %d, want %d", i, lo, covered)
		}
		if hi <= lo || hi > n {
			t.Fatalf("chunk %d bounds [%d, %d) invalid", i, lo, hi)
		}
		covered = hi
	}
	if covered != n {
		t.Fatalf("chunks cover %d of %d items", covered, n)
	}
	if Chunks(0) != 0 {
		t.Fatal("Chunks(0) != 0")
	}
}
