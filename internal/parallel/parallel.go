// Package parallel provides the small shard-and-merge toolkit the
// generators and analysis engines use to spread deterministic work across
// cores. The design constraint throughout is reproducibility: callers shard
// work into canonically ordered units whose results are merged in unit
// order, so output is identical at any worker count — parallelism changes
// wall-clock time, never bytes. See DESIGN.md "Performance & determinism".
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean "one worker
// per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to `workers` goroutines.
// Units are claimed from a shared counter, so scheduling is dynamic, but
// fn must not depend on execution order. An error cancels the remaining
// unclaimed units; the lowest-indexed error among the units that failed is
// returned, and units already running finish first. workers <= 0 means
// GOMAXPROCS; with workers == 1 or n <= 1 fn runs inline on the caller's
// goroutine in index order.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// ForEachCtx is ForEach with context cancellation: no new unit starts once
// ctx is cancelled, and ctx.Err() is reported if nothing failed first.
func ForEachCtx(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n // index of the failing unit, for deterministic reporting
	)
	fail := func(i int, err error) {
		mu.Lock()
		if err != nil && i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := fn(cctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// item carries one produced unit through the reorder buffer.
type item[T any] struct {
	idx int
	val T
}

// OrderedStream runs produce(i) for every i in [0, n) on up to `workers`
// goroutines and delivers results to consume strictly in ascending index
// order, regardless of completion order (a reorder buffer). consume runs on
// a single goroutine; an error from either side cancels outstanding work
// and is returned (lowest failing producer index wins over a later
// consumer error). Memory is bounded: at most a few units per worker are
// in flight or parked in the buffer at once.
//
// This is the canonical-merge primitive: sharded generators produce units
// concurrently, and the merged stream is byte-identical to a serial run.
func OrderedStream[T any](workers, n int, produce func(i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := produce(i)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	// Window the producers so a slow early unit cannot let later units pile
	// up unboundedly in the pending buffer.
	window := workers * 4
	var (
		sem     = make(chan struct{}, window)
		results = make(chan item[T], window)
		cctx, cancel = context.WithCancel(context.Background())
	)
	defer cancel()

	var prodErr error
	var prodIdx = n
	var mu sync.Mutex
	fail := func(i int, err error) {
		mu.Lock()
		if i < prodIdx {
			prodErr, prodIdx = err, i
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	var next atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case sem <- struct{}{}:
				case <-cctx.Done():
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					<-sem
					return
				}
				v, err := produce(i)
				if err != nil {
					<-sem
					fail(i, err)
					return
				}
				select {
				case results <- item[T]{i, v}:
				case <-cctx.Done():
					<-sem
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Single consumer: drain completions, emit in ascending index order.
	pending := make(map[int]T, window)
	var consErr error
	want := 0
	for it := range results {
		pending[it.idx] = it.val
		for {
			v, ok := pending[want]
			if !ok {
				break
			}
			delete(pending, want)
			<-sem // unit fully retired; open the window
			if consErr == nil {
				if err := consume(want, v); err != nil {
					consErr = err
					cancel()
				}
			}
			want++
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if prodErr != nil {
		return prodErr
	}
	return consErr
}

// Map runs fn(i) for every i in [0, n) on up to `workers` goroutines and
// returns the results indexed by unit: the gather half of shard-and-merge
// when every result is needed at once (e.g. per-shard accumulators merged
// in shard order afterwards).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ChunkSize is the canonical shard granularity for record-sharded analyses.
// Chunk boundaries depend only on input length — never on worker count — so
// per-chunk accumulators merge in the same order (and produce bit-identical
// floating-point results) whether the chunks ran on 1 goroutine or 64.
const ChunkSize = 2048

// Chunks returns the number of ChunkSize-sized shards covering n items.
func Chunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + ChunkSize - 1) / ChunkSize
}

// ChunkBounds returns the half-open [lo, hi) record range of chunk i.
func ChunkBounds(i, n int) (lo, hi int) {
	lo = i * ChunkSize
	hi = lo + ChunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}
