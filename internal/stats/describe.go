// Package stats implements the descriptive and inferential statistics used by
// the measurement pipelines: summary statistics, binning, correlation,
// regression, bootstrap confidence intervals, smoothing, and peak detection.
//
// All functions are pure and operate on float64 slices. NaN inputs are the
// caller's responsibility unless a function documents otherwise; empty inputs
// return NaN (for point statistics) or empty results (for vector ones) so
// that missing data propagates visibly instead of silently becoming zero.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or NaN if len < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation, or NaN if len < 2.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs (average of middle two for even lengths),
// or NaN for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics (the same convention as numpy's
// default). xs is not modified. Returns NaN for empty input; q is clamped to
// [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantilesOf returns several quantiles in one sort. qs values are clamped to
// [0, 1]; the result is aligned with qs.
func QuantilesOf(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P95 returns the 95th percentile, the tail statistic the paper's telemetry
// client reports alongside mean and median.
func P95(xs []float64) float64 {
	return Quantile(xs, 0.95)
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs (0 for empty input).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Winsorize returns a copy of xs with values below the lo-quantile raised to
// it and values above the hi-quantile lowered to it. Used to tame the
// outlier sessions ("users who stay long after everyone left") that the
// paper's Presence definition guards against.
func Winsorize(xs []float64, loQ, hiQ float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	qs := QuantilesOf(xs, loQ, hiQ)
	lo, hi := qs[0], qs[1]
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = Clamp(x, lo, hi)
	}
	return out
}

// Summary bundles the per-session aggregate trio the telemetry client emits.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P95    float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary in a single pass plus one sort.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{N: 0, Mean: nan, Median: nan, P95: nan, Min: nan, Max: nan, StdDev: nan}
	}
	qs := QuantilesOf(xs, 0.5, 0.95)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: qs[0],
		P95:    qs[1],
		Min:    Min(xs),
		Max:    Max(xs),
		StdDev: StdDev(xs),
	}
}

// Normalize returns xs linearly rescaled to [0, 1]; constant input maps to
// all zeros. Used for the paper's "normalized engagement" axis in Fig. 4.
func Normalize(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	lo, hi := Min(xs), Max(xs)
	out := make([]float64, len(xs))
	if hi == lo {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}
