package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation between xs and ys,
// or NaN if either series is constant or shorter than 2. The slices must
// have equal length.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return math.NaN(), fmt.Errorf("stats: Pearson length mismatch: %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return math.NaN(), nil
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN(), nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation: Pearson correlation of the
// rank transforms, with average ranks for ties. Robust to the monotone but
// non-linear dose-response shapes in the engagement data.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return math.NaN(), fmt.Errorf("stats: Spearman length mismatch: %d vs %d", len(xs), len(ys))
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based ranks of xs, with ties receiving the average of
// the ranks they span.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// positions i..j share the same value; average rank.
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// KendallTau returns Kendall's tau-b rank correlation, with tie correction.
// O(n^2); intended for binned series (tens of points), where it doubles as a
// trend-direction test: tau near +1 or -1 means monotone.
func KendallTau(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return math.NaN(), fmt.Errorf("stats: KendallTau length mismatch: %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return math.NaN(), nil
	}
	var concordant, discordant, tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// double tie: contributes to neither denominator term
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if denom == 0 {
		return math.NaN(), nil
	}
	return (concordant - discordant) / denom, nil
}

// TrendSlope fits a least-squares line to (xs, ys) and returns its slope,
// the cheap workhorse for "does engagement fall with latency".
func TrendSlope(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return math.NaN(), fmt.Errorf("stats: TrendSlope length mismatch: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return math.NaN(), nil
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return math.NaN(), nil
	}
	return sxy / sxx, nil
}
