package stats

import (
	"math"
	"testing"

	"usersignals/internal/simrand"
)

func forestTrainingSet(seed uint64, n int) ([][]float64, []float64) {
	r := simrand.New(seed, seed+1)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := r.Range(0, 10)
		b := r.Range(-5, 5)
		c := r.Range(0, 1)
		X[i] = []float64{a, b, c}
		// Non-linear target with an interaction and noise.
		y[i] = 2*a + b*b + 5*c*a/10 + r.Normal(0, 0.5)
	}
	return X, y
}

func TestForestBeatsSingleTreeOnNoise(t *testing.T) {
	X, y := forestTrainingSet(1, 1500)
	Xtest, ytest := forestTrainingSet(2, 500)

	tree, err := FitTree(X, y, TreeOptions{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := FitForest(X, y, ForestOptions{Trees: 30, Tree: TreeOptions{MaxDepth: 6}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var treeErr, forestErr float64
	for i := range Xtest {
		treeErr += math.Abs(tree.Predict(Xtest[i]) - ytest[i])
		forestErr += math.Abs(forest.Predict(Xtest[i]) - ytest[i])
	}
	// The ensemble should at least match the single tree out of sample
	// (variance reduction); allow a small tolerance.
	if forestErr > treeErr*1.05 {
		t.Fatalf("forest MAE %v worse than tree %v", forestErr/500, treeErr/500)
	}
	if forest.Size() != 30 {
		t.Fatalf("size = %d", forest.Size())
	}
}

func TestForestDeterministic(t *testing.T) {
	X, y := forestTrainingSet(5, 300)
	a, err := FitForest(X, y, ForestOptions{Trees: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitForest(X, y, ForestOptions{Trees: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{float64(i) / 5, float64(i%7) - 3, float64(i % 2)}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed, different forests")
		}
	}
	c, err := FitForest(X, y, ForestOptions{Trees: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 50 && same; i++ {
		x := []float64{float64(i) / 5, 0, 0}
		if a.Predict(x) != c.Predict(x) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical forests")
	}
}

func TestForestErrors(t *testing.T) {
	if _, err := FitForest(nil, nil, ForestOptions{}); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := FitForest([][]float64{{1}}, []float64{1, 2}, ForestOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestForestDefaultsAndEdges(t *testing.T) {
	X, y := forestTrainingSet(7, 200)
	f, err := FitForest(X, y, ForestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 25 {
		t.Fatalf("default size = %d", f.Size())
	}
	// Short and nil feature vectors must not panic.
	_ = f.Predict(nil)
	_ = f.Predict([]float64{1})
	// Empty forest predicts zero.
	var empty Forest
	if empty.Predict([]float64{1, 2, 3}) != 0 {
		t.Fatal("empty forest should predict 0")
	}
}
