package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// RegressionTree is a CART-style regression tree: axis-aligned binary
// splits chosen to minimize squared error, grown greedily to a depth and
// leaf-size limit. It is the non-linear counterpart to FitRidge for the §5
// MOS predictor — engagement/quality relations have knees and plateaus
// that a linear model smooths over.
type RegressionTree struct {
	root *treeNode
	p    int // feature count
}

type treeNode struct {
	// leaf
	value float64
	n     int
	// split
	feature     int
	threshold   float64
	left, right *treeNode
}

func (n *treeNode) isLeaf() bool { return n.left == nil }

// TreeOptions bounds tree growth.
type TreeOptions struct {
	// MaxDepth limits tree height (default 6).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 8).
	MinLeaf int
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 6
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 8
	}
	return o
}

// FitTree grows a regression tree on X (row-major) and targets y.
func FitTree(X [][]float64, y []float64, opts TreeOptions) (*RegressionTree, error) {
	if len(X) == 0 {
		return nil, errors.New("stats: FitTree with no observations")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("stats: FitTree rows %d != targets %d", len(X), len(y))
	}
	p := len(X[0])
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("stats: FitTree row %d has %d features, want %d", i, len(row), p)
		}
	}
	opts = opts.withDefaults()
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t := &RegressionTree{p: p}
	t.root = grow(X, y, idx, opts, 0)
	return t, nil
}

// grow builds a subtree over the rows in idx (which it may reorder).
func grow(X [][]float64, y []float64, idx []int, opts TreeOptions, depth int) *treeNode {
	n := len(idx)
	mean, sse := meanSSE(y, idx)
	node := &treeNode{value: mean, n: n}
	if depth >= opts.MaxDepth || n < 2*opts.MinLeaf || sse <= 1e-12 {
		return node
	}

	bestGain := 0.0
	bestFeature := -1
	bestThreshold := 0.0
	p := len(X[0])
	sorted := make([]int, n)
	for f := 0; f < p; f++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return X[sorted[a]][f] < X[sorted[b]][f] })
		// Incremental split scan: maintain left/right sums.
		var lSum, lSq float64
		rSum, rSq := 0.0, 0.0
		for _, i := range sorted {
			rSum += y[i]
			rSq += y[i] * y[i]
		}
		lN := 0
		for k := 0; k < n-1; k++ {
			i := sorted[k]
			lSum += y[i]
			lSq += y[i] * y[i]
			rSum -= y[i]
			rSq -= y[i] * y[i]
			lN++
			rN := n - lN
			if lN < opts.MinLeaf || rN < opts.MinLeaf {
				continue
			}
			// Skip ties: can't split between equal feature values.
			if X[sorted[k]][f] == X[sorted[k+1]][f] {
				continue
			}
			lSSE := lSq - lSum*lSum/float64(lN)
			rSSE := rSq - rSum*rSum/float64(rN)
			gain := sse - lSSE - rSSE
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeature = f
				bestThreshold = (X[sorted[k]][f] + X[sorted[k+1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return node
	}

	var left, right []int
	for _, i := range idx {
		if X[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = grow(X, y, left, opts, depth+1)
	node.right = grow(X, y, right, opts, depth+1)
	return node
}

func meanSSE(y []float64, idx []int) (mean, sse float64) {
	var sum, sq float64
	for _, i := range idx {
		sum += y[i]
		sq += y[i] * y[i]
	}
	n := float64(len(idx))
	mean = sum / n
	return mean, sq - sum*sum/n
}

// Predict evaluates the tree on one feature vector. Missing trailing
// features read as 0.
func (t *RegressionTree) Predict(x []float64) float64 {
	node := t.root
	for !node.isLeaf() {
		v := 0.0
		if node.feature < len(x) {
			v = x[node.feature]
		}
		if v <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value
}

// Depth returns the height of the tree (0 for a stump).
func (t *RegressionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n.isLeaf() {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// Leaves returns the number of leaf nodes.
func (t *RegressionTree) Leaves() int { return leavesOf(t.root) }

func leavesOf(n *treeNode) int {
	if n.isLeaf() {
		return 1
	}
	return leavesOf(n.left) + leavesOf(n.right)
}
