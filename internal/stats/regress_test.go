package stats

import (
	"math"
	"testing"

	"usersignals/internal/simrand"
)

func TestFitOLSExact(t *testing.T) {
	// y = 3 + 2*x0 - x1, exactly.
	X := [][]float64{{0, 0}, {1, 0}, {0, 1}, {2, 3}, {5, 1}, {4, 4}}
	y := make([]float64, len(X))
	for i, row := range X {
		y[i] = 3 + 2*row[0] - row[1]
	}
	m, err := FitOLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Intercept, 3, 1e-9) || !almostEq(m.Coef[0], 2, 1e-9) || !almostEq(m.Coef[1], -1, 1e-9) {
		t.Fatalf("model = %+v", m)
	}
	if !almostEq(m.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v", m.R2)
	}
	if got := m.Predict([]float64{10, 2}); !almostEq(got, 21, 1e-9) {
		t.Fatalf("Predict = %v", got)
	}
}

func TestFitOLSNoisy(t *testing.T) {
	r := simrand.New(4, 2)
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0 := r.Range(0, 10)
		x1 := r.Range(-5, 5)
		X[i] = []float64{x0, x1}
		y[i] = 1.5 + 0.7*x0 - 0.3*x1 + r.Normal(0, 0.5)
	}
	m, err := FitOLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Intercept, 1.5, 0.1) || !almostEq(m.Coef[0], 0.7, 0.03) || !almostEq(m.Coef[1], -0.3, 0.03) {
		t.Fatalf("noisy fit = %+v", m)
	}
	if m.R2 < 0.8 {
		t.Fatalf("R2 = %v, expected strong fit", m.R2)
	}
}

func TestFitRidgeHandlesCollinearity(t *testing.T) {
	// x1 == x0: OLS normal equations are singular; ridge is not.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	if _, err := FitOLS(X, y); err == nil {
		t.Fatal("OLS on collinear features should fail")
	}
	m, err := FitRidge(X, y, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Ridge splits the weight across the duplicated feature.
	if !almostEq(m.Coef[0], m.Coef[1], 1e-6) {
		t.Fatalf("ridge coefs %v should be symmetric", m.Coef)
	}
	if got := m.Predict([]float64{5, 5}); math.Abs(got-10) > 0.5 {
		t.Fatalf("ridge prediction %v, want ~10", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitOLS(nil, nil); err == nil {
		t.Fatal("empty fit should error")
	}
	if _, err := FitOLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("row/target mismatch should error")
	}
	if _, err := FitOLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestNegativeLambdaTreatedAsZero(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{1, 3, 5, 7}
	m, err := FitRidge(X, y, -5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], 2, 1e-9) {
		t.Fatalf("coef = %v", m.Coef[0])
	}
}

func TestPredictAllAndErrors(t *testing.T) {
	m := &LinearModel{Intercept: 1, Coef: []float64{2}}
	preds := m.PredictAll([][]float64{{0}, {1}, {2}})
	want := []float64{1, 3, 5}
	for i := range want {
		if preds[i] != want[i] {
			t.Fatalf("PredictAll = %v", preds)
		}
	}
	mae, err := MAE(preds, []float64{1, 4, 5})
	if err != nil || !almostEq(mae, 1.0/3.0, 1e-12) {
		t.Fatalf("MAE = %v err=%v", mae, err)
	}
	rmse, err := RMSE(preds, []float64{1, 4, 5})
	if err != nil || !almostEq(rmse, math.Sqrt(1.0/3.0), 1e-12) {
		t.Fatalf("RMSE = %v err=%v", rmse, err)
	}
	if _, err := MAE(preds, want[:1]); err == nil {
		t.Fatal("MAE mismatch should error")
	}
	if _, err := RMSE(preds, want[:1]); err == nil {
		t.Fatal("RMSE mismatch should error")
	}
	if v, _ := MAE(nil, nil); !math.IsNaN(v) {
		t.Fatal("empty MAE should be NaN")
	}
}

func TestPredictIgnoresExtraFeatures(t *testing.T) {
	m := &LinearModel{Intercept: 0, Coef: []float64{1, 1}}
	if got := m.Predict([]float64{1, 2, 99}); got != 3 {
		t.Fatalf("Predict with extra features = %v", got)
	}
	if got := m.Predict([]float64{1}); got != 1 {
		t.Fatalf("Predict with short vector = %v", got)
	}
}
