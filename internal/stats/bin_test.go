package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinnerIndex(t *testing.T) {
	b := NewBinner(0, 100, 10)
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {9.99, 0}, {10, 1}, {55, 5}, {99.99, 9},
		{100, -1}, {-0.01, -1}, {math.NaN(), -1},
	}
	for _, c := range cases {
		if got := b.Index(c.x); got != c.want {
			t.Fatalf("Index(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBinnerCenters(t *testing.T) {
	b := NewBinner(0, 10, 5)
	want := []float64{1, 3, 5, 7, 9}
	for i, w := range want {
		if got := b.Center(i); got != w {
			t.Fatalf("Center(%d) = %v, want %v", i, got, w)
		}
	}
	if got := b.Width(); got != 2 {
		t.Fatalf("Width = %v", got)
	}
	cs := b.Centers()
	if len(cs) != 5 || cs[2] != 5 {
		t.Fatalf("Centers = %v", cs)
	}
}

func TestBinnerPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewBinner(0, 10, 0) },
		func() { NewBinner(5, 5, 3) },
		func() { NewBinner(10, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBinnerIndexAlwaysInRange(t *testing.T) {
	b := NewBinner(-3, 7, 13)
	f := func(x float64) bool {
		i := b.Index(x)
		if i == -1 {
			return math.IsNaN(x) || x < -3 || x >= 7
		}
		return i >= 0 && i < 13 && x >= -3 && x < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinMeans(t *testing.T) {
	b := NewBinner(0, 30, 3)
	xs := []float64{5, 6, 15, 25, 26, -1, 100}
	ys := []float64{10, 20, 7, 1, 3, 999, 999}
	s, err := BinMeans(b, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count[0] != 2 || s.Count[1] != 1 || s.Count[2] != 2 {
		t.Fatalf("counts = %v", s.Count)
	}
	if s.Y[0] != 15 || s.Y[1] != 7 || s.Y[2] != 2 {
		t.Fatalf("means = %v", s.Y)
	}
	if _, err := BinMeans(b, xs, ys[:2]); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestBinnedSeriesNonEmpty(t *testing.T) {
	b := NewBinner(0, 30, 3)
	xs := []float64{5, 25}
	ys := []float64{1, 2}
	s, _ := BinMeans(b, xs, ys)
	ne := s.NonEmpty()
	if len(ne.X) != 2 || ne.X[0] != 5 || ne.X[1] != 25 {
		t.Fatalf("NonEmpty = %+v", ne)
	}
}

func TestBinMeans2D(t *testing.T) {
	xb := NewBinner(0, 2, 2)
	yb := NewBinner(0, 2, 2)
	xs := []float64{0.5, 0.5, 1.5, 1.5}
	ys := []float64{0.5, 1.5, 0.5, 1.5}
	zs := []float64{10, 20, 30, 40}
	g, err := BinMeans2D(xb, yb, xs, ys, zs)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mean[0][0] != 10 || g.Mean[0][1] != 20 || g.Mean[1][0] != 30 || g.Mean[1][1] != 40 {
		t.Fatalf("grid = %v", g.Mean)
	}
	best, worst, ok := g.BestWorst()
	if !ok || best != 40 || worst != 10 {
		t.Fatalf("BestWorst = %v %v %v", best, worst, ok)
	}
	if _, err := BinMeans2D(xb, yb, xs, ys, zs[:2]); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestBestWorstEmpty(t *testing.T) {
	g, _ := BinMeans2D(NewBinner(0, 1, 2), NewBinner(0, 1, 2), nil, nil, nil)
	if _, _, ok := g.BestWorst(); ok {
		t.Fatal("empty grid should report !ok")
	}
}

func TestHistogram(t *testing.T) {
	b := NewBinner(0, 10, 2)
	h := Histogram(b, []float64{1, 2, 3, 7, 8, -5, 50})
	if h[0] != 3 || h[1] != 2 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	b := NewBinner(0, 1, 7)
	f := func(raw []float64) bool {
		h := Histogram(b, raw)
		total := 0
		for _, c := range h {
			total += c
		}
		inRange := 0
		for _, x := range raw {
			if x >= 0 && x < 1 && !math.IsNaN(x) {
				inRange++
			}
		}
		return total == inRange
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
