package stats

import (
	"math"
	"sort"

	"usersignals/internal/simrand"
)

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// BootstrapCI estimates a percentile confidence interval for statistic f of
// xs by resampling with replacement. conf is the coverage (e.g. 0.95);
// rounds is the number of bootstrap resamples. Returns a degenerate interval
// for empty input.
func BootstrapCI(r *simrand.RNG, xs []float64, f func([]float64) float64, conf float64, rounds int) Interval {
	if len(xs) == 0 || rounds <= 0 {
		nan := math.NaN()
		return Interval{Lo: nan, Hi: nan}
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	estimates := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for b := 0; b < rounds; b++ {
		for i := range resample {
			resample[i] = xs[r.Intn(len(xs))]
		}
		estimates[b] = f(resample)
	}
	sort.Float64s(estimates)
	alpha := (1 - conf) / 2
	return Interval{
		Lo: quantileSorted(estimates, alpha),
		Hi: quantileSorted(estimates, 1-alpha),
	}
}

// SubsampleStat applies statistic f to repeated uniform subsamples of xs at
// the given fraction and returns the per-round values. This is the Fig. 7
// stability check: "monthly medians with 95% and 90% of the data picked
// uniformly at random closely follow the full-series medians".
func SubsampleStat(r *simrand.RNG, xs []float64, frac float64, f func([]float64) float64, rounds int) []float64 {
	if len(xs) == 0 || rounds <= 0 {
		return nil
	}
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	k := int(math.Round(frac * float64(len(xs))))
	if k < 1 {
		k = 1
	}
	out := make([]float64, rounds)
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sub := make([]float64, k)
	for b := 0; b < rounds; b++ {
		// Partial Fisher-Yates: choose k distinct indices.
		for i := 0; i < k; i++ {
			j := i + r.Intn(len(idx)-i)
			idx[i], idx[j] = idx[j], idx[i]
			sub[i] = xs[idx[i]]
		}
		out[b] = f(sub)
	}
	return out
}
