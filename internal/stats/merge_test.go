package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// The merge property: splitting a stream at any point, accumulating the two
// halves independently, and merging must agree with accumulating the whole
// stream in order. This is what licenses shard-and-merge parallelism — if it
// held only approximately, parallel analyses would drift from serial ones.

// quickCfg bounds the generated streams so testing/quick stays fast while
// still exercising empty and single-element halves.
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(60)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.NormFloat64() * 10
			}
			vals[0] = reflect.ValueOf(xs)
			vals[1] = reflect.ValueOf(r.Intn(n + 1)) // split point in [0, n]
		},
	}
}

func approxEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func TestOnlineMergeProperty(t *testing.T) {
	prop := func(xs []float64, split int) bool {
		var whole, left, right Online
		whole.AddAll(xs)
		left.AddAll(xs[:split])
		right.AddAll(xs[split:])
		left.Merge(right)
		return left.N() == whole.N() &&
			approxEq(left.Mean(), whole.Mean()) &&
			approxEq(left.Variance(), whole.Variance()) &&
			approxEq(left.Sum(), whole.Sum()) &&
			approxEq(left.Min(), whole.Min()) &&
			approxEq(left.Max(), whole.Max())
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestHistMergeProperty(t *testing.T) {
	b := NewBinner(-30, 30, 12)
	prop := func(xs []float64, split int) bool {
		whole, left, right := NewHist(b), NewHist(b), NewHist(b)
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:split] {
			left.Add(x)
		}
		for _, x := range xs[split:] {
			right.Add(x)
		}
		if err := left.Merge(right); err != nil {
			return false
		}
		return reflect.DeepEqual(left.Counts, whole.Counts)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestBinAccMergeProperty(t *testing.T) {
	b := NewBinner(-30, 30, 10)
	prop := func(xs []float64, split int) bool {
		// Pair consecutive values as (x, y) observations.
		whole, left, right := NewBinAcc(b), NewBinAcc(b), NewBinAcc(b)
		add := func(a *BinAcc, vs []float64) {
			for i := 0; i+1 < len(vs); i += 2 {
				a.Add(vs[i], vs[i+1])
			}
		}
		if split%2 == 1 {
			split-- // keep pairs intact across the cut
		}
		add(whole, xs)
		add(left, xs[:split])
		add(right, xs[split:])
		if err := left.Merge(right); err != nil {
			return false
		}
		ws, ls := whole.Series(), left.Series()
		if !reflect.DeepEqual(ws.Count, ls.Count) {
			return false
		}
		for i := range ws.Y {
			if !approxEq(ws.Y[i], ls.Y[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2DAccMergeProperty(t *testing.T) {
	xb := NewBinner(-30, 30, 5)
	yb := NewBinner(-30, 30, 5)
	prop := func(xs []float64, split int) bool {
		whole, left, right := NewGrid2DAcc(xb, yb), NewGrid2DAcc(xb, yb), NewGrid2DAcc(xb, yb)
		add := func(g *Grid2DAcc, vs []float64) {
			for i := 0; i+2 < len(vs); i += 3 {
				g.Add(vs[i], vs[i+1], vs[i+2])
			}
		}
		split -= split % 3 // keep triples intact across the cut
		add(whole, xs)
		add(left, xs[:split])
		add(right, xs[split:])
		if err := left.Merge(right); err != nil {
			return false
		}
		wg, lg := whole.Grid(), left.Grid()
		if !reflect.DeepEqual(wg.Count, lg.Count) {
			return false
		}
		for i := range wg.Mean {
			for j := range wg.Mean[i] {
				if !approxEq(wg.Mean[i][j], lg.Mean[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestMergeBinnerMismatchErrors pins the degradation contract: a shard
// accumulated over the wrong binner must surface as a returned error — never
// a panic — and must leave the receiver untouched. Nil merges stay no-ops.
func TestMergeBinnerMismatchErrors(t *testing.T) {
	a, b := NewBinner(0, 10, 5), NewBinner(0, 10, 7)

	ba := NewBinAcc(a)
	ba.Add(1, 2)
	if err := ba.Merge(NewBinAcc(b)); err == nil {
		t.Fatal("BinAcc.Merge accepted a binner mismatch")
	}
	if err := ba.Merge(nil); err != nil {
		t.Fatalf("BinAcc.Merge(nil) = %v", err)
	}
	if s := ba.Series(); s.Count[0] != 1 {
		t.Fatalf("failed merge mutated the receiver: %+v", s)
	}

	ga := NewGrid2DAcc(a, a)
	if err := ga.Merge(NewGrid2DAcc(a, b)); err == nil {
		t.Fatal("Grid2DAcc.Merge accepted a grid mismatch")
	}
	if err := ga.Merge(nil); err != nil {
		t.Fatalf("Grid2DAcc.Merge(nil) = %v", err)
	}

	ha := NewHist(a)
	if err := ha.Merge(NewHist(b)); err == nil {
		t.Fatal("Hist.Merge accepted a binner mismatch")
	}
	if err := ha.Merge(nil); err != nil {
		t.Fatalf("Hist.Merge(nil) = %v", err)
	}
}

// TestBinMeansNMatchesSerial pins the sharded driver's determinism: the
// chunked result must be bit-identical at every worker count (canonical
// chunking runs the same merge sequence regardless of scheduling), and must
// agree with the unchunked serial BinMeans up to floating-point reassociation.
func TestBinMeansNMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 3*2048 + 321 // spans several chunks plus a ragged tail
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 100
		ys[i] = r.NormFloat64()
	}
	b := NewBinner(0, 100, 10)
	want, err := BinMeansN(b, xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 16} {
		got, err := BinMeansN(b, xs, ys, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: BinMeansN differs bitwise from workers=1", workers)
		}
	}
	serial, err := BinMeans(b, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Count, want.Count) {
		t.Fatal("BinMeansN bin counts differ from BinMeans")
	}
	for i := range serial.Y {
		if !approxEq(serial.Y[i], want.Y[i]) {
			t.Fatalf("bin %d: BinMeansN mean %v vs BinMeans %v", i, want.Y[i], serial.Y[i])
		}
	}
}
