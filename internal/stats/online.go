package stats

import "math"

// Online accumulates streaming summary statistics using Welford's algorithm,
// so the telemetry pipeline can aggregate millions of sessions without
// holding them in memory. The zero value is an empty accumulator ready for
// use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.sum += x
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// AddAll folds a slice of observations.
func (o *Online) AddAll(xs []float64) {
	for _, x := range xs {
		o.Add(x)
	}
}

// Merge combines another accumulator into this one (parallel reduction),
// using Chan et al.'s pairwise update.
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	delta := other.mean - o.mean
	total := n1 + n2
	o.m2 += other.m2 + delta*delta*n1*n2/total
	o.mean += delta * n2 / total
	o.sum += other.sum
	o.n += other.n
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
}

// OnlineState is the exported wire form of an Online accumulator. Every
// field of Welford state is carried verbatim, so FromState(o.State())
// reconstructs an accumulator whose future Adds and Merges are bit-identical
// to the original's — the property the cross-shard partials protocol relies
// on (Go's JSON encoder emits the shortest float64 representation that
// round-trips exactly).
type OnlineState struct {
	N    int     `json:"n,omitempty"`
	Mean float64 `json:"mean,omitempty"`
	M2   float64 `json:"m2,omitempty"`
	Min  float64 `json:"min,omitempty"`
	Max  float64 `json:"max,omitempty"`
	Sum  float64 `json:"sum,omitempty"`
}

// State exports the accumulator's internal state for transport.
func (o *Online) State() OnlineState {
	return OnlineState{N: o.n, Mean: o.mean, M2: o.m2, Min: o.min, Max: o.max, Sum: o.sum}
}

// FromState reconstructs an accumulator from exported state.
func FromState(st OnlineState) Online {
	return Online{n: st.N, mean: st.Mean, m2: st.M2, min: st.Min, max: st.Max, sum: st.Sum}
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or NaN if empty.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Sum returns the running sum.
func (o *Online) Sum() float64 { return o.sum }

// Variance returns the unbiased sample variance, or NaN if n < 2.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation, or NaN if n < 2.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the minimum observation, or NaN if empty.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the maximum observation, or NaN if empty.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// EWMA is an exponentially weighted moving average, used to model a user's
// long-term conditioning to network performance (§4.2's "wheel of time"): the
// current value is the user's expectation; deviations from it, not absolute
// values, drive sentiment.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]; higher alpha
// weights recent observations more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	return &EWMA{alpha: alpha}
}

// Add folds in one observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average, or NaN before the first Add.
func (e *EWMA) Value() float64 {
	if !e.init {
		return math.NaN()
	}
	return e.value
}

// Initialized reports whether the EWMA has seen at least one observation.
func (e *EWMA) Initialized() bool { return e.init }
