package stats

import (
	"math"
	"sort"
)

// Peak is a detected local excursion in a daily time series (e.g. a
// sentiment spike tied to a Starlink event).
type Peak struct {
	Index int     // position in the series
	Value float64 // series value at the peak
	Score float64 // robust z-score relative to the local baseline
}

// PeakOptions controls DetectPeaks.
type PeakOptions struct {
	// Window is the number of trailing points forming the baseline.
	// Default 14 (two weeks of daily data).
	Window int
	// MinScore is the minimum robust z-score for a point to qualify.
	// Default 3.
	MinScore float64
	// MinValue filters out peaks whose absolute value is below this,
	// guarding against "3-sigma on a near-zero baseline" artifacts.
	MinValue float64
	// Separation merges peaks closer than this many points, keeping the
	// strongest. Default 3.
	Separation int
}

func (o PeakOptions) withDefaults() PeakOptions {
	if o.Window <= 0 {
		o.Window = 14
	}
	if o.MinScore <= 0 {
		o.MinScore = 3
	}
	if o.Separation <= 0 {
		o.Separation = 3
	}
	return o
}

// DetectPeaks finds positive excursions in xs using a robust z-score against
// a trailing median/MAD baseline, then suppresses non-maximal neighbors.
// Peaks are returned ordered by descending score.
func DetectPeaks(xs []float64, opts PeakOptions) []Peak {
	opts = opts.withDefaults()
	if len(xs) == 0 {
		return nil
	}
	var raw []Peak
	for i := range xs {
		lo := i - opts.Window
		if lo < 0 {
			lo = 0
		}
		base := xs[lo:i]
		if len(base) < 3 {
			continue
		}
		med := Median(base)
		mad := MAD(base)
		scale := 1.4826 * mad // consistent with sigma for normal data
		if scale < 1e-9 {
			// Flat baseline: treat any rise of MinValue as a strong peak.
			if xs[i] > med && xs[i] >= opts.MinValue && xs[i]-med >= 1 {
				raw = append(raw, Peak{Index: i, Value: xs[i], Score: xs[i] - med})
			}
			continue
		}
		score := (xs[i] - med) / scale
		if score >= opts.MinScore && xs[i] >= opts.MinValue {
			raw = append(raw, Peak{Index: i, Value: xs[i], Score: score})
		}
	}
	// Non-maximum suppression within Separation.
	sort.Slice(raw, func(a, b int) bool { return raw[a].Score > raw[b].Score })
	var kept []Peak
	for _, p := range raw {
		suppressed := false
		for _, k := range kept {
			if abs(p.Index-k.Index) < opts.Separation {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, p)
		}
	}
	return kept
}

// TopPeaks returns the k highest-scoring peaks (fewer if the series has
// fewer), ordered by descending score.
func TopPeaks(xs []float64, k int, opts PeakOptions) []Peak {
	peaks := DetectPeaks(xs, opts)
	if len(peaks) > k {
		peaks = peaks[:k]
	}
	return peaks
}

// MAD returns the median absolute deviation from the median.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// MovingAverage returns the centered moving average of xs with the given
// odd window (even windows are rounded up). Edges use truncated windows.
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		out[i] = Mean(xs[lo : hi+1])
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
