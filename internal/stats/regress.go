package stats

import (
	"errors"
	"fmt"
	"math"
)

// LinearModel is a fitted linear (or ridge) regression y = b0 + b·x.
type LinearModel struct {
	Intercept float64
	Coef      []float64
	R2        float64 // coefficient of determination on the training set
	N         int
}

// ErrSingular is returned when the normal-equation matrix is not positive
// definite (collinear features and no ridge penalty).
var ErrSingular = errors.New("stats: singular design matrix")

// FitOLS fits ordinary least squares by solving the normal equations with
// Cholesky decomposition. X is row-major: X[i] is the feature vector of
// observation i. All rows must have the same length as the first.
func FitOLS(X [][]float64, y []float64) (*LinearModel, error) {
	return FitRidge(X, y, 0)
}

// FitRidge fits ridge regression with L2 penalty lambda >= 0 on the
// coefficients (the intercept is not penalized). This is the MOS predictor
// of §5: small, convex, exactly solvable, and robust to the collinearity
// between engagement metrics.
func FitRidge(X [][]float64, y []float64, lambda float64) (*LinearModel, error) {
	n := len(X)
	if n == 0 {
		return nil, errors.New("stats: FitRidge with no observations")
	}
	if n != len(y) {
		return nil, fmt.Errorf("stats: FitRidge rows %d != targets %d", n, len(y))
	}
	p := len(X[0])
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("stats: FitRidge row %d has %d features, want %d", i, len(row), p)
		}
	}
	if lambda < 0 {
		lambda = 0
	}

	// Augmented design with intercept column: dimension d = p + 1.
	d := p + 1
	// A = X'X + lambda*I (no penalty on intercept), b = X'y.
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	b := make([]float64, d)
	for i := 0; i < n; i++ {
		// feature vector with leading 1 for intercept
		xi := X[i]
		A[0][0]++
		b[0] += y[i]
		for j := 0; j < p; j++ {
			A[0][j+1] += xi[j]
			A[j+1][0] += xi[j]
			b[j+1] += xi[j] * y[i]
			for k := 0; k <= j; k++ {
				A[j+1][k+1] += xi[j] * xi[k]
				if k != j {
					A[k+1][j+1] += xi[j] * xi[k]
				}
			}
		}
	}
	for j := 1; j < d; j++ {
		A[j][j] += lambda
	}

	beta, err := solveCholesky(A, b)
	if err != nil {
		return nil, err
	}

	m := &LinearModel{Intercept: beta[0], Coef: beta[1:], N: n}
	// R^2 on training data.
	meanY := Mean(y)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		pred := m.Predict(X[i])
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else {
		m.R2 = math.NaN()
	}
	return m, nil
}

// Predict evaluates the model on one feature vector. Short vectors are an
// error in the caller; extra features are ignored.
func (m *LinearModel) Predict(x []float64) float64 {
	pred := m.Intercept
	for j, c := range m.Coef {
		if j < len(x) {
			pred += c * x[j]
		}
	}
	return pred
}

// PredictAll evaluates the model over many rows.
func (m *LinearModel) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = m.Predict(row)
	}
	return out
}

// solveCholesky solves A x = b for symmetric positive-definite A in place.
func solveCholesky(A [][]float64, b []float64) ([]float64, error) {
	d := len(A)
	// Decompose A = L L'.
	L := make([][]float64, d)
	for i := range L {
		L[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := A[i][j]
			for k := 0; k < j; k++ {
				sum -= L[i][k] * L[j][k]
			}
			if i == j {
				if sum <= 1e-12 {
					return nil, ErrSingular
				}
				L[i][j] = math.Sqrt(sum)
			} else {
				L[i][j] = sum / L[j][j]
			}
		}
	}
	// Forward substitution: L z = b.
	z := make([]float64, d)
	for i := 0; i < d; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= L[i][k] * z[k]
		}
		z[i] = sum / L[i][i]
	}
	// Back substitution: L' x = z.
	x := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < d; k++ {
			sum -= L[k][i] * x[k]
		}
		x[i] = sum / L[i][i]
	}
	return x, nil
}

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, y []float64) (float64, error) {
	if len(pred) != len(y) {
		return math.NaN(), fmt.Errorf("stats: MAE length mismatch: %d vs %d", len(pred), len(y))
	}
	if len(y) == 0 {
		return math.NaN(), nil
	}
	sum := 0.0
	for i := range y {
		sum += math.Abs(pred[i] - y[i])
	}
	return sum / float64(len(y)), nil
}

// RMSE returns the root-mean-square error between predictions and targets.
func RMSE(pred, y []float64) (float64, error) {
	if len(pred) != len(y) {
		return math.NaN(), fmt.Errorf("stats: RMSE length mismatch: %d vs %d", len(pred), len(y))
	}
	if len(y) == 0 {
		return math.NaN(), nil
	}
	sum := 0.0
	for i := range y {
		d := pred[i] - y[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(y))), nil
}
