package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of single element should be NaN")
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("Median(nil) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {0.1, 14},
		{-0.5, 10}, {1.5, 50}, // clamped
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single-element quantile = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilesOfMatchesQuantile(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		qs := []float64{0.1, 0.5, 0.9}
		multi := QuantilesOf(raw, qs...)
		for i, q := range qs {
			if !almostEq(multi[i], Quantile(raw, q), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileOrderProperty(t *testing.T) {
	// Quantile must be monotone in q and bounded by min/max.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		q25 := Quantile(raw, 0.25)
		q75 := Quantile(raw, 0.75)
		return q25 <= q75 && q25 >= Min(raw) && q75 <= Max(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{5, -2, 9, 0}
	if Min(xs) != -2 || Max(xs) != 9 || Sum(xs) != 12 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) || Sum(nil) != 0 {
		t.Fatal("empty-input behavior wrong")
	}
}

func TestWinsorize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	w := Winsorize(xs, 0.05, 0.95)
	if Max(w) >= 100 {
		t.Fatalf("outlier not capped: max %v", Max(w))
	}
	if len(w) != len(xs) {
		t.Fatal("length changed")
	}
	if Winsorize(nil, 0.1, 0.9) != nil {
		t.Fatal("empty winsorize should be nil")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if !almostEq(s.P95, 4.8, 1e-12) {
		t.Fatalf("P95 = %v", s.P95)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatalf("empty Summary = %+v", empty)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{10, 20, 30}
	n := Normalize(xs)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEq(n[i], want[i], 1e-12) {
			t.Fatalf("Normalize = %v", n)
		}
	}
	flat := Normalize([]float64{5, 5})
	if flat[0] != 0 || flat[1] != 0 {
		t.Fatalf("constant Normalize = %v", flat)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		clean := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var o Online
		o.AddAll(clean)
		return almostEq(o.Mean(), Mean(clean), 1e-6*(1+math.Abs(Mean(clean)))) &&
			almostEq(o.Variance(), Variance(clean), 1e-4*(1+Variance(clean))) &&
			o.Min() == Min(clean) && o.Max() == Max(clean) && o.N() == len(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMerge(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 9, 4, 7}
	var a, b, whole Online
	a.AddAll(xs[:3])
	b.AddAll(xs[3:])
	whole.AddAll(xs)
	a.Merge(b)
	if a.N() != whole.N() || !almostEq(a.Mean(), whole.Mean(), 1e-12) ||
		!almostEq(a.Variance(), whole.Variance(), 1e-9) ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged %+v != whole %+v", a, whole)
	}
	// Merging into empty adopts the other.
	var empty Online
	empty.Merge(whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Fatal("merge into empty failed")
	}
	// Merging empty is a no-op.
	before := whole.Mean()
	whole.Merge(Online{})
	if whole.Mean() != before {
		t.Fatal("merging empty changed state")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() || !math.IsNaN(e.Value()) {
		t.Fatal("fresh EWMA should be uninitialized")
	}
	if got := e.Add(10); got != 10 {
		t.Fatalf("first Add = %v", got)
	}
	if got := e.Add(20); got != 15 {
		t.Fatalf("second Add = %v", got)
	}
	if got := e.Add(15); got != 15 {
		t.Fatalf("third Add = %v", got)
	}
	// Bad alpha falls back to a sane default rather than breaking.
	bad := NewEWMA(-1)
	bad.Add(1)
	if !bad.Initialized() {
		t.Fatal("fallback alpha EWMA broken")
	}
}

func TestEWMAConvergence(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Add(42)
	}
	if !almostEq(e.Value(), 42, 1e-9) {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestRanksHandleTies(t *testing.T) {
	xs := []float64{10, 20, 20, 30}
	r := Ranks(xs)
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksPermutationInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) {
				return true
			}
		}
		r := Ranks(raw)
		// Sum of ranks must be n(n+1)/2 regardless of ties.
		n := float64(len(raw))
		return almostEq(Sum(r), n*(n+1)/2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Fatalf("perfect correlation: r=%v err=%v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation: %v", r)
	}
	r, _ = Pearson(xs, []float64{3, 3, 3, 3, 3})
	if !math.IsNaN(r) {
		t.Fatalf("constant series should be NaN, got %v", r)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // monotone but very non-linear
	}
	rho, err := Spearman(xs, ys)
	if err != nil || !almostEq(rho, 1, 1e-12) {
		t.Fatalf("Spearman of monotone = %v (err %v)", rho, err)
	}
}

func TestKendallTau(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	up := []float64{10, 20, 30, 40}
	down := []float64{9, 7, 5, 3}
	tau, _ := KendallTau(xs, up)
	if !almostEq(tau, 1, 1e-12) {
		t.Fatalf("tau up = %v", tau)
	}
	tau, _ = KendallTau(xs, down)
	if !almostEq(tau, -1, 1e-12) {
		t.Fatalf("tau down = %v", tau)
	}
	if _, err := KendallTau(xs, up[:2]); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestTrendSlope(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	s, err := TrendSlope(xs, ys)
	if err != nil || !almostEq(s, 2, 1e-12) {
		t.Fatalf("slope = %v err=%v", s, err)
	}
	s, _ = TrendSlope([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(s) {
		t.Fatalf("degenerate x should be NaN, got %v", s)
	}
}

func TestCorrelationSymmetryProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n < 2 {
			return true
		}
		a, b = a[:n], b[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) || math.IsInf(a[i], 0) || math.IsInf(b[i], 0) {
				return true
			}
		}
		r1, _ := Pearson(a, b)
		r2, _ := Pearson(b, a)
		if math.IsNaN(r1) && math.IsNaN(r2) {
			return true
		}
		return almostEq(r1, r2, 1e-9) && r1 >= -1-1e-9 && r1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

var _ = sort.Float64s // keep sort imported if tests shrink
