package stats

import (
	"math"
	"testing"

	"usersignals/internal/simrand"
)

func TestTreeFitsStepFunction(t *testing.T) {
	// A tree should nail a piecewise-constant target that a line cannot.
	r := simrand.New(5, 6)
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	step := func(x float64) float64 {
		switch {
		case x < 100:
			return 5
		case x < 200:
			return 3
		default:
			return 1
		}
	}
	for i := 0; i < n; i++ {
		x := r.Range(0, 300)
		X[i] = []float64{x}
		y[i] = step(x) + r.Normal(0, 0.1)
	}
	tree, err := FitTree(X, y, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{50, 150, 250} {
		got := tree.Predict([]float64{x})
		if math.Abs(got-step(x)) > 0.2 {
			t.Fatalf("tree(%v) = %v, want ~%v", x, got, step(x))
		}
	}
	// The linear model structurally cannot: its error must be larger.
	lin, err := FitOLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	var treeErr, linErr float64
	for i := range X {
		treeErr += math.Abs(tree.Predict(X[i]) - y[i])
		linErr += math.Abs(lin.Predict(X[i]) - y[i])
	}
	if treeErr >= linErr {
		t.Fatalf("tree MAE %v not better than line %v on a step function", treeErr, linErr)
	}
}

func TestTreeInteraction(t *testing.T) {
	// y = 1 if (x0>0 AND x1>0) else 0: pure interaction, no main effects.
	r := simrand.New(7, 8)
	n := 3000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.Range(-1, 1), r.Range(-1, 1)
		X[i] = []float64{a, b}
		if a > 0 && b > 0 {
			y[i] = 1
		}
	}
	tree, err := FitTree(X, y, TreeOptions{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.5, 0.5}); got < 0.8 {
		t.Fatalf("interaction corner = %v, want ~1", got)
	}
	if got := tree.Predict([]float64{-0.5, 0.5}); got > 0.2 {
		t.Fatalf("off corner = %v, want ~0", got)
	}
}

func TestTreeRespectsLimits(t *testing.T) {
	r := simrand.New(9, 10)
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Float64(), r.Float64()}
		y[i] = r.Float64()
	}
	tree, err := FitTree(X, y, TreeOptions{MaxDepth: 3, MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Fatalf("depth %d > 3", tree.Depth())
	}
	if tree.Leaves() > 8 {
		t.Fatalf("leaves %d > 2^3", tree.Leaves())
	}
}

func TestTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tree, err := FitTree(X, y, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatalf("constant target grew depth %d", tree.Depth())
	}
	if got := tree.Predict([]float64{99}); got != 7 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeOptions{}); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, TreeOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitTree([][]float64{{1, 2}, {3}}, []float64{1, 2}, TreeOptions{}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestTreeTiedFeatureValues(t *testing.T) {
	// All feature values identical: no legal split; must return a stump
	// rather than looping or splitting on a tie.
	X := [][]float64{{1}, {1}, {1}, {1}, {1}, {1}}
	y := []float64{1, 2, 3, 4, 5, 6}
	tree, err := FitTree(X, y, TreeOptions{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatalf("tied features produced splits: depth %d", tree.Depth())
	}
	if got := tree.Predict([]float64{1}); got != 3.5 {
		t.Fatalf("stump value %v, want 3.5", got)
	}
}

func TestTreeShortFeatureVector(t *testing.T) {
	r := simrand.New(11, 12)
	X := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range X {
		X[i] = []float64{r.Float64(), r.Float64()}
		y[i] = X[i][1] * 10
	}
	tree, err := FitTree(X, y, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Predicting with a short vector must not panic; missing features
	// read as zero.
	_ = tree.Predict([]float64{0.5})
	_ = tree.Predict(nil)
}
