package stats

import (
	"math"
	"testing"

	"usersignals/internal/simrand"
)

func noisySeries(n int, base float64, r *simrand.RNG) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = base + r.Normal(0, 1)
	}
	return xs
}

func TestDetectPeaksFindsSpikes(t *testing.T) {
	r := simrand.New(9, 9)
	xs := noisySeries(200, 10, r)
	xs[60] = 40
	xs[120] = 55
	xs[180] = 35
	peaks := DetectPeaks(xs, PeakOptions{})
	if len(peaks) < 3 {
		t.Fatalf("found %d peaks, want >= 3", len(peaks))
	}
	// Strongest three should be at the injected spikes, ordered by score.
	got := map[int]bool{}
	for _, p := range peaks[:3] {
		got[p.Index] = true
	}
	for _, want := range []int{60, 120, 180} {
		if !got[want] {
			t.Fatalf("missing injected peak at %d; peaks: %+v", want, peaks[:3])
		}
	}
	if peaks[0].Index != 120 {
		t.Fatalf("strongest peak index = %d, want 120", peaks[0].Index)
	}
}

func TestDetectPeaksQuietSeries(t *testing.T) {
	r := simrand.New(10, 10)
	xs := noisySeries(300, 10, r)
	peaks := DetectPeaks(xs, PeakOptions{MinScore: 9})
	if len(peaks) != 0 {
		t.Fatalf("quiet series produced %d peaks at MinScore 9: %+v", len(peaks), peaks)
	}
}

func TestDetectPeaksFlatBaseline(t *testing.T) {
	xs := make([]float64, 50)
	xs[30] = 25 // step out of an all-zero baseline (MAD = 0)
	peaks := DetectPeaks(xs, PeakOptions{})
	if len(peaks) != 1 || peaks[0].Index != 30 {
		t.Fatalf("flat-baseline peak = %+v", peaks)
	}
}

func TestDetectPeaksMinValue(t *testing.T) {
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = 0.1
	}
	xs[40] = 2 // large z-score, tiny absolute value
	if peaks := DetectPeaks(xs, PeakOptions{MinValue: 10}); len(peaks) != 0 {
		t.Fatalf("MinValue filter failed: %+v", peaks)
	}
}

func TestDetectPeaksSeparation(t *testing.T) {
	r := simrand.New(11, 11)
	xs := noisySeries(100, 5, r)
	xs[50] = 50
	xs[51] = 48 // shoulder of the same event
	peaks := DetectPeaks(xs, PeakOptions{Separation: 3})
	count := 0
	for _, p := range peaks {
		if p.Index >= 48 && p.Index <= 53 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("adjacent peaks not merged: %+v", peaks)
	}
}

func TestTopPeaks(t *testing.T) {
	r := simrand.New(12, 12)
	xs := noisySeries(200, 10, r)
	for _, i := range []int{40, 80, 120, 160} {
		xs[i] = 60
	}
	top := TopPeaks(xs, 2, PeakOptions{})
	if len(top) != 2 {
		t.Fatalf("TopPeaks returned %d", len(top))
	}
	if empty := TopPeaks(nil, 3, PeakOptions{}); empty != nil {
		t.Fatalf("TopPeaks(nil) = %+v", empty)
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	if got := MAD(xs); got != 1 {
		t.Fatalf("MAD = %v, want 1", got)
	}
	if !math.IsNaN(MAD(nil)) {
		t.Fatal("MAD(nil) should be NaN")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ma := MovingAverage(xs, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almostEq(ma[i], want[i], 1e-12) {
			t.Fatalf("MovingAverage = %v, want %v", ma, want)
		}
	}
	// Even windows round up; window 1 is identity.
	id := MovingAverage(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Fatalf("window-1 MA changed data: %v", id)
		}
	}
	if got := MovingAverage(xs, 0); got[2] != xs[2] {
		t.Fatalf("window-0 fallback = %v", got)
	}
}

func TestBootstrapCICoversTruth(t *testing.T) {
	r := simrand.New(13, 13)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal(100, 10)
	}
	ci := BootstrapCI(r, xs, Mean, 0.95, 500)
	if !ci.Contains(100) {
		t.Fatalf("95%% CI %v does not contain true mean 100", ci)
	}
	if ci.Width() <= 0 || ci.Width() > 5 {
		t.Fatalf("CI width %v implausible for n=500 sd=10", ci.Width())
	}
}

func TestBootstrapCIEdgeCases(t *testing.T) {
	r := simrand.New(14, 14)
	ci := BootstrapCI(r, nil, Mean, 0.95, 100)
	if !math.IsNaN(ci.Lo) || !math.IsNaN(ci.Hi) {
		t.Fatalf("empty bootstrap = %+v", ci)
	}
	// Bad conf falls back to 0.95 rather than exploding.
	xs := []float64{1, 2, 3, 4, 5}
	ci = BootstrapCI(r, xs, Mean, 2.5, 200)
	if math.IsNaN(ci.Lo) {
		t.Fatal("bad conf not defaulted")
	}
}

func TestSubsampleStatStability(t *testing.T) {
	r := simrand.New(15, 15)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.LogNormalMeanMedian(100, 1.8)
	}
	full := Median(xs)
	for _, frac := range []float64{0.95, 0.90} {
		meds := SubsampleStat(r, xs, frac, Median, 50)
		for _, m := range meds {
			if math.Abs(m-full)/full > 0.10 {
				t.Fatalf("subsample median %v deviates >10%% from full %v at frac %v", m, full, frac)
			}
		}
	}
	if SubsampleStat(r, nil, 0.9, Median, 10) != nil {
		t.Fatal("empty subsample should be nil")
	}
	// Fraction out of range falls back to full sample.
	out := SubsampleStat(r, xs[:10], 7, Median, 3)
	if len(out) != 3 {
		t.Fatalf("rounds = %d", len(out))
	}
}
