package stats

import (
	"fmt"
	"math"
)

// Binner maps a continuous x value to one of a fixed set of equal-width bins
// over [Lo, Hi). Values outside the range are rejected (index -1), which is
// how the analysis pipelines hold confounders "roughly constant": sessions
// whose other metrics fall outside their control band simply don't bin.
type Binner struct {
	Lo, Hi float64
	NBins  int
}

// NewBinner returns a Binner over [lo, hi) with n equal-width bins.
// It panics if n <= 0 or hi <= lo, which are programming errors.
func NewBinner(lo, hi float64, n int) Binner {
	if n <= 0 {
		panic("stats: NewBinner with n <= 0")
	}
	if hi <= lo {
		panic("stats: NewBinner with hi <= lo")
	}
	return Binner{Lo: lo, Hi: hi, NBins: n}
}

// Index returns the bin index for x, or -1 if x is outside [Lo, Hi).
func (b Binner) Index(x float64) int {
	if x < b.Lo || x >= b.Hi || math.IsNaN(x) {
		return -1
	}
	i := int((x - b.Lo) / (b.Hi - b.Lo) * float64(b.NBins))
	if i >= b.NBins { // guard against floating-point edge
		i = b.NBins - 1
	}
	return i
}

// Center returns the midpoint of bin i.
func (b Binner) Center(i int) float64 {
	w := (b.Hi - b.Lo) / float64(b.NBins)
	return b.Lo + (float64(i)+0.5)*w
}

// Centers returns all bin midpoints in order.
func (b Binner) Centers() []float64 {
	out := make([]float64, b.NBins)
	for i := range out {
		out[i] = b.Center(i)
	}
	return out
}

// Width returns the width of each bin.
func (b Binner) Width() float64 { return (b.Hi - b.Lo) / float64(b.NBins) }

// BinnedSeries is the result of aggregating a response variable y within
// bins of a predictor x: the dose-response curves of Fig. 1 and Fig. 4.
type BinnedSeries struct {
	X     []float64 // bin centers
	Y     []float64 // mean of y per bin (NaN where empty)
	Count []int     // observations per bin
}

// BinMeans groups ys by the bin of the corresponding xs value and returns
// per-bin means. xs and ys must have equal length.
func BinMeans(b Binner, xs, ys []float64) (BinnedSeries, error) {
	if len(xs) != len(ys) {
		return BinnedSeries{}, fmt.Errorf("stats: BinMeans length mismatch: %d xs vs %d ys", len(xs), len(ys))
	}
	acc := NewBinAcc(b)
	for i, x := range xs {
		acc.Add(x, ys[i])
	}
	return acc.Series(), nil
}

// NonEmpty returns a copy of the series with empty bins removed, which is
// what plotting and trend tests want.
func (s BinnedSeries) NonEmpty() BinnedSeries {
	out := BinnedSeries{}
	for i := range s.X {
		if s.Count[i] > 0 && !math.IsNaN(s.Y[i]) {
			out.X = append(out.X, s.X[i])
			out.Y = append(out.Y, s.Y[i])
			out.Count = append(out.Count, s.Count[i])
		}
	}
	return out
}

// Grid2D aggregates a response over a 2D grid of two predictors — the
// latency x loss compounding analysis of Fig. 2.
type Grid2D struct {
	XBins, YBins Binner
	Mean         [][]float64 // [xi][yi], NaN where empty
	Count        [][]int
}

// BinMeans2D computes a Grid2D from paired predictors (xs, ys) and response
// zs. All slices must have equal length.
func BinMeans2D(xb, yb Binner, xs, ys, zs []float64) (Grid2D, error) {
	if len(xs) != len(ys) || len(xs) != len(zs) {
		return Grid2D{}, fmt.Errorf("stats: BinMeans2D length mismatch: %d/%d/%d", len(xs), len(ys), len(zs))
	}
	acc := NewGrid2DAcc(xb, yb)
	for i := range xs {
		acc.Add(xs[i], ys[i], zs[i])
	}
	return acc.Grid(), nil
}

// BestWorst returns the maximum and minimum non-empty cell means. The
// paper's Fig. 2 claim is worst ≈ 50% below best.
func (g Grid2D) BestWorst() (best, worst float64, ok bool) {
	best, worst = math.Inf(-1), math.Inf(1)
	for i := range g.Mean {
		for j := range g.Mean[i] {
			if g.Count[i][j] == 0 || math.IsNaN(g.Mean[i][j]) {
				continue
			}
			ok = true
			if g.Mean[i][j] > best {
				best = g.Mean[i][j]
			}
			if g.Mean[i][j] < worst {
				worst = g.Mean[i][j]
			}
		}
	}
	if !ok {
		return math.NaN(), math.NaN(), false
	}
	return best, worst, true
}

// Histogram counts observations per bin.
func Histogram(b Binner, xs []float64) []int {
	h := NewHist(b)
	for _, x := range xs {
		h.Add(x)
	}
	return h.Counts
}
