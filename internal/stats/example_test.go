package stats_test

import (
	"fmt"

	"usersignals/internal/stats"
)

func ExampleFitRidge() {
	// y = 1 + 2*x with a collinear duplicate feature: ridge handles it.
	X := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	y := []float64{1, 3, 5, 7}
	m, _ := stats.FitRidge(X, y, 0.1)
	fmt.Printf("prediction at x=4: %.1f\n", m.Predict([]float64{4, 4}))
	// Output: prediction at x=4: 9.0
}

func ExampleBinMeans() {
	b := stats.NewBinner(0, 300, 3)
	latencies := []float64{20, 40, 130, 160, 250, 280}
	engagement := []float64{95, 93, 85, 83, 70, 68}
	s, _ := stats.BinMeans(b, latencies, engagement)
	for i := range s.X {
		fmt.Printf("%.0f ms: %.0f%% (%d sessions)\n", s.X[i], s.Y[i], s.Count[i])
	}
	// Output:
	// 50 ms: 94% (2 sessions)
	// 150 ms: 84% (2 sessions)
	// 250 ms: 69% (2 sessions)
}

func ExampleDetectPeaks() {
	series := make([]float64, 40)
	for i := range series {
		series[i] = 10
	}
	series[25] = 60 // a burst day
	peaks := stats.DetectPeaks(series, stats.PeakOptions{})
	fmt.Printf("%d peak at index %d\n", len(peaks), peaks[0].Index)
	// Output: 1 peak at index 25
}

func ExampleSummarize() {
	s := stats.Summarize([]float64{10, 20, 30, 40, 50})
	fmt.Printf("mean=%.0f median=%.0f p95=%.0f\n", s.Mean, s.Median, s.P95)
	// Output: mean=30 median=30 p95=48
}
