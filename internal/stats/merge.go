package stats

import (
	"fmt"

	"usersignals/internal/parallel"
)

// This file holds the mergeable accumulator forms of the binned aggregates
// in bin.go, plus their sharded parallel drivers. Each accumulator supports
// Merge so analyses can shard records across canonically ordered chunks,
// accumulate per chunk, and fold the chunks back together in chunk order —
// the floating-point result is then a pure function of the input and the
// chunk size, independent of how many goroutines did the work.

// BinAcc accumulates a response variable y within bins of a predictor x;
// the mergeable form of BinMeans. Create with NewBinAcc.
type BinAcc struct {
	B    Binner
	Accs []Online
}

// NewBinAcc returns an empty accumulator over b's bins.
func NewBinAcc(b Binner) *BinAcc {
	return &BinAcc{B: b, Accs: make([]Online, b.NBins)}
}

// Add folds one (x, y) observation in; x outside [Lo, Hi) is ignored.
func (a *BinAcc) Add(x, y float64) {
	if i := a.B.Index(x); i >= 0 {
		a.Accs[i].Add(y)
	}
}

// Merge combines another accumulator over the same binner into this one.
// Merging accumulators over different binners returns an error (a malformed
// shard must degrade the analysis, not crash the process).
func (a *BinAcc) Merge(other *BinAcc) error {
	if other == nil {
		return nil
	}
	if a.B != other.B {
		return fmt.Errorf("stats: BinAcc.Merge binner mismatch: %+v vs %+v", a.B, other.B)
	}
	for i := range a.Accs {
		a.Accs[i].Merge(other.Accs[i])
	}
	return nil
}

// Series snapshots the accumulator as a BinnedSeries.
func (a *BinAcc) Series() BinnedSeries {
	s := BinnedSeries{
		X:     a.B.Centers(),
		Y:     make([]float64, a.B.NBins),
		Count: make([]int, a.B.NBins),
	}
	for i := range a.Accs {
		s.Y[i] = a.Accs[i].Mean()
		s.Count[i] = a.Accs[i].N()
	}
	return s
}

// BinAccState is the exported wire form of a BinAcc: the binner plus each
// bin's Welford state, carried verbatim so a reconstructed accumulator
// merges bit-identically to the original.
type BinAccState struct {
	B    Binner        `json:"b"`
	Accs []OnlineState `json:"accs"`
}

// State exports the accumulator for transport.
func (a *BinAcc) State() BinAccState {
	st := BinAccState{B: a.B, Accs: make([]OnlineState, len(a.Accs))}
	for i := range a.Accs {
		st.Accs[i] = a.Accs[i].State()
	}
	return st
}

// BinAccFromState reconstructs an accumulator from exported state. A state
// whose bin count disagrees with its binner is rejected (a malformed shard
// must degrade the analysis, not crash the process).
func BinAccFromState(st BinAccState) (*BinAcc, error) {
	if len(st.Accs) != st.B.NBins {
		return nil, fmt.Errorf("stats: BinAccFromState: %d accs for %d bins", len(st.Accs), st.B.NBins)
	}
	a := NewBinAcc(st.B)
	for i := range st.Accs {
		a.Accs[i] = FromState(st.Accs[i])
	}
	return a, nil
}

// Grid2DAcc accumulates a response over a 2D predictor grid; the mergeable
// form of BinMeans2D. Create with NewGrid2DAcc.
type Grid2DAcc struct {
	XB, YB Binner
	Accs   [][]Online // [xi][yi]
}

// NewGrid2DAcc returns an empty accumulator over the xb x yb grid.
func NewGrid2DAcc(xb, yb Binner) *Grid2DAcc {
	accs := make([][]Online, xb.NBins)
	for i := range accs {
		accs[i] = make([]Online, yb.NBins)
	}
	return &Grid2DAcc{XB: xb, YB: yb, Accs: accs}
}

// Add folds one (x, y, z) observation in; out-of-range cells are ignored.
func (g *Grid2DAcc) Add(x, y, z float64) {
	xi := g.XB.Index(x)
	yi := g.YB.Index(y)
	if xi >= 0 && yi >= 0 {
		g.Accs[xi][yi].Add(z)
	}
}

// Merge combines another accumulator over the same grid into this one, or
// returns an error on a grid mismatch.
func (g *Grid2DAcc) Merge(other *Grid2DAcc) error {
	if other == nil {
		return nil
	}
	if g.XB != other.XB || g.YB != other.YB {
		return fmt.Errorf("stats: Grid2DAcc.Merge binner mismatch: (%+v,%+v) vs (%+v,%+v)",
			g.XB, g.YB, other.XB, other.YB)
	}
	for i := range g.Accs {
		for j := range g.Accs[i] {
			g.Accs[i][j].Merge(other.Accs[i][j])
		}
	}
	return nil
}

// Grid snapshots the accumulator as a Grid2D.
func (g *Grid2DAcc) Grid() Grid2D {
	out := Grid2D{XBins: g.XB, YBins: g.YB}
	out.Mean = make([][]float64, g.XB.NBins)
	out.Count = make([][]int, g.XB.NBins)
	for i := range g.Accs {
		out.Mean[i] = make([]float64, g.YB.NBins)
		out.Count[i] = make([]int, g.YB.NBins)
		for j := range g.Accs[i] {
			out.Mean[i][j] = g.Accs[i][j].Mean()
			out.Count[i][j] = g.Accs[i][j].N()
		}
	}
	return out
}

// Hist is a mergeable histogram; the accumulator form of Histogram.
type Hist struct {
	B      Binner
	Counts []int
}

// NewHist returns an empty histogram over b's bins.
func NewHist(b Binner) *Hist {
	return &Hist{B: b, Counts: make([]int, b.NBins)}
}

// Add counts one observation; out-of-range values are ignored.
func (h *Hist) Add(x float64) {
	if i := h.B.Index(x); i >= 0 {
		h.Counts[i]++
	}
}

// Merge combines another histogram over the same binner into this one, or
// returns an error on a binner mismatch.
func (h *Hist) Merge(other *Hist) error {
	if other == nil {
		return nil
	}
	if h.B != other.B {
		return fmt.Errorf("stats: Hist.Merge binner mismatch: %+v vs %+v", h.B, other.B)
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	return nil
}

// BinMeansN is BinMeans over `workers` goroutines: xs is sharded into
// canonical chunks, each chunk accumulates independently, and the chunks
// merge in chunk order. The result is identical for every worker count.
func BinMeansN(b Binner, xs, ys []float64, workers int) (BinnedSeries, error) {
	if len(xs) != len(ys) {
		return BinnedSeries{}, fmt.Errorf("stats: BinMeans length mismatch: %d xs vs %d ys", len(xs), len(ys))
	}
	shards, err := parallel.Map(workers, parallel.Chunks(len(xs)), func(i int) (*BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, len(xs))
		acc := NewBinAcc(b)
		for j := lo; j < hi; j++ {
			acc.Add(xs[j], ys[j])
		}
		return acc, nil
	})
	if err != nil {
		return BinnedSeries{}, err
	}
	total := NewBinAcc(b)
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return BinnedSeries{}, err
		}
	}
	return total.Series(), nil
}

// BinMeans2DN is BinMeans2D over `workers` goroutines, sharded and merged
// the same way as BinMeansN.
func BinMeans2DN(xb, yb Binner, xs, ys, zs []float64, workers int) (Grid2D, error) {
	if len(xs) != len(ys) || len(xs) != len(zs) {
		return Grid2D{}, fmt.Errorf("stats: BinMeans2D length mismatch: %d/%d/%d", len(xs), len(ys), len(zs))
	}
	shards, err := parallel.Map(workers, parallel.Chunks(len(xs)), func(i int) (*Grid2DAcc, error) {
		lo, hi := parallel.ChunkBounds(i, len(xs))
		acc := NewGrid2DAcc(xb, yb)
		for j := lo; j < hi; j++ {
			acc.Add(xs[j], ys[j], zs[j])
		}
		return acc, nil
	})
	if err != nil {
		return Grid2D{}, err
	}
	total := NewGrid2DAcc(xb, yb)
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return Grid2D{}, err
		}
	}
	return total.Grid(), nil
}
