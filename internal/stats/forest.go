package stats

import (
	"errors"
	"fmt"

	"usersignals/internal/simrand"
)

// Forest is a bagged ensemble of regression trees (a random forest with
// bootstrap resampling and per-tree feature subsampling). It trades the
// single tree's interpretability for variance reduction.
type Forest struct {
	trees    []*RegressionTree
	features [][]int // per-tree feature subset (indices into the full vector)
	p        int
}

// ForestOptions bounds forest growth.
type ForestOptions struct {
	// Trees is the ensemble size (default 25).
	Trees int
	// Tree configures each member tree.
	Tree TreeOptions
	// FeatureFrac is the fraction of features each tree sees. The default
	// is 1 (pure bagging): per-tree feature dropping only helps when the
	// feature space is wide; with a handful of features it risks hiding
	// the dominant predictor from a third of the ensemble.
	FeatureFrac float64
	// Seed makes training deterministic.
	Seed uint64
}

func (o ForestOptions) withDefaults() ForestOptions {
	if o.Trees <= 0 {
		o.Trees = 25
	}
	if o.FeatureFrac <= 0 || o.FeatureFrac > 1 {
		o.FeatureFrac = 1
	}
	return o
}

// FitForest trains the ensemble on X (row-major) and targets y.
func FitForest(X [][]float64, y []float64, opts ForestOptions) (*Forest, error) {
	if len(X) == 0 {
		return nil, errors.New("stats: FitForest with no observations")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("stats: FitForest rows %d != targets %d", len(X), len(y))
	}
	opts = opts.withDefaults()
	p := len(X[0])
	nFeat := int(opts.FeatureFrac * float64(p))
	if nFeat < 1 {
		nFeat = 1
	}
	root := simrand.Root(opts.Seed).Derive("forest")
	f := &Forest{p: p}
	n := len(X)
	for t := 0; t < opts.Trees; t++ {
		rng := root.Derive("tree/%d", t).RNG()
		// Bootstrap sample.
		bx := make([][]float64, n)
		by := make([]float64, n)
		// Feature subset for this tree.
		perm := rng.Perm(p)[:nFeat]
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			row := make([]float64, nFeat)
			for k, fi := range perm {
				row[k] = X[j][fi]
			}
			bx[i] = row
			by[i] = y[j]
		}
		tree, err := FitTree(bx, by, opts.Tree)
		if err != nil {
			return nil, fmt.Errorf("stats: forest tree %d: %w", t, err)
		}
		f.trees = append(f.trees, tree)
		f.features = append(f.features, perm)
	}
	return f, nil
}

// Predict averages the member trees' predictions.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	sub := make([]float64, 0, f.p)
	for t, tree := range f.trees {
		sub = sub[:0]
		for _, fi := range f.features[t] {
			v := 0.0
			if fi < len(x) {
				v = x[fi]
			}
			sub = append(sub, v)
		}
		sum += tree.Predict(sub)
	}
	return sum / float64(len(f.trees))
}

// Size returns the ensemble size.
func (f *Forest) Size() int { return len(f.trees) }
