package social

import (
	"errors"
	"math"

	"usersignals/internal/leo"
	"usersignals/internal/ocr"
	"usersignals/internal/parallel"
	"usersignals/internal/simrand"
	"usersignals/internal/timeline"
)

// Config parameterizes corpus generation. Start from DefaultConfig.
type Config struct {
	Seed   uint64
	Window timeline.Range

	// Workers is the number of goroutines timeline days are sharded
	// across; zero or negative means one per CPU. Each day derives its
	// RNG from the seed and the day index, the community expectation each
	// day depends on is a pure function of the model (precomputed
	// serially), and post IDs are assigned during the ordered merge — so
	// the corpus is byte-identical to a serial run at any worker count.
	Workers int

	Model      *leo.Model
	Milestones []leo.Milestone
	Outages    []leo.Outage

	// Daily baseline post volume: Base + PerMUsers * users/1e6. Defaults
	// reproduce the §4.1 corpus statistics (~372 posts/week).
	BasePostsPerDay float64
	PerMUsers       float64

	// SpeedTestsPerDay is the screenshot-post rate (~1750 over two years).
	SpeedTestsPerDay float64

	// ConditioningAlpha is the per-day EWMA rate of the community's speed
	// expectation; ConditioningOff disables the relative term (§4.2
	// ablation: the "wheel of time" effects disappear).
	ConditioningAlpha float64
	ConditioningOff   bool

	// OCRNoise is the screenshot corruption level.
	OCRNoise float64
}

// DefaultConfig returns the study configuration over the Starlink window.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:              seed,
		Window:            timeline.StarlinkWindow,
		Model:             leo.NewModel(),
		Milestones:        leo.DefaultMilestones(),
		Outages:           leo.AllOutages(seed, timeline.StarlinkWindow, 1.5),
		BasePostsPerDay:   30,
		PerMUsers:         58,
		SpeedTestsPerDay:  2.4,
		ConditioningAlpha: 0.02,
		OCRNoise:          0.03,
	}
}

// sentiment-tilt weights: how much absolute speed versus
// expectation-relative speed moves everyday posting mood. The relative
// term dominating is what produces Fig. 7's conditioning anomalies.
const (
	tiltAbsWeight   = 0.35
	tiltRelWeight   = 1.4
	tiltAnchorMbps  = 75 // "decent broadband" anchor for the absolute term
	tiltSharpness   = 3.0
	maxMoodFraction = 0.30 // cap on praise (or complaint) share of chatter
)

// Generate builds the corpus.
func Generate(cfg Config) (*Corpus, error) {
	if cfg.Model == nil {
		return nil, errors.New("social: Config.Model is required")
	}
	if cfg.Window.Len() <= 0 {
		return nil, errors.New("social: empty window")
	}
	if cfg.BasePostsPerDay <= 0 {
		cfg.BasePostsPerDay = 30
	}
	if cfg.PerMUsers < 0 {
		cfg.PerMUsers = 0
	}
	if cfg.SpeedTestsPerDay < 0 {
		cfg.SpeedTestsPerDay = 0
	}
	if cfg.ConditioningAlpha <= 0 || cfg.ConditioningAlpha > 1 {
		cfg.ConditioningAlpha = 0.02
	}

	g := &generator{cfg: cfg, root: simrand.Root(cfg.Seed).Derive("social")}
	g.byDayOutages = map[timeline.Day][]leo.Outage{}
	for _, o := range cfg.Outages {
		g.byDayOutages[o.Day] = append(g.byDayOutages[o.Day], o)
	}
	g.byDayMilestones = map[timeline.Day][]leo.Milestone{}
	for _, m := range cfg.Milestones {
		g.byDayMilestones[m.Day] = append(g.byDayMilestones[m.Day], m)
	}
	for _, m := range cfg.Milestones {
		if m.Kind == leo.MilestoneFeatureTweet {
			g.tweetDay = m.Day
		}
		if m.Kind == leo.MilestoneFeatureLeak {
			g.leakDays = append(g.leakDays, m.Day)
		}
	}

	// Precompute the per-day state that is sequential in the serial
	// formulation but is in fact a pure function of the config: the
	// community speed expectation (an EWMA over the model's daily medians)
	// and the feature-leak trickle window. With these in hand every day is
	// independent and the days shard freely.
	var days []timeline.Day
	cfg.Window.Days(func(d timeline.Day) { days = append(days, d) })
	medians := make([]float64, len(days))
	expectations := make([]float64, len(days))
	expectation := cfg.Model.MedianDownMbps(cfg.Window.From)
	for i, d := range days {
		medians[i] = cfg.Model.MedianDownMbps(d)
		expectation = cfg.ConditioningAlpha*medians[i] + (1-cfg.ConditioningAlpha)*expectation
		expectations[i] = expectation
	}

	// Shard the days across the pool; merge assigns post IDs in canonical
	// (day, within-day) order, exactly as the serial counter would have.
	workers := parallel.Workers(cfg.Workers)
	perDay, err := parallel.Map(workers, len(days), func(i int) ([]draft, error) {
		return g.day(days[i], medians[i], expectations[i], g.inLeakWindow(days[i])), nil
	})
	if err != nil {
		return nil, err
	}
	var drafts []draft
	for _, dd := range perDay {
		drafts = append(drafts, dd...)
	}
	posts := make([]Post, len(drafts))
	for i := range drafts {
		drafts[i].post.ID = uint64(i + 1)
		posts[i] = drafts[i].post
	}
	// Replies draw from substreams keyed by the final post ID, so they can
	// only attach after the merge — and, being per-post independent, they
	// shard across the pool too.
	if err := parallel.ForEach(workers, len(posts), func(i int) error {
		g.attachReplies(&posts[i], drafts[i].replyN, drafts[i].angry)
		return nil
	}); err != nil {
		return nil, err
	}
	return NewCorpus(cfg.Window, posts), nil
}

type generator struct {
	cfg             Config
	root            *simrand.Stream
	byDayOutages    map[timeline.Day][]leo.Outage
	byDayMilestones map[timeline.Day][]leo.Milestone
	leakDays        []timeline.Day // MilestoneFeatureLeak days, in input order
	tweetDay        timeline.Day
}

// draft is a post before the merge phase: the ID is unassigned and the
// replies (which key their RNG substream on the final ID) are deferred.
type draft struct {
	post   Post
	replyN int  // number of text replies to attach
	angry  bool // re-tone replies from the angry-outage substream
}

// inLeakWindow reports whether day d falls in the feature-leak trickle
// window: from the latest leak milestone at or before d through the
// announcement tweet (or 16 days, if the tweet never lands). This
// reproduces the serial formulation, where processing a leak milestone
// opened the window for subsequent days.
func (g *generator) inLeakWindow(d timeline.Day) bool {
	opened := false
	var latest timeline.Day
	for _, l := range g.leakDays {
		if l <= d && (!opened || l >= latest) {
			opened = true
			latest = l
		}
	}
	if !opened {
		return false
	}
	until := g.tweetDay
	if until < latest {
		until = latest + 16
	}
	return until >= d
}

// tilt computes the community mood for a given speed versus expectation.
func (g *generator) tilt(speed, expectation float64) float64 {
	abs := speed/tiltAnchorMbps - 1
	if g.cfg.ConditioningOff {
		return tiltAbsWeight*abs + tiltRelWeight*abs
	}
	rel := speed/math.Max(1, expectation) - 1
	return tiltAbsWeight*abs + tiltRelWeight*rel
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func (g *generator) day(d timeline.Day, medianSpeed, expectation float64, inLeak bool) []draft {
	rng := g.root.Derive("day/%d", int(d)).RNG()
	users := g.cfg.Model.Users(d)
	var out []draft

	// --- everyday chatter: general / praise / complaint ---
	volume := g.cfg.BasePostsPerDay + g.cfg.PerMUsers*users/1e6
	n := rng.Poisson(volume)
	tilt := g.tilt(medianSpeed, expectation)
	pPraise := maxMoodFraction * sigmoid(tiltSharpness*tilt)
	pComplain := maxMoodFraction * sigmoid(-tiltSharpness*tilt)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		var p draft
		switch {
		case u < pPraise:
			p = g.newPost(rng, d, KindPraise, simrand.Pick(rng, praiseTemplates), "")
		case u < pPraise+pComplain:
			p = g.newPost(rng, d, KindComplaint, simrand.Pick(rng, complaintTemplates), "")
		default:
			p = g.newPost(rng, d, KindGeneral, simrand.Pick(rng, generalTemplates), "")
		}
		out = append(out, p)
	}

	// --- speed-test screenshot posts ---
	nTests := rng.Poisson(g.cfg.SpeedTestsPerDay)
	for i := 0; i < nTests; i++ {
		out = append(out, g.speedTestPost(rng, d, medianSpeed, expectation))
	}

	// --- outage threads ---
	for _, o := range g.byDayOutages[d] {
		out = append(out, g.outagePosts(rng, d, o, users)...)
	}

	// --- milestone reactions ---
	for _, m := range g.byDayMilestones[d] {
		out = append(out, g.milestonePosts(rng, d, m)...)
	}

	// --- feature-leak trickle (roaming discovered organically) ---
	if inLeak {
		for i, k := 0, rng.Poisson(9); i < k; i++ {
			p := g.newPost(rng, d, KindFeature, simrand.Pick(rng, featureTemplates), "")
			// Popular discussions: the §4.1 miner keys on upvotes and
			// comment counts. Keep the retained-reply invariant
			// (replyN <= Comments) when overriding the count.
			p.post.Upvotes = int(rng.LogNormalMeanMedian(50, 2.2))
			p.post.Comments = int(rng.LogNormalMeanMedian(35, 2.2))
			if p.replyN > p.post.Comments {
				p.replyN = p.post.Comments
			}
			out = append(out, p)
		}
	}
	return out
}

func (g *generator) newPost(rng *simrand.RNG, d timeline.Day, kind PostKind, body, country string) draft {
	return g.newTitledPost(rng, d, kind, titleFor(kind), body, country)
}

// maxTextReplies caps how many comments per thread carry text.
const maxTextReplies = 4

func (g *generator) newTitledPost(rng *simrand.RNG, d timeline.Day, kind PostKind, title, body, country string) draft {
	if country == "" {
		country = simrand.Pick(rng, countries)
	}
	p := Post{
		Day:       d,
		Author:    authorName(rng),
		Title:     title,
		Body:      body,
		Upvotes:   int(rng.LogNormalMeanMedian(12, 3)),
		Comments:  int(rng.LogNormalMeanMedian(9, 2.8)),
		Country:   country,
		TruthKind: kind,
	}
	n := p.Comments
	if n > maxTextReplies {
		n = maxTextReplies
	}
	return draft{post: p, replyN: n}
}

// attachReplies fills the sampled textual comments, toned to the thread.
// Replies draw from their own substream (keyed by the post's final ID) so
// that attaching them does not perturb any other draw in the corpus — and
// so attachment can run after the merge, in parallel across posts.
func (g *generator) attachReplies(p *Post, n int, angry bool) {
	if n <= 0 {
		return
	}
	if angry {
		// Angry threads attract venting, not symptom confirmations.
		rng := g.root.Derive("replies-angry/%d", p.ID).RNG()
		p.Replies = make([]Comment, n)
		for i := range p.Replies {
			p.Replies[i] = Comment{
				Author: authorName(rng),
				Text:   simrand.Pick(rng, outageAngryReplyTemplates),
			}
		}
		return
	}
	var pool []string
	switch p.TruthKind {
	case KindOutage:
		pool = outageReplyTemplates
	case KindPraise:
		pool = praiseReplyTemplates
	case KindComplaint:
		pool = complaintReplyTemplates
	case KindFeature:
		pool = featureReplyTemplates
	case KindSpeedTest:
		pool = speedReplyTemplates
	default:
		pool = generalReplyTemplates
	}
	rng := g.root.Derive("replies/%d", p.ID).RNG()
	p.Replies = make([]Comment, n)
	for i := range p.Replies {
		p.Replies[i] = Comment{
			Author: authorName(rng),
			Text:   fillPlace(rng, simrand.Pick(rng, pool), p.Country),
		}
	}
}

func titleFor(kind PostKind) string {
	switch kind {
	case KindPraise:
		return "Loving the service lately"
	case KindComplaint:
		return "Is anyone else seeing this"
	case KindOutage:
		// Content-bearing on purpose: the Fig. 5b word cloud and the
		// news-search keywords come from the day's dominant unigrams.
		return "Outage reports"
	case KindSpeedTest:
		return "Speed test result"
	case KindMilestone:
		return "Big news today"
	case KindFeature:
		return "Interesting discovery"
	default:
		return "Dishy diary"
	}
}

// Speed-post mood weights. A poster judges their result three ways: the
// absolute service level, how their personal number compares with what the
// community typically sees, and — dominating, per §4.2 — how the current
// service compares with what everyone has become *accustomed to*. The
// conditioning gain is large because the expectation gap is small in
// relative terms (a few percent) yet reliably flips community mood.
const (
	speedLevelWeight    = 0.5
	speedPersonalWeight = 0.8
	speedCondGain       = 8.0
)

func (g *generator) speedTilt(sample, median, expectation float64) float64 {
	level := median/tiltAnchorMbps - 1
	personal := sample/math.Max(1, median) - 1
	if g.cfg.ConditioningOff {
		return speedLevelWeight*level + speedPersonalWeight*personal
	}
	cond := median/math.Max(1, expectation) - 1
	return speedLevelWeight*level + speedPersonalWeight*personal + speedCondGain*cond
}

func (g *generator) speedTestPost(rng *simrand.RNG, d timeline.Day, medianSpeed, expectation float64) draft {
	sample := g.cfg.Model.SampleUser(rng, d)
	report := ocr.Report{
		Provider:  simrand.PickWeighted(rng, ocr.Providers(), []float64{0.55, 0.2, 0.25}),
		DownMbps:  round1(sample.DownMbps),
		UpMbps:    round1(sample.UpMbps),
		LatencyMs: math.Round(sample.LatencyMs),
	}
	tilt := g.speedTilt(report.DownMbps, medianSpeed, expectation)
	u := rng.Float64()
	var body string
	switch {
	case u < 0.65*sigmoid(tiltSharpness*tilt):
		body = simrand.Pick(rng, speedPraiseTemplates)
	case u < 0.65:
		body = simrand.Pick(rng, speedComplaintTemplates)
	default:
		body = simrand.Pick(rng, speedNeutralTemplates)
	}
	p := g.newPost(rng, d, KindSpeedTest, body, "")
	shot := ocr.RenderNoisy(report, rng, g.cfg.OCRNoise)
	p.post.Screenshot = &shot
	p.post.TruthReport = &report
	return p
}

// outagePosts generates the thread burst for one outage.
//
// Volume scales with severity and the subscriber base. Press-covered
// incidents draw extra confirm-and-compare traffic; an *unreported* global
// outage draws an even larger, angrier burst — with no coverage anywhere
// else, the subreddit is where everyone goes (this is the paper's 22 Apr
// story). Angry posts use emphatic negative language; reported incidents
// are mostly symptom lists.
func (g *generator) outagePosts(rng *simrand.RNG, d timeline.Day, o leo.Outage, users float64) []draft {
	sev := o.Severity()
	var volume, angryFrac float64
	switch {
	case o.Scope == leo.ScopeGlobal && !o.Reported:
		volume = sev * (40 + 200*math.Sqrt(users/1e6)) * 2.0
		angryFrac = 0.9
	case o.Scope == leo.ScopeGlobal:
		volume = sev * (40 + 200*math.Sqrt(users/1e6)) * 1.6
		angryFrac = 0.25
	default:
		volume = sev * (2.5 + 14*math.Sqrt(users/1e6))
		angryFrac = 0.5
	}
	n := rng.Poisson(volume)
	// Distinct non-US countries that must appear for a multi-country
	// outage (the paper counts 14 including the US on 22 Apr).
	foreign := []string{"CA", "GB", "AU", "DE", "FR", "NZ", "MX", "BR", "IT", "PL", "CL", "PT", "ES"}
	out := make([]draft, 0, n)
	for i := 0; i < n; i++ {
		country := "US"
		if o.Scope == leo.ScopeGlobal {
			if i < len(foreign) && o.Countries > len(foreign) {
				country = foreign[i] // guarantee the country spread
			} else if rng.Bool(0.12) {
				country = simrand.Pick(rng, foreign)
			}
		} else if o.Countries <= 1 && rng.Bool(0.3) {
			country = simrand.Pick(rng, foreign)
		}
		var tmpl string
		angry := rng.Bool(angryFrac)
		if angry {
			tmpl = simrand.Pick(rng, outageAngryTemplates)
		} else {
			tmpl = simrand.Pick(rng, outageReportTemplates)
		}
		p := g.newPost(rng, d, KindOutage, fillPlace(rng, tmpl, country), country)
		// Angry threads attract venting, not symptom confirmations; the
		// attach phase re-tones them from the replies-angry substream.
		p.angry = angry
		out = append(out, p)
	}
	return out
}

func (g *generator) milestonePosts(rng *simrand.RNG, d timeline.Day, m leo.Milestone) []draft {
	var pool []string
	var volume float64
	var title string
	switch m.Kind {
	case leo.MilestonePreorder:
		pool, volume, title = preorderTemplates, 330*m.Strength, "Pre-orders are open"
	case leo.MilestoneDelay:
		pool, volume, title = delayTemplates, 290*m.Strength, "Delivery delay email"
	case leo.MilestoneFeatureLeak:
		// The leak is a trickle, not a burst: the window it opens is
		// precomputed (see inLeakWindow) and nothing bursts today.
		return nil
	case leo.MilestoneFeatureTweet:
		pool, volume, title = featureAnnounceTemplates, 260*m.Strength, "Roaming announcement"
	case leo.MilestoneFeatureOfficial:
		pool, volume, title = featureAnnounceTemplates, 160*m.Strength, "Portability notice"
	default:
		return nil
	}
	n := rng.Poisson(volume)
	out := make([]draft, 0, n)
	for i := 0; i < n; i++ {
		kind := KindMilestone
		if m.Kind == leo.MilestoneFeatureTweet || m.Kind == leo.MilestoneFeatureOfficial {
			kind = KindFeature
		}
		p := g.newTitledPost(rng, d, kind, title, simrand.Pick(rng, pool), "")
		out = append(out, p)
	}
	return out
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
