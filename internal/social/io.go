package social

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WritePostsJSONL streams posts as JSON Lines. Ground-truth fields are
// excluded by the Post JSON tags.
func WritePostsJSONL(w io.Writer, posts []Post) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range posts {
		if err := enc.Encode(&posts[i]); err != nil {
			return fmt.Errorf("social: encoding post %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("social: flushing posts: %w", err)
	}
	return nil
}

// ReadPostsJSONL streams posts from r, invoking fn for each. The post is
// reused between calls; copy it to retain. A non-nil error from fn aborts
// the read and is returned.
func ReadPostsJSONL(r io.Reader, fn func(*Post) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var p Post
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		p = Post{}
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			return fmt.Errorf("social: JSONL line %d: %w", line, err)
		}
		if err := fn(&p); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("social: reading JSONL: %w", err)
	}
	return nil
}

// CollectPostsJSONL reads all posts into memory.
func CollectPostsJSONL(r io.Reader) ([]Post, error) {
	var out []Post
	err := ReadPostsJSONL(r, func(p *Post) error {
		out = append(out, *p)
		return nil
	})
	return out, err
}
