package social

import (
	"reflect"
	"runtime"
	"testing"
)

// TestGenerateParallelIdentical is the determinism golden test for the
// social corpus: the generated posts, replies, screenshots, and ground
// truth must be identical at any worker count, so sharding timeline days
// across goroutines can never silently change downstream OCR or
// sentiment figures.
func TestGenerateParallelIdentical(t *testing.T) {
	gen := func(workers int) *Corpus {
		cfg := DefaultConfig(42)
		cfg.Workers = workers
		c, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := gen(1)
	if len(serial.Posts) == 0 {
		t.Fatal("serial run generated no posts")
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := gen(workers)
		if len(got.Posts) != len(serial.Posts) {
			t.Fatalf("workers=%d: %d posts, serial has %d", workers, len(got.Posts), len(serial.Posts))
		}
		for i := range got.Posts {
			if !reflect.DeepEqual(got.Posts[i], serial.Posts[i]) {
				t.Fatalf("workers=%d: post %d differs:\n got %+v\nwant %+v",
					workers, i, got.Posts[i], serial.Posts[i])
			}
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: corpus differs from serial outside Posts", workers)
		}
	}
}
