// Package social is the discussion-forum substrate standing in for the
// r/Starlink corpus of §4: users, posts, upvotes, and comment counts, with
// post volume and content driven by the ISP timeline (leo) — outages spawn
// outage threads, milestones spawn reaction threads, the current
// speed-versus-expectation gap tilts everyday posts between praise and
// complaint, and a trickle of posts carries speed-test screenshots (ocr).
//
// Each post records its generation ground truth (kind, and the true
// speed-test report behind a screenshot), which downstream code must not
// use for analysis — it exists so tests can measure how well the NLP/OCR
// pipelines recover the truth.
package social

import (
	"sort"
	"strings"
	"sync"

	"usersignals/internal/ocr"
	"usersignals/internal/timeline"
)

// PostKind is the generator's ground-truth label for a post.
type PostKind int

// Post kinds.
const (
	KindGeneral   PostKind = iota // setup questions, photos, chatter
	KindPraise                    // experience-driven positive post
	KindComplaint                 // experience-driven negative post
	KindOutage                    // outage report
	KindSpeedTest                 // carries a speed-test screenshot
	KindMilestone                 // reaction to a timeline event
	KindFeature                   // feature discovery/discussion (roaming)
)

// String names the kind.
func (k PostKind) String() string {
	switch k {
	case KindGeneral:
		return "general"
	case KindPraise:
		return "praise"
	case KindComplaint:
		return "complaint"
	case KindOutage:
		return "outage"
	case KindSpeedTest:
		return "speedtest"
	case KindMilestone:
		return "milestone"
	case KindFeature:
		return "feature"
	default:
		return "unknown"
	}
}

// Comment is one reply in a thread. Only a sampled prefix of each thread's
// replies carries text (as a crawler retaining top comments would);
// Post.Comments is the full count.
type Comment struct {
	Author string `json:"author"`
	Text   string `json:"text"`
}

// Post is one forum submission. The Truth* fields are generation ground
// truth and are excluded from serialization: a consumer of the corpus (the
// USaaS service in particular) must never see them.
type Post struct {
	ID       uint64       `json:"id"`
	Day      timeline.Day `json:"day"`
	Author   string       `json:"author"`
	Title    string       `json:"title"`
	Body     string       `json:"body"`
	Upvotes  int          `json:"upvotes"`
	Comments int          `json:"comments"`
	Country  string       `json:"country"`

	// Replies holds the text of up to maxTextReplies top comments.
	Replies []Comment `json:"replies,omitempty"`

	// Screenshot is attached to speed-test posts (nil otherwise).
	Screenshot *ocr.Screenshot `json:"screenshot,omitempty"`

	// Ground truth for validation only — see the package comment.
	TruthKind   PostKind    `json:"-"`
	TruthReport *ocr.Report `json:"-"`
}

// Text returns title and body joined: the unit the sentiment stage scores
// (the paper scores "individual Reddit posts").
func (p *Post) Text() string { return p.Title + ". " + p.Body }

// ThreadText returns the post plus its retained replies: the unit the
// Fig. 6 keyword monitor scans (the paper counts keyword occurrences "in
// these filtered Reddit threads").
func (p *Post) ThreadText() string {
	if len(p.Replies) == 0 {
		return p.Text()
	}
	var b strings.Builder
	b.WriteString(p.Text())
	for _, c := range p.Replies {
		b.WriteString(" ")
		b.WriteString(c.Text)
	}
	return b.String()
}

// Corpus is a day-indexed collection of posts.
type Corpus struct {
	Window timeline.Range
	Posts  []Post // sorted by (Day, ID)

	byDay map[timeline.Day][]int

	// tokens is the lazily built tokenize-once index (tokens.go).
	tokOnce sync.Once
	tokens  *TokenCache
}

// NewCorpus builds a corpus over the window from posts (re-sorted and
// indexed).
func NewCorpus(window timeline.Range, posts []Post) *Corpus {
	sort.Slice(posts, func(i, j int) bool {
		if posts[i].Day != posts[j].Day {
			return posts[i].Day < posts[j].Day
		}
		return posts[i].ID < posts[j].ID
	})
	c := &Corpus{Window: window, Posts: posts, byDay: make(map[timeline.Day][]int)}
	for i := range posts {
		c.byDay[posts[i].Day] = append(c.byDay[posts[i].Day], i)
	}
	return c
}

// OnDay returns the posts of one day (shared backing; do not modify).
func (c *Corpus) OnDay(d timeline.Day) []*Post {
	idx := c.byDay[d]
	out := make([]*Post, len(idx))
	for i, j := range idx {
		out[i] = &c.Posts[j]
	}
	return out
}

// PostIndexRange returns the half-open [lo, hi) range of c.Posts indices on
// day d — contiguous because Posts is sorted by (Day, ID). Empty days
// return (0, 0).
func (c *Corpus) PostIndexRange(d timeline.Day) (lo, hi int) {
	idx := c.byDay[d]
	if len(idx) == 0 {
		return 0, 0
	}
	return idx[0], idx[len(idx)-1] + 1
}

// Len returns the total post count.
func (c *Corpus) Len() int { return len(c.Posts) }

// WeeklyAverages returns posts, upvotes, and comments per week — the §4.1
// corpus statistics (372 / 8,190 / 5,702 in the paper).
func (c *Corpus) WeeklyAverages() (posts, upvotes, comments float64) {
	weeks := float64(c.Window.Len()) / 7
	if weeks <= 0 {
		return 0, 0, 0
	}
	var up, cm int
	for i := range c.Posts {
		up += c.Posts[i].Upvotes
		cm += c.Posts[i].Comments
	}
	return float64(len(c.Posts)) / weeks, float64(up) / weeks, float64(cm) / weeks
}
