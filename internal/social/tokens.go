package social

import (
	"usersignals/internal/nlp"
	"usersignals/internal/parallel"
)

// TokenCache is the corpus's tokenize-once index: every post's title, body,
// and retained replies lexed, stemmed, and interned exactly once into dense
// nlp.TokenID streams backed by a single arena. Downstream analyses
// (sentiment, word clouds, dictionary matching, trend mining) then operate
// on integer slices and never touch post text again.
//
// Token streams are stored per post as one thread-ordered run: the post's
// own text first (Title then Body — the token sequence of Post.Text,
// because the ". " joiner can never fuse tokens across the boundary),
// followed by each retained reply (the token sequence of Post.ThreadText).
// Neither string concatenation is ever materialized.
type TokenCache struct {
	in    *nlp.Interner
	arena []nlp.TokenID
	spans []tokenSpan // indexed like Corpus.Posts
}

type tokenSpan struct {
	off       int32
	textLen   int32 // tokens of Title+Body (Post.Text)
	threadLen int32 // textLen + reply tokens (Post.ThreadText)
}

// Interner returns the corpus vocabulary. Read-only.
func (tc *TokenCache) Interner() *nlp.Interner { return tc.in }

// Text returns post i's interned Text token stream (shared; read-only).
func (tc *TokenCache) Text(i int) []nlp.TokenID {
	sp := tc.spans[i]
	return tc.arena[sp.off : sp.off+sp.textLen]
}

// Thread returns post i's interned ThreadText token stream (shared;
// read-only).
func (tc *TokenCache) Thread(i int) []nlp.TokenID {
	sp := tc.spans[i]
	return tc.arena[sp.off : sp.off+sp.threadLen]
}

// Tokens returns the corpus token cache, building it on first use with one
// worker per CPU. The build is deterministic at any worker count (see
// buildTokenCache), so lazy construction never changes analysis output.
func (c *Corpus) Tokens() *TokenCache { return c.BuildTokens(0) }

// BuildTokens builds (or returns the already-built) token cache using the
// given worker count; zero or negative means one per CPU.
func (c *Corpus) BuildTokens(workers int) *TokenCache {
	c.tokOnce.Do(func() { c.tokens = buildTokenCache(c, workers) })
	return c.tokens
}

// buildTokenCache shards posts into canonical chunks (parallel.ChunkSize,
// boundaries depending only on post count): each worker lexes its chunk
// into a chunk-local interner, and a serial merge in chunk order re-interns
// each chunk's vocabulary into the global interner and remaps its token
// streams. Global TokenIDs are therefore assigned in (chunk, local-ID)
// order — a pure function of the post sequence — so the cache is
// byte-identical at any worker count.
func buildTokenCache(c *Corpus, workers int) *TokenCache {
	n := len(c.Posts)
	tc := &TokenCache{in: nlp.NewInterner()}
	if n == 0 {
		return tc
	}

	type chunkTokens struct {
		local *nlp.Interner
		arena []nlp.TokenID // chunk-local IDs
		spans []tokenSpan   // offsets relative to the chunk arena
	}
	parts, _ := parallel.Map(workers, parallel.Chunks(n), func(i int) (chunkTokens, error) {
		lo, hi := parallel.ChunkBounds(i, n)
		ct := chunkTokens{local: nlp.NewInterner(), spans: make([]tokenSpan, 0, hi-lo)}
		for j := lo; j < hi; j++ {
			p := &c.Posts[j]
			off := int32(len(ct.arena))
			ct.arena = ct.local.AppendTokens(ct.arena, p.Title)
			ct.arena = ct.local.AppendTokens(ct.arena, p.Body)
			textLen := int32(len(ct.arena)) - off
			for k := range p.Replies {
				ct.arena = ct.local.AppendTokens(ct.arena, p.Replies[k].Text)
			}
			ct.spans = append(ct.spans, tokenSpan{off: off, textLen: textLen, threadLen: int32(len(ct.arena)) - off})
		}
		return ct, nil
	})

	total := 0
	for _, ct := range parts {
		total += len(ct.arena)
	}
	tc.arena = make([]nlp.TokenID, 0, total)
	tc.spans = make([]tokenSpan, 0, n)
	for _, ct := range parts {
		remap := make([]nlp.TokenID, ct.local.Len())
		for id := range remap {
			remap[id] = tc.in.Intern(ct.local.Token(nlp.TokenID(id)))
		}
		base := int32(len(tc.arena))
		for _, id := range ct.arena {
			tc.arena = append(tc.arena, remap[id])
		}
		for _, sp := range ct.spans {
			sp.off += base
			tc.spans = append(tc.spans, sp)
		}
	}
	return tc
}
