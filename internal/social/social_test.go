package social

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"usersignals/internal/leo"
	"usersignals/internal/nlp"
	"usersignals/internal/ocr"
	"usersignals/internal/timeline"
)

func testCorpus(t *testing.T, seed uint64) *Corpus {
	t.Helper()
	c, err := Generate(DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusStatistics(t *testing.T) {
	c := testCorpus(t, 1)
	posts, upvotes, comments := c.WeeklyAverages()
	// §4.1: 372 posts, 8190 upvotes, 5702 comments per week.
	if posts < 300 || posts > 470 {
		t.Fatalf("posts/week = %v, want ~372", posts)
	}
	if upvotes < 5000 || upvotes > 13000 {
		t.Fatalf("upvotes/week = %v, want ~8190", upvotes)
	}
	if comments < 3500 || comments > 9500 {
		t.Fatalf("comments/week = %v, want ~5702", comments)
	}
}

func TestSpeedTestVolume(t *testing.T) {
	c := testCorpus(t, 2)
	n := 0
	for i := range c.Posts {
		if c.Posts[i].TruthKind == KindSpeedTest {
			n++
			if c.Posts[i].Screenshot == nil || c.Posts[i].TruthReport == nil {
				t.Fatal("speed-test post missing screenshot or truth")
			}
		} else if c.Posts[i].Screenshot != nil {
			t.Fatal("non-speedtest post has a screenshot")
		}
	}
	// §4.2: ~1750 shared reports over the two years.
	if n < 1400 || n > 2100 {
		t.Fatalf("speed-test posts = %d, want ~1750", n)
	}
}

func TestDeterminism(t *testing.T) {
	a := testCorpus(t, 7)
	b := testCorpus(t, 7)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Posts {
		pa, pb := a.Posts[i], b.Posts[i]
		if pa.Text() != pb.Text() || pa.ThreadText() != pb.ThreadText() {
			t.Fatalf("post %d text differs", i)
		}
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("post %d differs", i)
		}
	}
}

func TestCorpusIndex(t *testing.T) {
	c := testCorpus(t, 3)
	d := timeline.Date(2022, time.March, 10)
	total := 0
	for _, p := range c.OnDay(d) {
		if p.Day != d {
			t.Fatalf("OnDay returned post from %v", p.Day)
		}
		total++
	}
	if total == 0 {
		t.Fatal("no posts on an ordinary day")
	}
	// Posts sorted by day.
	for i := 1; i < len(c.Posts); i++ {
		if c.Posts[i].Day < c.Posts[i-1].Day {
			t.Fatal("posts not sorted by day")
		}
	}
}

func TestAnchorEventBursts(t *testing.T) {
	c := testCorpus(t, 4)
	an := nlp.NewAnalyzer()

	dayStats := func(d timeline.Day) (strongPos, strongNeg, total int) {
		for _, p := range c.OnDay(d) {
			total++
			s := an.Score(p.Text())
			if s.StrongPositive() {
				strongPos++
			}
			if s.StrongNegative() {
				strongNeg++
			}
		}
		return
	}

	preorderPos, _, _ := dayStats(timeline.Date(2021, time.February, 9))
	_, delayNeg, _ := dayStats(timeline.Date(2021, time.November, 24))
	_, aprNeg, _ := dayStats(timeline.Date(2022, time.April, 22))
	_, janNeg, _ := dayStats(timeline.Date(2022, time.January, 7))
	_, augNeg, _ := dayStats(timeline.Date(2022, time.August, 30))

	if preorderPos < 150 {
		t.Fatalf("preorder day strong-positive = %d, too small", preorderPos)
	}
	if delayNeg < 120 {
		t.Fatalf("delay day strong-negative = %d, too small", delayNeg)
	}
	if aprNeg < 80 {
		t.Fatalf("April outage strong-negative = %d, too small", aprNeg)
	}
	// Fig 5a ordering: preorder > delay > April-outage > the press-covered
	// outages (whose posts are mostly mild symptom reports).
	if !(preorderPos > delayNeg && delayNeg > aprNeg) {
		t.Fatalf("top-3 ordering broken: preorder=%d delay=%d apr=%d", preorderPos, delayNeg, aprNeg)
	}
	if aprNeg <= janNeg || aprNeg <= augNeg {
		t.Fatalf("April (%d) should exceed Jan (%d) and Aug (%d) in strong sentiment", aprNeg, janNeg, augNeg)
	}
}

func TestOutageKeywordOrdering(t *testing.T) {
	c := testCorpus(t, 5)
	dict := nlp.OutageDictionary()
	an := nlp.NewAnalyzer()
	keywordCount := func(d timeline.Day) int {
		n := 0
		for _, p := range c.OnDay(d) {
			s := an.Score(p.Text())
			if s.Negative > s.Positive { // Fig 6's negative-sentiment gate
				n += dict.Count(p.Text())
			}
		}
		return n
	}
	jan := keywordCount(timeline.Date(2022, time.January, 7))
	apr := keywordCount(timeline.Date(2022, time.April, 22))
	aug := keywordCount(timeline.Date(2022, time.August, 30))
	quiet := keywordCount(timeline.Date(2022, time.June, 8))
	// Fig 6: the reported global outages have the largest keyword spikes.
	if !(jan > apr && aug > apr) {
		t.Fatalf("keyword ordering broken: jan=%d apr=%d aug=%d", jan, apr, aug)
	}
	if quiet*5 > apr {
		t.Fatalf("quiet day keywords %d too close to outage day %d", quiet, apr)
	}
}

func TestAprilOutageCountrySpread(t *testing.T) {
	c := testCorpus(t, 6)
	day := timeline.Date(2022, time.April, 22)
	countries := map[string]int{}
	for _, p := range c.OnDay(day) {
		if p.TruthKind == KindOutage {
			countries[p.Country]++
		}
	}
	if len(countries) < 14 {
		t.Fatalf("April outage spans %d countries, want >= 14", len(countries))
	}
	if countries["US"] < 100 {
		t.Fatalf("US reports = %d, want ~190", countries["US"])
	}
}

func TestRoamingLeadTime(t *testing.T) {
	c := testCorpus(t, 8)
	tweetDay := timeline.Date(2022, time.March, 3)
	firstMention := timeline.Day(1 << 30)
	var preTweetMentions int
	for i := range c.Posts {
		p := &c.Posts[i]
		if p.TruthKind != KindFeature {
			continue
		}
		if p.Day < firstMention {
			firstMention = p.Day
		}
		if p.Day < tweetDay {
			preTweetMentions++
		}
	}
	lead := int(tweetDay - firstMention)
	if lead < 10 || lead > 21 {
		t.Fatalf("roaming first mention %d days before tweet, want ~14", lead)
	}
	if preTweetMentions < 50 {
		t.Fatalf("only %d pre-announcement roaming posts", preTweetMentions)
	}
	// Feature threads are popular (miner relies on this).
	var featureUp, generalUp, nFeat, nGen float64
	for i := range c.Posts {
		p := &c.Posts[i]
		switch p.TruthKind {
		case KindFeature:
			featureUp += float64(p.Upvotes)
			nFeat++
		case KindGeneral:
			generalUp += float64(p.Upvotes)
			nGen++
		}
	}
	if featureUp/nFeat <= generalUp/nGen {
		t.Fatalf("feature posts not more popular: %v vs %v", featureUp/nFeat, generalUp/nGen)
	}
}

func TestNoRoamingBeforeLeak(t *testing.T) {
	c := testCorpus(t, 9)
	leak := timeline.Date(2022, time.February, 15)
	for i := range c.Posts {
		p := &c.Posts[i]
		if p.Day < leak && p.TruthKind == KindFeature {
			t.Fatalf("feature post before the leak day: %+v", p)
		}
	}
}

func TestSpeedPostsSentimentFollowsConditions(t *testing.T) {
	// Posts carrying fast-for-the-time results should skew positive, slow
	// ones negative — measured with the NLP pipeline, not ground truth.
	c := testCorpus(t, 10)
	an := nlp.NewAnalyzer()
	m := leo.NewModel()
	var fastPos, fastNeg, slowPos, slowNeg int
	for i := range c.Posts {
		p := &c.Posts[i]
		if p.TruthKind != KindSpeedTest {
			continue
		}
		med := m.MedianDownMbps(p.Day)
		s := an.Score(p.Text())
		switch {
		case p.TruthReport.DownMbps > med*1.5:
			if s.Positive > s.Negative {
				fastPos++
			} else if s.Negative > s.Positive {
				fastNeg++
			}
		case p.TruthReport.DownMbps < med*0.6:
			if s.Positive > s.Negative {
				slowPos++
			} else if s.Negative > s.Positive {
				slowNeg++
			}
		}
	}
	if fastPos <= fastNeg {
		t.Fatalf("fast results should skew positive: %d pos vs %d neg", fastPos, fastNeg)
	}
	if slowNeg <= slowPos {
		t.Fatalf("slow results should skew negative: %d pos vs %d neg", slowNeg, slowPos)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Window: timeline.StarlinkWindow}); err == nil {
		t.Fatal("missing model accepted")
	}
	cfg := DefaultConfig(1)
	cfg.Window = timeline.Range{From: 5, To: 0} // zero-length
	if _, err := Generate(cfg); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestOCRRecoverable(t *testing.T) {
	// The screenshots in the corpus must be readable by the OCR stage at
	// high yield, with values matching ground truth.
	c := testCorpus(t, 11)
	total, ok, accurate := 0, 0, 0
	for i := range c.Posts {
		p := &c.Posts[i]
		if p.TruthKind != KindSpeedTest {
			continue
		}
		total++
		ex, err := ocr.Extract(*p.Screenshot)
		if err != nil {
			continue
		}
		ok++
		if rel := abs(ex.DownMbps-p.TruthReport.DownMbps) / p.TruthReport.DownMbps; rel < 0.1 {
			accurate++
		}
	}
	if total == 0 {
		t.Fatal("no speed posts")
	}
	if yield := float64(ok) / float64(total); yield < 0.8 {
		t.Fatalf("OCR yield %v too low", yield)
	}
	if acc := float64(accurate) / float64(ok); acc < 0.95 {
		t.Fatalf("OCR accuracy %v too low", acc)
	}
}

func TestRepliesPresentAndToned(t *testing.T) {
	c := testCorpus(t, 12)
	dict := nlp.OutageDictionary()
	var withReplies, total int
	var outageReportReplies, outageReportKeyworded int
	for i := range c.Posts {
		p := &c.Posts[i]
		total++
		if len(p.Replies) > 0 {
			withReplies++
		}
		if len(p.Replies) > p.Comments || len(p.Replies) > 4 {
			t.Fatalf("reply cap violated: %d replies, %d comments", len(p.Replies), p.Comments)
		}
		// Thread text includes the replies.
		if len(p.Replies) > 0 && len(p.ThreadText()) <= len(p.Text()) {
			t.Fatal("ThreadText does not extend Text")
		}
		if p.TruthKind == KindOutage && len(p.Replies) > 0 {
			outageReportReplies++
			hasKeyword := false
			for _, rep := range p.Replies {
				if dict.Matches(rep.Text) {
					hasKeyword = true
					break
				}
			}
			if hasKeyword {
				outageReportKeyworded++
			}
		}
	}
	if frac := float64(withReplies) / float64(total); frac < 0.7 {
		t.Fatalf("only %v of posts have textual replies", frac)
	}
	// Outage threads lean on keyword-bearing confirmations overall
	// (report threads do; angry threads vent).
	if outageReportReplies == 0 || outageReportKeyworded == 0 {
		t.Fatal("no keyworded outage replies")
	}
}

func TestPostJSONHidesTruthKeepsReplies(t *testing.T) {
	c := testCorpus(t, 13)
	for i := range c.Posts {
		p := &c.Posts[i]
		if p.TruthKind != KindSpeedTest || len(p.Replies) == 0 {
			continue
		}
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		s := string(data)
		if strings.Contains(s, "Truth") || strings.Contains(s, "truth") {
			t.Fatalf("ground truth leaked into JSON: %s", s)
		}
		if !strings.Contains(s, "replies") {
			t.Fatalf("replies missing from JSON: %s", s)
		}
		var back Post
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.ThreadText() != p.ThreadText() {
			t.Fatal("thread text not preserved through JSON")
		}
		return
	}
	t.Fatal("no speed-test post with replies found")
}

func TestPostKindStrings(t *testing.T) {
	for k := KindGeneral; k <= KindFeature; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if PostKind(99).String() != "unknown" {
		t.Fatal("unknown kind mislabeled")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
