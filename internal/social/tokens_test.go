package social

import (
	"reflect"
	"testing"

	"usersignals/internal/nlp"
	"usersignals/internal/timeline"
)

func tokenTestCorpus(t *testing.T) (Config, *Corpus) {
	t.Helper()
	cfg := DefaultConfig(41)
	cfg.Window = timeline.Range{
		From: timeline.StarlinkWindow.From,
		To:   timeline.StarlinkWindow.From + 119,
	}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, c
}

// TestTokenCacheMatchesTokenize: each post's cached streams must reproduce
// Tokenize of the Text()/ThreadText() concatenations exactly — the cache
// never materializes those strings, so this is the equivalence the whole
// engine rests on.
func TestTokenCacheMatchesTokenize(t *testing.T) {
	_, c := tokenTestCorpus(t)
	tc := c.Tokens()
	in := tc.Interner()
	for i := range c.Posts {
		p := &c.Posts[i]
		for name, pair := range map[string]struct {
			ids  []nlp.TokenID
			text string
		}{
			"text":   {tc.Text(i), p.Text()},
			"thread": {tc.Thread(i), p.ThreadText()},
		} {
			want := nlp.Tokenize(pair.text)
			if len(pair.ids) != len(want) {
				t.Fatalf("post %d %s: %d tokens cached, Tokenize gives %d", i, name, len(pair.ids), len(want))
			}
			for j, id := range pair.ids {
				if in.Token(id) != want[j] {
					t.Fatalf("post %d %s token %d: %q, want %q", i, name, j, in.Token(id), want[j])
				}
			}
		}
	}
}

// TestTokenCacheDeterministic: the cache (IDs included, not just the token
// text) must be identical at any worker count.
func TestTokenCacheDeterministic(t *testing.T) {
	cfg, base := tokenTestCorpus(t)
	ref := clone(cfg, base).BuildTokens(1)
	for _, w := range []int{4, 16} {
		got := clone(cfg, base).BuildTokens(w)
		if !reflect.DeepEqual(got.arena, ref.arena) {
			t.Fatalf("workers=%d: token arena differs from serial build", w)
		}
		if !reflect.DeepEqual(got.spans, ref.spans) {
			t.Fatalf("workers=%d: spans differ from serial build", w)
		}
		if got.in.Len() != ref.in.Len() {
			t.Fatalf("workers=%d: vocabulary size %d, want %d", w, got.in.Len(), ref.in.Len())
		}
		for id := 0; id < ref.in.Len(); id++ {
			if got.in.Token(nlp.TokenID(id)) != ref.in.Token(nlp.TokenID(id)) {
				t.Fatalf("workers=%d: TokenID %d names %q, want %q",
					w, id, got.in.Token(nlp.TokenID(id)), ref.in.Token(nlp.TokenID(id)))
			}
		}
	}
}

func clone(cfg Config, base *Corpus) *Corpus {
	return NewCorpus(cfg.Window, append([]Post(nil), base.Posts...))
}

func TestPostIndexRange(t *testing.T) {
	_, c := tokenTestCorpus(t)
	total := 0
	c.Window.Days(func(d timeline.Day) {
		lo, hi := c.PostIndexRange(d)
		byDay := c.OnDay(d)
		if hi-lo != len(byDay) {
			t.Fatalf("day %v: range spans %d posts, OnDay has %d", d, hi-lo, len(byDay))
		}
		for j := lo; j < hi; j++ {
			if c.Posts[j].Day != d {
				t.Fatalf("post %d in range for day %v has Day %v", j, d, c.Posts[j].Day)
			}
		}
		total += hi - lo
	})
	if total != c.Len() {
		t.Fatalf("day ranges cover %d posts, corpus has %d", total, c.Len())
	}
}
