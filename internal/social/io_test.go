package social

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestPostsJSONLRoundTrip(t *testing.T) {
	c := testCorpus(t, 14)
	posts := c.Posts[:300]
	var buf bytes.Buffer
	if err := WritePostsJSONL(&buf, posts); err != nil {
		t.Fatal(err)
	}
	back, err := CollectPostsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(posts) {
		t.Fatalf("read %d of %d", len(back), len(posts))
	}
	for i := range posts {
		if back[i].ID != posts[i].ID || back[i].ThreadText() != posts[i].ThreadText() {
			t.Fatalf("post %d mismatch", i)
		}
		if back[i].TruthKind != KindGeneral && back[i].TruthKind != 0 {
			t.Fatal("ground truth crossed the wire")
		}
		if posts[i].Screenshot != nil && back[i].Screenshot == nil {
			t.Fatalf("screenshot lost on post %d", i)
		}
	}
}

func TestReadPostsJSONLErrors(t *testing.T) {
	if err := ReadPostsJSONL(strings.NewReader("{broken\n"), func(*Post) error { return nil }); err == nil {
		t.Fatal("broken JSON accepted")
	}
	sentinel := errors.New("stop")
	input := "{\"id\":1}\n{\"id\":2}\n"
	n := 0
	err := ReadPostsJSONL(strings.NewReader(input), func(*Post) error {
		n++
		return sentinel
	})
	if !errors.Is(err, sentinel) || n != 1 {
		t.Fatalf("callback error handling: err=%v n=%d", err, n)
	}
	// Blank lines are skipped; empty input is fine.
	if err := ReadPostsJSONL(strings.NewReader("\n\n"), func(*Post) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
