package social

import (
	"fmt"
	"strings"

	"usersignals/internal/simrand"
)

// Template pools. Placeholders: %s slots are filled by the callers below.
// The emotional vocabulary deliberately overlaps nlp.DefaultLexicon — that
// is not cheating but the premise of lexicon sentiment analysis: people use
// sentiment-bearing words, and the analyzer knows them. Tests verify the
// analyzer recovers the intended polarity without seeing TruthKind.

var praiseTemplates = []string{
	"Absolutely amazing speeds tonight, I love this service!",
	"Service has been fantastic lately. So impressed with the reliability.",
	"Speeds are excellent out here, streaming is totally smooth. Love it.",
	"Really happy with the connection this month, works great for video calls.",
	"This is a game-changer for rural internet. Extremely happy, flawless week.",
	"Upgraded from DSL and wow — incredible difference, super fast and stable.",
	"Another great month. Reliable, quick, and the family is thrilled.",
	// Mentions an outage positively — exactly the false positive the
	// Fig. 6 sentiment gate exists to filter out.
	"Back online after yesterday's outage — impressed how fast it recovered, great service.",
}

var complaintTemplates = []string{
	"Speeds have been terrible lately, really disappointed with the service.",
	"Constant buffering and lag this week. Very frustrating experience.",
	"Evening speeds are awful now. Unacceptable for the price, honestly.",
	"So disappointed — everything is slow and choppy during peak hours.",
	"Quality keeps getting worse every month. Extremely annoyed.",
	"Video calls keep freezing, uploads fail, genuinely unusable some evenings.",
	"The congestion is horrible lately. Regretting the upgrade, very frustrated.",
}

// Angry outage templates: emphatic negative language around a single
// "outage" keyword (the 22 Apr '22 flavour: fury, not symptom lists).
var outageAngryTemplates = []string{
	"Total outage here in %s, absolutely unacceptable. Horrible, horrible evening.",
	"Outage in %s for hours. Furious — this is terrible, truly awful service.",
	"Another outage in %s?! Unusable garbage tonight, I am so angry.",
	"Horrible outage in %s again. Absolutely the worst evening yet, hate this.",
}

// Matter-of-fact outage templates: keyword-dense but mildly worded (the
// press-covered incidents read as confirmations and symptom lists, not
// rage). They deliberately lean on dictionary keywords that carry little
// lexicon valence (down, no connection, not working) so Fig. 6's keyword
// counts and Fig. 5a's strong-sentiment counts can diverge, as they do in
// the paper.
var outageReportTemplates = []string{
	"Is it down for anyone else in %s? No connection since morning, went down around nine, router shows no internet.",
	"Outage check from %s — everything down here, no service on the app, dish not working since the news broke.",
	"%s here: down as well. No connection, no internet, stopped working an hour ago. Seems like wide downtime.",
	"Confirming from %s: service went down, no connection on two dishes, app says no service, still not working.",
	"Down in %s too. No internet, no connection, cant connect to anything. Downtime tracker says the same.",
}

var generalTemplates = []string{
	"Finally mounted the dish on the roof. Cable routing under the eaves took a while.",
	"Question about the router placement — garage or living room for a two-floor house?",
	"Dish survived the first storm of the season. Snow melt feature kicked in overnight.",
	"Sharing my cable run photos. Used the ridge mount with a conduit into the attic.",
	"Anyone tried the ethernet adapter with a mesh setup? Looking for pointers.",
	"Obstruction map shows a pine tree clipping the view. Considering a taller pole.",
	"Power draw measurements for the dish across a week, numbers in the comments.",
	"Moving the dish from the yard to the roof this weekend. Wish me luck.",
	// Neutral keyword mention, another gate-test case.
	"Planning for downtime: what do you folks do when the service is down? Starting a hobby thread.",
}

var speedPraiseTemplates = []string{
	"These numbers are absolutely amazing, so happy, love this service.",
	"Excellent results tonight, really impressed — fantastic and reliable.",
	"New personal best! Fantastic speeds, love it, so excited.",
}

var speedComplaintTemplates = []string{
	"Terrible numbers tonight, so disappointed — awful and frustrating trend.",
	"Horrible result. Terrible speeds, dropping every month, very frustrated.",
	"Awful peak-hour result, extremely disappointed, this is really bad now.",
}

var speedNeutralTemplates = []string{
	"Speed test result from this evening, posting for the data collection thread.",
	"Monthly speed test screenshot. North-facing dish, clear view.",
	"Test result attached. Rural cell, posting for comparison.",
}

var preorderTemplates = []string{
	"Pre-orders open! Absolutely amazing news, so excited, love it.",
	"Ordered today — fantastic, thrilled, this is wonderful news.",
	"Pre-order confirmed! Absolutely thrilled, incredible, love where this is going.",
	"Placed mine! Incredible milestone, so happy, truly excellent news.",
}

var delayTemplates = []string{
	"Delay email. Terrible, so disappointed, really frustrating wait.",
	"Pushed back again. So disappointed, extremely frustrating, awful communication.",
	"The delay notice is absolutely unacceptable. Furious, terrible handling.",
	"Another delay?! Awful, extremely disappointed, horrible communication.",
}

var featureTemplates = []string{
	"Roaming is working! Took the dish to a different state and it connected. Amazing.",
	"Roaming enabled on my account it seems — used the dish at the lake cabin, works great.",
	"Tried the dish two counties over: roaming works. Really exciting development.",
	"Roaming seems enabled now, tested while camping. Fantastic surprise.",
}

var featureAnnounceTemplates = []string{
	"Roaming officially announced! Great news, so excited to travel with the dish.",
	"The roaming announcement is here — love it, exactly what I hoped for.",
	"Mobile roaming confirmed by the company. Excellent, been waiting for this.",
}

// Reply pools, mirroring the tone of their thread kinds. Outage-thread
// confirmations are deliberately keyword-bearing — that is where the
// Fig. 6 thread-level counts come from.
var outageReplyTemplates = []string{
	"Same here, down in %s since this morning.",
	"Confirming — no connection in %s either.",
	"Down as well, app shows offline.",
	"No internet here too, router rebooted twice, still nothing.",
	"Went down around the same time for us. No service on the dish.",
}

// Angry-thread replies vent rather than report symptoms: emphatic and
// nearly keyword-free, mirroring the 22 Apr '22 thread tone.
var outageAngryReplyTemplates = []string{
	"Absolutely ridiculous, furious over here too.",
	"Unacceptable. Second time this month, so angry.",
	"Same, this is terrible. Considering cancelling.",
	"Horrible evening, hate when this happens.",
}

var praiseReplyTemplates = []string{
	"Same experience here, it has been great lately.",
	"Glad it works for you — solid on our end too.",
	"Agreed, really impressive this month.",
}

var complaintReplyTemplates = []string{
	"Seeing the same thing, very frustrating.",
	"Yep, evenings are rough here as well.",
	"Same. Hope they fix the congestion soon.",
}

var generalReplyTemplates = []string{
	"Nice setup! How long did the cable run take?",
	"Thanks for sharing, very helpful.",
	"Following this, in the same situation.",
	"Photos would help, but sounds reasonable.",
}

var featureReplyTemplates = []string{
	"Can confirm, roaming works for me as well.",
	"Tried it last weekend — roaming enabled here too.",
	"Great find! Hope it stays enabled.",
}

var speedReplyTemplates = []string{
	"What cell are you in? Mine looks similar.",
	"Thanks for the data point.",
	"Peak hours tell a different story here.",
}

var countries = []string{
	"US", "US", "US", "US", "US", "US", "US", "US", // ~2/3 US
	"CA", "CA", "GB", "AU", "DE", "FR", "NZ", "MX", "BR", "IT", "PL", "CL",
}

var usStates = []string{
	"Ohio", "Texas", "Montana", "Vermont", "Idaho", "Maine", "Oregon",
	"Georgia", "Michigan", "Colorado", "Washington", "Virginia",
}

// fillPlace substitutes a location into templates with one %s.
func fillPlace(r *simrand.RNG, tmpl, country string) string {
	place := country
	if country == "US" {
		place = simrand.Pick(r, usStates)
	}
	if strings.Contains(tmpl, "%s") {
		return fmt.Sprintf(tmpl, place)
	}
	return tmpl
}

// authorName derives a stable pseudonymous author handle.
func authorName(r *simrand.RNG) string {
	adjectives := []string{"rural", "northern", "snowy", "remote", "mobile", "offgrid", "prairie", "coastal"}
	nouns := []string{"dish", "beam", "orbit", "antenna", "router", "signal", "sat", "node"}
	return simrand.Pick(r, adjectives) + "_" + simrand.Pick(r, nouns) + fmt.Sprint(r.Intn(1000))
}
