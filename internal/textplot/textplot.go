// Package textplot renders simple terminal charts — line series, grouped
// bar charts, and heatmaps — used by cmd/figures to display each
// reproduced figure next to its CSV output. Rendering is deterministic and
// dependency-free.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders one or more series as an ASCII scatter/line chart of the
// given size. NaN points are skipped. Each series uses its own marker rune.
type Chart struct {
	Title    string
	XLabel   string
	YLabel   string
	Width    int // plot area columns (default 64)
	Height   int // plot area rows (default 16)
	Series   []Series
	YMinZero bool // force the y-axis to start at zero
}

var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if c.YMinZero && ymin > 0 {
		ymin = 0
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = make([]rune, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(w-1))
			row := h - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = m
			}
		}
	}

	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		b.WriteString(label + " |" + string(row) + "\n")
	}
	b.WriteString(strings.Repeat(" ", pad) + " +" + strings.Repeat("-", w) + "\n")
	xAxis := fmt.Sprintf("%*s  %-10.4g%s%10.4g", pad, "", xmin,
		strings.Repeat(" ", maxInt(0, w-22)), xmax)
	b.WriteString(xAxis + "\n")
	if c.XLabel != "" || len(c.Series) > 1 {
		var legend []string
		for si, s := range c.Series {
			if s.Name != "" {
				legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
			}
		}
		line := "  " + c.XLabel
		if len(legend) > 0 {
			line += "   [" + strings.Join(legend, "  ") + "]"
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// Heatmap renders a 2D grid of values with a density ramp (low → high:
// " .:-=+*#%@"). NaN cells render as '?'.
type Heatmap struct {
	Title   string
	XLabels []string
	YLabels []string
	Values  [][]float64 // [y][x]
}

var ramp = []rune(" .:-=+*#%@")

// Render draws the heatmap.
func (hm Heatmap) Render() string {
	var b strings.Builder
	if hm.Title != "" {
		b.WriteString(hm.Title + "\n")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range hm.Values {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if hi == lo {
		hi = lo + 1
	}
	labelPad := 0
	for _, l := range hm.YLabels {
		if len(l) > labelPad {
			labelPad = len(l)
		}
	}
	for yi, row := range hm.Values {
		label := ""
		if yi < len(hm.YLabels) {
			label = hm.YLabels[yi]
		}
		b.WriteString(fmt.Sprintf("%*s |", labelPad, label))
		for _, v := range row {
			if math.IsNaN(v) {
				b.WriteString(" ? ")
				continue
			}
			idx := int((v - lo) / (hi - lo) * float64(len(ramp)-1))
			b.WriteString(" " + string(ramp[idx]) + " ")
		}
		b.WriteString("\n")
	}
	if len(hm.XLabels) > 0 {
		b.WriteString(fmt.Sprintf("%*s  ", labelPad, ""))
		for _, l := range hm.XLabels {
			b.WriteString(fmt.Sprintf("%-3s", firstN(l, 3)))
		}
		b.WriteString("\n")
	}
	b.WriteString(fmt.Sprintf("scale: %.4g (' ') to %.4g ('@')\n", lo, hi))
	return b.String()
}

// Bars renders a labelled horizontal bar chart.
type Bars struct {
	Title  string
	Labels []string
	Values []float64
	Width  int // max bar width (default 50)
}

// Render draws the bars.
func (bc Bars) Render() string {
	var b strings.Builder
	if bc.Title != "" {
		b.WriteString(bc.Title + "\n")
	}
	w := bc.Width
	if w <= 0 {
		w = 50
	}
	maxV := 0.0
	labelPad := 0
	for i, v := range bc.Values {
		if !math.IsNaN(v) && v > maxV {
			maxV = v
		}
		if i < len(bc.Labels) && len(bc.Labels[i]) > labelPad {
			labelPad = len(bc.Labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for i, v := range bc.Values {
		label := ""
		if i < len(bc.Labels) {
			label = bc.Labels[i]
		}
		if math.IsNaN(v) {
			b.WriteString(fmt.Sprintf("%*s | (n/a)\n", labelPad, label))
			continue
		}
		n := int(v / maxV * float64(w))
		b.WriteString(fmt.Sprintf("%*s |%s %.4g\n", labelPad, label, strings.Repeat("█", n), v))
	}
	return b.String()
}

func firstN(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
