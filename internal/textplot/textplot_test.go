package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:  "Engagement vs latency",
		XLabel: "latency ms",
		Series: []Series{
			{Name: "mic-on", X: []float64{0, 100, 200, 300}, Y: []float64{100, 90, 80, 75}},
			{Name: "cam-on", X: []float64{0, 100, 200, 300}, Y: []float64{100, 95, 88, 82}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "Engagement vs latency") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("series markers missing")
	}
	if !strings.Contains(out, "mic-on") || !strings.Contains(out, "cam-on") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "100") || !strings.Contains(out, "75") {
		t.Fatal("y-axis labels missing")
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart{Title: "t"}.Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart = %q", out)
	}
	nan := Chart{Series: []Series{{X: []float64{1}, Y: []float64{math.NaN()}}}}
	if !strings.Contains(nan.Render(), "(no data)") {
		t.Fatal("all-NaN chart should render as no data")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point: must not divide by zero.
	c := Chart{Series: []Series{{X: []float64{5}, Y: []float64{7}}}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point lost: %q", out)
	}
	// YMinZero extends the axis.
	c2 := Chart{YMinZero: true, Series: []Series{{X: []float64{0, 1}, Y: []float64{50, 60}}}}
	if !strings.Contains(c2.Render(), " 0") {
		t.Fatal("YMinZero not applied")
	}
}

func TestHeatmapRender(t *testing.T) {
	hm := Heatmap{
		Title:   "Presence",
		XLabels: []string{"0", "1", "2"},
		YLabels: []string{"low", "high"},
		Values:  [][]float64{{10, 50, 90}, {5, math.NaN(), 100}},
	}
	out := hm.Render()
	if !strings.Contains(out, "Presence") || !strings.Contains(out, "low") {
		t.Fatal("labels missing")
	}
	if !strings.Contains(out, "?") {
		t.Fatal("NaN cell not marked")
	}
	if !strings.Contains(out, "@") {
		t.Fatal("max cell not at top of ramp")
	}
	if !strings.Contains(out, "scale:") {
		t.Fatal("scale line missing")
	}
}

func TestHeatmapEmpty(t *testing.T) {
	if !strings.Contains((Heatmap{}).Render(), "(no data)") {
		t.Fatal("empty heatmap")
	}
}

func TestBarsRender(t *testing.T) {
	b := Bars{
		Title:  "Weekly averages",
		Labels: []string{"posts", "upvotes"},
		Values: []float64{372, 8190},
	}
	out := b.Render()
	if !strings.Contains(out, "posts") || !strings.Contains(out, "8190") {
		t.Fatalf("bars output: %q", out)
	}
	// Longest bar belongs to the max value.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Fatal("bar lengths not proportional")
	}
}

func TestBarsDegenerate(t *testing.T) {
	out := Bars{Labels: []string{"a"}, Values: []float64{math.NaN()}}.Render()
	if !strings.Contains(out, "(n/a)") {
		t.Fatalf("NaN bar: %q", out)
	}
	zero := Bars{Labels: []string{"z"}, Values: []float64{0}}.Render()
	if !strings.Contains(zero, "z") {
		t.Fatal("zero bar lost its label")
	}
}
