package netsim

import (
	"math"

	"usersignals/internal/simrand"
)

// PathConfig fixes the base (session-long) characteristics of one path.
// Per-sample variation and transient events are layered on top by Path.
type PathConfig struct {
	// Label identifies the access population the path was drawn from
	// (e.g. "fiber", "leo-satellite"); consumers map it to an ISP name.
	Label string

	BaseLatencyMs     float64 // steady-state one-way latency
	BaseLossPct       float64 // background random loss percentage
	BaseJitterMs      float64 // steady-state jitter
	CapacityMbps      float64 // nominal access capacity
	UtilizationJitter float64 // relative cross-traffic variability in [0, 1]

	// Event rates per sample (i.e. per 5 s): probabilities of transient
	// impairments starting at a given sample.
	LossBurstRate    float64 // burst of heavy loss (congestion, wifi fade)
	JitterSpikeRate  float64 // buffer-bloat style delay variation episode
	BandwidthDipRate float64 // competing traffic grabs capacity
}

// clampConfig sanitizes out-of-range fields so a Path is always physical.
func (c PathConfig) clamp() PathConfig {
	if c.BaseLatencyMs < 0 {
		c.BaseLatencyMs = 0
	}
	if c.BaseLossPct < 0 {
		c.BaseLossPct = 0
	}
	if c.BaseLossPct > 100 {
		c.BaseLossPct = 100
	}
	if c.BaseJitterMs < 0 {
		c.BaseJitterMs = 0
	}
	if c.CapacityMbps < 0.05 {
		c.CapacityMbps = 0.05
	}
	if c.UtilizationJitter < 0 {
		c.UtilizationJitter = 0
	}
	if c.UtilizationJitter > 1 {
		c.UtilizationJitter = 1
	}
	return c
}

// Path is a stateful generator of condition samples for one session. It is
// not safe for concurrent use; each session owns its Path.
type Path struct {
	cfg PathConfig
	rng *simrand.RNG

	// replay, when non-nil, makes Next serve these samples verbatim
	// (looping) instead of generating — see TraceSource.
	replay    Series
	replayPos int

	// AR(1) states for smooth variation around the base values.
	latAR, jitAR, bwAR float64

	// remaining samples of active transient events
	lossBurstLeft    int
	lossBurstLevel   float64
	jitterSpikeLeft  int
	jitterSpikeLevel float64
	bwDipLeft        int
	bwDipLevel       float64
}

// AR(1) smoothing factor for sample-to-sample correlation: conditions five
// seconds apart are strongly related.
const arPhi = 0.7

// NewPath returns a path generator with the given base configuration. The
// RNG is owned by the path afterwards.
func NewPath(cfg PathConfig, rng *simrand.RNG) *Path {
	return &Path{cfg: cfg.clamp(), rng: rng}
}

// Config returns the path's base configuration.
func (p *Path) Config() PathConfig { return p.cfg }

// Next produces the next 5-second condition sample.
func (p *Path) Next() Conditions {
	if len(p.replay) > 0 {
		c := p.replay[p.replayPos%len(p.replay)]
		p.replayPos++
		return c
	}
	r := p.rng
	cfg := p.cfg

	// --- transient events ---
	if p.lossBurstLeft == 0 && r.Bool(cfg.LossBurstRate) {
		p.lossBurstLeft = 1 + r.Intn(6) // 5-30 s bursts
		p.lossBurstLevel = r.Range(1, 8)
	}
	if p.jitterSpikeLeft == 0 && r.Bool(cfg.JitterSpikeRate) {
		p.jitterSpikeLeft = 1 + r.Intn(4)
		p.jitterSpikeLevel = r.Range(5, 30)
	}
	if p.bwDipLeft == 0 && r.Bool(cfg.BandwidthDipRate) {
		p.bwDipLeft = 1 + r.Intn(12)
		p.bwDipLevel = r.Range(0.3, 0.8) // multiplicative capacity retained
	}

	// --- smooth AR(1) components ---
	p.latAR = arPhi*p.latAR + r.Normal(0, cfg.BaseLatencyMs*0.06+0.5)
	p.jitAR = arPhi*p.jitAR + r.Normal(0, cfg.BaseJitterMs*0.15+0.1)
	p.bwAR = arPhi*p.bwAR + r.Normal(0, cfg.CapacityMbps*cfg.UtilizationJitter*0.08)

	lat := cfg.BaseLatencyMs + p.latAR
	jit := cfg.BaseJitterMs + math.Abs(p.jitAR)
	bw := cfg.CapacityMbps + p.bwAR
	loss := cfg.BaseLossPct * r.Range(0.5, 1.5)

	if p.lossBurstLeft > 0 {
		p.lossBurstLeft--
		loss += p.lossBurstLevel
		// Loss bursts usually come with queueing delay.
		lat += p.lossBurstLevel * 3
		jit += p.lossBurstLevel * 0.8
	}
	if p.jitterSpikeLeft > 0 {
		p.jitterSpikeLeft--
		jit += p.jitterSpikeLevel
		lat += p.jitterSpikeLevel * 1.5 // bufferbloat raises delay too
	}
	if p.bwDipLeft > 0 {
		p.bwDipLeft--
		bw *= p.bwDipLevel
	}

	c := Conditions{
		LatencyMs:     math.Max(0, lat),
		LossPct:       math.Min(100, math.Max(0, loss)),
		JitterMs:      math.Max(0, jit),
		BandwidthMbps: math.Max(0.05, bw),
	}
	return c
}

// GenerateSeries produces n consecutive samples.
func (p *Path) GenerateSeries(n int) Series {
	s := make(Series, n)
	for i := range s {
		s[i] = p.Next()
	}
	return s
}
