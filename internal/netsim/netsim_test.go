package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"usersignals/internal/simrand"
	"usersignals/internal/stats"
)

func TestConditionsValid(t *testing.T) {
	good := Conditions{LatencyMs: 50, LossPct: 1, JitterMs: 5, BandwidthMbps: 3}
	if !good.Valid() {
		t.Fatal("plausible conditions reported invalid")
	}
	bad := []Conditions{
		{LatencyMs: -1},
		{LossPct: -0.1},
		{LossPct: 101},
		{JitterMs: -2},
		{BandwidthMbps: -3},
	}
	for i, c := range bad {
		if c.Valid() {
			t.Fatalf("case %d should be invalid: %+v", i, c)
		}
	}
}

func TestConditionsString(t *testing.T) {
	s := Conditions{LatencyMs: 50, LossPct: 1.5, JitterMs: 5, BandwidthMbps: 3}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestPathSamplesAlwaysValid(t *testing.T) {
	// Property: whatever the config (even hostile), samples are physical.
	f := func(lat, loss, jit, cap float64, burst uint8) bool {
		cfg := PathConfig{
			BaseLatencyMs: lat, BaseLossPct: loss, BaseJitterMs: jit,
			CapacityMbps: cap, UtilizationJitter: 2,
			LossBurstRate: float64(burst) / 255, JitterSpikeRate: 0.1, BandwidthDipRate: 0.1,
		}
		if math.IsNaN(lat) || math.IsNaN(loss) || math.IsNaN(jit) || math.IsNaN(cap) ||
			math.IsInf(lat, 0) || math.IsInf(loss, 0) || math.IsInf(jit, 0) || math.IsInf(cap, 0) {
			return true
		}
		if math.Abs(lat) > 1e6 || math.Abs(loss) > 1e6 || math.Abs(jit) > 1e6 || math.Abs(cap) > 1e6 {
			return true
		}
		p := NewPath(cfg, simrand.New(uint64(burst), 3))
		for i := 0; i < 50; i++ {
			if !p.Next().Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPathTracksBase(t *testing.T) {
	cfg := PathConfig{BaseLatencyMs: 100, BaseLossPct: 1, BaseJitterMs: 8, CapacityMbps: 4}
	p := NewPath(cfg, simrand.New(1, 2))
	s := p.GenerateSeries(500)
	if got := stats.Mean(s.Latencies()); math.Abs(got-100) > 10 {
		t.Fatalf("mean latency %v, want ~100", got)
	}
	if got := stats.Mean(s.Losses()); math.Abs(got-1) > 0.3 {
		t.Fatalf("mean loss %v, want ~1", got)
	}
	if got := stats.Mean(s.Jitters()); math.Abs(got-8) > 3 {
		t.Fatalf("mean jitter %v, want ~8", got)
	}
	if got := stats.Mean(s.Bandwidths()); math.Abs(got-4) > 0.5 {
		t.Fatalf("mean bw %v, want ~4", got)
	}
}

func TestPathTemporalCorrelation(t *testing.T) {
	cfg := PathConfig{BaseLatencyMs: 80, BaseJitterMs: 4, CapacityMbps: 5}
	p := NewPath(cfg, simrand.New(5, 6))
	s := p.GenerateSeries(2000)
	lat := s.Latencies()
	// Lag-1 autocorrelation of an AR(0.7) process should be clearly positive.
	r, err := stats.Pearson(lat[:len(lat)-1], lat[1:])
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.4 {
		t.Fatalf("lag-1 autocorrelation %v, want strongly positive", r)
	}
}

func TestLossBurstsRaiseLossAndLatency(t *testing.T) {
	base := PathConfig{BaseLatencyMs: 30, BaseLossPct: 0.1, BaseJitterMs: 2, CapacityMbps: 5}
	quiet := NewPath(base, simrand.New(7, 8)).GenerateSeries(2000)
	bursty := base
	bursty.LossBurstRate = 0.05
	noisy := NewPath(bursty, simrand.New(7, 8)).GenerateSeries(2000)
	if lq, ln := stats.Mean(quiet.Losses()), stats.Mean(noisy.Losses()); ln <= lq*1.5 {
		t.Fatalf("bursts did not raise loss: quiet %v noisy %v", lq, ln)
	}
	if lq, ln := stats.Mean(quiet.Latencies()), stats.Mean(noisy.Latencies()); ln <= lq {
		t.Fatalf("loss bursts should also raise latency: quiet %v noisy %v", lq, ln)
	}
}

func TestBandwidthDips(t *testing.T) {
	base := PathConfig{BaseLatencyMs: 30, CapacityMbps: 5}
	dippy := base
	dippy.BandwidthDipRate = 0.08
	q := NewPath(base, simrand.New(9, 10)).GenerateSeries(2000)
	d := NewPath(dippy, simrand.New(9, 10)).GenerateSeries(2000)
	if bq, bd := stats.Mean(q.Bandwidths()), stats.Mean(d.Bandwidths()); bd >= bq {
		t.Fatalf("dips did not lower bandwidth: %v vs %v", bq, bd)
	}
}

func TestConfigClamping(t *testing.T) {
	cfg := PathConfig{BaseLatencyMs: -5, BaseLossPct: 150, BaseJitterMs: -1, CapacityMbps: -10, UtilizationJitter: 5}
	p := NewPath(cfg, simrand.New(1, 1))
	got := p.Config()
	if got.BaseLatencyMs != 0 || got.BaseLossPct != 100 || got.BaseJitterMs != 0 {
		t.Fatalf("clamp failed: %+v", got)
	}
	if got.CapacityMbps <= 0 || got.UtilizationJitter > 1 {
		t.Fatalf("clamp failed: %+v", got)
	}
}

func TestMixtureDeterminism(t *testing.T) {
	m := DefaultMixture()
	a := m.NewPath(simrand.New(1, 2)).GenerateSeries(10)
	b := m.NewPath(simrand.New(1, 2)).GenerateSeries(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different series at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMixtureDiversity(t *testing.T) {
	m := DefaultMixture()
	root := simrand.Root(99)
	var lats []float64
	for i := 0; i < 500; i++ {
		p := m.NewPath(root.Derive("s/%d", i).RNG())
		lats = append(lats, p.Config().BaseLatencyMs)
	}
	// The mixture spans fast fiber to long-haul paths.
	if stats.Quantile(lats, 0.1) > 30 {
		t.Fatalf("p10 latency %v too high; fiber missing?", stats.Quantile(lats, 0.1))
	}
	if stats.Quantile(lats, 0.95) < 80 {
		t.Fatalf("p95 latency %v too low; tails missing?", stats.Quantile(lats, 0.95))
	}
}

func TestSweepCoversRange(t *testing.T) {
	sw := ControlBands()
	sw.LatencyMs = [2]float64{0, 300}
	root := simrand.Root(5)
	b := stats.NewBinner(0, 300, 10)
	counts := make([]int, 10)
	for i := 0; i < 1000; i++ {
		p := sw.NewPath(root.Derive("p/%d", i).RNG())
		if idx := b.Index(p.Config().BaseLatencyMs); idx >= 0 {
			counts[idx]++
		}
		// Control bands hold for the other metrics.
		cfg := p.Config()
		if cfg.BaseLossPct < 0 || cfg.BaseLossPct > 0.2 {
			t.Fatalf("loss %v outside control band", cfg.BaseLossPct)
		}
		if cfg.CapacityMbps < 3 || cfg.CapacityMbps > 4 {
			t.Fatalf("bw %v outside control band", cfg.CapacityMbps)
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("latency bin %d never sampled", i)
		}
	}
}

func TestFixedSource(t *testing.T) {
	f := &Fixed{Cfg: PathConfig{BaseLatencyMs: 42, CapacityMbps: 3}}
	p := f.NewPath(simrand.New(0, 1))
	if p.Config().BaseLatencyMs != 42 {
		t.Fatalf("Fixed config not honored: %+v", p.Config())
	}
}

func TestSeriesColumns(t *testing.T) {
	s := Series{
		{LatencyMs: 1, LossPct: 2, JitterMs: 3, BandwidthMbps: 4},
		{LatencyMs: 5, LossPct: 6, JitterMs: 7, BandwidthMbps: 8},
	}
	if l := s.Latencies(); l[0] != 1 || l[1] != 5 {
		t.Fatalf("Latencies = %v", l)
	}
	if l := s.Losses(); l[0] != 2 || l[1] != 6 {
		t.Fatalf("Losses = %v", l)
	}
	if j := s.Jitters(); j[0] != 3 || j[1] != 7 {
		t.Fatalf("Jitters = %v", j)
	}
	if b := s.Bandwidths(); b[0] != 4 || b[1] != 8 {
		t.Fatalf("Bandwidths = %v", b)
	}
}
