// Package netsim models end-to-end network path conditions for simulated
// conferencing sessions. It stands in for the real networks under the
// paper's MS Teams clients: each session gets a Path whose conditions —
// latency, packet loss, jitter, available bandwidth — evolve over time with
// realistic temporal correlation and transient impairment events, and are
// observed by the telemetry layer every five seconds, exactly the cadence
// §3.1 describes.
//
// The package deliberately does not know anything about users or
// engagement; it produces network truth. internal/media converts that truth
// into delivered media quality, and internal/behavior converts quality into
// user actions. Keeping the chain causal (network → quality → behaviour) is
// what lets the analysis pipeline *recover* the paper's curves rather than
// having them painted on.
package netsim

import (
	"fmt"
	"time"
)

// SampleInterval is the telemetry sampling cadence from §3.1.
const SampleInterval = 5 * time.Second

// Conditions is one instantaneous observation of a path.
type Conditions struct {
	LatencyMs     float64 // one-way network latency, milliseconds
	LossPct       float64 // packet loss percentage in [0, 100]
	JitterMs      float64 // latency variation, milliseconds
	BandwidthMbps float64 // available bandwidth, Mbps
}

// Valid reports whether the observation is physically plausible; used by
// property tests and by telemetry ingestion as a guard.
func (c Conditions) Valid() bool {
	return c.LatencyMs >= 0 &&
		c.LossPct >= 0 && c.LossPct <= 100 &&
		c.JitterMs >= 0 &&
		c.BandwidthMbps >= 0
}

func (c Conditions) String() string {
	return fmt.Sprintf("lat=%.1fms loss=%.2f%% jitter=%.1fms bw=%.2fMbps",
		c.LatencyMs, c.LossPct, c.JitterMs, c.BandwidthMbps)
}

// Series is a sequence of equally spaced condition samples.
type Series []Conditions

// Latencies extracts the latency column.
func (s Series) Latencies() []float64 {
	out := make([]float64, len(s))
	for i, c := range s {
		out[i] = c.LatencyMs
	}
	return out
}

// Losses extracts the loss column.
func (s Series) Losses() []float64 {
	out := make([]float64, len(s))
	for i, c := range s {
		out[i] = c.LossPct
	}
	return out
}

// Jitters extracts the jitter column.
func (s Series) Jitters() []float64 {
	out := make([]float64, len(s))
	for i, c := range s {
		out[i] = c.JitterMs
	}
	return out
}

// Bandwidths extracts the bandwidth column.
func (s Series) Bandwidths() []float64 {
	out := make([]float64, len(s))
	for i, c := range s {
		out[i] = c.BandwidthMbps
	}
	return out
}
