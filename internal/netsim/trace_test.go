package netsim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"usersignals/internal/simrand"
)

func sampleTrace() *Trace {
	return &Trace{Sessions: []Series{
		{
			{LatencyMs: 20, LossPct: 0.1, JitterMs: 2, BandwidthMbps: 4},
			{LatencyMs: 25, LossPct: 0.2, JitterMs: 3, BandwidthMbps: 3.8},
		},
		{
			{LatencyMs: 120, LossPct: 1.5, JitterMs: 8, BandwidthMbps: 2},
		},
	}}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tr, back)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"a,b\n", // bad header
		"session,latency_ms,loss_pct,jitter_ms,bandwidth_mbps\n-1,1,1,1,1\n",   // negative session
		"session,latency_ms,loss_pct,jitter_ms,bandwidth_mbps\n0,x,1,1,1\n",    // bad number
		"session,latency_ms,loss_pct,jitter_ms,bandwidth_mbps\n0,-5,1,1,1\n",   // invalid sample
		"session,latency_ms,loss_pct,jitter_ms,bandwidth_mbps\n1,10,0.1,1,3\n", // session 0 missing
	}
	for i, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted: %q", i, in)
		}
	}
	// Empty input is an empty trace.
	tr, err := ReadTrace(strings.NewReader(""))
	if err != nil || len(tr.Sessions) != 0 {
		t.Fatalf("empty trace: %v %v", tr, err)
	}
}

func TestTraceSourceReplays(t *testing.T) {
	tr := sampleTrace()
	src := &TraceSource{Trace: tr}
	p1 := src.NewPath(simrand.New(1, 1))
	if p1.Config().Label != "trace" {
		t.Fatalf("label = %q", p1.Config().Label)
	}
	if got := p1.Next(); got != tr.Sessions[0][0] {
		t.Fatalf("first sample %v, want %v", got, tr.Sessions[0][0])
	}
	if got := p1.Next(); got != tr.Sessions[0][1] {
		t.Fatalf("second sample mismatch: %v", got)
	}
	// Looping past the end.
	if got := p1.Next(); got != tr.Sessions[0][0] {
		t.Fatalf("loop sample %v", got)
	}
	// Round-robin across sessions.
	p2 := src.NewPath(simrand.New(1, 2))
	if got := p2.Next(); got != tr.Sessions[1][0] {
		t.Fatalf("second path should replay session 1: %v", got)
	}
	p3 := src.NewPath(simrand.New(1, 3))
	if got := p3.Next(); got != tr.Sessions[0][0] {
		t.Fatalf("third path should wrap to session 0: %v", got)
	}
}

func TestTraceSourceEmpty(t *testing.T) {
	src := &TraceSource{}
	p := src.NewPath(simrand.New(1, 1))
	c := p.Next()
	if !c.Valid() {
		t.Fatalf("empty-trace path produced invalid sample: %v", c)
	}
	if p.Config().Label != "trace-empty" {
		t.Fatalf("label = %q", p.Config().Label)
	}
}

func TestReplayPathIgnoresGenerativeNoise(t *testing.T) {
	// Two replay paths over the same session with different RNGs must
	// produce identical series (the RNG is unused in replay mode).
	tr := sampleTrace()
	a := newReplayPath(tr.Sessions[0], simrand.New(1, 1))
	b := newReplayPath(tr.Sessions[0], simrand.New(999, 999))
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatal("replay depends on RNG")
		}
	}
}
