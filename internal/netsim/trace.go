package netsim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"usersignals/internal/simrand"
)

// Trace is a recorded set of condition sessions — the bridge between real
// network measurements and the simulator. A study that has actual client
// traces (which this repository's synthetic substrate stands in for) can
// replay them through the exact same analysis pipeline via TraceSource.
type Trace struct {
	Sessions []Series
}

// traceHeader is the CSV schema: a session index plus the four condition
// fields, one row per 5-second sample.
var traceHeader = []string{"session", "latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps"}

// WriteTrace encodes the trace as CSV.
func WriteTrace(w io.Writer, tr *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("netsim: writing trace header: %w", err)
	}
	for si, sess := range tr.Sessions {
		for _, c := range sess {
			row := []string{
				strconv.Itoa(si),
				strconv.FormatFloat(c.LatencyMs, 'g', 8, 64),
				strconv.FormatFloat(c.LossPct, 'g', 8, 64),
				strconv.FormatFloat(c.JitterMs, 'g', 8, 64),
				strconv.FormatFloat(c.BandwidthMbps, 'g', 8, 64),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("netsim: writing trace row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("netsim: flushing trace: %w", err)
	}
	return nil
}

// ReadTrace decodes a CSV trace. Sessions must be numbered contiguously
// from 0 but rows may arrive in any order within a session. Invalid
// samples are rejected.
func ReadTrace(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err == io.EOF {
		return &Trace{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("netsim: reading trace header: %w", err)
	}
	if len(header) != len(traceHeader) {
		return nil, fmt.Errorf("netsim: trace header has %d columns, want %d", len(header), len(traceHeader))
	}
	tr := &Trace{}
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("netsim: reading trace: %w", err)
		}
		line++
		si, err := strconv.Atoi(row[0])
		if err != nil || si < 0 {
			return nil, fmt.Errorf("netsim: trace line %d: bad session index %q", line, row[0])
		}
		var vals [4]float64
		for i := 0; i < 4; i++ {
			vals[i], err = strconv.ParseFloat(row[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("netsim: trace line %d: column %s: %w", line, traceHeader[i+1], err)
			}
		}
		c := Conditions{LatencyMs: vals[0], LossPct: vals[1], JitterMs: vals[2], BandwidthMbps: vals[3]}
		if !c.Valid() {
			return nil, fmt.Errorf("netsim: trace line %d: invalid sample %v", line, c)
		}
		for si >= len(tr.Sessions) {
			tr.Sessions = append(tr.Sessions, nil)
		}
		tr.Sessions[si] = append(tr.Sessions[si], c)
	}
	for i, s := range tr.Sessions {
		if len(s) == 0 {
			return nil, fmt.Errorf("netsim: trace session %d has no samples", i)
		}
	}
	return tr, nil
}

// TraceSource replays trace sessions as paths. Each NewPath call consumes
// the next session round-robin; a replayed path loops its samples if asked
// for more windows than were recorded. Safe for single-goroutine use by a
// generator (matching the other PathSources).
type TraceSource struct {
	Trace *Trace
	next  int
}

// NewPath implements PathSource by replaying the next recorded session.
func (t *TraceSource) NewPath(rng *simrand.RNG) *Path {
	if t.Trace == nil || len(t.Trace.Sessions) == 0 {
		// Degenerate: an idle path, so callers fail soft and visibly
		// (zero-valued conditions) rather than panicking mid-simulation.
		return NewPath(PathConfig{Label: "trace-empty"}, rng)
	}
	sess := t.Trace.Sessions[t.next%len(t.Trace.Sessions)]
	t.next++
	return newReplayPath(sess, rng)
}

// newReplayPath builds a Path that serves recorded samples verbatim
// (looping) instead of generating them.
func newReplayPath(samples Series, rng *simrand.RNG) *Path {
	p := NewPath(PathConfig{Label: "trace"}, rng)
	p.replay = append(Series(nil), samples...)
	return p
}
