package netsim

import "usersignals/internal/simrand"

// PathSource draws per-session path configurations from some population of
// access networks. Implementations must be deterministic given the RNG.
type PathSource interface {
	// NewPath returns a fresh path for one session. The returned path owns
	// the provided RNG.
	NewPath(rng *simrand.RNG) *Path
}

// AccessProfile describes one access-technology population (fiber, cable,
// DSL, Wi-Fi on cable, LTE, GEO satellite...) as distributions over
// PathConfig fields.
type AccessProfile struct {
	Name string

	// Medians and multiplicative spreads of log-normal base conditions.
	LatencyMedianMs    float64
	LatencySpread      float64
	JitterMedianMs     float64
	JitterSpread       float64
	CapacityMedianMbps float64
	CapacitySpread     float64

	// Loss: probability a session has elevated background loss, and the
	// Pareto scale of that loss when present. Most sessions see ~0 loss;
	// the tail is heavy — matching the paper's note that >2% loss is rare.
	LossyProb    float64
	LossScalePct float64

	// Event rates (per 5 s sample).
	LossBurstRate    float64
	JitterSpikeRate  float64
	BandwidthDipRate float64

	UtilizationJitter float64
}

// Draw samples one PathConfig from the profile.
func (a AccessProfile) Draw(r *simrand.RNG) PathConfig {
	loss := 0.0
	if r.Bool(a.LossyProb) {
		loss = r.Pareto(a.LossScalePct, 1.6)
		if loss > 12 {
			loss = 12
		}
	}
	return PathConfig{
		Label:             a.Name,
		BaseLatencyMs:     r.LogNormalMeanMedian(a.LatencyMedianMs, a.LatencySpread),
		BaseLossPct:       loss,
		BaseJitterMs:      r.LogNormalMeanMedian(a.JitterMedianMs, a.JitterSpread),
		CapacityMbps:      r.LogNormalMeanMedian(a.CapacityMedianMbps, a.CapacitySpread),
		UtilizationJitter: a.UtilizationJitter,
		LossBurstRate:     a.LossBurstRate,
		JitterSpikeRate:   a.JitterSpikeRate,
		BandwidthDipRate:  a.BandwidthDipRate,
	}
}

// DefaultProfiles is a US-enterprise-flavoured access mix for the Teams
// study: mostly good wired/Wi-Fi connectivity with minority cellular and
// congested tails.
func DefaultProfiles() []AccessProfile {
	return []AccessProfile{
		{
			Name:            "fiber",
			LatencyMedianMs: 12, LatencySpread: 1.5,
			JitterMedianMs: 1.2, JitterSpread: 1.6,
			CapacityMedianMbps: 8, CapacitySpread: 1.4,
			LossyProb: 0.03, LossScalePct: 0.1,
			LossBurstRate: 0.002, JitterSpikeRate: 0.002, BandwidthDipRate: 0.004,
			UtilizationJitter: 0.15,
		},
		{
			Name:            "cable",
			LatencyMedianMs: 28, LatencySpread: 1.7,
			JitterMedianMs: 3, JitterSpread: 1.8,
			CapacityMedianMbps: 5, CapacitySpread: 1.5,
			LossyProb: 0.08, LossScalePct: 0.15,
			LossBurstRate: 0.006, JitterSpikeRate: 0.006, BandwidthDipRate: 0.01,
			UtilizationJitter: 0.3,
		},
		{
			Name:            "dsl",
			LatencyMedianMs: 45, LatencySpread: 1.8,
			JitterMedianMs: 5, JitterSpread: 2,
			CapacityMedianMbps: 2.5, CapacitySpread: 1.6,
			LossyProb: 0.12, LossScalePct: 0.2,
			LossBurstRate: 0.008, JitterSpikeRate: 0.01, BandwidthDipRate: 0.015,
			UtilizationJitter: 0.35,
		},
		{
			Name:            "wifi-congested",
			LatencyMedianMs: 60, LatencySpread: 2.2,
			JitterMedianMs: 8, JitterSpread: 2.2,
			CapacityMedianMbps: 3.5, CapacitySpread: 1.8,
			LossyProb: 0.3, LossScalePct: 0.3,
			LossBurstRate: 0.02, JitterSpikeRate: 0.025, BandwidthDipRate: 0.03,
			UtilizationJitter: 0.5,
		},
		{
			Name:            "lte",
			LatencyMedianMs: 70, LatencySpread: 2,
			JitterMedianMs: 10, JitterSpread: 2.2,
			CapacityMedianMbps: 4, CapacitySpread: 2,
			LossyProb: 0.25, LossScalePct: 0.25,
			LossBurstRate: 0.015, JitterSpikeRate: 0.03, BandwidthDipRate: 0.025,
			UtilizationJitter: 0.5,
		},
		{
			Name:            "long-haul",
			LatencyMedianMs: 160, LatencySpread: 1.6,
			JitterMedianMs: 6, JitterSpread: 2,
			CapacityMedianMbps: 4, CapacitySpread: 1.6,
			LossyProb: 0.2, LossScalePct: 0.25,
			LossBurstRate: 0.01, JitterSpikeRate: 0.012, BandwidthDipRate: 0.015,
			UtilizationJitter: 0.35,
		},
		{
			// LEO satellite access: moderate latency, jittery (satellite
			// handovers), occasional short dropouts. The §5 cross-source
			// query keys on this population.
			Name:            "leo-satellite",
			LatencyMedianMs: 45, LatencySpread: 1.5,
			JitterMedianMs: 9, JitterSpread: 1.9,
			CapacityMedianMbps: 5, CapacitySpread: 1.8,
			LossyProb: 0.3, LossScalePct: 0.3,
			LossBurstRate: 0.02, JitterSpikeRate: 0.03, BandwidthDipRate: 0.025,
			UtilizationJitter: 0.45,
		},
	}
}

// Mixture draws sessions from a weighted mix of access profiles — the
// observational population the §3 study would see.
type Mixture struct {
	Profiles []AccessProfile
	Weights  []float64
}

// DefaultMixture returns the default enterprise access mix.
func DefaultMixture() *Mixture {
	return &Mixture{
		Profiles: DefaultProfiles(),
		Weights:  []float64{0.26, 0.29, 0.11, 0.12, 0.10, 0.08, 0.04},
	}
}

// NewPath implements PathSource.
func (m *Mixture) NewPath(rng *simrand.RNG) *Path {
	i := rng.Categorical(m.Weights)
	cfg := m.Profiles[i].Draw(rng)
	return NewPath(cfg, rng)
}

// Sweep draws base conditions uniformly over configured ranges instead of
// from a realistic mixture. Experiments use it to guarantee dense coverage
// of every bin in a figure's sweep axis while other conditions stay inside
// their control bands — the simulation analogue of the paper's "analyze the
// calls where other metrics are roughly constant".
type Sweep struct {
	LatencyMs     [2]float64
	LossPct       [2]float64
	JitterMs      [2]float64
	BandwidthMbps [2]float64

	// Quiet disables transient events so the per-session mean stays close
	// to the swept base value (tight bins). Default false.
	Quiet bool
}

// ControlBands are the §3.2 confounder bands: latency 0–40 ms, loss
// 0–0.2%, jitter 0–5 ms, bandwidth 3–4 Mbps. A Sweep for one metric starts
// from these and widens exactly one axis.
func ControlBands() Sweep {
	return Sweep{
		LatencyMs:     [2]float64{5, 40},
		LossPct:       [2]float64{0, 0.2},
		JitterMs:      [2]float64{0.5, 5},
		BandwidthMbps: [2]float64{3, 4},
		Quiet:         true,
	}
}

// NewPath implements PathSource.
func (s *Sweep) NewPath(rng *simrand.RNG) *Path {
	cfg := PathConfig{
		Label:         "sweep",
		BaseLatencyMs: rng.Range(s.LatencyMs[0], s.LatencyMs[1]),
		BaseLossPct:   rng.Range(s.LossPct[0], s.LossPct[1]),
		BaseJitterMs:  rng.Range(s.JitterMs[0], s.JitterMs[1]),
		CapacityMbps:  rng.Range(s.BandwidthMbps[0], s.BandwidthMbps[1]),
	}
	if !s.Quiet {
		cfg.LossBurstRate = 0.005
		cfg.JitterSpikeRate = 0.005
		cfg.BandwidthDipRate = 0.01
		cfg.UtilizationJitter = 0.3
	}
	return NewPath(cfg, rng)
}

// Fixed always returns paths with exactly the given configuration; useful
// in unit tests and ablations.
type Fixed struct {
	Cfg PathConfig
}

// NewPath implements PathSource.
func (f *Fixed) NewPath(rng *simrand.RNG) *Path {
	return NewPath(f.Cfg, rng)
}
