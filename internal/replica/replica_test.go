package replica

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"usersignals/internal/conference"
	"usersignals/internal/durable"
	"usersignals/internal/faults"
	"usersignals/internal/leo"
	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
	"usersignals/internal/usaas"
)

// testDataset generates deterministic sessions and posts. Posts are
// round-tripped through their JSONL wire form so in-memory values equal
// what a parse of the journaled bytes produces.
func testDataset(t testing.TB, seed uint64) ([]telemetry.SessionRecord, []social.Post) {
	t.Helper()
	g, err := conference.New(conference.Defaults(seed, 120))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) > 300 {
		recs = recs[:300]
	}
	cfg := social.DefaultConfig(seed)
	cfg.Window = timeline.Range{From: timeline.Date(2022, 1, 1), To: timeline.Date(2022, 2, 28)}
	cfg.Outages = leo.AllOutages(seed, cfg.Window, 1.5)
	corpus, err := social.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	posts := corpus.Posts
	if len(posts) > 200 {
		posts = posts[:200]
	}
	var buf bytes.Buffer
	if err := social.WritePostsJSONL(&buf, posts); err != nil {
		t.Fatal(err)
	}
	clean, err := social.CollectPostsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs, clean
}

// testNode is one replication participant: durable store, usaas server,
// replica node, and an HTTP listener serving the wrapped handler.
type testNode struct {
	dir    string
	store  *usaas.DurableStore
	node   *Node
	server *httptest.Server
}

func (tn *testNode) close(t testing.TB) {
	t.Helper()
	if tn.server != nil {
		tn.server.Close()
	}
	tn.node.Close()
	if err := tn.store.Close(); err != nil {
		t.Errorf("closing store: %v", err)
	}
}

// abandon simulates kill -9: the listener vanishes and the store is
// dropped without Close — no final snapshot, no fsync beyond what the
// policy already wrote. The tailer is stopped (its goroutine would leak),
// which a real SIGKILL also achieves.
func (tn *testNode) abandon() {
	tn.server.Close()
	tn.node.halt()
}

func startNode(t testing.TB, dir string, dopts usaas.DurabilityOptions, ropts Options) *testNode {
	t.Helper()
	dopts.Dir = dir
	store, err := usaas.OpenDurableStore(dopts)
	if err != nil {
		t.Fatal(err)
	}
	node, err := Open(store, ropts)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	srv := usaas.NewServer(store.Store, usaas.ServerOptions{Ready: node.Ready})
	ts := httptest.NewServer(node.Wrap(srv.Handler()))
	return &testNode{dir: dir, store: store, node: node, server: ts}
}

// waitCaughtUp blocks until the follower's next sequence reaches seq.
func waitCaughtUp(t testing.TB, tn *testNode, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for tn.store.WALSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d (status %+v)",
				tn.store.WALSeq(), seq, tn.node.CurrentStatus())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// httpReport fetches /v1/report and returns the raw response bytes — the
// byte-identity oracle across nodes.
func httpReport(t testing.TB, baseURL string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/report: %d %s", resp.StatusCode, body)
	}
	return body
}

// walBytes concatenates a dir's WAL segments in sequence order.
func walBytes(t testing.TB, dir string) []byte {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	var all []byte
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, data...)
	}
	return all
}

func ingestBatches(t testing.TB, client *usaas.Client, sessions []telemetry.SessionRecord, posts []social.Post, prefix string) int {
	t.Helper()
	ctx := context.Background()
	batches := 0
	for i := 0; i < len(sessions); i += 60 {
		end := i + 60
		if end > len(sessions) {
			end = len(sessions)
		}
		if _, err := client.IngestSessionsBatch(ctx, fmt.Sprintf("%s-s%d", prefix, i), sessions[i:end]); err != nil {
			t.Fatalf("ingesting sessions: %v", err)
		}
		batches++
	}
	for i := 0; i < len(posts); i += 50 {
		end := i + 50
		if end > len(posts) {
			end = len(posts)
		}
		if _, err := client.IngestPostsBatch(ctx, fmt.Sprintf("%s-p%d", prefix, i), posts[i:end]); err != nil {
			t.Fatalf("ingesting posts: %v", err)
		}
		batches++
	}
	return batches
}

// TestFollowerTailsLeader: a follower tailing the live feed converges to
// a byte-identical WAL and serves a byte-identical /v1/report.
func TestFollowerTailsLeader(t *testing.T) {
	dopts := usaas.DurabilityOptions{Fsync: durable.FsyncOff, SegmentBytes: 16 << 10}
	leader := startNode(t, t.TempDir(), dopts, Options{Role: RoleLeader})
	defer leader.close(t)
	follower := startNode(t, t.TempDir(), dopts, Options{
		Role: RoleFollower, LeaderURL: leader.server.URL,
		PollWait: 200 * time.Millisecond, RetryInterval: 10 * time.Millisecond,
	})
	defer follower.close(t)

	sessions, posts := testDataset(t, 1)
	client := usaas.NewClient(leader.server.URL, nil)
	ingestBatches(t, client, sessions, posts, "tail")
	waitCaughtUp(t, follower, leader.store.WALSeq())

	if lr, fr := httpReport(t, leader.server.URL), httpReport(t, follower.server.URL); !bytes.Equal(lr, fr) {
		t.Fatal("follower /v1/report differs from leader")
	}
	if lw, fw := walBytes(t, leader.dir), walBytes(t, follower.dir); !bytes.Equal(lw, fw) {
		t.Fatalf("follower WAL (%d bytes) is not byte-identical to leader WAL (%d bytes)", len(fw), len(lw))
	}

	// More ingest after catch-up keeps streaming.
	more, _ := testDataset(t, 2)
	ingestBatches(t, client, more[:100], nil, "tail2")
	waitCaughtUp(t, follower, leader.store.WALSeq())
	if lr, fr := httpReport(t, leader.server.URL), httpReport(t, follower.server.URL); !bytes.Equal(lr, fr) {
		t.Fatal("follower diverged after incremental catch-up")
	}
}

// TestFollowerRoleDiscipline: a follower redirects writes to the leader
// and stamps reads with lag headers.
func TestFollowerRoleDiscipline(t *testing.T) {
	dopts := usaas.DurabilityOptions{Fsync: durable.FsyncOff}
	leader := startNode(t, t.TempDir(), dopts, Options{Role: RoleLeader})
	defer leader.close(t)
	follower := startNode(t, t.TempDir(), dopts, Options{
		Role: RoleFollower, LeaderURL: leader.server.URL,
		PollWait: 100 * time.Millisecond, RetryInterval: 10 * time.Millisecond,
	})
	defer follower.close(t)

	sessions, _ := testDataset(t, 3)
	client := usaas.NewClient(leader.server.URL, nil)
	if _, err := client.IngestSessionsBatch(context.Background(), "rd-1", sessions[:50]); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, follower, leader.store.WALSeq())

	// Direct POST to the follower: 307 with the leader's address.
	hc := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	resp, err := hc.Post(follower.server.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte("[]")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower write: %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != leader.server.URL+"/v1/sessions" {
		t.Fatalf("redirect location %q", loc)
	}

	// Reads are served with lag headers.
	resp, err = http.Get(follower.server.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower read: %d", resp.StatusCode)
	}
	if resp.Header.Get(HeaderReplicaLag) == "" || resp.Header.Get(HeaderReplicaStaleness) == "" {
		t.Fatalf("follower read missing lag headers: %v", resp.Header)
	}

	// The failover-aware client, pointed at both nodes, writes through the
	// redirect transparently.
	fc := usaas.NewClientWithOptions("", usaas.ClientOptions{
		Endpoints: []string{follower.server.URL, leader.server.URL},
		Sleep:     func(time.Duration) {},
	})
	ack, err := fc.IngestSessionsBatch(context.Background(), "rd-2", sessions[50:80])
	if err != nil || ack.Accepted != 30 {
		t.Fatalf("failover client write: %+v err=%v", ack, err)
	}
}

// TestFollowerSnapshotBootstrap: a fresh follower seeds itself from the
// leader's snapshot (covering compacted-away history) and tails the rest.
func TestFollowerSnapshotBootstrap(t *testing.T) {
	dopts := usaas.DurabilityOptions{Fsync: durable.FsyncOff, SnapshotEvery: 3, SegmentBytes: 8 << 10}
	leader := startNode(t, t.TempDir(), dopts, Options{Role: RoleLeader})
	defer leader.close(t)

	sessions, posts := testDataset(t, 4)
	client := usaas.NewClient(leader.server.URL, nil)
	ingestBatches(t, client, sessions, posts, "boot")
	// Wait for the background snapshotter to cover some prefix.
	deadline := time.Now().Add(10 * time.Second)
	for leader.store.LastSnapshotSeq() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never snapshotted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	dir := t.TempDir()
	installed, err := Bootstrap(context.Background(), dir, leader.server.URL, "", nil)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if !installed {
		t.Fatal("bootstrap installed nothing despite leader snapshot")
	}
	follower := startNode(t, dir, usaas.DurabilityOptions{Fsync: durable.FsyncOff, SegmentBytes: 8 << 10}, Options{
		Role: RoleFollower, LeaderURL: leader.server.URL,
		PollWait: 100 * time.Millisecond, RetryInterval: 10 * time.Millisecond,
	})
	defer follower.close(t)
	if !follower.store.Recovery.SnapshotFound {
		t.Fatal("follower recovery did not load the installed snapshot")
	}
	waitCaughtUp(t, follower, leader.store.WALSeq())
	waitReady(t, follower.node)
	if lr, fr := httpReport(t, leader.server.URL), httpReport(t, follower.server.URL); !bytes.Equal(lr, fr) {
		t.Fatal("bootstrapped follower /v1/report differs from leader")
	}
}

// TestPromoteKeepsDedup: after promotion the new leader accepts writes,
// and batches already acked through the old leader are still duplicates.
func TestPromoteKeepsDedup(t *testing.T) {
	dopts := usaas.DurabilityOptions{Fsync: durable.FsyncOff}
	leader := startNode(t, t.TempDir(), dopts, Options{Role: RoleLeader})
	defer leader.close(t)
	follower := startNode(t, t.TempDir(), dopts, Options{
		Role: RoleFollower, LeaderURL: leader.server.URL,
		PollWait: 100 * time.Millisecond, RetryInterval: 10 * time.Millisecond,
	})
	defer follower.close(t)

	sessions, _ := testDataset(t, 5)
	client := usaas.NewClient(leader.server.URL, nil)
	if _, err := client.IngestSessionsBatch(context.Background(), "promo-1", sessions[:40]); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, follower, leader.store.WALSeq())

	// Promote over HTTP — the operator path.
	resp, err := http.Post(follower.server.URL+"/v1/replica/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if follower.node.Role() != RoleLeader {
		t.Fatalf("role after promote: %s", follower.node.Role())
	}
	if err := follower.node.Ready(); err != nil {
		t.Fatalf("promoted node not ready: %v", err)
	}

	fc := usaas.NewClient(follower.server.URL, nil)
	ack, err := fc.IngestSessionsBatch(context.Background(), "promo-1", sessions[:40])
	if err != nil || !ack.Duplicate {
		t.Fatalf("replayed batch on new leader: %+v err=%v", ack, err)
	}
	ack, err = fc.IngestSessionsBatch(context.Background(), "promo-2", sessions[40:70])
	if err != nil || ack.Accepted != 30 || ack.Duplicate {
		t.Fatalf("new batch on new leader: %+v err=%v", ack, err)
	}
}

// TestFollowerStalenessBound: a partitioned follower serves stale reads
// with lag headers while inside the bound, refuses with 503 past it, and
// recovers when the partition heals.
func TestFollowerStalenessBound(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	var clock struct {
		mu  chan struct{}
		now time.Time
	}
	clock.mu = make(chan struct{}, 1)
	clock.mu <- struct{}{}
	clock.now = now
	fakeNow := func() time.Time {
		<-clock.mu
		v := clock.now
		clock.mu <- struct{}{}
		return v
	}
	advance := func(d time.Duration) {
		<-clock.mu
		clock.now = clock.now.Add(d)
		clock.mu <- struct{}{}
	}

	link := faults.NewFrameLink(faults.LinkPlan{}) // no probabilistic faults; used for Sever/Heal
	dopts := usaas.DurabilityOptions{Fsync: durable.FsyncOff}
	leader := startNode(t, t.TempDir(), dopts, Options{Role: RoleLeader})
	defer leader.close(t)
	follower := startNode(t, t.TempDir(), dopts, Options{
		Role: RoleFollower, LeaderURL: leader.server.URL,
		MaxLag:   500 * time.Millisecond,
		Link:     link,
		Now:      fakeNow,
		PollWait: 50 * time.Millisecond, RetryInterval: 5 * time.Millisecond,
	})
	defer follower.close(t)

	sessions, _ := testDataset(t, 6)
	client := usaas.NewClient(leader.server.URL, nil)
	if _, err := client.IngestSessionsBatch(context.Background(), "stale-1", sessions[:30]); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, follower, leader.store.WALSeq())
	waitReady(t, follower.node)
	reference := httpReport(t, follower.server.URL)

	// Partition, then ingest more on the leader: the follower must keep
	// serving EXACTLY its applied prefix — stale, never wrong.
	link.Sever()
	if _, err := client.IngestSessionsBatch(context.Background(), "stale-2", sessions[30:60]); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(follower.server.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	staleBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale read inside bound: %d", resp.StatusCode)
	}
	if !bytes.Equal(staleBody, reference) {
		t.Fatal("partitioned follower served something other than its applied prefix")
	}

	// Past the bound: refuse.
	advance(time.Second)
	resp, err = http.Get(follower.server.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read past staleness bound: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(HeaderReplicaLag) == "" {
		t.Fatal("503 carries no lag header")
	}
	if err := follower.node.Ready(); err == nil {
		t.Fatal("stale follower reports ready")
	}

	// Heal: catch up, readiness and reads return.
	link.Heal()
	waitCaughtUp(t, follower, leader.store.WALSeq())
	waitReady(t, follower.node)
	if lr, fr := httpReport(t, leader.server.URL), httpReport(t, follower.server.URL); !bytes.Equal(lr, fr) {
		t.Fatal("healed follower did not converge")
	}
}

func waitReady(t testing.TB, n *Node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := n.Ready(); err == nil {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("node never became ready: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
