// Package replica turns single-node usaasd stores into a leader/follower
// pair (or set) by shipping the leader's write-ahead log over HTTP.
//
// The design leans entirely on two properties the durability layer
// already has. First, the WAL is deterministic: a record's frame bytes
// are a pure function of the record, and the leader journals each
// accepted batch's wire bytes exactly once, in apply order. Second,
// recovery replays records through the normal ingest path. A follower
// therefore does nothing exotic — it fetches the leader's sealed frames
// verbatim, re-verifies the same CRCs crash recovery checks, and applies
// each record through ApplyReplicated (the ingest path, journaling the
// same payload). Every view, cache generation, dedup entry, and columnar
// mirror falls out identical, and the follower's own WAL is byte-for-byte
// the leader's log: replicas are byte-identical by construction, not by
// comparison.
//
// Followers bootstrap from the leader's newest snapshot (Bootstrap), tail
// the frame feed with a long poll, serve reads with an explicit staleness
// bound (X-Usaas-Replica-Lag / X-Usaas-Replica-Staleness-Ms headers, 503
// past Options.MaxLag), and redirect writes to the leader with a 307.
// Promote flips a follower to leader in place: it stops tailing and
// starts accepting writes, with the dedup table intact so a client
// retrying through the failover never double-ingests.
package replica

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"usersignals/internal/faults"
	"usersignals/internal/usaas"
)

// Role is a node's place in the replication topology.
type Role string

const (
	RoleLeader   Role = "leader"
	RoleFollower Role = "follower"
)

// Replication feed headers.
const (
	// HeaderFramesFrom is the sequence of the first frame in a feed
	// response body.
	HeaderFramesFrom = "X-Usaas-Frames-From"
	// HeaderFramesCount is the number of whole frames in the body.
	HeaderFramesCount = "X-Usaas-Frames-Count"
	// HeaderLeaderSeq is the serving node's next log sequence — what a
	// caught-up follower's WALSeq would be.
	HeaderLeaderSeq = "X-Usaas-Leader-Seq"
	// HeaderSnapshotSeq is the sequence a shipped snapshot covers.
	HeaderSnapshotSeq = "X-Usaas-Snapshot-Seq"
	// HeaderOldestSeq, on a 410, is the oldest sequence still on disk.
	HeaderOldestSeq = "X-Usaas-Oldest-Seq"
	// HeaderReplicaLag, on follower reads, is how many records the node is
	// behind the leader's last reported sequence.
	HeaderReplicaLag = "X-Usaas-Replica-Lag"
	// HeaderReplicaStaleness, on follower reads, is milliseconds since the
	// node last heard from the leader.
	HeaderReplicaStaleness = "X-Usaas-Replica-Staleness-Ms"
)

// Options configures a Node.
type Options struct {
	// Role the node starts in. Required.
	Role Role
	// LeaderURL is the leader's base URL (e.g. "http://10.0.0.1:8080").
	// Required for followers; ignored for leaders.
	LeaderURL string
	// MaxLag bounds follower read staleness: once the node has not heard
	// from the leader for longer than this, reads answer 503 instead of
	// silently serving arbitrarily old data. 0 means no bound (reads are
	// always served, with lag headers). Also gates Ready.
	MaxLag time.Duration
	// Token, when set, protects the /v1/replica/* endpoints with bearer
	// auth, and is presented by the follower when fetching. The feed sits
	// outside the service's own auth wrapper, so it carries its own.
	Token string
	// HTTPClient is used for follower fetches (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxFetchBytes caps one feed response (default 1 MiB).
	MaxFetchBytes int
	// PollWait is the long-poll hold on an empty feed read, and the
	// follower's requested wait (default 2s).
	PollWait time.Duration
	// RetryInterval paces follower retries after a failed fetch
	// (default 200ms).
	RetryInterval time.Duration
	// Link, when set, passes every fetched frame delivery through a
	// deterministic fault injector (chaos tests).
	Link *faults.FrameLink
	// Now replaces the staleness clock (tests). Default time.Now.
	Now func() time.Time
	// Logf receives tailer diagnostics (default: discarded).
	Logf func(format string, args ...any)
}

// Node is one replication participant wrapped around a durable store.
type Node struct {
	store *usaas.DurableStore
	opts  Options

	mu          sync.Mutex
	role        Role
	leaderURL   string
	leaderSeq   uint64    // leader's next sequence, from the last fetch
	lastContact time.Time // when the leader last answered
	degraded    error     // sticky: the node can no longer catch up

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// Open attaches a replication node to an already-opened durable store.
// A follower immediately starts tailing the leader's feed; call Bootstrap
// before usaas.OpenDurableStore to seed an empty data directory from the
// leader's snapshot. Close stops the tailer; it does not close the store.
func Open(store *usaas.DurableStore, opts Options) (*Node, error) {
	switch opts.Role {
	case RoleLeader, RoleFollower:
	default:
		return nil, fmt.Errorf("replica: invalid role %q", opts.Role)
	}
	if opts.Role == RoleFollower && opts.LeaderURL == "" {
		return nil, errors.New("replica: follower requires a leader URL")
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.MaxFetchBytes <= 0 {
		opts.MaxFetchBytes = 1 << 20
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 2 * time.Second
	}
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = 200 * time.Millisecond
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	n := &Node{
		store:     store,
		opts:      opts,
		role:      opts.Role,
		leaderURL: strings.TrimRight(opts.LeaderURL, "/"),
		stop:      make(chan struct{}),
	}
	if n.role == RoleFollower {
		n.wg.Add(1)
		go n.tailLoop()
	}
	return n, nil
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Lag reports how far behind the leader this node believes it is: records
// still to apply (against the leader's last reported sequence) and time
// since the leader last answered. A leader is never lagged. staleness is
// a very large value on a follower that has never reached its leader.
func (n *Node) Lag() (records uint64, staleness time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleLeader {
		return 0, 0
	}
	applied := n.store.WALSeq()
	if n.leaderSeq > applied {
		records = n.leaderSeq - applied
	}
	if n.lastContact.IsZero() {
		return records, time.Duration(1<<62 - 1)
	}
	if d := n.opts.Now().Sub(n.lastContact); d > 0 {
		staleness = d
	}
	return records, staleness
}

// Ready implements the readiness contract for usaas.ServerOptions.Ready:
// a leader is ready once opened (recovery finished before Open); a
// follower is ready when it is not degraded, has heard from its leader,
// and — under a MaxLag bound — recently enough.
func (n *Node) Ready() error {
	n.mu.Lock()
	degraded := n.degraded
	role := n.role
	n.mu.Unlock()
	if degraded != nil {
		return degraded
	}
	if role == RoleLeader {
		return nil
	}
	records, staleness := n.Lag()
	n.mu.Lock()
	never := n.lastContact.IsZero()
	n.mu.Unlock()
	if never {
		return errors.New("replica: follower has not contacted its leader yet")
	}
	if n.opts.MaxLag > 0 && staleness > n.opts.MaxLag {
		return fmt.Errorf("replica: follower stale for %v (%d records behind, bound %v)",
			staleness.Round(time.Millisecond), records, n.opts.MaxLag)
	}
	return nil
}

// Promote flips a follower to leader: the tailer stops (waiting out any
// in-flight apply), writes are accepted, and the feed keeps serving — the
// promoted node's log IS the leader log. Idempotent on a leader. The
// dedup table carries over untouched, so acked batches retried by a
// failing-over client are recognized as duplicates, not re-applied.
func (n *Node) Promote() {
	n.mu.Lock()
	if n.role == RoleLeader {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	n.halt()
	n.mu.Lock()
	n.role = RoleLeader
	n.leaderURL = ""
	n.degraded = nil
	n.mu.Unlock()
	n.logf("replica: promoted to leader at seq %d", n.store.WALSeq())
}

// Close stops the tailer. The underlying store stays open (and, on a
// leader, keeps serving the feed) until its own Close.
func (n *Node) Close() error {
	n.halt()
	return nil
}

// halt stops the background tailer, if one is running, and waits for it.
func (n *Node) halt() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Logf != nil {
		n.opts.Logf(format, args...)
	}
}

// setDegraded records a condition the tailer cannot recover from on its
// own (fallen behind the leader's compaction horizon, or an apply error).
// Sticky until promotion; surfaced through Ready and the status endpoint.
func (n *Node) setDegraded(err error) {
	n.mu.Lock()
	if n.degraded == nil {
		n.degraded = err
	}
	n.mu.Unlock()
	n.logf("replica: degraded: %v", err)
}

// noteContact records a successful exchange with the leader.
func (n *Node) noteContact(leaderSeq uint64) {
	n.mu.Lock()
	if leaderSeq > n.leaderSeq {
		n.leaderSeq = leaderSeq
	}
	n.lastContact = n.opts.Now()
	n.mu.Unlock()
}

// Status is the /v1/replica/status document.
type Status struct {
	Role        Role   `json:"role"`
	NextSeq     uint64 `json:"next_seq"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	LeaderURL   string `json:"leader_url,omitempty"`
	LeaderSeq   uint64 `json:"leader_seq,omitempty"`
	LagRecords  uint64 `json:"lag_records"`
	StalenessMS int64  `json:"staleness_ms,omitempty"`
	Ready       bool   `json:"ready"`
	Error       string `json:"error,omitempty"`
}

// CurrentStatus captures the node's replication state.
func (n *Node) CurrentStatus() Status {
	st := Status{
		NextSeq:     n.store.WALSeq(),
		SnapshotSeq: n.store.LastSnapshotSeq(),
	}
	n.mu.Lock()
	st.Role = n.role
	st.LeaderURL = n.leaderURL
	st.LeaderSeq = n.leaderSeq
	n.mu.Unlock()
	if st.Role == RoleFollower {
		records, staleness := n.Lag()
		st.LagRecords = records
		if staleness < time.Duration(1<<62-1) {
			st.StalenessMS = staleness.Milliseconds()
		} else {
			st.StalenessMS = -1
		}
	}
	if err := n.Ready(); err != nil {
		st.Error = err.Error()
	} else {
		st.Ready = true
	}
	return st
}
