package replica

import (
	"net/http/httptest"
	"testing"
	"time"

	"usersignals/internal/durable"
	"usersignals/internal/usaas"
)

// BenchmarkFollowerCatchup measures how fast a fresh follower drains a
// leader's log over the frame feed: open an empty store, tail until
// caught up, report records and payload bytes per second. The leader is
// built once; each iteration replays the same catch-up from scratch.
func BenchmarkFollowerCatchup(b *testing.B) {
	dopts := usaas.DurabilityOptions{Fsync: durable.FsyncOff, SegmentBytes: 1 << 20}
	leaderDir := b.TempDir()
	leaderStore, err := usaas.OpenDurableStore(usaas.DurabilityOptions{
		Dir: leaderDir, Fsync: durable.FsyncOff, SegmentBytes: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer leaderStore.Close()
	leaderNode, err := Open(leaderStore, Options{Role: RoleLeader})
	if err != nil {
		b.Fatal(err)
	}
	defer leaderNode.Close()
	srv := usaas.NewServer(leaderStore.Store, usaas.ServerOptions{})
	ts := httptest.NewServer(leaderNode.Wrap(srv.Handler()))
	defer ts.Close()

	client := usaas.NewClient(ts.URL, nil)
	for _, batch := range chaosBatches(b, 99) {
		sendBatch(b, client, batch)
	}
	records := leaderStore.WALSeq()
	walSize := int64(len(walBytes(b, leaderDir)))

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		store, err := usaas.OpenDurableStore(usaas.DurabilityOptions{
			Dir: dir, Fsync: dopts.Fsync, SegmentBytes: dopts.SegmentBytes,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		node, err := Open(store, Options{
			Role: RoleFollower, LeaderURL: ts.URL,
			PollWait:      100 * time.Millisecond,
			RetryInterval: time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		for store.WALSeq() < records {
			time.Sleep(200 * time.Microsecond)
		}
		b.StopTimer()
		node.Close()
		store.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(walSize)*float64(b.N)/b.Elapsed().Seconds()/(1<<20), "MiB/s")
	b.SetBytes(walSize)
}
