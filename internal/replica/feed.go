package replica

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"usersignals/internal/durable"
)

// The HTTP surface of replication. Every node serves the feed — a
// follower's log is byte-identical to the leader's, so a newly promoted
// leader keeps feeding the remaining followers without any state
// handover. Wrap layers the role discipline over the service handler:
// follower writes are redirected to the leader, follower reads carry lag
// headers and degrade to 503 past the staleness bound.

const replicaPrefix = "/v1/replica/"

// Wrap returns the node's HTTP handler: /v1/replica/* endpoints are
// served here, health endpoints pass through untouched, and everything
// else goes through the role discipline before reaching next (the usaas
// service handler).
func (n *Node) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, replicaPrefix) {
			n.serveReplica(w, r)
			return
		}
		if r.URL.Path == "/v1/healthz" || r.URL.Path == "/v1/readyz" {
			next.ServeHTTP(w, r)
			return
		}
		n.mu.Lock()
		role, leaderURL := n.role, n.leaderURL
		n.mu.Unlock()
		if role == RoleFollower {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				// Writes belong on the leader. 307 preserves method+body;
				// the usaas client re-points itself from the Location.
				w.Header().Set("Location", leaderURL+r.URL.RequestURI())
				writeJSON(w, http.StatusTemporaryRedirect,
					map[string]string{"error": "follower does not accept writes; leader is " + leaderURL})
				return
			}
			records, staleness := n.Lag()
			w.Header().Set(HeaderReplicaLag, strconv.FormatUint(records, 10))
			if staleness < time.Duration(1<<62-1) {
				w.Header().Set(HeaderReplicaStaleness, strconv.FormatInt(staleness.Milliseconds(), 10))
			}
			if err := n.Ready(); err != nil {
				// Stale past the bound (or degraded): refuse rather than
				// serve silently wrong answers.
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

func (n *Node) serveReplica(w http.ResponseWriter, r *http.Request) {
	if n.opts.Token != "" {
		want := "Bearer " + n.opts.Token
		if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte(want)) != 1 {
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "missing or invalid bearer token"})
			return
		}
	}
	switch r.URL.Path {
	case "/v1/replica/frames":
		n.serveFrames(w, r)
	case "/v1/replica/snapshot":
		n.serveSnapshot(w, r)
	case "/v1/replica/status":
		writeJSON(w, http.StatusOK, n.CurrentStatus())
	case "/v1/replica/promote":
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "promote requires POST"})
			return
		}
		n.Promote()
		writeJSON(w, http.StatusOK, n.CurrentStatus())
	default:
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown replica endpoint " + r.URL.Path})
	}
}

// serveFrames is the feed: GET /v1/replica/frames?from=N&max_bytes=B&wait_ms=W
// returns raw WAL frames starting at sequence N, holding an empty
// response open up to W milliseconds for new appends (long poll). A
// request below the compaction horizon gets 410 Gone — the follower must
// bootstrap from a snapshot instead.
func (n *Node) serveFrames(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "frames requires GET"})
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "from: invalid sequence"})
		return
	}
	maxBytes := n.opts.MaxFetchBytes
	if v := q.Get("max_bytes"); v != "" {
		mb, err := strconv.Atoi(v)
		if err != nil || mb <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "max_bytes: invalid size"})
			return
		}
		if mb < maxBytes {
			maxBytes = mb
		}
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "wait_ms: invalid duration"})
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > 30*time.Second {
			wait = 30 * time.Second
		}
	}

	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		// Arm the append signal BEFORE reading: an append that lands
		// between the read and the wait still wakes us.
		sig := n.store.AppendSignal()
		fr, err := durable.ReadFrames(n.store.Dir(), from, maxBytes)
		if err != nil {
			if errors.Is(err, durable.ErrCompacted) {
				w.Header().Set(HeaderOldestSeq, strconv.FormatUint(fr.OldestAvailable, 10))
				writeJSON(w, http.StatusGone, map[string]string{"error": err.Error()})
				return
			}
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		if fr.Count > 0 || wait <= 0 {
			w.Header().Set(HeaderFramesFrom, strconv.FormatUint(fr.From, 10))
			w.Header().Set(HeaderFramesCount, strconv.Itoa(fr.Count))
			w.Header().Set(HeaderLeaderSeq, strconv.FormatUint(n.store.WALSeq(), 10))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			w.Write(fr.Raw)
			return
		}
		select {
		case <-sig:
			// New append: loop and re-read.
		case <-deadline.C:
			wait = 0 // answer empty on the next pass
		case <-r.Context().Done():
			return
		}
	}
}

// serveSnapshot ships the newest valid snapshot file verbatim (trailer
// included), for follower bootstrap. 204 when the node has none — the
// follower then starts from sequence 0 and replays the whole log.
func (n *Node) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "snapshot requires GET"})
		return
	}
	seq, raw, found, err := durable.LatestSnapshotRaw(n.store.Dir())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if !found {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errStatus reports a non-2xx feed response.
type errStatus struct {
	status int
	msg    string
}

func (e *errStatus) Error() string {
	return fmt.Sprintf("replica: feed answered %d: %s", e.status, e.msg)
}
