package replica

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"usersignals/internal/durable"
	"usersignals/internal/faults"
	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/usaas"
)

// The failover chaos drill. The claim under test: a leader killed without
// warning at an arbitrary acked-batch boundary loses nothing, provided
// the client retries its acked batches through the promoted follower.
// The follower has applied some prefix of the leader's log; retried
// batches inside that prefix dedup, batches past it apply — so the
// promoted node's effective ingest order equals the original batch
// order, and its /v1/report must be byte-identical to a single-node
// store fed the same acked batches. All of this while the replication
// link drops, duplicates, and truncates deliveries.

// chaosBatch is one idempotent delivery with a stable ID.
type chaosBatch struct {
	id       string
	sessions []telemetry.SessionRecord
	posts    []social.Post
}

func chaosBatches(t testing.TB, seed uint64) []chaosBatch {
	t.Helper()
	sessions, posts := testDataset(t, seed)
	var batches []chaosBatch
	for i := 0; i < len(sessions); i += 15 {
		end := i + 15
		if end > len(sessions) {
			end = len(sessions)
		}
		batches = append(batches, chaosBatch{
			id:       fmt.Sprintf("chaos-%d-s%d", seed, i),
			sessions: sessions[i:end],
		})
	}
	for i := 0; i < len(posts); i += 12 {
		end := i + 12
		if end > len(posts) {
			end = len(posts)
		}
		batches = append(batches, chaosBatch{
			id:    fmt.Sprintf("chaos-%d-p%d", seed, i),
			posts: posts[i:end],
		})
	}
	return batches
}

func sendBatch(t testing.TB, c *usaas.Client, b chaosBatch) usaas.IngestResponse {
	t.Helper()
	var ack usaas.IngestResponse
	var err error
	if b.sessions != nil {
		ack, err = c.IngestSessionsBatch(context.Background(), b.id, b.sessions)
	} else {
		ack, err = c.IngestPostsBatch(context.Background(), b.id, b.posts)
	}
	if err != nil {
		t.Fatalf("ingesting batch %s: %v", b.id, err)
	}
	return ack
}

func TestReplicaChaosFailover(t *testing.T) {
	for _, seed := range []uint64{11, 12, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosFailover(t, seed, usaas.DurabilityOptions{Fsync: durable.FsyncOff})
		})
	}
}

// TestReplicaChaosFailoverGroupCommit re-runs the failover drill with the
// group-commit ingest pipeline on both nodes: frames written through the
// commit scheduler are byte-identical to serial appends, so the follower
// tails and applies them unchanged, and the promoted report must still
// match the single-node reference under the same hostile link.
func TestReplicaChaosFailoverGroupCommit(t *testing.T) {
	for _, seed := range []uint64{31, 32, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosFailover(t, seed, usaas.DurabilityOptions{
				Fsync:       durable.FsyncPerBatch,
				GroupCommit: true,
			})
		})
	}
}

// runChaosFailover is the drill body, parameterized by the durability
// options both the leader and the follower run with.
func runChaosFailover(t *testing.T, seed uint64, dopts usaas.DurabilityOptions) {
	batches := chaosBatches(t, seed)
	if len(batches) < 8 {
		t.Fatalf("dataset too small: %d batches", len(batches))
	}
	// The link mangles roughly a third of all deliveries. A tiny
	// fetch window forces the log across many deliveries so the
	// injector gets plenty of chances.
	link := faults.NewFrameLink(faults.LinkPlan{
		Seed: seed, DropP: 0.15, DupP: 0.15, TruncateP: 0.15,
	})
	leader := startNode(t, t.TempDir(), dopts, Options{Role: RoleLeader})
	follower := startNode(t, t.TempDir(), dopts, Options{
		Role: RoleFollower, LeaderURL: leader.server.URL,
		Link: link,
		// One whole frame per delivery (ReadFrames always ships at
		// least one): every record is a separate chance to misbehave.
		MaxFetchBytes: 512,
		PollWait:      50 * time.Millisecond,
		RetryInterval: time.Millisecond,
	})
	defer follower.close(t)

	// Ack a seed-chosen number of batches on the leader, then let
	// the follower replicate a seed-chosen fraction of them — the
	// exact boundary it reaches before the kill is up to scheduling
	// and the link; it lands somewhere at or past the target.
	acked := 12 + int(seed%7)
	direct := usaas.NewClient(leader.server.URL, nil)
	for _, b := range batches[:acked] {
		sendBatch(t, direct, b)
	}
	target := leader.store.WALSeq() * uint64(2+seed%2) / 4
	if target == 0 {
		target = 1
	}
	waitCaughtUp(t, follower, target)

	// Kill -9: the leader's listener vanishes mid-stream; its store
	// is abandoned, never closed. Promote the survivor.
	leader.abandon()
	follower.node.Promote()
	if err := follower.node.Ready(); err != nil {
		t.Fatalf("promoted node not ready: %v", err)
	}

	// The client fails over: its leader belief still points at the
	// dead node, so the first write fails, probes discover the
	// promoted follower, and every acked batch is retried with its
	// original ID. Then the rest of the dataset goes in.
	fc := usaas.NewClientWithOptions("", usaas.ClientOptions{
		Endpoints: []string{leader.server.URL, follower.server.URL},
		Sleep:     func(time.Duration) {},
	})
	applied, deduped := 0, 0
	for _, b := range batches {
		if sendBatch(t, fc, b).Duplicate {
			deduped++
		} else {
			applied++
		}
	}
	if deduped == 0 {
		t.Error("no batch deduped: the follower replicated nothing before the kill")
	}
	if applied < len(batches)-acked {
		t.Errorf("applied %d < %d un-acked batches", applied, len(batches)-acked)
	}

	// Single-node reference fed the same batches in the same order.
	refDir := t.TempDir()
	ref, err := usaas.OpenDurableStore(usaas.DurabilityOptions{Dir: refDir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refSrv := usaas.NewServer(ref.Store, usaas.ServerOptions{})
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	refClient := usaas.NewClient(refTS.URL, nil)
	for _, b := range batches {
		sendBatch(t, refClient, b)
	}

	if got, want := httpReport(t, follower.server.URL), httpReport(t, refTS.URL); !bytes.Equal(got, want) {
		t.Fatalf("promoted follower /v1/report (%d bytes) differs from reference (%d bytes)",
			len(got), len(want))
	}

	// The drill only counts if the link actually misbehaved.
	counts := link.Counts()
	if counts.Deliveries < 10 {
		t.Errorf("only %d link deliveries; chaos never engaged", counts.Deliveries)
	}
	if faultRate := float64(counts.Faults()) / float64(counts.Deliveries); faultRate <= 0.20 {
		t.Errorf("fault rate %.0f%% (counts %+v); want > 20%%", faultRate*100, counts)
	}
}

// TestReplicaChaosConvergence: with no failover at all, a follower behind
// a hostile link still converges to a byte-identical WAL — truncated
// deliveries re-fetch, duplicated deliveries dedup by sequence, dropped
// deliveries retry.
func TestReplicaChaosConvergence(t *testing.T) {
	for _, seed := range []uint64{21, 22, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			link := faults.NewFrameLink(faults.LinkPlan{
				Seed: seed, DropP: 0.15, DupP: 0.15, TruncateP: 0.15,
			})
			// SnapshotEvery must stay 0 on both sides: compaction would
			// delete covered segments and break raw-byte comparison.
			dopts := usaas.DurabilityOptions{Fsync: durable.FsyncOff, SegmentBytes: 8 << 10}
			leader := startNode(t, t.TempDir(), dopts, Options{Role: RoleLeader})
			defer leader.close(t)
			follower := startNode(t, t.TempDir(), dopts, Options{
				Role: RoleFollower, LeaderURL: leader.server.URL,
				Link:          link,
				MaxFetchBytes: 2 << 10,
				PollWait:      50 * time.Millisecond,
				RetryInterval: time.Millisecond,
			})
			defer follower.close(t)

			client := usaas.NewClient(leader.server.URL, nil)
			for _, b := range chaosBatches(t, seed) {
				sendBatch(t, client, b)
			}
			waitCaughtUp(t, follower, leader.store.WALSeq())
			if lw, fw := walBytes(t, leader.dir), walBytes(t, follower.dir); !bytes.Equal(lw, fw) {
				t.Fatalf("follower WAL (%d bytes) diverged from leader WAL (%d bytes) under link faults",
					len(fw), len(lw))
			}
			if lr, fr := httpReport(t, leader.server.URL), httpReport(t, follower.server.URL); !bytes.Equal(lr, fr) {
				t.Fatal("follower report diverged under link faults")
			}
			counts := link.Counts()
			if faultRate := float64(counts.Faults()) / float64(counts.Deliveries); faultRate <= 0.20 {
				t.Errorf("fault rate %.0f%% (counts %+v); want > 20%%", faultRate*100, counts)
			}
		})
	}
}
