package replica

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"usersignals/internal/durable"
)

// The follower's catch-up loop. It fetches raw frames from the leader's
// feed, optionally runs them through the fault-injecting link, and
// applies them in sequence order through the store's normal ingest path.
// Two link pathologies are handled by sequence arithmetic alone:
//
//   - duplication: a retransmitted delivery starts at a sequence the
//     follower has already applied; the overlap is skipped frame by frame.
//   - truncation: IterFrames stops at the first CRC-invalid frame, the
//     applied prefix advances the cursor, and the next fetch re-requests
//     the rest. Nothing corrupt is ever applied — the CRC the link cannot
//     forge is the same one that guards the disk.
//
// A gap (delivery starting past the cursor) is discarded and re-fetched.
// Falling behind the leader's compaction horizon (410) is sticky
// degradation: the follower's log can no longer be byte-identical by
// tailing, so it stops and reports through Ready rather than guessing.

// fetched is one feed response.
type fetched struct {
	from      uint64
	raw       []byte
	leaderSeq uint64
}

func (n *Node) tailLoop() {
	defer n.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-n.stop
		cancel()
	}()

	from := n.store.WALSeq()
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		fr, err := n.fetch(ctx, from)
		if err != nil {
			var es *errStatus
			if isStatus(err, &es) && es.status == http.StatusGone {
				n.setDegraded(fmt.Errorf("replica: fell behind the leader's compaction horizon: %s", es.msg))
				return
			}
			if ctx.Err() != nil {
				return
			}
			n.sleep(n.opts.RetryInterval)
			continue
		}
		deliverFrom, raw := fr.from, fr.raw
		if n.opts.Link != nil {
			deliverFrom, raw, err = n.opts.Link.Deliver(fr.from, fr.raw)
			if err != nil {
				// Delivery lost on the link (or the link is severed):
				// nothing arrived, so the leader was NOT heard from —
				// staleness keeps growing. Re-fetch.
				n.sleep(n.opts.RetryInterval)
				continue
			}
		}
		n.noteContact(fr.leaderSeq)
		if deliverFrom > from {
			// Gap: frames for sequences we have not reached. Refetch.
			continue
		}
		skip := from - deliverFrom
		applied := 0
		_, _, aerr := durable.IterFrames(raw, func(rec durable.Record) error {
			if skip > 0 {
				skip--
				return nil
			}
			if _, err := n.store.ApplyReplicated(rec); err != nil {
				return err
			}
			from++
			applied++
			return nil
		})
		if aerr != nil {
			// A CRC-valid record that fails to apply is not a link fault —
			// the node cannot mirror the leader anymore.
			n.setDegraded(fmt.Errorf("replica: applying frame at seq %d: %w", from, aerr))
			return
		}
		if applied == 0 && len(fr.raw) == 0 {
			// Empty long poll: the leader had nothing new within the hold.
			continue
		}
	}
}

// fetch asks the leader for frames starting at from. The long poll means
// a healthy idle link blocks server-side rather than spinning here.
func (n *Node) fetch(ctx context.Context, from uint64) (fetched, error) {
	n.mu.Lock()
	leaderURL := n.leaderURL
	n.mu.Unlock()
	u := fmt.Sprintf("%s/v1/replica/frames?from=%d&max_bytes=%d&wait_ms=%d",
		leaderURL, from, n.opts.MaxFetchBytes, n.opts.PollWait.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fetched{}, err
	}
	if n.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+n.opts.Token)
	}
	resp, err := n.opts.HTTPClient.Do(req)
	if err != nil {
		return fetched{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, int64(n.opts.MaxFetchBytes)+(64<<10)))
	if err != nil {
		return fetched{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return fetched{}, &errStatus{status: resp.StatusCode, msg: string(body)}
	}
	f := fetched{raw: body}
	if f.from, err = strconv.ParseUint(resp.Header.Get(HeaderFramesFrom), 10, 64); err != nil {
		return fetched{}, fmt.Errorf("replica: feed response missing %s", HeaderFramesFrom)
	}
	if f.leaderSeq, err = strconv.ParseUint(resp.Header.Get(HeaderLeaderSeq), 10, 64); err != nil {
		return fetched{}, fmt.Errorf("replica: feed response missing %s", HeaderLeaderSeq)
	}
	return f, nil
}

// sleep waits for d or until the node is stopped.
func (n *Node) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-n.stop:
	}
}

// isStatus unwraps err into *errStatus.
func isStatus(err error, out **errStatus) bool {
	es, ok := err.(*errStatus)
	if ok {
		*out = es
	}
	return ok
}

// Bootstrap seeds an empty data directory from the leader's newest
// snapshot, so a fresh follower starts at the snapshot's sequence instead
// of replaying the leader's whole history (which may be partially
// compacted away). Call it BEFORE usaas.OpenDurableStore; recovery then
// loads the installed snapshot exactly as if this node had written it.
// No-op (false, nil) when dir already holds state or the leader has no
// snapshot yet.
func Bootstrap(ctx context.Context, dir, leaderURL, token string, hc *http.Client) (installed bool, err error) {
	has, err := durable.HasState(dir)
	if err != nil {
		return false, err
	}
	if has {
		return false, nil
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(leaderURL, "/")+"/v1/replica/snapshot", nil)
	if err != nil {
		return false, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("replica: fetching bootstrap snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil // leader has no snapshot; tail from sequence 0
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return false, &errStatus{status: resp.StatusCode, msg: string(body)}
	}
	seq, err := strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeq), 10, 64)
	if err != nil {
		return false, fmt.Errorf("replica: snapshot response missing %s", HeaderSnapshotSeq)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, fmt.Errorf("replica: reading bootstrap snapshot: %w", err)
	}
	if err := durable.InstallSnapshot(dir, seq, raw); err != nil {
		return false, err
	}
	return true, nil
}
