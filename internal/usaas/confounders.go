package usaas

import (
	"fmt"
	"math"
	"sort"

	"usersignals/internal/parallel"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// This file implements the §6 "Are networks to blame always?" analysis: a
// toolkit for quantifying how much of an apparent network→engagement
// relationship survives confounder control. The paper names three
// confounders — platform (Fig. 3), meeting size, and long-term
// conditioning — and argues an effective USaaS must account for all of
// them.

// SizeBucket labels a meeting-size stratum.
type SizeBucket struct {
	Name   string
	Lo, Hi int // inclusive participant-count range
}

// DefaultSizeBuckets covers the enterprise meeting spectrum.
func DefaultSizeBuckets() []SizeBucket {
	return []SizeBucket{
		{Name: "small-3-5", Lo: 3, Hi: 5},
		{Name: "medium-6-10", Lo: 6, Hi: 10},
		{Name: "large-11+", Lo: 11, Hi: 1 << 30},
	}
}

// ByMeetingSize computes one dose-response series per size stratum,
// sharded across one worker per CPU.
func ByMeetingSize(records []telemetry.SessionRecord, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, buckets []SizeBucket, filter telemetry.Filter) (map[string]stats.BinnedSeries, error) {
	return ByMeetingSizeN(records, metric, eng, b, buckets, filter, 0)
}

// ByMeetingSizeN is ByMeetingSize over an explicit worker count: each chunk
// keeps one accumulator per stratum and the strata merge in chunk order, so
// the result is bit-identical at any worker count.
func ByMeetingSizeN(records []telemetry.SessionRecord, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, buckets []SizeBucket, filter telemetry.Filter, workers int) (map[string]stats.BinnedSeries, error) {
	if len(buckets) == 0 {
		buckets = DefaultSizeBuckets()
	}
	mf, ef := metric.Accessor(), eng.Accessor()
	shards, err := parallel.Map(workers, parallel.Chunks(len(records)), func(i int) ([]*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, len(records))
		accs := make([]*stats.BinAcc, len(buckets))
		for j := lo; j < hi; j++ {
			r := &records[j]
			if filter != nil && !filter(r) {
				continue
			}
			for k, bk := range buckets {
				if r.MeetingSize >= bk.Lo && r.MeetingSize <= bk.Hi {
					if accs[k] == nil {
						accs[k] = stats.NewBinAcc(b)
					}
					accs[k].Add(mf(&r.Net), ef(r))
					break
				}
			}
		}
		return accs, nil
	})
	if err != nil {
		return nil, fmt.Errorf("usaas: meeting-size strata: %w", err)
	}
	out := make(map[string]stats.BinnedSeries, len(buckets))
	for k, bk := range buckets {
		var total *stats.BinAcc
		for _, shard := range shards {
			if shard[k] == nil {
				continue
			}
			if total == nil {
				total = shard[k]
			} else if err := total.Merge(shard[k]); err != nil {
				return nil, fmt.Errorf("usaas: meeting-size strata: %w", err)
			}
		}
		if total != nil {
			out[bk.Name] = total.Series()
		}
	}
	return out, nil
}

// byMeetingSizeRows is ByMeetingSizeN over a chunked row snapshot; see
// doseResponseRows for the equivalence argument.
func byMeetingSizeRows(rows Rows, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, buckets []SizeBucket, filter telemetry.Filter, workers int) (map[string]stats.BinnedSeries, error) {
	if len(buckets) == 0 {
		buckets = DefaultSizeBuckets()
	}
	mf, ef := metric.Accessor(), eng.Accessor()
	shards, err := parallel.Map(workers, parallel.Chunks(rows.Len()), func(i int) ([]*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, rows.Len())
		records := rows.Chunk(lo, hi)
		accs := make([]*stats.BinAcc, len(buckets))
		for j := range records {
			r := &records[j]
			if filter != nil && !filter(r) {
				continue
			}
			for k, bk := range buckets {
				if r.MeetingSize >= bk.Lo && r.MeetingSize <= bk.Hi {
					if accs[k] == nil {
						accs[k] = stats.NewBinAcc(b)
					}
					accs[k].Add(mf(&r.Net), ef(r))
					break
				}
			}
		}
		return accs, nil
	})
	if err != nil {
		return nil, fmt.Errorf("usaas: meeting-size strata: %w", err)
	}
	out := make(map[string]stats.BinnedSeries, len(buckets))
	for k, bk := range buckets {
		var total *stats.BinAcc
		for _, shard := range shards {
			if shard[k] == nil {
				continue
			}
			if total == nil {
				total = shard[k]
			} else if err := total.Merge(shard[k]); err != nil {
				return nil, fmt.Errorf("usaas: meeting-size strata: %w", err)
			}
		}
		if total != nil {
			out[bk.Name] = total.Series()
		}
	}
	return out, nil
}

// ConfounderEffect quantifies one confounder's marginal impact on an
// engagement metric, holding network conditions in the control bands.
type ConfounderEffect struct {
	Confounder string
	// Levels maps each level (platform name, size bucket) to its mean
	// engagement under controlled network conditions.
	Levels map[string]float64
	// Spread is (max-min)/max across levels: how much the confounder
	// alone moves the metric. 0 = no effect.
	Spread float64
}

// ConfounderDayPartial carries one calendar day's confounder accumulator
// state: in-band session count plus per-level Welford state for the platform
// and meeting-size strata. Days are the cluster's partition unit — a day's
// sessions always live on one shard — so a shard's partials are exact, and
// assembleConfounders' ascending-day fold reproduces the single-store answer
// byte for byte.
type ConfounderDayPartial struct {
	Day      timeline.Day                 `json:"day"`
	InBand   int                          `json:"in_band"`
	Platform map[string]stats.OnlineState `json:"platform,omitempty"`
	Size     map[string]stats.OnlineState `json:"size,omitempty"`
}

// confounderDayPartials folds the row snapshot into per-day partials for one
// engagement metric, accumulating each day's in-band sessions in arrival
// order. Returned partials are sorted ascending by day.
func confounderDayPartials(rows Rows, eng telemetry.Engagement) []ConfounderDayPartial {
	type dayAccs struct {
		inBand int
		plat   map[string]*stats.Online
		size   map[string]*stats.Online
	}
	controlled := telemetry.AllControlBands()
	buckets := DefaultSizeBuckets()
	ef := eng.Accessor()
	days := map[timeline.Day]*dayAccs{}
	rows.Each(0, rows.Len(), func(r *telemetry.SessionRecord) {
		if !controlled(r) {
			return
		}
		d := timeline.DayOf(r.Start)
		da := days[d]
		if da == nil {
			da = &dayAccs{plat: map[string]*stats.Online{}, size: map[string]*stats.Online{}}
			days[d] = da
		}
		da.inBand++
		v := ef(r)
		acc := da.plat[r.Platform]
		if acc == nil {
			acc = &stats.Online{}
			da.plat[r.Platform] = acc
		}
		acc.Add(v)
		for _, bk := range buckets {
			if r.MeetingSize >= bk.Lo && r.MeetingSize <= bk.Hi {
				acc := da.size[bk.Name]
				if acc == nil {
					acc = &stats.Online{}
					da.size[bk.Name] = acc
				}
				acc.Add(v)
				break
			}
		}
	})
	keys := make([]timeline.Day, 0, len(days))
	for d := range days {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]ConfounderDayPartial, 0, len(keys))
	for _, d := range keys {
		da := days[d]
		p := ConfounderDayPartial{Day: d, InBand: da.inBand,
			Platform: make(map[string]stats.OnlineState, len(da.plat)),
			Size:     make(map[string]stats.OnlineState, len(da.size))}
		for name, acc := range da.plat {
			p.Platform[name] = acc.State()
		}
		for name, acc := range da.size {
			p.Size[name] = acc.State()
		}
		out = append(out, p)
	}
	return out
}

// assembleConfounders folds day partials (from one store or many shards)
// into the ConfounderReport answer: per-level accumulators merge strictly
// ascending by day, then means and spreads are read off. The fold order is
// canonical, so the answer is a pure function of the ingested records.
func assembleConfounders(parts []ConfounderDayPartial) ([]ConfounderEffect, error) {
	sort.Slice(parts, func(i, j int) bool { return parts[i].Day < parts[j].Day })
	total := 0
	platAcc := map[string]*stats.Online{}
	sizeAcc := map[string]*stats.Online{}
	merge := func(dst map[string]*stats.Online, states map[string]stats.OnlineState) {
		for name, st := range states {
			acc := dst[name]
			if acc == nil {
				acc = &stats.Online{}
				dst[name] = acc
			}
			acc.Merge(stats.FromState(st))
		}
	}
	for i := range parts {
		total += parts[i].InBand
		merge(platAcc, parts[i].Platform)
		merge(sizeAcc, parts[i].Size)
	}
	if total < 20 {
		return nil, fmt.Errorf("usaas: only %d sessions inside the control bands", total)
	}
	platform := ConfounderEffect{Confounder: "platform", Levels: map[string]float64{}}
	size := ConfounderEffect{Confounder: "meeting-size", Levels: map[string]float64{}}
	for name, acc := range platAcc {
		platform.Levels[name] = acc.Mean()
	}
	for name, acc := range sizeAcc {
		size.Levels[name] = acc.Mean()
	}
	platform.Spread = levelSpread(platform.Levels)
	size.Spread = levelSpread(size.Levels)
	return []ConfounderEffect{platform, size}, nil
}

// ConfounderReport measures platform and meeting-size effects on one
// engagement metric with every network metric held in the §3.2 control
// bands, so the network cannot be the explanation. The computation is the
// day-partitioned fold assembleConfounders describes — the same one the
// cluster coordinator runs over shard partials.
func ConfounderReport(records []telemetry.SessionRecord, eng telemetry.Engagement) ([]ConfounderEffect, error) {
	var rs rowStore
	rs.append(records)
	return assembleConfounders(confounderDayPartials(rs.snapshot(), eng))
}

func levelSpread(levels map[string]float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range levels {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(hi, -1) || hi <= 0 {
		return math.NaN()
	}
	return (hi - lo) / hi
}

// LongitudinalConditioning measures §6's third confounder from telemetry
// alone: among *bad-network* sessions of returning users, does engagement
// depend on what the user experienced last time? A user whose previous
// session was also bad has a lowered expectation and tolerates the current
// one better — the in-call analogue of Fig. 7's "wheel of time".
type LongitudinalConditioning struct {
	// PresenceBadAfterBad / PresenceBadAfterGood are mean Presence in bad
	// sessions, split by the quality of the same user's previous session.
	PresenceBadAfterBad  float64
	PresenceBadAfterGood float64
	NBadAfterBad         int
	NBadAfterGood        int
}

// Effect is the conditioning gap in presence points (positive = conditioned
// users tolerate degradation better).
func (l LongitudinalConditioning) Effect() float64 {
	return l.PresenceBadAfterBad - l.PresenceBadAfterGood
}

// badSession classifies a session's network as degraded.
func badSession(r *telemetry.SessionRecord) bool {
	return r.Net.LatencyMean > 150 || r.Net.LossMean > 1.5
}

// AnalyzeLongitudinalConditioning groups sessions by user, orders each
// user's history by start time, and compares bad-session engagement by
// previous-session quality. Requires stable user IDs across sessions (see
// conference.Options.UserPool).
func AnalyzeLongitudinalConditioning(records []telemetry.SessionRecord) LongitudinalConditioning {
	byUser := map[uint64][]*telemetry.SessionRecord{}
	for i := range records {
		r := &records[i]
		byUser[r.UserID] = append(byUser[r.UserID], r)
	}
	var afterBad, afterGood stats.Online
	for _, sessions := range byUser {
		if len(sessions) < 2 {
			continue
		}
		sort.Slice(sessions, func(a, b int) bool { return sessions[a].Start.Before(sessions[b].Start) })
		for i := 1; i < len(sessions); i++ {
			cur, prev := sessions[i], sessions[i-1]
			if !badSession(cur) {
				continue
			}
			if badSession(prev) {
				afterBad.Add(cur.PresencePct)
			} else {
				afterGood.Add(cur.PresencePct)
			}
		}
	}
	return LongitudinalConditioning{
		PresenceBadAfterBad:  afterBad.Mean(),
		PresenceBadAfterGood: afterGood.Mean(),
		NBadAfterBad:         afterBad.N(),
		NBadAfterGood:        afterGood.N(),
	}
}

// StratificationCheck compares the pooled dose-response slope with the
// within-stratum slopes: when confounders correlate with both the network
// metric and engagement, the pooled slope is biased (Simpson-style), and
// the gap measures how much an uncontrolled analysis would mis-estimate
// the network effect.
type StratificationCheck struct {
	PooledSlope      float64
	MeanStratumSlope float64
	Strata           map[string]float64 // per-stratum slope
	// Bias is pooled - mean-stratum slope; near 0 means pooling is safe.
	Bias float64
}

// CheckPlatformStratification runs the check with platforms as strata.
func CheckPlatformStratification(records []telemetry.SessionRecord, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, filter telemetry.Filter) (StratificationCheck, error) {
	pooled, err := DoseResponse(records, metric, eng, b, filter)
	if err != nil {
		return StratificationCheck{}, err
	}
	pne := pooled.NonEmpty()
	check := StratificationCheck{Strata: map[string]float64{}}
	check.PooledSlope, _ = stats.TrendSlope(pne.X, pne.Y)

	perPlatform, err := ByPlatform(records, metric, eng, b, filter)
	if err != nil {
		return StratificationCheck{}, err
	}
	names := make([]string, 0, len(perPlatform))
	for name := range perPlatform {
		names = append(names, name)
	}
	sort.Strings(names)
	var sum float64
	var n int
	for _, name := range names {
		ne := perPlatform[name].NonEmpty()
		slope, _ := stats.TrendSlope(ne.X, ne.Y)
		if math.IsNaN(slope) {
			continue
		}
		check.Strata[name] = slope
		sum += slope
		n++
	}
	if n > 0 {
		check.MeanStratumSlope = sum / float64(n)
	} else {
		check.MeanStratumSlope = math.NaN()
	}
	check.Bias = check.PooledSlope - check.MeanStratumSlope
	return check, nil
}
