package usaas

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"usersignals/internal/leo"
	"usersignals/internal/nlp"
	"usersignals/internal/social"
	"usersignals/internal/timeline"
)

// assertSameJSON requires got and want to be deeply equal AND to serialize
// to identical bytes — the acceptance bar for the fused sweep is
// byte-identical output, not approximate agreement.
func assertSameJSON(t *testing.T, label string, got, want any) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: fused result differs from naive reference", label)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("%s: marshal got: %v", label, err)
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("%s: marshal want: %v", label, err)
	}
	if !bytes.Equal(gj, wj) {
		t.Errorf("%s: fused JSON differs from naive reference JSON", label)
	}
}

// rebuiltCorpus clones base into a fresh corpus (fresh token cache) whose
// tokenize-once index is built with the given worker count.
func rebuiltCorpus(window timeline.Range, base *social.Corpus, workers int) *social.Corpus {
	cc := social.NewCorpus(window, append([]social.Post(nil), base.Posts...))
	cc.BuildTokens(workers)
	return cc
}

// TestFusedSweepGolden checks the tentpole acceptance criterion on the full
// study corpus: the fused single-pass sweep reproduces the naive
// string-based pipeline byte for byte, at every token-cache/sweep worker
// count.
func TestFusedSweepGolden(t *testing.T) {
	c, news, cfg := studyCorpus(t)
	dict := nlp.OutageDictionary()
	topts := TrendOptions{Bigrams: true}

	wantSent := dailySentimentNaive(c, analyzer)
	wantKW := outageKeywordSeriesNaive(c, analyzer, dict, true)
	wantTrends := mineTrendsNaive(c, analyzer, topts)
	wantPeaks := annotatePeaksNaive(c, analyzer, news, 3)

	for _, w := range []int{1, 4, 16} {
		cc := rebuiltCorpus(cfg.Window, c, w)
		sw := SweepCorpus(cc, analyzer, SweepOptions{
			Sentiment: true, Dict: dict, Gate: true, Trends: &topts, Workers: w,
		})
		assertSameJSON(t, "sentiment", sw.Sentiment, wantSent)
		assertSameJSON(t, "keywords", sw.Keywords, wantKW)
		assertSameJSON(t, "trends", sw.Trends, wantTrends)
		assertSameJSON(t, "peaks", AnnotatePeaks(cc, analyzer, news, 3), wantPeaks)
	}

	// Geography on the busiest keyword day, and the ungated ablation.
	best := wantKW[0]
	for _, dk := range wantKW {
		if dk.Count > best.Count {
			best = dk
		}
	}
	assertSameJSON(t, "geography",
		OutageGeography(c, analyzer, dict, best.Day),
		outageGeographyNaive(c, analyzer, dict, best.Day))
	assertSameJSON(t, "keywords-ungated",
		OutageKeywordSeries(c, analyzer, dict, false),
		outageKeywordSeriesNaive(c, analyzer, dict, false))
}

// TestFusedSweepGoldenSeeds repeats the equivalence check on two more seeds
// (shorter windows keep generation cheap), so the golden is not an artifact
// of one corpus.
func TestFusedSweepGoldenSeeds(t *testing.T) {
	dict := nlp.OutageDictionary()
	for _, seed := range []uint64{5, 23} {
		window := timeline.Range{
			From: timeline.StarlinkWindow.From,
			To:   timeline.StarlinkWindow.From + 239,
		}
		cfg := social.DefaultConfig(seed)
		cfg.Window = window
		cfg.Outages = leo.AllOutages(seed, window, 1.5)
		base, err := social.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		topts := TrendOptions{MinWeight: 20, Bigrams: true}
		wantSent := dailySentimentNaive(base, analyzer)
		wantKW := outageKeywordSeriesNaive(base, analyzer, dict, true)
		wantTrends := mineTrendsNaive(base, analyzer, topts)
		for _, w := range []int{1, 4, 16} {
			cc := rebuiltCorpus(window, base, w)
			sw := SweepCorpus(cc, analyzer, SweepOptions{
				Sentiment: true, Dict: dict, Gate: true, Trends: &topts, Workers: w,
			})
			assertSameJSON(t, "sentiment", sw.Sentiment, wantSent)
			assertSameJSON(t, "keywords", sw.Keywords, wantKW)
			assertSameJSON(t, "trends", sw.Trends, wantTrends)
		}
	}
}

// TestMonthlySpeedsTokenPath checks the screenshot sweep's token-compiled
// scoring against a corpus whose cache was built at several worker counts
// (the series itself is asserted against figures elsewhere; here we need
// identity across cache builds).
func TestMonthlySpeedsTokenPath(t *testing.T) {
	c, _, cfg := studyCorpus(t)
	want := MonthlySpeedsN(c, analyzer, cfg.Model, 1, 1)
	for _, w := range []int{4, 16} {
		cc := rebuiltCorpus(cfg.Window, c, w)
		assertSameJSON(t, "speeds", MonthlySpeedsN(cc, analyzer, cfg.Model, 1, w), want)
	}
}
