package usaas

import (
	"sync"
	"testing"

	"usersignals/internal/conference"
	"usersignals/internal/netsim"
	"usersignals/internal/telemetry"
)

// longitudinalDataset: a persistent user pool experiencing a 50/50 mix of
// good and bad network sessions, with strong conditioning so the effect is
// measurable at test scale.
var (
	longOnce sync.Once
	longRecs []telemetry.SessionRecord
)

func longitudinalDataset(t *testing.T) []telemetry.SessionRecord {
	t.Helper()
	longOnce.Do(func() {
		good := netsim.AccessProfile{
			Name:            "good",
			LatencyMedianMs: 20, LatencySpread: 1.2,
			JitterMedianMs: 1.5, JitterSpread: 1.3,
			CapacityMedianMbps: 3.5, CapacitySpread: 1.1,
		}
		awful := netsim.AccessProfile{
			Name:            "awful",
			LatencyMedianMs: 260, LatencySpread: 1.15,
			JitterMedianMs: 4, JitterSpread: 1.3,
			CapacityMedianMbps: 3.5, CapacitySpread: 1.1,
			LossyProb: 1, LossScalePct: 1.2,
		}
		opts := conference.Defaults(606, 2500)
		opts.Paths = &netsim.Mixture{
			Profiles: []netsim.AccessProfile{good, awful},
			Weights:  []float64{0.5, 0.5},
		}
		opts.UserPool = 600
		opts.UserConditioningAlpha = 0.8
		opts.ConditioningWeight = 0.9
		g, err := conference.New(opts)
		if err != nil {
			panic(err)
		}
		longRecs, err = g.GenerateAll()
		if err != nil {
			panic(err)
		}
	})
	return longRecs
}

func TestUserPoolProducesReturningUsers(t *testing.T) {
	recs := longitudinalDataset(t)
	sessionsPerUser := map[uint64]int{}
	for i := range recs {
		sessionsPerUser[recs[i].UserID]++
	}
	if len(sessionsPerUser) > 600 {
		t.Fatalf("%d distinct users from a 600-user pool", len(sessionsPerUser))
	}
	multi := 0
	for _, n := range sessionsPerUser {
		if n >= 2 {
			multi++
		}
	}
	if multi < 400 {
		t.Fatalf("only %d users have 2+ sessions", multi)
	}
}

func TestLongitudinalConditioningEffect(t *testing.T) {
	recs := longitudinalDataset(t)
	lc := AnalyzeLongitudinalConditioning(recs)
	if lc.NBadAfterBad < 200 || lc.NBadAfterGood < 200 {
		t.Fatalf("thin cells: %+v", lc)
	}
	// The §6 mechanism: a user whose last session was bad tolerates the
	// current bad session better.
	if lc.Effect() <= 0 {
		t.Fatalf("no conditioning effect: bad-after-bad %.2f vs bad-after-good %.2f (n=%d/%d)",
			lc.PresenceBadAfterBad, lc.PresenceBadAfterGood, lc.NBadAfterBad, lc.NBadAfterGood)
	}
}

func TestLongitudinalConditioningAblation(t *testing.T) {
	// Without persistent users (fresh identity per session) the analysis
	// has no repeat users and therefore no cells.
	opts := conference.Defaults(607, 200)
	g, err := conference.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	lc := AnalyzeLongitudinalConditioning(recs)
	if lc.NBadAfterBad != 0 || lc.NBadAfterGood != 0 {
		t.Fatalf("fresh-identity dataset produced history cells: %+v", lc)
	}
}
