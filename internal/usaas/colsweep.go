package usaas

import (
	"fmt"
	"math/bits"

	"usersignals/internal/colstore"
	"usersignals/internal/parallel"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
)

// This file holds the columnar counterparts of the hot row analyses
// (engagement.go, confounders.go): the same canonical chunk fold — identical
// chunk boundaries, identical merge order, identical Adds — executed over
// the colstore mirror's dense columns instead of 248-byte row structs. The
// filter arrives as a telemetry.FilterSpec and compiles to a per-partition
// predicate (colstore.Pred) evaluated over dictionary codes, bitsets, and
// float columns; accepted records' metric/engagement values are read
// straight out of the float columns. Every function returns ok=false when
// the parameterization has no column plan (an invalid metric), in which
// case callers fall back to the row reference path.

// selWords is the selection-bitset size covering one canonical chunk.
const selWords = (parallel.ChunkSize + 63) / 64

// StudyFilterSpec is StudyFilter in declarative form: the §3.1 cohort plus
// the §3.2 control bands for the varied metric.
func StudyFilterSpec(vary telemetry.Metric) telemetry.FilterSpec {
	spec := telemetry.StudyCohortSpec()
	spec.Bands = telemetry.ControlBandsSpec(vary).Bands
	return spec
}

// specFilter turns a spec into the row path's closure form (nil spec = no
// filter), for the fallback arms below.
func specFilter(spec *telemetry.FilterSpec) telemetry.Filter {
	if spec == nil {
		return nil
	}
	return spec.Filter()
}

// DoseResponseSpec computes DoseResponseN for a declarative filter,
// preferring the columnar mirror and falling back to the row scan when the
// mirror is off or the parameterization has no column plan. Both paths
// produce bit-identical output.
func (s *Store) DoseResponseSpec(metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, spec *telemetry.FilterSpec, workers int) (stats.BinnedSeries, error) {
	if snap, ok := s.ColumnarSnapshot(); ok {
		if series, ok, err := DoseResponseCols(snap, metric, eng, b, spec, workers); ok || err != nil {
			return series, err
		}
	}
	return doseResponseRows(s.Rows(), metric, eng, b, specFilter(spec), workers)
}

// CompoundingSpec is CompoundingN with the same columnar-first contract as
// DoseResponseSpec.
func (s *Store) CompoundingSpec(xMetric, yMetric telemetry.Metric, eng telemetry.Engagement, xb, yb stats.Binner, spec *telemetry.FilterSpec, workers int) (stats.Grid2D, error) {
	if snap, ok := s.ColumnarSnapshot(); ok {
		if grid, ok, err := CompoundingCols(snap, xMetric, yMetric, eng, xb, yb, spec, workers); ok || err != nil {
			return grid, err
		}
	}
	return compoundingRows(s.Rows(), xMetric, yMetric, eng, xb, yb, specFilter(spec), workers)
}

// ByPlatformSpec is ByPlatformN with the same columnar-first contract as
// DoseResponseSpec.
func (s *Store) ByPlatformSpec(metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, spec *telemetry.FilterSpec, workers int) (map[string]stats.BinnedSeries, error) {
	if snap, ok := s.ColumnarSnapshot(); ok {
		if out, ok, err := ByPlatformCols(snap, metric, eng, b, spec, workers); ok || err != nil {
			return out, err
		}
	}
	return byPlatformRows(s.Rows(), metric, eng, b, specFilter(spec), workers)
}

// ByMeetingSizeSpec is ByMeetingSizeN with the same columnar-first contract
// as DoseResponseSpec.
func (s *Store) ByMeetingSizeSpec(metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, buckets []SizeBucket, spec *telemetry.FilterSpec, workers int) (map[string]stats.BinnedSeries, error) {
	if snap, ok := s.ColumnarSnapshot(); ok {
		if out, ok, err := ByMeetingSizeCols(snap, metric, eng, b, buckets, spec, workers); ok || err != nil {
			return out, err
		}
	}
	return byMeetingSizeRows(s.Rows(), metric, eng, b, buckets, specFilter(spec), workers)
}

// DoseResponseCols is DoseResponseN over the columnar mirror. Byte-identical
// to the row scan at any worker count.
func DoseResponseCols(snap colstore.Snapshot, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, spec *telemetry.FilterSpec, workers int) (stats.BinnedSeries, bool, error) {
	mcol, ok1 := colstore.MetricCol(metric)
	ecol, ok2 := colstore.EngagementCol(eng)
	pred, ok3 := snap.Compile(spec)
	if !ok1 || !ok2 || !ok3 {
		return stats.BinnedSeries{}, false, nil
	}
	shards, err := parallel.Map(workers, parallel.Chunks(snap.Len()), func(i int) (*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, snap.Len())
		acc := stats.NewBinAcc(b)
		var selArr [selWords]uint64
		snap.Scan(lo, hi, func(pt *colstore.Partition, from, to int) {
			xs, ys := pt.Floats(mcol), pt.Floats(ecol)
			if pred == nil {
				for j := from; j < to; j++ {
					acc.Add(xs[j], ys[j])
				}
				return
			}
			sel := selArr[:(to-from+63)/64]
			pred.Select(pt, from, to, sel)
			for k, w := range sel {
				base := from + k<<6
				for m := w; m != 0; m &= m - 1 {
					j := base + bits.TrailingZeros64(m)
					acc.Add(xs[j], ys[j])
				}
			}
		})
		return acc, nil
	})
	if err != nil {
		return stats.BinnedSeries{}, false, err
	}
	total := stats.NewBinAcc(b)
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return stats.BinnedSeries{}, false, err
		}
	}
	return total.Series(), true, nil
}

// CompoundingCols is CompoundingN over the columnar mirror.
func CompoundingCols(snap colstore.Snapshot, xMetric, yMetric telemetry.Metric, eng telemetry.Engagement, xb, yb stats.Binner, spec *telemetry.FilterSpec, workers int) (stats.Grid2D, bool, error) {
	xcol, ok1 := colstore.MetricCol(xMetric)
	ycol, ok2 := colstore.MetricCol(yMetric)
	ecol, ok3 := colstore.EngagementCol(eng)
	pred, ok4 := snap.Compile(spec)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return stats.Grid2D{}, false, nil
	}
	shards, err := parallel.Map(workers, parallel.Chunks(snap.Len()), func(i int) (*stats.Grid2DAcc, error) {
		lo, hi := parallel.ChunkBounds(i, snap.Len())
		acc := stats.NewGrid2DAcc(xb, yb)
		var selArr [selWords]uint64
		snap.Scan(lo, hi, func(pt *colstore.Partition, from, to int) {
			xs, ys, es := pt.Floats(xcol), pt.Floats(ycol), pt.Floats(ecol)
			if pred == nil {
				for j := from; j < to; j++ {
					acc.Add(xs[j], ys[j], es[j])
				}
				return
			}
			sel := selArr[:(to-from+63)/64]
			pred.Select(pt, from, to, sel)
			for k, w := range sel {
				base := from + k<<6
				for m := w; m != 0; m &= m - 1 {
					j := base + bits.TrailingZeros64(m)
					acc.Add(xs[j], ys[j], es[j])
				}
			}
		})
		return acc, nil
	})
	if err != nil {
		return stats.Grid2D{}, false, err
	}
	total := stats.NewGrid2DAcc(xb, yb)
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return stats.Grid2D{}, false, err
		}
	}
	return total.Grid(), true, nil
}

// ByPlatformCols is ByPlatformN over the columnar mirror: per-chunk
// accumulators keyed by platform dictionary code, merged in chunk order,
// names resolved once at the end.
func ByPlatformCols(snap colstore.Snapshot, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, spec *telemetry.FilterSpec, workers int) (map[string]stats.BinnedSeries, bool, error) {
	mcol, ok1 := colstore.MetricCol(metric)
	ecol, ok2 := colstore.EngagementCol(eng)
	pred, ok3 := snap.Compile(spec)
	if !ok1 || !ok2 || !ok3 {
		return nil, false, nil
	}
	shards, err := parallel.Map(workers, parallel.Chunks(snap.Len()), func(i int) (map[uint32]*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, snap.Len())
		accs := map[uint32]*stats.BinAcc{}
		var selArr [selWords]uint64
		snap.Scan(lo, hi, func(pt *colstore.Partition, from, to int) {
			xs, ys := pt.Floats(mcol), pt.Floats(ecol)
			sel := selArr[:(to-from+63)/64]
			pred.Select(pt, from, to, sel)
			for k, w := range sel {
				base := from + k<<6
				for m := w; m != 0; m &= m - 1 {
					j := base + bits.TrailingZeros64(m)
					code := pt.PlatformCode(j)
					acc := accs[code]
					if acc == nil {
						acc = stats.NewBinAcc(b)
						accs[code] = acc
					}
					acc.Add(xs[j], ys[j])
				}
			}
		})
		return accs, nil
	})
	if err != nil {
		return nil, false, err
	}
	merged := map[uint32]*stats.BinAcc{}
	for _, shard := range shards {
		for code, acc := range shard {
			if total := merged[code]; total != nil {
				if err := total.Merge(acc); err != nil {
					return nil, false, err
				}
			} else {
				merged[code] = acc
			}
		}
	}
	out := make(map[string]stats.BinnedSeries, len(merged))
	for code, acc := range merged {
		out[snap.PlatformName(code)] = acc.Series()
	}
	return out, true, nil
}

// ByMeetingSizeCols is ByMeetingSizeN over the columnar mirror: one
// accumulator per stratum per chunk, first-match bucket assignment, strata
// merged in chunk order.
func ByMeetingSizeCols(snap colstore.Snapshot, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, buckets []SizeBucket, spec *telemetry.FilterSpec, workers int) (map[string]stats.BinnedSeries, bool, error) {
	if len(buckets) == 0 {
		buckets = DefaultSizeBuckets()
	}
	mcol, ok1 := colstore.MetricCol(metric)
	ecol, ok2 := colstore.EngagementCol(eng)
	pred, ok3 := snap.Compile(spec)
	if !ok1 || !ok2 || !ok3 {
		return nil, false, nil
	}
	shards, err := parallel.Map(workers, parallel.Chunks(snap.Len()), func(i int) ([]*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, snap.Len())
		accs := make([]*stats.BinAcc, len(buckets))
		var selArr [selWords]uint64
		snap.Scan(lo, hi, func(pt *colstore.Partition, from, to int) {
			xs, ys := pt.Floats(mcol), pt.Floats(ecol)
			sel := selArr[:(to-from+63)/64]
			pred.Select(pt, from, to, sel)
			for k, w := range sel {
				base := from + k<<6
				for m := w; m != 0; m &= m - 1 {
					j := base + bits.TrailingZeros64(m)
					size := pt.MeetingSize(j)
					for bi, bk := range buckets {
						if size >= bk.Lo && size <= bk.Hi {
							if accs[bi] == nil {
								accs[bi] = stats.NewBinAcc(b)
							}
							accs[bi].Add(xs[j], ys[j])
							break
						}
					}
				}
			}
		})
		return accs, nil
	})
	if err != nil {
		return nil, false, fmt.Errorf("usaas: meeting-size strata: %w", err)
	}
	out := make(map[string]stats.BinnedSeries, len(buckets))
	for bi, bk := range buckets {
		var total *stats.BinAcc
		for _, shard := range shards {
			if shard[bi] == nil {
				continue
			}
			if total == nil {
				total = shard[bi]
			} else if err := total.Merge(shard[bi]); err != nil {
				return nil, false, fmt.Errorf("usaas: meeting-size strata: %w", err)
			}
		}
		if total != nil {
			out[bk.Name] = total.Series()
		}
	}
	return out, true, nil
}
