package usaas

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"usersignals/internal/conference"
	"usersignals/internal/durable"
	"usersignals/internal/leo"
	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// crashDataset generates a small per-seed signal mix. Posts are round-
// tripped through their wire form first (as HTTP ingest would deliver
// them), so the reference store and the recovered store see byte-equal
// inputs — the durable log stores exactly the wire form.
func crashDataset(t testing.TB, seed uint64) ([]telemetry.SessionRecord, []social.Post) {
	t.Helper()
	g, err := conference.New(conference.Defaults(seed, 160))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) > 400 {
		recs = recs[:400]
	}
	cfg := social.DefaultConfig(seed)
	cfg.Window = timeline.Range{From: timeline.Date(2022, 1, 1), To: timeline.Date(2022, 2, 28)}
	cfg.Outages = leo.AllOutages(seed, cfg.Window, 1.5)
	corpus, err := social.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	posts := corpus.Posts
	if len(posts) > 300 {
		posts = posts[:300]
	}
	var buf bytes.Buffer
	if err := social.WritePostsJSONL(&buf, posts); err != nil {
		t.Fatal(err)
	}
	clean, err := social.CollectPostsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs, clean
}

// ingestBatch is one idempotent delivery: either sessions or posts.
type ingestBatch struct {
	id       string
	sessions []telemetry.SessionRecord
	posts    []social.Post
}

// raggedBatches slices the dataset into deterministic uneven batches,
// alternating session and post deliveries.
func raggedBatches(recs []telemetry.SessionRecord, posts []social.Post, seed uint64) []ingestBatch {
	var out []ingestBatch
	i, j, n := 0, 0, 0
	for i < len(recs) || j < len(posts) {
		cut := 23 + int((seed*31+uint64(n)*17)%61)
		if i < len(recs) {
			hi := min(i+cut, len(recs))
			out = append(out, ingestBatch{id: fmt.Sprintf("s%d-%d", seed, n), sessions: recs[i:hi]})
			i = hi
			n++
		}
		if j < len(posts) {
			hi := min(j+cut, len(posts))
			out = append(out, ingestBatch{id: fmt.Sprintf("p%d-%d", seed, n), posts: posts[j:hi]})
			j = hi
			n++
		}
	}
	return out
}

func applyBatch(t testing.TB, s *Store, b ingestBatch) {
	t.Helper()
	var err error
	if b.sessions != nil {
		_, _, err = s.AddSessionsBatch(b.id, b.sessions)
	} else {
		_, _, err = s.AddPostsBatch(b.id, b.posts)
	}
	if err != nil {
		t.Fatalf("batch %s: %v", b.id, err)
	}
}

// reportBytes renders the full operator report as the /v1/report handler
// would marshal it — the byte-identity oracle for recovery.
func reportBytes(t testing.TB, store *Store) []byte {
	t.Helper()
	srv := NewServer(store, ServerOptions{ResultCacheSize: -1})
	rep := BuildReport(store, srv.opts.Analyzer, srv.opts)
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func onlySegment(t testing.TB, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (err=%v)", segs, err)
	}
	return segs[0]
}

// TestCrashRecoveryEveryOffset is the golden durability test: build a WAL
// from ragged idempotent batches, truncate it at every frame boundary and
// at points inside every frame, and require recovery to (a) never panic
// or error and (b) produce a store whose /v1/report is byte-identical to
// replaying only the surviving complete batches into a fresh in-memory
// store. Short mode runs one seed with fewer mid-frame cuts.
func TestCrashRecoveryEveryOffset(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			recs, posts := crashDataset(t, seed)
			batches := raggedBatches(recs, posts, seed)
			dir := t.TempDir()
			d, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
			if err != nil {
				t.Fatal(err)
			}
			for i, b := range batches {
				applyBatch(t, d.Store, b)
				if i == 2 {
					applyBatch(t, d.Store, batches[0]) // duplicate delivery: no new frame
				}
			}
			if err := d.Sync(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(onlySegment(t, dir))
			if err != nil {
				t.Fatal(err)
			}
			bounds := durable.FrameBoundaries(data)
			if len(bounds) != len(batches) {
				t.Fatalf("log holds %d frames for %d accepted batches (dedup leaked into the WAL?)", len(bounds), len(batches))
			}

			// Reference reports per survivor count, built lazily: fresh
			// in-memory store fed the first k batches directly.
			expected := map[int][]byte{}
			expect := func(k int) []byte {
				if b, ok := expected[k]; ok {
					return b
				}
				ref := &Store{}
				for _, b := range batches[:k] {
					applyBatch(t, ref, b)
				}
				rb := reportBytes(t, ref)
				expected[k] = rb
				return rb
			}

			var cuts []int64
			prev := int64(0)
			for _, b := range bounds {
				cuts = append(cuts, b)
				if mid := (prev + b) / 2; mid > prev {
					cuts = append(cuts, mid)
				}
				if !testing.Short() {
					cuts = append(cuts, prev+1, b-1) // torn header, torn last byte
				}
				prev = b
			}
			cuts = append(cuts, 0)

			for _, cut := range cuts {
				sub := t.TempDir()
				if err := os.WriteFile(filepath.Join(sub, filepath.Base(onlySegment(t, dir))), data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				d2, err := OpenDurableStore(DurabilityOptions{Dir: sub, Fsync: durable.FsyncOff})
				if err != nil {
					t.Fatalf("cut %d: recovery failed: %v", cut, err)
				}
				k := 0
				atBoundary := cut == 0
				for _, b := range bounds {
					if b <= cut {
						k++
					}
					if b == cut {
						atBoundary = true
					}
				}
				if d2.Recovery.TornTail == atBoundary {
					t.Fatalf("cut %d: torn=%v at frame boundary=%v", cut, d2.Recovery.TornTail, atBoundary)
				}
				if d2.Recovery.ReplayedBatches != k {
					t.Fatalf("cut %d: replayed %d batches, want %d", cut, d2.Recovery.ReplayedBatches, k)
				}
				if got := reportBytes(t, d2.Store); !bytes.Equal(got, expect(k)) {
					t.Fatalf("cut %d (%d surviving batches): recovered report differs from reference", cut, k)
				}
				if err := d2.Close(); err != nil {
					t.Fatalf("cut %d: close: %v", cut, err)
				}
			}
		})
	}
}

// TestRecoverySnapshotAndTail covers the snapshot fast path: recovery
// loads the newest snapshot, replays only the tail, still survives a torn
// tail frame, and still honors pre-snapshot idempotency keys.
func TestRecoverySnapshotAndTail(t *testing.T) {
	recs, posts := crashDataset(t, 7)
	batches := raggedBatches(recs, posts, 7)
	half := len(batches) / 2
	dir := t.TempDir()
	d, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:half] {
		applyBatch(t, d.Store, b)
	}
	if err := d.snapshotNow(); err != nil {
		t.Fatal(err)
	}
	if got := d.LastSnapshotSeq(); got != uint64(half) {
		t.Fatalf("snapshot covers seq %d, want %d", got, half)
	}
	for _, b := range batches[half:] {
		applyBatch(t, d.Store, b)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	full := reportBytes(t, d.Store)

	// Clean recovery: snapshot + full tail replay, byte-identical.
	d2, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Recovery.SnapshotFound || d2.Recovery.SnapshotSeq != uint64(half) {
		t.Fatalf("recovery stats: %+v", d2.Recovery)
	}
	if d2.Recovery.ReplayedBatches != len(batches)-half {
		t.Fatalf("replayed %d, want %d", d2.Recovery.ReplayedBatches, len(batches)-half)
	}
	if got := reportBytes(t, d2.Store); !bytes.Equal(got, full) {
		t.Fatal("snapshot+tail recovery diverged from live store")
	}
	// A pre-snapshot batch replayed after recovery must still dedup to
	// its original acknowledgement.
	resp, dup, err := d2.Store.AddSessionsBatch(batches[0].id, batches[0].sessions)
	if err != nil || !dup || !resp.Duplicate {
		t.Fatalf("pre-snapshot batch not deduped after recovery: dup=%v err=%v", dup, err)
	}
	d2.Close()

	// Torn tail past the snapshot: truncate mid-way into the first frame
	// after the snapshot boundary — recovery = snapshot + zero tail.
	data, err := os.ReadFile(onlySegment(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	bounds := durable.FrameBoundaries(data)
	cut := bounds[half] - 2 // inside frame half (0-indexed): it is torn away
	sub := t.TempDir()
	if err := os.WriteFile(filepath.Join(sub, filepath.Base(onlySegment(t, dir))), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	// The snapshot must come along for the recovery to use it.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want one snapshot, got %v", snaps)
	}
	sb, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, filepath.Base(snaps[0])), sb, 0o644); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDurableStore(DurabilityOptions{Dir: sub, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if !d3.Recovery.SnapshotFound || !d3.Recovery.TornTail || d3.Recovery.ReplayedBatches != 0 {
		t.Fatalf("torn-tail-after-snapshot stats: %+v", d3.Recovery)
	}
	ref := &Store{}
	for _, b := range batches[:half] {
		applyBatch(t, ref, b)
	}
	if got := reportBytes(t, d3.Store); !bytes.Equal(got, reportBytes(t, ref)) {
		t.Fatal("snapshot-only recovery diverged from reference")
	}
	d3.Close()
}

// TestSnapshotCompaction verifies the snapshotter truncates history: a
// snapshot at the log head lets every closed segment be removed, and the
// next recovery replays nothing.
func TestSnapshotCompaction(t *testing.T) {
	recs, posts := crashDataset(t, 9)
	batches := raggedBatches(recs, posts, 9)
	dir := t.TempDir()
	d, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		applyBatch(t, d.Store, b)
	}
	before, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(before) < 2 {
		t.Fatalf("want segment rotation, got %d segments", len(before))
	}
	if err := d.snapshotNow(); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(after) >= len(before) {
		t.Fatalf("compaction kept %d of %d segments", len(after), len(before))
	}
	if d.LastSnapshotSeq() != d.WALSeq() {
		t.Fatalf("snapshot at %d, log at %d", d.LastSnapshotSeq(), d.WALSeq())
	}
	live := reportBytes(t, d.Store)
	d.Close()

	d2, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Recovery.SnapshotFound || d2.Recovery.ReplayedBatches != 0 {
		t.Fatalf("post-compaction recovery stats: %+v", d2.Recovery)
	}
	if got := reportBytes(t, d2.Store); !bytes.Equal(got, live) {
		t.Fatal("post-compaction recovery diverged")
	}
	d2.Close()
}

// TestConcurrentIngestRecoveryEquivalence: N goroutines ingest ragged
// batches (with cross-goroutine duplicate deliveries) while the
// background snapshotter runs; a store recovered from the resulting disk
// state must agree with the live store on Counts(), /v1/stats, and the
// full report — the WAL records the actual interleaving, so recovery
// reproduces whatever order this run committed.
func TestConcurrentIngestRecoveryEquivalence(t *testing.T) {
	recs, posts := crashDataset(t, 11)
	batches := raggedBatches(recs, posts, 11)
	dir := t.TempDir()
	d, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	shared := batches[0] // every worker delivers this one; dedup admits one
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			applyBatch(t, d.Store, shared)
			for i := 1 + w; i < len(batches); i += workers {
				applyBatch(t, d.Store, batches[i])
				if i%3 == 0 {
					applyBatch(t, d.Store, batches[i]) // immediate duplicate
				}
			}
		}(w)
	}
	wg.Wait()
	if err := d.Close(); err != nil { // drains: final snapshot + fsync
		t.Fatal(err)
	}
	liveSessions, livePosts := d.Counts()
	wantSessions, wantPosts := len(recs), len(posts)
	if liveSessions != wantSessions || livePosts != wantPosts {
		t.Fatalf("live store %d/%d, want %d/%d (dedup failed?)", liveSessions, livePosts, wantSessions, wantPosts)
	}
	liveReport := reportBytes(t, d.Store)
	liveStats := statsBody(t, d.Store)

	rec, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	gotSessions, gotPosts := rec.Counts()
	if gotSessions != liveSessions || gotPosts != livePosts {
		t.Fatalf("recovered %d/%d, live %d/%d", gotSessions, gotPosts, liveSessions, livePosts)
	}
	if got := statsBody(t, rec.Store); !bytes.Equal(got, liveStats) {
		t.Fatalf("/v1/stats diverged: %s vs %s", got, liveStats)
	}
	if got := reportBytes(t, rec.Store); !bytes.Equal(got, liveReport) {
		t.Fatal("recovered report diverged from live store")
	}
}

// TestHTTPIngestDurability drives the wire-capture path: NDJSON bodies
// POSTed over HTTP are journaled verbatim (no re-encode), duplicates by
// batch ID produce no frames, and recovery from the resulting log is
// byte-identical to the live server's report.
func TestHTTPIngestDurability(t *testing.T) {
	recs, posts := crashDataset(t, 5)
	recs, posts = recs[:90], posts[:60]
	dir := t.TempDir()
	d, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(d.Store, ServerOptions{ResultCacheSize: -1}).Handler())
	defer srv.Close()

	post := func(path, batchID string, body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		req.Header.Set(BatchIDHeader, batchID)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	sessWire, err := telemetry.AppendNDJSON(nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	var postWire bytes.Buffer
	if err := social.WritePostsJSONL(&postWire, posts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second round = duplicate deliveries
		if resp := post("/v1/sessions", "http-s1", sessWire); resp.StatusCode != 200 {
			t.Fatalf("sessions ingest: %d", resp.StatusCode)
		}
		if resp := post("/v1/posts", "http-p1", postWire.Bytes()); resp.StatusCode != 200 {
			t.Fatalf("posts ingest: %d", resp.StatusCode)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(onlySegment(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(durable.FrameBoundaries(data)); got != 2 {
		t.Fatalf("log holds %d frames, want 2 (duplicates must not be journaled)", got)
	}
	// The journaled payload is the wire body itself, not a re-encode.
	if !bytes.Contains(data, sessWire[:200]) {
		t.Fatal("session frame does not contain the wire body verbatim")
	}

	rec, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	ls, lp := d.Counts()
	rs, rp := rec.Counts()
	if rs != ls || rp != lp || rs != len(recs) || rp != len(posts) {
		t.Fatalf("recovered %d/%d, live %d/%d, ingested %d/%d", rs, rp, ls, lp, len(recs), len(posts))
	}
	if !bytes.Equal(reportBytes(t, rec.Store), reportBytes(t, d.Store)) {
		t.Fatal("recovery from HTTP-journaled log diverged")
	}
	d.Close()
}

// statsBody fetches /v1/stats over HTTP.
func statsBody(t testing.TB, store *Store) []byte {
	t.Helper()
	srv := httptest.NewServer(NewServer(store, ServerOptions{ResultCacheSize: -1}).Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("stats: %d %v", resp.StatusCode, err)
	}
	return b
}

// TestDurableFsyncModes smoke-tests each policy end to end.
func TestDurableFsyncModes(t *testing.T) {
	recs, _ := crashDataset(t, 13)
	for _, mode := range []durable.FsyncPolicy{durable.FsyncPerBatch, durable.FsyncInterval, durable.FsyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: mode, SnapshotEvery: 3})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 6; i++ {
				lo, hi := i*len(recs)/6, (i+1)*len(recs)/6
				if _, _, err := d.AddSessionsBatch(fmt.Sprintf("m-%d", i), recs[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: mode})
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := d2.Counts(); got != len(recs)/6*6+len(recs)%6 {
				s, _ := d.Counts()
				t.Fatalf("recovered %d sessions, live had %d", got, s)
			}
			if got := reportBytes(t, d2.Store); !bytes.Equal(got, reportBytes(t, d.Store)) {
				t.Fatal("recovery diverged")
			}
			d2.Close()
		})
	}
}

// TestOpenDurableStoreFreshDir: a data dir that does not exist yet must
// be created, not rejected — recovery lists snapshots and log segments
// before the WAL open creates the directory, and both listings must
// treat a missing directory as simply empty.
func TestOpenDurableStoreFreshDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	d, err := OpenDurableStore(DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatalf("open on fresh dir: %v", err)
	}
	if _, _, err := d.AddSessionsBatch("b-1", []telemetry.SessionRecord{{CallID: 1, UserID: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurableStore(DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got, _ := d2.Counts(); got != 1 {
		t.Fatalf("recovered %d sessions, want 1", got)
	}
}

// TestCrashInCompactionWindow covers the two crash points inside
// snapshotNow's window: after the snapshot file is durable but before any
// covered segment is deleted, and after only some covered segments are
// deleted. Both must recover byte-identically — the snapshot wins and the
// stale segments are ignored — and the next snapshot pass converges the
// directory back to its compact form.
func TestCrashInCompactionWindow(t *testing.T) {
	recs, posts := crashDataset(t, 9)
	batches := raggedBatches(recs, posts, 9)
	dir := t.TempDir()
	opts := DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff, SegmentBytes: 4 << 10}
	d, err := OpenDurableStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		applyBatch(t, d.Store, b)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, d.Store)

	// First half of snapshotNow: write the snapshot. Crash before Compact —
	// every covered segment is still on disk next to the snapshot.
	st, seq := d.captureState()
	if err := durable.WriteSnapshot(dir, seq, func(w io.Writer) error {
		return encodeSnapshot(w, seq, st)
	}); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want several segments in the compaction window, got %v (err=%v)", segs, err)
	}
	sort.Strings(segs)

	d2, err := OpenDurableStore(opts)
	if err != nil {
		t.Fatalf("recovery with snapshot + uncompacted segments: %v", err)
	}
	if !d2.Recovery.SnapshotFound || d2.Recovery.SnapshotSeq != seq {
		t.Fatalf("recovery ignored the snapshot: %+v", d2.Recovery)
	}
	if d2.Recovery.ReplayedBatches != 0 {
		t.Fatalf("replayed %d batches the snapshot already covers", d2.Recovery.ReplayedBatches)
	}
	if got := reportBytes(t, d2.Store); !bytes.Equal(got, want) {
		t.Fatal("report differs after crash between snapshot write and compaction")
	}

	// Second crash point: compaction got through part of the covered range
	// before dying. Recovery must not mind the missing prefix.
	if err := os.Remove(segs[0]); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDurableStore(opts)
	if err != nil {
		t.Fatalf("recovery with partially compacted segments: %v", err)
	}
	if got := reportBytes(t, d3.Store); !bytes.Equal(got, want) {
		t.Fatal("report differs after crash mid-compaction")
	}

	// Convergence: the next snapshot pass re-runs the whole window and
	// leaves a compact directory — one snapshot, no fully covered segments.
	extraRecs, _ := crashDataset(t, 10)
	applyBatch(t, d3.Store, ingestBatch{id: "window-extra", sessions: extraRecs[:20]})
	if err := d3.snapshotNow(); err != nil {
		t.Fatalf("re-compaction: %v", err)
	}
	leftSegs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(leftSegs) != 1 {
		t.Fatalf("re-compaction left %d segments, want 1 (active): %v", len(leftSegs), leftSegs)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("re-compaction left %d snapshots, want 1: %v", len(snaps), snaps)
	}
	want3 := reportBytes(t, d3.Store)
	if err := d3.Close(); err != nil {
		t.Fatal(err)
	}
	d4, err := OpenDurableStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d4.Close()
	if d4.Recovery.ReplayedBatches != 0 || !d4.Recovery.SnapshotFound {
		t.Fatalf("post-convergence recovery: %+v", d4.Recovery)
	}
	if got := reportBytes(t, d4.Store); !bytes.Equal(got, want3) {
		t.Fatal("report differs after converged re-compaction")
	}
}
