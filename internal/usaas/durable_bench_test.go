package usaas

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"usersignals/internal/benchguard"
	"usersignals/internal/conference"
	"usersignals/internal/durable"
	"usersignals/internal/telemetry"
)

func benchSessions(b *testing.B, n int) []telemetry.SessionRecord {
	b.Helper()
	g, err := conference.New(conference.Defaults(42, 400))
	if err != nil {
		b.Fatal(err)
	}
	recs, err := g.GenerateAll()
	if err != nil {
		b.Fatal(err)
	}
	if len(recs) < n {
		b.Fatalf("dataset too small: %d < %d", len(recs), n)
	}
	return recs[:n]
}

// BenchmarkIngestWAL measures the journaling overhead a batch pays on the
// ingest path — what a POST /v1/sessions costs end to end inside the
// process: parse the NDJSON body, then apply the batch. The in-memory
// store is the baseline; the same batches then go through a DurableStore
// under each fsync policy. As on the HTTP path, the wire bytes are in
// hand (the handler captures the request body), so the journal logs them
// verbatim rather than re-encoding. The acceptance target is fsync=off
// and fsync=interval within 2x of memory.
//
// Requires a fixed iteration count (-benchtime=2000x); benchguard fails
// the run otherwise. Time-based auto-scaling pushes total write volume
// past the kernel's dirty-page thresholds, at which point every durable
// mode measures the disk's sustained writeback bandwidth instead of the
// journaling overhead.
func BenchmarkIngestWAL(b *testing.B) {
	benchguard.FixedIterations(b)
	const batch = 20
	seedRecs := benchSessions(b, batch)
	wire, err := telemetry.AppendNDJSON(nil, seedRecs)
	if err != nil {
		b.Fatal(err)
	}
	payload := int64(len(wire))

	// parse decodes the wire body exactly as handleSessions does.
	recs := make([]telemetry.SessionRecord, 0, batch)
	parse := func(b *testing.B) []telemetry.SessionRecord {
		recs = recs[:0]
		if err := telemetry.ReadJSONL(bytes.NewReader(wire), func(rec *telemetry.SessionRecord) error {
			recs = append(recs, *rec)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		return recs
	}

	// Ingest accumulates state, so reset the store every resetEvery
	// batches (off the clock) to keep fold costs representative and
	// memory bounded at large b.N.
	const resetEvery = 512

	b.Run("memory", func(b *testing.B) {
		b.SetBytes(payload)
		b.ReportAllocs()
		s := &Store{}
		for i := 0; i < b.N; i++ {
			if i%resetEvery == 0 && i > 0 {
				b.StopTimer()
				s = &Store{}
				b.StartTimer()
			}
			if _, _, err := s.addSessionsBatch(fmt.Sprintf("b%d", i), parse(b), wire); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, mode := range []durable.FsyncPolicy{durable.FsyncOff, durable.FsyncInterval, durable.FsyncPerBatch} {
		b.Run("wal-fsync-"+mode.String(), func(b *testing.B) {
			b.SetBytes(payload)
			b.ReportAllocs()
			open := func() *DurableStore {
				d, err := OpenDurableStore(DurabilityOptions{Dir: b.TempDir(), Fsync: mode})
				if err != nil {
					b.Fatal(err)
				}
				return d
			}
			d := open()
			for i := 0; i < b.N; i++ {
				if i%resetEvery == 0 && i > 0 {
					b.StopTimer()
					d.Close()
					d = open()
					b.StartTimer()
				}
				if _, _, err := d.addSessionsBatch(fmt.Sprintf("b%d", i), parse(b), wire); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d.Close()
		})
	}

	// wal-fsync-batch-group: the same per-batch durability contract, but
	// with concurrent appenders sharing commit groups. 16 goroutines
	// drive the async ingest path against one group-commit store, so a
	// single fsync covers many acks — this is the shape the load harness
	// measures over HTTP, minus the network.
	b.Run("wal-fsync-batch-group", func(b *testing.B) {
		b.SetBytes(payload)
		b.ReportAllocs()
		d, err := OpenDurableStore(DurabilityOptions{
			Dir: b.TempDir(), Fsync: durable.FsyncPerBatch, GroupCommit: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		var seq atomic.Uint64
		b.SetParallelism(16)
		b.RunParallel(func(pb *testing.PB) {
			local := make([]telemetry.SessionRecord, 0, batch)
			for pb.Next() {
				local = local[:0]
				if err := telemetry.ReadJSONL(bytes.NewReader(wire), func(rec *telemetry.SessionRecord) error {
					local = append(local, *rec)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				id := fmt.Sprintf("g%d", seq.Add(1))
				_, _, tk, job, err := d.addSessionsBatchAsync(id, local, wire, false)
				if job != nil {
					// local is reused next iteration; wait out the apply.
					<-job.done
				}
				if err == nil {
					err = d.finishIngest(id, tk)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		if m, ok := d.CommitMetrics(); ok && m.Groups > 0 {
			b.ReportMetric(float64(m.Batches)/float64(m.Groups), "batches/group")
		}
		d.Close()
	})
}

// BenchmarkRecovery measures cold-start cost for a fixed corpus: full WAL
// replay versus loading a snapshot that already covers the whole log. The
// corpus is many small batches — the shape a live ingest feed leaves
// behind — so replay pays per-batch parse/dedup/fold overhead that the
// snapshot's single restore does not.
func BenchmarkRecovery(b *testing.B) {
	const batches, batch = 500, 10
	recs := benchSessions(b, batch)

	build := func(b *testing.B, snapshot bool) string {
		dir := b.TempDir()
		d, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < batches; i++ {
			if _, _, err := d.AddSessionsBatch(fmt.Sprintf("b%d", i), recs); err != nil {
				b.Fatal(err)
			}
		}
		if snapshot {
			if err := d.snapshotNow(); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}

	run := func(b *testing.B, dir string, wantReplayed int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
			if err != nil {
				b.Fatal(err)
			}
			if d.Recovery.ReplayedBatches != wantReplayed {
				b.Fatalf("replayed %d, want %d", d.Recovery.ReplayedBatches, wantReplayed)
			}
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batches*batch), "sessions")
	}

	b.Run("replay", func(b *testing.B) { run(b, build(b, false), batches) })
	b.Run("snapshot", func(b *testing.B) { run(b, build(b, true), 0) })
}
