package usaas

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"usersignals/internal/conference"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
)

// viewSessions generates a session dataset large enough to cross multiple
// canonical chunk boundaries, so the incremental fold's merged/tail split is
// actually exercised.
func viewSessions(t *testing.T, seed uint64, n int) []telemetry.SessionRecord {
	t.Helper()
	opts := conference.Defaults(seed, n)
	opts.SurveyRate = 0.08
	g, err := conference.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// ingestUnevenly loads records into a store through ragged batches, duplicate
// replays, and an empty batch — the shapes at-least-once delivery produces.
func ingestUnevenly(t *testing.T, s *Store, recs []telemetry.SessionRecord) {
	t.Helper()
	cuts := []int{1, 600, 2047, 2048, 2049, 4500, len(recs)}
	prev := 0
	for i, cut := range cuts {
		if cut > len(recs) {
			cut = len(recs)
		}
		if cut < prev {
			continue
		}
		id := fmt.Sprintf("uneven-%d", i)
		if _, dup, _ := s.AddSessionsBatch(id, recs[prev:cut]); dup {
			t.Fatalf("batch %s unexpectedly duplicate", id)
		}
		// Replay every batch once; the dedup layer must drop it before the
		// views fold, or every accumulator double-counts.
		if _, dup, _ := s.AddSessionsBatch(id, recs[prev:cut]); !dup {
			t.Fatalf("replay of batch %s not detected", id)
		}
		prev = cut
	}
	if _, dup, _ := s.AddSessionsBatch("uneven-empty", nil); dup {
		t.Fatal("empty batch reported duplicate")
	}
}

// marshal renders a value for exact comparison. fmt's %+v is used instead of
// JSON because empty bins legitimately carry NaN, which encoding/json
// rejects; %+v formats every float with its shortest round-trip
// representation, so equal text means equal values bit-for-bit (the HTTP
// tests below additionally compare literal response bytes).
func marshal(t *testing.T, v any) string {
	t.Helper()
	return fmt.Sprintf("%+v", v)
}

// TestViewsByteIdenticalToRecompute is the core equivalence property: every
// view-served analysis must render byte-identically to the PR-1 batch
// primitives recomputing from a snapshot, regardless of how the records were
// batched on the way in.
func TestViewsByteIdenticalToRecompute(t *testing.T) {
	for _, seed := range []uint64{5, 6, 7} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			recs := viewSessions(t, seed, 5000)
			if len(recs) <= 4096 {
				t.Fatalf("only %d records; need >2 chunk boundaries", len(recs))
			}
			store := &Store{}
			ingestUnevenly(t, store, recs)

			// Dose-response, unfiltered and ISP-filtered, at two binnings.
			for _, tc := range []struct {
				metric telemetry.Metric
				eng    telemetry.Engagement
				lo, hi float64
				bins   int
				isp    string
			}{
				{telemetry.LatencyMean, telemetry.Presence, 0, 300, 8, ""},
				{telemetry.LossMean, telemetry.CamOn, 0, 4, 10, ""},
				{telemetry.LatencyMean, telemetry.MicOn, 0, 300, 6, recs[0].ISP},
			} {
				var filter telemetry.Filter
				if tc.isp != "" {
					filter = telemetry.OnISP(tc.isp)
				}
				// DoseResponseDaily is the canonical reference: the views and
				// the cluster coordinator both replicate its per-day fold.
				want := DoseResponseDaily(recs, tc.metric, tc.eng, stats.NewBinner(tc.lo, tc.hi, tc.bins), filter)
				got := store.DoseResponseSeries(tc.metric, tc.eng, stats.NewBinner(tc.lo, tc.hi, tc.bins), tc.isp)
				if marshal(t, got) != marshal(t, want) {
					t.Errorf("DoseResponseSeries(%v,%v,isp=%q) diverges from recompute", tc.metric, tc.eng, tc.isp)
				}
				// Second read must hit the registered view and still agree.
				again := store.DoseResponseSeries(tc.metric, tc.eng, stats.NewBinner(tc.lo, tc.hi, tc.bins), tc.isp)
				if marshal(t, again) != marshal(t, want) {
					t.Errorf("registered view for (%v,%v,isp=%q) diverges", tc.metric, tc.eng, tc.isp)
				}
			}

			// Daily engagement.
			if got, want := marshal(t, store.DailyEngagementView()), marshal(t, DailyEngagement(recs, nil)); got != want {
				t.Error("DailyEngagementView diverges from DailyEngagement")
			}

			// Rated-subsequence MOS paths.
			rated, total := store.RatedSessions()
			if total != len(recs) {
				t.Fatalf("total = %d, want %d", total, len(recs))
			}
			wantMOS, err1 := MOSReport(recs, 10, nil)
			gotMOS, err2 := mosReportRated(rated, 10, nil)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("MOS errors diverge: %v vs %v", err1, err2)
			}
			if marshal(t, gotMOS) != marshal(t, wantMOS) {
				t.Error("mosReportRated over view diverges from MOSReport")
			}
			wantEval, err1 := EvaluateMOSPredictor(recs, 0.7, 1.0)
			gotEval, err2 := evaluateMOSPredictorRated(rated, total, 0.7, 1.0)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("predictor errors diverge: %v vs %v", err1, err2)
			}
			if marshal(t, gotEval) != marshal(t, wantEval) {
				t.Error("evaluateMOSPredictorRated over view diverges")
			}
		})
	}
}

// TestSpeedsViewByteIdenticalToRecompute checks the Fig. 7 path: ingest-time
// OCR extraction plus query-time assembly must reproduce MonthlySpeeds over
// the corpus exactly, including under split batches and duplicate replays.
func TestSpeedsViewByteIdenticalToRecompute(t *testing.T) {
	c, _, cfg := studyCorpus(t)
	store := &Store{}
	posts := c.Posts
	half := len(posts) / 2
	if _, dup, _ := store.AddPostsBatch("sp-1", posts[:half]); dup {
		t.Fatal("first post batch duplicate")
	}
	if _, dup, _ := store.AddPostsBatch("sp-1", posts[:half]); !dup {
		t.Fatal("post replay not detected")
	}
	if _, dup, _ := store.AddPostsBatch("sp-2", posts[half:]); dup {
		t.Fatal("second post batch duplicate")
	}

	want := MonthlySpeeds(store.Corpus(), analyzer, cfg.Model, 1)
	got, ok := store.monthlySpeedsView(analyzer, cfg.Model, 1)
	if !ok {
		t.Fatal("monthlySpeedsView reported no posts")
	}
	if marshal(t, got) != marshal(t, want) {
		t.Error("monthlySpeedsView diverges from MonthlySpeeds over corpus")
	}
}

// TestDuplicateReplayLeavesViewsUnchanged re-sends an already-acknowledged
// batch and asserts no view output moves and no generation bumps.
func TestDuplicateReplayLeavesViewsUnchanged(t *testing.T) {
	recs := viewSessions(t, 5, 5000)
	store := &Store{}
	if _, dup, _ := store.AddSessionsBatch("replay-me", recs); dup {
		t.Fatal("fresh batch reported duplicate")
	}
	b := stats.NewBinner(0, 300, 8)
	before := marshal(t, store.DoseResponseSeries(telemetry.LatencyMean, telemetry.Presence, b, ""))
	beforeDaily := marshal(t, store.DailyEngagementView())
	sg1, pg1 := store.Generations()

	resp, dup, _ := store.AddSessionsBatch("replay-me", recs)
	if !dup || !resp.Duplicate {
		t.Fatalf("replay not detected: %+v dup=%v", resp, dup)
	}
	sg2, pg2 := store.Generations()
	if sg1 != sg2 || pg1 != pg2 {
		t.Fatalf("generations moved on replay: (%d,%d) -> (%d,%d)", sg1, pg1, sg2, pg2)
	}
	if after := marshal(t, store.DoseResponseSeries(telemetry.LatencyMean, telemetry.Presence, b, "")); after != before {
		t.Error("dose-response view changed after duplicate replay")
	}
	if after := marshal(t, store.DailyEngagementView()); after != beforeDaily {
		t.Error("daily view changed after duplicate replay")
	}
	rated, total := store.RatedSessions()
	if total != len(recs) {
		t.Fatalf("total = %d after replay, want %d", total, len(recs))
	}
	for i := range rated {
		if !rated[i].Rated {
			t.Fatal("unrated record in rated view")
		}
	}
}

// TestServedResponsesIdenticalAcrossIngestShapes drives the full HTTP path:
// a server fed one big batch and a server fed ragged batches with replays
// must return byte-identical bodies, warm or cold.
func TestServedResponsesIdenticalAcrossIngestShapes(t *testing.T) {
	recs := viewSessions(t, 6, 5000)
	c, news, cfg := studyCorpus(t)

	storeA := &Store{}
	storeA.AddSessions(recs)
	storeA.AddPosts(c.Posts)
	storeB := &Store{}
	ingestUnevenly(t, storeB, recs)
	half := len(c.Posts) / 2
	storeB.AddPostsBatch("p-1", c.Posts[:half])
	storeB.AddPostsBatch("p-1", c.Posts[:half]) // replay
	storeB.AddPostsBatch("p-2", c.Posts[half:])

	opts := ServerOptions{News: news, Model: cfg.Model}
	tsA := httptest.NewServer(NewServer(storeA, opts).Handler())
	defer tsA.Close()
	tsB := httptest.NewServer(NewServer(storeB, opts).Handler())
	defer tsB.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	paths := []string{
		"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence&lo=0&hi=300&bins=8",
		"/v1/insights/mos",
		"/v1/insights/incidents?engagement=presence",
		"/v1/insights/speeds",
		"/v1/report",
	}
	for _, p := range paths {
		coldA := fetchBody(t, ctx, tsA.URL+p)
		coldB := fetchBody(t, ctx, tsB.URL+p)
		if coldA != coldB {
			t.Errorf("%s: single-batch and ragged-batch stores disagree", p)
		}
		// Warm (cached) reads must replay the identical bytes.
		if warm := fetchBody(t, ctx, tsB.URL+p); warm != coldB {
			t.Errorf("%s: warm response differs from cold", p)
		}
	}
}
