package usaas

import (
	"sync"
	"testing"
	"unsafe"

	"usersignals/internal/conference"
	"usersignals/internal/parallel"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
)

// colBenchState is the shared benchmark fixture: one generated corpus, one
// store with the live (mostly open) mirror, and one with every partition
// sealed. Built once — generation dominates otherwise.
type colBenchState struct {
	recs   []telemetry.SessionRecord
	open   *Store
	sealed *Store
}

var (
	colBenchOnce sync.Once
	colBench     colBenchState
)

func colBenchSetup(b *testing.B) *colBenchState {
	b.Helper()
	colBenchOnce.Do(func() {
		opts := conference.Defaults(77, 6000)
		opts.SurveyRate = 0.08
		g, err := conference.New(opts)
		if err != nil {
			panic(err)
		}
		recs, err := g.GenerateAll()
		if err != nil {
			panic(err)
		}
		colBench.recs = recs
		colBench.open = &Store{}
		if _, _, err := colBench.open.AddSessionsBatch("bench", recs); err != nil {
			panic(err)
		}
		colBench.sealed = &Store{}
		if _, _, err := colBench.sealed.AddSessionsBatch("bench", recs); err != nil {
			panic(err)
		}
		colBench.sealed.SealColumnar()
	})
	if _, ok := colBench.open.ColumnarSnapshot(); !ok {
		b.Fatal("bench store has no columnar mirror")
	}
	return &colBench
}

// doseResponseSwitch is the pre-accessor-hoist row sweep: Metric.Of and
// EngagementOf dispatch through their switches on every record. Kept as the
// baseline for the dispatch-hoist benchmark pair.
func doseResponseSwitch(records []telemetry.SessionRecord, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, filter telemetry.Filter, workers int) (stats.BinnedSeries, error) {
	shards, err := parallel.Map(workers, parallel.Chunks(len(records)), func(i int) (*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, len(records))
		acc := stats.NewBinAcc(b)
		for j := lo; j < hi; j++ {
			r := &records[j]
			if filter != nil && !filter(r) {
				continue
			}
			acc.Add(metric.Of(r.Net), r.EngagementOf(eng))
		}
		return acc, nil
	})
	if err != nil {
		return stats.BinnedSeries{}, err
	}
	total := stats.NewBinAcc(b)
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return stats.BinnedSeries{}, err
		}
	}
	return total.Series(), nil
}

// BenchmarkDoseResponse compares the row sweep (with and without the
// per-record switch dispatch) against the columnar sweep over open and
// sealed partitions, all under the standard Fig. 1 study filter.
func BenchmarkDoseResponse(b *testing.B) {
	st := colBenchSetup(b)
	bn := stats.NewBinner(0, 300, 8)
	spec := StudyFilterSpec(telemetry.LatencyMean)
	filter := spec.Filter()

	b.Run("row-switch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := doseResponseSwitch(st.recs, telemetry.LatencyMean, telemetry.Presence, bn, filter, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DoseResponseN(st.recs, telemetry.LatencyMean, telemetry.Presence, bn, filter, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		snap, _ := st.open.ColumnarSnapshot()
		for i := 0; i < b.N; i++ {
			if _, ok, err := DoseResponseCols(snap, telemetry.LatencyMean, telemetry.Presence, bn, &spec, 1); !ok || err != nil {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("columnar-sealed", func(b *testing.B) {
		b.ReportAllocs()
		snap, _ := st.sealed.ColumnarSnapshot()
		for i := 0; i < b.N; i++ {
			if _, ok, err := DoseResponseCols(snap, telemetry.LatencyMean, telemetry.Presence, bn, &spec, 1); !ok || err != nil {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("row-switch-unfiltered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := doseResponseSwitch(st.recs, telemetry.LatencyMean, telemetry.Presence, bn, nil, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("row-unfiltered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DoseResponseN(st.recs, telemetry.LatencyMean, telemetry.Presence, bn, nil, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar-unfiltered", func(b *testing.B) {
		b.ReportAllocs()
		snap, _ := st.sealed.ColumnarSnapshot()
		for i := 0; i < b.N; i++ {
			if _, ok, err := DoseResponseCols(snap, telemetry.LatencyMean, telemetry.Presence, bn, nil, 1); !ok || err != nil {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
}

// BenchmarkCompounding is the same comparison for the Fig. 2 grid.
func BenchmarkCompounding(b *testing.B) {
	st := colBenchSetup(b)
	xb := stats.NewBinner(0, 300, 6)
	yb := stats.NewBinner(0, 4, 6)
	spec := StudyFilterSpec(telemetry.LatencyMean)
	filter := spec.Filter()

	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := CompoundingN(st.recs, telemetry.LatencyMean, telemetry.LossMean, telemetry.CamOn, xb, yb, filter, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		snap, _ := st.open.ColumnarSnapshot()
		for i := 0; i < b.N; i++ {
			if _, ok, err := CompoundingCols(snap, telemetry.LatencyMean, telemetry.LossMean, telemetry.CamOn, xb, yb, &spec, 1); !ok || err != nil {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("columnar-sealed", func(b *testing.B) {
		b.ReportAllocs()
		snap, _ := st.sealed.ColumnarSnapshot()
		for i := 0; i < b.N; i++ {
			if _, ok, err := CompoundingCols(snap, telemetry.LatencyMean, telemetry.LossMean, telemetry.CamOn, xb, yb, &spec, 1); !ok || err != nil {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
}

// BenchmarkColumnarFold measures what the mirror costs the ingest path: the
// per-batch columnar append, isolated from parsing, dedup, and views.
func BenchmarkColumnarFold(b *testing.B) {
	st := colBenchSetup(b)
	const batch = 512
	recs := st.recs
	if len(recs) > 8*batch {
		recs = recs[:8*batch]
	}
	b.ReportAllocs()
	b.SetBytes(int64(batch) * int64(unsafe.Sizeof(telemetry.SessionRecord{})))
	s := &Store{}
	i := 0
	for n := 0; n < b.N; n++ {
		lo := i * batch
		if lo+batch > len(recs) {
			b.StopTimer()
			s = &Store{}
			i, lo = 0, 0
			b.StartTimer()
		}
		s.sessMu.Lock()
		s.sessions.append(recs[lo : lo+batch])
		s.appendColumnar(recs[lo : lo+batch])
		s.sessMu.Unlock()
		i++
	}
}

// BenchmarkColumnarMemory reports resident bytes: the row slice versus the
// mirror's open and sealed forms (b.N is irrelevant; the numbers are the
// point — see BENCH_columnar.json).
func BenchmarkColumnarMemory(b *testing.B) {
	st := colBenchSetup(b)
	rowBytes := int64(len(st.recs)) * int64(unsafe.Sizeof(telemetry.SessionRecord{}))
	for i := range st.recs {
		r := &st.recs[i]
		rowBytes += int64(len(r.Platform) + len(r.Country) + len(r.ISP))
	}
	openStats := st.open.ColumnarStats()
	sealedStats := st.sealed.ColumnarStats()
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(float64(len(st.recs)), "sessions")
	b.ReportMetric(float64(rowBytes), "row-bytes")
	b.ReportMetric(float64(openStats.OpenBytes+openStats.SealedBytes+openStats.DictBytes), "open-mirror-bytes")
	b.ReportMetric(float64(sealedStats.OpenBytes+sealedStats.SealedBytes+sealedStats.DictBytes), "sealed-mirror-bytes")
}
