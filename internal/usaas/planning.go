package usaas

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"usersignals/internal/leo"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// This file implements the §6 "traffic engineering & network planning
// opportunities": turning USaaS insights into actions. Two advisors are
// provided — a traffic-engineering advisor for the conferencing service
// ("which network metric should we spend optimization budget on?") and a
// deployment advisor for the constellation operator ("how many extra
// launches keep sentiment from sagging?").

// TERecommendation ranks one candidate network improvement by its
// predicted user-experience payoff.
type TERecommendation struct {
	Metric telemetry.Metric
	// Improvement describes the modelled intervention (e.g. "-25%").
	Improvement string
	// AffectedFrac is the fraction of sessions whose metric is bad enough
	// for the intervention to apply.
	AffectedFrac float64
	// MeanMOSLift is the mean predicted-MOS change across affected
	// sessions.
	MeanMOSLift float64
	// TotalLift = AffectedFrac * MeanMOSLift: the population-level payoff
	// used for ranking.
	TotalLift float64
}

// teIntervention describes one candidate improvement: which metric, who
// qualifies, and how the metric changes.
type teIntervention struct {
	metric    telemetry.Metric
	label     string
	qualifies func(telemetry.NetAggregates) bool
	apply     func(*telemetry.NetAggregates)
}

func defaultInterventions() []teIntervention {
	return []teIntervention{
		{
			metric: telemetry.LatencyMean, label: "-25% latency",
			qualifies: func(a telemetry.NetAggregates) bool { return a.LatencyMean > 60 },
			apply:     func(a *telemetry.NetAggregates) { a.LatencyMean *= 0.75 },
		},
		{
			metric: telemetry.LossMean, label: "-50% loss",
			qualifies: func(a telemetry.NetAggregates) bool { return a.LossMean > 0.5 },
			apply:     func(a *telemetry.NetAggregates) { a.LossMean *= 0.5 },
		},
		{
			metric: telemetry.JitterMean, label: "-30% jitter",
			qualifies: func(a telemetry.NetAggregates) bool { return a.JitterMean > 5 },
			apply:     func(a *telemetry.NetAggregates) { a.JitterMean *= 0.7 },
		},
		{
			metric: telemetry.BandwidthMean, label: "+25% bandwidth",
			qualifies: func(a telemetry.NetAggregates) bool { return a.BWMean < 2 },
			apply:     func(a *telemetry.NetAggregates) { a.BWMean *= 1.25 },
		},
	}
}

// TEDayPartial carries one calendar day's traffic-engineering accumulation
// under a fixed (shipped) predictor: per candidate intervention, how many of
// the day's sessions qualify and their summed predicted-MOS lift, both
// accumulated in arrival order. Slots are indexed by defaultInterventions
// order. Days are the cluster partition unit, so shard partials are exact
// and assembleTE's ascending-day fold matches the single-store answer.
type TEDayPartial struct {
	Day      timeline.Day `json:"day"`
	Sessions int          `json:"sessions"`
	Affected []int        `json:"affected"`
	Lift     []float64    `json:"lift"`
}

// teDayPartials folds the row snapshot into per-day TE partials with the
// given predictor. Returned partials are sorted ascending by day.
func teDayPartials(p *MOSPredictor, rows Rows) []TEDayPartial {
	ivs := defaultInterventions()
	type dayTE struct {
		sessions int
		affected []int
		lift     []float64
	}
	days := map[timeline.Day]*dayTE{}
	rows.Each(0, rows.Len(), func(rec *telemetry.SessionRecord) {
		d := timeline.DayOf(rec.Start)
		dt := days[d]
		if dt == nil {
			dt = &dayTE{affected: make([]int, len(ivs)), lift: make([]float64, len(ivs))}
			days[d] = dt
		}
		dt.sessions++
		for k := range ivs {
			r := *rec // copy; we mutate the aggregates
			if !ivs[k].qualifies(r.Net) {
				continue
			}
			dt.affected[k]++
			before := p.Predict(&r)
			ivs[k].apply(&r.Net)
			dt.lift[k] += p.Predict(&r) - before
		}
	})
	keys := make([]timeline.Day, 0, len(days))
	for d := range days {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]TEDayPartial, 0, len(keys))
	for _, d := range keys {
		dt := days[d]
		out = append(out, TEDayPartial{Day: d, Sessions: dt.sessions, Affected: dt.affected, Lift: dt.lift})
	}
	return out
}

// assembleTE folds TE day partials (from one store or many shards) into the
// ranked recommendations: lift sums fold strictly ascending by day, and the
// affected fraction divides by the total session count.
func assembleTE(total int, parts []TEDayPartial) []TERecommendation {
	ivs := defaultInterventions()
	sort.Slice(parts, func(i, j int) bool { return parts[i].Day < parts[j].Day })
	affected := make([]int, len(ivs))
	lift := make([]float64, len(ivs))
	for i := range parts {
		for k := 0; k < len(ivs) && k < len(parts[i].Affected); k++ {
			affected[k] += parts[i].Affected[k]
		}
		for k := 0; k < len(ivs) && k < len(parts[i].Lift); k++ {
			lift[k] += parts[i].Lift[k]
		}
	}
	var out []TERecommendation
	for k, iv := range ivs {
		rec := TERecommendation{Metric: iv.metric, Improvement: iv.label}
		if affected[k] > 0 && total > 0 {
			rec.AffectedFrac = float64(affected[k]) / float64(total)
			rec.MeanMOSLift = lift[k] / float64(affected[k])
			rec.TotalLift = rec.AffectedFrac * rec.MeanMOSLift
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalLift > out[j].TotalLift })
	return out
}

// AdviseTrafficEngineering ranks the default interventions by their
// predicted MOS payoff over the given sessions, using a predictor trained
// on the rated subset (in canonical day-major order). It answers §6's "if
// call latency is the discerning factor, could resource allocation be
// tuned?" with a number per metric. The computation is the day-partitioned
// fold assembleTE describes — the same one the cluster coordinator runs
// over shard partials under a single shipped model.
func AdviseTrafficEngineering(records []telemetry.SessionRecord) ([]TERecommendation, error) {
	if len(records) == 0 {
		return nil, errors.New("usaas: no sessions to advise on")
	}
	p, err := TrainMOSPredictor(ratedOnly(records), 1.0)
	if err != nil {
		return nil, fmt.Errorf("usaas: traffic-engineering advisor: %w", err)
	}
	var rs rowStore
	rs.append(records)
	return assembleTE(len(records), teDayPartials(p, rs.snapshot())), nil
}

// DeploymentScenario is one candidate launch plan evaluated by the
// deployment advisor.
type DeploymentScenario struct {
	ExtraLaunches int
	// ProjectedSpeed is the median downlink at the horizon.
	ProjectedSpeed float64
	// ProjectedPos is the modelled strong-positive sentiment share at the
	// horizon, accounting for conditioning (users judge against their
	// expectation, so launches pay off in sentiment only while speeds are
	// above the conditioned baseline).
	ProjectedPos float64
}

// DeploymentAdvice is the advisor's output.
type DeploymentAdvice struct {
	Horizon   timeline.Day
	Scenarios []DeploymentScenario
	// LaunchesForTarget is the smallest evaluated extra-launch count whose
	// projected Pos meets the target, or -1 if none does.
	LaunchesForTarget int
}

// Sentiment projection constants: mirror the community-mood model of the
// social generator (documented there); the advisor must use the same
// calculus the users do.
const (
	planLevelWeight = 0.5
	planCondGain    = 8.0
	planAnchorMbps  = 75
	planEWMAAlpha   = 0.02
)

// AdviseDeployment evaluates launch plans: starting from `from`, it
// projects median speeds to `horizon` for 0..maxExtra extra launches
// (satsPerLaunch each, spread evenly over the interval) and reports the
// projected sentiment for each, plus the cheapest plan meeting posTarget.
func AdviseDeployment(model *leo.Model, from, horizon timeline.Day, maxExtra, satsPerLaunch int, posTarget float64) (DeploymentAdvice, error) {
	if model == nil {
		return DeploymentAdvice{}, errors.New("usaas: nil constellation model")
	}
	if horizon <= from {
		return DeploymentAdvice{}, fmt.Errorf("usaas: horizon %v not after start %v", horizon, from)
	}
	if maxExtra < 0 {
		maxExtra = 0
	}
	if satsPerLaunch <= 0 {
		satsPerLaunch = 50
	}
	advice := DeploymentAdvice{Horizon: horizon, LaunchesForTarget: -1}
	span := int(horizon - from)
	for extra := 0; extra <= maxExtra; extra++ {
		launches := make([]leo.Launch, extra)
		for i := range launches {
			day := from + timeline.Day((i+1)*span/(extra+1))
			launches[i] = leo.Launch{Day: day, Sats: satsPerLaunch}
		}
		scenario := model.WithExtraLaunches(launches)

		// Project the conditioned expectation forward and read sentiment
		// at the horizon.
		expectation := scenario.MedianDownMbps(from)
		var speed float64
		for d := from; d <= horizon; d++ {
			speed = scenario.MedianDownMbps(d)
			expectation = planEWMAAlpha*speed + (1-planEWMAAlpha)*expectation
		}
		tilt := planLevelWeight*(speed/planAnchorMbps-1) + planCondGain*(speed/math.Max(1, expectation)-1)
		pos := 1 / (1 + math.Exp(-3*tilt))
		sc := DeploymentScenario{ExtraLaunches: extra, ProjectedSpeed: speed, ProjectedPos: pos}
		advice.Scenarios = append(advice.Scenarios, sc)
		if advice.LaunchesForTarget < 0 && pos >= posTarget {
			advice.LaunchesForTarget = extra
		}
	}
	return advice, nil
}

// LiftCurve summarizes the marginal value of each additional launch in an
// advice: diffs of projected speed.
func (a DeploymentAdvice) LiftCurve() []float64 {
	if len(a.Scenarios) < 2 {
		return nil
	}
	out := make([]float64, len(a.Scenarios)-1)
	for i := 1; i < len(a.Scenarios); i++ {
		out[i-1] = a.Scenarios[i].ProjectedSpeed - a.Scenarios[i-1].ProjectedSpeed
	}
	return out
}
