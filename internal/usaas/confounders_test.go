package usaas

import (
	"math"
	"testing"

	"usersignals/internal/netsim"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
)

func TestByMeetingSize(t *testing.T) {
	recs := sweepDataset(t, "latency", 500, func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
	})
	b := stats.NewBinner(0, 300, 5)
	strata, err := ByMeetingSize(recs, telemetry.LatencyMean, telemetry.MicOn, b, nil, cohortOnly())
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) < 2 {
		t.Fatalf("only %d size strata populated", len(strata))
	}
	// Mic On baseline is lower in larger meetings (listeners mute): the
	// §6 confounder the agent model encodes.
	small, okS := strata["small-3-5"]
	large, okL := strata["large-11+"]
	if !okS || !okL {
		t.Fatalf("expected small and large strata, got %v", keysOf(strata))
	}
	sm := small.NonEmpty()
	lg := large.NonEmpty()
	if len(sm.Y) == 0 || len(lg.Y) == 0 {
		t.Fatal("empty strata series")
	}
	if stats.Mean(lg.Y) >= stats.Mean(sm.Y) {
		t.Fatalf("large meetings should show lower mic-on: %v vs %v", stats.Mean(lg.Y), stats.Mean(sm.Y))
	}
}

func keysOf(m map[string]stats.BinnedSeries) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestConfounderReport(t *testing.T) {
	recs := mixDataset(t)
	effects, err := ConfounderReport(recs, telemetry.CamOn)
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 2 {
		t.Fatalf("effects = %d", len(effects))
	}
	var platform, size *ConfounderEffect
	for i := range effects {
		switch effects[i].Confounder {
		case "platform":
			platform = &effects[i]
		case "meeting-size":
			size = &effects[i]
		}
	}
	if platform == nil || size == nil {
		t.Fatal("missing confounder entries")
	}
	// Platform moves camera use substantially even at perfect network
	// conditions (mobile baseline ~half of desktop).
	if platform.Spread < 0.15 {
		t.Fatalf("platform spread %v; expected a strong platform effect", platform.Spread)
	}
	if len(platform.Levels) < 4 {
		t.Fatalf("platform levels = %v", platform.Levels)
	}
	// Camera baselines don't depend on meeting size in the agent model,
	// so the size effect on CamOn should be weaker than the platform one
	// — the paper's "relatively weaker impact" phrasing.
	if !math.IsNaN(size.Spread) && size.Spread > platform.Spread {
		t.Fatalf("size spread %v exceeds platform spread %v on CamOn", size.Spread, platform.Spread)
	}
}

func TestConfounderReportMicOnSize(t *testing.T) {
	recs := mixDataset(t)
	effects, err := ConfounderReport(recs, telemetry.MicOn)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range effects {
		if e.Confounder == "meeting-size" {
			// Mic On *is* strongly size-dependent (listeners mute).
			if e.Spread < 0.2 {
				t.Fatalf("meeting-size spread on MicOn = %v; expected strong", e.Spread)
			}
			return
		}
	}
	t.Fatal("meeting-size effect missing")
}

func TestConfounderReportNeedsData(t *testing.T) {
	if _, err := ConfounderReport(nil, telemetry.CamOn); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPlatformStratification(t *testing.T) {
	recs := sweepDataset(t, "platforms", 700, func(s *netsim.Sweep) {
		s.LossPct = [2]float64{0, 4}
	})
	b := stats.NewBinner(0, 4, 4)
	check, err := CheckPlatformStratification(recs, telemetry.LossMean, telemetry.Presence, b, cohortOnly())
	if err != nil {
		t.Fatal(err)
	}
	if len(check.Strata) < 4 {
		t.Fatalf("strata = %v", check.Strata)
	}
	// Every platform individually shows presence falling with loss.
	for name, slope := range check.Strata {
		if slope >= 0 {
			t.Fatalf("platform %s slope %v; expected negative", name, slope)
		}
	}
	if math.IsNaN(check.PooledSlope) || check.PooledSlope >= 0 {
		t.Fatalf("pooled slope %v", check.PooledSlope)
	}
	// In the sweep design, platform assignment is independent of network
	// conditions, so pooling is unbiased: the bias term should be small
	// relative to the slope itself.
	if math.Abs(check.Bias) > math.Abs(check.MeanStratumSlope) {
		t.Fatalf("bias %v too large vs mean stratum slope %v", check.Bias, check.MeanStratumSlope)
	}
}

func TestAllControlBandsFilter(t *testing.T) {
	f := telemetry.AllControlBands()
	good := telemetry.SessionRecord{Net: telemetry.NetAggregates{
		LatencyMean: 20, LossMean: 0.1, JitterMean: 2, BWMean: 3.5,
	}}
	if !f(&good) {
		t.Fatal("in-band record rejected")
	}
	bad := good
	bad.Net.LatencyMean = 100
	if f(&bad) {
		t.Fatal("out-of-band latency accepted")
	}
}
