package usaas

import (
	"fmt"
	"sort"
	"strings"

	"usersignals/internal/leo"
	"usersignals/internal/newswire"
	"usersignals/internal/nlp"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// This file is the cluster's partial-state wire format: every analysis the
// service serves is decomposed into per-calendar-day (or per-month)
// mergeable accumulator state, exported by each shard over GET /v1/partials
// and POST /v1/partials/model, and folded back together by the coordinator
// (internal/cluster). Days are the partition unit — a day's sessions and
// posts live wholly on one shard — so no float is ever summed across
// shards: the coordinator concatenates disjoint day rows and folds them
// strictly ascending by day, exactly the computation a single store runs
// over the same records. That is what makes an N-shard answer byte-identical
// to a single node's.
//
// Two-phase queries: analyses that apply a trained model to every session
// (traffic engineering, per-ISP predicted MOS) cannot be merged from
// independent per-shard models (Predict clamps to [1, 5]; ridge fits are
// not mergeable). The coordinator therefore first gathers the day-major
// rated subsequence, trains the one canonical model itself, and ships its
// coefficients to every shard via POST /v1/partials/model; shards answer
// with per-day partials computed under that exact model.

// Partial-section names accepted by GET /v1/partials.
const (
	SectionSessions    = "sessions"    // session count + day-major rated subsequence
	SectionDaily       = "daily"       // per-day engagement rows (incidents)
	SectionDose        = "dose"        // one parameterized dose-response view
	SectionDrops       = "drops"       // the report's four engagement-drop views
	SectionConfounders = "confounders" // per-day confounder accumulators
	SectionSocial      = "social"      // sweep day rows, term weights, clouds
	SectionSpeeds      = "speeds"      // per-month extracted speed observations
	SectionExperience  = "experience"  // per-day per-ISP engagement + social counts
)

// Model-phase section names accepted by POST /v1/partials/model.
const (
	ModelSectionTE         = "te"         // per-day traffic-engineering partials
	ModelSectionExperience = "experience" // per-day predicted-MOS accumulators
)

// DoseDayPartial is one calendar day's dose-response accumulator state.
type DoseDayPartial struct {
	Day  timeline.Day      `json:"day"`
	Bins stats.BinAccState `json:"bins"`
}

// DayCloud is one day's top word-cloud unigrams, shipped so the coordinator
// can annotate sentiment peaks without the posts: each day's posts live
// wholly on one shard, so the shipped cloud is the one the global corpus
// would yield.
type DayCloud struct {
	Day   timeline.Day    `json:"day"`
	Words []nlp.WordCount `json:"words"`
}

// DayWeight is one day's popularity-weighted volume for a mined term.
type DayWeight struct {
	Day    timeline.Day `json:"day"`
	Weight float64      `json:"weight"`
}

// TermPartial is one mined term's accumulated state. Each (term, day)
// weight is accumulated wholly on one shard, so coordinator merging unions
// day rows and int-sums the counts — no float crosses shards.
type TermPartial struct {
	Term  string      `json:"term"`
	Days  []DayWeight `json:"days"`
	Pos   int         `json:"pos"`
	Total int         `json:"total"`
}

// SpeedMonthPartial is one month's OCR-extracted speed observations
// (parallel arrays, sorted by (day, id) — corpus order) plus the
// strong-sentiment counts of the posts that carried them.
type SpeedMonthPartial struct {
	Month     timeline.Month `json:"month"`
	Days      []timeline.Day `json:"days,omitempty"`
	IDs       []uint64       `json:"ids,omitempty"`
	Downs     []float64      `json:"downs,omitempty"`
	StrongPos int            `json:"strong_pos,omitempty"`
	StrongNeg int            `json:"strong_neg,omitempty"`
}

// ExperienceDayPartial is one calendar day's per-ISP engagement state:
// Welford accumulators for the engagement means plus exact integer rating
// sums (MOS is an integer mean, so it ships losslessly).
type ExperienceDayPartial struct {
	Day       timeline.Day      `json:"day"`
	Pres      stats.OnlineState `json:"pres"`
	Cam       stats.OnlineState `json:"cam"`
	Mic       stats.OnlineState `json:"mic"`
	RatingSum int               `json:"rating_sum,omitempty"`
	RatingN   int               `json:"rating_n,omitempty"`
}

// DayOnlinePartial is one day's generic Welford accumulator state (used for
// per-day predicted-MOS accumulation under a shipped model).
type DayOnlinePartial struct {
	Day timeline.Day      `json:"day"`
	Acc stats.OnlineState `json:"acc"`
}

// ExperiencePartial is one shard's contribution to a per-ISP experience
// query: per-day engagement accumulators plus whole-corpus social counts
// (exact integers, order-free).
type ExperiencePartial struct {
	Sessions       int                    `json:"sessions"`
	Days           []ExperienceDayPartial `json:"days,omitempty"`
	SocialPos      int                    `json:"social_pos,omitempty"`
	SocialNeg      int                    `json:"social_neg,omitempty"`
	OutageMentions int                    `json:"outage_mentions,omitempty"`
}

// ShardPartials is the GET /v1/partials response: the union of every
// requested section's mergeable state. Absent sections stay zero.
type ShardPartials struct {
	Sessions int `json:"sessions"`

	Rated       []telemetry.SessionRecord `json:"rated,omitempty"`
	Daily       []DayEngagement           `json:"daily,omitempty"`
	Dose        []DoseDayPartial          `json:"dose,omitempty"`
	Drops       [][]DoseDayPartial        `json:"drops,omitempty"`
	Confounders []ConfounderDayPartial    `json:"confounders,omitempty"`

	HavePosts  bool                `json:"have_posts,omitempty"`
	Posts      int                 `json:"posts,omitempty"`
	WindowFrom timeline.Day        `json:"window_from,omitempty"`
	WindowTo   timeline.Day        `json:"window_to,omitempty"`
	Sentiment  []DaySentiment      `json:"sentiment,omitempty"`
	Keywords   []DayKeywords       `json:"keywords,omitempty"`
	Clouds     []DayCloud          `json:"clouds,omitempty"`
	Terms      []TermPartial       `json:"terms,omitempty"`
	Speeds     []SpeedMonthPartial `json:"speeds,omitempty"`

	Experience *ExperiencePartial `json:"experience,omitempty"`
}

// ModelPartialsRequest is the POST /v1/partials/model body: the
// coordinator-trained model plus which model-phase sections to compute.
type ModelPartialsRequest struct {
	Model    stats.LinearModel `json:"model"`
	ISP      string            `json:"isp,omitempty"`
	Sections []string          `json:"sections"`
}

// ModelPartials is the POST /v1/partials/model response.
type ModelPartials struct {
	Sessions  int                `json:"sessions"`
	TE        []TEDayPartial     `json:"te,omitempty"`
	Predicted []DayOnlinePartial `json:"predicted,omitempty"`
}

// --- shard-side collectors ---

// dosePartialsFromView snapshots a dose view's per-day accumulators, sorted
// ascending. Called under sessMu via doseView.
func dosePartialsFromView(v *engView) []DoseDayPartial {
	keys := make([]timeline.Day, 0, len(v.days))
	for d := range v.days {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]DoseDayPartial, 0, len(keys))
	for _, d := range keys {
		out = append(out, DoseDayPartial{Day: d, Bins: v.days[d].State()})
	}
	return out
}

// DosePartials exports the per-day dose-response accumulator state for one
// parameterization, registering the view on first use.
func (s *Store) DosePartials(metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, isp string) []DoseDayPartial {
	var out []DoseDayPartial
	s.doseView(engViewKey{metric: metric, eng: eng, b: b, isp: isp}, func(v *engView) {
		out = dosePartialsFromView(v)
	})
	return out
}

// dropPartials exports the report's four engagement-drop views, indexed by
// reportDropRanges order.
func (s *Store) dropPartials() [][]DoseDayPartial {
	out := make([][]DoseDayPartial, len(reportDropRanges))
	for i, rr := range reportDropRanges {
		out[i] = s.DosePartials(rr.metric, telemetry.Presence, stats.NewBinner(rr.lo, rr.hi, 8), "")
	}
	return out
}

// sweepPartials runs the fused sweep accumulation and exports its products
// in wire form: day rows that carry data (the coordinator zero-fills the
// rest of the global window), per-day word clouds for days with posts, and
// the term-weight union.
func sweepPartials(c *social.Corpus, an *nlp.Analyzer, dict *nlp.Dictionary) (sent []DaySentiment, kw []DayKeywords, clouds []DayCloud, termsOut []TermPartial) {
	topts := TrendOptions{}
	sentAll, kwAll, terms := sweepAccumulate(c, an, SweepOptions{
		Sentiment: true, Dict: dict, Gate: true, Trends: &topts,
	})
	for _, ds := range sentAll {
		if ds.Posts > 0 {
			sent = append(sent, ds)
			clouds = append(clouds, DayCloud{Day: ds.Day, Words: dayWordCloud(c, ds.Day, 12)})
		}
	}
	for _, dk := range kwAll {
		if dk.Count > 0 {
			kw = append(kw, dk)
		}
	}
	names := make([]string, 0, len(terms))
	for term := range terms {
		names = append(names, term)
	}
	sort.Strings(names)
	for _, term := range names {
		td := terms[term]
		tp := TermPartial{Term: term, Pos: td.pos, Total: td.total}
		days := make([]timeline.Day, 0, len(td.weight))
		for d := range td.weight {
			days = append(days, d)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		for _, d := range days {
			tp.Days = append(tp.Days, DayWeight{Day: d, Weight: td.weight[d]})
		}
		termsOut = append(termsOut, tp)
	}
	return sent, kw, clouds, termsOut
}

// speedPartials exports the per-month speed observations in corpus order
// with their strong-sentiment counts. Returns nil when no posts exist.
func (s *Store) speedPartials(an *nlp.Analyzer) []SpeedMonthPartial {
	mo, ok := s.speedObsByMonth()
	if !ok {
		return nil
	}
	months := make([]timeline.Month, 0, len(mo.months))
	for m := range mo.months {
		months = append(months, m)
	}
	sort.Slice(months, func(i, j int) bool { return months[i] < months[j] })
	out := make([]SpeedMonthPartial, 0, len(months))
	for _, m := range months {
		obs := mo.months[m]
		if len(obs) == 0 {
			continue
		}
		_, pos, neg := scoreMonthObs(an, mo.posts, obs)
		sp := SpeedMonthPartial{Month: m, StrongPos: pos, StrongNeg: neg}
		for _, ob := range obs {
			sp.Days = append(sp.Days, ob.day)
			sp.IDs = append(sp.IDs, ob.id)
			sp.Downs = append(sp.Downs, ob.down)
		}
		out = append(out, sp)
	}
	return out
}

// experienceDayPartials folds the rows with the given ISP into per-day
// engagement accumulators (arrival order within each day), sorted ascending.
func experienceDayPartials(rows Rows, isp string) (int, []ExperienceDayPartial) {
	type dayExp struct {
		pres, cam, mic stats.Online
		ratingSum      int
		ratingN        int
	}
	days := map[timeline.Day]*dayExp{}
	sessions := 0
	rows.Each(0, rows.Len(), func(r *telemetry.SessionRecord) {
		if r.ISP != isp {
			return
		}
		sessions++
		d := timeline.DayOf(r.Start)
		de := days[d]
		if de == nil {
			de = &dayExp{}
			days[d] = de
		}
		de.pres.Add(r.PresencePct)
		de.cam.Add(r.CamOnPct)
		de.mic.Add(r.MicOnPct)
		if r.Rated {
			de.ratingSum += r.Rating
			de.ratingN++
		}
	})
	keys := make([]timeline.Day, 0, len(days))
	for d := range days {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]ExperienceDayPartial, 0, len(keys))
	for _, d := range keys {
		de := days[d]
		out = append(out, ExperienceDayPartial{
			Day: d, Pres: de.pres.State(), Cam: de.cam.State(), Mic: de.mic.State(),
			RatingSum: de.ratingSum, RatingN: de.ratingN,
		})
	}
	return sessions, out
}

// experienceSocial scans a corpus for the experience query's social counts:
// strong-sentiment balance and negative-gated outage mentions. All integers,
// so shard sums are exact.
func experienceSocial(c *social.Corpus, an *nlp.Analyzer, dict *nlp.Dictionary) (pos, neg, outage int) {
	tc := c.Tokens()
	scorer := an.CompileScorer(tc.Interner())
	matcher := dict.CompileMatcher(tc.Interner())
	for i := range c.Posts {
		sc := scorer.Score(tc.Text(i))
		if sc.StrongPositive() {
			pos++
		}
		if sc.StrongNegative() {
			neg++
		}
		if sc.Negative > sc.Positive && matcher.Matches(tc.Thread(i)) {
			outage++
		}
	}
	return pos, neg, outage
}

// experiencePartial builds one shard's experience contribution.
func (s *Server) experiencePartial(isp string) *ExperiencePartial {
	sessions, days := experienceDayPartials(s.store.Rows(), isp)
	p := &ExperiencePartial{Sessions: sessions, Days: days}
	if c := s.store.Corpus(); c != nil {
		p.SocialPos, p.SocialNeg, p.OutageMentions = experienceSocial(c, s.opts.Analyzer, s.opts.OutageDict)
	}
	return p
}

// predictedDayPartials folds per-day Welford accumulators of the shipped
// model's predictions over the ISP's sessions (arrival order within a day),
// sorted ascending.
func predictedDayPartials(p *MOSPredictor, rows Rows, isp string) []DayOnlinePartial {
	days := map[timeline.Day]*stats.Online{}
	rows.Each(0, rows.Len(), func(r *telemetry.SessionRecord) {
		if isp != "" && r.ISP != isp {
			return
		}
		d := timeline.DayOf(r.Start)
		acc := days[d]
		if acc == nil {
			acc = &stats.Online{}
			days[d] = acc
		}
		acc.Add(p.Predict(r))
	})
	keys := make([]timeline.Day, 0, len(days))
	for d := range days {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]DayOnlinePartial, 0, len(keys))
	for _, d := range keys {
		out = append(out, DayOnlinePartial{Day: d, Acc: days[d].State()})
	}
	return out
}

// CollectPartials builds the GET /v1/partials response for the requested
// sections. Returns an error for unknown sections or missing parameters —
// version skew between coordinator and shard must be loud, not silent.
func (s *Server) CollectPartials(sections []string, doseKey *engViewKey, confEng telemetry.Engagement, isp string) (*ShardPartials, error) {
	out := &ShardPartials{}
	_, out.Sessions = s.store.RatedSessions()
	for _, section := range sections {
		switch section {
		case SectionSessions:
			out.Rated, out.Sessions = s.store.RatedSessions()
		case SectionDaily:
			out.Daily = s.store.DailyEngagementView()
		case SectionDose:
			if doseKey == nil {
				return nil, fmt.Errorf("section %q requires metric/engagement/bin parameters", SectionDose)
			}
			out.Dose = s.store.DosePartials(doseKey.metric, doseKey.eng, doseKey.b, doseKey.isp)
		case SectionDrops:
			out.Drops = s.store.dropPartials()
		case SectionConfounders:
			out.Confounders = confounderDayPartials(s.store.Rows(), confEng)
		case SectionSocial:
			if c := s.store.Corpus(); c != nil {
				out.HavePosts = true
				out.Posts = c.Len()
				out.WindowFrom, out.WindowTo = c.Window.From, c.Window.To
				out.Sentiment, out.Keywords, out.Clouds, out.Terms = sweepPartials(c, s.opts.Analyzer, s.opts.OutageDict)
			}
		case SectionSpeeds:
			if c := s.store.Corpus(); c != nil {
				out.HavePosts = true
				out.Posts = c.Len()
				out.WindowFrom, out.WindowTo = c.Window.From, c.Window.To
			}
			out.Speeds = s.store.speedPartials(s.opts.Analyzer)
		case SectionExperience:
			if isp == "" {
				return nil, fmt.Errorf("section %q requires the isp parameter", SectionExperience)
			}
			out.Experience = s.experiencePartial(isp)
		default:
			return nil, fmt.Errorf("unknown partials section %q", section)
		}
	}
	return out, nil
}

// CollectModelPartials builds the POST /v1/partials/model response: per-day
// partials computed under the shipped model.
func (s *Server) CollectModelPartials(req ModelPartialsRequest) (*ModelPartials, error) {
	model := req.Model
	p := NewMOSPredictorFromModel(&model)
	rows := s.store.Rows()
	out := &ModelPartials{Sessions: rows.Len()}
	for _, section := range req.Sections {
		switch section {
		case ModelSectionTE:
			out.TE = teDayPartials(p, rows)
		case ModelSectionExperience:
			out.Predicted = predictedDayPartials(p, rows, req.ISP)
		default:
			return nil, fmt.Errorf("unknown model-partials section %q", section)
		}
	}
	return out, nil
}

// --- coordinator-side merge/assemble ---

// MergeRated merges shards' day-major rated subsequences into the global
// day-major order. Shards hold disjoint day sets, so a stable day sort of
// the concatenation reproduces a single store's subsequence exactly.
func MergeRated(parts [][]telemetry.SessionRecord) []telemetry.SessionRecord {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	merged := make([]telemetry.SessionRecord, 0, n)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	sortRatedDayMajor(merged)
	return merged
}

// MergeDaily merges shards' per-day engagement rows (disjoint day sets)
// into the global ascending series.
func MergeDaily(parts [][]DayEngagement) []DayEngagement {
	var merged []DayEngagement
	for _, p := range parts {
		merged = append(merged, p...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Day < merged[j].Day })
	return merged
}

// MergeDosePartials folds shards' per-day dose accumulators into the final
// series: day states union (each day lives on one shard), then fold
// strictly ascending — the DoseResponseDaily computation.
func MergeDosePartials(b stats.Binner, parts [][]DoseDayPartial) (stats.BinnedSeries, error) {
	days := dayBins{}
	for _, part := range parts {
		for _, dp := range part {
			acc, err := stats.BinAccFromState(dp.Bins)
			if err != nil {
				return stats.BinnedSeries{}, fmt.Errorf("usaas: dose partial day %v: %w", dp.Day, err)
			}
			if prev := days[dp.Day]; prev != nil {
				// A day shared across shards means the partition map was
				// violated; merging keeps the fold well-defined anyway.
				if err := prev.Merge(acc); err != nil {
					return stats.BinnedSeries{}, fmt.Errorf("usaas: dose partial day %v: %w", dp.Day, err)
				}
			} else {
				days[dp.Day] = acc
			}
		}
	}
	return foldDayBins(b, days).Series(), nil
}

// MergeConfounders assembles the confounder report from shards' day
// partials (assembleConfounders' canonical ascending fold).
func MergeConfounders(parts [][]ConfounderDayPartial) ([]ConfounderEffect, error) {
	var merged []ConfounderDayPartial
	for _, p := range parts {
		merged = append(merged, p...)
	}
	return assembleConfounders(merged)
}

// MergeTE assembles the traffic-engineering recommendations from shards'
// model-phase day partials; total is the cluster-wide session count.
func MergeTE(total int, parts [][]TEDayPartial) []TERecommendation {
	var merged []TEDayPartial
	for _, p := range parts {
		merged = append(merged, p...)
	}
	return assembleTE(total, merged)
}

// SocialWindow computes the global corpus window across shard bundles.
// ok is false when no shard has posts.
func SocialWindow(bundles []*ShardPartials) (timeline.Range, bool) {
	var w timeline.Range
	have := false
	for _, b := range bundles {
		if b == nil || !b.HavePosts {
			continue
		}
		if !have {
			w = timeline.Range{From: b.WindowFrom, To: b.WindowTo}
			have = true
			continue
		}
		if b.WindowFrom < w.From {
			w.From = b.WindowFrom
		}
		if b.WindowTo > w.To {
			w.To = b.WindowTo
		}
	}
	return w, have
}

// MergeSentiment reconstructs the global daily sentiment series: shipped
// day rows (disjoint across shards) placed over the window, zero rows
// elsewhere — exactly the series a single corpus sweep produces.
func MergeSentiment(window timeline.Range, parts [][]DaySentiment) []DaySentiment {
	rows := map[timeline.Day]DaySentiment{}
	for _, p := range parts {
		for _, ds := range p {
			rows[ds.Day] = ds
		}
	}
	days := window.Len()
	out := make([]DaySentiment, 0, days)
	for i := 0; i < days; i++ {
		d := window.From + timeline.Day(i)
		if ds, ok := rows[d]; ok {
			out = append(out, ds)
		} else {
			out = append(out, DaySentiment{Day: d})
		}
	}
	return out
}

// MergeKeywords reconstructs the global outage-keyword series (see
// MergeSentiment).
func MergeKeywords(window timeline.Range, parts [][]DayKeywords) []DayKeywords {
	rows := map[timeline.Day]DayKeywords{}
	for _, p := range parts {
		for _, dk := range p {
			rows[dk.Day] = dk
		}
	}
	days := window.Len()
	out := make([]DayKeywords, 0, days)
	for i := 0; i < days; i++ {
		d := window.From + timeline.Day(i)
		if dk, ok := rows[d]; ok {
			out = append(out, dk)
		} else {
			out = append(out, DayKeywords{Day: d})
		}
	}
	return out
}

// MergeTerms unions shards' term partials back into the sweep's accumulator
// form. Day weights never collide across shards (each day's posts live on
// one shard), so addition here only reassembles disjoint day rows.
func mergeTerms(parts [][]TermPartial) map[string]*termDay {
	terms := map[string]*termDay{}
	for _, part := range parts {
		for _, tp := range part {
			td := terms[tp.Term]
			if td == nil {
				td = &termDay{weight: map[timeline.Day]float64{}}
				terms[tp.Term] = td
			}
			for _, dw := range tp.Days {
				td.weight[dw.Day] += dw.Weight
			}
			td.pos += tp.Pos
			td.total += tp.Total
		}
	}
	return terms
}

// MergeTrends runs the trend surge scan over the union of shards' term
// accumulations, exactly as a single corpus sweep would over the global
// window.
func MergeTrends(window timeline.Range, parts [][]TermPartial, opts TrendOptions) []Trend {
	return scanTrends(window, mergeTerms(parts), opts.withDefaults())
}

// MergeClouds indexes shards' shipped word clouds by day for peak
// annotation.
func MergeClouds(parts [][]DayCloud) map[timeline.Day][]nlp.WordCount {
	out := map[timeline.Day][]nlp.WordCount{}
	for _, p := range parts {
		for _, dc := range p {
			out[dc.Day] = dc.Words
		}
	}
	return out
}

// MergePeaks annotates the top-k sentiment peaks of the merged daily series
// using shipped word clouds instead of a local corpus.
func MergePeaks(daily []DaySentiment, clouds map[timeline.Day][]nlp.WordCount, news *newswire.Index, k int) []AnnotatedPeak {
	return annotatePeaksWith(daily, news, k, func(d timeline.Day) []nlp.WordCount {
		return clouds[d]
	})
}

// MergeSpeeds assembles the monthly speed series from shards' per-month
// observations: per month, observations re-interleave into corpus order
// ((day, id) sort over disjoint shard contributions), strong counts
// int-sum, and assembleMonthSpeeds runs its single subsample-RNG stream
// over the global window's months.
func MergeSpeeds(window timeline.Range, parts [][]SpeedMonthPartial, model *leo.Model, seed uint64) []MonthSpeed {
	type obs struct {
		day  timeline.Day
		id   uint64
		down float64
	}
	byMonth := map[timeline.Month][]obs{}
	strong := map[timeline.Month][2]int{}
	for _, part := range parts {
		for _, sp := range part {
			for i := range sp.Downs {
				var d timeline.Day
				var id uint64
				if i < len(sp.Days) {
					d = sp.Days[i]
				}
				if i < len(sp.IDs) {
					id = sp.IDs[i]
				}
				byMonth[sp.Month] = append(byMonth[sp.Month], obs{day: d, id: id, down: sp.Downs[i]})
			}
			cnt := strong[sp.Month]
			cnt[0] += sp.StrongPos
			cnt[1] += sp.StrongNeg
			strong[sp.Month] = cnt
		}
	}
	months := window.Months()
	speeds := make(map[timeline.Month][]float64, len(byMonth))
	for m, os := range byMonth {
		sort.Slice(os, func(i, j int) bool {
			if os[i].day != os[j].day {
				return os[i].day < os[j].day
			}
			return os[i].id < os[j].id
		})
		xs := make([]float64, len(os))
		for i, ob := range os {
			xs[i] = ob.down
		}
		speeds[m] = xs
	}
	return assembleMonthSpeeds(months, speeds, strong, model, seed)
}

// MergeExperience assembles the per-ISP experience answer from shards'
// phase-1 partials and (optionally) phase-2 predicted accumulators. The
// per-day accumulators merge strictly ascending by day — the same fold the
// single-node handler runs.
func MergeExperience(isp string, parts []*ExperiencePartial, predicted [][]DayOnlinePartial) ExperienceResponse {
	resp := ExperienceResponse{ISP: isp}
	type dayRow struct {
		day            timeline.Day
		pres, cam, mic stats.OnlineState
	}
	var days []dayRow
	var ratingSum, ratingN int
	var pos, neg, outage int
	for _, p := range parts {
		if p == nil {
			continue
		}
		resp.Sessions += p.Sessions
		for _, d := range p.Days {
			days = append(days, dayRow{day: d.Day, pres: d.Pres, cam: d.Cam, mic: d.Mic})
			ratingSum += d.RatingSum
			ratingN += d.RatingN
		}
		pos += p.SocialPos
		neg += p.SocialNeg
		outage += p.OutageMentions
	}
	sort.Slice(days, func(i, j int) bool { return days[i].day < days[j].day })
	var pres, cam, mic stats.Online
	for _, d := range days {
		pres.Merge(stats.FromState(d.pres))
		cam.Merge(stats.FromState(d.cam))
		mic.Merge(stats.FromState(d.mic))
	}
	resp.MeanPresence = pres.Mean()
	resp.MeanCamOn = cam.Mean()
	resp.MeanMicOn = mic.Mean()
	if ratingN > 0 {
		resp.SurveyedMOS = float64(ratingSum) / float64(ratingN)
		resp.SurveyedCount = ratingN
	}
	var predDays []DayOnlinePartial
	for _, p := range predicted {
		predDays = append(predDays, p...)
	}
	if len(predDays) > 0 {
		sort.Slice(predDays, func(i, j int) bool { return predDays[i].Day < predDays[j].Day })
		var acc stats.Online
		for _, d := range predDays {
			acc.Merge(stats.FromState(d.Acc))
		}
		resp.PredictedMOS = acc.Mean()
	}
	if pos+neg > 0 {
		resp.SocialPosRatio = float64(pos) / float64(pos+neg)
	}
	resp.OutageMentions = outage
	return resp
}

// MOSFromRated computes the /v1/insights/mos answer from a day-major rated
// subsequence and the total session count — shared by the single-node
// handler and the coordinator (which feeds it MergeRated output).
func MOSFromRated(rated []telemetry.SessionRecord, total, bins int) (MOSResponse, error) {
	report, err := mosReportRated(rated, bins, nil)
	if err != nil {
		return MOSResponse{}, err
	}
	resp := MOSResponse{}
	for _, em := range report {
		resp.Correlations = append(resp.Correlations, MOSCorrelation{
			Engagement:    em.Engagement.String(),
			Pearson:       em.Pearson,
			Spearman:      em.Spearman,
			RatedSessions: em.RatedSessions,
		})
	}
	if eval, err := evaluateMOSPredictorRated(rated, total, 0.7, 1.0); err == nil {
		resp.Predictor = &eval
	}
	return resp, nil
}

// ClusterReportInput carries everything the coordinator gathered for one
// /v1/report: per-shard bundles (sections "sessions,drops,social,speeds"),
// a callback that runs the model phase for traffic engineering, per-section
// degradation notes, and the coordinator's own annotation sources.
type ClusterReportInput struct {
	Bundles []*ShardPartials
	// TEPartials runs the model phase: ship the trained model to every live
	// shard, gather per-day TE partials. An error degrades the
	// traffic-engineering section only.
	TEPartials func(model stats.LinearModel) ([][]TEDayPartial, error)
	// Notes maps report section names to degradation annotations ("shard X
	// unavailable: ..."); they append to Errors after each section runs.
	Notes map[string][]string
	News  *newswire.Index
	Model *leo.Model
}

// AssembleClusterReport folds gathered shard partials into the operator
// report through the same guard chain BuildReport uses, so section order,
// names, and error strings match a single node's byte for byte.
func AssembleClusterReport(in ClusterReportInput) OperatorReport {
	total := 0
	var ratedParts [][]telemetry.SessionRecord
	for _, b := range in.Bundles {
		if b == nil {
			continue
		}
		total += b.Sessions
		ratedParts = append(ratedParts, b.Rated)
	}
	rated := MergeRated(ratedParts)

	src := reportSource{
		rated:        rated,
		total:        total,
		sectionNotes: in.Notes,
		dose: func(metric telemetry.Metric, b stats.Binner) stats.BinnedSeries {
			idx := -1
			for i, rr := range reportDropRanges {
				if rr.metric == metric {
					idx = i
				}
			}
			var parts [][]DoseDayPartial
			for _, bundle := range in.Bundles {
				if bundle != nil && idx >= 0 && idx < len(bundle.Drops) {
					parts = append(parts, bundle.Drops[idx])
				}
			}
			series, err := MergeDosePartials(b, parts)
			if err != nil {
				panic(err) // caught by the section guard
			}
			return series
		},
		te: func() ([]TERecommendation, error) {
			p, err := TrainMOSPredictor(rated, 1.0)
			if err != nil {
				return nil, fmt.Errorf("usaas: traffic-engineering advisor: %w", err)
			}
			if in.TEPartials == nil {
				return nil, fmt.Errorf("usaas: traffic-engineering advisor: no model phase")
			}
			parts, err := in.TEPartials(*p.Model())
			if err != nil {
				return nil, err
			}
			return MergeTE(total, parts), nil
		},
	}

	window, havePosts := SocialWindow(in.Bundles)
	if havePosts {
		src.havePosts = true
		var sentParts [][]DaySentiment
		var kwParts [][]DayKeywords
		var cloudParts [][]DayCloud
		var termParts [][]TermPartial
		var speedParts [][]SpeedMonthPartial
		for _, b := range in.Bundles {
			if b == nil || !b.HavePosts {
				continue
			}
			src.posts += b.Posts
			sentParts = append(sentParts, b.Sentiment)
			kwParts = append(kwParts, b.Keywords)
			cloudParts = append(cloudParts, b.Clouds)
			termParts = append(termParts, b.Terms)
			speedParts = append(speedParts, b.Speeds)
		}
		// WeeklyAverages' exact arithmetic: posts / (window days / 7).
		if weeks := float64(window.Len()) / 7; weeks > 0 {
			src.weekly = float64(src.posts) / weeks
		}
		src.sweep = func() (*Sweep, error) {
			return &Sweep{
				Sentiment: MergeSentiment(window, sentParts),
				Keywords:  MergeKeywords(window, kwParts),
				Trends:    MergeTrends(window, termParts, TrendOptions{MaxTerms: 10}),
			}, nil
		}
		clouds := MergeClouds(cloudParts)
		src.peaks = func(sent []DaySentiment) ([]AnnotatedPeak, error) {
			return MergePeaks(sent, clouds, in.News, 3), nil
		}
		src.speeds = func() ([]MonthSpeed, error) {
			return MergeSpeeds(window, speedParts, in.Model, 1), nil
		}
	}
	return buildReportFrom(src)
}

// ParseSections splits a comma-separated sections parameter.
func ParseSections(raw string) []string {
	if raw == "" {
		return nil
	}
	parts := strings.Split(raw, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
