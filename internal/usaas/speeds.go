package usaas

import (
	"encoding/json"
	"math"

	"usersignals/internal/leo"
	"usersignals/internal/nlp"
	"usersignals/internal/ocr"
	"usersignals/internal/parallel"
	"usersignals/internal/simrand"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/timeline"
)

// MonthSpeed is one month of the Fig. 7 series, assembled entirely from
// what the pipeline can observe: OCR-extracted screenshot values, post
// sentiment, and public launch/subscriber annotations.
type MonthSpeed struct {
	Month timeline.Month
	// Reports is the number of successfully extracted screenshots.
	Reports int
	// MedianDownMbps is the monthly median of extracted downlink speeds.
	MedianDownMbps float64
	// Median95 and Median90 are medians of uniformly subsampled 95% and
	// 90% of the month's data (Fig. 7's stability check).
	Median95, Median90 float64
	// Pos is the normalized strong-positive sentiment share among
	// speed-test posts with strong sentiment: pos / (pos + neg).
	// NaN when the month has no strong-sentiment speed posts.
	Pos float64
	// Launches and Users annotate the series (public information).
	Launches int
	Users    float64
}

// MonthlySpeeds runs the Fig. 7 pipeline over a corpus: find screenshot
// posts, OCR-extract them, aggregate monthly medians with subsample checks,
// score the carrying posts' sentiment, and annotate with the constellation
// timeline. The model is used only for the public annotations (launches,
// subscriber counts), never for speed values. The OCR extraction sweep is
// sharded across one worker per CPU; see MonthlySpeedsN.
func MonthlySpeeds(c *social.Corpus, an *nlp.Analyzer, model *leo.Model, seed uint64) []MonthSpeed {
	return MonthlySpeedsN(c, an, model, seed, 0)
}

// speedShard accumulates one post-chunk of the Fig. 7 extraction sweep.
type speedShard struct {
	speeds map[timeline.Month][]float64
	strong map[timeline.Month][2]int // [pos, neg]
}

// assembleMonthSpeeds is the final stage of the Fig. 7 pipeline, shared by
// the batch scan (MonthlySpeedsN) and the store's materialized view: given
// per-month extracted speeds (in corpus order) and strong-sentiment counts,
// produce the monthly series with subsample stability checks and public
// annotations. The subsample RNG is one stream consumed across months in
// window order, so callers must pass the full month list.
func assembleMonthSpeeds(months []timeline.Month, speeds map[timeline.Month][]float64, strong map[timeline.Month][2]int, model *leo.Model, seed uint64) []MonthSpeed {
	rng := simrand.Root(seed).Derive("usaas/fig7-subsample").RNG()
	out := make([]MonthSpeed, 0, len(months))
	for _, m := range months {
		ms := MonthSpeed{Month: m}
		xs := speeds[m]
		ms.Reports = len(xs)
		if len(xs) > 0 {
			ms.MedianDownMbps = stats.Median(xs)
			ms.Median95 = stats.Median(stats.SubsampleStat(rng, xs, 0.95, stats.Median, 9))
			ms.Median90 = stats.Median(stats.SubsampleStat(rng, xs, 0.90, stats.Median, 9))
		} else {
			ms.MedianDownMbps = math.NaN()
			ms.Median95, ms.Median90 = math.NaN(), math.NaN()
		}
		cnt := strong[m]
		if cnt[0]+cnt[1] > 0 {
			ms.Pos = float64(cnt[0]) / float64(cnt[0]+cnt[1])
		} else {
			ms.Pos = math.NaN()
		}
		if model != nil {
			ms.Launches = model.LaunchesBetween(m.First(), m.First()+timeline.Day(m.Days()-1))
			ms.Users = model.Users(m.First() + timeline.Day(m.Days()-1))
		}
		out = append(out, ms)
	}
	return out
}

// MonthlySpeedsN is MonthlySpeeds over an explicit worker count (<= 0 means
// one per CPU). Posts shard into canonical chunks; per-month extraction
// results concatenate in chunk order, reproducing the serial scan exactly,
// so the output is byte-identical at any worker count.
func MonthlySpeedsN(c *social.Corpus, an *nlp.Analyzer, model *leo.Model, seed uint64, workers int) []MonthSpeed {
	tc := c.Tokens()
	scorer := an.CompileScorer(tc.Interner())
	months := c.Window.Months()
	inWindow := make(map[timeline.Month]bool, len(months))
	speeds := make(map[timeline.Month][]float64, len(months))
	strong := make(map[timeline.Month][2]int, len(months))

	for _, m := range months {
		inWindow[m] = true
	}

	shards, _ := parallel.Map(workers, parallel.Chunks(len(c.Posts)), func(i int) (speedShard, error) {
		lo, hi := parallel.ChunkBounds(i, len(c.Posts))
		sh := speedShard{
			speeds: map[timeline.Month][]float64{},
			strong: map[timeline.Month][2]int{},
		}
		for j := lo; j < hi; j++ {
			p := &c.Posts[j]
			if p.Screenshot == nil {
				continue
			}
			m := timeline.MonthOf(p.Day)
			if !inWindow[m] {
				continue
			}
			ex, err := ocr.Extract(*p.Screenshot)
			if err != nil {
				continue // unreadable screenshot: the pipeline moves on
			}
			sh.speeds[m] = append(sh.speeds[m], ex.DownMbps)
			s := scorer.Score(tc.Text(j))
			cnt := sh.strong[m]
			if s.StrongPositive() {
				cnt[0]++
			}
			if s.StrongNegative() {
				cnt[1]++
			}
			sh.strong[m] = cnt
		}
		return sh, nil
	})
	for _, sh := range shards {
		for _, m := range months {
			if xs := sh.speeds[m]; len(xs) > 0 {
				speeds[m] = append(speeds[m], xs...)
			}
			cnt := strong[m]
			add := sh.strong[m]
			cnt[0] += add[0]
			cnt[1] += add[1]
			strong[m] = cnt
		}
	}
	return assembleMonthSpeeds(months, speeds, strong, model, seed)
}

// monthSpeedWire is the JSON form: months without data carry nulls instead
// of NaN (which JSON cannot express).
type monthSpeedWire struct {
	Month    timeline.Month `json:"month"`
	Reports  int            `json:"reports"`
	Median   *float64       `json:"median_down_mbps,omitempty"`
	Median95 *float64       `json:"median_95pct_sample,omitempty"`
	Median90 *float64       `json:"median_90pct_sample,omitempty"`
	Pos      *float64       `json:"pos,omitempty"`
	Launches int            `json:"launches"`
	Users    float64        `json:"users"`
}

func optFloat(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	out := v
	return &out
}

func floatOrNaN(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// MarshalJSON encodes NaN fields as null.
func (m MonthSpeed) MarshalJSON() ([]byte, error) {
	return json.Marshal(monthSpeedWire{
		Month: m.Month, Reports: m.Reports,
		Median: optFloat(m.MedianDownMbps), Median95: optFloat(m.Median95),
		Median90: optFloat(m.Median90), Pos: optFloat(m.Pos),
		Launches: m.Launches, Users: m.Users,
	})
}

// UnmarshalJSON decodes nulls back to NaN.
func (m *MonthSpeed) UnmarshalJSON(data []byte) error {
	var w monthSpeedWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*m = MonthSpeed{
		Month: w.Month, Reports: w.Reports,
		MedianDownMbps: floatOrNaN(w.Median), Median95: floatOrNaN(w.Median95),
		Median90: floatOrNaN(w.Median90), Pos: floatOrNaN(w.Pos),
		Launches: w.Launches, Users: w.Users,
	}
	return nil
}

// SpeedSeries extracts the median column (aligned with the input).
func SpeedSeries(ms []MonthSpeed) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.MedianDownMbps
	}
	return out
}

// PosSeries extracts the Pos column.
func PosSeries(ms []MonthSpeed) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.Pos
	}
	return out
}

// ConditioningFinding captures Fig. 7's "wheel of time" evidence: months
// where sentiment and absolute speed disagree because users are judging
// against their conditioned expectation.
type ConditioningFinding struct {
	// SpeedPosCorrelation is the overall correlation between monthly
	// median speed and Pos (broadly positive, per the paper).
	SpeedPosCorrelation float64
	// DecemberBelowApril: Dec '21 speed exceeds Apr '21 speed yet Pos is
	// lower (negative conditioning after the fast summer).
	DecemberBelowApril bool
	// LateRecovery: Pos rises from mid '22 to Dec '22 even though speed
	// falls (users acclimatized to slower service).
	LateRecovery bool
}

// AnalyzeConditioning inspects a monthly series for the paper's two
// anomalies.
func AnalyzeConditioning(ms []MonthSpeed) ConditioningFinding {
	find := func(y int, mo int) *MonthSpeed {
		for i := range ms {
			if ms[i].Month.Year() == y && int(ms[i].Month.Month()) == mo {
				return &ms[i]
			}
		}
		return nil
	}
	var out ConditioningFinding
	var xs, ys []float64
	for _, m := range ms {
		if !math.IsNaN(m.MedianDownMbps) && !math.IsNaN(m.Pos) {
			xs = append(xs, m.MedianDownMbps)
			ys = append(ys, m.Pos)
		}
	}
	out.SpeedPosCorrelation, _ = stats.Pearson(xs, ys)
	// Pearson is NaN for degenerate series (under two usable months, or
	// zero variance). NaN is not representable in JSON and would make the
	// whole report unencodable, so report "no correlation" instead.
	if math.IsNaN(out.SpeedPosCorrelation) {
		out.SpeedPosCorrelation = 0
	}

	apr21, dec21 := find(2021, 4), find(2021, 12)
	if apr21 != nil && dec21 != nil &&
		dec21.MedianDownMbps > apr21.MedianDownMbps &&
		dec21.Pos < apr21.Pos {
		out.DecemberBelowApril = true
	}
	// The late recovery is a slow drift, so compare quarters rather than
	// single (noisy) months: Q2 '22 vs Q4 '22.
	quarter := func(months ...int) (speed, pos float64, ok bool) {
		var s, p []float64
		for _, mo := range months {
			if m := find(2022, mo); m != nil {
				if !math.IsNaN(m.MedianDownMbps) {
					s = append(s, m.MedianDownMbps)
				}
				if !math.IsNaN(m.Pos) {
					p = append(p, m.Pos)
				}
			}
		}
		if len(s) == 0 || len(p) == 0 {
			return 0, 0, false
		}
		return stats.Mean(s), stats.Mean(p), true
	}
	q2Speed, q2Pos, ok2 := quarter(4, 5, 6)
	q4Speed, q4Pos, ok4 := quarter(10, 11, 12)
	if ok2 && ok4 && q4Speed < q2Speed && q4Pos > q2Pos {
		out.LateRecovery = true
	}
	return out
}
