package usaas

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"usersignals/internal/nlp"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
)

// OperatorReport is the composed insight product of the service: every
// headline finding from both signal families in one structure, with a
// human-readable rendering. This is the artifact §5 imagines operators
// consuming.
type OperatorReport struct {
	// Implicit-signal side.
	Sessions        int                `json:"sessions"`
	EngagementDrops map[string]float64 `json:"engagement_drops"` // metric → relative drop over its range
	MOS             []MOSCorrelation   `json:"mos_correlations,omitempty"`
	Predictor       *PredictorEval     `json:"predictor,omitempty"`
	TEAdvice        []TERecommendation `json:"traffic_engineering,omitempty"`

	// Explicit-signal side.
	Posts        int                  `json:"posts"`
	WeeklyPosts  float64              `json:"weekly_posts"`
	Peaks        []AnnotatedPeak      `json:"peaks,omitempty"`
	OutageAlerts int                  `json:"outage_alert_days"`
	Trends       []Trend              `json:"trends,omitempty"`
	SpeedMonths  int                  `json:"speed_months"`
	SpeedPosCorr float64              `json:"speed_pos_correlation"`
	Conditioning *ConditioningFinding `json:"conditioning,omitempty"`

	// Degraded is set when one or more sub-analyses failed; the report
	// still carries every section that succeeded, and Errors lists what
	// was lost. Operators get a partial report instead of a blanket 500.
	Degraded bool     `json:"degraded,omitempty"`
	Errors   []string `json:"errors,omitempty"`
}

// reportDropRanges defines the per-metric binning used for the drop
// summaries.
var reportDropRanges = []struct {
	metric telemetry.Metric
	lo, hi float64
}{
	{telemetry.LatencyMean, 0, 300},
	{telemetry.LossMean, 0, 4},
	{telemetry.JitterMean, 0, 12},
	{telemetry.BandwidthMean, 0.25, 4},
}

// reportSource supplies each report section's inputs, so BuildReport (one
// store) and the cluster coordinator (merged shard partials) share the one
// guard chain — identical section order, section names, and error formats,
// which is what keeps an N-shard report byte-identical to a single-node one.
type reportSource struct {
	rated []telemetry.SessionRecord // day-major rated subsequence
	total int                       // total session count
	dose  func(metric telemetry.Metric, b stats.Binner) stats.BinnedSeries
	te    func() ([]TERecommendation, error)

	havePosts bool
	posts     int
	weekly    float64
	sweep     func() (*Sweep, error)
	peaks     func(sent []DaySentiment) ([]AnnotatedPeak, error)
	speeds    func() ([]MonthSpeed, error)

	// sectionNotes carries per-section degradation annotations (a cluster
	// coordinator's "shard X unavailable" notes); each section's notes are
	// appended to Errors right after the section runs.
	sectionNotes map[string][]string
}

// buildReportFrom assembles the report from a source, degrading gracefully:
// each section runs in isolation, and a section that fails — returns an
// error, panics, or has no data to work from — is recorded in Errors while
// every other section still lands. The report never takes the whole
// response down with it.
func buildReportFrom(src reportSource) OperatorReport {
	rep := OperatorReport{EngagementDrops: map[string]float64{}}

	// guard runs one section, converting errors and panics into Errors
	// entries instead of failures, then attaches the section's degradation
	// notes.
	guard := func(section string, f func() error) {
		defer func() {
			if p := recover(); p != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: panic: %v", section, p))
			}
			rep.Errors = append(rep.Errors, src.sectionNotes[section]...)
		}()
		if err := f(); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", section, err))
		}
	}

	rep.Sessions = src.total
	if src.total == 0 {
		rep.Errors = append(rep.Errors, "sessions: none ingested")
		rep.Errors = append(rep.Errors, src.sectionNotes["sessions"]...)
	} else {
		// With data present the notes still land: the session count itself
		// may be partial (a cluster's dead shard held some of the days).
		rep.Errors = append(rep.Errors, src.sectionNotes["sessions"]...)
		guard("engagement-drops", func() error {
			for _, rr := range reportDropRanges {
				s := src.dose(rr.metric, stats.NewBinner(rr.lo, rr.hi, 8))
				if drop := RelativeDrop(s); !math.IsNaN(drop) {
					rep.EngagementDrops[rr.metric.String()] = drop
				}
			}
			return nil
		})
		guard("mos-correlations", func() error {
			mosReport, err := mosReportRated(src.rated, 10, nil)
			if err != nil {
				return err
			}
			for _, em := range mosReport {
				rep.MOS = append(rep.MOS, MOSCorrelation{
					Engagement:    em.Engagement.String(),
					Pearson:       em.Pearson,
					Spearman:      em.Spearman,
					RatedSessions: em.RatedSessions,
				})
			}
			return nil
		})
		guard("mos-predictor", func() error {
			eval, err := evaluateMOSPredictorRated(src.rated, src.total, 0.7, 1.0)
			if err != nil {
				return err
			}
			rep.Predictor = &eval
			return nil
		})
		guard("traffic-engineering", func() error {
			advice, err := src.te()
			if err != nil {
				return err
			}
			rep.TEAdvice = advice
			return nil
		})
	}

	if !src.havePosts {
		rep.Errors = append(rep.Errors, "posts: none ingested")
		rep.Errors = append(rep.Errors, src.sectionNotes["posts"]...)
	} else {
		rep.Errors = append(rep.Errors, src.sectionNotes["posts"]...)
		rep.Posts = src.posts
		rep.WeeklyPosts = src.weekly
		var sw *Sweep
		guard("social-sweep", func() error {
			var err error
			sw, err = src.sweep()
			return err
		})
		if sw != nil {
			guard("sentiment-peaks", func() error {
				peaks, err := src.peaks(sw.Sentiment)
				if err != nil {
					return err
				}
				rep.Peaks = peaks
				return nil
			})
			guard("outage-monitor", func() error {
				rep.OutageAlerts = len(AlertsFromSeries(sw.Keywords, 3))
				return nil
			})
			guard("trends", func() error {
				rep.Trends = sw.Trends
				return nil
			})
		}
		guard("speeds", func() error {
			months, err := src.speeds()
			if err != nil {
				return err
			}
			for _, m := range months {
				if m.Reports > 0 {
					rep.SpeedMonths++
				}
			}
			finding := AnalyzeConditioning(months)
			rep.SpeedPosCorr = finding.SpeedPosCorrelation
			rep.Conditioning = &finding
			return nil
		})
	}
	rep.Degraded = len(rep.Errors) > 0
	return rep
}

// BuildReport assembles the report from a store's contents. Session
// analyses read the store's materialized views (views.go): dose-response
// curves come from incrementally maintained per-day accumulators, and the
// MOS paths scan only the day-major rated subsequence.
func BuildReport(store *Store, an *nlp.Analyzer, opts ServerOptions) OperatorReport {
	if an == nil {
		an = nlp.NewAnalyzer()
	}
	rated, total := store.RatedSessions()
	src := reportSource{
		rated: rated,
		total: total,
		dose: func(metric telemetry.Metric, b stats.Binner) stats.BinnedSeries {
			return store.DoseResponseSeries(metric, telemetry.Presence, b, "")
		},
		te: func() ([]TERecommendation, error) {
			// The day-partial fold AdviseTrafficEngineering describes, over
			// the row snapshot (no flat copy of the store).
			rows := store.Rows()
			if rows.Len() == 0 {
				return nil, errors.New("usaas: no sessions to advise on")
			}
			p, err := TrainMOSPredictor(rated, 1.0)
			if err != nil {
				return nil, fmt.Errorf("usaas: traffic-engineering advisor: %w", err)
			}
			return assembleTE(rows.Len(), teDayPartials(p, rows)), nil
		},
	}
	if c := store.Corpus(); c != nil {
		src.havePosts = true
		src.posts = c.Len()
		src.weekly, _, _ = c.WeeklyAverages()
		// The three text sections share one fused sweep over the corpus's
		// cached token streams (sweep.go): daily sentiment, the gated
		// outage-keyword series, and trend mining all come out of a single
		// scan instead of three independent re-lexing passes.
		src.sweep = func() (*Sweep, error) {
			dict := opts.OutageDict
			if dict == nil {
				dict = nlp.OutageDictionary()
			}
			topts := TrendOptions{MaxTerms: 10}
			return SweepCorpus(c, an, SweepOptions{
				Sentiment: true, Dict: dict, Gate: true, Trends: &topts,
			}), nil
		}
		src.peaks = func(sent []DaySentiment) ([]AnnotatedPeak, error) {
			return annotatePeaks(c, sent, opts.News, 3), nil
		}
		src.speeds = func() ([]MonthSpeed, error) {
			months, ok := store.monthlySpeedsView(an, opts.Model, 1)
			if !ok {
				months = MonthlySpeeds(c, an, opts.Model, 1)
			}
			return months, nil
		}
	}
	return buildReportFrom(src)
}

// Render produces the human-readable version.
func (r OperatorReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "USER SIGNALS REPORT\n===================\n\n")

	fmt.Fprintf(&b, "Implicit signals: %d sessions\n", r.Sessions)
	for _, rr := range reportDropRanges {
		if drop, ok := r.EngagementDrops[rr.metric.String()]; ok {
			fmt.Fprintf(&b, "  presence falls %.0f%% over %s range %g-%g\n",
				100*drop, rr.metric, rr.lo, rr.hi)
		}
	}
	if r.Predictor != nil {
		fmt.Fprintf(&b, "  MOS predictor MAE %.3f (baseline %.3f); coverage %.1f%% → 100%%\n",
			r.Predictor.PredictorMAE, r.Predictor.BaselineMAE, 100*r.Predictor.SurveyCoverage)
	}
	if len(r.TEAdvice) > 0 {
		fmt.Fprintf(&b, "  top network investment: %s (%s), +%.4f population MOS\n",
			r.TEAdvice[0].Improvement, r.TEAdvice[0].Metric, r.TEAdvice[0].TotalLift)
	}

	fmt.Fprintf(&b, "\nExplicit signals: %d posts (%.0f/week)\n", r.Posts, r.WeeklyPosts)
	for _, pk := range r.Peaks {
		cause := "no reported cause found"
		if len(pk.News) > 0 {
			cause = pk.News[0].Headline
		}
		polarity := "negative"
		if pk.Positive {
			polarity = "positive"
		}
		fmt.Fprintf(&b, "  peak %s (%s, %d strong posts): %s\n", pk.Day, polarity, pk.Strong, cause)
	}
	fmt.Fprintf(&b, "  outage-alert days: %d\n", r.OutageAlerts)
	if len(r.Trends) > 0 {
		terms := make([]string, 0, 3)
		for i, tr := range r.Trends {
			if i == 3 {
				break
			}
			terms = append(terms, fmt.Sprintf("%s (from %s)", tr.Term, tr.FirstDay))
		}
		fmt.Fprintf(&b, "  emerging topics: %s\n", strings.Join(terms, ", "))
	}
	if r.SpeedMonths > 0 {
		fmt.Fprintf(&b, "  %d months of speed-test evidence; speed-sentiment correlation r=%.2f\n",
			r.SpeedMonths, r.SpeedPosCorr)
		if r.Conditioning != nil && r.Conditioning.DecemberBelowApril {
			fmt.Fprintf(&b, "  conditioning detected: sentiment tracks expectations, not absolute speed\n")
		}
	}
	if r.Degraded {
		fmt.Fprintf(&b, "\nDEGRADED: %d section(s) unavailable\n", len(r.Errors))
		for _, e := range r.Errors {
			fmt.Fprintf(&b, "  - %s\n", e)
		}
	}
	return b.String()
}
