package usaas

import (
	"fmt"
	"math"
	"strings"

	"usersignals/internal/nlp"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
)

// OperatorReport is the composed insight product of the service: every
// headline finding from both signal families in one structure, with a
// human-readable rendering. This is the artifact §5 imagines operators
// consuming.
type OperatorReport struct {
	// Implicit-signal side.
	Sessions        int                `json:"sessions"`
	EngagementDrops map[string]float64 `json:"engagement_drops"` // metric → relative drop over its range
	MOS             []MOSCorrelation   `json:"mos_correlations,omitempty"`
	Predictor       *PredictorEval     `json:"predictor,omitempty"`
	TEAdvice        []TERecommendation `json:"traffic_engineering,omitempty"`

	// Explicit-signal side.
	Posts        int                  `json:"posts"`
	WeeklyPosts  float64              `json:"weekly_posts"`
	Peaks        []AnnotatedPeak      `json:"peaks,omitempty"`
	OutageAlerts int                  `json:"outage_alert_days"`
	Trends       []Trend              `json:"trends,omitempty"`
	SpeedMonths  int                  `json:"speed_months"`
	SpeedPosCorr float64              `json:"speed_pos_correlation"`
	Conditioning *ConditioningFinding `json:"conditioning,omitempty"`

	// Degraded is set when one or more sub-analyses failed; the report
	// still carries every section that succeeded, and Errors lists what
	// was lost. Operators get a partial report instead of a blanket 500.
	Degraded bool     `json:"degraded,omitempty"`
	Errors   []string `json:"errors,omitempty"`
}

// reportDropRanges defines the per-metric binning used for the drop
// summaries.
var reportDropRanges = []struct {
	metric telemetry.Metric
	lo, hi float64
}{
	{telemetry.LatencyMean, 0, 300},
	{telemetry.LossMean, 0, 4},
	{telemetry.JitterMean, 0, 12},
	{telemetry.BandwidthMean, 0.25, 4},
}

// BuildReport assembles the report from a store's contents, degrading
// gracefully: each section runs in isolation, and a section that fails —
// returns an error, panics, or has no data to work from — is recorded in
// Errors while every other section still lands. The report never takes the
// whole response down with it.
func BuildReport(store *Store, an *nlp.Analyzer, opts ServerOptions) OperatorReport {
	if an == nil {
		an = nlp.NewAnalyzer()
	}
	rep := OperatorReport{EngagementDrops: map[string]float64{}}

	// guard runs one section, converting errors and panics into Errors
	// entries instead of failures.
	guard := func(section string, f func() error) {
		defer func() {
			if p := recover(); p != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: panic: %v", section, p))
			}
		}()
		if err := f(); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", section, err))
		}
	}

	// Session analyses read the store's materialized views (views.go): the
	// shared session slice is never copied, dose-response curves come from
	// incrementally maintained accumulators, and the MOS paths scan only
	// the rated subsequence.
	recs := store.SessionsShared()
	rated, total := store.RatedSessions()
	rep.Sessions = total
	if total == 0 {
		rep.Errors = append(rep.Errors, "sessions: none ingested")
	} else {
		guard("engagement-drops", func() error {
			for _, rr := range reportDropRanges {
				s := store.DoseResponseSeries(rr.metric, telemetry.Presence,
					stats.NewBinner(rr.lo, rr.hi, 8), "")
				if drop := RelativeDrop(s); !math.IsNaN(drop) {
					rep.EngagementDrops[rr.metric.String()] = drop
				}
			}
			return nil
		})
		guard("mos-correlations", func() error {
			mosReport, err := mosReportRated(rated, 10, nil)
			if err != nil {
				return err
			}
			for _, em := range mosReport {
				rep.MOS = append(rep.MOS, MOSCorrelation{
					Engagement:    em.Engagement.String(),
					Pearson:       em.Pearson,
					Spearman:      em.Spearman,
					RatedSessions: em.RatedSessions,
				})
			}
			return nil
		})
		guard("mos-predictor", func() error {
			eval, err := evaluateMOSPredictorRated(rated, total, 0.7, 1.0)
			if err != nil {
				return err
			}
			rep.Predictor = &eval
			return nil
		})
		guard("traffic-engineering", func() error {
			advice, err := AdviseTrafficEngineering(recs)
			if err != nil {
				return err
			}
			rep.TEAdvice = advice
			return nil
		})
	}

	if c := store.Corpus(); c == nil {
		rep.Errors = append(rep.Errors, "posts: none ingested")
	} else {
		rep.Posts = c.Len()
		rep.WeeklyPosts, _, _ = c.WeeklyAverages()
		// The three text sections share one fused sweep over the corpus's
		// cached token streams (sweep.go): daily sentiment, the gated
		// outage-keyword series, and trend mining all come out of a single
		// scan instead of three independent re-lexing passes.
		var sw *Sweep
		guard("social-sweep", func() error {
			dict := opts.OutageDict
			if dict == nil {
				dict = nlp.OutageDictionary()
			}
			topts := TrendOptions{MaxTerms: 10}
			sw = SweepCorpus(c, an, SweepOptions{
				Sentiment: true, Dict: dict, Gate: true, Trends: &topts,
			})
			return nil
		})
		if sw != nil {
			guard("sentiment-peaks", func() error {
				rep.Peaks = annotatePeaks(c, sw.Sentiment, opts.News, 3)
				return nil
			})
			guard("outage-monitor", func() error {
				rep.OutageAlerts = len(AlertsFromSeries(sw.Keywords, 3))
				return nil
			})
			guard("trends", func() error {
				rep.Trends = sw.Trends
				return nil
			})
		}
		guard("speeds", func() error {
			months, ok := store.monthlySpeedsView(an, opts.Model, 1)
			if !ok {
				months = MonthlySpeeds(c, an, opts.Model, 1)
			}
			for _, m := range months {
				if m.Reports > 0 {
					rep.SpeedMonths++
				}
			}
			finding := AnalyzeConditioning(months)
			rep.SpeedPosCorr = finding.SpeedPosCorrelation
			rep.Conditioning = &finding
			return nil
		})
	}
	rep.Degraded = len(rep.Errors) > 0
	return rep
}

// Render produces the human-readable version.
func (r OperatorReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "USER SIGNALS REPORT\n===================\n\n")

	fmt.Fprintf(&b, "Implicit signals: %d sessions\n", r.Sessions)
	for _, rr := range reportDropRanges {
		if drop, ok := r.EngagementDrops[rr.metric.String()]; ok {
			fmt.Fprintf(&b, "  presence falls %.0f%% over %s range %g-%g\n",
				100*drop, rr.metric, rr.lo, rr.hi)
		}
	}
	if r.Predictor != nil {
		fmt.Fprintf(&b, "  MOS predictor MAE %.3f (baseline %.3f); coverage %.1f%% → 100%%\n",
			r.Predictor.PredictorMAE, r.Predictor.BaselineMAE, 100*r.Predictor.SurveyCoverage)
	}
	if len(r.TEAdvice) > 0 {
		fmt.Fprintf(&b, "  top network investment: %s (%s), +%.4f population MOS\n",
			r.TEAdvice[0].Improvement, r.TEAdvice[0].Metric, r.TEAdvice[0].TotalLift)
	}

	fmt.Fprintf(&b, "\nExplicit signals: %d posts (%.0f/week)\n", r.Posts, r.WeeklyPosts)
	for _, pk := range r.Peaks {
		cause := "no reported cause found"
		if len(pk.News) > 0 {
			cause = pk.News[0].Headline
		}
		polarity := "negative"
		if pk.Positive {
			polarity = "positive"
		}
		fmt.Fprintf(&b, "  peak %s (%s, %d strong posts): %s\n", pk.Day, polarity, pk.Strong, cause)
	}
	fmt.Fprintf(&b, "  outage-alert days: %d\n", r.OutageAlerts)
	if len(r.Trends) > 0 {
		terms := make([]string, 0, 3)
		for i, tr := range r.Trends {
			if i == 3 {
				break
			}
			terms = append(terms, fmt.Sprintf("%s (from %s)", tr.Term, tr.FirstDay))
		}
		fmt.Fprintf(&b, "  emerging topics: %s\n", strings.Join(terms, ", "))
	}
	if r.SpeedMonths > 0 {
		fmt.Fprintf(&b, "  %d months of speed-test evidence; speed-sentiment correlation r=%.2f\n",
			r.SpeedMonths, r.SpeedPosCorr)
		if r.Conditioning != nil && r.Conditioning.DecemberBelowApril {
			fmt.Fprintf(&b, "  conditioning detected: sentiment tracks expectations, not absolute speed\n")
		}
	}
	if r.Degraded {
		fmt.Fprintf(&b, "\nDEGRADED: %d section(s) unavailable\n", len(r.Errors))
		for _, e := range r.Errors {
			fmt.Fprintf(&b, "  - %s\n", e)
		}
	}
	return b.String()
}
