package usaas

import (
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Per-tenant token-bucket admission control. The inflight limiter (PR 2)
// protects the server as a whole; this layer protects tenants from each
// other: one firehose tenant exhausts its own bucket and gets clean 429s
// with a deterministic Retry-After, while everyone else's ingest proceeds.
// Only ingest POSTs are admission-controlled — queries are cheap (cached)
// and read-only, and it is ingest volume that buys fsyncs and memory.

// TenantHeader names the tenant a request ingests on behalf of. Absent
// means the anonymous tenant, which shares one bucket — a fleet that wants
// per-client fairness must label its traffic.
const TenantHeader = "X-Usaas-Tenant"

// AdmissionOptions configures per-tenant ingest rate limiting.
type AdmissionOptions struct {
	// Rate is the sustained budget in ingest batches/sec per tenant
	// (<= 0 disables admission control).
	Rate float64
	// Burst is the bucket capacity in batches (default: Rate, min 1) —
	// how far a tenant may briefly exceed the sustained rate.
	Burst float64
	// now replaces the clock (tests).
	now func() time.Time
}

// TenantAdmission reports one tenant's admission counters.
type TenantAdmission struct {
	Tenant   string `json:"tenant"`
	Admitted uint64 `json:"admitted"`
	Dropped  uint64 `json:"dropped"`
}

// bucket is one tenant's token bucket: tokens refill at rate/sec up to
// burst; each admitted batch spends one token.
type bucket struct {
	tokens   float64
	last     time.Time
	admitted uint64
	dropped  uint64
}

type admission struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	tenants map[string]*bucket
}

func newAdmission(opts AdmissionOptions) *admission {
	burst := opts.Burst
	if burst <= 0 {
		burst = opts.Rate
	}
	if burst < 1 {
		burst = 1
	}
	now := opts.now
	if now == nil {
		now = time.Now
	}
	return &admission{
		rate:    opts.Rate,
		burst:   burst,
		now:     now,
		tenants: map[string]*bucket{},
	}
}

// admit spends one token from the tenant's bucket. When the bucket is dry
// it reports the wait, in whole seconds, until a full token has refilled —
// the Retry-After value. The rounding is deterministic (ceil of
// deficit/rate), so the same deficit always produces the same hint and
// tests can assert exact headers.
func (a *admission) admit(tenant string) (ok bool, retryAfter int) {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.tenants[tenant]
	if b == nil {
		b = &bucket{tokens: a.burst, last: now}
		a.tenants[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(a.burst, b.tokens+dt*a.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		b.admitted++
		return true, 0
	}
	b.dropped++
	secs := int(math.Ceil((1 - b.tokens) / a.rate))
	if secs < 1 {
		secs = 1
	}
	return false, secs
}

// snapshot returns per-tenant counters sorted by tenant for stable JSON.
func (a *admission) snapshot() []TenantAdmission {
	a.mu.Lock()
	out := make([]TenantAdmission, 0, len(a.tenants))
	for id, b := range a.tenants {
		out = append(out, TenantAdmission{Tenant: id, Admitted: b.admitted, Dropped: b.dropped})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// isIngest reports whether the request buys WAL appends — the requests
// admission control meters.
func isIngest(r *http.Request) bool {
	return r.Method == http.MethodPost && (r.URL.Path == "/v1/sessions" || r.URL.Path == "/v1/posts")
}

// admissionLimiter rejects over-budget ingest with 429 + Retry-After; the
// PR-2 client treats that exactly like the inflight limiter's shedding and
// backs off for the hinted duration.
func admissionLimiter(next http.Handler, a *admission) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !isIngest(r) {
			next.ServeHTTP(w, r)
			return
		}
		tenant := r.Header.Get(TenantHeader)
		if ok, retryAfter := a.admit(tenant); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			if tenant == "" {
				tenant = "(anonymous)"
			}
			writeErr(w, http.StatusTooManyRequests, "tenant %s over ingest budget (%g batches/sec)", tenant, a.rate)
			return
		}
		next.ServeHTTP(w, r)
	})
}
