package usaas

import (
	"sort"

	"usersignals/internal/nlp"
	"usersignals/internal/social"
	"usersignals/internal/timeline"
)

// Trend is an emerging topic surfaced by the miner: a term whose
// popularity-weighted discussion volume surged from a silent baseline.
type Trend struct {
	Term string
	// FirstDay is the first day of the surge window.
	FirstDay timeline.Day
	// Weight is the popularity-weighted volume over the surge window.
	Weight float64
	// PositiveShare is the fraction of surge posts with positive-leaning
	// sentiment (the roaming discussions were positive).
	PositiveShare float64
}

// TrendOptions tunes MineTrends.
type TrendOptions struct {
	// WindowDays is the surge-detection window (default 7).
	WindowDays int
	// MinWeight is the minimum windowed weight to call a surge
	// (default 40).
	MinWeight float64
	// BaselineMax is the maximum average daily weight allowed over the
	// 30 days before the surge for the term to count as *emerging*
	// (default 1).
	BaselineMax float64
	// MaxTerms bounds the result (default 20).
	MaxTerms int
	// Bigrams additionally mines adjacent stem pairs ("roam enabl") —
	// the paper reports both "roaming" and "roaming enabled" as the
	// surge's most common terms.
	Bigrams bool
}

func (o TrendOptions) withDefaults() TrendOptions {
	if o.WindowDays <= 0 {
		o.WindowDays = 7
	}
	if o.MinWeight <= 0 {
		o.MinWeight = 40
	}
	if o.BaselineMax <= 0 {
		o.BaselineMax = 1
	}
	if o.MaxTerms <= 0 {
		o.MaxTerms = 60
	}
	return o
}

// MineTrends implements the §4.1 early-detection pipeline: it weights each
// post by its community traction (log of upvotes+comments), accumulates
// per-day stemmed-term weights, and reports terms whose windowed weight
// surges out of a silent baseline — the mechanism that surfaced "roaming"
// two weeks before the official announcement. The accumulation runs on the
// fused corpus sweep (sweep.go) over cached token streams; the surge scan
// itself is scanTrends, shared with the sweep.
func MineTrends(c *social.Corpus, an *nlp.Analyzer, opts TrendOptions) []Trend {
	return SweepCorpus(c, an, SweepOptions{Trends: &opts}).Trends
}

// sortTrends orders trends by weight (descending), ties broken by term for
// determinism.
func sortTrends(out []Trend) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Term < out[j].Term
	})
}

// LeadTime returns how many days before reference the term surged, or
// (0, false) if the term never surfaced before it.
func LeadTime(trends []Trend, term string, reference timeline.Day) (int, bool) {
	stem := nlp.Stem(term)
	for _, tr := range trends {
		if tr.Term == stem && tr.FirstDay < reference {
			return int(reference - tr.FirstDay), true
		}
	}
	return 0, false
}
