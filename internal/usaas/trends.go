package usaas

import (
	"math"
	"sort"

	"usersignals/internal/nlp"
	"usersignals/internal/social"
	"usersignals/internal/timeline"
)

// Trend is an emerging topic surfaced by the miner: a term whose
// popularity-weighted discussion volume surged from a silent baseline.
type Trend struct {
	Term string
	// FirstDay is the first day of the surge window.
	FirstDay timeline.Day
	// Weight is the popularity-weighted volume over the surge window.
	Weight float64
	// PositiveShare is the fraction of surge posts with positive-leaning
	// sentiment (the roaming discussions were positive).
	PositiveShare float64
}

// TrendOptions tunes MineTrends.
type TrendOptions struct {
	// WindowDays is the surge-detection window (default 7).
	WindowDays int
	// MinWeight is the minimum windowed weight to call a surge
	// (default 40).
	MinWeight float64
	// BaselineMax is the maximum average daily weight allowed over the
	// 30 days before the surge for the term to count as *emerging*
	// (default 1).
	BaselineMax float64
	// MaxTerms bounds the result (default 20).
	MaxTerms int
	// Bigrams additionally mines adjacent stem pairs ("roam enabl") —
	// the paper reports both "roaming" and "roaming enabled" as the
	// surge's most common terms.
	Bigrams bool
}

func (o TrendOptions) withDefaults() TrendOptions {
	if o.WindowDays <= 0 {
		o.WindowDays = 7
	}
	if o.MinWeight <= 0 {
		o.MinWeight = 40
	}
	if o.BaselineMax <= 0 {
		o.BaselineMax = 1
	}
	if o.MaxTerms <= 0 {
		o.MaxTerms = 60
	}
	return o
}

// MineTrends implements the §4.1 early-detection pipeline: it weights each
// post by its community traction (log of upvotes+comments), accumulates
// per-day stemmed-term weights, and reports terms whose windowed weight
// surges out of a silent baseline — the mechanism that surfaced "roaming"
// two weeks before the official announcement.
func MineTrends(c *social.Corpus, an *nlp.Analyzer, opts TrendOptions) []Trend {
	opts = opts.withDefaults()
	days := c.Window.Len()

	// Per-day term weights and per-term positive/total post counts.
	type termDay struct {
		weight map[timeline.Day]float64
		pos    int
		total  int
	}
	terms := map[string]*termDay{}
	c.Window.Days(func(d timeline.Day) {
		for _, p := range c.OnDay(d) {
			w := 1 + math.Log1p(float64(p.Upvotes+p.Comments))
			s := an.Score(p.Text())
			positive := s.Positive > s.Negative
			seen := map[string]bool{}
			record := func(term string) {
				if seen[term] {
					return
				}
				seen[term] = true
				td := terms[term]
				if td == nil {
					td = &termDay{weight: map[timeline.Day]float64{}}
					terms[term] = td
				}
				td.weight[d] += w
				td.total++
				if positive {
					td.pos++
				}
			}
			prev := ""
			for _, tok := range nlp.ContentTokens(p.Text()) {
				stem := nlp.Stem(tok)
				record(stem)
				if opts.Bigrams && prev != "" {
					record(prev + " " + stem)
				}
				prev = stem
			}
		}
	})

	var out []Trend
	for term, td := range terms {
		// Scan for the first window whose weight crosses MinWeight with a
		// quiet 30-day baseline before it. Windows in the first 30 days
		// have no baseline to judge against, so they cannot qualify —
		// otherwise the corpus's ordinary vocabulary would all "emerge"
		// on day one.
		for i := 30; i+opts.WindowDays <= days; i++ {
			start := c.Window.From + timeline.Day(i)
			var windowW float64
			for j := 0; j < opts.WindowDays; j++ {
				windowW += td.weight[start+timeline.Day(j)]
			}
			if windowW < opts.MinWeight {
				continue
			}
			var baseW float64
			baseDays := 0
			for j := 1; j <= 30; j++ {
				d := start - timeline.Day(j)
				if d < c.Window.From {
					break
				}
				baseW += td.weight[d]
				baseDays++
			}
			if baseDays > 0 && baseW/float64(baseDays) > opts.BaselineMax {
				break // established topic, not emerging
			}
			// Anchor the trend at the first day inside the window that
			// actually carries weight (not the window's leading edge),
			// and measure the surge weight from there so a surge that
			// starts mid-window is not under-weighted.
			first := start
			for j := 0; j < opts.WindowDays; j++ {
				if td.weight[start+timeline.Day(j)] > 0 {
					first = start + timeline.Day(j)
					break
				}
			}
			surgeW := 0.0
			for j := 0; j < opts.WindowDays; j++ {
				surgeW += td.weight[first+timeline.Day(j)]
			}
			out = append(out, Trend{
				Term:          term,
				FirstDay:      first,
				Weight:        surgeW,
				PositiveShare: float64(td.pos) / float64(td.total),
			})
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Term < out[j].Term
	})
	if len(out) > opts.MaxTerms {
		out = out[:opts.MaxTerms]
	}
	return out
}

// LeadTime returns how many days before reference the term surged, or
// (0, false) if the term never surfaced before it.
func LeadTime(trends []Trend, term string, reference timeline.Day) (int, bool) {
	stem := nlp.Stem(term)
	for _, tr := range trends {
		if tr.Term == stem && tr.FirstDay < reference {
			return int(reference - tr.FirstDay), true
		}
	}
	return 0, false
}
