package usaas

import (
	"encoding/json"
	"math"
	"sort"

	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// This file turns §3.3's observation — "user engagement could be considered
// as early and more readily available indication of call quality" — into a
// monitoring system: daily engagement aggregates, an incident detector over
// them, and the survey-based strawman that shows *why* engagement is the
// better signal (at production survey rates there simply are not enough
// ratings per day to see an incident).

// DayEngagement is one day of aggregated engagement telemetry.
type DayEngagement struct {
	Day      timeline.Day
	Sessions int
	Presence float64 // mean presence %
	CamOn    float64
	MicOn    float64
	// Ratings and MOS summarize whatever explicit feedback the day has;
	// MOS is NaN when no session was surveyed.
	Ratings int
	MOS     float64
}

// dayEngagementWire is the JSON form: MOS is nullable because NaN (no
// ratings that day) has no JSON representation.
type dayEngagementWire struct {
	Day      timeline.Day `json:"day"`
	Sessions int          `json:"sessions"`
	Presence float64      `json:"presence"`
	CamOn    float64      `json:"cam_on"`
	MicOn    float64      `json:"mic_on"`
	Ratings  int          `json:"ratings"`
	MOS      *float64     `json:"mos,omitempty"`
}

// MarshalJSON encodes a missing MOS (NaN) as null.
func (d DayEngagement) MarshalJSON() ([]byte, error) {
	w := dayEngagementWire{
		Day: d.Day, Sessions: d.Sessions,
		Presence: d.Presence, CamOn: d.CamOn, MicOn: d.MicOn,
		Ratings: d.Ratings,
	}
	if !math.IsNaN(d.MOS) {
		mos := d.MOS
		w.MOS = &mos
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes null/absent MOS back to NaN.
func (d *DayEngagement) UnmarshalJSON(data []byte) error {
	var w dayEngagementWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*d = DayEngagement{
		Day: w.Day, Sessions: w.Sessions,
		Presence: w.Presence, CamOn: w.CamOn, MicOn: w.MicOn,
		Ratings: w.Ratings, MOS: math.NaN(),
	}
	if w.MOS != nil {
		d.MOS = *w.MOS
	}
	return nil
}

// Of reads one engagement metric from the aggregate.
func (d DayEngagement) Of(eng telemetry.Engagement) float64 {
	switch eng {
	case telemetry.Presence:
		return d.Presence
	case telemetry.CamOn:
		return d.CamOn
	case telemetry.MicOn:
		return d.MicOn
	default:
		return math.NaN()
	}
}

// dayAcc accumulates one calendar day's engagement telemetry. It is also
// the unit of the store's incrementally maintained daily view (views.go).
type dayAcc struct {
	pres, cam, mic stats.Online
	ratings        []int
}

// add folds one session into the day.
func (a *dayAcc) add(r *telemetry.SessionRecord) {
	a.pres.Add(r.PresencePct)
	a.cam.Add(r.CamOnPct)
	a.mic.Add(r.MicOnPct)
	if r.Rated {
		a.ratings = append(a.ratings, r.Rating)
	}
}

// dayEngagementFrom snapshots per-day accumulators as the sorted series.
// Read-only on the accumulators.
func dayEngagementFrom(byDay map[timeline.Day]*dayAcc) []DayEngagement {
	out := make([]DayEngagement, 0, len(byDay))
	for d, a := range byDay {
		de := DayEngagement{
			Day:      d,
			Sessions: a.pres.N(),
			Presence: a.pres.Mean(),
			CamOn:    a.cam.Mean(),
			MicOn:    a.mic.Mean(),
			Ratings:  len(a.ratings),
			MOS:      math.NaN(),
		}
		if mos, ok := telemetry.MOS(a.ratings); ok {
			de.MOS = mos
		}
		out = append(out, de)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}

// DailyEngagement aggregates sessions by calendar day (UTC), sorted.
// Days without sessions are absent.
func DailyEngagement(records []telemetry.SessionRecord, filter telemetry.Filter) []DayEngagement {
	byDay := map[timeline.Day]*dayAcc{}
	for i := range records {
		r := &records[i]
		if filter != nil && !filter(r) {
			continue
		}
		d := timeline.DayOf(r.Start)
		a := byDay[d]
		if a == nil {
			a = &dayAcc{}
			byDay[d] = a
		}
		a.add(r)
	}
	return dayEngagementFrom(byDay)
}

// Incident is a detected span of degraded experience.
type Incident struct {
	Start, End timeline.Day
	// Drop is the worst relative drop versus the trailing baseline.
	Drop float64
}

// Contains reports whether the day falls inside the incident.
func (in Incident) Contains(d timeline.Day) bool { return d >= in.Start && d <= in.End }

// IncidentOptions tunes DetectIncidents.
type IncidentOptions struct {
	// Baseline is the trailing window length in days (default 14).
	Baseline int
	// MinDrop is the minimum relative drop versus the baseline median to
	// flag a day (default 0.08).
	MinDrop float64
	// MinSessions skips days with fewer sessions (default 10).
	MinSessions int
}

func (o IncidentOptions) withDefaults() IncidentOptions {
	if o.Baseline <= 0 {
		o.Baseline = 14
	}
	if o.MinDrop <= 0 {
		o.MinDrop = 0.08
	}
	if o.MinSessions <= 0 {
		o.MinSessions = 10
	}
	return o
}

// DetectIncidents flags days whose value (per the extract function) falls
// MinDrop below the trailing-baseline median, merging consecutive flagged
// days into incidents. Baseline days that were themselves flagged are
// excluded from subsequent baselines so long incidents don't poison their
// own reference.
func DetectIncidents(days []DayEngagement, extract func(DayEngagement) float64, opts IncidentOptions) []Incident {
	opts = opts.withDefaults()
	flagged := make([]bool, len(days))
	drops := make([]float64, len(days))
	for i := range days {
		if days[i].Sessions < opts.MinSessions {
			continue
		}
		v := extract(days[i])
		if math.IsNaN(v) {
			continue
		}
		var base []float64
		for j := i - 1; j >= 0 && len(base) < opts.Baseline; j-- {
			if flagged[j] || days[j].Sessions < opts.MinSessions {
				continue
			}
			bv := extract(days[j])
			if !math.IsNaN(bv) {
				base = append(base, bv)
			}
		}
		if len(base) < 5 {
			continue
		}
		med := stats.Median(base)
		if med <= 0 {
			continue
		}
		drop := (med - v) / med
		if drop >= opts.MinDrop {
			flagged[i] = true
			drops[i] = drop
		}
	}
	// Merge runs of flagged days (allowing single-day gaps, since a noisy
	// mid-incident day shouldn't split one incident into two).
	var out []Incident
	i := 0
	for i < len(days) {
		if !flagged[i] {
			i++
			continue
		}
		j := i
		worst := drops[i]
		for j+1 < len(days) {
			next := j + 1
			if flagged[next] {
				j = next
				if drops[next] > worst {
					worst = drops[next]
				}
				continue
			}
			if next+1 < len(days) && flagged[next+1] && days[next+1].Day-days[j].Day <= 2 {
				j = next + 1
				if drops[j] > worst {
					worst = drops[j]
				}
				continue
			}
			break
		}
		out = append(out, Incident{Start: days[i].Day, End: days[j].Day, Drop: worst})
		i = j + 1
	}
	return out
}

// EngagementIncidents runs the detector on one engagement metric.
func EngagementIncidents(days []DayEngagement, eng telemetry.Engagement, opts IncidentOptions) []Incident {
	return DetectIncidents(days, func(d DayEngagement) float64 { return d.Of(eng) }, opts)
}

// MOSIncidents runs the same detector on daily mean MOS — the survey-only
// strawman. At realistic survey rates most days have no ratings at all, so
// this monitor is structurally blind; the comparison quantifies the
// paper's coverage argument.
func MOSIncidents(days []DayEngagement, opts IncidentOptions) []Incident {
	return DetectIncidents(days, func(d DayEngagement) float64 {
		if d.Ratings == 0 {
			return math.NaN()
		}
		return d.MOS
	}, opts)
}

// IncidentRecall reports the fraction of truth days covered by detected
// incidents, and the number of detected days outside the truth window
// (false-positive days).
func IncidentRecall(incidents []Incident, truth timeline.Range) (recall float64, falseDays int) {
	if truth.Len() <= 0 {
		return math.NaN(), 0
	}
	covered := 0
	truth.Days(func(d timeline.Day) {
		for _, in := range incidents {
			if in.Contains(d) {
				covered++
				return
			}
		}
	})
	for _, in := range incidents {
		for d := in.Start; d <= in.End; d++ {
			if !truth.Contains(d) {
				falseDays++
			}
		}
	}
	return float64(covered) / float64(truth.Len()), falseDays
}
