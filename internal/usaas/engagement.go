// Package usaas implements User Signals as-a-Service, the framework the
// paper proposes in §5: a service that ingests implicit user signals
// (in-call actions), sparse explicit feedback (MOS surveys), and offline
// explicit feedback (social posts), correlates them with network
// conditions, and serves user-centric insights back to network and service
// operators.
//
// The analysis engines mirror the paper's studies —
//
//   - engagement.go: dose-response of engagement vs network conditions with
//     confounder control (Fig. 1), compounding grids (Fig. 2), platform
//     stratification (Fig. 3);
//   - mos.go: engagement↔MOS correlation (Fig. 4), the engagement-based
//     MOS predictor (§5), and the survey-coverage comparison that motivates
//     the whole paper;
//   - sentiment.go: daily sentiment series, peak detection and news
//     annotation (Fig. 5), the outage-keyword monitor with its
//     Downdetector-style baseline (Fig. 6);
//   - speeds.go: OCR-extracted monthly speed medians with launch/subscriber
//     annotations and the conditioning analysis (Fig. 7);
//   - trends.go: the popularity-weighted early-trend miner (roaming);
//
// and service.go/client.go expose them over HTTP.
package usaas

import (
	"math"
	"sort"

	"usersignals/internal/parallel"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// DoseResponse bins one engagement metric by one per-session network metric
// over the filtered records: the Fig. 1 curves. The returned series is the
// per-bin mean engagement (in percent). Work is sharded across one worker
// per CPU; see DoseResponseN for the determinism contract.
func DoseResponse(records []telemetry.SessionRecord, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, filter telemetry.Filter) (stats.BinnedSeries, error) {
	return DoseResponseN(records, metric, eng, b, filter, 0)
}

// DoseResponseN is DoseResponse over an explicit worker count (<= 0 means
// one per CPU). Records are sharded into canonical chunks whose per-bin
// accumulators merge in chunk order, so the result is bit-identical at any
// worker count — parallelism never changes figure shapes.
func DoseResponseN(records []telemetry.SessionRecord, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, filter telemetry.Filter, workers int) (stats.BinnedSeries, error) {
	mf, ef := metric.Accessor(), eng.Accessor()
	shards, err := parallel.Map(workers, parallel.Chunks(len(records)), func(i int) (*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, len(records))
		acc := stats.NewBinAcc(b)
		for j := lo; j < hi; j++ {
			r := &records[j]
			if filter != nil && !filter(r) {
				continue
			}
			acc.Add(mf(&r.Net), ef(r))
		}
		return acc, nil
	})
	if err != nil {
		return stats.BinnedSeries{}, err
	}
	total := stats.NewBinAcc(b)
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return stats.BinnedSeries{}, err
		}
	}
	return total.Series(), nil
}

// doseResponseRows is DoseResponseN over a chunked row snapshot. The block
// size is a multiple of the canonical chunk size, so every chunk is one
// contiguous sub-slice and the per-chunk loop (and therefore every float)
// is identical to the flat-slice run.
func doseResponseRows(rows Rows, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, filter telemetry.Filter, workers int) (stats.BinnedSeries, error) {
	mf, ef := metric.Accessor(), eng.Accessor()
	shards, err := parallel.Map(workers, parallel.Chunks(rows.Len()), func(i int) (*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, rows.Len())
		records := rows.Chunk(lo, hi)
		acc := stats.NewBinAcc(b)
		for j := range records {
			r := &records[j]
			if filter != nil && !filter(r) {
				continue
			}
			acc.Add(mf(&r.Net), ef(r))
		}
		return acc, nil
	})
	if err != nil {
		return stats.BinnedSeries{}, err
	}
	total := stats.NewBinAcc(b)
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return stats.BinnedSeries{}, err
		}
	}
	return total.Series(), nil
}

// dayBins is the per-calendar-day accumulator map behind the daily
// dose-response fold: sessions accumulate into their start day's bin
// accumulator in arrival order, and foldDayBins merges the days ascending.
// Because a day's sessions always land on (and stay on) one shard, the fold
// is a pure function of the ingested records — independent of batch shape,
// worker count, and shard count.
type dayBins map[timeline.Day]*stats.BinAcc

// add folds one record into its day accumulator.
func (m dayBins) add(d timeline.Day, b stats.Binner, x, y float64) *stats.BinAcc {
	acc := m[d]
	if acc == nil {
		acc = stats.NewBinAcc(b)
		m[d] = acc
	}
	acc.Add(x, y)
	return acc
}

// foldDayBins merges per-day accumulators into one, strictly ascending by
// day — the canonical order every replica of this computation uses.
func foldDayBins(b stats.Binner, days dayBins) *stats.BinAcc {
	keys := make([]timeline.Day, 0, len(days))
	for d := range days {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	total := stats.NewBinAcc(b)
	for _, d := range keys {
		_ = total.Merge(days[d]) // same binner by construction
	}
	return total
}

// DoseResponseDaily is the day-partitioned form of DoseResponse: records
// accumulate per calendar day (of session start) in record order, and the
// days fold together ascending. This is the computation the materialized
// dose-response views and the cluster coordinator both replicate, so a
// sharded answer is byte-identical to this single-pass reference.
func DoseResponseDaily(records []telemetry.SessionRecord, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, filter telemetry.Filter) stats.BinnedSeries {
	mf, ef := metric.Accessor(), eng.Accessor()
	days := dayBins{}
	for i := range records {
		r := &records[i]
		if filter != nil && !filter(r) {
			continue
		}
		days.add(timeline.DayOf(r.Start), b, mf(&r.Net), ef(r))
	}
	return foldDayBins(b, days).Series()
}

// StudyFilter composes the §3.1 cohort with the §3.2 control bands for the
// varied metric — the standard Fig. 1 filter.
func StudyFilter(vary telemetry.Metric) telemetry.Filter {
	return telemetry.And(telemetry.StudyCohort(), telemetry.ControlBands(vary))
}

// Normalize100 rescales a series so its maximum bin equals 100, matching
// the paper's relative-engagement axes. Empty bins stay NaN.
func Normalize100(s stats.BinnedSeries) stats.BinnedSeries {
	best := math.Inf(-1)
	for i, y := range s.Y {
		if s.Count[i] > 0 && y > best {
			best = y
		}
	}
	out := stats.BinnedSeries{
		X:     append([]float64(nil), s.X...),
		Y:     make([]float64, len(s.Y)),
		Count: append([]int(nil), s.Count...),
	}
	for i, y := range s.Y {
		if s.Count[i] == 0 || best <= 0 {
			out.Y[i] = math.NaN()
			continue
		}
		out.Y[i] = 100 * y / best
	}
	return out
}

// RelativeDrop summarizes a dose-response curve: the relative fall (0–1)
// from the best non-empty bin to the last non-empty bin. This is the
// number the paper quotes ("Mic On reduces by more than 25%").
func RelativeDrop(s stats.BinnedSeries) float64 {
	ne := s.NonEmpty()
	if len(ne.Y) < 2 {
		return math.NaN()
	}
	best := stats.Max(ne.Y)
	last := ne.Y[len(ne.Y)-1]
	if best <= 0 {
		return math.NaN()
	}
	return (best - last) / best
}

// HalfSlopes measures curve shape: the mean per-unit slope over the first
// and second halves of the non-empty series. The Fig. 1 Mic On claim is
// |first| > |second| (steep, then plateau).
func HalfSlopes(s stats.BinnedSeries) (first, second float64) {
	ne := s.NonEmpty()
	n := len(ne.X)
	if n < 4 {
		return math.NaN(), math.NaN()
	}
	mid := n / 2
	f, _ := stats.TrendSlope(ne.X[:mid+1], ne.Y[:mid+1])
	g, _ := stats.TrendSlope(ne.X[mid:], ne.Y[mid:])
	return f, g
}

// Compounding computes the 2D latency×loss grid of mean engagement — Fig. 2
// — over the filtered records, sharded across one worker per CPU.
func Compounding(records []telemetry.SessionRecord, xMetric, yMetric telemetry.Metric, eng telemetry.Engagement, xb, yb stats.Binner, filter telemetry.Filter) (stats.Grid2D, error) {
	return CompoundingN(records, xMetric, yMetric, eng, xb, yb, filter, 0)
}

// CompoundingN is Compounding over an explicit worker count, with the same
// canonical-chunk determinism contract as DoseResponseN.
func CompoundingN(records []telemetry.SessionRecord, xMetric, yMetric telemetry.Metric, eng telemetry.Engagement, xb, yb stats.Binner, filter telemetry.Filter, workers int) (stats.Grid2D, error) {
	xf, yf, ef := xMetric.Accessor(), yMetric.Accessor(), eng.Accessor()
	shards, err := parallel.Map(workers, parallel.Chunks(len(records)), func(i int) (*stats.Grid2DAcc, error) {
		lo, hi := parallel.ChunkBounds(i, len(records))
		acc := stats.NewGrid2DAcc(xb, yb)
		for j := lo; j < hi; j++ {
			r := &records[j]
			if filter != nil && !filter(r) {
				continue
			}
			acc.Add(xf(&r.Net), yf(&r.Net), ef(r))
		}
		return acc, nil
	})
	if err != nil {
		return stats.Grid2D{}, err
	}
	total := stats.NewGrid2DAcc(xb, yb)
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return stats.Grid2D{}, err
		}
	}
	return total.Grid(), nil
}

// compoundingRows is CompoundingN over a chunked row snapshot; see
// doseResponseRows for the equivalence argument.
func compoundingRows(rows Rows, xMetric, yMetric telemetry.Metric, eng telemetry.Engagement, xb, yb stats.Binner, filter telemetry.Filter, workers int) (stats.Grid2D, error) {
	xf, yf, ef := xMetric.Accessor(), yMetric.Accessor(), eng.Accessor()
	shards, err := parallel.Map(workers, parallel.Chunks(rows.Len()), func(i int) (*stats.Grid2DAcc, error) {
		lo, hi := parallel.ChunkBounds(i, rows.Len())
		records := rows.Chunk(lo, hi)
		acc := stats.NewGrid2DAcc(xb, yb)
		for j := range records {
			r := &records[j]
			if filter != nil && !filter(r) {
				continue
			}
			acc.Add(xf(&r.Net), yf(&r.Net), ef(r))
		}
		return acc, nil
	})
	if err != nil {
		return stats.Grid2D{}, err
	}
	total := stats.NewGrid2DAcc(xb, yb)
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return stats.Grid2D{}, err
		}
	}
	return total.Grid(), nil
}

// ByPlatform computes one dose-response series per platform — Fig. 3 —
// sharded across one worker per CPU.
func ByPlatform(records []telemetry.SessionRecord, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, filter telemetry.Filter) (map[string]stats.BinnedSeries, error) {
	return ByPlatformN(records, metric, eng, b, filter, 0)
}

// ByPlatformN is ByPlatform over an explicit worker count: each chunk keeps
// one accumulator per platform it encounters, and the per-platform
// accumulators merge in chunk order.
func ByPlatformN(records []telemetry.SessionRecord, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, filter telemetry.Filter, workers int) (map[string]stats.BinnedSeries, error) {
	mf, ef := metric.Accessor(), eng.Accessor()
	shards, err := parallel.Map(workers, parallel.Chunks(len(records)), func(i int) (map[string]*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, len(records))
		accs := map[string]*stats.BinAcc{}
		for j := lo; j < hi; j++ {
			r := &records[j]
			if filter != nil && !filter(r) {
				continue
			}
			acc := accs[r.Platform]
			if acc == nil {
				acc = stats.NewBinAcc(b)
				accs[r.Platform] = acc
			}
			acc.Add(mf(&r.Net), ef(r))
		}
		return accs, nil
	})
	if err != nil {
		return nil, err
	}
	merged := map[string]*stats.BinAcc{}
	for _, shard := range shards {
		for platform, acc := range shard {
			if total := merged[platform]; total != nil {
				if err := total.Merge(acc); err != nil {
					return nil, err
				}
			} else {
				merged[platform] = acc
			}
		}
	}
	out := make(map[string]stats.BinnedSeries, len(merged))
	for platform, acc := range merged {
		out[platform] = acc.Series()
	}
	return out, nil
}

// byPlatformRows is ByPlatformN over a chunked row snapshot; see
// doseResponseRows for the equivalence argument.
func byPlatformRows(rows Rows, metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, filter telemetry.Filter, workers int) (map[string]stats.BinnedSeries, error) {
	mf, ef := metric.Accessor(), eng.Accessor()
	shards, err := parallel.Map(workers, parallel.Chunks(rows.Len()), func(i int) (map[string]*stats.BinAcc, error) {
		lo, hi := parallel.ChunkBounds(i, rows.Len())
		records := rows.Chunk(lo, hi)
		accs := map[string]*stats.BinAcc{}
		for j := range records {
			r := &records[j]
			if filter != nil && !filter(r) {
				continue
			}
			acc := accs[r.Platform]
			if acc == nil {
				acc = stats.NewBinAcc(b)
				accs[r.Platform] = acc
			}
			acc.Add(mf(&r.Net), ef(r))
		}
		return accs, nil
	})
	if err != nil {
		return nil, err
	}
	merged := map[string]*stats.BinAcc{}
	for _, shard := range shards {
		for platform, acc := range shard {
			if total := merged[platform]; total != nil {
				if err := total.Merge(acc); err != nil {
					return nil, err
				}
			} else {
				merged[platform] = acc
			}
		}
	}
	out := make(map[string]stats.BinnedSeries, len(merged))
	for platform, acc := range merged {
		out[platform] = acc.Series()
	}
	return out, nil
}
