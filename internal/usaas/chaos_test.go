package usaas

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"usersignals/internal/faults"
	"usersignals/internal/telemetry"
)

// pipelineResult captures everything the chaos test compares between a
// fault-free and a faulted run: the analysis products and the store state.
type pipelineResult struct {
	Sessions   int
	Posts      int
	Engagement []byte
	MOS        []byte
	Report     []byte
}

// runChaosPipeline drives generate→ingest→query through optional client and
// server fault injectors. Ingest uses fixed per-chunk batch IDs so retried
// deliveries dedup, and the final analyses are fetched over the same faulty
// path.
func runChaosPipeline(t *testing.T, clientFaults, serverFaults *faults.Injector) pipelineResult {
	t.Helper()
	c, news, cfg := studyCorpus(t)
	recs := mixDataset(t)
	if len(recs) > 1200 {
		recs = recs[:1200]
	}
	posts := c.Posts
	if len(posts) > 1200 {
		posts = posts[:1200]
	}

	store := &Store{}
	srv := NewServer(store, ServerOptions{News: news, Model: cfg.Model})
	handler := srv.Handler()
	if serverFaults != nil {
		handler = serverFaults.Middleware(handler)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	transport := ts.Client().Transport
	if clientFaults != nil {
		transport = clientFaults.Transport(transport)
	}
	client := NewClientWithOptions(ts.URL, ClientOptions{
		HTTPClient: &http.Client{Transport: transport},
		Retry:      RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Nanosecond, MaxBackoff: time.Microsecond},
		Breaker:    BreakerPolicy{FailureThreshold: -1},
		Sleep:      func(time.Duration) {},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Ingest both signal families in chunks, each under a stable batch ID:
	// exactly what a real uploader resuming over a flaky network would do.
	const chunks = 4
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(recs)/chunks, (i+1)*len(recs)/chunks
		if _, err := client.IngestSessionsBatch(ctx, fmt.Sprintf("chaos-sess-%d", i), recs[lo:hi]); err != nil {
			t.Fatalf("session chunk %d: %v", i, err)
		}
		lo, hi = i*len(posts)/chunks, (i+1)*len(posts)/chunks
		if _, err := client.IngestPostsBatch(ctx, fmt.Sprintf("chaos-post-%d", i), posts[lo:hi]); err != nil {
			t.Fatalf("post chunk %d: %v", i, err)
		}
	}

	// Replay one already-acknowledged batch, as a retrying client whose
	// first acknowledgement was lost would: the store must not grow.
	beforeS, beforeP := store.Counts()
	dup, err := client.IngestSessionsBatch(ctx, "chaos-sess-0", recs[:len(recs)/chunks])
	if err != nil {
		t.Fatalf("batch replay: %v", err)
	}
	if !dup.Duplicate {
		t.Fatalf("replayed batch not flagged duplicate: %+v", dup)
	}
	afterS, afterP := store.Counts()
	if afterS != beforeS || afterP != beforeP {
		t.Fatalf("replayed batch grew the store: %d/%d → %d/%d", beforeS, beforeP, afterS, afterP)
	}

	var out pipelineResult
	out.Sessions, out.Posts = store.Counts()

	eng, err := client.Engagement(ctx, EngagementQuery{
		Metric: telemetry.LatencyMean, Engagement: telemetry.MicOn,
		Lo: 0, Hi: 300, Bins: 8,
	})
	if err != nil {
		t.Fatalf("engagement query: %v", err)
	}
	if out.Engagement, err = json.Marshal(eng); err != nil {
		t.Fatal(err)
	}
	mos, err := client.MOS(ctx)
	if err != nil {
		t.Fatalf("mos query: %v", err)
	}
	if out.MOS, err = json.Marshal(mos); err != nil {
		t.Fatal(err)
	}
	rep, err := client.Report(ctx)
	if err != nil {
		t.Fatalf("report query: %v", err)
	}
	if out.Report, err = json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChaosPipelineFaultsAreInvisible is the acceptance gate for the fault
// layer: with >20% of requests failing (deterministically, per seed), the
// retrying client plus idempotent ingest must deliver analysis results
// byte-identical to a fault-free run. Faults may cost latency, never
// science.
func TestChaosPipelineFaultsAreInvisible(t *testing.T) {
	baseline := runChaosPipeline(t, nil, nil)
	if baseline.Sessions == 0 || baseline.Posts == 0 {
		t.Fatalf("baseline ingested %d/%d", baseline.Sessions, baseline.Posts)
	}

	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clientFaults := faults.New(faults.Plan{
				Seed:       seed,
				ConnErrP:   0.10,
				StatusP:    0.10,
				TruncateP:  0.05,
				RetryAfter: time.Second,
			})
			serverFaults := faults.New(faults.Plan{
				Seed:       seed + 1000,
				StatusP:    0.08,
				DropReplyP: 0.08,
				RetryAfter: time.Second,
			})
			got := runChaosPipeline(t, clientFaults, serverFaults)

			cc, sc := clientFaults.Counts(), serverFaults.Counts()
			faultsSeen := cc.Faults() + sc.Faults()
			// Requests are double-counted across the two injectors only for
			// attempts that reach the server; the client injector sees every
			// attempt, so rate against it.
			if cc.Requests == 0 {
				t.Fatal("client injector saw no requests")
			}
			rate := float64(faultsSeen) / float64(cc.Requests)
			t.Logf("requests=%d faults=%d (%.0f%%: conn=%d clientStatus=%d trunc=%d serverStatus=%d dropped=%d)",
				cc.Requests, faultsSeen, 100*rate, cc.ConnErrs, cc.Statuses, cc.Truncated, sc.Statuses, sc.DroppedOKs)
			if rate < 0.20 {
				t.Fatalf("fault rate %.2f below the 20%% acceptance floor", rate)
			}

			if got.Sessions != baseline.Sessions || got.Posts != baseline.Posts {
				t.Fatalf("store counts %d/%d differ from fault-free %d/%d — lost or duplicated ingest",
					got.Sessions, got.Posts, baseline.Sessions, baseline.Posts)
			}
			if string(got.Engagement) != string(baseline.Engagement) {
				t.Fatalf("engagement differs under faults:\n got %s\nwant %s", got.Engagement, baseline.Engagement)
			}
			if string(got.MOS) != string(baseline.MOS) {
				t.Fatalf("MOS differs under faults:\n got %s\nwant %s", got.MOS, baseline.MOS)
			}
			if string(got.Report) != string(baseline.Report) {
				t.Fatalf("report differs under faults:\n got %s\nwant %s", got.Report, baseline.Report)
			}
		})
	}
}

// TestChaosRunsAreDeterministic pins the reproducibility contract of the
// injector itself end-to-end: the same seed must replay the same fault
// sequence, fault for fault.
func TestChaosRunsAreDeterministic(t *testing.T) {
	run := func() faults.Counts {
		in := faults.New(faults.Plan{Seed: 42, ConnErrP: 0.15, StatusP: 0.15, TruncateP: 0.05})
		runChaosPipeline(t, in, nil)
		return in.Counts()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault history: %+v vs %+v", a, b)
	}
	if a.Faults() == 0 {
		t.Fatal("plan injected nothing")
	}
}
