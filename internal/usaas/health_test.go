package usaas

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestHealthEndpoints: liveness always answers; readiness follows the
// Ready hook; both bypass bearer auth so an unauthenticated supervisor
// probe works.
func TestHealthEndpoints(t *testing.T) {
	var ready atomic.Pointer[error]
	srv := NewServer(nil, ServerOptions{
		AuthToken: "secret",
		Ready: func() error {
			if e := ready.Load(); e != nil {
				return *e
			}
			return nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, HealthResponse) {
		resp, err := http.Get(ts.URL + path) // deliberately no Authorization
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
		return resp.StatusCode, h
	}

	if code, h := get("/v1/healthz"); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, h)
	}
	if code, h := get("/v1/readyz"); code != http.StatusOK || h.Status != "ready" {
		t.Fatalf("readyz while ready: %d %+v", code, h)
	}

	lagged := errors.New("replica lag 12 records exceeds bound")
	ready.Store(&lagged)
	if code, h := get("/v1/readyz"); code != http.StatusServiceUnavailable || h.Error != lagged.Error() {
		t.Fatalf("readyz while lagged: %d %+v", code, h)
	}
	ready.Store(nil)
	if code, _ := get("/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after recovery: %d", code)
	}

	// Everything else still requires the token.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/stats: %d, want 401", resp.StatusCode)
	}
}

// TestHealthBypassesInflightLimit: a node pinned at its inflight cap must
// still answer health probes — that is the whole point of the bypass.
func TestHealthBypassesInflightLimit(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	srv := NewServer(&Store{}, ServerOptions{MaxInflight: 1, RequestTimeout: 5 * time.Second})
	limited := srv.Handler()
	defer close(block)

	// Occupy the single inflight slot with a request whose response write
	// blocks until released.
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
		limited.ServeHTTP(&slowWriter{hold: block, entered: entered}, r)
	}()
	<-entered

	// The slot is held; a plain request is shed, a health probe is not.
	w2 := httptest.NewRecorder()
	limited.ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if w2.Code != http.StatusTooManyRequests {
		t.Fatalf("second request while saturated: %d, want 429", w2.Code)
	}
	w3 := httptest.NewRecorder()
	limited.ServeHTTP(w3, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if w3.Code != http.StatusOK {
		t.Fatalf("healthz while saturated: %d, want 200", w3.Code)
	}
	block <- struct{}{}
	<-done
}

// slowWriter blocks the first write until released, pinning its request
// inside the inflight limiter.
type slowWriter struct {
	hold    chan struct{}
	entered chan struct{}
	code    int
	once    bool
}

func (s *slowWriter) Header() http.Header { return http.Header{} }
func (s *slowWriter) WriteHeader(c int)   { s.code = c }
func (s *slowWriter) Write(p []byte) (int, error) {
	if !s.once {
		s.once = true
		close(s.entered)
		<-s.hold
	}
	return len(p), nil
}
