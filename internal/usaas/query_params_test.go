package usaas

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMalformedQueryParamsRejected: a malformed numeric query parameter
// must answer 400 naming the offending key, never silently fall back to
// the default. Absent and empty parameters still default.
func TestMalformedQueryParamsRejected(t *testing.T) {
	store := &Store{}
	ts := httptest.NewServer(NewServer(store, ServerOptions{ResultCacheSize: -1}).Handler())
	defer ts.Close()

	cases := []struct {
		path string
		key  string // must be named in the error body
	}{
		{"/v1/insights/incidents?engagement=presence&min_drop=xyz", "min_drop"},
		{"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence&bins=abc", "bins"},
		{"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence&lo=1..5", "lo"},
		{"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence&hi=fast", "hi"},
		{"/v1/insights/mos?bins=many", "bins"},
		{"/v1/insights/peaks?k=abc", "k"},
		{"/v1/insights/outages?threshold=low", "threshold"},
		{"/v1/advice/deployment?horizon=soon", "horizon"},
		{"/v1/advice/deployment?sats=1e", "sats"},
		{"/v1/advice/deployment?max=none", "max"},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			resp, err := ts.Client().Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body: %s", resp.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("non-JSON error body %q: %v", body, err)
			}
			if !strings.Contains(e.Error, `"`+tc.key+`"`) {
				t.Fatalf("error %q does not name parameter %q", e.Error, tc.key)
			}
		})
	}

	// Absent or empty parameters keep defaulting: these must not 400.
	for _, path := range []string{
		"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence",
		"/v1/insights/engagement?metric=latency-mean-ms&engagement=presence&bins=",
		"/v1/insights/peaks?k=5",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusBadRequest {
			t.Fatalf("%s answered 400; defaults must still apply", path)
		}
	}
}
