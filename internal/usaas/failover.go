package usaas

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sync"
)

// Failover-aware endpoint selection for the client. With
// ClientOptions.Endpoints set, the client knows the whole replica set:
// writes aim at whichever endpoint it currently believes is the leader,
// reads fan out round-robin across every endpoint (followers serve reads
// with an explicit staleness bound), and the leader belief is corrected
// by 307/308 leader-redirects and, after write failures, by probing
// /v1/replica/status — so a client keeps ingesting across a failover
// without reconfiguration: retry-through-promotion.

// cluster is the endpoint set shared by a client and its WithToken copies.
type cluster struct {
	mu     sync.Mutex
	eps    []*url.URL
	leader int // index of the believed leader
	rr     int // read round-robin cursor
}

func newCluster(endpoints []string) *cluster {
	cl := &cluster{}
	for _, e := range endpoints {
		u, err := url.Parse(e)
		if err != nil || u.Host == "" {
			continue
		}
		u.Path, u.RawQuery, u.Fragment = "", "", ""
		cl.eps = append(cl.eps, u)
	}
	if len(cl.eps) == 0 {
		return nil
	}
	return cl
}

// leaderURL returns the endpoint writes currently aim at.
func (cl *cluster) leaderURL() *url.URL {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.eps[cl.leader]
}

// nextRead returns the next endpoint in the read rotation.
func (cl *cluster) nextRead() *url.URL {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	u := cl.eps[cl.rr%len(cl.eps)]
	cl.rr++
	return u
}

// setLeader points writes at the endpoint with index i.
func (cl *cluster) setLeader(i int) {
	cl.mu.Lock()
	if i >= 0 && i < len(cl.eps) {
		cl.leader = i
	}
	cl.mu.Unlock()
}

// noteLeaderHost records that the node at u (a redirect Location or the
// final URL of a followed redirect) is the leader. An unknown host is
// added to the endpoint set — a promotion may introduce an address the
// client was not configured with.
func (cl *cluster) noteLeaderHost(u *url.URL) {
	if u == nil || u.Host == "" {
		return
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for i, ep := range cl.eps {
		if ep.Host == u.Host {
			cl.leader = i
			return
		}
	}
	added := &url.URL{Scheme: u.Scheme, Host: u.Host}
	if added.Scheme == "" {
		added.Scheme = cl.eps[cl.leader].Scheme
	}
	cl.eps = append(cl.eps, added)
	cl.leader = len(cl.eps) - 1
}

// snapshot copies the endpoint list for iteration without the lock.
func (cl *cluster) snapshot() []*url.URL {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]*url.URL(nil), cl.eps...)
}

// retarget points req at the endpoint the next attempt should use: reads
// rotate across the replica set, everything else goes to the believed
// leader. No-op on a single-endpoint client.
func (c *Client) retarget(req *http.Request) {
	if c.cluster == nil {
		return
	}
	var ep *url.URL
	if req.Method == http.MethodGet {
		ep = c.cluster.nextRead()
	} else {
		ep = c.cluster.leaderURL()
	}
	req.URL.Scheme = ep.Scheme
	req.URL.Host = ep.Host
	req.Host = ""
}

// noteRedirect absorbs a leader-redirect error: when err is a 307/308
// carrying a Location, the client re-points its leader belief there and
// reports true so the retry loop re-sends immediately (a redirect is
// fresh routing information, not a failure worth backing off from).
func (c *Client) noteRedirect(err error) bool {
	se, ok := asStatusError(err)
	if !ok || (se.status != http.StatusTemporaryRedirect && se.status != http.StatusPermanentRedirect) {
		return false
	}
	if c.cluster != nil && se.location != "" {
		if u, perr := url.Parse(se.location); perr == nil {
			c.cluster.noteLeaderHost(u)
		}
	}
	return true
}

// probeLeader asks each endpoint for its replica status and re-points the
// leader belief at the first one that claims the leader role. Called
// after a write fails without a redirect — the old leader may simply be
// gone, and a promoted follower won't answer on the dead node's address.
// Best-effort: a cluster with no reachable leader leaves the belief as is.
func (c *Client) probeLeader(ctx context.Context) {
	if c.cluster == nil {
		return
	}
	for i, ep := range c.cluster.snapshot() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.String()+"/v1/replica/status", nil)
		if err != nil {
			continue
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			continue
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		var st struct {
			Role string `json:"role"`
		}
		if json.Unmarshal(data, &st) != nil {
			continue
		}
		if st.Role == "leader" {
			c.cluster.setLeader(i)
			return
		}
	}
}
