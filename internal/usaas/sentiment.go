package usaas

import (
	"sort"
	"usersignals/internal/newswire"
	"usersignals/internal/nlp"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/timeline"
)

// DaySentiment is one day of the Fig. 5a series.
type DaySentiment struct {
	Day       timeline.Day
	Posts     int
	StrongPos int
	StrongNeg int
}

// Strong returns the total strong-sentiment post count, the quantity whose
// peaks the paper annotates.
func (d DaySentiment) Strong() int { return d.StrongPos + d.StrongNeg }

// DailySentiment scores every post and aggregates by day over the corpus
// window. It runs on the fused sweep (sweep.go) over the corpus's cached
// token streams; the output is byte-identical to scoring each post's text
// directly (golden-tested against the naive path in sweep_test.go).
func DailySentiment(c *social.Corpus, an *nlp.Analyzer) []DaySentiment {
	return SweepCorpus(c, an, SweepOptions{Sentiment: true}).Sentiment
}

// AnnotatedPeak is a detected sentiment peak with its word-cloud keywords
// and any news coverage found for them — the full Fig. 5 pipeline output.
type AnnotatedPeak struct {
	Day       timeline.Day
	Strong    int
	StrongPos int
	StrongNeg int
	// Positive reports whether the peak leans positive.
	Positive bool
	// TopWords are the day's top word-cloud unigrams (the news-search
	// keywords).
	TopWords []nlp.WordCount
	// News holds matching coverage; empty means the pipeline found no
	// reported cause (the paper's 22 Apr '22 case).
	News []newswire.Article
}

// AnnotatePeaks runs the §4.1 pipeline: detect the top-k strong-sentiment
// peaks, build each day's word cloud, and search the news index for the
// top unigrams around the peak date.
func AnnotatePeaks(c *social.Corpus, an *nlp.Analyzer, news *newswire.Index, k int) []AnnotatedPeak {
	return annotatePeaks(c, DailySentiment(c, an), news, k)
}

// annotatePeaks is AnnotatePeaks over a precomputed daily series, so a
// caller that already ran the fused sweep (BuildReport) does not run it
// again.
func annotatePeaks(c *social.Corpus, daily []DaySentiment, news *newswire.Index, k int) []AnnotatedPeak {
	return annotatePeaksWith(daily, news, k, func(d timeline.Day) []nlp.WordCount {
		return dayWordCloud(c, d, 12)
	})
}

// annotatePeaksWith is annotatePeaks with the day word cloud abstracted: a
// single store builds each cloud from its corpus, while the cluster
// coordinator looks up clouds its shards shipped (each day's posts live
// wholly on one shard, so the shipped cloud is the same one the corpus
// would yield).
func annotatePeaksWith(daily []DaySentiment, news *newswire.Index, k int, cloud func(timeline.Day) []nlp.WordCount) []AnnotatedPeak {
	series := make([]float64, len(daily))
	for i, d := range daily {
		series[i] = float64(d.Strong())
	}
	// Detection is z-score based (a day must stand out from its local
	// baseline), but the paper's "top peaks" are the *largest* ones, so
	// rank qualifying peaks by absolute height before taking k.
	peaks := stats.DetectPeaks(series, stats.PeakOptions{Window: 21, MinScore: 4, MinValue: 20, Separation: 5})
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].Value > peaks[j].Value })
	if len(peaks) > k {
		peaks = peaks[:k]
	}

	out := make([]AnnotatedPeak, 0, len(peaks))
	for _, pk := range peaks {
		ds := daily[pk.Index]
		top := cloud(ds.Day)
		keywords := make([]string, 0, 3)
		for _, wc := range top {
			if len(keywords) < 3 {
				keywords = append(keywords, wc.Word)
			}
		}
		ap := AnnotatedPeak{
			Day:       ds.Day,
			Strong:    ds.Strong(),
			StrongPos: ds.StrongPos,
			StrongNeg: ds.StrongNeg,
			Positive:  ds.StrongPos >= ds.StrongNeg,
			TopWords:  top,
		}
		if news != nil {
			ap.News = news.Search(keywords, ds.Day, 2)
		}
		out = append(out, ap)
	}
	return out
}

// dayWordCloud is nlp.WordCloud over one day's post texts, counted from the
// corpus's cached token streams: stems resolve through the interner's memo
// tables and no post text is re-lexed.
func dayWordCloud(c *social.Corpus, d timeline.Day, k int) []nlp.WordCount {
	tc := c.Tokens()
	in := tc.Interner()
	counts := map[nlp.TokenID]int{}
	lo, hi := c.PostIndexRange(d)
	for j := lo; j < hi; j++ {
		for _, id := range tc.Text(j) {
			if in.IsContent(id) {
				counts[in.StemID(id)]++
			}
		}
	}
	return nlp.TopIDs(in, counts, k)
}

// DayKeywords is one day of the Fig. 6 series: outage-keyword occurrences
// in negative-sentiment posts.
type DayKeywords struct {
	Day   timeline.Day
	Count int
}

// OutageKeywordSeries counts outage-dictionary hits per day over whole
// threads (post + retained replies — the paper counts occurrences "in
// these filtered Reddit threads"), gated on the posting user's negative
// sentiment to avoid false positives. Pass gate=false for the ablation
// that shows why the gate exists.
func OutageKeywordSeries(c *social.Corpus, an *nlp.Analyzer, dict *nlp.Dictionary, gate bool) []DayKeywords {
	return SweepCorpus(c, an, SweepOptions{Dict: dict, Gate: gate}).Keywords
}

// OutageGeography localizes one day's outage chatter: negative-gated
// keyword-bearing posts counted per reporting country. This is how the
// paper established that the 22 Apr '22 incident spanned 14 countries with
// ~190 US reports despite having no press coverage.
func OutageGeography(c *social.Corpus, an *nlp.Analyzer, dict *nlp.Dictionary, d timeline.Day) map[string]int {
	tc := c.Tokens()
	scorer := an.CompileScorer(tc.Interner())
	matcher := dict.CompileMatcher(tc.Interner())
	out := map[string]int{}
	lo, hi := c.PostIndexRange(d)
	for j := lo; j < hi; j++ {
		if !matcher.Matches(tc.Thread(j)) {
			continue
		}
		s := scorer.Score(tc.Text(j))
		if s.Negative <= s.Positive || s.Negative < 0.3 {
			continue
		}
		out[c.Posts[j].Country]++
	}
	return out
}

// OutageAlert is a day flagged by an outage monitor.
type OutageAlert struct {
	Day   timeline.Day
	Count int
}

// AlertsFromSeries flags days whose keyword count exceeds threshold — the
// keyword monitor proper.
func AlertsFromSeries(series []DayKeywords, threshold int) []OutageAlert {
	var out []OutageAlert
	for _, d := range series {
		if d.Count >= threshold {
			out = append(out, OutageAlert{Day: d.Day, Count: d.Count})
		}
	}
	return out
}

// MonitorComparison contrasts the Reddit keyword monitor with a
// Downdetector-style baseline that only logs large incidents (§4.1: "Ookla's
// Downdetector only logs large-scale incidents ... it is critical to
// understand transient small-scale outages too").
type MonitorComparison struct {
	// Detected{Keyword,Baseline} count ground-truth outage days each
	// monitor flagged; Total is the number of ground-truth outage days.
	TotalOutageDays      int
	KeywordDetectedDays  int
	BaselineDetectedDays int
	// FalseAlarmDays are keyword-flagged days with no ground-truth outage.
	FalseAlarmDays int
}

// CompareMonitors evaluates both monitors against ground-truth outage days.
// keywordThreshold flags small excursions; baselineThreshold is the high
// bar a large-incident logger effectively applies.
func CompareMonitors(series []DayKeywords, outageDays map[timeline.Day]bool, keywordThreshold, baselineThreshold int) MonitorComparison {
	cmp := MonitorComparison{TotalOutageDays: len(outageDays)}
	flaggedKeyword := map[timeline.Day]bool{}
	flaggedBaseline := map[timeline.Day]bool{}
	for _, d := range series {
		if d.Count >= keywordThreshold {
			flaggedKeyword[d.Day] = true
			if !outageDays[d.Day] {
				cmp.FalseAlarmDays++
			}
		}
		if d.Count >= baselineThreshold {
			flaggedBaseline[d.Day] = true
		}
	}
	for day := range outageDays {
		if flaggedKeyword[day] {
			cmp.KeywordDetectedDays++
		}
		if flaggedBaseline[day] {
			cmp.BaselineDetectedDays++
		}
	}
	return cmp
}
