package usaas

import (
	"strings"
	"testing"
)

func TestBuildReportBothSides(t *testing.T) {
	c, news, cfg := studyCorpus(t)
	store := &Store{}
	store.AddSessions(mixDataset(t))
	store.AddPosts(c.Posts)
	rep := BuildReport(store, analyzer, ServerOptions{News: news, Model: cfg.Model})

	if rep.Sessions == 0 || rep.Posts == 0 {
		t.Fatalf("report sides missing: %+v", rep)
	}
	if len(rep.EngagementDrops) == 0 {
		t.Fatal("no engagement drops")
	}
	if rep.Predictor == nil || rep.Predictor.PredictorMAE <= 0 {
		t.Fatal("predictor section missing")
	}
	if len(rep.TEAdvice) != 4 {
		t.Fatalf("TE advice = %d", len(rep.TEAdvice))
	}
	if len(rep.Peaks) != 3 {
		t.Fatalf("peaks = %d", len(rep.Peaks))
	}
	if rep.OutageAlerts == 0 {
		t.Fatal("no outage alerts")
	}
	if rep.SpeedMonths != 24 {
		t.Fatalf("speed months = %d", rep.SpeedMonths)
	}
	if rep.Conditioning == nil || !rep.Conditioning.DecemberBelowApril {
		t.Fatal("conditioning finding missing")
	}

	text := rep.Render()
	for _, want := range []string{
		"USER SIGNALS REPORT", "MOS predictor", "peak 2021-02-09",
		"outage-alert days", "conditioning detected",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, text)
		}
	}
}

func TestBuildReportEmptyStore(t *testing.T) {
	rep := BuildReport(&Store{}, nil, ServerOptions{})
	if rep.Sessions != 0 || rep.Posts != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	// Rendering an empty report must not panic and stays informative.
	text := rep.Render()
	if !strings.Contains(text, "0 sessions") {
		t.Fatalf("empty render: %q", text)
	}
}

func TestBuildReportSessionsOnly(t *testing.T) {
	store := &Store{}
	store.AddSessions(mixDataset(t))
	rep := BuildReport(store, nil, ServerOptions{})
	if rep.Sessions == 0 || rep.Posts != 0 {
		t.Fatalf("sessions-only report = %+v", rep)
	}
	if len(rep.Peaks) != 0 || rep.Conditioning != nil {
		t.Fatal("social sections present without posts")
	}
}
