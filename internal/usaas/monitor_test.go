package usaas

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	"usersignals/internal/conference"
	"usersignals/internal/netsim"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// incidentDataset generates a two-month workload with a one-week injected
// network incident (heavy latency and loss) in the middle.
var (
	incidentOnce  sync.Once
	incidentRecs  []telemetry.SessionRecord
	incidentTruth timeline.Range
)

func incidentDataset(t *testing.T) ([]telemetry.SessionRecord, timeline.Range) {
	t.Helper()
	incidentOnce.Do(func() {
		incidentTruth = timeline.Range{
			From: timeline.Date(2022, time.February, 7),
			To:   timeline.Date(2022, time.February, 13),
		}
		opts := conference.Defaults(404, 2600)
		opts.Window = timeline.Range{
			From: timeline.Date(2022, time.January, 10),
			To:   timeline.Date(2022, time.March, 10),
		}
		opts.SurveyRate = telemetry.DefaultSurveyRate // realistic sparsity
		bad := netsim.ControlBands()
		bad.LatencyMs = [2]float64{220, 320}
		bad.LossPct = [2]float64{2, 4}
		opts.DegradedWindow = incidentTruth
		opts.DegradedPaths = &bad
		g, err := conference.New(opts)
		if err != nil {
			panic(err)
		}
		incidentRecs, err = g.GenerateAll()
		if err != nil {
			panic(err)
		}
	})
	return incidentRecs, incidentTruth
}

func TestDailyEngagementAggregation(t *testing.T) {
	recs, _ := incidentDataset(t)
	days := DailyEngagement(recs, nil)
	if len(days) < 50 {
		t.Fatalf("only %d days aggregated", len(days))
	}
	total := 0
	for i, d := range days {
		if i > 0 && d.Day <= days[i-1].Day {
			t.Fatal("days not sorted/unique")
		}
		if d.Sessions <= 0 {
			t.Fatal("empty day present")
		}
		if d.Presence < 0 || d.Presence > 100 || d.MicOn < 0 || d.MicOn > 100 {
			t.Fatalf("implausible aggregates: %+v", d)
		}
		if d.Ratings > 0 && (math.IsNaN(d.MOS) || d.MOS < 1 || d.MOS > 5) {
			t.Fatalf("MOS inconsistent: %+v", d)
		}
		if d.Ratings == 0 && !math.IsNaN(d.MOS) {
			t.Fatalf("MOS present without ratings: %+v", d)
		}
		total += d.Sessions
	}
	if total != len(recs) {
		t.Fatalf("sessions %d != records %d", total, len(recs))
	}
}

func TestEngagementMonitorDetectsInjectedIncident(t *testing.T) {
	recs, truth := incidentDataset(t)
	days := DailyEngagement(recs, nil)
	incidents := EngagementIncidents(days, telemetry.Presence, IncidentOptions{})
	recall, falseDays := IncidentRecall(incidents, truth)
	if recall < 0.5 {
		t.Fatalf("engagement monitor recall %v over the injected week (incidents: %+v)", recall, incidents)
	}
	if falseDays > 6 {
		t.Fatalf("%d false-positive days", falseDays)
	}
}

func TestSurveyMonitorIsBlindAtProductionRates(t *testing.T) {
	// The paper's coverage argument, quantified: at 0.5% survey rate the
	// daily MOS series barely exists, so the survey-based monitor cannot
	// match the engagement monitor.
	recs, truth := incidentDataset(t)
	days := DailyEngagement(recs, nil)
	daysWithRatings := 0
	for _, d := range days {
		if d.Ratings >= 5 {
			daysWithRatings++
		}
	}
	if frac := float64(daysWithRatings) / float64(len(days)); frac > 0.5 {
		t.Fatalf("survey rate too generous for the argument: %v of days have 5+ ratings", frac)
	}
	mosIncidents := MOSIncidents(days, IncidentOptions{MinSessions: 1})
	mosRecall, _ := IncidentRecall(mosIncidents, truth)
	engIncidents := EngagementIncidents(days, telemetry.Presence, IncidentOptions{})
	engRecall, _ := IncidentRecall(engIncidents, truth)
	if !(engRecall > mosRecall) {
		t.Fatalf("engagement recall %v should beat survey recall %v", engRecall, mosRecall)
	}
}

func TestDetectIncidentsQuietBaseline(t *testing.T) {
	// A flat series must produce no incidents.
	var days []DayEngagement
	for i := 0; i < 60; i++ {
		days = append(days, DayEngagement{
			Day: timeline.Day(i), Sessions: 100,
			Presence: 90, CamOn: 55, MicOn: 60, MOS: math.NaN(),
		})
	}
	if got := EngagementIncidents(days, telemetry.Presence, IncidentOptions{}); len(got) != 0 {
		t.Fatalf("flat series produced incidents: %+v", got)
	}
}

func TestDetectIncidentsMergesRuns(t *testing.T) {
	var days []DayEngagement
	for i := 0; i < 40; i++ {
		v := 90.0
		if i >= 20 && i <= 24 {
			v = 70 // five-day incident
		}
		days = append(days, DayEngagement{Day: timeline.Day(i), Sessions: 100, Presence: v, MOS: math.NaN()})
	}
	incidents := EngagementIncidents(days, telemetry.Presence, IncidentOptions{})
	if len(incidents) != 1 {
		t.Fatalf("incidents = %+v", incidents)
	}
	in := incidents[0]
	if in.Start != 20 || in.End != 24 {
		t.Fatalf("incident span [%d,%d], want [20,24]", in.Start, in.End)
	}
	if in.Drop < 0.15 || in.Drop > 0.3 {
		t.Fatalf("drop = %v, want ~0.22", in.Drop)
	}
}

func TestDetectIncidentsBaselineNotPoisoned(t *testing.T) {
	// A long incident must stay flagged to its end: the baseline excludes
	// already-flagged days.
	var days []DayEngagement
	for i := 0; i < 60; i++ {
		v := 90.0
		if i >= 25 && i <= 45 {
			v = 65
		}
		days = append(days, DayEngagement{Day: timeline.Day(i), Sessions: 100, Presence: v, MOS: math.NaN()})
	}
	incidents := EngagementIncidents(days, telemetry.Presence, IncidentOptions{})
	if len(incidents) != 1 {
		t.Fatalf("incidents = %+v", incidents)
	}
	if incidents[0].End != 45 {
		t.Fatalf("incident ended at %d, want 45 (baseline poisoned?)", incidents[0].End)
	}
}

func TestDetectIncidentsSkipsThinDays(t *testing.T) {
	var days []DayEngagement
	for i := 0; i < 30; i++ {
		d := DayEngagement{Day: timeline.Day(i), Sessions: 100, Presence: 90, MOS: math.NaN()}
		if i == 20 {
			d.Sessions = 3 // thin day with a terrible value
			d.Presence = 10
		}
		days = append(days, d)
	}
	if got := EngagementIncidents(days, telemetry.Presence, IncidentOptions{}); len(got) != 0 {
		t.Fatalf("thin day flagged: %+v", got)
	}
}

func TestDayEngagementJSONRoundTrip(t *testing.T) {
	for _, d := range []DayEngagement{
		{Day: 10, Sessions: 50, Presence: 88.5, CamOn: 52, MicOn: 61, Ratings: 0, MOS: math.NaN()},
		{Day: 11, Sessions: 40, Presence: 80, CamOn: 50, MicOn: 60, Ratings: 3, MOS: 4.33},
	} {
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal %+v: %v", d, err)
		}
		var back DayEngagement
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Day != d.Day || back.Sessions != d.Sessions || back.Ratings != d.Ratings {
			t.Fatalf("round trip: %+v vs %+v", back, d)
		}
		if d.Ratings == 0 {
			if !math.IsNaN(back.MOS) {
				t.Fatalf("NaN MOS not preserved: %+v", back)
			}
		} else if back.MOS != d.MOS {
			t.Fatalf("MOS lost: %+v", back)
		}
	}
}

func TestMonthSpeedJSONRoundTrip(t *testing.T) {
	empty := MonthSpeed{Month: timeline.YearMonth(2021, time.March), Reports: 0,
		MedianDownMbps: math.NaN(), Median95: math.NaN(), Median90: math.NaN(), Pos: math.NaN()}
	full := MonthSpeed{Month: timeline.YearMonth(2022, time.June), Reports: 70,
		MedianDownMbps: 61.2, Median95: 61.0, Median90: 60.8, Pos: 0.4, Launches: 2, Users: 450000}
	for _, m := range []MonthSpeed{empty, full} {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal %+v: %v", m, err)
		}
		var back MonthSpeed
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Month != m.Month || back.Reports != m.Reports || back.Launches != m.Launches {
			t.Fatalf("round trip: %+v vs %+v", back, m)
		}
		if m.Reports == 0 && !math.IsNaN(back.MedianDownMbps) {
			t.Fatalf("NaN median not preserved: %+v", back)
		}
		if m.Reports > 0 && back.MedianDownMbps != m.MedianDownMbps {
			t.Fatalf("median lost: %+v", back)
		}
	}
}

func TestIncidentRecallEdgeCases(t *testing.T) {
	r, f := IncidentRecall(nil, timeline.Range{From: 5, To: 7})
	if r != 0 || f != 0 {
		t.Fatalf("empty incidents: %v %v", r, f)
	}
	r, _ = IncidentRecall([]Incident{{Start: 0, End: 10}}, timeline.Range{From: 5, To: 7})
	if r != 1 {
		t.Fatalf("full coverage recall = %v", r)
	}
	if _, f = IncidentRecall([]Incident{{Start: 0, End: 10}}, timeline.Range{From: 5, To: 7}); f != 8 {
		t.Fatalf("false days = %d, want 8", f)
	}
}
