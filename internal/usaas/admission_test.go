package usaas

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"usersignals/internal/telemetry"
)

// fakeClock is a manually advanced clock for deterministic bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestAdmissionTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	a := newAdmission(AdmissionOptions{Rate: 2, Burst: 2, now: clk.now})

	// Burst capacity: two batches pass, the third is dropped.
	for i := 0; i < 2; i++ {
		if ok, _ := a.admit("acme"); !ok {
			t.Fatalf("admit %d rejected within burst", i)
		}
	}
	ok, retryAfter := a.admit("acme")
	if ok {
		t.Fatal("third batch admitted past burst")
	}
	// Deficit is exactly 1 token at 2 tokens/sec -> ceil(0.5) = 1s. The
	// hint must be deterministic: same state, same header.
	if retryAfter != 1 {
		t.Fatalf("Retry-After = %d, want 1", retryAfter)
	}
	if _, again := a.admit("acme"); again != retryAfter {
		t.Fatalf("Retry-After not deterministic: %d then %d", retryAfter, again)
	}

	// Refill: half a second buys one token at rate 2.
	clk.advance(500 * time.Millisecond)
	if ok, _ := a.admit("acme"); !ok {
		t.Fatal("batch rejected after refill")
	}

	// A slower tenant: rate 0.25/sec, empty bucket -> ceil(1/0.25) = 4s.
	b := newAdmission(AdmissionOptions{Rate: 0.25, Burst: 1, now: clk.now})
	if ok, _ := b.admit("slow"); !ok {
		t.Fatal("first batch rejected")
	}
	if _, ra := b.admit("slow"); ra != 4 {
		t.Fatalf("Retry-After = %d, want 4 at rate 0.25", ra)
	}
}

func TestAdmissionTenantIsolation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	a := newAdmission(AdmissionOptions{Rate: 1, Burst: 1, now: clk.now})
	if ok, _ := a.admit("noisy"); !ok {
		t.Fatal("noisy tenant's first batch rejected")
	}
	if ok, _ := a.admit("noisy"); ok {
		t.Fatal("noisy tenant not limited")
	}
	// The noisy tenant's exhaustion must not tax anyone else.
	for _, tenant := range []string{"quiet", "", "other"} {
		if ok, _ := a.admit(tenant); !ok {
			t.Fatalf("tenant %q rejected by noisy tenant's bucket", tenant)
		}
	}
	snap := a.snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d tenants, want 4", len(snap))
	}
	// Sorted by tenant; "" first.
	if snap[0].Tenant != "" || snap[1].Tenant != "noisy" && snap[1].Tenant != "other" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	for _, ts := range snap {
		want := uint64(0)
		if ts.Tenant == "noisy" {
			want = 1
		}
		if ts.Dropped != want {
			t.Errorf("tenant %q dropped = %d, want %d", ts.Tenant, ts.Dropped, want)
		}
	}
}

// TestAdmissionHTTP drives the full middleware stack: over-budget ingest
// gets 429 + deterministic Retry-After, queries are never metered, and the
// PR-2 client's retry loop rides the hint to eventual success.
func TestAdmissionHTTP(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	srv := NewServer(nil, ServerOptions{
		Admission:      AdmissionOptions{Rate: 1, Burst: 2, now: clk.now},
		RequestTimeout: -1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(tenant string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", strings.NewReader("[]"))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := post("acme"); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d status = %d", i, resp.StatusCode)
		}
	}
	resp := post("acme")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget ingest status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	// Another tenant is unaffected, and queries are never admission-metered.
	if resp := post("other"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d", resp.StatusCode)
	}
	for i := 0; i < 10; i++ {
		qr, err := ts.Client().Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		qr.Body.Close()
		if qr.StatusCode != http.StatusOK {
			t.Fatalf("query %d status = %d; queries must not be admission-limited", i, qr.StatusCode)
		}
	}

	// The retrying client labels its traffic and backs off exactly the
	// hinted second, then succeeds once the bucket refills.
	var waits []time.Duration
	cl := NewClientWithOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		Tenant:     "acme",
		Sleep: func(d time.Duration) {
			waits = append(waits, d)
			clk.advance(d)
		},
	})
	if _, err := cl.IngestSessions(context.Background(), []telemetry.SessionRecord{}); err != nil {
		t.Fatalf("client ingest through admission limiter: %v", err)
	}
	if len(waits) == 0 {
		t.Fatal("client never backed off; admission 429 not surfaced")
	}
	if waits[0] != time.Second {
		t.Fatalf("first backoff = %v, want the server's Retry-After of 1s", waits[0])
	}
}
