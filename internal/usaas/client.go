package usaas

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// Client is a typed HTTP client for the USaaS service.
type Client struct {
	base  string
	http  *http.Client
	token string
}

// NewClient returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for the default.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, http: httpClient}
}

// WithToken returns a copy of the client that authenticates with the given
// bearer token.
func (c *Client) WithToken(token string) *Client {
	cp := *c
	cp.token = token
	return &cp
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("usaas client: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("usaas client: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("usaas client: building %s request: %w", path, err)
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("usaas client: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr apiError
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("usaas client: %s %s: %s (status %d)", req.Method, req.URL.Path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("usaas client: %s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("usaas client: decoding %s response: %w", req.URL.Path, err)
	}
	return nil
}

// IngestSessionsNDJSON streams session records from r as JSON Lines,
// without buffering the dataset in the client.
func (c *Client) IngestSessionsNDJSON(ctx context.Context, r io.Reader) (IngestResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sessions", r)
	if err != nil {
		return IngestResponse{}, fmt.Errorf("usaas client: building NDJSON request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	var out IngestResponse
	err = c.do(req, &out)
	return out, err
}

// IngestSessions uploads session records.
func (c *Client) IngestSessions(ctx context.Context, recs []telemetry.SessionRecord) (IngestResponse, error) {
	var out IngestResponse
	err := c.post(ctx, "/v1/sessions", recs, &out)
	return out, err
}

// IngestPosts uploads social posts.
func (c *Client) IngestPosts(ctx context.Context, posts []social.Post) (IngestResponse, error) {
	var out IngestResponse
	err := c.post(ctx, "/v1/posts", posts, &out)
	return out, err
}

// Stats fetches store counts.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.get(ctx, "/v1/stats", nil, &out)
	return out, err
}

// EngagementQuery parameterizes Engagement.
type EngagementQuery struct {
	Metric     telemetry.Metric
	Engagement telemetry.Engagement
	Lo, Hi     float64
	Bins       int
	ISP        string // optional
}

// Engagement fetches a dose-response curve.
func (c *Client) Engagement(ctx context.Context, q EngagementQuery) (EngagementResponse, error) {
	v := url.Values{}
	v.Set("metric", q.Metric.String())
	v.Set("engagement", q.Engagement.String())
	v.Set("lo", fmt.Sprint(q.Lo))
	v.Set("hi", fmt.Sprint(q.Hi))
	if q.Bins > 0 {
		v.Set("bins", fmt.Sprint(q.Bins))
	}
	if q.ISP != "" {
		v.Set("isp", q.ISP)
	}
	var out EngagementResponse
	err := c.get(ctx, "/v1/insights/engagement", v, &out)
	return out, err
}

// MOS fetches the Fig. 4 correlations and predictor evaluation.
func (c *Client) MOS(ctx context.Context) (MOSResponse, error) {
	var out MOSResponse
	err := c.get(ctx, "/v1/insights/mos", nil, &out)
	return out, err
}

// DailySentiment fetches the Fig. 5a series.
func (c *Client) DailySentiment(ctx context.Context) ([]DaySentiment, error) {
	var out []DaySentiment
	err := c.get(ctx, "/v1/insights/sentiment", nil, &out)
	return out, err
}

// Peaks fetches the top-k annotated sentiment peaks.
func (c *Client) Peaks(ctx context.Context, k int) ([]AnnotatedPeak, error) {
	v := url.Values{}
	v.Set("k", fmt.Sprint(k))
	var out []AnnotatedPeak
	err := c.get(ctx, "/v1/insights/peaks", v, &out)
	return out, err
}

// OutageSeries fetches the Fig. 6 keyword series.
func (c *Client) OutageSeries(ctx context.Context) ([]DayKeywords, error) {
	var out []DayKeywords
	err := c.get(ctx, "/v1/insights/outages", nil, &out)
	return out, err
}

// OutageAlerts fetches alert days above the threshold.
func (c *Client) OutageAlerts(ctx context.Context, threshold int) ([]OutageAlert, error) {
	v := url.Values{}
	v.Set("threshold", fmt.Sprint(threshold))
	var out []OutageAlert
	err := c.get(ctx, "/v1/insights/outages", v, &out)
	return out, err
}

// MonthlySpeeds fetches the Fig. 7 series.
func (c *Client) MonthlySpeeds(ctx context.Context) ([]MonthSpeed, error) {
	var out []MonthSpeed
	err := c.get(ctx, "/v1/insights/speeds", nil, &out)
	return out, err
}

// Trends fetches emerging discussion topics.
func (c *Client) Trends(ctx context.Context) ([]Trend, error) {
	var out []Trend
	err := c.get(ctx, "/v1/insights/trends", nil, &out)
	return out, err
}

// Confounders fetches the §6 confounder-effect report for one engagement
// metric.
func (c *Client) Confounders(ctx context.Context, eng telemetry.Engagement) ([]ConfounderEffect, error) {
	v := url.Values{}
	v.Set("engagement", eng.String())
	var out []ConfounderEffect
	err := c.get(ctx, "/v1/insights/confounders", v, &out)
	return out, err
}

// TrafficEngineeringAdvice fetches ranked network-improvement
// recommendations.
func (c *Client) TrafficEngineeringAdvice(ctx context.Context) ([]TERecommendation, error) {
	var out []TERecommendation
	err := c.get(ctx, "/v1/advice/traffic-engineering", nil, &out)
	return out, err
}

// DeploymentAdvice fetches constellation launch-plan scenarios.
func (c *Client) DeploymentAdvice(ctx context.Context, from, horizon timeline.Day, maxExtra, satsPerLaunch int, posTarget float64) (DeploymentAdvice, error) {
	v := url.Values{}
	v.Set("from", fmt.Sprint(int(from)))
	v.Set("horizon", fmt.Sprint(int(horizon)))
	v.Set("max", fmt.Sprint(maxExtra))
	v.Set("sats", fmt.Sprint(satsPerLaunch))
	v.Set("target", fmt.Sprint(posTarget))
	var out DeploymentAdvice
	err := c.get(ctx, "/v1/advice/deployment", v, &out)
	return out, err
}

// Incidents fetches the daily engagement series and detected incidents for
// one engagement metric.
func (c *Client) Incidents(ctx context.Context, eng telemetry.Engagement) (IncidentResponse, error) {
	v := url.Values{}
	v.Set("engagement", eng.String())
	var out IncidentResponse
	err := c.get(ctx, "/v1/insights/incidents", v, &out)
	return out, err
}

// Report fetches the composed operator report.
func (c *Client) Report(ctx context.Context) (OperatorReport, error) {
	var out OperatorReport
	err := c.get(ctx, "/v1/report", nil, &out)
	return out, err
}

// Experience runs the §5 cross-source query for an ISP.
func (c *Client) Experience(ctx context.Context, isp string) (ExperienceResponse, error) {
	v := url.Values{}
	v.Set("isp", isp)
	var out ExperienceResponse
	err := c.get(ctx, "/v1/query/experience", v, &out)
	return out, err
}
