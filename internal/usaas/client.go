package usaas

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"usersignals/internal/simrand"
	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// BatchIDHeader carries the client-chosen idempotency key on ingest
// requests. The server deduplicates batches by this key, so a retried
// ingest whose first acknowledgement was lost is applied exactly once.
const BatchIDHeader = "X-Usaas-Batch-Id"

// ErrCircuitOpen is returned (wrapped) when the client's circuit breaker is
// open: recent consecutive failures exceeded the threshold and the cooldown
// has not elapsed, so requests fail fast instead of hammering a sick server.
var ErrCircuitOpen = errors.New("usaas client: circuit breaker open")

// RetryPolicy configures the client's retry loop. Retries apply to
// transport errors, truncated/undecodable response bodies, and 429/5xx
// statuses; other 4xx statuses and context cancellation fail immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff: attempt n waits
	// BaseBackoff * 2^(n-1), ±50% deterministic jitter (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps each wait, including server-requested Retry-After
	// delays (default 2s).
	MaxBackoff time.Duration
	// JitterSeed keys the deterministic jitter stream (default 1).
	JitterSeed uint64
}

// BreakerPolicy configures the client's circuit breaker, which counts
// consecutive failed calls (after retries) against FailureThreshold.
type BreakerPolicy struct {
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker (default 8; negative disables the breaker).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a probe
	// (default 5s). A failed probe reopens it immediately.
	Cooldown time.Duration
}

// ClientOptions configures NewClientWithOptions. The zero value gives the
// same defaults as NewClient.
type ClientOptions struct {
	// HTTPClient defaults to http.DefaultClient. With Endpoints set, the
	// client is copied with redirect-following disabled so leader
	// redirects flow through the failover logic (which re-sends with all
	// headers intact; Go's auto-follow drops Authorization across hosts).
	HTTPClient *http.Client
	// Endpoints lists every replica of the service. When set, writes go to
	// the endpoint currently believed to be the leader (learned from
	// 307/308 leader-redirects and /v1/replica/status probes) and reads
	// rotate across the whole set. baseURL may be empty; the first
	// endpoint seeds the leader belief.
	Endpoints []string
	// Token, when set, authenticates every request ("Bearer <token>").
	Token string
	// Tenant, when set, labels every request with the X-Usaas-Tenant
	// header so server-side admission control meters this client against
	// its own token bucket.
	Tenant string
	// Retry tunes the retry loop; zero fields take defaults.
	Retry RetryPolicy
	// Breaker tunes the circuit breaker; zero fields take defaults.
	Breaker BreakerPolicy
	// BatchPrefix namespaces auto-generated ingest batch IDs. Defaults to
	// a random per-client value; set it explicitly when batch IDs must be
	// stable across client restarts (resuming an interrupted upload).
	BatchPrefix string
	// Sleep replaces the backoff sleeper (tests). nil uses a
	// context-aware timer.
	Sleep func(time.Duration)
	// Now replaces the clock used by the circuit breaker (tests).
	Now func() time.Time
}

// Client is a typed HTTP client for the USaaS service. All calls retry
// transient failures with exponential backoff and honor Retry-After; ingest
// calls carry idempotency keys so retries never double-count (at-least-once
// delivery + server-side dedup = effectively-once ingest).
type Client struct {
	base    string
	http    *http.Client
	token   string
	tenant  string
	retry   RetryPolicy
	breaker BreakerPolicy
	sleep   func(time.Duration)
	now     func() time.Time

	// Shared across WithToken copies.
	jitter   *lockedRNG
	state    *breakerState
	batchSeq *atomic.Uint64
	batchPre string
	cluster  *cluster // nil without Endpoints (failover.go)
}

type lockedRNG struct {
	mu  sync.Mutex
	rng *simrand.RNG
}

func (l *lockedRNG) float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

type breakerState struct {
	mu        sync.Mutex
	fails     int       // consecutive failures while closed
	openUntil time.Time // zero when closed
	halfOpen  bool      // cooldown elapsed, one probe in flight
}

// NewClient returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080") with default retry and breaker policies.
// httpClient may be nil for the default.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	return NewClientWithOptions(baseURL, ClientOptions{HTTPClient: httpClient})
}

// NewClientWithOptions returns a client with explicit fault-tolerance
// policies.
func NewClientWithOptions(baseURL string, opts ClientOptions) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	cl := newCluster(opts.Endpoints)
	if cl != nil {
		if baseURL == "" {
			baseURL = cl.leaderURL().String()
		}
		// Handle redirects ourselves: re-pointing the leader and re-sending
		// keeps the Authorization header, which Go's auto-follow strips on
		// cross-host redirects.
		hcCopy := *hc
		hcCopy.CheckRedirect = func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		}
		hc = &hcCopy
	}
	r := opts.Retry
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 4
	}
	if r.BaseBackoff <= 0 {
		r.BaseBackoff = 50 * time.Millisecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 2 * time.Second
	}
	if r.JitterSeed == 0 {
		r.JitterSeed = 1
	}
	b := opts.Breaker
	if b.FailureThreshold == 0 {
		b.FailureThreshold = 8
	}
	if b.Cooldown <= 0 {
		b.Cooldown = 5 * time.Second
	}
	pre := opts.BatchPrefix
	if pre == "" {
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err == nil {
			pre = hex.EncodeToString(buf[:])
		} else {
			pre = "batch"
		}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Client{
		base:     baseURL,
		http:     hc,
		token:    opts.Token,
		tenant:   opts.Tenant,
		retry:    r,
		breaker:  b,
		sleep:    opts.Sleep,
		now:      now,
		jitter:   &lockedRNG{rng: simrand.Root(r.JitterSeed).Derive("usaas/client-jitter").RNG()},
		state:    &breakerState{},
		batchSeq: &atomic.Uint64{},
		batchPre: pre,
		cluster:  cl,
	}
}

// WithToken returns a copy of the client that authenticates with the given
// bearer token. The copy shares the original's breaker state and batch
// sequence.
func (c *Client) WithToken(token string) *Client {
	cp := *c
	cp.token = token
	return &cp
}

// nextBatchID mints a fresh idempotency key: stable for the retries of one
// logical ingest call, distinct across calls.
func (c *Client) nextBatchID() string {
	return c.batchPre + "-" + strconv.FormatUint(c.batchSeq.Add(1), 10)
}

func (c *Client) post(ctx context.Context, path string, batchID string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("usaas client: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("usaas client: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if batchID != "" {
		req.Header.Set(BatchIDHeader, batchID)
	}
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("usaas client: building %s request: %w", path, err)
	}
	return c.do(req, out)
}

// statusError is a non-200 response; it keeps the status and any
// Retry-After hint so the retry loop can classify and pace itself.
type statusError struct {
	method, path string
	status       int
	msg          string
	retryAfter   time.Duration
	location     string // Location header on a 3xx (leader redirect)
}

// asStatusError unwraps err to a *statusError if one is in the chain.
func asStatusError(err error) (*statusError, bool) {
	var se *statusError
	ok := errors.As(err, &se)
	return se, ok
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("usaas client: %s %s: %s (status %d)", e.method, e.path, e.msg, e.status)
	}
	return fmt.Sprintf("usaas client: %s %s: status %d", e.method, e.path, e.status)
}

// transientError marks a failure after the response started (truncated or
// undecodable body): the request may have been applied, so it is safe to
// retry only because ingest is idempotent and queries are read-only.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// retryable reports whether the retry loop should try again.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		switch se.status {
		case http.StatusTooManyRequests, http.StatusInternalServerError,
			http.StatusBadGateway, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout:
			return true
		case http.StatusTemporaryRedirect, http.StatusPermanentRedirect:
			// A leader redirect: retried immediately against the leader.
			return true
		}
		return false
	}
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue) // transport-level failure
}

// countsAgainstBreaker reports whether a failure indicates server sickness
// (as opposed to a caller mistake like a 400 or a canceled context). A
// leader redirect is routing information, not sickness.
func countsAgainstBreaker(err error) bool {
	if se, ok := asStatusError(err); ok &&
		(se.status == http.StatusTemporaryRedirect || se.status == http.StatusPermanentRedirect) {
		return false
	}
	return retryable(err)
}

// do runs one logical call: breaker check, attempt, classify, back off,
// retry. Requests with non-replayable bodies (req.GetBody == nil on a
// body-carrying request) are never retried.
func (c *Client) do(req *http.Request, out any) error {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if c.tenant != "" {
		req.Header.Set(TenantHeader, c.tenant)
	}
	ctx := req.Context()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := c.breakerAllow(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", err, lastErr)
			}
			return err
		}
		c.retarget(req)
		err := c.doOnce(req, out)
		c.breakerRecord(err)
		if err == nil {
			return nil
		}
		if !retryable(err) || attempt >= c.retry.MaxAttempts {
			return err
		}
		if req.Body != nil && req.GetBody == nil {
			return err // streaming body: cannot replay
		}
		if !c.noteRedirect(err) {
			// A real failure: back off, and if this was a write on a
			// replicated cluster, re-discover the leader before retrying —
			// the node we wrote to may be dead or demoted.
			if werr := c.wait(ctx, c.backoff(attempt, err)); werr != nil {
				return fmt.Errorf("usaas client: %s %s: %w (last error: %v)", req.Method, req.URL.Path, werr, err)
			}
			if c.cluster != nil && req.Method != http.MethodGet {
				c.probeLeader(ctx)
			}
		}
		if req.GetBody != nil {
			body, berr := req.GetBody()
			if berr != nil {
				return fmt.Errorf("usaas client: replaying %s body: %w", req.URL.Path, berr)
			}
			req.Body = body
		}
		lastErr = err
	}
}

// doOnce performs a single HTTP attempt.
func (c *Client) doOnce(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("usaas client: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := &statusError{
			method:     req.Method,
			path:       req.URL.Path,
			status:     resp.StatusCode,
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), c.now),
			location:   resp.Header.Get("Location"),
		}
		var apiErr apiError
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			se.msg = apiErr.Error
		}
		return se
	}
	if out == nil {
		// Drain so the connection can be reused.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		if cerr := req.Context().Err(); cerr != nil {
			return fmt.Errorf("usaas client: decoding %s response: %w", req.URL.Path, cerr)
		}
		return &transientError{fmt.Errorf("usaas client: decoding %s response: %w", req.URL.Path, err)}
	}
	return nil
}

// parseRetryAfter handles both delta-seconds and HTTP-date forms.
func parseRetryAfter(v string, now func() time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now()); d > 0 {
			return d
		}
	}
	return 0
}

// backoff computes the wait before the next attempt: the server's
// Retry-After when present, otherwise exponential backoff with ±50%
// deterministic jitter; both capped at MaxBackoff.
func (c *Client) backoff(attempt int, err error) time.Duration {
	var se *statusError
	if errors.As(err, &se) && se.retryAfter > 0 {
		if se.retryAfter > c.retry.MaxBackoff {
			return c.retry.MaxBackoff
		}
		return se.retryAfter
	}
	d := c.retry.BaseBackoff << (attempt - 1)
	if d > c.retry.MaxBackoff || d <= 0 {
		d = c.retry.MaxBackoff
	}
	jittered := time.Duration(float64(d) * (0.5 + c.jitter.float64()))
	if jittered > c.retry.MaxBackoff {
		return c.retry.MaxBackoff
	}
	return jittered
}

// wait sleeps for d or until the context is done.
func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		c.sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// breakerAllow fails fast while the breaker is open; after the cooldown it
// admits a single half-open probe.
func (c *Client) breakerAllow() error {
	if c.breaker.FailureThreshold < 0 {
		return nil
	}
	s := c.state
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.openUntil.IsZero() {
		return nil
	}
	if c.now().Before(s.openUntil) {
		return fmt.Errorf("%w until %s", ErrCircuitOpen, s.openUntil.Format(time.RFC3339))
	}
	s.halfOpen = true
	return nil
}

// breakerRecord folds one attempt's outcome into the breaker.
func (c *Client) breakerRecord(err error) {
	if c.breaker.FailureThreshold < 0 {
		return
	}
	s := c.state
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.fails = 0
		s.openUntil = time.Time{}
		s.halfOpen = false
		return
	}
	if !countsAgainstBreaker(err) {
		return
	}
	if s.halfOpen {
		// Failed probe: reopen for another cooldown.
		s.openUntil = c.now().Add(c.breaker.Cooldown)
		s.halfOpen = false
		return
	}
	s.fails++
	if s.fails >= c.breaker.FailureThreshold {
		s.openUntil = c.now().Add(c.breaker.Cooldown)
		s.fails = 0
	}
}

// IngestSessionsNDJSON streams session records from r as JSON Lines,
// without buffering the dataset in the client. The upload carries an
// idempotency key, but a plain io.Reader cannot be replayed, so transient
// failures are returned rather than retried — callers that need retries
// should pass a *bytes.Reader/*strings.Reader (replayable) or re-call with
// the same batch ID via IngestSessionsNDJSONBatch.
func (c *Client) IngestSessionsNDJSON(ctx context.Context, r io.Reader) (IngestResponse, error) {
	return c.IngestSessionsNDJSONBatch(ctx, c.nextBatchID(), r)
}

// IngestSessionsNDJSONBatch is IngestSessionsNDJSON under an explicit batch
// ID, for resuming an upload whose acknowledgement was lost.
func (c *Client) IngestSessionsNDJSONBatch(ctx context.Context, batchID string, r io.Reader) (IngestResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sessions", r)
	if err != nil {
		return IngestResponse{}, fmt.Errorf("usaas client: building NDJSON request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if batchID != "" {
		req.Header.Set(BatchIDHeader, batchID)
	}
	var out IngestResponse
	err = c.do(req, &out)
	return out, err
}

// IngestSessions uploads session records under a fresh idempotency key:
// retried deliveries are applied at most once by the server.
func (c *Client) IngestSessions(ctx context.Context, recs []telemetry.SessionRecord) (IngestResponse, error) {
	return c.IngestSessionsBatch(ctx, c.nextBatchID(), recs)
}

// ndjsonBufs pools encode buffers for session uploads. A buffer stays out
// of the pool until do() fully returns: GetBody may replay the bytes on any
// retry, so the buffer cannot be reused before the last attempt finishes.
var ndjsonBufs = sync.Pool{New: func() any { b := make([]byte, 0, 64*1024); return &b }}

// IngestSessionsBatch is IngestSessions under an explicit batch ID. The
// upload is NDJSON encoded with the pooled telemetry codec — the hot ingest
// path allocates no per-record encoder state.
func (c *Client) IngestSessionsBatch(ctx context.Context, batchID string, recs []telemetry.SessionRecord) (IngestResponse, error) {
	bufp := ndjsonBufs.Get().(*[]byte)
	defer func() { ndjsonBufs.Put(bufp) }()
	body, err := telemetry.AppendNDJSON((*bufp)[:0], recs)
	if err != nil {
		return IngestResponse{}, fmt.Errorf("usaas client: encoding /v1/sessions request: %w", err)
	}
	*bufp = body
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return IngestResponse{}, fmt.Errorf("usaas client: building /v1/sessions request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if batchID != "" {
		req.Header.Set(BatchIDHeader, batchID)
	}
	var out IngestResponse
	err = c.do(req, &out)
	return out, err
}

// IngestPosts uploads social posts under a fresh idempotency key.
func (c *Client) IngestPosts(ctx context.Context, posts []social.Post) (IngestResponse, error) {
	return c.IngestPostsBatch(ctx, c.nextBatchID(), posts)
}

// IngestPostsBatch is IngestPosts under an explicit batch ID.
func (c *Client) IngestPostsBatch(ctx context.Context, batchID string, posts []social.Post) (IngestResponse, error) {
	var out IngestResponse
	err := c.post(ctx, "/v1/posts", batchID, posts, &out)
	return out, err
}

// Stats fetches store counts.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.get(ctx, "/v1/stats", nil, &out)
	return out, err
}

// EngagementQuery parameterizes Engagement.
type EngagementQuery struct {
	Metric     telemetry.Metric
	Engagement telemetry.Engagement
	Lo, Hi     float64
	Bins       int
	ISP        string // optional
}

// Engagement fetches a dose-response curve.
func (c *Client) Engagement(ctx context.Context, q EngagementQuery) (EngagementResponse, error) {
	v := url.Values{}
	v.Set("metric", q.Metric.String())
	v.Set("engagement", q.Engagement.String())
	v.Set("lo", fmt.Sprint(q.Lo))
	v.Set("hi", fmt.Sprint(q.Hi))
	if q.Bins > 0 {
		v.Set("bins", fmt.Sprint(q.Bins))
	}
	if q.ISP != "" {
		v.Set("isp", q.ISP)
	}
	var out EngagementResponse
	err := c.get(ctx, "/v1/insights/engagement", v, &out)
	return out, err
}

// MOS fetches the Fig. 4 correlations and predictor evaluation.
func (c *Client) MOS(ctx context.Context) (MOSResponse, error) {
	var out MOSResponse
	err := c.get(ctx, "/v1/insights/mos", nil, &out)
	return out, err
}

// DailySentiment fetches the Fig. 5a series.
func (c *Client) DailySentiment(ctx context.Context) ([]DaySentiment, error) {
	var out []DaySentiment
	err := c.get(ctx, "/v1/insights/sentiment", nil, &out)
	return out, err
}

// Peaks fetches the top-k annotated sentiment peaks.
func (c *Client) Peaks(ctx context.Context, k int) ([]AnnotatedPeak, error) {
	v := url.Values{}
	v.Set("k", fmt.Sprint(k))
	var out []AnnotatedPeak
	err := c.get(ctx, "/v1/insights/peaks", v, &out)
	return out, err
}

// OutageSeries fetches the Fig. 6 keyword series.
func (c *Client) OutageSeries(ctx context.Context) ([]DayKeywords, error) {
	var out []DayKeywords
	err := c.get(ctx, "/v1/insights/outages", nil, &out)
	return out, err
}

// OutageAlerts fetches alert days above the threshold.
func (c *Client) OutageAlerts(ctx context.Context, threshold int) ([]OutageAlert, error) {
	v := url.Values{}
	v.Set("threshold", fmt.Sprint(threshold))
	var out []OutageAlert
	err := c.get(ctx, "/v1/insights/outages", v, &out)
	return out, err
}

// MonthlySpeeds fetches the Fig. 7 series.
func (c *Client) MonthlySpeeds(ctx context.Context) ([]MonthSpeed, error) {
	var out []MonthSpeed
	err := c.get(ctx, "/v1/insights/speeds", nil, &out)
	return out, err
}

// Trends fetches emerging discussion topics.
func (c *Client) Trends(ctx context.Context) ([]Trend, error) {
	var out []Trend
	err := c.get(ctx, "/v1/insights/trends", nil, &out)
	return out, err
}

// Confounders fetches the §6 confounder-effect report for one engagement
// metric.
func (c *Client) Confounders(ctx context.Context, eng telemetry.Engagement) ([]ConfounderEffect, error) {
	v := url.Values{}
	v.Set("engagement", eng.String())
	var out []ConfounderEffect
	err := c.get(ctx, "/v1/insights/confounders", v, &out)
	return out, err
}

// TrafficEngineeringAdvice fetches ranked network-improvement
// recommendations.
func (c *Client) TrafficEngineeringAdvice(ctx context.Context) ([]TERecommendation, error) {
	var out []TERecommendation
	err := c.get(ctx, "/v1/advice/traffic-engineering", nil, &out)
	return out, err
}

// DeploymentAdvice fetches constellation launch-plan scenarios.
func (c *Client) DeploymentAdvice(ctx context.Context, from, horizon timeline.Day, maxExtra, satsPerLaunch int, posTarget float64) (DeploymentAdvice, error) {
	v := url.Values{}
	v.Set("from", fmt.Sprint(int(from)))
	v.Set("horizon", fmt.Sprint(int(horizon)))
	v.Set("max", fmt.Sprint(maxExtra))
	v.Set("sats", fmt.Sprint(satsPerLaunch))
	v.Set("target", fmt.Sprint(posTarget))
	var out DeploymentAdvice
	err := c.get(ctx, "/v1/advice/deployment", v, &out)
	return out, err
}

// Incidents fetches the daily engagement series and detected incidents for
// one engagement metric.
func (c *Client) Incidents(ctx context.Context, eng telemetry.Engagement) (IncidentResponse, error) {
	v := url.Values{}
	v.Set("engagement", eng.String())
	var out IncidentResponse
	err := c.get(ctx, "/v1/insights/incidents", v, &out)
	return out, err
}

// Report fetches the composed operator report.
func (c *Client) Report(ctx context.Context) (OperatorReport, error) {
	var out OperatorReport
	err := c.get(ctx, "/v1/report", nil, &out)
	return out, err
}

// Experience runs the §5 cross-source query for an ISP.
func (c *Client) Experience(ctx context.Context, isp string) (ExperienceResponse, error) {
	v := url.Values{}
	v.Set("isp", isp)
	var out ExperienceResponse
	err := c.get(ctx, "/v1/query/experience", v, &out)
	return out, err
}

// Partials fetches a shard's mergeable accumulator state for the requested
// sections (the cluster coordinator's scatter half; see partials.go).
// query carries the sections parameter plus any section-specific options.
func (c *Client) Partials(ctx context.Context, query url.Values) (ShardPartials, error) {
	var out ShardPartials
	err := c.get(ctx, "/v1/partials", query, &out)
	return out, err
}

// ModelPartials runs the model phase of a two-phase cluster query: ship the
// coordinator-trained model, get back per-day partials computed under it.
func (c *Client) ModelPartials(ctx context.Context, req ModelPartialsRequest) (ModelPartials, error) {
	var out ModelPartials
	err := c.post(ctx, "/v1/partials/model", "", req, &out)
	return out, err
}

// Ready probes /v1/readyz; a nil error means the service reported ready.
func (c *Client) Ready(ctx context.Context) error {
	var out HealthResponse
	return c.get(ctx, "/v1/readyz", nil, &out)
}
