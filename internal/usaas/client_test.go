package usaas

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"usersignals/internal/telemetry"
)

// noRetry disables retries, the breaker, and real sleeping, for tests that
// probe single-attempt behavior.
func noRetry(ts *httptest.Server) *Client {
	return NewClientWithOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		Retry:      RetryPolicy{MaxAttempts: 1},
		Breaker:    BreakerPolicy{FailureThreshold: -1},
		Sleep:      func(time.Duration) {},
	})
}

// fastRetry retries aggressively without real sleeping.
func fastRetry(ts *httptest.Server, attempts int) *Client {
	return NewClientWithOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		Retry:      RetryPolicy{MaxAttempts: attempts, BaseBackoff: time.Nanosecond, MaxBackoff: time.Microsecond},
		Breaker:    BreakerPolicy{FailureThreshold: -1},
		Sleep:      func(time.Duration) {},
	})
}

func TestClientDoNonJSONErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "<html>definitely not json</html>")
	}))
	defer ts.Close()
	_, err := noRetry(ts).Stats(context.Background())
	if err == nil || !strings.Contains(err.Error(), "status 418") {
		t.Fatalf("err = %v, want status 418 with no parsed message", err)
	}
	if strings.Contains(err.Error(), "html") {
		t.Fatalf("unparseable body leaked into error: %v", err)
	}
}

func TestClientDoOversizedErrorBody(t *testing.T) {
	// The error body is far beyond the 64 KiB LimitReader cap; the client
	// must not buffer it all, and the resulting error must stay bounded.
	huge := strings.Repeat("x", 1<<20)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		io.WriteString(w, `{"error":"`+huge)
	}))
	defer ts.Close()
	_, err := noRetry(ts).Stats(context.Background())
	if err == nil {
		t.Fatal("oversized error body produced no error")
	}
	if !strings.Contains(err.Error(), "status 409") {
		t.Fatalf("err = %.80q..., want fallback status form", err.Error())
	}
	if len(err.Error()) > 1<<10 {
		t.Fatalf("error message is %d bytes; the cap leaked", len(err.Error()))
	}
}

func TestClientDoContextCanceledMidBody(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		// Send a partial JSON body, then cancel the client's context and
		// stall so the read fails mid-stream.
		io.WriteString(w, `{"sessions": 1, "posts`)
		w.(http.Flusher).Flush()
		cancel()
		<-r.Context().Done()
	}))
	defer ts.Close()

	_, err := fastRetry(ts, 5).Stats(ctx)
	if err == nil {
		t.Fatal("canceled mid-body read returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	// Cancellation must not be retried.
	if got := attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no retry on cancellation)", got)
	}
}

func TestClientRetriesTransientStatuses(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			writeErr(w, http.StatusServiceUnavailable, "warming up")
		case 2:
			writeErr(w, http.StatusInternalServerError, "still warming")
		default:
			writeJSON(w, http.StatusOK, StatsResponse{Sessions: 7})
		}
	}))
	defer ts.Close()
	st, err := fastRetry(ts, 4).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 7 || calls.Load() != 3 {
		t.Fatalf("stats = %+v after %d calls", st, calls.Load())
	}
}

func TestClientDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeErr(w, http.StatusBadRequest, "bad query")
	}))
	defer ts.Close()
	if _, err := fastRetry(ts, 5).Stats(context.Background()); err == nil {
		t.Fatal("400 must fail")
	}
	if calls.Load() != 1 {
		t.Fatalf("400 retried %d times", calls.Load())
	}
}

func TestClientRetriesReplayIngestBody(t *testing.T) {
	store := &Store{}
	srv := NewServer(store, ServerOptions{})
	var calls atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			writeErr(w, http.StatusServiceUnavailable, "first delivery lost")
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	recs := []telemetry.SessionRecord{{CallID: 1}, {CallID: 2}}
	resp, err := fastRetry(ts, 3).IngestSessions(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.TotalSessions != 2 {
		t.Fatalf("retried ingest = %+v", resp)
	}
	if sessions, _ := store.Counts(); sessions != 2 {
		t.Fatalf("store sessions = %d (replayed body mangled?)", sessions)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			writeErr(w, http.StatusTooManyRequests, "slow down")
			return
		}
		writeJSON(w, http.StatusOK, StatsResponse{})
	}))
	defer ts.Close()

	var waits []time.Duration
	c := NewClientWithOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		Retry:      RetryPolicy{MaxAttempts: 3, MaxBackoff: 10 * time.Second},
		Breaker:    BreakerPolicy{FailureThreshold: -1},
		Sleep:      func(d time.Duration) { waits = append(waits, d) },
	})
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] != 3*time.Second {
		t.Fatalf("waits = %v, want exactly the server's Retry-After of 3s", waits)
	}
}

func TestClientBackoffGrowsAndCaps(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusInternalServerError, "down")
	}))
	defer ts.Close()

	var waits []time.Duration
	c := NewClientWithOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		Retry:      RetryPolicy{MaxAttempts: 6, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond},
		Breaker:    BreakerPolicy{FailureThreshold: -1},
		Sleep:      func(d time.Duration) { waits = append(waits, d) },
	})
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("all-failing server must error")
	}
	if len(waits) != 5 {
		t.Fatalf("5 retries expected, got waits %v", waits)
	}
	for i, d := range waits {
		if d <= 0 || d > 40*time.Millisecond {
			t.Fatalf("wait %d = %v escaped (0, MaxBackoff]", i, d)
		}
	}
}

func TestClientCircuitBreaker(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeErr(w, http.StatusServiceUnavailable, "down hard")
	}))
	defer ts.Close()

	clock := time.Unix(1700000000, 0)
	c := NewClientWithOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		Retry:      RetryPolicy{MaxAttempts: 1},
		Breaker:    BreakerPolicy{FailureThreshold: 3, Cooldown: time.Minute},
		Sleep:      func(time.Duration) {},
		Now:        func() time.Time { return clock },
	})
	ctx := context.Background()

	// Three failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Stats(ctx); err == nil {
			t.Fatal("failing server must error")
		}
	}
	before := calls.Load()
	if _, err := c.Stats(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still hit the network")
	}

	// After the cooldown, a half-open probe goes through; its failure
	// reopens the breaker immediately.
	clock = clock.Add(2 * time.Minute)
	if _, err := c.Stats(ctx); errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open probe was not admitted: %v", err)
	}
	if calls.Load() != before+1 {
		t.Fatalf("probe count = %d, want %d", calls.Load(), before+1)
	}
	if _, err := c.Stats(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("failed probe must reopen the breaker")
	}

	// A successful probe closes it.
	okts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsResponse{})
	}))
	defer okts.Close()
	clock = clock.Add(2 * time.Minute)
	c.base = okts.URL
	c.http = okts.Client()
	for i := 0; i < 3; i++ {
		if _, err := c.Stats(ctx); err != nil {
			t.Fatalf("closed breaker call %d: %v", i, err)
		}
	}
}

func TestClientStreamingBodyIsNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		io.Copy(io.Discard, r.Body)
		writeErr(w, http.StatusServiceUnavailable, "lost it")
	}))
	defer ts.Close()

	// An unreplayable reader (no GetBody): exactly one attempt.
	pr, pw := io.Pipe()
	go func() {
		fmt.Fprintln(pw, `{"call_id":1}`)
		pw.Close()
	}()
	if _, err := fastRetry(ts, 4).IngestSessionsNDJSON(context.Background(), pr); err == nil {
		t.Fatal("failing NDJSON ingest must error")
	}
	if calls.Load() != 1 {
		t.Fatalf("streaming body retried: %d attempts", calls.Load())
	}

	// A replayable reader (strings.Reader sets GetBody): retried.
	calls.Store(0)
	if _, err := fastRetry(ts, 3).IngestSessionsNDJSON(context.Background(), strings.NewReader(`{"call_id":1}`+"\n")); err == nil {
		t.Fatal("failing NDJSON ingest must error")
	}
	if calls.Load() != 3 {
		t.Fatalf("replayable NDJSON body: %d attempts, want 3", calls.Load())
	}
}

func TestIngestIdempotency(t *testing.T) {
	store := &Store{}
	srv := NewServer(store, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := noRetry(ts)
	ctx := context.Background()
	recs := []telemetry.SessionRecord{{CallID: 1}, {CallID: 2}, {CallID: 3}}

	first, err := client.IngestSessionsBatch(ctx, "upload-1", recs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Accepted != 3 || first.Duplicate || first.BatchID != "upload-1" {
		t.Fatalf("first delivery = %+v", first)
	}

	// The replayed delivery acknowledges without double-counting.
	second, err := client.IngestSessionsBatch(ctx, "upload-1", recs)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Duplicate || second.Accepted != 3 || second.TotalSessions != 3 {
		t.Fatalf("replay = %+v", second)
	}
	if sessions, _ := store.Counts(); sessions != 3 {
		t.Fatalf("store = %d sessions after replay, want 3", sessions)
	}

	// A different batch ID is new data.
	third, err := client.IngestSessionsBatch(ctx, "upload-2", recs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if third.Duplicate || third.TotalSessions != 4 {
		t.Fatalf("new batch = %+v", third)
	}

	// Auto-generated batch IDs differ call to call.
	a, err := client.IngestSessions(ctx, recs[:1])
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.IngestSessions(ctx, recs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if a.BatchID == "" || a.BatchID == b.BatchID {
		t.Fatalf("auto batch IDs: %q then %q", a.BatchID, b.BatchID)
	}
	if sessions, _ := store.Counts(); sessions != 6 {
		t.Fatalf("store = %d sessions, want 6", sessions)
	}
}

func TestPostsIngestIdempotency(t *testing.T) {
	store := &Store{}
	srv := NewServer(store, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := noRetry(ts)
	ctx := context.Background()

	c, _, _ := studyCorpus(t)
	posts := c.Posts[:8]
	if _, err := client.IngestPostsBatch(ctx, "p-1", posts); err != nil {
		t.Fatal(err)
	}
	resp, err := client.IngestPostsBatch(ctx, "p-1", posts)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate {
		t.Fatalf("replay = %+v", resp)
	}
	if _, got := store.Counts(); got != 8 {
		t.Fatalf("posts = %d after replay, want 8", got)
	}
	if store.Corpus().Len() != 8 {
		t.Fatalf("corpus len = %d", store.Corpus().Len())
	}
}

func TestServerInflightLimit(t *testing.T) {
	release := make(chan struct{})
	var parked atomic.Int64
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parked.Add(1)
		<-release
		writeJSON(w, http.StatusOK, StatsResponse{})
	})
	ts := httptest.NewServer(inflightLimiter(slow, 2))
	defer ts.Close()

	// Fill both slots.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Get(ts.URL)
			if err == nil {
				resp.Body.Close()
			}
			errs <- err
		}()
	}
	// Wait until both are provably parked inside the handler, then probe.
	deadline := time.Now().Add(5 * time.Second)
	for parked.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("slot-filling requests never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed request missing Retry-After")
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerRequestTimeout(t *testing.T) {
	slow := &Server{store: &Store{}, opts: ServerOptions{RequestTimeout: 50 * time.Millisecond}, mux: http.NewServeMux()}
	slow.mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})
	ts := httptest.NewServer(slow.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/hang")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hung handler status = %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "timed out") {
		t.Fatalf("timeout body = %q", body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("timeout Retry-After = %q, want deterministic \"1\"", got)
	}
}

func TestDegradedReport(t *testing.T) {
	// Sessions only, no posts: the report must still carry the implicit
	// side, flag the explicit side as degraded, and never 500.
	store := &Store{}
	store.AddSessions(mixDataset(t)[:200])
	srv := NewServer(store, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := noRetry(ts).Report(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 200 {
		t.Fatalf("sessions = %d", rep.Sessions)
	}
	if !rep.Degraded || len(rep.Errors) == 0 {
		t.Fatalf("report with no posts should be degraded: %+v", rep)
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "posts: none ingested") {
			found = true
		}
	}
	if !found {
		t.Fatalf("degradation reasons = %v", rep.Errors)
	}
	// The text rendering surfaces the degradation too.
	if !strings.Contains(BuildReport(store, nil, ServerOptions{}).Render(), "DEGRADED") {
		t.Fatal("text report hides degradation")
	}

	// Empty store: both sides degraded, still 200.
	empty := NewServer(nil, ServerOptions{})
	ets := httptest.NewServer(empty.Handler())
	defer ets.Close()
	rep, err = noRetry(ets).Report(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || len(rep.Errors) < 2 {
		t.Fatalf("empty-store report = %+v", rep)
	}
}
