package usaas

import (
	"net/http"
	"strconv"
	"sync"
)

// The result cache memoizes fully-rendered GET responses keyed by the query
// (path + raw query string) and the store generations at render time. Ingest
// bumps a generation, which retires every cached entry at once — a cached
// body is therefore always byte-identical to recomputing against the
// current store. Concurrent identical queries collapse into one
// computation (singleflight): one leader renders, followers replay its
// recorded response.

// CacheMetrics counts result-cache activity.
type CacheMetrics struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Collapsed uint64 `json:"collapsed"` // follower requests served by a leader's flight
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// cacheEntry is one recorded response.
type cacheEntry struct {
	status int
	header http.Header
	body   []byte
}

// flightCall tracks one in-flight computation; followers wait on done.
type flightCall struct {
	done  chan struct{}
	entry *cacheEntry // nil if the leader's response was not cacheable
}

// resultCache is a generation-scoped memo of rendered responses with
// singleflight collapsing. Keys embed the store generations, so entries
// written by a flight that straddled an ingest land under a dead key
// instead of poisoning the fresh generation.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	flights map[string]*flightCall
	order   []string // FIFO eviction order
	gen     string   // generation prefix of the entries currently held

	hits, misses, collapsed, evictions uint64
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		entries: map[string]*cacheEntry{},
		flights: map[string]*flightCall{},
	}
}

// lookup returns a cached entry, an existing flight to follow, or (when
// both are nil) leadership of a new flight for the key. A generation change
// purges all previous-generation entries.
func (c *resultCache) lookup(gen, key string) (entry *cacheEntry, follow *flightCall) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		c.gen = gen
		c.entries = map[string]*cacheEntry{}
		c.order = c.order[:0]
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		return e, nil
	}
	if f, ok := c.flights[key]; ok {
		c.collapsed++
		return nil, f
	}
	c.misses++
	f := &flightCall{done: make(chan struct{})}
	c.flights[key] = f
	return nil, nil
}

// complete finishes the leader's flight, storing the entry (when cacheable
// and the generation is still current) and waking followers.
func (c *resultCache) complete(gen, key string, entry *cacheEntry) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		delete(c.flights, key)
		f.entry = entry
		defer close(f.done)
	}
	if entry != nil && c.gen == gen {
		if _, exists := c.entries[key]; !exists {
			for len(c.order) >= c.max {
				oldest := c.order[0]
				c.order = c.order[1:]
				delete(c.entries, oldest)
				c.evictions++
			}
			c.entries[key] = entry
			c.order = append(c.order, key)
		}
	}
	c.mu.Unlock()
}

// inflight reports the number of open flights (test hook).
func (c *resultCache) inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flights)
}

func (c *resultCache) metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheMetrics{
		Hits: c.hits, Misses: c.misses, Collapsed: c.collapsed,
		Evictions: c.evictions, Entries: len(c.entries),
	}
}

// responseRecorder captures a handler's response for caching while
// streaming nothing: the recorded copy is replayed to the caller.
type responseRecorder struct {
	status int
	header http.Header
	body   []byte
}

func newResponseRecorder() *responseRecorder {
	return &responseRecorder{status: http.StatusOK, header: http.Header{}}
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(status int) { r.status = status }

func (r *responseRecorder) Write(b []byte) (int, error) {
	r.body = append(r.body, b...)
	return len(b), nil
}

// replay writes a recorded response to a real writer.
func replayEntry(w http.ResponseWriter, e *cacheEntry) {
	for k, vs := range e.header {
		w.Header()[k] = vs
	}
	w.WriteHeader(e.status)
	_, _ = w.Write(e.body)
}

// cacheKey builds the generation-scoped key for a request.
func cacheKey(sessGen, postGen uint64, r *http.Request) (gen, key string) {
	gen = strconv.FormatUint(sessGen, 10) + "." + strconv.FormatUint(postGen, 10)
	return gen, gen + "|" + r.URL.Path + "?" + r.URL.RawQuery
}

// cached wraps a GET handler with the generation-keyed result cache and
// singleflight collapsing. Responses with status >= 500 are not cached
// (transient failures must not stick until the next ingest).
func (s *Server) cached(next http.HandlerFunc) http.HandlerFunc {
	if s.cache == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			next(w, r)
			return
		}
		sessGen, postGen := s.store.Generations()
		gen, key := cacheKey(sessGen, postGen, r)
		entry, follow := s.cache.lookup(gen, key)
		if entry != nil {
			replayEntry(w, entry)
			return
		}
		if follow != nil {
			select {
			case <-follow.done:
				if follow.entry != nil {
					replayEntry(w, follow.entry)
					return
				}
				// Leader's response was not cacheable; compute solo.
				next(w, r)
			case <-r.Context().Done():
				writeErr(w, http.StatusServiceUnavailable, "request canceled while waiting for identical query")
			}
			return
		}
		// Leader: render into a recorder, then publish and replay.
		rec := newResponseRecorder()
		var stored *cacheEntry
		defer func() { s.cache.complete(gen, key, stored) }()
		next(rec, r)
		if rec.status < http.StatusInternalServerError {
			stored = &cacheEntry{status: rec.status, header: rec.header, body: rec.body}
		}
		replayEntry(w, &cacheEntry{status: rec.status, header: rec.header, body: rec.body})
	}
}

// CacheMetrics reports result-cache counters (zero value when the cache is
// disabled).
func (s *Server) CacheMetrics() CacheMetrics {
	if s.cache == nil {
		return CacheMetrics{}
	}
	return s.cache.metrics()
}
