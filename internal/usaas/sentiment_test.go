package usaas

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"usersignals/internal/leo"
	"usersignals/internal/newswire"
	"usersignals/internal/nlp"
	"usersignals/internal/social"
	"usersignals/internal/timeline"
)

var (
	corpusOnce sync.Once
	corpus     *social.Corpus
	corpusCfg  social.Config
	newsIndex  *newswire.Index
	analyzer   = nlp.NewAnalyzer()
)

func studyCorpus(t *testing.T) (*social.Corpus, *newswire.Index, social.Config) {
	t.Helper()
	corpusOnce.Do(func() {
		corpusCfg = social.DefaultConfig(17)
		var err error
		corpus, err = social.Generate(corpusCfg)
		if err != nil {
			t.Fatal(err)
		}
		newsIndex = newswire.Build(corpusCfg.Model.Launches(), corpusCfg.Outages, corpusCfg.Milestones)
	})
	return corpus, newsIndex, corpusCfg
}

func TestFig5aTopPeaks(t *testing.T) {
	c, news, _ := studyCorpus(t)
	peaks := AnnotatePeaks(c, analyzer, news, 3)
	if len(peaks) != 3 {
		t.Fatalf("found %d peaks, want 3", len(peaks))
	}
	want := map[timeline.Day]bool{
		timeline.Date(2021, time.February, 9):  true, // pre-order (positive)
		timeline.Date(2021, time.November, 24): true, // delay email (negative)
		timeline.Date(2022, time.April, 22):    true, // unreported outage (negative)
	}
	for _, pk := range peaks {
		if !want[pk.Day] {
			t.Fatalf("unexpected peak day %v (peaks: %+v)", pk.Day, peakDays(peaks))
		}
	}
	for _, pk := range peaks {
		switch pk.Day {
		case timeline.Date(2021, time.February, 9):
			if !pk.Positive {
				t.Fatal("pre-order peak should be positive")
			}
			if len(pk.News) == 0 {
				t.Fatal("pre-order peak should be annotated with news")
			}
		case timeline.Date(2021, time.November, 24):
			if pk.Positive {
				t.Fatal("delay peak should be negative")
			}
			if len(pk.News) == 0 {
				t.Fatal("delay peak should be annotated with news")
			}
		case timeline.Date(2022, time.April, 22):
			if pk.Positive {
				t.Fatal("April outage peak should be negative")
			}
			// Fig 5b: "outage" ranks in the top-3 unigrams.
			top3 := pk.TopWords
			if len(top3) > 3 {
				top3 = top3[:3]
			}
			found := false
			for _, wc := range top3 {
				if wc.Word == "outage" {
					found = true
				}
			}
			if !found {
				t.Fatalf("'outage' not in top-3 words: %+v", pk.TopWords[:min(6, len(pk.TopWords))])
			}
			// No news coverage exists — the honest failure the paper hit.
			if len(pk.News) != 0 {
				t.Fatalf("unreported outage got %d news hits", len(pk.News))
			}
		}
	}
}

func peakDays(peaks []AnnotatedPeak) []string {
	var out []string
	for _, p := range peaks {
		out = append(out, p.Day.String())
	}
	return out
}

func TestFig6OutageKeywordSeries(t *testing.T) {
	c, _, cfg := studyCorpus(t)
	series := OutageKeywordSeries(c, analyzer, nlp.OutageDictionary(), true)
	if len(series) != c.Window.Len() {
		t.Fatalf("series length %d", len(series))
	}
	byDay := map[timeline.Day]int{}
	for _, d := range series {
		byDay[d.Day] = d.Count
	}
	jan := byDay[timeline.Date(2022, time.January, 7)]
	apr := byDay[timeline.Date(2022, time.April, 22)]
	aug := byDay[timeline.Date(2022, time.August, 30)]

	// The two press-covered outages carry the largest keyword spikes.
	counts := make([]int, 0, len(series))
	for _, d := range series {
		counts = append(counts, d.Count)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if !(jan >= counts[2] && aug >= counts[2]) {
		t.Fatalf("Jan (%d) and Aug (%d) should be among the top keyword days (top3 floor %d, apr %d)", jan, aug, counts[2], apr)
	}
	if apr >= aug || apr >= jan {
		t.Fatalf("April (%d) keyword count should sit below Jan (%d) and Aug (%d)", apr, jan, aug)
	}

	// Transient outages: many smaller non-zero spikes across the window.
	smallSpikes := 0
	for _, o := range cfg.Outages {
		if o.Scope != leo.ScopeGlobal && byDay[o.Day] > 0 {
			smallSpikes++
		}
	}
	if smallSpikes < 30 {
		t.Fatalf("only %d transient outages visible in the keyword series", smallSpikes)
	}
}

func TestFig6SentimentGateAblation(t *testing.T) {
	c, _, _ := studyCorpus(t)
	gated := OutageKeywordSeries(c, analyzer, nlp.OutageDictionary(), true)
	ungated := OutageKeywordSeries(c, analyzer, nlp.OutageDictionary(), false)
	var gatedTotal, ungatedTotal int
	for i := range gated {
		gatedTotal += gated[i].Count
		ungatedTotal += ungated[i].Count
		if gated[i].Count > ungated[i].Count {
			t.Fatal("gating increased a count")
		}
	}
	if ungatedTotal <= gatedTotal {
		t.Fatalf("gate removed nothing: %d vs %d", gatedTotal, ungatedTotal)
	}
}

func TestMonitorComparison(t *testing.T) {
	c, _, cfg := studyCorpus(t)
	series := OutageKeywordSeries(c, analyzer, nlp.OutageDictionary(), true)
	outageDays := map[timeline.Day]bool{}
	for _, o := range cfg.Outages {
		outageDays[o.Day] = true
	}
	cmp := CompareMonitors(series, outageDays, 3, 150)
	if cmp.TotalOutageDays == 0 {
		t.Fatal("no ground-truth outage days")
	}
	if cmp.KeywordDetectedDays <= cmp.BaselineDetectedDays {
		t.Fatalf("keyword monitor (%d) should beat the large-incident baseline (%d)",
			cmp.KeywordDetectedDays, cmp.BaselineDetectedDays)
	}
	if cmp.BaselineDetectedDays < 2 {
		t.Fatalf("baseline should still catch the big reported outages, got %d", cmp.BaselineDetectedDays)
	}
	recall := float64(cmp.KeywordDetectedDays) / float64(cmp.TotalOutageDays)
	if recall < 0.3 {
		t.Fatalf("keyword monitor recall %v too low", recall)
	}
}

func TestAlertsFromSeries(t *testing.T) {
	series := []DayKeywords{{Day: 1, Count: 5}, {Day: 2, Count: 1}, {Day: 3, Count: 9}}
	alerts := AlertsFromSeries(series, 5)
	if len(alerts) != 2 || alerts[0].Day != 1 || alerts[1].Day != 3 {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestDailySentimentShape(t *testing.T) {
	c, _, _ := studyCorpus(t)
	daily := DailySentiment(c, analyzer)
	if len(daily) != c.Window.Len() {
		t.Fatalf("daily length %d", len(daily))
	}
	var posts int
	for _, d := range daily {
		if d.StrongPos < 0 || d.StrongNeg < 0 || d.Strong() > d.Posts*2 {
			t.Fatalf("implausible day: %+v", d)
		}
		posts += d.Posts
	}
	if posts != c.Len() {
		t.Fatalf("daily posts %d != corpus %d", posts, c.Len())
	}
}

func TestOutageGeography(t *testing.T) {
	c, _, _ := studyCorpus(t)
	// The pipeline (keyword + sentiment gate) must localize the April
	// outage to 14+ countries with a strong US majority — without ever
	// reading the generator's ground truth.
	geo := OutageGeography(c, analyzer, nlp.OutageDictionary(), timeline.Date(2022, time.April, 22))
	if len(geo) < 14 {
		t.Fatalf("April outage localized to %d countries, want >= 14: %v", len(geo), geo)
	}
	if geo["US"] < 100 {
		t.Fatalf("US reports = %d, want ~190", geo["US"])
	}
	// A quiet day yields little.
	quiet := OutageGeography(c, analyzer, nlp.OutageDictionary(), timeline.Date(2022, time.June, 8))
	total := 0
	for _, n := range quiet {
		total += n
	}
	if total > 20 {
		t.Fatalf("quiet-day outage geography too loud: %v", quiet)
	}
}

func TestBigramTrends(t *testing.T) {
	c, _, _ := studyCorpus(t)
	// Event-day bursts mint many heavy bigrams, so give the miner a large
	// budget; the early trickle's bigram has a modest surge weight.
	trends := MineTrends(c, analyzer, TrendOptions{Bigrams: true, MaxTerms: 600})
	found := false
	for _, tr := range trends {
		if tr.Term == "roam enabl" {
			found = true
			if tr.PositiveShare < 0.5 {
				t.Fatalf("bigram surge should be positive: %+v", tr)
			}
		}
	}
	if !found {
		t.Fatalf("'roam enabl' bigram not mined; terms: %v", trendTerms(trends))
	}
}

func TestRoamingTrendLeadTime(t *testing.T) {
	c, _, _ := studyCorpus(t)
	trends := MineTrends(c, analyzer, TrendOptions{})
	tweetDay := timeline.Date(2022, time.March, 3)
	lead, ok := LeadTime(trends, "roaming", tweetDay)
	if !ok {
		t.Fatalf("'roaming' never surfaced before the announcement; trends: %+v", trendTerms(trends))
	}
	if lead < 7 || lead > 21 {
		t.Fatalf("roaming lead time %d days, paper: ~2 weeks", lead)
	}
	// And the surge is positive, as the paper observed.
	for _, tr := range trends {
		if tr.Term == nlp.Stem("roaming") {
			if tr.PositiveShare < 0.5 {
				t.Fatalf("roaming positive share %v", tr.PositiveShare)
			}
		}
	}
	// Established vocabulary must not appear as emerging.
	for _, tr := range trends {
		if tr.Term == "dish" || tr.Term == "speed" {
			t.Fatalf("established term %q flagged as emerging", tr.Term)
		}
	}
}

func TestLeadTimeMiss(t *testing.T) {
	if _, ok := LeadTime(nil, "roaming", 100); ok {
		t.Fatal("empty trends produced a lead time")
	}
}

func TestFig7MonthlySpeeds(t *testing.T) {
	c, _, cfg := studyCorpus(t)
	ms := MonthlySpeeds(c, analyzer, cfg.Model, 7)
	if len(ms) != 24 {
		t.Fatalf("%d months, want 24", len(ms))
	}
	total := 0
	for _, m := range ms {
		total += m.Reports
	}
	if total < 1200 || total > 2100 {
		t.Fatalf("extracted reports = %d, want ~1750", total)
	}

	get := func(y, mo int) MonthSpeed {
		for _, m := range ms {
			if m.Month.Year() == y && int(m.Month.Month()) == mo {
				return m
			}
		}
		t.Fatalf("month %d-%d missing", y, mo)
		return MonthSpeed{}
	}
	feb21 := get(2021, 2)
	sep21 := get(2021, 9)
	dec22 := get(2022, 12)
	// The Fig. 7 arc, recovered through OCR.
	if !(sep21.MedianDownMbps > feb21.MedianDownMbps) {
		t.Fatalf("speeds should rise Feb'21 (%v) → Sep'21 (%v)", feb21.MedianDownMbps, sep21.MedianDownMbps)
	}
	if !(dec22.MedianDownMbps < sep21.MedianDownMbps) {
		t.Fatalf("speeds should fall Sep'21 (%v) → Dec'22 (%v)", sep21.MedianDownMbps, dec22.MedianDownMbps)
	}
	// Subsampled medians track the full median (stability claim).
	for _, m := range ms {
		if m.Reports < 20 {
			continue
		}
		if math.Abs(m.Median95-m.MedianDownMbps)/m.MedianDownMbps > 0.12 ||
			math.Abs(m.Median90-m.MedianDownMbps)/m.MedianDownMbps > 0.15 {
			t.Fatalf("subsample medians diverge in %v: full=%v p95=%v p90=%v",
				m.Month, m.MedianDownMbps, m.Median95, m.Median90)
		}
	}
	// Annotations present: launches and users grow.
	if sep21.Users <= feb21.Users || dec22.Users <= sep21.Users {
		t.Fatal("user annotations not growing")
	}
}

func TestFig7Conditioning(t *testing.T) {
	c, _, cfg := studyCorpus(t)
	ms := MonthlySpeeds(c, analyzer, cfg.Model, 7)
	finding := AnalyzeConditioning(ms)
	if math.IsNaN(finding.SpeedPosCorrelation) || finding.SpeedPosCorrelation < 0 {
		t.Fatalf("Pos should broadly follow speed: r=%v", finding.SpeedPosCorrelation)
	}
	if !finding.DecemberBelowApril {
		t.Fatal("conditioning anomaly missing: Dec'21 should have higher speed but lower Pos than Apr'21")
	}
}

func TestConditioningAblation(t *testing.T) {
	// With conditioning off in the generator, sentiment follows absolute
	// speed and the Dec-vs-Apr anomaly should (usually) vanish.
	cfg := social.DefaultConfig(23)
	cfg.ConditioningOff = true
	c, err := social.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms := MonthlySpeeds(c, analyzer, cfg.Model, 7)
	finding := AnalyzeConditioning(ms)
	if finding.DecemberBelowApril {
		t.Fatal("ablation: anomaly persisted with conditioning off")
	}
}

func trendTerms(trends []Trend) []string {
	out := make([]string, len(trends))
	for i, tr := range trends {
		out[i] = tr.Term
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
