package usaas

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"usersignals/internal/durable"
)

// groupCommitOptions opens a durable store with the commit scheduler on
// and a linger long enough that sequential async appends land in shared
// multi-frame groups — the shape the crash tests need to be meaningful.
func groupCommitOptions(dir string) DurabilityOptions {
	return DurabilityOptions{
		Dir:           dir,
		Fsync:         durable.FsyncPerBatch,
		GroupCommit:   true,
		MaxGroupDelay: 30 * time.Millisecond,
	}
}

// ingestAsync pushes one batch through the async path, returning its
// commit ticket without waiting.
func ingestAsync(t testing.TB, s *Store, b ingestBatch) *durable.Ticket {
	t.Helper()
	var tk *durable.Ticket
	var err error
	if b.sessions != nil {
		_, _, tk, _, err = s.addSessionsBatchAsync(b.id, b.sessions, nil, false)
	} else {
		_, _, tk, _, err = s.addPostsBatchAsync(b.id, b.posts, nil, false)
	}
	if err != nil {
		t.Fatalf("batch %s: %v", b.id, err)
	}
	return tk
}

// allWALBytes concatenates every segment in order.
func allWALBytes(t testing.TB, dir string) []byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, s := range segs {
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
	}
	return buf.Bytes()
}

// TestGroupCommitWALByteIdentity: the same batch sequence ingested through
// the group-commit pipeline and through serial fsync-per-batch appends must
// produce byte-identical WALs — group commit may only change the fsync
// schedule. This is the invariant that lets PR-5 crash recovery and PR-7
// WAL-shipping replication work on grouped logs untouched.
func TestGroupCommitWALByteIdentity(t *testing.T) {
	recs, posts := crashDataset(t, 9)
	batches := raggedBatches(recs, posts, 9)

	serialDir := t.TempDir()
	sd, err := OpenDurableStore(DurabilityOptions{Dir: serialDir, Fsync: durable.FsyncPerBatch})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		applyBatch(t, sd.Store, b)
	}
	if err := sd.Close(); err != nil {
		t.Fatal(err)
	}

	groupDir := t.TempDir()
	gd, err := OpenDurableStore(groupCommitOptions(groupDir))
	if err != nil {
		t.Fatal(err)
	}
	tickets := make([]*durable.Ticket, 0, len(batches))
	for _, b := range batches {
		tickets = append(tickets, ingestAsync(t, gd.Store, b))
	}
	for i, tk := range tickets {
		if err := gd.Store.finishIngest(batches[i].id, tk); err != nil {
			t.Fatalf("batch %s: %v", batches[i].id, err)
		}
	}
	m, ok := gd.CommitMetrics()
	if !ok {
		t.Fatal("commit metrics unavailable with group commit on")
	}
	if m.Batches != uint64(len(batches)) {
		t.Fatalf("scheduler committed %d batches, want %d", m.Batches, len(batches))
	}
	if m.Groups >= m.Batches {
		t.Fatalf("no amortization: %d groups for %d batches (linger not forming groups)", m.Groups, m.Batches)
	}
	if err := gd.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(allWALBytes(t, serialDir), allWALBytes(t, groupDir)) {
		t.Fatal("group-commit WAL differs from serial fsync-per-batch WAL")
	}
}

// TestGroupCommitCrashEveryOffset cuts a WAL written through multi-frame
// commit groups at every frame boundary and inside every frame: recovery
// must never fail, and the surviving prefix must rebuild a store whose
// /v1/report is byte-identical to replaying only the surviving complete
// batches — exactly the PR-5 contract, now with frames that were synced in
// groups. A crash between a group's write and its fsync surfaces here as a
// cut before those frames (the OS never persisted them): only frames
// covered by a completed fsync are promised to survive, and whatever
// prefix does survive must recover cleanly.
func TestGroupCommitCrashEveryOffset(t *testing.T) {
	seeds := []uint64{5, 6}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			recs, posts := crashDataset(t, seed)
			batches := raggedBatches(recs, posts, seed)
			dir := t.TempDir()
			d, err := OpenDurableStore(groupCommitOptions(dir))
			if err != nil {
				t.Fatal(err)
			}
			tickets := make([]*durable.Ticket, 0, len(batches))
			for _, b := range batches {
				tickets = append(tickets, ingestAsync(t, d.Store, b))
			}
			// A duplicate delivery while its original may still be in an
			// open group: must not add a frame.
			if _, dup, _, _, err := d.Store.addSessionsBatchAsync(batches[0].id, batches[0].sessions, nil, false); err != nil || !dup {
				t.Fatalf("duplicate delivery: dup=%v err=%v", dup, err)
			}
			for i, tk := range tickets {
				if err := d.Store.finishIngest(batches[i].id, tk); err != nil {
					t.Fatalf("batch %s: %v", batches[i].id, err)
				}
			}
			m, _ := d.CommitMetrics()
			if m.MaxGroup < 2 {
				t.Fatalf("largest commit group is %d; crash coverage needs multi-frame groups", m.MaxGroup)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(onlySegment(t, dir))
			if err != nil {
				t.Fatal(err)
			}
			bounds := durable.FrameBoundaries(data)
			if len(bounds) != len(batches) {
				t.Fatalf("log holds %d frames for %d batches", len(bounds), len(batches))
			}

			expected := map[int][]byte{}
			expect := func(k int) []byte {
				if b, ok := expected[k]; ok {
					return b
				}
				ref := &Store{}
				for _, b := range batches[:k] {
					applyBatch(t, ref, b)
				}
				rb := reportBytes(t, ref)
				expected[k] = rb
				return rb
			}

			var cuts []int64
			prev := int64(0)
			for _, b := range bounds {
				cuts = append(cuts, b)
				if mid := (prev + b) / 2; mid > prev {
					cuts = append(cuts, mid)
				}
				prev = b
			}
			for _, cut := range cuts {
				sub := t.TempDir()
				if err := os.WriteFile(filepath.Join(sub, filepath.Base(onlySegment(t, dir))), data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				// Recovery itself reopens with group commit on: replay and
				// subsequent ingest must work identically on a grouped log.
				d2, err := OpenDurableStore(groupCommitOptions(sub))
				if err != nil {
					t.Fatalf("cut %d: recovery failed: %v", cut, err)
				}
				k := 0
				for _, b := range bounds {
					if b <= cut {
						k++
					}
				}
				if d2.Recovery.ReplayedBatches != k {
					t.Fatalf("cut %d: replayed %d batches, want %d", cut, d2.Recovery.ReplayedBatches, k)
				}
				if got := reportBytes(t, d2.Store); !bytes.Equal(got, expect(k)) {
					t.Fatalf("cut %d (%d surviving batches): recovered report differs from reference", cut, k)
				}
				if err := d2.Close(); err != nil {
					t.Fatalf("cut %d: close: %v", cut, err)
				}
			}
		})
	}
}

// TestDuplicateWaitsForPendingCommit: a retry of a batch whose covering
// fsync has not completed yet must receive the SAME commit ticket as the
// original — acknowledging the duplicate from the dedup table alone would
// promise durability the log has not delivered.
func TestDuplicateWaitsForPendingCommit(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurableStore(DurabilityOptions{
		Dir:           dir,
		Fsync:         durable.FsyncPerBatch,
		GroupCommit:   true,
		MaxGroupDelay: time.Minute, // hold the group open; Close resolves it
		MaxGroupBytes: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := crashDataset(t, 3)
	_, _, t1, _, err := d.Store.addSessionsBatchAsync("dup-1", recs[:5], nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if t1 == nil || t1.Resolved() {
		t.Fatal("original ticket should be pending while the group lingers")
	}
	resp, dup, t2, _, err := d.Store.addSessionsBatchAsync("dup-1", recs[:5], nil, false)
	if err != nil || !dup || !resp.Duplicate {
		t.Fatalf("duplicate delivery: dup=%v err=%v", dup, err)
	}
	if t2 != t1 {
		t.Fatal("duplicate did not receive the original's pending commit ticket")
	}

	// Close seals and fsyncs the lingering group; both waiters resolve nil
	// and the pending entry is cleaned up.
	closed := make(chan error, 1)
	go func() { closed <- d.Close() }()
	if err := d.Store.finishIngest("dup-1", t1); err != nil {
		t.Fatal(err)
	}
	if err := d.Store.finishIngest("dup-1", t2); err != nil {
		t.Fatal(err)
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	d.Store.dedupMu.RLock()
	npend := len(d.Store.pending)
	d.Store.dedupMu.RUnlock()
	if npend != 0 {
		t.Fatalf("%d pending tickets leaked after resolution", npend)
	}
}

// TestStatsIngestGauges: /v1/stats grows ingest + admission sections when
// (and only when) those subsystems are on.
func TestStatsIngestGauges(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurableStore(groupCommitOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := NewServer(d.Store, ServerOptions{
		Admission:      AdmissionOptions{Rate: 1000, Burst: 1000},
		RequestTimeout: -1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	recs, _ := crashDataset(t, 4)
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var body bytes.Buffer
			if err := json.NewEncoder(&body).Encode(recs[i*10 : (i+1)*10]); err != nil {
				panic(err)
			}
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", &body)
			req.Header.Set(BatchIDHeader, fmt.Sprintf("gauge-%d", i))
			req.Header.Set(TenantHeader, "acme")
			resp, err := ts.Client().Do(req)
			if err != nil {
				panic(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				panic(fmt.Sprintf("ingest status %d", resp.StatusCode))
			}
		}(i)
	}
	wg.Wait()

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sessions != n*10 {
		t.Fatalf("sessions = %d, want %d", st.Sessions, n*10)
	}
	if st.Ingest == nil {
		t.Fatal("stats missing ingest pipeline gauges with group commit on")
	}
	if st.Ingest.CommitBatches != n {
		t.Fatalf("commit_batches = %d, want %d", st.Ingest.CommitBatches, n)
	}
	if st.Ingest.CommitGroups == 0 || st.Ingest.MeanGroup < 1 {
		t.Fatalf("implausible scheduler gauges: %+v", st.Ingest)
	}
	var hist uint64
	for _, c := range st.Ingest.GroupSizeHist {
		hist += c
	}
	if hist != st.Ingest.CommitGroups {
		t.Fatalf("group size histogram sums to %d, want %d", hist, st.Ingest.CommitGroups)
	}
	if len(st.Admission) != 1 || st.Admission[0].Tenant != "acme" || st.Admission[0].Admitted != n {
		t.Fatalf("admission gauges: %+v", st.Admission)
	}

	// A plain store's stats must not carry the optional sections at all —
	// several tests byte-compare /v1/stats across stores.
	plain := httptest.NewServer(NewServer(&Store{}, ServerOptions{RequestTimeout: -1}).Handler())
	defer plain.Close()
	pr, err := plain.Client().Get(plain.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	raw, _ := io.ReadAll(pr.Body)
	if bytes.Contains(raw, []byte("ingest")) || bytes.Contains(raw, []byte("admission")) {
		t.Fatalf("plain store stats leaked optional sections: %s", raw)
	}
}
