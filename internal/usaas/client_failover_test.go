package usaas

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"
)

// failoverPair starts two stores behind handlers that emulate the replica
// write discipline: the node currently marked leader ingests, the other
// answers writes with a 307 to the leader and serves reads locally.
type failoverPair struct {
	stores  [2]*Store
	servers [2]*httptest.Server
	leader  atomic.Int32
	token   string
}

func newFailoverPair(t *testing.T, token string) *failoverPair {
	t.Helper()
	p := &failoverPair{token: token}
	for i := 0; i < 2; i++ {
		i := i
		p.stores[i] = &Store{}
		inner := NewServer(p.stores[i], ServerOptions{AuthToken: token}).Handler()
		p.servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && int32(i) != p.leader.Load() {
				w.Header().Set("Location", p.servers[p.leader.Load()].URL+r.URL.Path)
				w.WriteHeader(http.StatusTemporaryRedirect)
				return
			}
			if r.URL.Path == "/v1/replica/status" {
				role := "follower"
				if int32(i) == p.leader.Load() {
					role = "leader"
				}
				w.Header().Set("Content-Type", "application/json")
				w.Write([]byte(`{"role":"` + role + `"}`))
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(p.servers[i].Close)
	}
	return p
}

func (p *failoverPair) endpoints() []string {
	return []string{p.servers[0].URL, p.servers[1].URL}
}

// TestClientFollowsLeaderRedirect: a write hitting a follower is answered
// with a 307; the client re-points at the leader, re-sends with its
// Authorization header intact, and remembers the leader for later writes.
func TestClientFollowsLeaderRedirect(t *testing.T) {
	p := newFailoverPair(t, "tok")
	p.leader.Store(1) // client's initial belief (endpoint 0) is wrong
	c := NewClientWithOptions("", ClientOptions{
		Endpoints: p.endpoints(),
		Token:     "tok",
		Sleep:     func(time.Duration) {},
	})
	ctx := context.Background()
	sessions, _ := crashDataset(t, 1)
	resp, err := c.IngestSessions(ctx, sessions[:10])
	if err != nil {
		t.Fatalf("write via follower: %v", err)
	}
	if resp.Accepted != 10 {
		t.Fatalf("accepted %d, want 10", resp.Accepted)
	}
	if n, _ := p.stores[1].Counts(); n != 10 {
		t.Fatalf("leader store holds %d sessions, want 10", n)
	}
	if n, _ := p.stores[0].Counts(); n != 0 {
		t.Fatalf("follower store holds %d sessions, want 0", n)
	}
	// The redirect taught the client where the leader is.
	if got := c.cluster.leaderURL().Host; got != mustHost(t, p.servers[1].URL) {
		t.Fatalf("leader belief %q, want %q", got, p.servers[1].URL)
	}
}

// TestClientRetryThroughPromotion: the leader dies mid-stream, the other
// node is promoted, and the client's write retries discover the new
// leader via the status probe — no reconfiguration, no double-apply.
func TestClientRetryThroughPromotion(t *testing.T) {
	p := newFailoverPair(t, "")
	p.leader.Store(0)
	c := NewClientWithOptions("", ClientOptions{
		Endpoints: p.endpoints(),
		Retry:     RetryPolicy{MaxAttempts: 6},
		Sleep:     func(time.Duration) {},
	})
	ctx := context.Background()
	sessions, _ := crashDataset(t, 2)
	if _, err := c.IngestSessionsBatch(ctx, "pre-failover", sessions[:5]); err != nil {
		t.Fatalf("write before failover: %v", err)
	}
	// Kill the leader and promote the follower.
	p.servers[0].Close()
	p.leader.Store(1)
	resp, err := c.IngestSessionsBatch(ctx, "post-failover", sessions[5:12])
	if err != nil {
		t.Fatalf("write through promotion: %v", err)
	}
	if resp.Accepted != 7 || resp.Duplicate {
		t.Fatalf("post-failover ack %+v", resp)
	}
	if n, _ := p.stores[1].Counts(); n != 7 {
		t.Fatalf("new leader holds %d sessions, want 7", n)
	}
	// An idempotent replay of the same batch stays a duplicate.
	resp, err = c.IngestSessionsBatch(ctx, "post-failover", sessions[5:12])
	if err != nil || !resp.Duplicate {
		t.Fatalf("replay after failover: %+v err=%v", resp, err)
	}
}

// TestClientReadFanIn: reads rotate across the replica set instead of
// pinning the leader.
func TestClientReadFanIn(t *testing.T) {
	var hits [2]atomic.Int32
	var servers [2]*httptest.Server
	for i := 0; i < 2; i++ {
		i := i
		inner := NewServer(&Store{}, ServerOptions{}).Handler()
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			inner.ServeHTTP(w, r)
		}))
		defer servers[i].Close()
	}
	c := NewClientWithOptions("", ClientOptions{
		Endpoints: []string{servers[0].URL, servers[1].URL},
	})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := c.Stats(ctx); err != nil {
			t.Fatalf("stats %d: %v", i, err)
		}
	}
	if hits[0].Load() != 3 || hits[1].Load() != 3 {
		t.Fatalf("read fan-in: %d/%d hits, want 3/3", hits[0].Load(), hits[1].Load())
	}
}

func mustHost(t *testing.T, raw string) string {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}
