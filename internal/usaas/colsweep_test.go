package usaas

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"usersignals/internal/colstore"
	"usersignals/internal/durable"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// colsweepSpecs is the filter matrix the identity tests sweep: unfiltered,
// the full study filters, each clause family alone, and a dictionary miss
// (a country no record carries compiles to a match-nothing predicate).
func colsweepSpecs(recs []telemetry.SessionRecord) map[string]*telemetry.FilterSpec {
	study := StudyFilterSpec(telemetry.LatencyMean)
	studyLoss := StudyFilterSpec(telemetry.LossMean)
	country := telemetry.FilterSpec{Country: "US"}
	ispMin := telemetry.FilterSpec{ISP: recs[0].ISP, MinMeetingSize: 4}
	bh := timeline.ESTBusinessHours
	entBH := telemetry.FilterSpec{Enterprise: true, BusinessHours: &bh}
	miss := telemetry.FilterSpec{Country: "Atlantis"}
	return map[string]*telemetry.FilterSpec{
		"none":            nil,
		"study-latency":   &study,
		"study-loss":      &studyLoss,
		"country":         &country,
		"isp-minmeeting":  &ispMin,
		"enterprise-bh":   &entBH,
		"country-missing": &miss,
	}
}

// TestColumnarSweepsMatchRow is the tentpole identity property: every
// columnar sweep must render byte-identically to its row reference over the
// same records, for every filter spec, at every worker count, on both the
// open mirror and the fully sealed one.
func TestColumnarSweepsMatchRow(t *testing.T) {
	seeds := []uint64{21, 22, 23}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			recs := viewSessions(t, seed, 5000)
			store := &Store{}
			ingestUnevenly(t, store, recs)
			if _, ok := store.ColumnarSnapshot(); !ok {
				t.Fatal("columnar mirror not built by ingest")
			}

			b := stats.NewBinner(0, 300, 8)
			xb := stats.NewBinner(0, 300, 6)
			yb := stats.NewBinner(0, 4, 6)
			check := func(shape string) {
				for name, spec := range colsweepSpecs(recs) {
					filter := specFilter(spec)
					wantDose, err := DoseResponseN(recs, telemetry.LatencyMean, telemetry.Presence, b, filter, 1)
					if err != nil {
						t.Fatal(err)
					}
					wantGrid, err := CompoundingN(recs, telemetry.LatencyMean, telemetry.LossMean, telemetry.CamOn, xb, yb, filter, 1)
					if err != nil {
						t.Fatal(err)
					}
					wantPlat, err := ByPlatformN(recs, telemetry.LatencyMean, telemetry.MicOn, b, filter, 1)
					if err != nil {
						t.Fatal(err)
					}
					wantSize, err := ByMeetingSizeN(recs, telemetry.LatencyMean, telemetry.Presence, b, nil, filter, 1)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{1, 4, 16} {
						tag := fmt.Sprintf("%s/%s/w%d", shape, name, workers)
						gotDose, err := store.DoseResponseSpec(telemetry.LatencyMean, telemetry.Presence, b, spec, workers)
						if err != nil {
							t.Fatal(err)
						}
						if marshal(t, gotDose) != marshal(t, wantDose) {
							t.Errorf("%s: DoseResponseSpec diverges from row path", tag)
						}
						gotGrid, err := store.CompoundingSpec(telemetry.LatencyMean, telemetry.LossMean, telemetry.CamOn, xb, yb, spec, workers)
						if err != nil {
							t.Fatal(err)
						}
						if marshal(t, gotGrid) != marshal(t, wantGrid) {
							t.Errorf("%s: CompoundingSpec diverges from row path", tag)
						}
						gotPlat, err := store.ByPlatformSpec(telemetry.LatencyMean, telemetry.MicOn, b, spec, workers)
						if err != nil {
							t.Fatal(err)
						}
						if marshal(t, gotPlat) != marshal(t, wantPlat) {
							t.Errorf("%s: ByPlatformSpec diverges from row path", tag)
						}
						gotSize, err := store.ByMeetingSizeSpec(telemetry.LatencyMean, telemetry.Presence, b, nil, spec, workers)
						if err != nil {
							t.Fatal(err)
						}
						if marshal(t, gotSize) != marshal(t, wantSize) {
							t.Errorf("%s: ByMeetingSizeSpec diverges from row path", tag)
						}
					}
				}
			}
			check("open")
			store.SealColumnar()
			st := store.ColumnarStats()
			if st.SealedPartitions != st.Partitions {
				t.Fatalf("SealColumnar left %d of %d partitions open", st.Partitions-st.SealedPartitions, st.Partitions)
			}
			check("sealed")
		})
	}
}

// TestColumnarFallsBackToRow: parameterizations without a column plan (an
// invalid band metric) and stores without a mirror must silently take the
// row path and still agree with it.
func TestColumnarFallsBackToRow(t *testing.T) {
	recs := viewSessions(t, 24, 3000)
	b := stats.NewBinner(0, 300, 8)
	bad := telemetry.FilterSpec{Bands: []telemetry.MetricBand{{Metric: telemetry.Metric(99), Lo: 0, Hi: 1e12}}}

	store := &Store{}
	ingestUnevenly(t, store, recs)
	want, err := DoseResponseN(recs, telemetry.LatencyMean, telemetry.Presence, b, bad.Filter(), 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.DoseResponseSpec(telemetry.LatencyMean, telemetry.Presence, b, &bad, 4)
	if err != nil {
		t.Fatal(err)
	}
	if marshal(t, got) != marshal(t, want) {
		t.Error("invalid-band spec did not fall back to an identical row scan")
	}

	off := &Store{}
	off.DisableColumnar()
	ingestUnevenly(t, off, recs)
	if _, ok := off.ColumnarSnapshot(); ok {
		t.Fatal("DisableColumnar store still built a mirror")
	}
	study := StudyFilterSpec(telemetry.LatencyMean)
	want, err = DoseResponseN(recs, telemetry.LatencyMean, telemetry.Presence, b, study.Filter(), 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err = off.DoseResponseSpec(telemetry.LatencyMean, telemetry.Presence, b, &study, 4)
	if err != nil {
		t.Fatal(err)
	}
	if marshal(t, got) != marshal(t, want) {
		t.Error("mirror-off store diverges from row path")
	}
}

// reportHTTPBytes fetches /v1/report over HTTP, literally.
func reportHTTPBytes(t testing.TB, store *Store) []byte {
	t.Helper()
	srv := httptest.NewServer(NewServer(store, ServerOptions{ResultCacheSize: -1}).Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("report: %d %v", resp.StatusCode, err)
	}
	return body
}

// TestReportIdenticalColumnarOnOff: the operator report served over HTTP
// must be byte-identical with the mirror on and off — the columnar path is
// an optimization, never a semantic.
func TestReportIdenticalColumnarOnOff(t *testing.T) {
	seeds := []uint64{31, 32, 33}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			recs, posts := crashDataset(t, seed)
			on := &Store{}
			off := &Store{}
			off.DisableColumnar()
			for _, b := range raggedBatches(recs, posts, seed) {
				applyBatch(t, on, b)
				applyBatch(t, off, b)
			}
			if _, ok := on.ColumnarSnapshot(); !ok {
				t.Fatal("columnar mirror not built")
			}
			onBytes := reportHTTPBytes(t, on)
			if !bytes.Equal(onBytes, reportHTTPBytes(t, off)) {
				t.Fatal("/v1/report differs between columnar and row stores")
			}
			// Sealing every partition must not change a byte either.
			on.SealColumnar()
			if !bytes.Equal(reportHTTPBytes(t, on), onBytes) {
				t.Fatal("/v1/report changed after sealing the mirror")
			}
		})
	}
}

// TestReportIdenticalAfterRecovery: a durable store recovered from disk
// rebuilds the mirror and must serve the same report bytes as (a) its own
// pre-crash self and (b) a columnar-off store fed the same batches.
func TestReportIdenticalAfterRecovery(t *testing.T) {
	recs, posts := crashDataset(t, 34)
	batches := raggedBatches(recs, posts, 34)
	dir := t.TempDir()
	d, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		applyBatch(t, d.Store, b)
	}
	live := reportHTTPBytes(t, d.Store)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if _, ok := rec.Store.ColumnarSnapshot(); !ok {
		t.Fatal("recovery did not rebuild the columnar mirror")
	}
	if snap, _ := rec.Store.ColumnarSnapshot(); snap.Len() != len(recs) {
		t.Fatalf("rebuilt mirror holds %d records, want %d", snap.Len(), len(recs))
	}
	if !bytes.Equal(reportHTTPBytes(t, rec.Store), live) {
		t.Fatal("recovered report differs from pre-crash report")
	}

	off := &Store{}
	off.DisableColumnar()
	for _, b := range batches {
		applyBatch(t, off, b)
	}
	if !bytes.Equal(reportHTTPBytes(t, off), live) {
		t.Fatal("recovered columnar report differs from row-only reference")
	}

	// And a recovery with the mirror disabled must agree too.
	recOff, err := OpenDurableStore(DurabilityOptions{Dir: dir, Fsync: durable.FsyncOff, DisableColumnar: true})
	if err != nil {
		t.Fatal(err)
	}
	defer recOff.Close()
	if _, ok := recOff.Store.ColumnarSnapshot(); ok {
		t.Fatal("DisableColumnar recovery still built a mirror")
	}
	if !bytes.Equal(reportHTTPBytes(t, recOff.Store), live) {
		t.Fatal("mirror-off recovery differs from pre-crash report")
	}
}

// fuzzRecords derives an arbitrary session slice from fuzz bytes: random
// fields including NaN metrics, negative sizes, pre-epoch starts, and
// out-of-order days — the shapes the codec must round-trip.
func fuzzRecords(data []byte) []telemetry.SessionRecord {
	if len(data) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(int64(len(data)) * 2654435761))
	for _, b := range data {
		rng = rand.New(rand.NewSource(rng.Int63() ^ int64(b)))
	}
	n := int(data[0])%300 + 1
	platforms := []string{"meet", "zoom", "teams", "webex"}
	countries := []string{"US", "DE", "IN", "BR"}
	isps := []string{"comcast", "verizon", "t-home", ""}
	recs := make([]telemetry.SessionRecord, n)
	for i := range recs {
		r := &recs[i]
		r.CallID = rng.Uint64()
		r.UserID = rng.Uint64() % 50
		day := int64(rng.Intn(8)) - 2 // out-of-order and pre-epoch days
		r.Start = time.Unix(day*86400+int64(rng.Intn(86400)), int64(rng.Intn(1e9))).UTC()
		r.DurationSec = rng.Float64() * 3600
		r.Platform = platforms[rng.Intn(len(platforms))]
		r.Country = countries[rng.Intn(len(countries))]
		r.ISP = isps[rng.Intn(len(isps))]
		r.MeetingSize = rng.Intn(16) - 2
		r.Enterprise = rng.Intn(2) == 0
		r.LeftEarly = rng.Intn(2) == 0
		r.Rated = rng.Intn(3) == 0
		r.Rating = rng.Intn(7) - 1
		m := func() float64 {
			if rng.Intn(12) == 0 {
				return math.NaN()
			}
			return rng.Float64() * 300
		}
		r.Net = telemetry.NetAggregates{
			LatencyMean: m(), LatencyMedian: m(), LatencyP95: m(),
			LossMean: m(), LossMedian: m(), LossP95: m(),
			JitterMean: m(), JitterMedian: m(), JitterP95: m(),
			BWMean: m(), BWMedian: m(), BWP95: m(),
		}
		r.PresencePct = rng.Float64() * 100
		r.CamOnPct = rng.Float64() * 100
		r.MicOnPct = rng.Float64() * 100
	}
	return recs
}

// fuzzRecordsEqual compares records bitwise: NaN equals NaN, and Start must
// match to the nanosecond in the same location.
func fuzzRecordsEqual(a, b *telemetry.SessionRecord) bool {
	fe := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.CallID == b.CallID && a.UserID == b.UserID &&
		a.Start.Equal(b.Start) && a.Start.Location() == b.Start.Location() &&
		fe(a.DurationSec, b.DurationSec) &&
		a.Platform == b.Platform && a.Country == b.Country && a.ISP == b.ISP &&
		a.MeetingSize == b.MeetingSize && a.Enterprise == b.Enterprise &&
		a.LeftEarly == b.LeftEarly && a.Rated == b.Rated && a.Rating == b.Rating &&
		fe(a.Net.LatencyMean, b.Net.LatencyMean) && fe(a.Net.LatencyMedian, b.Net.LatencyMedian) && fe(a.Net.LatencyP95, b.Net.LatencyP95) &&
		fe(a.Net.LossMean, b.Net.LossMean) && fe(a.Net.LossMedian, b.Net.LossMedian) && fe(a.Net.LossP95, b.Net.LossP95) &&
		fe(a.Net.JitterMean, b.Net.JitterMean) && fe(a.Net.JitterMedian, b.Net.JitterMedian) && fe(a.Net.JitterP95, b.Net.JitterP95) &&
		fe(a.Net.BWMean, b.Net.BWMean) && fe(a.Net.BWMedian, b.Net.BWMedian) && fe(a.Net.BWP95, b.Net.BWP95) &&
		fe(a.PresencePct, b.PresencePct) && fe(a.CamOnPct, b.CamOnPct) && fe(a.MicOnPct, b.MicOnPct)
}

// FuzzColumnarRoundTrip: arbitrary records → columnar encode → seal →
// materialize must reproduce the records bit for bit, and the columnar
// sweeps over the mirror must match the row sweeps over the originals.
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{200, 7, 7, 7})
	f.Add([]byte("columnar"))
	f.Add([]byte{255, 0, 128, 64, 32, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs := fuzzRecords(data)
		if len(recs) == 0 {
			t.Skip()
		}
		cols := colstore.New()
		if err := cols.Append(recs); err != nil {
			t.Fatal(err)
		}
		check := func(shape string) {
			snap := cols.Snapshot()
			if snap.Len() != len(recs) {
				t.Fatalf("%s: snapshot holds %d records, want %d", shape, snap.Len(), len(recs))
			}
			got := snap.AppendRecords(nil)
			for i := range recs {
				if !fuzzRecordsEqual(&recs[i], &got[i]) {
					t.Fatalf("%s: record %d mutated in round trip:\n got %+v\nwant %+v", shape, i, got[i], recs[i])
				}
			}
			study := StudyFilterSpec(telemetry.LatencyMean)
			b := stats.NewBinner(0, 300, 6)
			for _, spec := range []*telemetry.FilterSpec{nil, &study} {
				want, err := DoseResponseN(recs, telemetry.LatencyMean, telemetry.Presence, b, specFilter(spec), 3)
				if err != nil {
					t.Fatal(err)
				}
				gotS, ok, err := DoseResponseCols(snap, telemetry.LatencyMean, telemetry.Presence, b, spec, 3)
				if err != nil || !ok {
					t.Fatalf("%s: columnar dose-response: ok=%v err=%v", shape, ok, err)
				}
				if fmt.Sprintf("%+v", gotS) != fmt.Sprintf("%+v", want) {
					t.Fatalf("%s: dose-response diverges from row path", shape)
				}
				wantG, err := CompoundingN(recs, telemetry.LatencyMean, telemetry.LossMean, telemetry.CamOn, b, b, specFilter(spec), 3)
				if err != nil {
					t.Fatal(err)
				}
				gotG, ok, err := CompoundingCols(snap, telemetry.LatencyMean, telemetry.LossMean, telemetry.CamOn, b, b, spec, 3)
				if err != nil || !ok {
					t.Fatalf("%s: columnar compounding: ok=%v err=%v", shape, ok, err)
				}
				if fmt.Sprintf("%+v", gotG) != fmt.Sprintf("%+v", wantG) {
					t.Fatalf("%s: compounding diverges from row path", shape)
				}
			}
		}
		check("open")
		cols.SealTail()
		check("sealed")
	})
}
