package usaas

import (
	"math"
	"sync"
	"testing"

	"usersignals/internal/conference"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
)

// mixDataset is a realistic-mixture dataset with oversampled surveys,
// shared across the MOS tests.
var (
	mixOnce sync.Once
	mixRecs []telemetry.SessionRecord
)

func mixDataset(t *testing.T) []telemetry.SessionRecord {
	t.Helper()
	mixOnce.Do(func() {
		opts := conference.Defaults(99, 900)
		opts.SurveyRate = 0.08
		g, err := conference.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		mixRecs, err = g.GenerateAll()
		if err != nil {
			t.Fatal(err)
		}
	})
	return mixRecs
}

func TestFig4EngagementMOSCorrelation(t *testing.T) {
	recs := mixDataset(t)
	report, err := MOSReport(recs, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(report) != 3 {
		t.Fatalf("report for %d engagement metrics", len(report))
	}
	for _, em := range report {
		if em.RatedSessions < 50 {
			t.Fatalf("%v: only %d rated sessions", em.Engagement, em.RatedSessions)
		}
		// Raw per-session correlations are modest: most sessions cluster
		// at high engagement / high rating and the 1-5 scale is noisy.
		// The directional signal plus the rising binned curve below are
		// the Fig. 4 claims.
		if em.Pearson < 0.05 {
			t.Fatalf("%v: Pearson %v, want positive", em.Engagement, em.Pearson)
		}
		if em.Spearman < 0.05 {
			t.Fatalf("%v: Spearman %v", em.Engagement, em.Spearman)
		}
		// The binned MOS curve rises with engagement: last non-empty bin
		// above first.
		ne := em.Series.NonEmpty()
		if len(ne.Y) < 3 {
			t.Fatalf("%v: too few bins", em.Engagement)
		}
		if ne.Y[len(ne.Y)-1] <= ne.Y[0] {
			t.Fatalf("%v: MOS does not rise with engagement: %v", em.Engagement, ne.Y)
		}
	}
}

func TestMOSByEngagementErrors(t *testing.T) {
	if _, err := MOSByEngagement(nil, telemetry.Presence, 10, nil); err == nil {
		t.Fatal("no rated sessions accepted")
	}
}

func TestMOSPredictorBeatsBaseline(t *testing.T) {
	recs := mixDataset(t)
	eval, err := EvaluateMOSPredictor(recs, 0.7, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if eval.PredictorMAE >= eval.BaselineMAE {
		t.Fatalf("predictor MAE %v not better than baseline %v", eval.PredictorMAE, eval.BaselineMAE)
	}
	if eval.TreeMAE >= eval.BaselineMAE {
		t.Fatalf("tree MAE %v not better than baseline %v", eval.TreeMAE, eval.BaselineMAE)
	}
	if eval.PredictorMAE > 1.0 {
		t.Fatalf("predictor MAE %v implausibly high", eval.PredictorMAE)
	}
	// The coverage argument: surveys cover a sliver, the predictor covers
	// everything.
	if eval.SurveyCoverage > 0.15 {
		t.Fatalf("survey coverage %v; should be sparse", eval.SurveyCoverage)
	}
	if eval.PredictorCoverage != 1 {
		t.Fatalf("predictor coverage %v", eval.PredictorCoverage)
	}
}

func TestMOSPredictorPredictBounds(t *testing.T) {
	recs := mixDataset(t)
	p, err := TrainMOSPredictor(recs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if p.R2() <= 0 {
		t.Fatalf("R2 = %v", p.R2())
	}
	for i := range recs {
		v := p.Predict(&recs[i])
		if v < 1 || v > 5 {
			t.Fatalf("prediction %v out of scale", v)
		}
	}
	// Good sessions predict higher than bad ones.
	good := telemetry.SessionRecord{
		PresencePct: 100, CamOnPct: 70, MicOnPct: 85,
		Net: telemetry.NetAggregates{LatencyMean: 15, LossMean: 0, JitterMean: 1, BWMean: 3.8},
	}
	bad := telemetry.SessionRecord{
		PresencePct: 20, CamOnPct: 5, MicOnPct: 20,
		Net: telemetry.NetAggregates{LatencyMean: 280, LossMean: 4, JitterMean: 15, BWMean: 1},
	}
	if p.Predict(&good) <= p.Predict(&bad) {
		t.Fatalf("good %v <= bad %v", p.Predict(&good), p.Predict(&bad))
	}
}

func TestFeatureSetAblation(t *testing.T) {
	recs := mixDataset(t)
	maes := map[FeatureSet]float64{}
	for _, set := range []FeatureSet{FeaturesCombined, FeaturesEngagementOnly, FeaturesNetworkOnly} {
		mae, err := FeatureSetMAE(recs, set, 1.0)
		if err != nil {
			t.Fatalf("%v: %v", set, err)
		}
		if mae <= 0 || mae > 1.5 {
			t.Fatalf("%v MAE = %v implausible", set, mae)
		}
		maes[set] = mae
		if set.String() == "" {
			t.Fatal("unnamed feature set")
		}
	}
	// Combined features should not be meaningfully worse than either
	// family alone (they strictly contain both).
	if maes[FeaturesCombined] > maes[FeaturesEngagementOnly]*1.05 ||
		maes[FeaturesCombined] > maes[FeaturesNetworkOnly]*1.05 {
		t.Fatalf("combined %v worse than single families %v / %v",
			maes[FeaturesCombined], maes[FeaturesEngagementOnly], maes[FeaturesNetworkOnly])
	}
}

func TestFeatureSetMAEErrors(t *testing.T) {
	if _, err := FeatureSetMAE(nil, FeaturesCombined, 1); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMOSTreePredicts(t *testing.T) {
	recs := mixDataset(t)
	tree, err := TrainMOSTree(recs, stats.TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := telemetry.SessionRecord{
		PresencePct: 100, CamOnPct: 70, MicOnPct: 85,
		Net: telemetry.NetAggregates{LatencyMean: 15, BWMean: 3.8, JitterMean: 1},
	}
	bad := telemetry.SessionRecord{
		PresencePct: 15, CamOnPct: 5, MicOnPct: 15,
		Net: telemetry.NetAggregates{LatencyMean: 280, LossMean: 4, JitterMean: 15, BWMean: 1},
	}
	g, b := tree.Predict(&good), tree.Predict(&bad)
	if g < 1 || g > 5 || b < 1 || b > 5 {
		t.Fatalf("tree predictions out of scale: %v %v", g, b)
	}
	if g <= b {
		t.Fatalf("tree: good %v <= bad %v", g, b)
	}
}

func TestTrainMOSPredictorErrors(t *testing.T) {
	if _, err := TrainMOSPredictor(nil, 1); err != ErrNoRatings {
		t.Fatalf("err = %v, want ErrNoRatings", err)
	}
	if _, err := TrainMOSTree(nil, stats.TreeOptions{}); err != ErrNoRatings {
		t.Fatalf("tree err = %v, want ErrNoRatings", err)
	}
	if _, err := EvaluateMOSPredictor(nil, 0.7, 1); err == nil {
		t.Fatal("too-few-ratings accepted")
	}
}

func TestEvaluateDefaultsTrainFrac(t *testing.T) {
	recs := mixDataset(t)
	eval, err := EvaluateMOSPredictor(recs, -2, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := eval.TrainSessions + eval.TestSessions
	frac := float64(eval.TrainSessions) / float64(total)
	if math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("default split %v, want 0.7", frac)
	}
}
