package usaas

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"usersignals/internal/durable"
	"usersignals/internal/social"
)

// inflightBatch pairs one async delivery's commit ticket with its apply job.
type inflightBatch struct {
	id  string
	tk  *durable.Ticket
	job *applyJob
}

// ingestAsyncJob sequences one batch without waiting for its apply or fsync.
func ingestAsyncJob(t testing.TB, s *Store, b ingestBatch) inflightBatch {
	t.Helper()
	var (
		tk  *durable.Ticket
		job *applyJob
		err error
	)
	if b.sessions != nil {
		_, _, tk, job, err = s.addSessionsBatchAsync(b.id, b.sessions, nil, false)
	} else {
		_, _, tk, job, err = s.addPostsBatchAsync(b.id, b.posts, nil, false)
	}
	if err != nil {
		t.Fatalf("batch %s: %v", b.id, err)
	}
	return inflightBatch{id: b.id, tk: tk, job: job}
}

// pipelineOptions is the durable configuration the pipeline tests run under:
// group commit with a short linger, segment rotation left at the default.
func pipelineOptions(dir string, workers int) DurabilityOptions {
	return DurabilityOptions{
		Dir:           dir,
		Fsync:         durable.FsyncPerBatch,
		GroupCommit:   true,
		MaxGroupDelay: time.Millisecond,
		ApplyWorkers:  workers,
	}
}

// TestApplyPipelineReportByteIdentity is the tentpole contract: the same
// batch sequence — duplicates included — pushed through the apply pipeline
// at any worker count must produce a /v1/report byte-identical to serial
// inline apply. Batches are sequenced in order but their applies race on
// the worker pool with many jobs in flight at once.
func TestApplyPipelineReportByteIdentity(t *testing.T) {
	const seed = 21
	recs, posts := crashDataset(t, seed)
	batches := raggedBatches(recs, posts, seed)

	// Serial oracle: a plain in-memory store, batch by batch.
	ref := &Store{}
	for _, b := range batches {
		applyBatch(t, ref, b)
	}
	want := reportBytes(t, ref)

	for _, workers := range []int{0, 1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d, err := OpenDurableStore(pipelineOptions(t.TempDir(), workers))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			inflight := make([]inflightBatch, 0, len(batches))
			for i, b := range batches {
				inflight = append(inflight, ingestAsyncJob(t, d.Store, b))
				// Re-deliver every fifth batch immediately, while its apply
				// may still be queued: must dedup without a new job.
				if i%5 == 2 {
					var dup bool
					var derr error
					if b.sessions != nil {
						_, dup, _, _, derr = d.Store.addSessionsBatchAsync(b.id, b.sessions, nil, false)
					} else {
						_, dup, _, _, derr = d.Store.addPostsBatchAsync(b.id, b.posts, nil, false)
					}
					if derr != nil || !dup {
						t.Fatalf("redelivery of %s: dup=%v err=%v", b.id, dup, derr)
					}
				}
			}
			for _, f := range inflight {
				if f.job != nil {
					<-f.job.done
				}
				if err := d.Store.finishIngest(f.id, f.tk); err != nil {
					t.Fatalf("batch %s: %v", f.id, err)
				}
			}
			if got := reportBytes(t, d.Store); !bytes.Equal(got, want) {
				t.Fatalf("report bytes diverge from serial apply at %d workers", workers)
			}
		})
	}
}

// TestCrashRecoveryMidApplyQueue: acknowledgement is gated on the fsync, not
// on the apply — so a crash may hit while acked batches still sit in the
// apply queue. The WAL alone must rebuild the full store: recovery of a log
// copied at that instant yields a report byte-identical to serial ingest of
// every acked batch.
func TestCrashRecoveryMidApplyQueue(t *testing.T) {
	const seed = 22
	recs, posts := crashDataset(t, seed)
	batches := raggedBatches(recs, posts, seed)

	ref := &Store{}
	for _, b := range batches {
		applyBatch(t, ref, b)
	}
	want := reportBytes(t, ref)

	dir := t.TempDir()
	d, err := OpenDurableStore(pipelineOptions(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Slow the appliers so the queue is observably behind the log.
	d.Store.applyDelay.Store(int64(2 * time.Millisecond))
	inflight := make([]inflightBatch, 0, len(batches))
	for _, b := range batches {
		inflight = append(inflight, ingestAsyncJob(t, d.Store, b))
	}
	// Wait out only the commit tickets: every batch is acknowledged and
	// durable, while applies drain behind the delay.
	for _, f := range inflight {
		if err := d.Store.finishIngest(f.id, f.tk); err != nil {
			t.Fatalf("batch %s: %v", f.id, err)
		}
	}

	// "Crash": copy the log as it is right now, before the queue drains.
	crashDir := t.TempDir()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d found)", err, len(segs))
	}
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, filepath.Base(seg)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pendingApplies := 0
	for _, f := range inflight {
		if f.job != nil && !resolvedJob(f.job) {
			pendingApplies++
		}
	}
	t.Logf("copied %d segments with %d/%d applies still pending", len(segs), pendingApplies, len(inflight))

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurableStore(pipelineOptions(crashDir, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovery.ReplayedBatches != len(batches) {
		t.Fatalf("recovered %d batches, acked %d", r.Recovery.ReplayedBatches, len(batches))
	}
	if got := reportBytes(t, r.Store); !bytes.Equal(got, want) {
		t.Fatal("report after crash-mid-apply-queue recovery diverges from serial ingest")
	}
}

func resolvedJob(j *applyJob) bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// TestConcurrentDuplicateDeliveries races N deliveries of the SAME batch ID
// against each other and the apply queue: exactly one must be applied and
// journaled, and every loser must receive the winner's acknowledgement.
func TestConcurrentDuplicateDeliveries(t *testing.T) {
	const racers = 8
	recs, _ := crashDataset(t, 23)
	batch := recs[:40]

	dir := t.TempDir()
	d, err := OpenDurableStore(pipelineOptions(dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	d.Store.applyDelay.Store(int64(5 * time.Millisecond)) // hold the queue open across the race
	acks := make([]IngestResponse, racers)
	dups := make([]bool, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, dup, err := d.Store.AddSessionsBatch("race-1", batch)
			if err != nil {
				t.Errorf("racer %d: %v", i, err)
				return
			}
			acks[i], dups[i] = resp, dup
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	accepted := 0
	for i := 0; i < racers; i++ {
		if !dups[i] {
			accepted++
		}
		if acks[i].Accepted != len(batch) || acks[i].TotalSessions != len(batch) {
			t.Fatalf("racer %d ack %+v: want accepted=%d total_sessions=%d", i, acks[i], len(batch), len(batch))
		}
		if dups[i] != acks[i].Duplicate {
			t.Fatalf("racer %d: dup=%v but ack.Duplicate=%v", i, dups[i], acks[i].Duplicate)
		}
	}
	if accepted != 1 {
		t.Fatalf("%d racers were accepted as originals, want exactly 1", accepted)
	}
	if sess, _ := d.Store.Counts(); sess != len(batch) {
		t.Fatalf("store holds %d sessions, want one application of %d", sess, len(batch))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The WAL must hold exactly one frame: duplicates are never journaled.
	r, err := OpenDurableStore(pipelineOptions(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovery.ReplayedBatches != 1 {
		t.Fatalf("WAL replayed %d batches, want exactly 1", r.Recovery.ReplayedBatches)
	}
}

// TestCorpusDuringSustainedIngest: Corpus() must terminate (and return a
// corpus at least as fresh as its call start) while post batches land
// continuously. The old promote-if-unchanged loop would discard every
// rebuild and spin; the singleflight promotes monotonically instead.
func TestCorpusDuringSustainedIngest(t *testing.T) {
	_, posts := crashDataset(t, 24)
	if len(posts) < 40 {
		t.Fatalf("dataset too small: %d posts", len(posts))
	}
	s := &Store{}
	if err := s.AddPosts(posts[:10]); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var ingestErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Continuous small-batch post ingest: every batch bumps postGen.
		// The trickle is paced so the corpus readers get CPU time too (the
		// livelock under test reproduces whenever postGen moves during a
		// rebuild, which milliseconds-long rebuilds guarantee regardless).
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b := posts[10+(i%(len(posts)-20)):][:2]
			if err := s.AddPosts(b); err != nil {
				ingestErr = err
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	deadline := time.After(60 * time.Second)
	for i := 0; i < 12; i++ {
		got := make(chan *social.Corpus, 1)
		go func() { got <- s.Corpus() }()
		select {
		case c := <-got:
			if c == nil {
				t.Fatal("Corpus returned nil with posts ingested")
			}
		case <-deadline:
			t.Fatal("Corpus() failed to terminate under sustained post ingest")
		}
	}
	close(stop)
	wg.Wait()
	if ingestErr != nil {
		t.Fatal(ingestErr)
	}
}

// TestCorpusSingleflightConcurrent: concurrent Corpus() callers during
// ingest share rebuilds instead of racing them, and all terminate.
func TestCorpusSingleflightConcurrent(t *testing.T) {
	_, posts := crashDataset(t, 25)
	s := &Store{}
	if err := s.AddPosts(posts[:20]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if g == 0 && 20+2*i < len(posts) {
					if err := s.AddPosts(posts[20+2*i:][:1]); err != nil {
						t.Error(err)
						return
					}
				}
				if c := s.Corpus(); c == nil {
					t.Error("nil corpus")
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Corpus callers failed to terminate")
	}
}

// TestRotationUnderGroupCommit forces segment rotation every few frames
// while the group-commit scheduler is live: rotation must neither stall the
// sequencer on an inline fsync nor lose durability for frames in retired
// segments, and recovery over the many-segment log must rebuild the store
// byte-identically.
func TestRotationUnderGroupCommit(t *testing.T) {
	const seed = 26
	recs, posts := crashDataset(t, seed)
	batches := raggedBatches(recs, posts, seed)

	ref := &Store{}
	for _, b := range batches {
		applyBatch(t, ref, b)
	}
	want := reportBytes(t, ref)

	dir := t.TempDir()
	opts := pipelineOptions(dir, 2)
	opts.SegmentBytes = 16 * 1024 // rotate every few frames
	d, err := OpenDurableStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	inflight := make([]inflightBatch, 0, len(batches))
	for _, b := range batches {
		inflight = append(inflight, ingestAsyncJob(t, d.Store, b))
	}
	for _, f := range inflight {
		if f.job != nil {
			<-f.job.done
		}
		if err := d.Store.finishIngest(f.id, f.tk); err != nil {
			t.Fatalf("batch %s: %v", f.id, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments; rotation pressure did not materialize", len(segs))
	}

	r, err := OpenDurableStore(pipelineOptions(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovery.ReplayedBatches != len(batches) {
		t.Fatalf("recovered %d batches across %d segments, want %d", r.Recovery.ReplayedBatches, len(segs), len(batches))
	}
	if got := reportBytes(t, r.Store); !bytes.Equal(got, want) {
		t.Fatal("report after multi-segment group-commit recovery diverges")
	}
}

// TestGroupCommitLingerBound: with steady concurrent arrivals, no ticket may
// wait much past MaxGroupDelay — the linger deadline anchors at the oldest
// pending frame's enqueue, so later arrivals must NOT extend an open group's
// wait (the old wake-anchored timer restarted the full delay on every
// arrival, and sustained ingest pushed tail waits to multiples of it).
func TestGroupCommitLingerBound(t *testing.T) {
	const maxDelay = 100 * time.Millisecond
	recs, _ := crashDataset(t, 27)
	d, err := OpenDurableStore(DurabilityOptions{
		Dir:           t.TempDir(),
		Fsync:         durable.FsyncPerBatch,
		GroupCommit:   true,
		MaxGroupDelay: maxDelay,
		MaxGroupBytes: 1 << 30, // never seal on size: the timer is under test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var mu sync.Mutex
	var worst time.Duration
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				id := fmt.Sprintf("linger-%d-%d", c, i)
				start := time.Now()
				if _, _, err := d.Store.AddSessionsBatch(id, recs[:8]); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
				el := time.Since(start)
				mu.Lock()
				if el > worst {
					worst = el
				}
				mu.Unlock()
				time.Sleep(maxDelay / 4) // steady arrivals into open groups
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Bound: enqueue-anchored linger + one fsync + scheduler slack. The old
	// restart-on-wake behavior exceeds this with arrivals every delay/4.
	limit := 3 * maxDelay
	if worst > limit {
		t.Fatalf("worst ticket wait %v exceeds %v (maxDelay %v): linger restarting on arrivals", worst, limit, maxDelay)
	}
	t.Logf("worst ticket wait %v (maxDelay %v)", worst, maxDelay)
}

// TestReadYourAckedWrites: a read issued after an acknowledged ingest must
// see that ingest, at any worker count — the fence contract.
func TestReadYourAckedWrites(t *testing.T) {
	recs, posts := crashDataset(t, 28)
	d, err := OpenDurableStore(pipelineOptions(t.TempDir(), 8))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Store.applyDelay.Store(int64(time.Millisecond))
	wantSessions, wantPosts := 0, 0
	for i := 0; i < 10; i++ {
		lo := i * 20
		if _, _, err := d.Store.AddSessionsBatch(fmt.Sprintf("ryw-s%d", i), recs[lo:lo+20]); err != nil {
			t.Fatal(err)
		}
		wantSessions += 20
		if _, _, err := d.Store.AddPostsBatch(fmt.Sprintf("ryw-p%d", i), posts[i*5:(i+1)*5]); err != nil {
			t.Fatal(err)
		}
		wantPosts += 5
		sess, ps := d.Store.Counts()
		if sess != wantSessions || ps != wantPosts {
			t.Fatalf("after ack %d: Counts() = (%d, %d), want (%d, %d)", i, sess, ps, wantSessions, wantPosts)
		}
	}
}
