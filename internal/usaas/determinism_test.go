package usaas

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"usersignals/internal/conference"
	"usersignals/internal/netsim"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
)

var (
	detOnce sync.Once
	detRecs []telemetry.SessionRecord
)

// detDataset generates a record set large enough to span many analysis
// chunks, so worker counts beyond one actually shard the work.
func detDataset(t *testing.T) []telemetry.SessionRecord {
	t.Helper()
	detOnce.Do(func() {
		sw := netsim.ControlBands()
		sw.LatencyMs = [2]float64{0, 300}
		sw.LossPct = [2]float64{0, 4}
		opts := conference.Defaults(5150, 1200)
		opts.Paths = &sw
		opts.SurveyRate = 0.05
		g, err := conference.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		detRecs, err = g.GenerateAll()
		if err != nil {
			t.Fatal(err)
		}
	})
	return detRecs
}

// workerCounts are the golden-test variants: serial, a small fixed pool,
// and whatever this machine considers "all cores".
func workerCounts() []int { return []int{1, 4, runtime.NumCPU()} }

// TestDoseResponseParallelIdentical asserts the Fig-1 analysis is
// bit-identical (not merely close) at every worker count: canonical
// chunking means the Welford merges happen in the same order no matter
// how the chunks were scheduled.
func TestDoseResponseParallelIdentical(t *testing.T) {
	recs := detDataset(t)
	b := stats.NewBinner(0, 300, 10)
	var want stats.BinnedSeries
	for i, workers := range workerCounts() {
		got, err := DoseResponseN(recs, telemetry.LatencyMean, telemetry.Presence, b, telemetry.StudyCohort(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: DoseResponse differs from serial\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestCompoundingParallelIdentical(t *testing.T) {
	recs := detDataset(t)
	xb := stats.NewBinner(0, 300, 5)
	yb := stats.NewBinner(0, 4, 5)
	var want stats.Grid2D
	for i, workers := range workerCounts() {
		got, err := CompoundingN(recs, telemetry.LatencyMean, telemetry.LossMean, telemetry.Presence, xb, yb, telemetry.StudyCohort(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Compounding grid differs from serial", workers)
		}
	}
}

func TestByPlatformParallelIdentical(t *testing.T) {
	recs := detDataset(t)
	b := stats.NewBinner(0, 4, 6)
	var want map[string]stats.BinnedSeries
	for i, workers := range workerCounts() {
		got, err := ByPlatformN(recs, telemetry.LossMean, telemetry.Presence, b, telemetry.StudyCohort(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: ByPlatform differs from serial", workers)
		}
	}
}

func TestByMeetingSizeParallelIdentical(t *testing.T) {
	recs := detDataset(t)
	b := stats.NewBinner(0, 300, 8)
	var want map[string]stats.BinnedSeries
	for i, workers := range workerCounts() {
		got, err := ByMeetingSizeN(recs, telemetry.LatencyMean, telemetry.Presence, b, nil, telemetry.StudyCohort(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: ByMeetingSize differs from serial", workers)
		}
	}
}

// TestMonthlySpeedsParallelIdentical covers the OCR extraction sweep: the
// per-month speed samples must be concatenated in corpus order across
// shards, because the subsampling RNG draws depend on slice order.
func TestMonthlySpeedsParallelIdentical(t *testing.T) {
	c, _, cfg := studyCorpus(t)
	var want []MonthSpeed
	for i, workers := range workerCounts() {
		got := MonthlySpeedsN(c, analyzer, cfg.Model, 7, workers)
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: MonthlySpeeds differs from serial", workers)
		}
	}
}
