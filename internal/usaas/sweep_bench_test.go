package usaas

import (
	"sync"
	"testing"

	"usersignals/internal/newswire"
	"usersignals/internal/nlp"
	"usersignals/internal/social"
)

// Benchmarks for the /v1/report social sections over the full two-year
// study corpus: the naive string-based pipeline (naive_test.go) versus the
// fused tokenize-once sweep. The measured gap is recorded in BENCH_nlp.json.

var benchSink int

var (
	benchCorpusOnce sync.Once
	benchCorpusVal  *social.Corpus
	benchNews       *newswire.Index
)

func benchCorpus(b *testing.B) *social.Corpus {
	b.Helper()
	benchCorpusOnce.Do(func() {
		cfg := social.DefaultConfig(99)
		c, err := social.Generate(cfg)
		if err != nil {
			panic(err)
		}
		benchCorpusVal = c
		benchNews = newswire.Build(cfg.Model.Launches(), cfg.Outages, cfg.Milestones)
	})
	return benchCorpusVal
}

// BenchmarkSocialSectionsNaive is the pre-engine cost of the report's three
// text sections: every section re-lexes and re-scores the whole corpus.
func BenchmarkSocialSectionsNaive(b *testing.B) {
	c := benchCorpus(b)
	dict := nlp.OutageDictionary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peaks := annotatePeaksNaive(c, analyzer, benchNews, 3)
		series := outageKeywordSeriesNaive(c, analyzer, dict, true)
		trends := mineTrendsNaive(c, analyzer, TrendOptions{MaxTerms: 10})
		benchSink += len(peaks) + len(series) + len(trends)
	}
}

// BenchmarkSocialSectionsFused is the same three sections from one fused
// sweep over the cached token streams (the token cache build is amortized
// across queries and measured separately in BenchmarkTokenCacheBuild).
func BenchmarkSocialSectionsFused(b *testing.B) {
	c := benchCorpus(b)
	c.Tokens()
	dict := nlp.OutageDictionary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topts := TrendOptions{MaxTerms: 10}
		sw := SweepCorpus(c, analyzer, SweepOptions{
			Sentiment: true, Dict: dict, Gate: true, Trends: &topts,
		})
		peaks := annotatePeaks(c, sw.Sentiment, benchNews, 3)
		benchSink += len(peaks) + len(sw.Keywords) + len(sw.Trends)
	}
}

// BenchmarkFusedSweep isolates the sweep itself (serial and parallel).
func BenchmarkFusedSweep(b *testing.B) {
	c := benchCorpus(b)
	c.Tokens()
	dict := nlp.OutageDictionary()
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				topts := TrendOptions{MaxTerms: 10}
				sw := SweepCorpus(c, analyzer, SweepOptions{
					Sentiment: true, Dict: dict, Gate: true, Trends: &topts,
					Workers: bc.workers,
				})
				benchSink += len(sw.Sentiment)
			}
		})
	}
}

// BenchmarkTokenCacheBuild is the one-time per-corpus lexing cost the engine
// pays so every later analysis can skip it.
func BenchmarkTokenCacheBuild(b *testing.B) {
	c := benchCorpus(b)
	cfg := social.DefaultConfig(99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc := social.NewCorpus(cfg.Window, append([]social.Post(nil), c.Posts...))
		tc := cc.BuildTokens(0)
		benchSink += tc.Interner().Len()
	}
}
