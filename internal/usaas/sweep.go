package usaas

import (
	"math"

	"usersignals/internal/nlp"
	"usersignals/internal/parallel"
	"usersignals/internal/social"
	"usersignals/internal/timeline"
)

// This file is the fused single-pass text sweep: every §4 explicit-signal
// analysis (daily sentiment, outage-keyword series, trend mining, and the
// per-post scores feeding all three) computed in ONE scan over the corpus's
// cached token-ID streams. Before this engine, a /v1/report re-lexed the
// two-year corpus four-plus times — DailySentiment, AnnotatePeaks (which
// recomputed DailySentiment), OutageKeywordSeries, and MineTrends each
// called Tokenize+Stem on every post and scored overlapping sentiment.
// The sweep tokenizes nothing (social.TokenCache did that once at corpus
// build), scores each post exactly once, and matches the outage dictionary
// with a compiled Aho-Corasick automaton.
//
// Sharding is by day, not by post: the window's days split into canonical
// fixed-size chunks (boundaries depend only on window length), each chunk
// accumulates its own days, and chunks merge in day order. Because every
// float accumulation (trend term weights) is confined to a single day —
// and therefore a single chunk — the merged result is bit-identical to the
// naive sequential scan at any worker count.

// sweepDayChunk is the canonical day-sharding granularity.
const sweepDayChunk = 32

// SweepOptions selects which fused products to compute.
type SweepOptions struct {
	// Sentiment computes the daily strong-sentiment series.
	Sentiment bool
	// Dict, when non-nil, computes the per-day dictionary-hit series over
	// whole threads.
	Dict *nlp.Dictionary
	// Gate applies the negative-sentiment gate to dictionary hits.
	Gate bool
	// Trends, when non-nil, mines emerging terms with these options.
	Trends *TrendOptions
	// Workers shards the sweep; <= 0 means one per CPU.
	Workers int
}

// Sweep holds the fused products. Fields for products not requested are
// nil.
type Sweep struct {
	Sentiment []DaySentiment
	Keywords  []DayKeywords
	Trends    []Trend
}

// termDay accumulates one mined term: popularity-weighted volume per day
// plus positive/total post counts (shared by the fused sweep and the naive
// reference miner).
type termDay struct {
	weight map[timeline.Day]float64
	pos    int
	total  int
}

// termKey packs a unigram stem ID or a bigram stem-ID pair into one map
// key. The +1 bias keeps unigrams (low word zero) disjoint from bigrams.
func unigramKey(a nlp.TokenID) uint64 { return (uint64(a) + 1) << 32 }
func bigramKey(a, b nlp.TokenID) uint64 {
	return (uint64(a)+1)<<32 | (uint64(b) + 1)
}

// SweepCorpus runs the fused single-pass sweep. Output is byte-identical
// to running the string-based reference analyses separately (golden-tested
// in sweep_test.go) at any worker count.
func SweepCorpus(c *social.Corpus, an *nlp.Analyzer, opts SweepOptions) *Sweep {
	sent, kw, terms := sweepAccumulate(c, an, opts)
	out := &Sweep{Sentiment: sent, Keywords: kw}
	if opts.Trends != nil {
		out.Trends = scanTrends(c.Window, terms, opts.Trends.withDefaults())
	}
	return out
}

// sweepAccumulate is the scan half of SweepCorpus: the fused day-sharded
// accumulation, stopping short of the trend surge scan. The cluster's
// shard partials are built from exactly these products — day rows are
// confined to one shard (days are the partition unit) and term day-weights
// never sum across shards, so a coordinator that concatenates day rows
// ascending and unions term maps reproduces a single corpus's accumulation
// bit for bit, then runs the same scanTrends over the global window.
func sweepAccumulate(c *social.Corpus, an *nlp.Analyzer, opts SweepOptions) (sent []DaySentiment, kw []DayKeywords, terms map[string]*termDay) {
	tc := c.Tokens()
	in := tc.Interner()
	scorer := an.CompileScorer(in)
	var matcher *nlp.Matcher
	if opts.Dict != nil {
		matcher = opts.Dict.CompileMatcher(in)
	}
	var topts TrendOptions
	if opts.Trends != nil {
		topts = opts.Trends.withDefaults()
	}

	days := c.Window.Len()
	chunks := (days + sweepDayChunk - 1) / sweepDayChunk
	type shard struct {
		sent  []DaySentiment
		kw    []DayKeywords
		terms map[uint64]*termDay
	}
	shards, _ := parallel.Map(opts.Workers, chunks, func(ci int) (shard, error) {
		lo := ci * sweepDayChunk
		hi := lo + sweepDayChunk
		if hi > days {
			hi = days
		}
		sh := shard{}
		if opts.Sentiment {
			sh.sent = make([]DaySentiment, 0, hi-lo)
		}
		if matcher != nil {
			sh.kw = make([]DayKeywords, 0, hi-lo)
		}
		if opts.Trends != nil {
			sh.terms = map[uint64]*termDay{}
		}
		for di := lo; di < hi; di++ {
			d := c.Window.From + timeline.Day(di)
			ds := DaySentiment{Day: d}
			dk := DayKeywords{Day: d}
			plo, phi := c.PostIndexRange(d)
			for j := plo; j < phi; j++ {
				p := &c.Posts[j]
				ids := tc.Text(j)
				// Each post is scored at most once, lazily: the keyword
				// gate only needs a score when the thread actually hits
				// the dictionary.
				var sc nlp.Sentiment
				scored := false
				score := func() nlp.Sentiment {
					if !scored {
						sc, scored = scorer.Score(ids), true
					}
					return sc
				}
				if opts.Sentiment {
					ds.Posts++
					s := score()
					if s.StrongPositive() {
						ds.StrongPos++
					}
					if s.StrongNegative() {
						ds.StrongNeg++
					}
				}
				if matcher != nil {
					if n := matcher.Count(tc.Thread(j)); n > 0 {
						s := score()
						if !opts.Gate || (s.Negative > s.Positive && s.Negative >= 0.3) {
							dk.Count += n
						}
					}
				}
				if opts.Trends != nil {
					w := 1 + math.Log1p(float64(p.Upvotes+p.Comments))
					s := score()
					positive := s.Positive > s.Negative
					seen := map[uint64]bool{}
					record := func(key uint64) {
						if seen[key] {
							return
						}
						seen[key] = true
						td := sh.terms[key]
						if td == nil {
							td = &termDay{weight: map[timeline.Day]float64{}}
							sh.terms[key] = td
						}
						td.weight[d] += w
						td.total++
						if positive {
							td.pos++
						}
					}
					var prev nlp.TokenID
					havePrev := false
					for _, id := range ids {
						if !in.IsContent(id) {
							continue
						}
						stem := in.StemID(id)
						record(unigramKey(stem))
						if topts.Bigrams && havePrev {
							record(bigramKey(prev, stem))
						}
						prev, havePrev = stem, true
					}
				}
			}
			if opts.Sentiment {
				sh.sent = append(sh.sent, ds)
			}
			if matcher != nil {
				sh.kw = append(sh.kw, dk)
			}
		}
		return sh, nil
	})

	if opts.Sentiment {
		sent = make([]DaySentiment, 0, days)
	}
	if matcher != nil {
		kw = make([]DayKeywords, 0, days)
	}
	if opts.Trends != nil {
		terms = map[string]*termDay{}
	}
	// Merge in chunk order. Day rows concatenate; term accumulators add —
	// each (term, day) weight lives in exactly one chunk, so no float is
	// ever summed across shards and map-iteration order cannot matter.
	for _, sh := range shards {
		sent = append(sent, sh.sent...)
		kw = append(kw, sh.kw...)
		for key, td := range sh.terms {
			term := termString(in, key)
			dst := terms[term]
			if dst == nil {
				terms[term] = td
				continue
			}
			for d, w := range td.weight {
				dst.weight[d] += w
			}
			dst.pos += td.pos
			dst.total += td.total
		}
	}
	return sent, kw, terms
}

// termString decodes a packed term key back to the naive miner's term
// spelling ("stem" or "stem stem").
func termString(in *nlp.Interner, key uint64) string {
	a := nlp.TokenID(key>>32 - 1)
	if low := uint32(key); low != 0 {
		return in.Token(a) + " " + in.Token(nlp.TokenID(low-1))
	}
	return in.Token(a)
}

// scanTrends runs the surge scan over accumulated term weights — the
// second half of MineTrends, shared by the fused sweep and the naive
// reference path.
func scanTrends(window timeline.Range, terms map[string]*termDay, opts TrendOptions) []Trend {
	days := window.Len()
	var out []Trend
	for term, td := range terms {
		// Scan for the first window whose weight crosses MinWeight with a
		// quiet 30-day baseline before it. Windows in the first 30 days
		// have no baseline to judge against, so they cannot qualify —
		// otherwise the corpus's ordinary vocabulary would all "emerge"
		// on day one.
		for i := 30; i+opts.WindowDays <= days; i++ {
			start := window.From + timeline.Day(i)
			var windowW float64
			for j := 0; j < opts.WindowDays; j++ {
				windowW += td.weight[start+timeline.Day(j)]
			}
			if windowW < opts.MinWeight {
				continue
			}
			var baseW float64
			baseDays := 0
			for j := 1; j <= 30; j++ {
				d := start - timeline.Day(j)
				if d < window.From {
					break
				}
				baseW += td.weight[d]
				baseDays++
			}
			if baseDays > 0 && baseW/float64(baseDays) > opts.BaselineMax {
				break // established topic, not emerging
			}
			// Anchor the trend at the first day inside the window that
			// actually carries weight (not the window's leading edge),
			// and measure the surge weight from there so a surge that
			// starts mid-window is not under-weighted.
			first := start
			for j := 0; j < opts.WindowDays; j++ {
				if td.weight[start+timeline.Day(j)] > 0 {
					first = start + timeline.Day(j)
					break
				}
			}
			surgeW := 0.0
			for j := 0; j < opts.WindowDays; j++ {
				surgeW += td.weight[first+timeline.Day(j)]
			}
			out = append(out, Trend{
				Term:          term,
				FirstDay:      first,
				Weight:        surgeW,
				PositiveShare: float64(td.pos) / float64(td.total),
			})
			break
		}
	}
	sortTrends(out)
	if len(out) > opts.MaxTerms {
		out = out[:opts.MaxTerms]
	}
	return out
}
