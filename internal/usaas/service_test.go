package usaas

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// newTestService spins up a server over httptest with both signal families
// ingested through the public API.
func newTestService(t *testing.T) (*Client, string, func()) {
	t.Helper()
	c, news, cfg := studyCorpus(t)
	srv := NewServer(nil, ServerOptions{News: news, Model: cfg.Model})
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, ts.Client())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)

	if _, err := client.IngestSessions(ctx, mixDataset(t)); err != nil {
		ts.Close()
		t.Fatal(err)
	}
	// Ingest posts in batches to exercise repeated ingestion.
	posts := c.Posts
	half := len(posts) / 2
	if _, err := client.IngestPosts(ctx, posts[:half]); err != nil {
		ts.Close()
		t.Fatal(err)
	}
	if _, err := client.IngestPosts(ctx, posts[half:]); err != nil {
		ts.Close()
		t.Fatal(err)
	}
	return client, ts.URL, ts.Close
}

func TestServiceEndToEnd(t *testing.T) {
	client, baseURL, closeFn := newTestService(t)
	defer closeFn()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Stats reflect both ingests.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions == 0 || st.Posts == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Engagement insight over HTTP matches a local computation shape.
	eng, err := client.Engagement(ctx, EngagementQuery{
		Metric: telemetry.LatencyMean, Engagement: telemetry.MicOn,
		Lo: 0, Hi: 300, Bins: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.X) != 6 || len(eng.Y) != 6 || len(eng.Normalized) != 6 {
		t.Fatalf("engagement response shape: %+v", eng)
	}

	// MOS insight includes correlations and a predictor eval.
	mos, err := client.MOS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(mos.Correlations) != 3 {
		t.Fatalf("correlations = %+v", mos.Correlations)
	}
	if mos.Predictor == nil || mos.Predictor.PredictorMAE <= 0 {
		t.Fatalf("predictor eval missing: %+v", mos.Predictor)
	}

	// Sentiment series covers the corpus window.
	daily, err := client.DailySentiment(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(daily) < 700 {
		t.Fatalf("daily series length %d", len(daily))
	}

	// Peaks arrive annotated.
	peaks, err := client.Peaks(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 3 {
		t.Fatalf("peaks = %d", len(peaks))
	}

	// Outage alerts at a moderate threshold include the big reported days.
	alerts, err := client.OutageAlerts(ctx, 50)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range alerts {
		if a.Day == timeline.Date(2022, time.August, 30) {
			found = true
		}
	}
	if !found {
		t.Fatalf("Aug 30 outage not in alerts: %+v", alerts)
	}

	// Monthly speeds come back with annotations.
	months, err := client.MonthlySpeeds(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(months) != 24 {
		t.Fatalf("months = %d", len(months))
	}
	if months[23].Users <= months[0].Users {
		t.Fatal("user annotations missing over HTTP")
	}

	// Trends include the early roaming discovery.
	trends, err := client.Trends(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := LeadTime(trends, "roaming", timeline.Date(2022, time.March, 3)); !ok {
		t.Fatal("roaming trend missing over HTTP")
	}

	// Confounder report over HTTP.
	effects, err := client.Confounders(ctx, telemetry.CamOn)
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 2 {
		t.Fatalf("confounders = %+v", effects)
	}

	// Advisors over HTTP.
	recos, err := client.TrafficEngineeringAdvice(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(recos) != 4 || recos[0].TotalLift < recos[len(recos)-1].TotalLift {
		t.Fatalf("TE advice = %+v", recos)
	}
	advice, err := client.DeploymentAdvice(ctx,
		timeline.Date(2022, time.June, 1), timeline.Date(2022, time.December, 1), 4, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.Scenarios) != 5 {
		t.Fatalf("deployment advice = %+v", advice)
	}

	// The composed operator report over HTTP.
	rep, err := client.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions == 0 || rep.Posts == 0 || len(rep.Peaks) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	// And its text rendering endpoint.
	resp, err := http.Get(baseURL + "/v1/report?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 64)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "USER SIGNALS REPORT") {
		t.Fatalf("text report = %q", body[:n])
	}
}

func TestServiceExperienceQuery(t *testing.T) {
	client, _, closeFn := newTestService(t)
	defer closeFn()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The §5 example: Teams experience of Starlink-access users.
	exp, err := client.Experience(ctx, "starlink")
	if err != nil {
		t.Fatal(err)
	}
	if exp.Sessions == 0 {
		t.Fatal("no starlink sessions")
	}
	if exp.PredictedMOS < 1 || exp.PredictedMOS > 5 {
		t.Fatalf("predicted MOS %v", exp.PredictedMOS)
	}
	if exp.SocialPosRatio <= 0 || exp.SocialPosRatio >= 1 {
		t.Fatalf("social pos ratio %v", exp.SocialPosRatio)
	}
	if exp.OutageMentions == 0 {
		t.Fatal("no outage mentions fused in")
	}

	// A jittery satellite population should show lower engagement than
	// fiber users — the kind of insight the query exists to surface.
	fiber, err := client.Experience(ctx, "metrofiber")
	if err != nil {
		t.Fatal(err)
	}
	if exp.PredictedMOS >= fiber.PredictedMOS {
		t.Fatalf("starlink predicted MOS %v should be below fiber %v", exp.PredictedMOS, fiber.PredictedMOS)
	}

	// Unknown ISP: 404 with a useful message.
	if _, err := client.Experience(ctx, "carrier-pigeon"); err == nil || !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "no sessions") {
		t.Fatalf("unknown ISP error = %v", err)
	}
}

func TestServiceErrorPaths(t *testing.T) {
	srv := NewServer(nil, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	// Wrong methods.
	resp, err := ts.Client().Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sessions status %d", resp.StatusCode)
	}

	// Malformed body.
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest status %d", resp.StatusCode)
	}

	// Insights without data.
	if _, err := client.DailySentiment(ctx); err == nil {
		t.Fatal("sentiment without posts should fail")
	}
	if _, err := client.MOS(ctx); err == nil {
		t.Fatal("MOS without sessions should fail")
	}

	// Bad query parameters.
	if _, err := client.Engagement(ctx, EngagementQuery{Metric: telemetry.LatencyMean, Engagement: telemetry.MicOn, Lo: 10, Hi: 5}); err == nil {
		t.Fatal("inverted binning accepted")
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/insights/engagement?metric=bogus&engagement=mic-on")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus metric status %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/query/experience")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing isp status %d", resp.StatusCode)
	}
}

func TestBearerTokenAuth(t *testing.T) {
	srv := NewServer(nil, ServerOptions{AuthToken: "sekrit"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	// No token: rejected.
	bare := NewClient(ts.URL, ts.Client())
	if _, err := bare.Stats(ctx); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("unauthenticated request err = %v", err)
	}
	// Wrong token: rejected.
	wrong := bare.WithToken("nope")
	if _, err := wrong.Stats(ctx); err == nil {
		t.Fatal("wrong token accepted")
	}
	// Right token: works end to end including ingest.
	authed := bare.WithToken("sekrit")
	if _, err := authed.IngestSessions(ctx, mixDataset(t)[:5]); err != nil {
		t.Fatal(err)
	}
	st, err := authed.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 5 {
		t.Fatalf("stats = %+v", st)
	}
	// The original client remains tokenless (WithToken copies).
	if _, err := bare.Stats(ctx); err == nil {
		t.Fatal("WithToken mutated the base client")
	}
}

func TestNDJSONIngest(t *testing.T) {
	srv := NewServer(nil, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	// Build an NDJSON body from a few records.
	var buf bytes.Buffer
	w := telemetry.NewJSONLWriter(&buf)
	recs := mixDataset(t)[:25]
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := client.IngestSessionsNDJSON(ctx, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 25 || resp.TotalSessions != 25 {
		t.Fatalf("NDJSON ingest = %+v", resp)
	}

	// NDJSON posts.
	c, _, _ := studyCorpus(t)
	var pbuf bytes.Buffer
	enc := json.NewEncoder(&pbuf)
	for i := 0; i < 10; i++ {
		if err := enc.Encode(&c.Posts[i]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/posts", &pbuf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	raw, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusOK {
		t.Fatalf("NDJSON posts status %d", raw.StatusCode)
	}
	st, _ := client.Stats(ctx)
	if st.Posts != 10 {
		t.Fatalf("posts = %d", st.Posts)
	}

	// Broken NDJSON is rejected.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", strings.NewReader("{broken\n"))
	req2.Header.Set("Content-Type", "application/x-ndjson")
	raw2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	raw2.Body.Close()
	if raw2.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken NDJSON status %d", raw2.StatusCode)
	}
}

func TestServiceBodySizeCap(t *testing.T) {
	srv := NewServer(nil, ServerOptions{MaxBodyBytes: 1024})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	big := `[{"call_id":1,"platform":"` + strings.Repeat("x", 4096) + `"}]`
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body status %d", resp.StatusCode)
	}
	// And the store must not have been polluted.
	st, _ := NewClient(ts.URL, ts.Client()).Stats(context.Background())
	if st.Sessions != 0 {
		t.Fatalf("partial ingest leaked: %+v", st)
	}
}

func TestStoreConcurrency(t *testing.T) {
	store := &Store{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			store.AddSessions([]telemetry.SessionRecord{{CallID: uint64(i)}})
		}
	}()
	for i := 0; i < 100; i++ {
		store.Sessions()
		store.Counts()
	}
	<-done
	sessions, _ := store.Counts()
	if sessions != 100 {
		t.Fatalf("sessions = %d", sessions)
	}
}

func TestStoreCorpusRebuild(t *testing.T) {
	store := &Store{}
	if store.Corpus() != nil {
		t.Fatal("empty store should have nil corpus")
	}
	c, _, _ := studyCorpus(t)
	store.AddPosts(c.Posts[:10])
	first := store.Corpus()
	if first == nil || first.Len() != 10 {
		t.Fatalf("corpus = %v", first)
	}
	store.AddPosts(c.Posts[10:20])
	second := store.Corpus()
	if second.Len() != 20 {
		t.Fatalf("corpus after second ingest = %d", second.Len())
	}
}
