package usaas

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"usersignals/internal/durable"
	"usersignals/internal/social"
	"usersignals/internal/telemetry"
)

// This file ties the in-memory Store to internal/durable: every accepted
// ingest batch is appended to a write-ahead log before it is applied, a
// background snapshotter captures the full store state at generation
// boundaries, and recovery rebuilds the store by loading the newest valid
// snapshot and replaying the log tail through the normal batch-ingest
// path. Because replay uses AddSessionsBatch/AddPostsBatch — the same
// code live ingest runs — the dedup table, materialized views, and
// result-cache generations come back exactly as an uninterrupted run
// would have produced them: /v1/report after recovery is byte-identical.

// WAL record types: the two batch families the store ingests.
const (
	recSessions byte = 1
	recPosts    byte = 2
)

// batchJournal is the Store's hook into the durability layer; implemented
// by DurableStore. Called with the store's sequencing lock (ingestMu) held,
// before the batch is applied — the append order the log records is by
// construction the order the apply pipeline folds batches in.
// wire, when non-nil, is the batch's JSONL body exactly as received and
// is logged verbatim; otherwise the records are re-encoded.
//
// The returned ticket resolves once the fsync covering the appended frame
// completes: with group commit the append returns as soon as the frame is
// written (so the store lock is released while the fsync is in flight, and
// concurrent batches coalesce into one group), and the caller must Wait on
// the ticket before acknowledging the batch. Under the other policies the
// ticket is already resolved at return.
type batchJournal interface {
	logSessions(batchID string, recs []telemetry.SessionRecord, wire []byte) (*durable.Ticket, error)
	logPosts(batchID string, posts []social.Post, wire []byte) (*durable.Ticket, error)
}

// DurabilityOptions configures a durable store.
type DurabilityOptions struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// Fsync is the WAL stable-storage policy (default per-batch).
	Fsync durable.FsyncPolicy
	// FsyncInterval is the background sync cadence under FsyncInterval
	// (default 1s).
	FsyncInterval time.Duration
	// SnapshotEvery writes a snapshot after that many accepted batches
	// and compacts log segments the snapshot covers. 0 disables automatic
	// and shutdown snapshots — the store then recovers by full log replay.
	SnapshotEvery int
	// SegmentBytes rolls WAL segments at this size (default 8 MiB).
	SegmentBytes int64
	// GroupCommit coalesces concurrent fsync-per-batch appends into one
	// fsync per commit group (durable/commit.go); acknowledgement still
	// waits for the covering fsync, so the durability contract is
	// unchanged. No effect under the interval/off policies.
	GroupCommit bool
	// MaxGroupBytes and MaxGroupDelay tune the commit scheduler; zero
	// values take the durable package defaults (4 MiB, no linger).
	MaxGroupBytes int64
	MaxGroupDelay time.Duration
	// ApplyWorkers sizes the apply pipeline: batches are journaled and
	// acknowledged under the sequencing lock but folded into the in-memory
	// state by this many workers (pipeline.go). 0 applies inline on the
	// ingesting goroutine — the PR-8 behavior. Report bytes are identical
	// at any setting; recovery replay always applies inline.
	ApplyWorkers int
	// Logf, when set, receives background-snapshotter diagnostics (the
	// snapshot path has no request to answer errors on). Defaults to
	// discarding them; Close still reports the final snapshot's error.
	Logf func(format string, args ...any)
	// DisableColumnar skips rebuilding the columnar mirror during recovery
	// and keeps it off afterwards; analyses use the row path. The mirror is
	// not persisted — it is derived state, rebuilt from the recovered rows
	// (snapshot restore appends the whole prefix; log replay extends it
	// batch by batch) — so disabling it trades query speed for a cheaper
	// recovery and a smaller resident set.
	DisableColumnar bool
}

// RecoveryStats reports what opening a durable store found on disk.
type RecoveryStats struct {
	// SnapshotSeq is the log position the loaded snapshot covered (0 when
	// none was found).
	SnapshotSeq uint64
	// SnapshotFound reports whether a valid snapshot was loaded.
	SnapshotFound bool
	// SnapshotSessions and SnapshotPosts count records restored from it.
	SnapshotSessions int
	SnapshotPosts    int
	// ReplayedBatches counts log records replayed past the snapshot.
	ReplayedBatches int
	// TornTail reports that the log ended in a torn or truncated frame,
	// which was discarded (TornBytes of it).
	TornTail  bool
	TornBytes int64
	// Elapsed is the total recovery wall time.
	Elapsed time.Duration
}

// DurableStore is a Store whose ingest survives restarts. Obtain one with
// OpenDurableStore; the embedded Store is what NewServer takes.
type DurableStore struct {
	*Store
	wal  *durable.WAL
	opts DurabilityOptions

	// Recovery describes what Open found; informational.
	Recovery RecoveryStats

	// Encode buffers, reused across appends. The journal is only invoked
	// under the store's write lock, so they are effectively single-flight.
	sessBuf []byte
	postBuf bytes.Buffer

	snapMu      sync.Mutex
	lastSnapSeq uint64
	sinceSnap   int

	// sigCh is closed and re-armed on every WAL append; the replication
	// feed long-polls on it (AppendSignal).
	sigMu sync.Mutex
	sigCh chan struct{}

	snapCh    chan struct{}
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// OpenDurableStore recovers the store persisted in opts.Dir (an empty or
// absent directory yields an empty store) and attaches the write-ahead
// log so subsequent ingest is durable. The caller must Close it to flush
// the log and write the shutdown snapshot.
func OpenDurableStore(opts DurabilityOptions) (*DurableStore, error) {
	if opts.Dir == "" {
		return nil, errors.New("usaas: durability requires a data directory")
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = time.Second
	}
	start := time.Now()
	store := &Store{colsOff: opts.DisableColumnar}
	d := &DurableStore{
		Store:  store,
		opts:   opts,
		sigCh:  make(chan struct{}),
		snapCh: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}

	snapSeq, body, found, err := durable.LoadLatestSnapshot(opts.Dir)
	if err != nil {
		return nil, err
	}
	if found {
		n, m, err := decodeSnapshot(body, snapSeq, store)
		if err != nil {
			return nil, fmt.Errorf("usaas: decoding snapshot at seq %d: %w", snapSeq, err)
		}
		d.Recovery.SnapshotFound = true
		d.Recovery.SnapshotSeq = snapSeq
		d.Recovery.SnapshotSessions = n
		d.Recovery.SnapshotPosts = m
	}

	info, err := durable.Replay(opts.Dir, snapSeq, func(seq uint64, rec durable.Record) error {
		if err := applyRecord(store, rec); err != nil {
			return fmt.Errorf("usaas: replaying log record %d: %w", seq, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.Recovery.ReplayedBatches = info.Replayed
	d.Recovery.TornTail = info.Torn
	d.Recovery.TornBytes = info.TornBytes

	wal, err := durable.OpenWAL(opts.Dir, snapSeq, durable.Options{
		Fsync:         opts.Fsync,
		SegmentBytes:  opts.SegmentBytes,
		FsyncInterval: opts.FsyncInterval,
		GroupCommit:   opts.GroupCommit,
		MaxGroupBytes: opts.MaxGroupBytes,
		MaxGroupDelay: opts.MaxGroupDelay,
	})
	if err != nil {
		return nil, err
	}
	d.wal = wal
	d.lastSnapSeq = snapSeq
	store.journal = d
	// The pipeline attaches only after recovery replay: replay must apply
	// synchronously (each replayed batch waits its job) and needs no
	// workers to do so.
	store.StartApplyPipeline(opts.ApplyWorkers)

	if opts.SnapshotEvery > 0 {
		d.wg.Add(1)
		go d.snapshotLoop()
	}
	if opts.Fsync == durable.FsyncInterval {
		d.wg.Add(1)
		go d.syncLoop()
	}
	d.Recovery.Elapsed = time.Since(start)
	return d, nil
}

// applyRecord replays one logged batch through the normal ingest path.
// The store's journal is not attached yet, so nothing is re-logged; the
// dedup table restored from the snapshot still guards against replaying a
// batch the snapshot already contains.
func applyRecord(store *Store, rec durable.Record) error {
	switch rec.Type {
	case recSessions:
		var recs []telemetry.SessionRecord
		if err := telemetry.ReadJSONL(bytes.NewReader(rec.Payload), func(r *telemetry.SessionRecord) error {
			recs = append(recs, *r)
			return nil
		}); err != nil {
			return err
		}
		_, _, err := store.AddSessionsBatch(rec.BatchID, recs)
		return err
	case recPosts:
		posts, err := social.CollectPostsJSONL(bytes.NewReader(rec.Payload))
		if err != nil {
			return err
		}
		_, _, err = store.AddPostsBatch(rec.BatchID, posts)
		return err
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
}

// --- the journal (write side) ---

func (d *DurableStore) logSessions(batchID string, recs []telemetry.SessionRecord, wire []byte) (*durable.Ticket, error) {
	if wire == nil {
		b, err := telemetry.AppendNDJSON(d.sessBuf[:0], recs)
		d.sessBuf = b
		if err != nil {
			return nil, fmt.Errorf("usaas: encoding session batch for WAL: %w", err)
		}
		wire = b
	}
	return d.logRecord(durable.Record{Type: recSessions, BatchID: batchID, Payload: wire})
}

func (d *DurableStore) logPosts(batchID string, posts []social.Post, wire []byte) (*durable.Ticket, error) {
	if wire == nil {
		d.postBuf.Reset()
		if err := social.WritePostsJSONL(&d.postBuf, posts); err != nil {
			return nil, fmt.Errorf("usaas: encoding post batch for WAL: %w", err)
		}
		wire = d.postBuf.Bytes()
	}
	return d.logRecord(durable.Record{Type: recPosts, BatchID: batchID, Payload: wire})
}

func (d *DurableStore) logRecord(rec durable.Record) (*durable.Ticket, error) {
	_, t, err := d.wal.AppendAsync(rec)
	if err != nil {
		return nil, err
	}
	d.sigMu.Lock()
	close(d.sigCh)
	d.sigCh = make(chan struct{})
	d.sigMu.Unlock()
	if d.opts.SnapshotEvery > 0 {
		d.snapMu.Lock()
		d.sinceSnap++
		trigger := d.sinceSnap >= d.opts.SnapshotEvery
		if trigger {
			d.sinceSnap = 0
		}
		d.snapMu.Unlock()
		if trigger {
			select {
			case d.snapCh <- struct{}{}:
			default: // a snapshot is already pending
			}
		}
	}
	return t, nil
}

// CommitMetrics reports the group-commit scheduler's counters (ok=false
// when group commit is not active). Surfaced through /v1/stats.
func (d *DurableStore) CommitMetrics() (durable.CommitMetrics, bool) {
	return d.wal.CommitMetrics()
}

// Sync forces appended log records to stable storage (meaningful under
// the interval and off fsync policies).
func (d *DurableStore) Sync() error { return d.wal.Sync() }

// Dir returns the store's data directory; the replication feed serves
// frames straight from its sealed segments.
func (d *DurableStore) Dir() string { return d.opts.Dir }

// AppendSignal returns a channel that is closed when the next batch is
// appended to the log. Long-poll feeds wait on it instead of spinning;
// after it fires, call AppendSignal again for the following append.
func (d *DurableStore) AppendSignal() <-chan struct{} {
	d.sigMu.Lock()
	defer d.sigMu.Unlock()
	return d.sigCh
}

// ApplyReplicated applies one leader WAL record through the normal ingest
// path, journaling the payload verbatim. Because the leader journals wire
// bytes and never logs duplicates, a follower applying the leader's
// records in sequence order writes a WAL that is byte-identical to the
// leader's — and rebuilds the same views, dedup table, caches, and
// columnar mirror, since this IS the ingest path. dup reports a batch the
// follower had already applied (a retransmitted delivery); it is skipped
// without journaling.
func (d *DurableStore) ApplyReplicated(rec durable.Record) (dup bool, err error) {
	switch rec.Type {
	case recSessions:
		var recs []telemetry.SessionRecord
		if err := telemetry.ReadJSONL(bytes.NewReader(rec.Payload), func(r *telemetry.SessionRecord) error {
			recs = append(recs, *r)
			return nil
		}); err != nil {
			return false, fmt.Errorf("usaas: decoding replicated session batch %q: %w", rec.BatchID, err)
		}
		_, dup, err = d.addSessionsBatch(rec.BatchID, recs, rec.Payload)
		return dup, err
	case recPosts:
		posts, err := social.CollectPostsJSONL(bytes.NewReader(rec.Payload))
		if err != nil {
			return false, fmt.Errorf("usaas: decoding replicated post batch %q: %w", rec.BatchID, err)
		}
		_, dup, err = d.addPostsBatch(rec.BatchID, posts, rec.Payload)
		return dup, err
	default:
		return false, fmt.Errorf("usaas: replicated record has unknown type %d", rec.Type)
	}
}

// WALSeq returns the log sequence the next accepted batch will get.
func (d *DurableStore) WALSeq() uint64 { return d.wal.Seq() }

// LastSnapshotSeq returns the log position the newest snapshot covers.
func (d *DurableStore) LastSnapshotSeq() uint64 {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	return d.lastSnapSeq
}

// Close drains the durability layer: background loops stop, a final
// snapshot captures everything past the last one (when snapshots are
// enabled), and the log is fsynced and closed. Safe to call twice.
func (d *DurableStore) Close() error {
	d.closeOnce.Do(func() {
		close(d.stop)
		d.wg.Wait()
		// Drain the apply queue before the final snapshot so it captures
		// every acknowledged batch.
		d.Store.StopApplyPipeline()
		var errs []error
		if d.opts.SnapshotEvery > 0 {
			if err := d.snapshotNow(); err != nil {
				errs = append(errs, fmt.Errorf("final snapshot: %w", err))
			}
		}
		if err := d.wal.Close(); err != nil {
			errs = append(errs, err)
		}
		d.closeErr = errors.Join(errs...)
	})
	return d.closeErr
}

// --- background loops ---

func (d *DurableStore) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

func (d *DurableStore) snapshotLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			return
		case <-d.snapCh:
			if err := d.snapshotNow(); err != nil {
				d.logf("usaas: background snapshot: %v", err)
			}
		}
	}
}

func (d *DurableStore) syncLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.wal.Sync(); err != nil {
				d.logf("usaas: interval fsync: %v", err)
			}
		}
	}
}

// snapshotNow captures the store at its current log position, writes the
// snapshot atomically, and compacts segments and snapshots it covers.
// No-op when nothing was accepted since the last snapshot.
func (d *DurableStore) snapshotNow() error {
	st, seq := d.captureState()
	d.snapMu.Lock()
	last := d.lastSnapSeq
	d.snapMu.Unlock()
	if seq == last {
		return nil
	}
	if err := durable.WriteSnapshot(d.opts.Dir, seq, func(w io.Writer) error {
		return encodeSnapshot(w, seq, st)
	}); err != nil {
		return err
	}
	d.snapMu.Lock()
	if seq > d.lastSnapSeq {
		d.lastSnapSeq = seq
	}
	d.snapMu.Unlock()
	return d.wal.Compact(seq)
}

// snapState is a consistent copy of everything a snapshot persists.
type snapState struct {
	sessions []telemetry.SessionRecord
	posts    []social.Post
	batches  map[string]IngestResponse
}

// captureState copies the store at one log position. It holds the
// sequencing lock while it reads the WAL sequence, waits out every batch
// sequenced before that point (the turn-chain tails), and copies the
// shards — so the copied state corresponds to the sequence exactly even
// with apply workers in flight. The shard copies run under RLocks; only
// sequencing is stalled for the duration, never readers.
func (d *DurableStore) captureState() (snapState, uint64) {
	s := d.Store
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	seq := d.wal.Seq()
	if s.sessTail != nil {
		<-s.sessTail
	}
	if s.postTail != nil {
		<-s.postTail
	}
	st := snapState{}
	s.sessMu.RLock()
	snap := s.sessions.snapshot()
	s.sessMu.RUnlock()
	st.sessions = snap.AppendTo(make([]telemetry.SessionRecord, 0, snap.Len()))
	s.postMu.RLock()
	st.posts = append([]social.Post(nil), s.posts...)
	s.postMu.RUnlock()
	s.dedupMu.RLock()
	st.batches = make(map[string]IngestResponse, len(s.batches))
	for id, ack := range s.batches {
		st.batches[id] = ack
	}
	s.dedupMu.RUnlock()
	return st, seq
}

// --- snapshot wire format ---

// snapHeader is the first line of a snapshot body; the counts delimit the
// NDJSON sections that follow (sessions, then posts, then batch acks).
type snapHeader struct {
	Format   int    `json:"format"`
	Seq      uint64 `json:"seq"`
	Sessions int    `json:"sessions"`
	Posts    int    `json:"posts"`
	Batches  int    `json:"batches"`
}

// snapBatch is one dedup-table entry, persisted so replayed deliveries of
// pre-snapshot batches still return their original acknowledgements.
type snapBatch struct {
	ID  string         `json:"id"`
	Ack IngestResponse `json:"ack"`
}

const snapFormat = 1

// encodeSnapshot writes the store state as line-oriented JSON: a header,
// the sessions as NDJSON (the telemetry codec), the posts as JSONL, and
// the batch table sorted by ID (map order must not leak into the bytes —
// snapshots of equal states should be equal).
func encodeSnapshot(w io.Writer, seq uint64, st snapState) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(snapHeader{
		Format:   snapFormat,
		Seq:      seq,
		Sessions: len(st.sessions),
		Posts:    len(st.posts),
		Batches:  len(st.batches),
	}); err != nil {
		return err
	}
	var buf []byte
	for i := range st.sessions {
		var err error
		if buf, err = telemetry.AppendJSON(buf[:0], &st.sessions[i]); err != nil {
			return err
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for i := range st.posts {
		if err := enc.Encode(&st.posts[i]); err != nil {
			return err
		}
	}
	ids := make([]string, 0, len(st.batches))
	for id := range st.batches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := enc.Encode(snapBatch{ID: id, Ack: st.batches[id]}); err != nil {
			return err
		}
	}
	return nil
}

// decodeSnapshot parses a snapshot body and installs it into a fresh
// store, re-folding the materialized views exactly as live ingest would.
func decodeSnapshot(body []byte, seq uint64, store *Store) (sessions, posts int, err error) {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	next := func() ([]byte, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.ErrUnexpectedEOF
		}
		return sc.Bytes(), nil
	}

	line, err := next()
	if err != nil {
		return 0, 0, fmt.Errorf("reading header: %w", err)
	}
	var hdr snapHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return 0, 0, fmt.Errorf("parsing header: %w", err)
	}
	if hdr.Format != snapFormat {
		return 0, 0, fmt.Errorf("unsupported snapshot format %d", hdr.Format)
	}
	if hdr.Seq != seq {
		return 0, 0, fmt.Errorf("snapshot header claims seq %d, file named %d", hdr.Seq, seq)
	}

	recs := make([]telemetry.SessionRecord, hdr.Sessions)
	for i := range recs {
		if line, err = next(); err != nil {
			return 0, 0, fmt.Errorf("reading session %d/%d: %w", i, hdr.Sessions, err)
		}
		if err := telemetry.ParseJSON(line, &recs[i]); err != nil {
			return 0, 0, fmt.Errorf("parsing session %d: %w", i, err)
		}
	}
	ps := make([]social.Post, hdr.Posts)
	for i := range ps {
		if line, err = next(); err != nil {
			return 0, 0, fmt.Errorf("reading post %d/%d: %w", i, hdr.Posts, err)
		}
		if err := json.Unmarshal(line, &ps[i]); err != nil {
			return 0, 0, fmt.Errorf("parsing post %d: %w", i, err)
		}
	}
	batches := make(map[string]IngestResponse, hdr.Batches)
	for i := 0; i < hdr.Batches; i++ {
		if line, err = next(); err != nil {
			return 0, 0, fmt.Errorf("reading batch ack %d/%d: %w", i, hdr.Batches, err)
		}
		var b snapBatch
		if err := json.Unmarshal(line, &b); err != nil {
			return 0, 0, fmt.Errorf("parsing batch ack %d: %w", i, err)
		}
		batches[b.ID] = b.Ack
	}
	store.restoreSnapshot(recs, ps, batches)
	return hdr.Sessions, hdr.Posts, nil
}

// restoreSnapshot installs decoded snapshot state into the store,
// re-folding views through the same per-record folds live ingest uses —
// folds are per-record and chunk boundaries are absolute indices, so one
// big fold of the restored prefix equals the original batch-by-batch
// folds bit for bit.
func (s *Store) restoreSnapshot(sessions []telemetry.SessionRecord, posts []social.Post, batches map[string]IngestResponse) {
	staged := extractSpeeds(posts)
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	// Seed the sequence-time predicted totals: the next accepted batch's
	// acknowledgement must report totals continuing from the restored state.
	s.seqSessions = len(sessions)
	s.seqPosts = len(posts)
	s.sessMu.Lock()
	s.sessions.append(sessions)
	if len(sessions) > 0 {
		s.sessGen++
		s.views.foldSessions(sessions)
		s.appendColumnar(sessions)
	}
	s.sessMu.Unlock()
	s.postMu.Lock()
	s.posts = posts
	if len(posts) > 0 {
		s.postGen++
		s.views.foldPosts(posts, staged, 0)
	}
	s.postMu.Unlock()
	if len(batches) > 0 {
		s.dedupMu.Lock()
		s.batches = batches
		s.dedupMu.Unlock()
	}
}
