package usaas

import (
	"sync"
	"time"

	"usersignals/internal/social"
	"usersignals/internal/telemetry"
)

// This file is the apply side of the parse→journal→apply ingest pipeline.
//
// Sequencing (addSessionsBatchAsync / addPostsBatchAsync, under ingestMu)
// performs only the serialized work: the dedup check, the WAL frame write,
// and the acknowledgement bookkeeping. Applying the batch to the in-memory
// state — the row append, the materialized-view folds, and the columnar
// mirror append — is packaged into an applyJob and executed OUTSIDE the
// sequencing lock, either inline on the ingesting goroutine (no pipeline
// attached: plain stores, tests, recovery replay) or by a bounded worker
// pool (StartApplyPipeline / DurabilityOptions.ApplyWorkers), so concurrent
// HTTP handlers overlap parsing, the group-commit fsync wait, and the apply
// work instead of convoying on one store mutex.
//
// Byte-identity is preserved by construction: jobs of the same kind form a
// turn chain (each job waits for the previous same-kind job's done channel
// before touching the store), so apply order always equals WAL append order
// per kind — exactly the order crash-recovery replay applies the same
// frames in. Session state and post state share no folds, so cross-kind
// ordering is free to float; acknowledgement totals, which DO couple the
// kinds, are computed at sequence time from predicted counters (seqSessions
// / seqPosts) and therefore match what a fully serial apply would have
// acked, byte for byte.
type applyJob struct {
	kind   byte // recSessions or recPosts
	recs   []telemetry.SessionRecord
	posts  []social.Post
	staged []pendingObs // OCR extractions staged before sequencing
	// prev is the done channel of the previously sequenced job of the same
	// kind (nil for the first): the per-kind turn chain.
	prev <-chan struct{}
	// done is closed once the job is applied; fences, sync ingest callers,
	// and the next same-kind job wait on it.
	done chan struct{}
	// pooled marks record slices owned by the handler slice pool; the
	// applier returns them after the fold (every fold copies values out).
	pooled bool
}

// applyPipeline is the bounded worker pool. Jobs are enqueued in sequence
// order under ingestMu (so queue order = sequence order, and a detach can
// never race a send with the channel close); a full queue blocks sequencing
// — backpressure, not unbounded memory.
type applyPipeline struct {
	queue chan *applyJob
	wg    sync.WaitGroup
}

func newApplyPipeline(s *Store, workers int) *applyPipeline {
	depth := 4 * workers
	if depth < 16 {
		depth = 16
	}
	p := &applyPipeline{queue: make(chan *applyJob, depth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.queue {
				s.runJob(job)
			}
		}()
	}
	return p
}

// StartApplyPipeline attaches a worker pool of the given size to the store;
// subsequent ingest applies batches asynchronously (acknowledgement still
// waits for the covering fsync; visibility is gated on apply, which readers
// wait out via the fences below). workers <= 0 or a pipeline already
// attached is a no-op. Byte-identity does not depend on the worker count.
func (s *Store) StartApplyPipeline(workers int) {
	if workers <= 0 {
		return
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.pipe == nil {
		s.pipe = newApplyPipeline(s, workers)
	}
}

// StopApplyPipeline detaches the worker pool, drains every queued job, and
// joins the workers. Ingest sequenced after the detach applies inline.
func (s *Store) StopApplyPipeline() {
	s.ingestMu.Lock()
	p := s.pipe
	s.pipe = nil
	s.ingestMu.Unlock()
	if p == nil {
		return
	}
	close(p.queue)
	p.wg.Wait()
}

// runJob waits its turn in the per-kind chain, folds the batch into the
// store under that kind's shard lock, recycles pooled buffers, and releases
// the jobs (and fences) waiting behind it. Called exactly once per job.
func (s *Store) runJob(job *applyJob) {
	if job.prev != nil {
		<-job.prev
	}
	if d := time.Duration(s.applyDelay.Load()); d > 0 {
		time.Sleep(d) // test hook: hold the apply queue open
	}
	switch job.kind {
	case recSessions:
		s.applySessions(job.recs)
		if job.pooled {
			putSessionSlice(job.recs)
		}
	case recPosts:
		s.applyPosts(job.posts, job.staged)
		if job.pooled {
			putPostSlice(job.posts)
		}
	}
	close(job.done)
}

// applySessions folds a sequenced session batch into the row store, the
// session views, and the columnar mirror. Jobs arrive here in sequence
// order (turn chain), so the fold stream is identical to serial ingest.
// The chunked row store (rows.go) makes the append copy only the batch:
// published rows are never reallocated, zeroed, or moved again.
func (s *Store) applySessions(recs []telemetry.SessionRecord) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.sessions.append(recs)
	if len(recs) > 0 {
		s.sessGen++
		s.views.foldSessions(recs)
		s.appendColumnar(recs)
	}
}

// applyPosts is applySessions for the post shard. The fold base (the post
// count before this batch) is read here rather than at sequence time: post
// applies run in sequence order, so it equals the serial value.
func (s *Store) applyPosts(posts []social.Post, staged []pendingObs) {
	s.postMu.Lock()
	defer s.postMu.Unlock()
	base := len(s.posts)
	s.posts = appendGrown(s.posts, posts)
	if len(posts) > 0 {
		s.postGen++
		s.views.foldPosts(posts, staged, base)
	}
}

// fenceSessions blocks until every session batch sequenced before the call
// has been applied. Read accessors fence before taking the shard lock so
// the store keeps read-your-acked-writes semantics with the apply queue in
// flight: an ingest acknowledged (or even just sequenced) before a read is
// visible to that read. The wait is bounded by the queue depth — jobs
// sequenced after the fence snapshot do not extend it.
func (s *Store) fenceSessions() {
	if ch, ok := s.sessFence.Load().(chan struct{}); ok && ch != nil {
		<-ch
	}
}

// fencePosts is fenceSessions for the post shard.
func (s *Store) fencePosts() {
	if ch, ok := s.postFence.Load().(chan struct{}); ok && ch != nil {
		<-ch
	}
}

// appendGrown is append with explicit doubling, used for the post slice
// (sessions moved to chunked blocks in rows.go). For slices past a few
// hundred elements Go's builtin grows by only ~1.25x, which on a
// multi-gigabyte ingest run reallocates, zeroes, and copies the backing
// array far more often than doubling does (alloc+zero+copy traffic is
// cap·f/(f−1) + cap/(f−1): ~9·len at f=1.25 vs ~3·len at f=2) — that
// zeroing was ~18% of the ingest CPU profile. Growth happens under the
// shard lock, but only on the doubling boundary.
func appendGrown[T any](dst []T, src []T) []T {
	need := len(dst) + len(src)
	if need > cap(dst) {
		newCap := 2 * cap(dst)
		if newCap < 1024 {
			newCap = 1024
		}
		for newCap < need {
			newCap *= 2
		}
		grown := make([]T, len(dst), newCap)
		copy(grown, dst)
		dst = grown
	}
	return append(dst, src...)
}

// Handler-side slice pools: the NDJSON parse appends into a pooled slice,
// ownership passes to the applyJob, and the applier recycles it after the
// fold (every fold path copies record values out, so nothing references the
// backing array afterwards). On a duplicate or a journal error ownership
// never transfers and the handler releases the slice itself.
var sessionSlices = sync.Pool{New: func() any { return make([]telemetry.SessionRecord, 0, 256) }}

var postSlices = sync.Pool{New: func() any { return make([]social.Post, 0, 128) }}

func getSessionSlice() []telemetry.SessionRecord {
	return sessionSlices.Get().([]telemetry.SessionRecord)[:0]
}

func putSessionSlice(s []telemetry.SessionRecord) {
	if cap(s) > 0 {
		sessionSlices.Put(s[:0])
	}
}

func getPostSlice() []social.Post {
	return postSlices.Get().([]social.Post)[:0]
}

func putPostSlice(s []social.Post) {
	if cap(s) > 0 {
		postSlices.Put(s[:0])
	}
}
